#include "linalg/spectral.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/vec_ops.h"

namespace dmt {
namespace linalg {
namespace {

TEST(SpectralTest, PowerIterationMatchesExactEigen) {
  Rng rng(1);
  Matrix a = RandomGaussianMatrix(30, 8, &rng);
  Matrix s = a.Gram();
  double exact = SpectralNormSymmetric(s);
  double approx = PowerIterationSpectralNorm(s, 200, &rng);
  EXPECT_NEAR(approx, exact, 1e-6 * exact);
}

TEST(SpectralTest, PowerIterationOnZeroMatrix) {
  Rng rng(2);
  Matrix s(5, 5);
  EXPECT_DOUBLE_EQ(PowerIterationSpectralNorm(s, 50, &rng), 0.0);
}

TEST(SpectralTest, RandomUnitVectorHasUnitNorm) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> x = RandomUnitVector(16, &rng);
    EXPECT_NEAR(Norm(x), 1.0, 1e-12);
  }
}

TEST(SpectralTest, RandomGaussianMatrixShape) {
  Rng rng(4);
  Matrix m = RandomGaussianMatrix(7, 3, &rng);
  EXPECT_EQ(m.rows(), 7u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(SpectralTest, RandomOrthogonalMatrixIsOrthogonal) {
  Rng rng(5);
  const size_t d = 12;
  Matrix q = RandomOrthogonalMatrix(d, &rng);
  Matrix qtq = q.Transposed().Multiply(q);
  EXPECT_LT(qtq.MaxAbsDiff(Matrix::Identity(d)), 1e-10);
}

TEST(SpectralTest, OrthogonalMatrixPreservesNorms) {
  Rng rng(6);
  const size_t d = 9;
  Matrix q = RandomOrthogonalMatrix(d, &rng);
  std::vector<double> x = RandomUnitVector(d, &rng);
  std::vector<double> qx = q.MultiplyVector(x);
  EXPECT_NEAR(Norm(qx), 1.0, 1e-10);
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
