#include "linalg/spectral.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/vec_ops.h"

namespace dmt {
namespace linalg {
namespace {

TEST(SpectralTest, PowerIterationMatchesExactEigen) {
  Rng rng(1);
  Matrix a = RandomGaussianMatrix(30, 8, &rng);
  Matrix s = a.Gram();
  double exact = SpectralNormSymmetric(s);
  double approx = PowerIterationSpectralNorm(s, 200, &rng);
  EXPECT_NEAR(approx, exact, 1e-6 * exact);
}

TEST(SpectralTest, PowerIterationOnZeroMatrix) {
  Rng rng(2);
  Matrix s(5, 5);
  EXPECT_DOUBLE_EQ(PowerIterationSpectralNorm(s, 50, &rng), 0.0);
}

// Satellite regression: with near-tied leading eigenvalues
// (lambda_1/lambda_2 = 1.001) a fixed iteration count converges at rate
// (1/1.001)^iters and silently underestimates; the residual-based
// stopping criterion must keep iterating until the estimate is certified.
TEST(SpectralTest, PowerIterationConvergesOnNearTiedEigenvalues) {
  Rng rng(21);
  const size_t d = 8;
  Matrix q = RandomOrthogonalMatrix(d, &rng);
  std::vector<double> lambda = {1.001, 1.0, 0.5, 0.3, 0.2, 0.1, 0.05, 0.01};
  Matrix s(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double v = 0.0;
      for (size_t t = 0; t < d; ++t) v += q(i, t) * lambda[t] * q(j, t);
      s(i, j) = v;
    }
  }
  const double exact = SpectralNormSymmetric(s);
  ASSERT_NEAR(exact, 1.001, 1e-10);

  // Legacy behaviour (tol = 0 disables the residual stop): 300 fixed
  // iterations leave a visible mixture with the lambda_2 eigenvector.
  Rng legacy_rng(22);
  const double legacy =
      PowerIterationSpectralNorm(s, 300, &legacy_rng, /*tol=*/0.0);
  EXPECT_LT(legacy, exact - 1e-5 * exact);

  // Residual-certified run: converges (well past 300 iterations) to the
  // true norm.
  Rng conv_rng(22);
  int iters_used = 0;
  const double converged = PowerIterationSpectralNorm(
      s, 2000000, &conv_rng, /*tol=*/1e-8, &iters_used);
  EXPECT_NEAR(converged, exact, 1e-6 * exact);
  EXPECT_GT(iters_used, 300);
  EXPECT_LT(iters_used, 2000000);
}

// Satellite regression: a start vector in the null space used to make
// the function return 0 for a non-zero matrix; the deterministic
// canonical-vector restart must recover. Construction: for x0 = (a, b),
// the symmetric matrix [[b, -a], [-a, a²/b]] annihilates x0 — row 0 is
// exact in floating point (fl(b·a) cancels fl(-a·b), the same product),
// row 1 whenever fl(a²)/b·b round-trips; the seed scan checks the
// exact-zero precondition through the real MultiplyVector code path.
TEST(SpectralTest, PowerIterationRestartsOnZeroIterate) {
  uint64_t seed = 0;
  Matrix s(2, 2);
  for (uint64_t cand = 1; cand < 500 && seed == 0; ++cand) {
    Rng probe(cand);
    std::vector<double> x0 = RandomUnitVector(2, &probe);
    const double a = x0[0], b = x0[1];
    if (a == 0.0 || b == 0.0) continue;
    Matrix t(2, 2);
    t(0, 0) = b;
    t(0, 1) = -a;
    t(1, 0) = -a;
    t(1, 1) = (a * a) / b;
    std::vector<double> y = t.MultiplyVector(x0);
    if (y[0] == 0.0 && y[1] == 0.0) {
      seed = cand;
      s = t;
    }
  }
  ASSERT_GT(seed, 0u) << "no seed produced an exact null start vector";
  const double exact = SpectralNormSymmetric(s);
  ASSERT_GT(exact, 0.0);

  Rng rng(seed);
  const double norm = PowerIterationSpectralNorm(s, 20000, &rng, 1e-10);
  // Legacy behaviour returned 0.0 the moment the first iterate vanished.
  EXPECT_NEAR(norm, exact, 1e-6 * exact);
}

TEST(SpectralTest, RandomUnitVectorHasUnitNorm) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    std::vector<double> x = RandomUnitVector(16, &rng);
    EXPECT_NEAR(Norm(x), 1.0, 1e-12);
  }
}

TEST(SpectralTest, RandomGaussianMatrixShape) {
  Rng rng(4);
  Matrix m = RandomGaussianMatrix(7, 3, &rng);
  EXPECT_EQ(m.rows(), 7u);
  EXPECT_EQ(m.cols(), 3u);
}

TEST(SpectralTest, RandomOrthogonalMatrixIsOrthogonal) {
  Rng rng(5);
  const size_t d = 12;
  Matrix q = RandomOrthogonalMatrix(d, &rng);
  Matrix qtq = q.Transposed().Multiply(q);
  EXPECT_LT(qtq.MaxAbsDiff(Matrix::Identity(d)), 1e-10);
}

TEST(SpectralTest, OrthogonalMatrixPreservesNorms) {
  Rng rng(6);
  const size_t d = 9;
  Matrix q = RandomOrthogonalMatrix(d, &rng);
  std::vector<double> x = RandomUnitVector(d, &rng);
  std::vector<double> qx = q.MultiplyVector(x);
  EXPECT_NEAR(Norm(qx), 1.0, 1e-10);
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
