#include "sketch/sliding_window_fd.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/spectral.h"
#include "serve/snapshot.h"
#include "util/rng.h"

namespace dmt {
namespace sketch {
namespace {

using linalg::Matrix;

double RelativeSpectralDiff(const Matrix& gram_a, const Matrix& gram_b,
                            double frob_a) {
  Matrix diff = gram_a;
  diff.Subtract(gram_b);
  return linalg::SpectralNormSymmetric(diff) / frob_a;
}

TEST(SlidingWindowFdTest, BlockCountLogarithmic) {
  SlidingWindowFD sw(1024, 8);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    std::vector<double> row(6);
    for (auto& v : row) v = rng.NextGaussian();
    sw.Append(row);
    ASSERT_LE(sw.block_count(), 2 * 12 + 2u);  // 2 per size class
  }
}

TEST(SlidingWindowFdTest, ExpiresOldRegime) {
  // Phase 1 fills direction e1 heavily; phase 2 (longer than the window)
  // only feeds e2. After phase 2 the sketch must carry ~no e1 energy.
  const size_t window = 500;
  SlidingWindowFD sw(window, 8);
  std::vector<double> e1{10.0, 0.0};
  std::vector<double> e2{0.0, 1.0};
  for (int i = 0; i < 1000; ++i) sw.Append(e1);
  for (int i = 0; i < 3000; ++i) sw.Append(e2);

  Matrix gram = sw.Gram();
  // Energy along e1 must be zero (all e1 blocks expired).
  EXPECT_NEAR(gram(0, 0), 0.0, 1e-9);
  // Energy along e2 covers roughly the window (between W/2 and W+slack).
  EXPECT_GT(gram(1, 1), window / 2.0);
  EXPECT_LT(gram(1, 1), 2.0 * window);
}

class SlidingWindowAccuracyTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(SlidingWindowAccuracyTest, ApproximatesExactWindowMatrix) {
  auto [window, ell] = GetParam();
  const size_t d = 8;
  SlidingWindowFD sw(window, ell);
  Rng rng(7);
  std::vector<std::vector<double>> history;
  const size_t n = 4 * window;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(d);
    for (auto& v : row) v = rng.NextGaussian();
    history.push_back(row);
    sw.Append(row);
  }
  // Exact matrix over the covered range: [newest - covered + 1, newest].
  // The sketch covers between (window - oldest_block) and (window +
  // oldest_block) rows; compare against the window plus the straddling
  // slack and require the FD bound plus the boundary slack.
  Matrix exact_window(0, d);
  for (size_t i = n - window; i < n; ++i) {
    exact_window.AppendRow(history[i]);
  }
  const double frob = exact_window.SquaredFrobeniusNorm();
  const double fd_eps = 1.0 / static_cast<double>(ell + 1);
  // Boundary slack: at most oldest_block_rows() rows (each of expected
  // squared norm ~d) may be extra or missing.
  const double boundary =
      static_cast<double>(sw.oldest_block_rows() * d) * 2.5 / frob;
  const double err =
      RelativeSpectralDiff(exact_window.Gram(), sw.Gram(), frob);
  EXPECT_LE(err, 3.0 * fd_eps + boundary)
      << "window=" << window << " ell=" << ell;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SlidingWindowAccuracyTest,
    ::testing::Combine(::testing::Values<size_t>(256, 1024),
                       ::testing::Values<size_t>(8, 16)));

TEST(SlidingWindowFdTest, ConservativeQueryExcludesStraddler) {
  SlidingWindowFD sw(100, 4);
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> row(4);
    for (auto& v : row) v = rng.NextGaussian();
    sw.Append(row);
  }
  Matrix with = sw.Gram(true);
  Matrix without = sw.Gram(false);
  // The conservative query never has more energy than the inclusive one.
  double trace_with = 0.0, trace_without = 0.0;
  for (size_t i = 0; i < 4; ++i) {
    trace_with += with(i, i);
    trace_without += without(i, i);
  }
  EXPECT_LE(trace_without, trace_with + 1e-9);
}

TEST(SlidingWindowFdTest, StrictSketchExcludesFrontBlockAnchoredAtRowOne) {
  // Regression: the straddle check used to require b.newest > b.rows,
  // which a front block anchored at stream row 1 (newest == rows) never
  // satisfies. With window=4 and 5 appends the blocks are
  // [rows 1-2][rows 3-4][row 5]; row 1 has expired, so the front block
  // straddles and the conservative query must drop it — before the fix it
  // was always included, leaking expired energy into Sketch(false).
  const size_t d = 6;
  SlidingWindowFD sw(4, 8);
  for (size_t i = 0; i < 5; ++i) {
    std::vector<double> row(d, 0.0);
    row[i] = 1.0;
    sw.Append(row);
  }
  ASSERT_EQ(sw.rows_seen(), 5u);
  ASSERT_EQ(sw.oldest_block_rows(), 2u);

  Matrix strict = sw.Gram(false);
  Matrix inclusive = sw.Gram(true);
  // The straddling block (rows 1-2, axes e0/e1) is dropped by the strict
  // query but present in the inclusive one.
  EXPECT_NEAR(strict(0, 0), 0.0, 1e-12);
  EXPECT_NEAR(strict(1, 1), 0.0, 1e-12);
  EXPECT_GT(inclusive(0, 0), 0.5);
  // Rows 3-5 stay covered either way.
  for (size_t i = 2; i < 5; ++i) {
    EXPECT_GT(strict(i, i), 0.5) << "axis " << i;
    EXPECT_GT(inclusive(i, i), 0.5) << "axis " << i;
  }
}

TEST(SlidingWindowFdTest, RowsSeenCounts) {
  SlidingWindowFD sw(10, 2);
  for (int i = 0; i < 7; ++i) sw.Append({1.0});
  EXPECT_EQ(sw.rows_seen(), 7u);
}

// Serving-layer deep-copy contract: a snapshot pinned via
// serve::BuildWindowedSnapshot must stay bit-identical while the window
// keeps sliding — appends trigger merges, expiries and FD shrinks that
// rewrite the live block buffers, and none of it may show through the
// pinned export.
TEST(SlidingWindowFdSnapshotTest, PinnedSnapshotSurvivesAppends) {
  SlidingWindowFD sw(64, 4);
  Rng rng(7);
  const auto next_row = [&rng]() {
    std::vector<double> row(6);
    for (auto& v : row) v = rng.NextGaussian();
    return row;
  };
  for (int i = 0; i < 100; ++i) sw.Append(next_row());

  const auto pinned = serve::BuildWindowedSnapshot(
      sw, /*include_straddling=*/true, /*window_index=*/1,
      /*items_ingested=*/100);
  const uint64_t checksum = serve::SnapshotChecksum(*pinned);
  ASSERT_GT(pinned->sketch.rows(), 0u);

  // Slide far past the pinned state: every original block merges,
  // expires, or shrinks at least once.
  for (int i = 0; i < 500; ++i) sw.Append(next_row());

  EXPECT_EQ(serve::SnapshotChecksum(*pinned), checksum);
}

// ExportSketch (the deep-copy path the snapshot builder uses) must be
// value-identical to Sketch() at the same instant, for both straddling
// modes.
TEST(SlidingWindowFdSnapshotTest, ExportSketchMatchesSketch) {
  SlidingWindowFD sw(48, 4);
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(5);
    for (auto& v : row) v = rng.NextGaussian();
    sw.Append(row);

    for (bool straddling : {true, false}) {
      const Matrix a = sw.Sketch(straddling);
      const Matrix b = sw.ExportSketch(straddling);
      ASSERT_EQ(a.rows(), b.rows());
      ASSERT_EQ(a.cols(), b.cols());
      for (size_t r = 0; r < a.rows(); ++r) {
        for (size_t c = 0; c < a.cols(); ++c) {
          ASSERT_EQ(a(r, c), b(r, c));
        }
      }
    }
  }
}

}  // namespace
}  // namespace sketch
}  // namespace dmt
