// Tests for the warm-start / targeted in-place Jacobi diagonalization that
// protocol MP2 builds on.
#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/spectral.h"
#include "linalg/vec_ops.h"
#include "util/rng.h"

namespace dmt {
namespace linalg {
namespace {

// Reconstructs V * G * V^T (the matrix the pair (G, V) represents).
Matrix Represented(const Matrix& g, const Matrix& v) {
  return v.Multiply(g).Multiply(v.Transposed());
}

std::vector<double> SortedDiagonal(const Matrix& g) {
  std::vector<double> d(g.rows());
  for (size_t i = 0; i < g.rows(); ++i) d[i] = g(i, i);
  std::sort(d.begin(), d.end(), std::greater<double>());
  return d;
}

TEST(JacobiInPlaceTest, FullDiagonalizationMatchesSymmetricEigen) {
  Rng rng(1);
  Matrix a = RandomGaussianMatrix(30, 8, &rng);
  Matrix g = a.Gram();
  Matrix v = Matrix::Identity(8);
  Matrix original = g;
  JacobiDiagonalizeInPlace(&g, &v);

  EigenDecomposition e = SymmetricEigen(original);
  std::vector<double> got = SortedDiagonal(g);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(got[i], e.eigenvalues[i], 1e-9 * (1.0 + e.eigenvalues[0]));
  }
}

TEST(JacobiInPlaceTest, RepresentationInvariant) {
  Rng rng(2);
  Matrix a = RandomGaussianMatrix(20, 6, &rng);
  Matrix g = a.Gram();
  Matrix original = g;
  Matrix v = Matrix::Identity(6);
  JacobiDiagonalizeInPlace(&g, &v);
  // V G V^T must equal the original matrix: rotations lose nothing.
  EXPECT_LT(Represented(g, v).MaxAbsDiff(original),
            1e-9 * original.SquaredFrobeniusNorm());
}

TEST(JacobiInPlaceTest, WarmStartAppliesFewRotations) {
  Rng rng(3);
  Matrix a = RandomGaussianMatrix(100, 10, &rng);
  Matrix g = a.Gram();
  Matrix v = Matrix::Identity(10);
  size_t cold = JacobiDiagonalizeInPlace(&g, &v);
  EXPECT_GT(cold, 0u);
  // Perturb with one rank-1 row (in the rotated basis) and re-diagonalize:
  // the warm pass must need far fewer rotations than the cold one.
  std::vector<double> row = RandomUnitVector(10, &rng);
  std::vector<double> c = v.TransposedMultiplyVector(row);
  g.AddOuterProduct(1.0, c);
  size_t warm = JacobiDiagonalizeInPlace(&g, &v);
  EXPECT_LT(warm, cold / 2);
}

TEST(JacobiInPlaceTest, TargetedSkipStillExposesLargeEigenvalues) {
  Rng rng(4);
  // Matrix with a few dominant directions and a noisy tail.
  Matrix a(0, 12);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> row(12);
    for (size_t j = 0; j < 12; ++j) {
      row[j] = rng.NextGaussian() * (j < 3 ? 2.0 : 0.05);
    }
    a.AppendRow(row);
  }
  Matrix g = a.Gram();
  Matrix original = g;
  EigenDecomposition exact = SymmetricEigen(original);

  const double cutoff = exact.eigenvalues[2] * 0.5;  // below the top 3
  Matrix v = Matrix::Identity(12);
  JacobiDiagonalizeInPlace(&g, &v, 1e-14, 60, cutoff);

  // Every eigenvalue >= cutoff must appear on the diagonal.
  std::vector<double> got = SortedDiagonal(g);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(got[i], exact.eigenvalues[i],
                1e-6 * exact.eigenvalues[0])
        << "eigenvalue " << i;
  }
  // And the representation is still exact (skipping loses nothing).
  EXPECT_LT(Represented(g, v).MaxAbsDiff(original),
            1e-9 * original.SquaredFrobeniusNorm());
}

TEST(JacobiInPlaceTest, TargetedSkipCheaperThanFull) {
  Rng rng(5);
  Matrix a(0, 16);
  for (int i = 0; i < 300; ++i) {
    std::vector<double> row(16);
    for (size_t j = 0; j < 16; ++j) {
      row[j] = rng.NextGaussian() * (j < 2 ? 3.0 : 0.02);
    }
    a.AppendRow(row);
  }
  Matrix g1 = a.Gram();
  Matrix g2 = g1;
  Matrix v1 = Matrix::Identity(16);
  Matrix v2 = Matrix::Identity(16);
  size_t full = JacobiDiagonalizeInPlace(&g1, &v1);
  EigenDecomposition exact = SymmetricEigen(a.Gram());
  size_t targeted = JacobiDiagonalizeInPlace(&g2, &v2, 1e-14, 60,
                                             exact.eigenvalues[1]);
  EXPECT_LT(targeted, full);
}

TEST(JacobiInPlaceDeathTest, ShapeMismatchAborts) {
  Matrix g(3, 3);
  Matrix v = Matrix::Identity(4);
  EXPECT_DEATH(JacobiDiagonalizeInPlace(&g, &v), "DMT_CHECK");
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
