#include "sketch/count_min.h"

#include <map>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dmt {
namespace sketch {
namespace {

TEST(CountMinTest, NeverUnderestimates) {
  CountMin cm(4, 64, 1);
  Rng rng(1);
  std::map<uint64_t, double> truth;
  for (int i = 0; i < 3000; ++i) {
    uint64_t e = rng.NextBelow(500);
    double w = 1.0 + rng.NextDouble();
    truth[e] += w;
    cm.Update(e, w);
  }
  for (const auto& [e, w] : truth) {
    EXPECT_GE(cm.Estimate(e), w - 1e-9);
  }
}

TEST(CountMinTest, ErrorWithinTheoreticalBoundForMostElements) {
  const double eps = 0.02;
  const double delta = 0.01;
  CountMin cm = CountMin::WithError(eps, delta, 7);
  Rng rng(2);
  std::map<uint64_t, double> truth;
  double total = 0.0;
  for (int i = 0; i < 20000; ++i) {
    uint64_t e = rng.NextBelow(2000);
    double w = 1.0;
    truth[e] += w;
    total += w;
    cm.Update(e, w);
  }
  int violations = 0;
  for (const auto& [e, w] : truth) {
    if (cm.Estimate(e) > w + eps * total) ++violations;
  }
  // Allow a small number of failures (the guarantee is per-element with
  // probability 1 - delta).
  EXPECT_LE(violations, static_cast<int>(truth.size() * 5 * delta));
}

TEST(CountMinTest, UnseenElementCanBeNonZeroButBounded) {
  CountMin cm(4, 1024, 3);
  for (int i = 0; i < 100; ++i) cm.Update(i, 1.0);
  EXPECT_GE(cm.Estimate(100000), 0.0);
  EXPECT_LE(cm.Estimate(100000), 100.0);
}

TEST(CountMinTest, MergeAddsSketches) {
  CountMin a(3, 128, 9);
  CountMin b(3, 128, 9);
  a.Update(5, 2.0);
  b.Update(5, 3.0);
  b.Update(6, 1.0);
  a.Merge(b);
  EXPECT_GE(a.Estimate(5), 5.0 - 1e-9);
  EXPECT_GE(a.Estimate(6), 1.0 - 1e-9);
  EXPECT_DOUBLE_EQ(a.total_weight(), 6.0);
}

TEST(CountMinDeathTest, MergeShapeMismatchAborts) {
  CountMin a(3, 128, 9);
  CountMin b(3, 64, 9);
  EXPECT_DEATH(a.Merge(b), "DMT_CHECK");
}

TEST(CountMinTest, WithErrorShapesSketch) {
  CountMin cm = CountMin::WithError(0.01, 0.05, 1);
  EXPECT_GE(cm.width(), 271u);  // e / 0.01
  EXPECT_GE(cm.depth(), 3u);    // ln(20)
}

}  // namespace
}  // namespace sketch
}  // namespace dmt
