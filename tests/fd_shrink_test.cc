// Pins the warm-started, allocation-free FD shrink pipeline against the
// cold-eigendecomposition formulation it replaced, and covers the bulk
// AppendRows path (one shrink per buffer fill instead of one per ell
// rows).
#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/matrix.h"
#include "linalg/spectral.h"
#include "linalg/svd.h"
#include "sketch/frequent_directions.h"
#include "util/rng.h"

namespace dmt {
namespace sketch {
namespace {

using linalg::Matrix;

// The pre-kernel (seed) shrink pipeline: buffer rows, and on every 2*ell
// fill run a cold RightSingularOf decomposition from scratch. Kept as the
// reference semantics the warm-started pipeline must reproduce.
class ColdReferenceFd {
 public:
  explicit ColdReferenceFd(size_t ell, size_t dim = 0)
      : ell_(ell), dim_(dim) {}

  void Append(const std::vector<double>& row) {
    if (dim_ == 0) dim_ = row.size();
    buffer_.AppendRow(row);
    double w = 0.0;
    for (double v : row) w += v * v;
    stream_sq_frob_ += w;
    if (buffer_.rows() >= 2 * ell_) Shrink();
  }

  void Shrink() {
    ++shrink_count_;
    linalg::RightSingular rs = linalg::RightSingularOf(buffer_);
    const size_t d = rs.squared_sigma.size();
    const double delta = ell_ < d ? rs.squared_sigma[ell_] : 0.0;
    total_shrinkage_ += delta;
    Matrix next(0, 0);
    for (size_t i = 0; i < d && i < ell_; ++i) {
      const double lam = rs.squared_sigma[i] - delta;
      if (lam <= 0.0) break;
      const double scale = std::sqrt(lam);
      std::vector<double> row(dim_);
      for (size_t j = 0; j < dim_; ++j) row[j] = scale * rs.v(j, i);
      next.AppendRow(row);
    }
    if (next.rows() == 0) next = Matrix(0, dim_);
    buffer_ = std::move(next);
  }

  const Matrix& sketch() const { return buffer_; }
  double total_shrinkage() const { return total_shrinkage_; }
  double stream_squared_frobenius() const { return stream_sq_frob_; }
  size_t shrink_count() const { return shrink_count_; }

 private:
  size_t ell_;
  size_t dim_;
  Matrix buffer_;
  double stream_sq_frob_ = 0.0;
  double total_shrinkage_ = 0.0;
  size_t shrink_count_ = 0;
};

// Sorted descending singular-value spectrum of a sketch (sqrt of the
// eigenvalues of B^T B, clamped at 0).
std::vector<double> Spectrum(const Matrix& b, size_t d) {
  if (b.rows() == 0) return std::vector<double>(d, 0.0);
  linalg::EigenDecomposition e = linalg::SymmetricEigen(b.Gram());
  std::vector<double> s(d, 0.0);
  for (size_t i = 0; i < e.eigenvalues.size() && i < d; ++i) {
    s[i] = std::sqrt(std::max(0.0, e.eigenvalues[i]));
  }
  return s;
}

std::vector<std::vector<double>> GaussianRows(size_t n, size_t d,
                                              uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> rows(n);
  for (auto& r : rows) {
    r.resize(d);
    for (auto& v : r) v = rng.NextGaussian();
  }
  return rows;
}

// One shrink, warm pipeline vs cold reference, across the shapes that
// exercise both decomposition regimes: wide buffer (2*ell < d, the seed's
// ThinSVD route) and tall buffer (2*ell > d, the seed's Gram route).
class ShrinkEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(ShrinkEquivalenceTest, FirstShrinkMatchesColdPath) {
  auto [ell, d] = GetParam();
  FrequentDirections warm(ell, d);
  ColdReferenceFd cold(ell, d);
  auto rows = GaussianRows(2 * ell, d, 100 + ell * 10 + d);
  for (const auto& r : rows) {
    warm.Append(r);
    cold.Append(r);
  }
  ASSERT_EQ(warm.shrink_count(), 1u);
  ASSERT_EQ(cold.shrink_count(), 1u);
  EXPECT_EQ(warm.sketch().rows(), cold.sketch().rows());

  const double scale = warm.stream_squared_frobenius();
  EXPECT_NEAR(warm.total_shrinkage(), cold.total_shrinkage(),
              1e-10 * scale);
  std::vector<double> sw = Spectrum(warm.sketch(), d);
  std::vector<double> sc = Spectrum(cold.sketch(), d);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(sw[i] * sw[i], sc[i] * sc[i], 1e-9 * scale) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShrinkEquivalenceTest,
                         ::testing::Values(std::make_tuple(5u, 16u),
                                           std::make_tuple(8u, 6u),
                                           std::make_tuple(4u, 8u),
                                           std::make_tuple(16u, 12u)));

// The warm start is only warm from the second shrink onward (the first
// starts from an identity basis). Drive hundreds of shrinks and require
// the pipelines to stay equivalent: same shrink schedule, same error
// accounting, and spectrally indistinguishable sketches.
TEST(FdShrinkTest, WarmStartTracksColdPathAcrossManyShrinks) {
  const size_t ell = 5, d = 10, n = 600;
  FrequentDirections warm(ell, d);
  ColdReferenceFd cold(ell, d);
  auto rows = GaussianRows(n, d, 42);
  for (const auto& r : rows) {
    warm.Append(r);
    cold.Append(r);
  }
  ASSERT_GE(warm.shrink_count(), 100u);
  EXPECT_EQ(warm.shrink_count(), cold.shrink_count());
  EXPECT_DOUBLE_EQ(warm.stream_squared_frobenius(),
                   cold.stream_squared_frobenius());

  const double scale = warm.stream_squared_frobenius();
  EXPECT_NEAR(warm.total_shrinkage(), cold.total_shrinkage(), 1e-7 * scale);
  std::vector<double> sw = Spectrum(warm.sketch(), d);
  std::vector<double> sc = Spectrum(cold.sketch(), d);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(sw[i] * sw[i], sc[i] * sc[i], 1e-7 * scale) << "i=" << i;
  }
}

// Low-rank streams: the shrink must keep recovering the structure exactly
// (delta ~ 0) through the warm-started path as well.
TEST(FdShrinkTest, LowRankStreamKeepsNearZeroShrinkage) {
  const size_t ell = 8, d = 12;
  FrequentDirections warm(ell, d);
  Rng rng(7);
  for (int i = 0; i < 400; ++i) {
    const double c1 = rng.NextGaussian(), c2 = rng.NextGaussian();
    std::vector<double> row(d, 0.0);
    row[0] = 3.0 * c1;
    row[3] = 2.0 * c2;
    row[7] = 0.5 * c1 - c2;
    warm.Append(row);
  }
  EXPECT_GE(warm.shrink_count(), 10u);
  EXPECT_LE(warm.total_shrinkage(),
            1e-8 * warm.stream_squared_frobenius());
  // Rank-3 stream: all but ~zero energy lives in the top 3 directions
  // (shrinks with delta ~ 0 may retain extra rows of roundoff weight).
  std::vector<double> s = Spectrum(warm.sketch(), d);
  double tail = 0.0;
  for (size_t i = 3; i < d; ++i) tail += s[i] * s[i];
  EXPECT_LE(tail, 1e-8 * warm.stream_squared_frobenius());
}

// Satellite regression: AppendRows must take the bulk path (fill the
// buffer to capacity, shrink once) instead of one shrink per ell rows.
TEST(FdShrinkTest, AppendRowsBulkPathShrinksFarLessOften) {
  const size_t ell = 8, d = 6, n = 320;
  Matrix a;
  for (const auto& r : GaussianRows(n, d, 9)) a.AppendRow(r);

  FrequentDirections bulk(ell, d);
  bulk.AppendRows(a);
  FrequentDirections row_at_a_time(ell, d);
  for (size_t i = 0; i < a.rows(); ++i) {
    row_at_a_time.Append(a.RowVector(i));
  }

  // Row path: one shrink per at most 2*ell appended rows once warmed up
  // (exactly ell when d >= ell; here d < ell so each shrink keeps d rows
  // and buys 2*ell - d appends).
  EXPECT_GE(row_at_a_time.shrink_count(), n / (2 * ell));
  // Bulk path: one shrink per ~(capacity - ell) = 3*ell rows, so at most
  // half (actually ~a third) of the row-at-a-time count.
  EXPECT_LE(bulk.shrink_count(), row_at_a_time.shrink_count() / 2);
  EXPECT_GE(bulk.shrink_count(), 1u);

  // Identical accounting and the same FD guarantees.
  EXPECT_DOUBLE_EQ(bulk.stream_squared_frobenius(),
                   row_at_a_time.stream_squared_frobenius());
  EXPECT_LT(bulk.rows(), 2 * ell);
  const double bound = bulk.stream_squared_frobenius() /
                       static_cast<double>(ell + 1);
  EXPECT_LE(bulk.total_shrinkage(), bound + 1e-9);

  Matrix diff = a.Gram();
  diff.Subtract(bulk.Gram());
  linalg::EigenDecomposition e = linalg::SymmetricEigen(diff);
  EXPECT_LE(e.eigenvalues.front(), bulk.total_shrinkage() + 1e-8);
  EXPECT_GE(e.eigenvalues.back(),
            -1e-8 * bulk.stream_squared_frobenius());
}

// Tentpole equivalence: the Lanczos-backed FD must match the Jacobi
// reference backend shrink-for-shrink — same shrink schedule, matching
// shrinkage accounting and spectra, and a coordinator-level covariance
// error that agrees within 1e-8.
TEST(FdShrinkTest, LanczosBackendMatchesJacobiBackend) {
  const size_t ell = 8, d = 20, n = 800;
  FrequentDirections lanczos(ell, d);
  lanczos.set_shrink_backend(FdShrinkBackend::kLanczos);
  FrequentDirections jacobi(ell, d);
  jacobi.set_shrink_backend(FdShrinkBackend::kJacobi);

  Matrix a;
  for (const auto& r : GaussianRows(n, d, 21)) {
    a.AppendRow(r);
    lanczos.Append(r);
    jacobi.Append(r);
  }
  ASSERT_GE(lanczos.shrink_count(), 40u);
  EXPECT_EQ(lanczos.shrink_count(), jacobi.shrink_count());
  EXPECT_EQ(lanczos.lanczos_fallback_count(), 0u);
  EXPECT_DOUBLE_EQ(lanczos.stream_squared_frobenius(),
                   jacobi.stream_squared_frobenius());

  const double scale = lanczos.stream_squared_frobenius();
  EXPECT_NEAR(lanczos.total_shrinkage(), jacobi.total_shrinkage(),
              1e-8 * scale);
  std::vector<double> sl = Spectrum(lanczos.sketch(), d);
  std::vector<double> sj = Spectrum(jacobi.sketch(), d);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(sl[i] * sl[i], sj[i] * sj[i], 1e-8 * scale) << "i=" << i;
  }

  // Coordinator-level agreement: covariance error of the two sketches
  // against the exact Gram differs by at most 1e-8.
  Matrix truth = a.Gram();
  const auto cov_err = [&](const FrequentDirections& fd) {
    Matrix diff = truth;
    diff.Subtract(fd.Gram());
    return linalg::SpectralNormSymmetric(diff) / a.SquaredFrobeniusNorm();
  };
  EXPECT_NEAR(cov_err(lanczos), cov_err(jacobi), 1e-8);
}

// Wide-buffer regime (4*ell < d): the Lanczos path iterates on the rows
// without materializing the d x d Gram; it must still match the Jacobi
// reference.
TEST(FdShrinkTest, LanczosBackendMatchesJacobiInWideRegime) {
  const size_t ell = 4, d = 48, n = 200;  // 4*ell = 16 < d
  FrequentDirections lanczos(ell, d);
  lanczos.set_shrink_backend(FdShrinkBackend::kLanczos);
  FrequentDirections jacobi(ell, d);
  jacobi.set_shrink_backend(FdShrinkBackend::kJacobi);
  for (const auto& r : GaussianRows(n, d, 31)) {
    lanczos.Append(r);
    jacobi.Append(r);
  }
  ASSERT_GE(lanczos.shrink_count(), 10u);
  EXPECT_EQ(lanczos.shrink_count(), jacobi.shrink_count());
  EXPECT_EQ(lanczos.lanczos_fallback_count(), 0u);
  const double scale = lanczos.stream_squared_frobenius();
  EXPECT_NEAR(lanczos.total_shrinkage(), jacobi.total_shrinkage(),
              1e-8 * scale);
  std::vector<double> sl = Spectrum(lanczos.sketch(), d);
  std::vector<double> sj = Spectrum(jacobi.sketch(), d);
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(sl[i] * sl[i], sj[i] * sj[i], 1e-8 * scale) << "i=" << i;
  }
}

// Satellite regression: a degenerate spectrum with lambda_ell ==
// lambda_{ell+1} exactly (orthogonal rows of equal norm) makes the shrink
// subtraction lambda_i - delta hit zero for every direction; roundoff on
// either side must clamp instead of producing sqrt(negative) = NaN.
TEST(FdShrinkTest, DegenerateTiedSpectrumProducesNoNaN) {
  const size_t ell = 4, d = 8;
  for (FdShrinkBackend backend :
       {FdShrinkBackend::kLanczos, FdShrinkBackend::kJacobi}) {
    FrequentDirections fd(ell, d);
    fd.set_shrink_backend(backend);
    // 3 copies of each canonical direction, all with squared norm 4:
    // every eigenvalue of the buffer Gram ties at 12.
    for (int copy = 0; copy < 3; ++copy) {
      for (size_t i = 0; i < d; ++i) {
        std::vector<double> row(d, 0.0);
        row[i] = 2.0;
        fd.Append(row);
      }
    }
    fd.Compress();
    EXPECT_GE(fd.shrink_count(), 1u);
    for (size_t i = 0; i < fd.rows(); ++i) {
      for (size_t j = 0; j < d; ++j) {
        EXPECT_TRUE(std::isfinite(fd.sketch()(i, j)))
            << "backend=" << static_cast<int>(backend) << " (" << i << ","
            << j << ")";
      }
    }
    // Accounting stays within the FD bound despite the tie at the cutoff.
    EXPECT_LE(fd.total_shrinkage(),
              fd.stream_squared_frobenius() / static_cast<double>(ell + 1) +
                  1e-9);
  }
}

// Switching backends mid-stream must be safe in both directions: the
// Jacobi warm-start invariant is invalidated by a Lanczos shrink and
// rebuilt cold on the next Jacobi one.
TEST(FdShrinkTest, BackendSwitchMidStreamKeepsTheBound) {
  const size_t ell = 6, d = 10, n = 600;
  FrequentDirections fd(ell, d);
  Matrix a;
  auto rows = GaussianRows(n, d, 77);
  for (size_t i = 0; i < n; ++i) {
    fd.set_shrink_backend((i / 100) % 2 == 0 ? FdShrinkBackend::kLanczos
                                             : FdShrinkBackend::kJacobi);
    a.AppendRow(rows[i]);
    fd.Append(rows[i]);
  }
  ASSERT_GE(fd.shrink_count(), 40u);
  const double bound =
      a.SquaredFrobeniusNorm() / static_cast<double>(ell + 1);
  EXPECT_LE(fd.total_shrinkage(), bound + 1e-9);
  Matrix diff = a.Gram();
  diff.Subtract(fd.Gram());
  linalg::EigenDecomposition e = linalg::SymmetricEigen(diff);
  EXPECT_LE(e.eigenvalues.front(), fd.total_shrinkage() + 1e-8);
  EXPECT_GE(e.eigenvalues.back(), -1e-8 * a.SquaredFrobeniusNorm());
}

TEST(FdShrinkTest, AppendRowsSelfAliasIsSafe) {
  const size_t ell = 6, d = 5;
  FrequentDirections fd(ell, d);
  auto rows = GaussianRows(5, d, 13);
  for (const auto& r : rows) fd.Append(r);
  const double pre_mass = fd.stream_squared_frobenius();

  fd.AppendRows(fd.sketch());  // aliases the internal buffer

  // 10 rows < 2*ell: no shrink, so this is an exact doubling.
  EXPECT_DOUBLE_EQ(fd.stream_squared_frobenius(), 2.0 * pre_mass);
  ASSERT_EQ(fd.rows(), 10u);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = 0; j < d; ++j) {
      EXPECT_DOUBLE_EQ(fd.sketch()(i, j), rows[i][j]);
      EXPECT_DOUBLE_EQ(fd.sketch()(5 + i, j), rows[i][j]);
    }
  }
}

}  // namespace
}  // namespace sketch
}  // namespace dmt
