// The serving layer's headline correctness harness (TSan-covered in CI):
// N reader threads hammer the SnapshotStore/QueryEngine while the
// SimulationDriver ingests at full rate, and every snapshot a reader
// observes must be bit-identical — by canonical serialization — to the
// single-threaded oracle's state at *some* window boundary. That rules
// out torn reads (a half-published snapshot serializes to bytes no
// boundary ever produced) and future leakage (a window index the oracle
// never reached). A second suite pins an old snapshot and proves it
// stays byte-stable while new windows publish over it.
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hh/p2_threshold.h"
#include "matrix/mp1_batched_fd.h"
#include "serve/query_engine.h"
#include "serve/serving_coordinator.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "stream/simulation_driver.h"

namespace dmt {
namespace {

constexpr size_t kReaders = 4;
constexpr size_t kSites = 8;
constexpr size_t kChunk = 256;

// Deterministic weighted HH workload: a skewed element mix, arrivals
// round-robined over sites.
void BuildHhWorkload(size_t n, std::vector<size_t>* sites,
                     std::vector<stream::WeightedUpdate>* items) {
  sites->resize(n);
  items->resize(n);
  for (size_t i = 0; i < n; ++i) {
    (*sites)[i] = (i * 7) % kSites;
    (*items)[i].element = (i * i + 3 * i) % 97;
    (*items)[i].weight = 1.0 + static_cast<double>(i % 5);
  }
}

// Deterministic matrix workload: low-dimensional rows with drifting
// direction so the sketch keeps changing between windows.
void BuildMatrixWorkload(size_t n, size_t dim, std::vector<size_t>* sites,
                         std::vector<std::vector<double>>* rows) {
  sites->resize(n);
  rows->assign(n, std::vector<double>(dim, 0.0));
  for (size_t i = 0; i < n; ++i) {
    (*sites)[i] = (i * 5) % kSites;
    for (size_t j = 0; j < dim; ++j) {
      (*rows)[i][j] =
          static_cast<double>(((i + 1) * (j + 2)) % 11) / 3.0 +
          (j == i % dim ? 2.0 : 0.0);
    }
  }
}

// window_index -> canonical bytes at that boundary, recorded from a
// single-threaded run. Window 0 is the pre-first-window empty snapshot.
using OracleMap = std::map<uint64_t, std::vector<uint8_t>>;

template <typename RunFn>
OracleMap RecordOracle(const RunFn& run_with_serving) {
  OracleMap oracle;
  serve::SerializeSnapshot(*serve::BuildEmptySnapshot(), &oracle[0]);
  serve::SnapshotStore store;
  serve::ServingCoordinator serving(&store);
  serving.set_publish_observer([&oracle](const serve::Snapshot& snap) {
    serve::SerializeSnapshot(snap, &oracle[snap.window_index]);
  });
  run_with_serving(&serving, /*threads=*/1);
  return oracle;
}

// Live run: ingestion on this thread (driver at `ingest_threads`),
// kReaders reader threads acquiring/querying until ingestion finishes.
// Every acquired snapshot must match the oracle bytes for its window,
// and per-reader window indexes must be monotone (publication order).
template <typename RunFn>
void RunLiveAgainstOracle(const OracleMap& oracle,
                          const RunFn& run_with_serving,
                          size_t ingest_threads) {
  serve::SnapshotStore store;
  serve::ServingCoordinator serving(&store);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> observations{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      serve::SnapshotReader reader(&store);
      std::vector<uint8_t> bytes;
      uint64_t last_window = 0;
      while (!done.load(std::memory_order_acquire)) {
        serve::SnapshotRef ref = reader.Acquire();
        const serve::Snapshot& snap = *ref;
        // Exercise real queries on the pinned snapshot — TSan sees any
        // write racing these reads.
        serve::QueryEngine engine(&snap);
        if (snap.has_hh) {
          (void)engine.TopK(3);
          (void)engine.TopKMass(5);
          (void)engine.ElementWeight(42);
        }
        if (snap.has_matrix && !snap.sketch.empty()) {
          std::vector<double> x(snap.sketch.cols(), 0.0);
          x[0] = 1.0;
          (void)engine.CovarianceQuadraticForm(x);
          (void)engine.TopSingularValues(2);
        }
        serve::SerializeSnapshot(snap, &bytes);
        auto it = oracle.find(snap.window_index);
        const bool ok = it != oracle.end() && it->second == bytes &&
                        snap.window_index >= last_window;
        if (!ok) mismatches.fetch_add(1, std::memory_order_relaxed);
        last_window = snap.window_index;
        observations.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  run_with_serving(&serving, ingest_threads);
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GT(observations.load(), 0u);
  // After ingestion the current snapshot is the last oracle window.
  serve::SnapshotReader reader(&store);
  serve::SnapshotRef final_ref = reader.Acquire();
  EXPECT_EQ(final_ref->window_index, oracle.rbegin()->first);
  std::vector<uint8_t> bytes;
  serve::SerializeSnapshot(*final_ref, &bytes);
  EXPECT_EQ(bytes, oracle.rbegin()->second);
}

TEST(ServingConcurrencyTest, HhReadersMatchOracleWindows) {
  std::vector<size_t> sites;
  std::vector<stream::WeightedUpdate> items;
  BuildHhWorkload(20000, &sites, &items);

  const auto run = [&](serve::ServingCoordinator* serving, size_t threads) {
    stream::SimulationOptions opt;
    opt.threads = threads;
    opt.chunk_elements = kChunk;
    stream::SimulationDriver driver(opt);
    hh::P2Threshold protocol(kSites, 0.1);
    serving->AttachHH(&driver, &protocol);
    driver.Run(&protocol, sites, items);
    serving->Detach();
  };

  const OracleMap oracle = RecordOracle(run);
  ASSERT_GT(oracle.size(), 10u);  // many windows, or the test proves little
  RunLiveAgainstOracle(oracle, run, /*ingest_threads=*/2);
}

TEST(ServingConcurrencyTest, MatrixReadersMatchOracleWindows) {
  std::vector<size_t> sites;
  std::vector<std::vector<double>> rows;
  BuildMatrixWorkload(6000, 8, &sites, &rows);

  const auto run = [&](serve::ServingCoordinator* serving, size_t threads) {
    stream::SimulationOptions opt;
    opt.threads = threads;
    opt.chunk_elements = kChunk;
    stream::SimulationDriver driver(opt);
    matrix::MP1BatchedFD protocol(kSites, 0.25);
    serving->AttachMatrix(&driver, &protocol);
    driver.Run(&protocol, sites, rows);
    serving->Detach();
  };

  const OracleMap oracle = RecordOracle(run);
  ASSERT_GT(oracle.size(), 5u);
  RunLiveAgainstOracle(oracle, run, /*ingest_threads=*/2);
}

// An old epoch must stay valid and byte-identical while new windows
// publish over it — the long-term pin half of the RCU contract.
TEST(SnapshotPinningTest, PinnedSnapshotSurvivesLaterWindows) {
  std::vector<size_t> sites;
  std::vector<stream::WeightedUpdate> items;
  BuildHhWorkload(20000, &sites, &items);
  const std::vector<size_t> first_half_sites(sites.begin(),
                                             sites.begin() + 10000);
  const std::vector<stream::WeightedUpdate> first_half(items.begin(),
                                                       items.begin() + 10000);
  const std::vector<size_t> second_half_sites(sites.begin() + 10000,
                                              sites.end());
  const std::vector<stream::WeightedUpdate> second_half(items.begin() + 10000,
                                                        items.end());

  serve::SnapshotStore store;
  stream::SimulationOptions opt;
  opt.threads = 2;
  opt.chunk_elements = kChunk;
  stream::SimulationDriver driver(opt);
  hh::P2Threshold protocol(kSites, 0.1);
  // Declared after the driver: the coordinator's destructor unhooks the
  // driver callback, so the driver must outlive it.
  serve::ServingCoordinator serving(&store);
  serving.AttachHH(&driver, &protocol);

  driver.Run(&protocol, first_half_sites, first_half);

  serve::SnapshotReader reader(&store);
  serve::SnapshotRef pinned = reader.Acquire();
  std::vector<uint8_t> before;
  serve::SerializeSnapshot(*pinned, &before);
  const uint64_t pinned_window = pinned->window_index;
  const uint64_t reclaimed_before = store.reclaimed_count();

  driver.Run(&protocol, second_half_sites, second_half);
  EXPECT_GT(serving.windows_published(), 0u);

  // The pin held: bytes unchanged, snapshot untouched by later windows.
  std::vector<uint8_t> after;
  serve::SerializeSnapshot(*pinned, &after);
  EXPECT_EQ(before, after);
  EXPECT_EQ(pinned->window_index, pinned_window);

  // Newer windows were reclaimed around the pin (the pin blocks only its
  // own publication), and dropping the pin lets the next publish free it.
  EXPECT_GT(store.reclaimed_count(), reclaimed_before);
  EXPECT_GE(store.retired_count(), 1u);
  pinned.Reset();
  EXPECT_FALSE(pinned);
  serving.PublishWindow(serving.windows_published() + 1, items.size());
  // With the pin gone and every reader quiescent, the next publish
  // reclaims both the formerly-pinned snapshot and the superseded one.
  EXPECT_EQ(store.retired_count(), 0u);
}

// Pins taken mid-ingestion from a racing reader thread stay byte-stable
// too (epoch guard + refcount interplay under churn).
TEST(SnapshotPinningTest, ConcurrentPinsStayStable) {
  std::vector<size_t> sites;
  std::vector<stream::WeightedUpdate> items;
  BuildHhWorkload(20000, &sites, &items);

  serve::SnapshotStore store;
  stream::SimulationOptions opt;
  opt.threads = 2;
  opt.chunk_elements = kChunk;
  stream::SimulationDriver driver(opt);
  hh::P2Threshold protocol(kSites, 0.1);
  serve::ServingCoordinator serving(&store);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> readers;
  for (size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&]() {
      serve::SnapshotReader reader(&store);
      while (!done.load(std::memory_order_acquire)) {
        serve::SnapshotRef pin = reader.Acquire();
        const uint64_t sum_before = serve::SnapshotChecksum(*pin);
        // Hold the pin across publications, then re-verify.
        std::this_thread::yield();
        if (serve::SnapshotChecksum(*pin) != sum_before) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  serving.AttachHH(&driver, &protocol);
  driver.Run(&protocol, sites, items);
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
}

}  // namespace
}  // namespace dmt
