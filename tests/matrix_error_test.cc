#include "matrix/error.h"

#include <cmath>
#include <gtest/gtest.h>

#include "linalg/spectral.h"
#include "util/rng.h"

namespace dmt {
namespace matrix {
namespace {

using linalg::Matrix;

TEST(CovarianceTrackerTest, MatchesDirectGram) {
  Rng rng(1);
  Matrix a = linalg::RandomGaussianMatrix(50, 6, &rng);
  CovarianceTracker t(6);
  for (size_t i = 0; i < a.rows(); ++i) t.AddRow(a.Row(i), a.cols());
  EXPECT_LT(t.gram().MaxAbsDiff(a.Gram()), 1e-10);
  EXPECT_NEAR(t.squared_frobenius(), a.SquaredFrobeniusNorm(), 1e-9);
  EXPECT_EQ(t.rows_seen(), 50u);
}

TEST(CovarianceErrorTest, ZeroForIdenticalGrams) {
  Rng rng(2);
  Matrix a = linalg::RandomGaussianMatrix(30, 5, &rng);
  EXPECT_NEAR(CovarianceError(a.Gram(), a.Gram(), a.SquaredFrobeniusNorm()),
              0.0, 1e-12);
}

TEST(CovarianceErrorTest, KnownDifference) {
  // gram_a = diag(4, 1), gram_b = diag(1, 1): ||diff||_2 = 3, frob = 5.
  Matrix ga = Matrix::FromRows({{4, 0}, {0, 1}});
  Matrix gb = Matrix::FromRows({{1, 0}, {0, 1}});
  EXPECT_NEAR(CovarianceError(ga, gb, 5.0), 0.6, 1e-12);
}

TEST(CovarianceErrorTest, MatchesMaxDirectionalDeviation) {
  Rng rng(3);
  Matrix a = linalg::RandomGaussianMatrix(40, 6, &rng);
  Matrix b = linalg::RandomGaussianMatrix(20, 6, &rng);
  const double err =
      CovarianceError(a.Gram(), b.Gram(), a.SquaredFrobeniusNorm());
  // Exhaustive-ish check: no random direction can exceed the spectral err.
  for (int t = 0; t < 200; ++t) {
    std::vector<double> x = linalg::RandomUnitVector(6, &rng);
    const double da = a.SquaredNormAlong(x);
    const double db = b.SquaredNormAlong(x);
    EXPECT_LE(std::fabs(da - db) / a.SquaredFrobeniusNorm(), err + 1e-10);
  }
}

TEST(SignedCovarianceErrorTest, OneSidedUndercountDetected) {
  // b = a with one row removed: ‖Bx‖² <= ‖Ax‖² everywhere.
  Rng rng(4);
  Matrix a = linalg::RandomGaussianMatrix(30, 5, &rng);
  Matrix b(0, 5);
  for (size_t i = 0; i + 1 < a.rows(); ++i) b.AppendRow(a.Row(i), 5);
  DirectionalErrorRange r =
      SignedCovarianceError(a.Gram(), b.Gram(), a.SquaredFrobeniusNorm());
  EXPECT_GE(r.min_error, -1e-12);  // B never exceeds A
  EXPECT_GT(r.max_error, 0.0);
}

TEST(SignedCovarianceErrorTest, OverestimateShowsNegativeMin) {
  Matrix ga = Matrix::FromRows({{1.0, 0.0}, {0.0, 1.0}});
  Matrix gb = Matrix::FromRows({{2.0, 0.0}, {0.0, 0.5}});
  DirectionalErrorRange r = SignedCovarianceError(ga, gb, 2.0);
  EXPECT_LT(r.min_error, 0.0);
  EXPECT_GT(r.max_error, 0.0);
}

}  // namespace
}  // namespace matrix
}  // namespace dmt
