#include "sketch/frequent_directions.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "data/synthetic_matrix.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/spectral.h"
#include "linalg/vec_ops.h"
#include "util/rng.h"

namespace dmt {
namespace sketch {
namespace {

using linalg::Matrix;

// Exact max over unit x of ‖Ax‖² − ‖Bx‖² = lambda_max(A^T A − B^T B).
double MaxUndercount(const Matrix& a, const FrequentDirections& fd) {
  Matrix diff = a.Gram();
  diff.Subtract(fd.Gram());
  linalg::EigenDecomposition e = linalg::SymmetricEigen(diff);
  return e.eigenvalues.front();
}

double MinUndercount(const Matrix& a, const FrequentDirections& fd) {
  Matrix diff = a.Gram();
  diff.Subtract(fd.Gram());
  linalg::EigenDecomposition e = linalg::SymmetricEigen(diff);
  return e.eigenvalues.back();
}

TEST(FrequentDirectionsTest, ExactWhileUnderBuffer) {
  FrequentDirections fd(8);
  Rng rng(1);
  Matrix a = linalg::RandomGaussianMatrix(10, 4, &rng);
  fd.AppendRows(a);
  // 10 rows < 2*8: nothing shrunk yet, sketch is the data itself.
  EXPECT_EQ(fd.rows(), 10u);
  EXPECT_DOUBLE_EQ(fd.total_shrinkage(), 0.0);
  EXPECT_LT(a.Gram().MaxAbsDiff(fd.Gram()), 1e-12);
}

TEST(FrequentDirectionsTest, RowCountStaysBelowTwiceEll) {
  FrequentDirections fd(6);
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row(5);
    for (auto& v : row) v = rng.NextGaussian();
    fd.Append(row);
    EXPECT_LT(fd.rows(), 12u);
  }
  fd.Compress();
  EXPECT_LE(fd.rows(), 6u);
}

TEST(FrequentDirectionsTest, StreamMassTracked) {
  FrequentDirections fd(4);
  fd.Append({3.0, 4.0});
  fd.Append({0.0, 2.0});
  EXPECT_DOUBLE_EQ(fd.stream_squared_frobenius(), 29.0);
}

// The FD guarantee: 0 <= ‖Ax‖² − ‖Bx‖² <= ‖A‖²_F/(ell+1) for all x,
// swept over sketch sizes and data regimes.
class FdBoundTest
    : public ::testing::TestWithParam<std::tuple<size_t, int, int>> {};

TEST_P(FdBoundTest, DirectionalUndercountWithinBound) {
  auto [ell, regime, seed] = GetParam();
  Rng rng(seed);
  Matrix a;
  if (regime == 0) {
    a = linalg::RandomGaussianMatrix(300, 12, &rng);
  } else {
    // Low-rank-plus-noise regime.
    data::SyntheticMatrixConfig cfg;
    cfg.dim = 12;
    cfg.latent_rank = 3;
    cfg.seed = static_cast<uint64_t>(seed);
    data::SyntheticMatrixGenerator gen(cfg);
    a = gen.Take(300);
  }
  FrequentDirections fd(ell);
  fd.AppendRows(a);

  const double bound =
      a.SquaredFrobeniusNorm() / static_cast<double>(ell + 1);
  EXPECT_GE(MinUndercount(a, fd), -1e-8 * a.SquaredFrobeniusNorm());
  EXPECT_LE(MaxUndercount(a, fd), bound + 1e-8 * a.SquaredFrobeniusNorm());
  EXPECT_LE(fd.total_shrinkage(), bound + 1e-9);
  // The measured undercount is also bounded by the tracked shrinkage.
  EXPECT_LE(MaxUndercount(a, fd), fd.total_shrinkage() + 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FdBoundTest,
    ::testing::Combine(::testing::Values<size_t>(2, 4, 8, 16),
                       ::testing::Values(0, 1), ::testing::Values(1, 2)));

TEST(FrequentDirectionsTest, WithEpsilonMeetsEpsilonBound) {
  const double eps = 0.05;
  FrequentDirections fd = FrequentDirections::WithEpsilon(eps);
  Rng rng(5);
  Matrix a = linalg::RandomGaussianMatrix(400, 10, &rng);
  fd.AppendRows(a);
  EXPECT_LE(MaxUndercount(a, fd),
            eps * a.SquaredFrobeniusNorm() + 1e-8);
}

TEST(FrequentDirectionsTest, MergePreservesCombinedBound) {
  const size_t ell = 8;
  Rng rng(6);
  Matrix a1 = linalg::RandomGaussianMatrix(200, 9, &rng);
  Matrix a2 = linalg::RandomGaussianMatrix(200, 9, &rng);
  FrequentDirections f1(ell), f2(ell);
  f1.AppendRows(a1);
  f2.AppendRows(a2);
  f1.Merge(f2);

  Matrix stacked = a1;
  for (size_t i = 0; i < a2.rows(); ++i) {
    stacked.AppendRow(a2.Row(i), a2.cols());
  }
  const double bound =
      stacked.SquaredFrobeniusNorm() / static_cast<double>(ell + 1);
  EXPECT_LE(MaxUndercount(stacked, f1), bound + 1e-8);
  EXPECT_GE(MinUndercount(stacked, f1),
            -1e-8 * stacked.SquaredFrobeniusNorm());
  EXPECT_DOUBLE_EQ(f1.stream_squared_frobenius(),
                   stacked.SquaredFrobeniusNorm());
}

// Merge bulk-appends the other sketch's buffer and shrinks once. When the
// combined buffers fit under 2*ell no shrink runs at all, and the merge must
// be exactly a concatenation with additive accounting.
TEST(FrequentDirectionsTest, MergeWithoutShrinkIsExactConcatenation) {
  const size_t ell = 8;
  Rng rng(9);
  Matrix a1 = linalg::RandomGaussianMatrix(7, 5, &rng);
  Matrix a2 = linalg::RandomGaussianMatrix(8, 5, &rng);
  FrequentDirections f1(ell), f2(ell);
  f1.AppendRows(a1);
  f2.AppendRows(a2);
  const double pre_ssf = f1.stream_squared_frobenius();
  const double pre_shrinkage = f1.total_shrinkage() + f2.total_shrinkage();
  const size_t pre_shrinks = f1.shrink_count();

  f1.Merge(f2);  // 7 + 8 = 15 rows < 2*ell: no shrink may fire.

  EXPECT_EQ(f1.shrink_count(), pre_shrinks);
  EXPECT_EQ(f1.rows(), 15u);
  EXPECT_DOUBLE_EQ(f1.stream_squared_frobenius(),
                   pre_ssf + f2.stream_squared_frobenius());
  EXPECT_DOUBLE_EQ(f1.total_shrinkage(), pre_shrinkage);
  for (size_t i = 0; i < a1.rows(); ++i) {
    for (size_t j = 0; j < a1.cols(); ++j) {
      EXPECT_DOUBLE_EQ(f1.sketch()(i, j), a1(i, j));
    }
  }
  for (size_t i = 0; i < a2.rows(); ++i) {
    for (size_t j = 0; j < a2.cols(); ++j) {
      EXPECT_DOUBLE_EQ(f1.sketch()(a1.rows() + i, j), a2(i, j));
    }
  }
}

// Regression for the row-at-a-time merge: merging two near-full sketches
// used to trigger up to one SVD shrink per ell_ appended rows; the bulk path
// must run at most ONE shrink while keeping the same error accounting
// (stream_sq_frob_ exactly additive, total_shrinkage_ within the FD bound).
TEST(FrequentDirectionsTest, MergeRunsAtMostOneShrinkWithSameBounds) {
  const size_t ell = 6;
  Rng rng(10);
  Matrix a1 = linalg::RandomGaussianMatrix(150, 8, &rng);
  Matrix a2 = linalg::RandomGaussianMatrix(150, 8, &rng);
  FrequentDirections f1(ell), f2(ell);
  f1.AppendRows(a1);
  f2.AppendRows(a2);
  // Both buffers near capacity so the merge is forced over 2*ell.
  ASSERT_GE(f1.rows() + f2.rows(), 2 * ell);
  const double pre_ssf =
      f1.stream_squared_frobenius() + f2.stream_squared_frobenius();
  const double pre_shrinkage = f1.total_shrinkage() + f2.total_shrinkage();
  const size_t pre_shrinks = f1.shrink_count();

  f1.Merge(f2);

  EXPECT_EQ(f1.shrink_count(), pre_shrinks + 1);
  EXPECT_LT(f1.rows(), 2 * ell);
  EXPECT_DOUBLE_EQ(f1.stream_squared_frobenius(), pre_ssf);
  // The single merge shrink only adds its own cutoff on top of the parts'.
  EXPECT_GE(f1.total_shrinkage(), pre_shrinkage);
  EXPECT_LE(f1.total_shrinkage(),
            f1.stream_squared_frobenius() / static_cast<double>(ell + 1));
  // Directional guarantee against the stacked raw stream still holds with
  // total_shrinkage_ as the undercount certificate.
  Matrix stacked = a1;
  for (size_t i = 0; i < a2.rows(); ++i) {
    stacked.AppendRow(a2.Row(i), a2.cols());
  }
  EXPECT_LE(MaxUndercount(stacked, f1), f1.total_shrinkage() + 1e-8);
  EXPECT_GE(MinUndercount(stacked, f1),
            -1e-8 * stacked.SquaredFrobeniusNorm());
}

TEST(FrequentDirectionsTest, SelfMergeDoublesTheSketch) {
  const size_t ell = 6;
  Rng rng(11);
  Matrix a = linalg::RandomGaussianMatrix(40, 5, &rng);
  FrequentDirections fd(ell);
  fd.AppendRows(a);
  const double pre_ssf = fd.stream_squared_frobenius();
  const double pre_shrinkage = fd.total_shrinkage();

  fd.Merge(fd);

  EXPECT_LT(fd.rows(), 2 * ell);
  EXPECT_DOUBLE_EQ(fd.stream_squared_frobenius(), 2.0 * pre_ssf);
  EXPECT_GE(fd.total_shrinkage(), 2.0 * pre_shrinkage);
  EXPECT_LE(fd.total_shrinkage(),
            fd.stream_squared_frobenius() / static_cast<double>(ell + 1));
  // The doubled stream is A stacked on A; the guarantee must hold for it.
  Matrix stacked = a;
  for (size_t i = 0; i < a.rows(); ++i) {
    stacked.AppendRow(a.Row(i), a.cols());
  }
  EXPECT_LE(MaxUndercount(stacked, fd), fd.total_shrinkage() + 1e-8);
  EXPECT_GE(MinUndercount(stacked, fd),
            -1e-8 * stacked.SquaredFrobeniusNorm());
}

TEST(FrequentDirectionsTest, LowRankInputRecoveredNearlyExactly) {
  // Rank-2 stream, sketch of 8 rows: error should be ~0 (FD only sheds
  // mass when forced, and rank 2 fits comfortably).
  FrequentDirections fd(8);
  Rng rng(7);
  Matrix a;
  for (int i = 0; i < 300; ++i) {
    double c1 = rng.NextGaussian(), c2 = rng.NextGaussian();
    std::vector<double> row(6, 0.0);
    row[0] = 3.0 * c1;
    row[1] = 2.0 * c2;
    a.AppendRow(row);
    fd.Append(row);
  }
  EXPECT_LE(MaxUndercount(a, fd), 1e-8 * a.SquaredFrobeniusNorm());
}

TEST(FrequentDirectionsTest, SquaredNormAlongMatchesGram) {
  FrequentDirections fd(5);
  Rng rng(8);
  Matrix a = linalg::RandomGaussianMatrix(100, 7, &rng);
  fd.AppendRows(a);
  std::vector<double> x = linalg::RandomUnitVector(7, &rng);
  std::vector<double> gx = fd.Gram().MultiplyVector(x);
  EXPECT_NEAR(fd.SquaredNormAlong(x), linalg::Dot(x, gx), 1e-9);
}

TEST(FrequentDirectionsDeathTest, MergeEllMismatchAborts) {
  FrequentDirections a(4), b(5);
  b.Append({1.0, 2.0});
  EXPECT_DEATH(a.Merge(b), "DMT_CHECK");
}

}  // namespace
}  // namespace sketch
}  // namespace dmt
