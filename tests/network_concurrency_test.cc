// Property test for the sharded Network: concurrent recording from many
// threads (each owning a disjoint set of sites, as the simulation driver
// guarantees) plus concurrent broadcasts must merge to exactly the tally a
// sequential replay of the same operations produces, and the merged totals
// must satisfy the structural invariant
//   total == sum(per_site_up) + broadcast_events * m.
#include "stream/network.h"

#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dmt {
namespace stream {
namespace {

// Deterministic per-site op sequence: op kind keyed off a site-seeded rng
// so the sequential replay regenerates the identical schedule.
void RunSiteOps(Network* net, size_t site, size_t ops, uint64_t seed) {
  Rng rng(seed ^ static_cast<uint64_t>(site));
  for (size_t i = 0; i < ops; ++i) {
    switch (rng.NextBelow(3)) {
      case 0: net->RecordScalar(site); break;
      case 1: net->RecordElement(site); break;
      default: net->RecordVector(site); break;
    }
  }
}

TEST(NetworkConcurrencyTest, ConcurrentShardedRecordsMatchSequentialTally) {
  const size_t kSites = 16;
  const size_t kThreads = 8;  // 2 sites per thread
  const size_t kOpsPerSite = 20000;
  const size_t kBroadcastsPerThread = 37;
  const uint64_t kSeed = 1234;

  Network concurrent(kSites);
  {
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&concurrent, t] {
        const size_t sites_per_thread = kSites / kThreads;
        for (size_t k = 0; k < sites_per_thread; ++k) {
          RunSiteOps(&concurrent, t * sites_per_thread + k, kOpsPerSite,
                     kSeed);
        }
        // Broadcast/round events may fire from any thread.
        for (size_t b = 0; b < kBroadcastsPerThread; ++b) {
          concurrent.RecordBroadcast();
          concurrent.RecordRound();
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  Network sequential(kSites);
  for (size_t site = 0; site < kSites; ++site) {
    RunSiteOps(&sequential, site, kOpsPerSite, kSeed);
  }
  for (size_t b = 0; b < kThreads * kBroadcastsPerThread; ++b) {
    sequential.RecordBroadcast();
    sequential.RecordRound();
  }

  const CommStats& got = concurrent.stats();
  const CommStats& want = sequential.stats();
  EXPECT_EQ(got.scalar_up, want.scalar_up);
  EXPECT_EQ(got.element_up, want.element_up);
  EXPECT_EQ(got.vector_up, want.vector_up);
  EXPECT_EQ(got.broadcast_events, want.broadcast_events);
  EXPECT_EQ(got.broadcast_msgs, want.broadcast_msgs);
  EXPECT_EQ(got.rounds, want.rounds);
  EXPECT_EQ(got.total(), want.total());
  EXPECT_EQ(concurrent.per_site_up(), sequential.per_site_up());
}

TEST(NetworkConcurrencyTest, TotalEqualsPerSiteSumPlusBroadcastCost) {
  const size_t kSites = 8;
  Network net(kSites);
  {
    std::vector<std::thread> threads;
    for (size_t site = 0; site < kSites; ++site) {
      threads.emplace_back([&net, site] {
        RunSiteOps(&net, site, 5000 + 100 * site, /*seed=*/77);
        if (site % 2 == 0) net.RecordBroadcast();
      });
    }
    for (auto& th : threads) th.join();
  }

  uint64_t per_site_sum = 0;
  for (uint64_t c : net.per_site_up()) per_site_sum += c;
  const CommStats& s = net.stats();
  EXPECT_EQ(s.total_up(), per_site_sum);
  EXPECT_EQ(s.total(), per_site_sum + s.broadcast_events * kSites);
  EXPECT_EQ(s.broadcast_events, kSites / 2);
}

// Aggregate reads are stable between recording phases: calling stats()
// twice with no interleaved records returns identical values (the merge is
// a pure function of the shards).
TEST(NetworkConcurrencyTest, RepeatedMergesAreIdempotent) {
  Network net(3);
  net.RecordScalar(0);
  net.RecordVector(2);
  net.RecordBroadcast();
  const CommStats first = net.stats();  // copy
  const CommStats& second = net.stats();
  EXPECT_EQ(first.total(), second.total());
  EXPECT_EQ(first.scalar_up, second.scalar_up);
  EXPECT_EQ(first.broadcast_msgs, second.broadcast_msgs);
}

}  // namespace
}  // namespace stream
}  // namespace dmt
