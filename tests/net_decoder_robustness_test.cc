// Decoder robustness: the dynamic twin of dmt_lint's untrusted-input
// family. Golden frames (the same messages tests/net_wire_test.cc pins
// byte-for-byte) are replayed through an exhaustive single-byte mutation
// sweep, every truncation, and a seeded multi-byte fuzz pass; every mutant
// must come back as a clean decode error or a clean (bounded) success —
// never an abort and never an allocation beyond what the mutant's own
// byte count can justify. See src/net/frame.h for the header layout the
// position-based assertions below index into.
#include <cstdint>
#include <cstring>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "net/frame.h"
#include "net/messages.h"

namespace dmt {
namespace net {
namespace {

struct GoldenFrame {
  const char* name;
  MsgType type;
  std::vector<uint8_t> payload;
};

// The same message values the golden-byte and round-trip tests in
// tests/net_wire_test.cc check in; one representative per MsgType with a
// payload (kShutdown travels with an empty payload).
std::vector<GoldenFrame> GoldenFrames() {
  std::vector<GoldenFrame> frames;

  {
    HelloMsg m;
    m.site = 3;
    m.num_sites = 9;
    m.num_windows = 1234567;
    m.protocol = "mp2";
    std::vector<uint8_t> p;
    EncodeHello(m, &p);
    frames.push_back({"hello", MsgType::kHello, std::move(p)});
  }
  {
    std::vector<uint8_t> p;
    EncodeWindowEnd({7}, &p);
    frames.push_back({"window_end", MsgType::kWindowEnd, std::move(p)});
  }
  {
    BroadcastMsg m;
    m.window = 3;
    m.value = 2.5;
    std::vector<uint8_t> p;
    EncodeBroadcast(m, &p);
    frames.push_back({"broadcast", MsgType::kBroadcast, std::move(p)});
  }
  {
    HHFlushMsg m;
    m.weight = 12.0;
    m.k = 2;
    m.total_weight = 12.0;
    m.total_decrement = 1.5;
    m.counters = {{5, 8.0}, {9, 2.5}};
    std::vector<uint8_t> p;
    EncodeHHFlush(m, &p);
    frames.push_back({"hh_flush", MsgType::kHHFlush, std::move(p)});
  }
  {
    std::vector<uint8_t> p;
    EncodeMatrixScalar({1.0 / 7.0}, &p);
    frames.push_back({"matrix_scalar", MsgType::kMatrixScalar, std::move(p)});
  }
  {
    MatrixDirectionMsg m;
    m.lambda = 4.0;
    m.dir = {0.5, -0.5};
    std::vector<uint8_t> p;
    EncodeMatrixDirection(m, &p);
    frames.push_back(
        {"matrix_direction", MsgType::kMatrixDirection, std::move(p)});
  }
  {
    FdSketchMsg m;
    m.ell = 8;
    m.dim = 5;
    m.stream_sq_frob = 321.5;
    m.total_shrinkage = 0.125;
    m.rows = linalg::Matrix(3, 5);
    for (size_t i = 0; i < 3; ++i) {
      for (size_t j = 0; j < 5; ++j) {
        m.rows(i, j) = static_cast<double>(i) - 0.25 * static_cast<double>(j);
      }
    }
    std::vector<uint8_t> p;
    EncodeFdSketch(m, &p);
    frames.push_back({"fd_sketch", MsgType::kFdSketch, std::move(p)});
  }
  {
    std::vector<uint8_t> p;
    EncodeSiteDone({42}, &p);
    frames.push_back({"site_done", MsgType::kSiteDone, std::move(p)});
  }
  return frames;
}

std::vector<uint8_t> EncodeFrame(const GoldenFrame& g) {
  std::vector<uint8_t> out;
  AppendFrame(g.type, g.payload.data(), g.payload.size(), &out);
  return out;
}

// Runs the payload through the decoder its type byte selects and checks
// that every variable-size output is justified by the input byte count —
// the "no over-allocation" half of the contract. Returns the decoder's
// verdict (true = accepted).
bool DecodePayloadBounded(MsgType type, const uint8_t* p, size_t n) {
  switch (type) {
    case MsgType::kHello: {
      HelloMsg m;
      if (!DecodeHello(p, n, &m)) return false;
      EXPECT_LE(m.protocol.size(), n);
      return true;
    }
    case MsgType::kWindowEnd: {
      WindowEndMsg m;
      return DecodeWindowEnd(p, n, &m);
    }
    case MsgType::kBroadcast: {
      BroadcastMsg m;
      return DecodeBroadcast(p, n, &m);
    }
    case MsgType::kHHFlush: {
      HHFlushMsg m;
      if (!DecodeHHFlush(p, n, &m)) return false;
      EXPECT_LE(m.counters.size() * 16, n);  // 16 bytes per counter
      return true;
    }
    case MsgType::kMatrixScalar: {
      MatrixScalarMsg m;
      return DecodeMatrixScalar(p, n, &m);
    }
    case MsgType::kMatrixDirection: {
      MatrixDirectionMsg m;
      if (!DecodeMatrixDirection(p, n, &m)) return false;
      EXPECT_LE(m.dir.size() * 8, n);  // 8 bytes per element
      return true;
    }
    case MsgType::kFdSketch: {
      FdSketchMsg m;
      if (!DecodeFdSketch(p, n, &m)) return false;
      EXPECT_LE(m.rows.rows() * m.rows.cols() * 8, n);
      return true;
    }
    case MsgType::kSiteDone: {
      SiteDoneMsg m;
      return DecodeSiteDone(p, n, &m);
    }
    case MsgType::kShutdown:
      return true;  // no payload decoder
  }
  return false;
}

// In-memory mirror of RecvFrame (src/net/transport.cc): header decode,
// length check against what "arrived", CRC, then payload dispatch.
bool ConsumeFrame(const std::vector<uint8_t>& bytes) {
  if (bytes.size() < kFrameHeaderBytes) return false;
  FrameHeader h;
  std::string error;
  if (!DecodeFrameHeader(bytes.data(), &h, &error)) {
    EXPECT_FALSE(error.empty());
    return false;
  }
  // DecodeFrameHeader enforces the backstop; a mutant that slipped a
  // larger length through would be the over-allocation the lint guards.
  EXPECT_LE(h.payload_len, kMaxFramePayload);
  if (bytes.size() - kFrameHeaderBytes < h.payload_len) {
    return false;  // RecvFrame would still be blocked on the socket
  }
  const uint8_t* payload = bytes.data() + kFrameHeaderBytes;
  if (!CheckFrameCrc(h, payload, &error)) {
    EXPECT_FALSE(error.empty());
    return false;
  }
  return DecodePayloadBounded(h.type, payload, h.payload_len);
}

// Every single-byte corruption of every golden frame. Positions with a
// structural guarantee assert rejection outright: magic/version (0-4) and
// the length/CRC words (8-15) fail header or CRC validation, and any
// payload byte change (>= 16) is caught by CRC-32, which detects all
// single-byte errors. The type byte (5) may mutate into another valid
// type whose decoder legitimately accepts or rejects the payload, and the
// reserved bytes (6-7) are not validated — there the invariant is only
// no-abort/no-over-allocation (checked inside ConsumeFrame).
TEST(DecoderRobustnessTest, ExhaustiveSingleByteMutations) {
  for (const GoldenFrame& g : GoldenFrames()) {
    const std::vector<uint8_t> frame = EncodeFrame(g);
    ASSERT_TRUE(ConsumeFrame(frame)) << g.name;
    for (size_t pos = 0; pos < frame.size(); ++pos) {
      for (int delta = 1; delta < 256; ++delta) {
        std::vector<uint8_t> mutant = frame;
        mutant[pos] = static_cast<uint8_t>(mutant[pos] ^ delta);
        const bool accepted = ConsumeFrame(mutant);
        const bool must_reject =
            pos <= 4 || (pos >= 8 && pos < kFrameHeaderBytes && pos != 6 &&
                         pos != 7) ||
            pos >= kFrameHeaderBytes;
        if (must_reject) {
          ASSERT_FALSE(accepted)
              << g.name << " byte " << pos << " xor " << delta;
        }
      }
    }
  }
}

// Every proper prefix of every golden frame must be rejected: too short
// for a header, or the header's length outruns the bytes that arrived,
// and a truncation landing exactly on the header never passes CRC against
// an empty payload (all goldens have nonempty payloads).
TEST(DecoderRobustnessTest, ExhaustiveTruncations) {
  for (const GoldenFrame& g : GoldenFrames()) {
    const std::vector<uint8_t> frame = EncodeFrame(g);
    for (size_t len = 0; len < frame.size(); ++len) {
      std::vector<uint8_t> mutant(frame.begin(), frame.begin() + len);
      ASSERT_FALSE(ConsumeFrame(mutant)) << g.name << " truncated to " << len;
    }
    // Payload-level: feed every truncated payload straight to its own
    // decoder, bypassing the CRC that would otherwise mask it.
    for (size_t len = 0; len < g.payload.size(); ++len) {
      EXPECT_FALSE(DecodePayloadBounded(g.type, g.payload.data(), len))
          << g.name << " payload truncated to " << len;
    }
  }
}

// Seeded multi-byte fuzz: random corruption clusters plus random resizes,
// frame-level and payload-level. No structural rejection guarantee here —
// the assertion is the contract itself: clean verdicts, bounded outputs,
// and (implicitly) no abort, which would take the test process down.
TEST(DecoderRobustnessTest, SeededMultiByteMutations) {
  for (const GoldenFrame& g : GoldenFrames()) {
    const std::vector<uint8_t> frame = EncodeFrame(g);
    std::mt19937 rng(0xD317u ^ static_cast<uint32_t>(g.type));
    for (int iter = 0; iter < 512; ++iter) {
      std::vector<uint8_t> mutant = frame;
      const size_t flips = 1 + rng() % 8;
      for (size_t f = 0; f < flips; ++f) {
        mutant[rng() % mutant.size()] = static_cast<uint8_t>(rng());
      }
      if (rng() % 4 == 0) mutant.resize(rng() % (frame.size() + 8));
      ConsumeFrame(mutant);

      std::vector<uint8_t> payload = g.payload;
      for (size_t f = 0; f < flips; ++f) {
        payload[rng() % payload.size()] = static_cast<uint8_t>(rng());
      }
      DecodePayloadBounded(g.type, payload.data(), payload.size());
    }
  }
}

}  // namespace
}  // namespace net
}  // namespace dmt
