#include "util/table_printer.h"

#include <gtest/gtest.h>

namespace dmt {
namespace {

TEST(TablePrinterTest, RendersTitleHeaderAndRows) {
  TablePrinter t("My Table");
  t.SetHeader({"a", "b"});
  t.AddRow({"1", "2"});
  t.AddRow({"33", "44"});
  std::string s = t.ToString();
  EXPECT_NE(s.find("My Table"), std::string::npos);
  EXPECT_NE(s.find("a"), std::string::npos);
  EXPECT_NE(s.find("44"), std::string::npos);
}

TEST(TablePrinterTest, ColumnsAreAligned) {
  TablePrinter t("");
  t.SetHeader({"col", "x"});
  t.AddRow({"longvalue", "1"});
  std::string s = t.ToString();
  // The header's "x" must be positioned past the widest cell of column 0.
  size_t header_x = s.find("x");
  size_t longvalue = s.find("longvalue");
  EXPECT_NE(header_x, std::string::npos);
  EXPECT_NE(longvalue, std::string::npos);
  EXPECT_GT(header_x, 9u);
}

TEST(TablePrinterTest, EmptyTitleOmitsTitleLine) {
  TablePrinter t("");
  t.AddRow({"only"});
  std::string s = t.ToString();
  EXPECT_EQ(s.find("=="), std::string::npos);
}

TEST(TablePrinterTest, FormatDoubleRegimes) {
  EXPECT_EQ(TablePrinter::FormatDouble(0.0), "0");
  EXPECT_EQ(TablePrinter::FormatDouble(0.5), "0.5000");
  EXPECT_EQ(TablePrinter::FormatDouble(1.0e-5), "1.0000e-05");
  EXPECT_EQ(TablePrinter::FormatDouble(2.5e7), "2.5000e+07");
  EXPECT_EQ(TablePrinter::FormatDouble(12345.0), "12345");
}

TEST(TablePrinterTest, RaggedRowsDoNotCrash) {
  TablePrinter t("r");
  t.SetHeader({"a", "b", "c"});
  t.AddRow({"1"});
  t.AddRow({"1", "2", "3"});
  EXPECT_FALSE(t.ToString().empty());
}

}  // namespace
}  // namespace dmt
