#include "matrix/baselines.h"

#include <gtest/gtest.h>

#include "data/synthetic_matrix.h"
#include "linalg/jacobi_eigen.h"
#include "linalg/svd.h"
#include "matrix/error.h"

namespace dmt {
namespace matrix {
namespace {

TEST(NaiveSvdBaselineTest, ErrorEqualsTailEigenvalue) {
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 10;
  cfg.latent_rank = 10;
  cfg.decay_power = 0.4;
  cfg.seed = 1;
  data::SyntheticMatrixGenerator gen(cfg);
  const size_t k = 4;
  NaiveSvdBaseline svd(3, cfg.dim, k);
  CovarianceTracker truth(cfg.dim);
  for (int i = 0; i < 5000; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    svd.ProcessRow(static_cast<size_t>(i % 3), row);
  }
  // ||A^T A - B^T B||_2 = lambda_{k+1} for the optimal rank-k B.
  linalg::EigenDecomposition e = linalg::SymmetricEigen(truth.gram());
  const double expected = e.eigenvalues[k] / truth.squared_frobenius();
  EXPECT_NEAR(CovarianceError(truth, svd.CoordinatorGram()), expected,
              1e-8 + 1e-6 * expected);
}

TEST(NaiveSvdBaselineTest, LowRankDataHasTinyError) {
  data::SyntheticMatrixGenerator gen(
      data::SyntheticMatrixGenerator::PamapLike(2));
  NaiveSvdBaseline svd(2, 44, 30);
  CovarianceTracker truth(44);
  for (int i = 0; i < 5000; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    svd.ProcessRow(static_cast<size_t>(i % 2), row);
  }
  EXPECT_LT(CovarianceError(truth, svd.CoordinatorGram()), 1e-4);
}

TEST(NaiveSvdBaselineTest, SketchHasAtMostKRows) {
  NaiveSvdBaseline svd(2, 6, 3);
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 6;
  cfg.seed = 3;
  data::SyntheticMatrixGenerator gen(cfg);
  for (int i = 0; i < 100; ++i) svd.ProcessRow(0, gen.Next());
  EXPECT_LE(svd.CoordinatorSketch().rows(), 3u);
}

TEST(NaiveFdBaselineTest, MeetsFdBound) {
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 12;
  cfg.latent_rank = 12;
  cfg.decay_power = 0.3;
  cfg.noise_level = 0.05;
  cfg.seed = 4;
  data::SyntheticMatrixGenerator gen(cfg);
  const size_t ell = 8;
  NaiveFdBaseline fd(2, ell);
  CovarianceTracker truth(cfg.dim);
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    fd.ProcessRow(static_cast<size_t>(i % 2), row);
  }
  EXPECT_LE(CovarianceError(truth, fd.CoordinatorGram()),
            1.0 / static_cast<double>(ell + 1) + 1e-9);
}

TEST(BaselinesTest, MessageCountEqualsStreamLength) {
  NaiveFdBaseline fd(4, 8);
  NaiveSvdBaseline svd(4, 5, 2);
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 5;
  cfg.seed = 5;
  data::SyntheticMatrixGenerator gen(cfg);
  for (int i = 0; i < 500; ++i) {
    std::vector<double> row = gen.Next();
    fd.ProcessRow(static_cast<size_t>(i % 4), row);
    svd.ProcessRow(static_cast<size_t>(i % 4), row);
  }
  EXPECT_EQ(fd.comm_stats().total(), 500u);
  EXPECT_EQ(svd.comm_stats().total(), 500u);
}

TEST(BaselinesTest, SvdErrorNeverAboveFdError) {
  // SVD is the optimal rank-k summary; FD with ell = k cannot beat it.
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 12;
  cfg.latent_rank = 12;
  cfg.decay_power = 0.25;
  cfg.noise_level = 0.05;
  cfg.seed = 6;
  data::SyntheticMatrixGenerator gen(cfg);
  const size_t k = 6;
  NaiveFdBaseline fd(1, k);
  NaiveSvdBaseline svd(1, cfg.dim, k);
  CovarianceTracker truth(cfg.dim);
  for (int i = 0; i < 4000; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    fd.ProcessRow(0, row);
    svd.ProcessRow(0, row);
  }
  EXPECT_LE(CovarianceError(truth, svd.CoordinatorGram()),
            CovarianceError(truth, fd.CoordinatorGram()) + 1e-9);
}

}  // namespace
}  // namespace matrix
}  // namespace dmt
