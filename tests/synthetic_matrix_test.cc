#include "data/synthetic_matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/svd.h"
#include "linalg/vec_ops.h"

namespace dmt {
namespace data {
namespace {

TEST(SyntheticMatrixTest, RowDimensionAndNormBound) {
  SyntheticMatrixConfig cfg;
  cfg.dim = 16;
  cfg.latent_rank = 4;
  cfg.beta = 9.0;
  SyntheticMatrixGenerator gen(cfg);
  for (int i = 0; i < 1000; ++i) {
    std::vector<double> row = gen.Next();
    ASSERT_EQ(row.size(), 16u);
    EXPECT_LE(linalg::SquaredNorm(row), 9.0 + 1e-9);
  }
}

TEST(SyntheticMatrixTest, DeterministicForSeed) {
  SyntheticMatrixConfig cfg;
  cfg.seed = 123;
  SyntheticMatrixGenerator g1(cfg), g2(cfg);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(g1.Next(), g2.Next());
  }
}

TEST(SyntheticMatrixTest, PamapLikeIsLowRank) {
  SyntheticMatrixGenerator gen(SyntheticMatrixGenerator::PamapLike(1));
  linalg::Matrix a = gen.Take(3000);
  linalg::RightSingular rs = linalg::RightSingularOf(a);
  double total = 0.0, head = 0.0;
  for (size_t i = 0; i < rs.squared_sigma.size(); ++i) {
    total += rs.squared_sigma[i];
    if (i < 30) head += rs.squared_sigma[i];
  }
  // Rank-30 captures essentially all the energy (paper: "low rank").
  EXPECT_GT(head / total, 0.999);
}

TEST(SyntheticMatrixTest, MsdLikeIsHighRank) {
  SyntheticMatrixGenerator gen(SyntheticMatrixGenerator::MsdLike(2));
  linalg::Matrix a = gen.Take(3000);
  linalg::RightSingular rs = linalg::RightSingularOf(a);
  double total = 0.0, head = 0.0;
  for (size_t i = 0; i < rs.squared_sigma.size(); ++i) {
    total += rs.squared_sigma[i];
    if (i < 50) head += rs.squared_sigma[i];
  }
  // Rank-50 leaves a visible residual (paper: "high rank").
  EXPECT_LT(head / total, 0.99);
  EXPECT_GT(head / total, 0.5);
}

TEST(SyntheticMatrixTest, PaperShapesMatch) {
  EXPECT_EQ(SyntheticMatrixGenerator::PamapLike(1).dim, 44u);
  EXPECT_EQ(SyntheticMatrixGenerator::MsdLike(1).dim, 90u);
}

TEST(SyntheticMatrixTest, TakeShape) {
  SyntheticMatrixConfig cfg;
  cfg.dim = 8;
  SyntheticMatrixGenerator gen(cfg);
  linalg::Matrix m = gen.Take(17);
  EXPECT_EQ(m.rows(), 17u);
  EXPECT_EQ(m.cols(), 8u);
}

}  // namespace
}  // namespace data
}  // namespace dmt
