// Large-m determinism and drain-order tests for the batch-reservation
// scheduler (stream/site_schedule.h + SimulationDriver::ExecuteWindow).
//
// The fine-grained contracts: (1) at m = 10^5 sites — the regime the
// scheduler was built for — results stay bit-identical across 1/2/8
// threads and across router policies; (2) the coordinator's targeted
// drain (SynchronizeSites over the merged lane pending-buffers) visits
// sites in strictly ascending order, exactly the sites with queued
// messages, no matter how the lanes carved up the window; (3) forcing a
// protocol onto the full-scan Synchronize() fallback changes counters
// only, never results.
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/zipf.h"
#include "hh/p2_threshold.h"
#include "matrix/mp1_batched_fd.h"
#include "stream/router.h"
#include "stream/simulation_driver.h"

namespace dmt {
namespace stream {
namespace {

constexpr uint64_t kSeed = 77;

std::vector<WeightedUpdate> MakeItems(size_t n, uint64_t seed) {
  data::ZipfianStream z(50000, 1.3, 50.0, seed);
  std::vector<WeightedUpdate> items(n);
  for (auto& it : items) {
    data::WeightedItem w = z.Next();
    it = WeightedUpdate{w.element, w.weight};
  }
  return items;
}

struct HhFingerprint {
  CommStats stats;
  std::vector<uint64_t> per_site;
  double total = 0.0;
  std::vector<std::pair<uint64_t, double>> estimates;
};

HhFingerprint FingerprintOf(const hh::HeavyHitterProtocol& p) {
  HhFingerprint r;
  r.stats = p.comm_stats();
  r.per_site = p.per_site_messages();
  r.total = p.EstimateTotalWeight();
  std::vector<uint64_t> tracked = p.TrackedElements();
  std::sort(tracked.begin(), tracked.end());
  for (uint64_t e : tracked) {
    r.estimates.emplace_back(e, p.EstimateElementWeight(e));
  }
  return r;
}

void ExpectIdentical(const HhFingerprint& a, const HhFingerprint& b) {
  EXPECT_EQ(a.stats.scalar_up, b.stats.scalar_up);
  EXPECT_EQ(a.stats.element_up, b.stats.element_up);
  EXPECT_EQ(a.stats.broadcast_msgs, b.stats.broadcast_msgs);
  EXPECT_EQ(a.stats.rounds, b.stats.rounds);
  EXPECT_EQ(a.per_site, b.per_site);
  // Bit-identical: exact double equality, deliberately no tolerance.
  EXPECT_EQ(a.total, b.total);
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (size_t i = 0; i < a.estimates.size(); ++i) {
    EXPECT_EQ(a.estimates[i].first, b.estimates[i].first);
    EXPECT_EQ(a.estimates[i].second, b.estimates[i].second);
  }
}

// m = 10^5 sites, ~2 arrivals per site: windows where nearly every active
// site has exactly one arrival, many sites never activate, and the
// batch-reservation cursor hands out thousands of ranges per window.
TEST(ParallelScaleTest, LargeMHeavyHitterBitIdenticalAcrossThreads) {
  const size_t kM = 100000;
  const size_t kN = 200000;
  const std::vector<WeightedUpdate> items = MakeItems(kN, kSeed);

  for (RoutingPolicy policy :
       {RoutingPolicy::kUniform, RoutingPolicy::kSkewed}) {
    Router router(kM, policy, kSeed + 1);
    const std::vector<size_t> sites = AssignSites(&router, kN);

    HhFingerprint serial;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      hh::P2Threshold protocol(kM, 0.05);
      SimulationOptions opt;
      opt.threads = threads;
      opt.chunk_elements = 8192;
      SimulationDriver driver(opt);
      driver.Run(&protocol, sites, items);

      const SchedulerStats& sched = driver.scheduler_stats();
      EXPECT_GT(sched.windows, 1u);
      EXPECT_EQ(sched.targeted_drains, sched.windows);
      EXPECT_EQ(sched.drain_stalls, 0u);

      if (threads == 1) {
        serial = FingerprintOf(protocol);
      } else {
        ExpectIdentical(serial, FingerprintOf(protocol));
      }
    }
  }
}

// Matrix path at m = 10^4 (per-site FD sketches make 10^5 sites
// memory-prohibitive; the scheduler code path is identical).
TEST(ParallelScaleTest, LargeMMatrixBitIdenticalAcrossThreads) {
  const size_t kM = 10000;
  const size_t kN = 20000;
  const size_t kDim = 8;
  data::ZipfianStream z(1000, 1.2, 10.0, kSeed + 2);
  std::vector<std::vector<double>> rows(kN);
  for (auto& r : rows) {
    r.assign(kDim, 0.0);
    for (size_t j = 0; j < kDim; ++j) r[j] = 0.1 * (1.0 + z.Next().weight);
  }

  for (RoutingPolicy policy :
       {RoutingPolicy::kUniform, RoutingPolicy::kSkewed}) {
    Router router(kM, policy, kSeed + 3);
    const std::vector<size_t> sites = AssignSites(&router, kN);

    double serial_frob = 0.0;
    uint64_t serial_msgs = 0;
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      matrix::MP1BatchedFD protocol(kM, 0.5);
      SimulationOptions opt;
      opt.threads = threads;
      opt.chunk_elements = 4096;
      SimulationDriver driver(opt);
      driver.Run(&protocol, sites, rows);

      EXPECT_EQ(driver.scheduler_stats().drain_stalls, 0u);
      if (threads == 1) {
        serial_frob = protocol.coordinator_frobenius();
        serial_msgs = protocol.comm_stats().total();
      } else {
        EXPECT_EQ(protocol.coordinator_frobenius(), serial_frob);
        EXPECT_EQ(protocol.comm_stats().total(), serial_msgs);
      }
    }
  }
}

// Records every coordinator drain the driver issues. Each SiteUpdate
// queues one message, so the pending set of a window is exactly its
// active-site set.
class DrainRecorder : public hh::HeavyHitterProtocol {
 public:
  explicit DrainRecorder(size_t num_sites)
      : outbox_(num_sites), stats_{} {}

  void Process(size_t site, uint64_t element, double weight) override {
    SiteUpdate(site, element, weight);
    Synchronize();
  }
  void SiteUpdate(size_t site, uint64_t, double) override {
    ++outbox_[site];
  }
  void Synchronize() override {
    std::vector<uint32_t> all;
    for (size_t s = 0; s < outbox_.size(); ++s) {
      if (outbox_[s] > 0) all.push_back(static_cast<uint32_t>(s));
    }
    RecordDrain(all.data(), all.size());
  }
  void SynchronizeSites(const uint32_t* sites, size_t count) override {
    RecordDrain(sites, count);
  }
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site];
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }

  double EstimateElementWeight(uint64_t) const override { return 0.0; }
  double EstimateTotalWeight() const override { return 0.0; }
  const CommStats& comm_stats() const override { return stats_; }
  std::vector<uint64_t> per_site_messages() const override { return {}; }
  std::string name() const override { return "recorder"; }
  std::vector<uint64_t> TrackedElements() const override { return {}; }

  const std::vector<std::vector<uint32_t>>& drains() const {
    return drains_;
  }

 private:
  void RecordDrain(const uint32_t* sites, size_t count) {
    drains_.emplace_back(sites, sites + count);
    for (size_t i = 0; i < count; ++i) outbox_[sites[i]] = 0;
  }

  std::vector<uint32_t> outbox_;  // queued message count per site
  std::vector<std::vector<uint32_t>> drains_;
  CommStats stats_;
};

// The pinned order contract: every window's drain visits exactly the
// sites with queued messages, each once, strictly ascending — the same
// total order a full Synchronize() scan produces.
TEST(ParallelScaleTest, TargetedDrainVisitsPendingSitesAscending) {
  const size_t kM = 997;  // prime: batches never align with site strides
  const size_t kN = 20000;
  const std::vector<WeightedUpdate> items = MakeItems(kN, kSeed + 4);
  Router router(kM, RoutingPolicy::kUniform, kSeed + 5);
  const std::vector<size_t> sites = AssignSites(&router, kN);

  for (size_t threads : {size_t{2}, size_t{8}}) {
    DrainRecorder recorder(kM);
    SimulationOptions opt;
    opt.threads = threads;
    opt.chunk_elements = 1024;
    SimulationDriver driver(opt);
    driver.Run(&recorder, sites, items);

    const auto ends = WindowEnds(kN, 1024, kM);
    ASSERT_EQ(recorder.drains().size(), ends.size());
    size_t begin = 0;
    for (size_t w = 0; w < ends.size(); ++w) {
      // Expected pending set: the window's distinct sites, ascending.
      std::vector<uint32_t> expected(sites.begin() + begin,
                                     sites.begin() + ends[w]);
      std::sort(expected.begin(), expected.end());
      expected.erase(std::unique(expected.begin(), expected.end()),
                     expected.end());
      const std::vector<uint32_t>& got = recorder.drains()[w];
      ASSERT_TRUE(std::is_sorted(got.begin(), got.end()));
      EXPECT_EQ(got, expected) << "window " << w << ", threads " << threads;
      begin = ends[w];
    }
    EXPECT_EQ(driver.scheduler_stats().targeted_drains, ends.size());
  }
}

// Turning the targeted drain off must change only the counters: the
// full-scan fallback replays the identical total order.
TEST(ParallelScaleTest, FullScanFallbackIsBitEquivalent) {
  const size_t kM = 512;
  const size_t kN = 50000;
  const std::vector<WeightedUpdate> items = MakeItems(kN, kSeed + 6);
  Router router(kM, RoutingPolicy::kSkewed, kSeed + 7);
  const std::vector<size_t> sites = AssignSites(&router, kN);

  // Same protocol, targeted drain disabled: the driver must fall back to
  // Synchronize() and record drain stalls.
  class FullScanP2 : public hh::P2Threshold {
   public:
    using P2Threshold::P2Threshold;
    bool SupportsTargetedDrain() const override { return false; }
  };

  HhFingerprint targeted_fp;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    hh::P2Threshold targeted(kM, 0.1);
    FullScanP2 fallback(kM, 0.1);
    SimulationOptions opt;
    opt.threads = threads;
    opt.chunk_elements = 2048;

    SimulationDriver d1(opt);
    d1.Run(&targeted, sites, items);
    EXPECT_EQ(d1.scheduler_stats().drain_stalls, 0u);
    EXPECT_GT(d1.scheduler_stats().targeted_drains, 0u);

    SimulationDriver d2(opt);
    d2.Run(&fallback, sites, items);
    EXPECT_EQ(d2.scheduler_stats().targeted_drains, 0u);
    EXPECT_EQ(d2.scheduler_stats().drain_stalls,
              d2.scheduler_stats().windows);

    ExpectIdentical(FingerprintOf(targeted), FingerprintOf(fallback));
    if (threads == 1) {
      targeted_fp = FingerprintOf(targeted);
    } else {
      ExpectIdentical(targeted_fp, FingerprintOf(targeted));
    }
  }
}

// Batch-size override is scheduling only: pathological sizes (1 site per
// claim, everything in one claim) produce identical results.
TEST(ParallelScaleTest, SitesPerBatchOverrideDoesNotChangeResults) {
  const size_t kM = 256;
  const size_t kN = 30000;
  const std::vector<WeightedUpdate> items = MakeItems(kN, kSeed + 8);
  Router router(kM, RoutingPolicy::kUniform, kSeed + 9);
  const std::vector<size_t> sites = AssignSites(&router, kN);

  HhFingerprint reference;
  bool first = true;
  for (size_t batch : {size_t{0}, size_t{1}, size_t{1000000}}) {
    hh::P2Threshold protocol(kM, 0.1);
    SimulationOptions opt;
    opt.threads = 4;
    opt.chunk_elements = 2048;
    opt.sites_per_batch = batch;
    SimulationDriver driver(opt);
    driver.Run(&protocol, sites, items);
    if (first) {
      reference = FingerprintOf(protocol);
      first = false;
    } else {
      ExpectIdentical(reference, FingerprintOf(protocol));
    }
  }
}

TEST(ParallelScaleTest, SchedulerCountersAreCoherent) {
  const size_t kM = 64;
  const size_t kN = 10000;
  const std::vector<WeightedUpdate> items = MakeItems(kN, kSeed + 10);
  Router router(kM, RoutingPolicy::kUniform, kSeed + 11);
  const std::vector<size_t> sites = AssignSites(&router, kN);

  hh::P2Threshold protocol(kM, 0.1);
  SimulationOptions opt;
  opt.threads = 4;
  opt.chunk_elements = 1024;
  SimulationDriver driver(opt);
  driver.Run(&protocol, sites, items);

  const SchedulerStats& s = driver.scheduler_stats();
  const auto ends = WindowEnds(kN, 1024, kM);
  EXPECT_EQ(s.windows, ends.size());
  EXPECT_EQ(s.targeted_drains + s.drain_stalls, s.windows);
  EXPECT_GE(s.batches_reserved, s.windows);  // >= 1 claim per window
  EXPECT_GT(s.mean_sites_per_batch(), 0.0);
  // sites_scheduled counts each (window, active site) pair exactly once:
  // it must equal the sum of per-window distinct-site counts, which is
  // schedule-determined (thread-count-invariant).
  uint64_t expected_scheduled = 0;
  size_t begin = 0;
  for (size_t end : ends) {
    std::vector<size_t> active(sites.begin() + begin, sites.begin() + end);
    std::sort(active.begin(), active.end());
    active.erase(std::unique(active.begin(), active.end()), active.end());
    expected_scheduled += active.size();
    begin = end;
  }
  EXPECT_EQ(s.sites_scheduled, expected_scheduled);
}

// Satellite contract: a present --threads flag / DMT_THREADS variable must
// be a positive integer — 0, negatives and garbage are hard errors, not
// silent fallbacks (a typo'd value silently running serial would
// invalidate a benchmark comparison).
TEST(ThreadCountValidationDeathTest, ThreadsFlagRejectsZero) {
  char prog[] = "prog";
  char flag[] = "--threads";
  char zero[] = "0";
  char* argv[] = {prog, flag, zero};
  EXPECT_EXIT(ParseThreadsArg(3, argv), ::testing::ExitedWithCode(2),
              "positive integer");
}

TEST(ThreadCountValidationDeathTest, ThreadsFlagRejectsNegative) {
  char prog[] = "prog";
  char arg[] = "--threads=-4";
  char* argv[] = {prog, arg};
  EXPECT_EXIT(ParseThreadsArg(2, argv), ::testing::ExitedWithCode(2),
              "positive integer");
}

TEST(ThreadCountValidationDeathTest, ThreadsFlagRejectsGarbage) {
  char prog[] = "prog";
  char arg[] = "--threads=lots";
  char* argv[] = {prog, arg};
  EXPECT_EXIT(ParseThreadsArg(2, argv), ::testing::ExitedWithCode(2),
              "positive integer");
}

TEST(ThreadCountValidationDeathTest, EnvRejectsZeroAndGarbage) {
  // setenv runs inside the forked death-test child, so the parent's
  // environment is untouched.
  EXPECT_EXIT(
      {
        setenv("DMT_THREADS", "0", 1);
        ResolveThreadCount(0);
      },
      ::testing::ExitedWithCode(2), "positive integer");
  EXPECT_EXIT(
      {
        setenv("DMT_THREADS", "-2", 1);
        ResolveThreadCount(0);
      },
      ::testing::ExitedWithCode(2), "positive integer");
  EXPECT_EXIT(
      {
        setenv("DMT_THREADS", "2x", 1);
        ResolveThreadCount(0);
      },
      ::testing::ExitedWithCode(2), "positive integer");
}

TEST(ThreadCountValidationTest, ClampsExtremeOversubscription) {
  const unsigned hc = std::thread::hardware_concurrency();
  const size_t hw = hc == 0 ? 1 : static_cast<size_t>(hc);
  // At the cap: accepted verbatim. Beyond it: clamped, never rejected.
  EXPECT_EQ(ResolveThreadCount(4 * hw), 4 * hw);
  EXPECT_EQ(ResolveThreadCount(4 * hw + 1), 4 * hw);
  EXPECT_EQ(ResolveThreadCount(1000000), 4 * hw);
}

}  // namespace
}  // namespace stream
}  // namespace dmt
