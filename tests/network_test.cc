#include "stream/network.h"

#include <gtest/gtest.h>

namespace dmt {
namespace stream {
namespace {

TEST(CommStatsTest, TotalsAddUp) {
  CommStats s;
  s.scalar_up = 3;
  s.element_up = 5;
  s.vector_up = 7;
  s.broadcast_msgs = 20;
  EXPECT_EQ(s.total_up(), 15u);
  EXPECT_EQ(s.total(), 35u);
}

TEST(CommStatsTest, PlusEqualsAccumulates) {
  CommStats a, b;
  a.scalar_up = 1;
  b.scalar_up = 2;
  b.vector_up = 4;
  b.rounds = 3;
  a += b;
  EXPECT_EQ(a.scalar_up, 3u);
  EXPECT_EQ(a.vector_up, 4u);
  EXPECT_EQ(a.rounds, 3u);
}

TEST(NetworkTest, RecordsPerCategory) {
  Network net(4);
  net.RecordScalar(0);
  net.RecordElement(1);
  net.RecordElement(1);
  net.RecordVector(3);
  EXPECT_EQ(net.stats().scalar_up, 1u);
  EXPECT_EQ(net.stats().element_up, 2u);
  EXPECT_EQ(net.stats().vector_up, 1u);
  EXPECT_EQ(net.stats().total_up(), 4u);
}

TEST(NetworkTest, BroadcastCostsOneMessagePerSite) {
  Network net(7);
  net.RecordBroadcast();
  net.RecordBroadcast();
  EXPECT_EQ(net.stats().broadcast_events, 2u);
  EXPECT_EQ(net.stats().broadcast_msgs, 14u);
  EXPECT_EQ(net.stats().total(), 14u);
}

TEST(NetworkTest, PerSiteUpstreamCounters) {
  Network net(3);
  net.RecordScalar(0);
  net.RecordVector(0);
  net.RecordElement(2);
  EXPECT_EQ(net.per_site_up()[0], 2u);
  EXPECT_EQ(net.per_site_up()[1], 0u);
  EXPECT_EQ(net.per_site_up()[2], 1u);
}

TEST(NetworkDeathTest, OutOfRangeSiteAborts) {
  Network net(2);
  EXPECT_DEATH(net.RecordScalar(2), "DMT_CHECK");
}

}  // namespace
}  // namespace stream
}  // namespace dmt
