// Pins the thick-restart Lanczos partial eigensolver against the exact
// Jacobi route across adversarial spectra: repeated eigenvalues,
// rank-deficient operators, the zero matrix, k = d and k = 1, indefinite
// matrices, warm seeds, and determinism.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "linalg/lanczos.h"
#include "linalg/matrix.h"
#include "linalg/spectral.h"
#include "linalg/vec_ops.h"
#include "util/rng.h"

namespace dmt {
namespace linalg {
namespace {

// Builds Q diag(lambda) Q^T for a deterministic random orthogonal Q.
Matrix SymmetricWithSpectrum(const std::vector<double>& lambda,
                             uint64_t seed) {
  Rng rng(seed);
  const size_t d = lambda.size();
  Matrix q = RandomOrthogonalMatrix(d, &rng);
  Matrix s(d, d);
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double v = 0.0;
      for (size_t t = 0; t < d; ++t) v += q(i, t) * lambda[t] * q(j, t);
      s(i, j) = v;
    }
  }
  // Exact symmetry despite summation roundoff.
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) {
      const double v = 0.5 * (s(i, j) + s(j, i));
      s(i, j) = v;
      s(j, i) = v;
    }
  }
  return s;
}

// Norm of the projection of `u` onto the reference eigenspace of every
// eigenvalue within `cluster_tol` of `theta` — the subspace-angle test
// that stays meaningful under repeated eigenvalues.
double EigenspaceAlignment(const EigenDecomposition& ref, double theta,
                           const std::vector<double>& u,
                           double cluster_tol) {
  double proj_sq = 0.0;
  for (size_t i = 0; i < ref.eigenvalues.size(); ++i) {
    if (std::fabs(ref.eigenvalues[i] - theta) > cluster_tol) continue;
    const std::vector<double> v = ref.Eigenvector(i);
    const double c = Dot(u, v);
    proj_sq += c * c;
  }
  return std::sqrt(proj_sq);
}

void ExpectAgreesWithJacobi(const Matrix& s, size_t k,
                            double vec_cluster_tol) {
  EigenDecomposition ref = SymmetricEigen(s);
  std::vector<double> vals;
  Matrix vecs;
  LanczosInfo info = LanczosTopKOfGram(s, k, &vals, &vecs);
  ASSERT_TRUE(info.converged);
  ASSERT_EQ(vals.size(), std::min(k, s.rows()));
  double scale = 1e-300;
  for (double l : ref.eigenvalues) scale = std::max(scale, std::fabs(l));
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_NEAR(vals[i], ref.eigenvalues[i], 1e-10 * scale) << "i=" << i;
    std::vector<double> u(vecs.Row(i), vecs.Row(i) + s.rows());
    EXPECT_NEAR(Norm(u), 1.0, 1e-8) << "i=" << i;
    EXPECT_GT(EigenspaceAlignment(ref, vals[i], u, vec_cluster_tol),
              1.0 - 1e-8)
        << "i=" << i;
  }
}

TEST(LanczosTest, AgreesWithJacobiOnRandomGram) {
  Rng rng(1);
  Matrix a = RandomGaussianMatrix(80, 24, &rng);
  ExpectAgreesWithJacobi(a.Gram(), 6, 1e-6 * 80);
}

TEST(LanczosTest, RepeatedEigenvaluesAreAllFound) {
  // Triple eigenvalue 5 at the top: single-vector Krylov spaces cannot
  // contain a full multiple eigenspace, so this exercises the breakdown
  // recovery that inserts fresh deterministic directions.
  std::vector<double> lambda = {5.0, 5.0, 5.0, 2.0, 1.0, 0.5,
                                0.25, 0.1, 0.05, 0.01};
  Matrix s = SymmetricWithSpectrum(lambda, 7);
  ExpectAgreesWithJacobi(s, 4, 1e-8);
}

TEST(LanczosTest, RankDeficientOperatorPadsWithZeros) {
  Rng rng(3);
  Matrix a = RandomGaussianMatrix(6, 20, &rng);  // A^T A has rank 6
  std::vector<double> vals;
  Matrix vecs;
  LanczosInfo info = LanczosTopKOfRows(a, 10, &vals, &vecs);
  ASSERT_TRUE(info.converged);
  EigenDecomposition ref = SymmetricEigen(a.Gram());
  const double scale = ref.eigenvalues.front();
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(vals[i], std::max(0.0, ref.eigenvalues[i]), 1e-10 * scale);
  }
  for (size_t i = 6; i < 10; ++i) {
    EXPECT_NEAR(vals[i], 0.0, 1e-10 * scale);
  }
}

TEST(LanczosTest, ZeroMatrix) {
  Matrix s(12, 12);
  std::vector<double> vals;
  Matrix vecs;
  LanczosInfo info = LanczosTopKOfGram(s, 5, &vals, &vecs);
  ASSERT_TRUE(info.converged);
  for (double v : vals) EXPECT_DOUBLE_EQ(v, 0.0);
  // Returned vectors are still orthonormal.
  for (size_t i = 0; i < 5; ++i) {
    std::vector<double> u(vecs.Row(i), vecs.Row(i) + 12);
    EXPECT_NEAR(Norm(u), 1.0, 1e-12);
  }
}

TEST(LanczosTest, KEqualsDRecoversFullSpectrum) {
  Rng rng(4);
  Matrix a = RandomGaussianMatrix(30, 9, &rng);
  ExpectAgreesWithJacobi(a.Gram(), 9, 1e-6 * 30);
}

TEST(LanczosTest, KEqualsOneFindsAlgebraicMaxNotMagnitudeMax) {
  // lambda_max = 1 but |lambda_min| = 10: power iteration would lock onto
  // the magnitude-dominant negative end; Lanczos must return the
  // algebraic maximum.
  std::vector<double> lambda = {1.0, 0.5, 0.0, -0.2, -4.0, -10.0};
  Matrix s = SymmetricWithSpectrum(lambda, 11);
  std::vector<double> vals;
  Matrix vecs;
  LanczosInfo info = LanczosTopKOfGram(s, 1, &vals, &vecs);
  ASSERT_TRUE(info.converged);
  EXPECT_NEAR(vals[0], 1.0, 1e-9);
}

TEST(LanczosTest, SpectralNormHandlesIndefiniteDifference) {
  Rng rng(5);
  Matrix a = RandomGaussianMatrix(40, 10, &rng);
  Matrix b = RandomGaussianMatrix(25, 10, &rng);
  Matrix diff = a.Gram();
  diff.Subtract(b.Gram());
  const double exact = SpectralNormSymmetric(diff);
  EXPECT_NEAR(SpectralNormSymmetricLanczos(diff), exact, 1e-9 * exact);
}

TEST(LanczosTest, WarmSeedConverges) {
  Rng rng(6);
  Matrix a = RandomGaussianMatrix(50, 16, &rng);
  Matrix s = a.Gram();
  std::vector<double> vals;
  Matrix vecs;
  LanczosInfo cold = LanczosTopKOfGram(s, 3, &vals, &vecs);
  ASSERT_TRUE(cold.converged);
  std::vector<double> seed(vecs.Row(0), vecs.Row(0) + 16);

  // Perturb the operator slightly and re-solve from the previous leading
  // eigenvector — the FD warm-start contract.
  s(0, 0) += 0.01 * vals[0];
  LanczosOptions opts;
  opts.seed = seed.data();
  std::vector<double> warm_vals;
  Matrix warm_vecs;
  LanczosSolver solver;
  LanczosInfo warm = solver.TopK(
      16, 3,
      [&s](const double* x, double* y) {
        for (size_t i = 0; i < 16; ++i) y[i] = Dot(s.Row(i), x, 16);
      },
      &warm_vals, &warm_vecs, opts);
  ASSERT_TRUE(warm.converged);
  EigenDecomposition ref = SymmetricEigen(s);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(warm_vals[i], ref.eigenvalues[i],
                1e-10 * ref.eigenvalues.front());
  }
}

TEST(LanczosTest, RowsAndGramRoutesAgree) {
  Rng rng(8);
  Matrix a = RandomGaussianMatrix(12, 40, &rng);  // wide: rows route
  std::vector<double> vr, vg;
  Matrix wr, wg;
  ASSERT_TRUE(LanczosTopKOfRows(a, 5, &vr, &wr).converged);
  ASSERT_TRUE(LanczosTopKOfGram(a.Gram(), 5, &vg, &wg).converged);
  const double scale = vr[0];
  for (size_t i = 0; i < 5; ++i) EXPECT_NEAR(vr[i], vg[i], 1e-9 * scale);
}

TEST(LanczosTest, DeterministicAcrossCalls) {
  Rng rng(9);
  Matrix a = RandomGaussianMatrix(35, 14, &rng);
  Matrix s = a.Gram();
  std::vector<double> v1, v2;
  Matrix w1, w2;
  LanczosTopKOfGram(s, 4, &v1, &w1);
  LanczosTopKOfGram(s, 4, &v2, &w2);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(v1[i], v2[i]);
    for (size_t j = 0; j < 14; ++j) EXPECT_DOUBLE_EQ(w1(i, j), w2(i, j));
  }
}

TEST(LanczosTest, EmptyAndTrivialShapes) {
  std::vector<double> vals;
  Matrix vecs;
  Matrix empty(0, 0);
  EXPECT_TRUE(LanczosTopKOfGram(empty, 3, &vals, &vecs).converged);
  EXPECT_TRUE(vals.empty());

  Matrix one = Matrix::FromRows({{4.0}});
  EXPECT_TRUE(LanczosTopKOfGram(one, 1, &vals, &vecs).converged);
  ASSERT_EQ(vals.size(), 1u);
  EXPECT_DOUBLE_EQ(vals[0], 4.0);
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
