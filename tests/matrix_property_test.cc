// Property sweeps over (protocol, m, eps, rank regime) for the matrix
// tracking guarantee |‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F.
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "data/synthetic_matrix.h"
#include "matrix/error.h"
#include "matrix/mp1_batched_fd.h"
#include "matrix/mp2_svd_threshold.h"
#include "matrix/mp3_sampling.h"
#include "stream/router.h"

namespace dmt {
namespace matrix {
namespace {

std::unique_ptr<MatrixTrackingProtocol> MakeProtocol(const std::string& name,
                                                     size_t m, double eps) {
  if (name == "P1") return std::make_unique<MP1BatchedFD>(m, eps);
  if (name == "P2") return std::make_unique<MP2SvdThreshold>(m, eps);
  if (name == "P3wor") return std::make_unique<MP3SamplingWoR>(m, eps, 42);
  return std::make_unique<MP3SamplingWR>(m, eps, 42);
}

class MatrixProtocolPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, size_t, double, int>> {};

TEST_P(MatrixProtocolPropertyTest, GuaranteeHolds) {
  auto [name, m, eps, regime] = GetParam();
  auto protocol = MakeProtocol(name, m, eps);

  data::SyntheticMatrixConfig cfg;
  cfg.dim = regime == 0 ? 12 : 16;
  cfg.latent_rank = regime == 0 ? 3 : 16;  // low rank vs full rank
  cfg.decay_power = regime == 0 ? 0.0 : 0.3;
  cfg.noise_level = regime == 0 ? 1e-3 : 5e-2;
  cfg.seed = 31;
  data::SyntheticMatrixGenerator gen(cfg);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 32);

  CovarianceTracker truth(cfg.dim);
  const size_t n = 15000;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    protocol->ProcessRow(router.NextSite(), row);
  }

  const double err = CovarianceError(truth, protocol->CoordinatorGram());
  const bool deterministic = (name == "P1" || name == "P2");
  const double slack = deterministic ? 1.0 : (name == "P3wor" ? 2.0 : 4.0);
  EXPECT_LE(err, slack * eps + 1e-9)
      << name << " m=" << m << " eps=" << eps << " regime=" << regime;

  // All protocols must beat naive communication on these streams.
  EXPECT_LT(protocol->comm_stats().total(), 2 * n) << name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatrixProtocolPropertyTest,
    ::testing::Combine(::testing::Values("P1", "P2", "P3wor", "P3wr"),
                       ::testing::Values<size_t>(4, 16),
                       ::testing::Values(0.1, 0.3),
                       ::testing::Values(0, 1)));

// Site-permutation metamorphism: deterministic protocols give identical
// coordinator state when the same rows go to a relabeled site set.
TEST(MatrixMetamorphicTest, SiteRelabelingDoesNotChangeP2) {
  const size_t m = 6;
  const double eps = 0.1;
  MP2SvdThreshold a(m, eps), b(m, eps);
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 8;
  cfg.latent_rank = 3;
  cfg.seed = 7;
  data::SyntheticMatrixGenerator gen(cfg);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 8);
  for (size_t i = 0; i < 5000; ++i) {
    std::vector<double> row = gen.Next();
    size_t site = router.NextSite();
    a.ProcessRow(site, row);
    b.ProcessRow((site + 1) % m, row);  // relabeled sites
  }
  EXPECT_LT(a.CoordinatorGram().MaxAbsDiff(b.CoordinatorGram()),
            1e-9 * a.CoordinatorGram().SquaredFrobeniusNorm() + 1e-12);
}

// Rescaling all rows by c scales the coordinator Gram by c^2 (P2 is
// scale-equivariant because every threshold is relative to F-hat).
TEST(MatrixMetamorphicTest, RowScalingScalesGramP2) {
  const size_t m = 4;
  const double eps = 0.1;
  const double c = 3.0;
  MP2SvdThreshold a(m, eps), b(m, eps);
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 8;
  cfg.latent_rank = 3;
  cfg.seed = 9;
  data::SyntheticMatrixGenerator gen(cfg);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 10);
  for (size_t i = 0; i < 5000; ++i) {
    std::vector<double> row = gen.Next();
    std::vector<double> scaled = row;
    for (auto& v : scaled) v *= c;
    size_t site = router.NextSite();
    a.ProcessRow(site, row);
    b.ProcessRow(site, scaled);
  }
  linalg::Matrix ga = a.CoordinatorGram();
  ga.ScaleBy(c * c);
  EXPECT_LT(ga.MaxAbsDiff(b.CoordinatorGram()),
            1e-8 * b.CoordinatorGram().SquaredFrobeniusNorm() + 1e-12);
}

}  // namespace
}  // namespace matrix
}  // namespace dmt
