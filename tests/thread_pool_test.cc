#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dmt {
namespace {

TEST(ThreadPoolTest, CompletesAllTasksUnderContention) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  const int kTasks = 2000;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, PropagatesTaskExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task: later work still runs.
  EXPECT_NO_THROW(pool.Submit([] {}).get());
}

TEST(ThreadPoolTest, ReusableAfterDrain) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();  // fully drained between rounds
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, ZeroTasksDestructsCleanly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  // No submissions; destructor must not hang or crash.
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_NO_THROW(pool.Submit([] {}).get());
}

TEST(ThreadPoolTest, SingleThreadRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, RunBatchRunsEverySlotExactlyOnce) {
  ThreadPool pool(8);
  const size_t kFanout = 1000;
  std::vector<std::atomic<int>> hits(kFanout);
  for (auto& h : hits) h.store(0);
  pool.RunBatch(kFanout, [&hits](size_t slot) {
    hits[slot].fetch_add(1, std::memory_order_relaxed);
  });
  // The barrier already happened: plain reads are safe here.
  for (size_t i = 0; i < kFanout; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPoolTest, RunBatchZeroFanoutReturnsImmediately) {
  ThreadPool pool(4);
  pool.RunBatch(0, [](size_t) { FAIL() << "no slot should run"; });
}

TEST(ThreadPoolTest, RunBatchCompletesAllSlotsBeforeRethrowing) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  EXPECT_THROW(
      pool.RunBatch(64,
                    [&done](size_t slot) {
                      done.fetch_add(1, std::memory_order_relaxed);
                      if (slot == 3) throw std::runtime_error("boom");
                    }),
      std::runtime_error);
  // All-slots-complete barrier: every slot ran even though one threw.
  EXPECT_EQ(done.load(), 64);
  // The pool survives: both submission paths still work.
  std::atomic<int> after{0};
  pool.RunBatch(8, [&after](size_t) { ++after; });
  EXPECT_EQ(after.load(), 8);
  EXPECT_NO_THROW(pool.Submit([] {}).get());
}

TEST(ThreadPoolTest, RunBatchReusableAcrossRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 50; ++round) {
    pool.RunBatch(17, [&counter](size_t) {
      counter.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(counter.load(), 50 * 17);
}

TEST(ThreadPoolTest, RunBatchInterleavesWithSubmit) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 20; ++i) {
      futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();
    pool.RunBatch(20, [&counter](size_t) { ++counter; });
  }
  EXPECT_EQ(counter.load(), 10 * 40);
}

TEST(ThreadPoolTest, QueuedTasksRunBeforeShutdownJoins) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        ++counter;
      });
    }
    // Destructor runs here with work still queued.
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace dmt
