#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace dmt {
namespace {

TEST(ThreadPoolTest, CompletesAllTasksUnderContention) {
  ThreadPool pool(8);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  const int kTasks = 2000;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&counter] {
      counter.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, PropagatesTaskExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> ok = pool.Submit([] {});
  std::future<void> bad =
      pool.Submit([] { throw std::runtime_error("boom"); });
  EXPECT_NO_THROW(ok.get());
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task: later work still runs.
  EXPECT_NO_THROW(pool.Submit([] {}).get());
}

TEST(ThreadPoolTest, ReusableAfterDrain) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 50; ++i) {
      futures.push_back(pool.Submit([&counter] { ++counter; }));
    }
    for (auto& f : futures) f.get();  // fully drained between rounds
    EXPECT_EQ(counter.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, ZeroTasksDestructsCleanly) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  // No submissions; destructor must not hang or crash.
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_NO_THROW(pool.Submit([] {}).get());
}

TEST(ThreadPoolTest, SingleThreadRunsTasksInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPoolTest, QueuedTasksRunBeforeShutdownJoins) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&counter] {
        std::this_thread::sleep_for(std::chrono::microseconds(10));
        ++counter;
      });
    }
    // Destructor runs here with work still queued.
  }
  EXPECT_EQ(counter.load(), 200);
}

}  // namespace
}  // namespace dmt
