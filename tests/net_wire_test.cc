// Wire-format tests: golden checked-in frame bytes (the format contract —
// a change that shifts any byte is a protocol break and must bump the
// frame version), encode/decode round-trips for every message payload,
// and the rejection paths (bad magic/version/type, CRC, truncation,
// oversize). See docs/PROTOCOL.md for the layouts these pin.
#include <cmath>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "net/frame.h"
#include "net/messages.h"

namespace dmt {
namespace net {
namespace {

std::vector<uint8_t> Frame(MsgType type, const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> out;
  AppendFrame(type, payload.data(), payload.size(), &out);
  return out;
}

// ---------------------------------------------------------------------------
// Golden fixtures. Byte-for-byte images of real frames, checked in so an
// accidental encoding change (field order, width, endianness, CRC poly)
// fails loudly instead of silently forking the wire format.

TEST(WireGoldenTest, WindowEndFrameBytes) {
  std::vector<uint8_t> payload;
  EncodeWindowEnd({7}, &payload);
  const std::vector<uint8_t> frame = Frame(MsgType::kWindowEnd, payload);
  const uint8_t golden[] = {
      0x44, 0x4d, 0x54, 0x57, 0x01, 0x02, 0x00, 0x00,  // "DMTW" v1 type=2
      0x08, 0x00, 0x00, 0x00, 0x70, 0xd6, 0xe7, 0x6f,  // len=8, crc
      0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // window=7 (u64 LE)
  };
  ASSERT_EQ(frame.size(), sizeof(golden));
  EXPECT_EQ(std::memcmp(frame.data(), golden, sizeof(golden)), 0);
}

TEST(WireGoldenTest, BroadcastFrameBytes) {
  BroadcastMsg m;
  m.window = 3;
  m.value = 2.5;
  std::vector<uint8_t> payload;
  EncodeBroadcast(m, &payload);
  const std::vector<uint8_t> frame = Frame(MsgType::kBroadcast, payload);
  const uint8_t golden[] = {
      0x44, 0x4d, 0x54, 0x57, 0x01, 0x03, 0x00, 0x00,
      0x10, 0x00, 0x00, 0x00, 0x33, 0x7b, 0xc3, 0xd7,
      0x03, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // window=3
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,  // 2.5 (IEEE-754 LE)
  };
  ASSERT_EQ(frame.size(), sizeof(golden));
  EXPECT_EQ(std::memcmp(frame.data(), golden, sizeof(golden)), 0);
}

TEST(WireGoldenTest, HHFlushFrameBytes) {
  HHFlushMsg m;
  m.weight = 12.0;
  m.k = 2;
  m.total_weight = 12.0;
  m.total_decrement = 1.5;
  m.counters = {{5, 8.0}, {9, 2.5}};
  std::vector<uint8_t> payload;
  EncodeHHFlush(m, &payload);
  const std::vector<uint8_t> frame = Frame(MsgType::kHHFlush, payload);
  const uint8_t golden[] = {
      0x44, 0x4d, 0x54, 0x57, 0x01, 0x04, 0x00, 0x00,
      0x40, 0x00, 0x00, 0x00, 0x5a, 0x16, 0x72, 0x05,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x28, 0x40,  // weight=12.0
      0x02, 0x00, 0x00, 0x00,                          // k=2
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x28, 0x40,  // total_weight=12.0
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf8, 0x3f,  // total_decrement=1.5
      0x02, 0x00, 0x00, 0x00,                          // counter count=2
      0x05, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // element 5
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x20, 0x40,  // weight 8.0
      0x09, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,  // element 9
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x04, 0x40,  // weight 2.5
  };
  ASSERT_EQ(frame.size(), sizeof(golden));
  EXPECT_EQ(std::memcmp(frame.data(), golden, sizeof(golden)), 0);
}

TEST(WireGoldenTest, MatrixDirectionFrameBytes) {
  MatrixDirectionMsg m;
  m.lambda = 4.0;
  m.dir = {0.5, -0.5};
  std::vector<uint8_t> payload;
  EncodeMatrixDirection(m, &payload);
  const std::vector<uint8_t> frame = Frame(MsgType::kMatrixDirection, payload);
  const uint8_t golden[] = {
      0x44, 0x4d, 0x54, 0x57, 0x01, 0x06, 0x00, 0x00,
      0x1c, 0x00, 0x00, 0x00, 0x56, 0x59, 0x62, 0xd4,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10, 0x40,  // lambda=4.0
      0x02, 0x00, 0x00, 0x00,                          // dim=2
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0, 0x3f,  // 0.5
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe0, 0xbf,  // -0.5
  };
  ASSERT_EQ(frame.size(), sizeof(golden));
  EXPECT_EQ(std::memcmp(frame.data(), golden, sizeof(golden)), 0);
}

// ---------------------------------------------------------------------------
// Round-trips: decode(encode(m)) must reproduce every field bit-for-bit
// (doubles compared via their byte images — the equivalence guarantee).

bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

TEST(WireRoundTripTest, Hello) {
  HelloMsg m;
  m.site = 3;
  m.num_sites = 9;
  m.num_windows = 1234567;
  m.protocol = "mp2";
  std::vector<uint8_t> payload;
  EncodeHello(m, &payload);
  HelloMsg back;
  ASSERT_TRUE(DecodeHello(payload.data(), payload.size(), &back));
  EXPECT_EQ(back.site, m.site);
  EXPECT_EQ(back.num_sites, m.num_sites);
  EXPECT_EQ(back.num_windows, m.num_windows);
  EXPECT_EQ(back.protocol, m.protocol);
}

TEST(WireRoundTripTest, WindowEndAndSiteDone) {
  std::vector<uint8_t> payload;
  EncodeWindowEnd({~uint64_t{0}}, &payload);
  WindowEndMsg we;
  ASSERT_TRUE(DecodeWindowEnd(payload.data(), payload.size(), &we));
  EXPECT_EQ(we.window, ~uint64_t{0});

  payload.clear();
  EncodeSiteDone({42}, &payload);
  SiteDoneMsg sd;
  ASSERT_TRUE(DecodeSiteDone(payload.data(), payload.size(), &sd));
  EXPECT_EQ(sd.windows, 42u);
}

TEST(WireRoundTripTest, BroadcastPreservesDoubleBits) {
  // Values picked to stress the encoding: denormal, negative zero, an
  // irrational with a full mantissa, and a huge magnitude.
  for (const double v : {5e-324, -0.0, 1.0 / 3.0, -1.7e308, 2.5}) {
    BroadcastMsg m;
    m.window = 11;
    m.value = v;
    std::vector<uint8_t> payload;
    EncodeBroadcast(m, &payload);
    BroadcastMsg back;
    ASSERT_TRUE(DecodeBroadcast(payload.data(), payload.size(), &back));
    EXPECT_EQ(back.window, 11u);
    EXPECT_TRUE(SameBits(back.value, v)) << v;
  }
}

TEST(WireRoundTripTest, HHFlush) {
  HHFlushMsg m;
  m.weight = 123.25;
  m.k = 17;
  m.total_weight = 1e6 + 1.0 / 3.0;
  m.total_decrement = 5e-324;
  for (uint64_t e = 0; e < 17; ++e) {
    m.counters.emplace_back(e * 1000003, 1.0 / static_cast<double>(e + 1));
  }
  std::vector<uint8_t> payload;
  EncodeHHFlush(m, &payload);
  HHFlushMsg back;
  ASSERT_TRUE(DecodeHHFlush(payload.data(), payload.size(), &back));
  EXPECT_TRUE(SameBits(back.weight, m.weight));
  EXPECT_EQ(back.k, m.k);
  EXPECT_TRUE(SameBits(back.total_weight, m.total_weight));
  EXPECT_TRUE(SameBits(back.total_decrement, m.total_decrement));
  ASSERT_EQ(back.counters.size(), m.counters.size());
  for (size_t i = 0; i < m.counters.size(); ++i) {
    EXPECT_EQ(back.counters[i].first, m.counters[i].first);
    EXPECT_TRUE(SameBits(back.counters[i].second, m.counters[i].second));
  }
}

TEST(WireRoundTripTest, MatrixScalarAndDirection) {
  std::vector<uint8_t> payload;
  EncodeMatrixScalar({1.0 / 7.0}, &payload);
  MatrixScalarMsg s;
  ASSERT_TRUE(DecodeMatrixScalar(payload.data(), payload.size(), &s));
  EXPECT_TRUE(SameBits(s.value, 1.0 / 7.0));

  MatrixDirectionMsg m;
  m.lambda = 3.75;
  for (int i = 0; i < 24; ++i) m.dir.push_back(std::sin(i + 1.0));
  payload.clear();
  EncodeMatrixDirection(m, &payload);
  MatrixDirectionMsg back;
  ASSERT_TRUE(DecodeMatrixDirection(payload.data(), payload.size(), &back));
  EXPECT_TRUE(SameBits(back.lambda, m.lambda));
  ASSERT_EQ(back.dir.size(), m.dir.size());
  for (size_t i = 0; i < m.dir.size(); ++i) {
    EXPECT_TRUE(SameBits(back.dir[i], m.dir[i])) << i;
  }
}

TEST(WireRoundTripTest, FdSketch) {
  FdSketchMsg m;
  m.ell = 8;
  m.dim = 5;
  m.stream_sq_frob = 321.5;
  m.total_shrinkage = 0.125;
  m.rows = linalg::Matrix(3, 5);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 5; ++j) {
      m.rows(i, j) = static_cast<double>(i) - 0.25 * static_cast<double>(j);
    }
  }
  std::vector<uint8_t> payload;
  EncodeFdSketch(m, &payload);
  FdSketchMsg back;
  ASSERT_TRUE(DecodeFdSketch(payload.data(), payload.size(), &back));
  EXPECT_EQ(back.ell, m.ell);
  EXPECT_EQ(back.dim, m.dim);
  EXPECT_TRUE(SameBits(back.stream_sq_frob, m.stream_sq_frob));
  EXPECT_TRUE(SameBits(back.total_shrinkage, m.total_shrinkage));
  ASSERT_EQ(back.rows.rows(), m.rows.rows());
  ASSERT_EQ(back.rows.cols(), m.rows.cols());
  EXPECT_EQ(std::memcmp(back.rows.Row(0), m.rows.Row(0),
                        3 * 5 * sizeof(double)),
            0);
}

TEST(WireRoundTripTest, FdSketchDegenerateEmpty) {
  FdSketchMsg m;  // rows==0, cols==0: a sketch that never saw a row
  std::vector<uint8_t> payload;
  EncodeFdSketch(m, &payload);
  FdSketchMsg back;
  ASSERT_TRUE(DecodeFdSketch(payload.data(), payload.size(), &back));
  EXPECT_TRUE(back.rows.empty());
}

// Every decoder must reject every strict prefix of a valid payload —
// truncation never parses, and (because count fields are validated
// against remaining bytes) never over-allocates.
TEST(WireRoundTripTest, EveryPrefixOfEveryPayloadIsRejected) {
  std::vector<std::pair<std::string, std::vector<uint8_t>>> payloads;
  {
    std::vector<uint8_t> p;
    HelloMsg h;
    h.protocol = "p1";
    EncodeHello(h, &p);
    payloads.emplace_back("hello", p);
  }
  {
    std::vector<uint8_t> p;
    EncodeWindowEnd({1}, &p);
    payloads.emplace_back("window_end", p);
  }
  {
    std::vector<uint8_t> p;
    EncodeBroadcast({1, 2.0}, &p);
    payloads.emplace_back("broadcast", p);
  }
  {
    std::vector<uint8_t> p;
    HHFlushMsg m;
    m.k = 2;
    m.counters = {{1, 1.0}};
    EncodeHHFlush(m, &p);
    payloads.emplace_back("hh_flush", p);
  }
  {
    std::vector<uint8_t> p;
    MatrixDirectionMsg m;
    m.dir = {1.0, 2.0};
    EncodeMatrixDirection(m, &p);
    payloads.emplace_back("matrix_direction", p);
  }
  {
    std::vector<uint8_t> p;
    FdSketchMsg m;
    m.rows = linalg::Matrix(1, 2);
    EncodeFdSketch(m, &p);
    payloads.emplace_back("fd_sketch", p);
  }
  for (const auto& [name, p] : payloads) {
    for (size_t n = 0; n < p.size(); ++n) {
      HelloMsg hello;
      WindowEndMsg we;
      BroadcastMsg bc;
      HHFlushMsg hh;
      MatrixDirectionMsg md;
      FdSketchMsg fd;
      bool accepted = false;
      if (name == "hello") accepted = DecodeHello(p.data(), n, &hello);
      if (name == "window_end") accepted = DecodeWindowEnd(p.data(), n, &we);
      if (name == "broadcast") accepted = DecodeBroadcast(p.data(), n, &bc);
      if (name == "hh_flush") accepted = DecodeHHFlush(p.data(), n, &hh);
      if (name == "matrix_direction") {
        accepted = DecodeMatrixDirection(p.data(), n, &md);
      }
      if (name == "fd_sketch") accepted = DecodeFdSketch(p.data(), n, &fd);
      EXPECT_FALSE(accepted) << name << " accepted prefix of " << n
                             << " of " << p.size() << " bytes";
    }
  }
}

// ---------------------------------------------------------------------------
// Frame header validation: every corruption is a decode error, not an
// abort (the bytes come off a socket).

std::vector<uint8_t> ValidHeader() {
  std::vector<uint8_t> payload;
  EncodeWindowEnd({1}, &payload);
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kWindowEnd, payload.data(), payload.size(), &frame);
  frame.resize(kFrameHeaderBytes);
  return frame;
}

TEST(FrameHeaderTest, AcceptsValidHeader) {
  const std::vector<uint8_t> h = ValidHeader();
  FrameHeader out;
  std::string error;
  ASSERT_TRUE(DecodeFrameHeader(h.data(), &out, &error)) << error;
  EXPECT_EQ(out.type, MsgType::kWindowEnd);
  EXPECT_EQ(out.payload_len, 8u);
}

TEST(FrameHeaderTest, RejectsBadMagic) {
  std::vector<uint8_t> h = ValidHeader();
  h[0] = 'X';
  FrameHeader out;
  std::string error;
  EXPECT_FALSE(DecodeFrameHeader(h.data(), &out, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST(FrameHeaderTest, RejectsWrongVersion) {
  std::vector<uint8_t> h = ValidHeader();
  h[4] = kFrameVersion + 1;
  FrameHeader out;
  std::string error;
  EXPECT_FALSE(DecodeFrameHeader(h.data(), &out, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

TEST(FrameHeaderTest, RejectsUnknownType) {
  std::vector<uint8_t> h = ValidHeader();
  h[5] = 200;
  FrameHeader out;
  std::string error;
  EXPECT_FALSE(DecodeFrameHeader(h.data(), &out, &error));
  EXPECT_NE(error.find("type"), std::string::npos);
}

TEST(FrameHeaderTest, RejectsOversizePayloadLength) {
  std::vector<uint8_t> h = ValidHeader();
  // Length field at offset 8: set to kMaxFramePayload + 1.
  const uint32_t huge = kMaxFramePayload + 1;
  std::memcpy(h.data() + 8, &huge, sizeof(huge));
  FrameHeader out;
  std::string error;
  EXPECT_FALSE(DecodeFrameHeader(h.data(), &out, &error));
}

TEST(FrameHeaderTest, CrcCatchesPayloadCorruption) {
  std::vector<uint8_t> payload;
  EncodeBroadcast({5, 1.25}, &payload);
  std::vector<uint8_t> frame;
  AppendFrame(MsgType::kBroadcast, payload.data(), payload.size(), &frame);
  FrameHeader header;
  std::string error;
  ASSERT_TRUE(DecodeFrameHeader(frame.data(), &header, &error)) << error;
  // Pristine payload passes.
  EXPECT_TRUE(CheckFrameCrc(header, frame.data() + kFrameHeaderBytes, &error));
  // Any single flipped bit fails.
  for (size_t byte = 0; byte < payload.size(); ++byte) {
    std::vector<uint8_t> corrupt(frame.begin() + kFrameHeaderBytes,
                                 frame.end());
    corrupt[byte] ^= 0x10;
    EXPECT_FALSE(CheckFrameCrc(header, corrupt.data(), &error))
        << "flip in byte " << byte << " not caught";
  }
}

TEST(FrameHeaderTest, KnownTypesRoundTheEnum) {
  for (uint8_t t = 1; t <= 9; ++t) EXPECT_TRUE(IsKnownMsgType(t)) << int{t};
  EXPECT_FALSE(IsKnownMsgType(0));
  EXPECT_FALSE(IsKnownMsgType(10));
  EXPECT_FALSE(IsKnownMsgType(255));
}

}  // namespace
}  // namespace net
}  // namespace dmt
