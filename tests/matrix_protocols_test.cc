#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic_matrix.h"
#include "matrix/error.h"
#include "matrix/mp1_batched_fd.h"
#include "matrix/mp2_svd_threshold.h"
#include "matrix/mp3_sampling.h"
#include "matrix/mp4_experimental.h"
#include "stream/router.h"

namespace dmt {
namespace matrix {
namespace {

struct DriveResult {
  CovarianceTracker truth{1};
  stream::CommStats stats;
};

DriveResult Drive(MatrixTrackingProtocol* p, size_t m, size_t n, size_t dim,
          size_t latent_rank, uint64_t seed) {
  data::SyntheticMatrixConfig cfg;
  cfg.dim = dim;
  cfg.latent_rank = latent_rank;
  cfg.seed = seed;
  data::SyntheticMatrixGenerator gen(cfg);
  stream::Router router(m, stream::RoutingPolicy::kUniform, seed + 1);
  DriveResult r;
  r.truth = CovarianceTracker(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row = gen.Next();
    r.truth.AddRow(row);
    p->ProcessRow(router.NextSite(), row);
  }
  r.stats = p->comm_stats();
  return r;
}

TEST(MP1Test, ErrorWithinEpsilon) {
  const double eps = 0.1;
  MP1BatchedFD p(6, eps);
  DriveResult r = Drive(&p, 6, 20000, 12, 4, 1);
  EXPECT_LE(CovarianceError(r.truth, p.CoordinatorGram()), eps + 1e-9);
}

TEST(MP1Test, CoordinatorFrobeniusTracksTruth) {
  const double eps = 0.1;
  MP1BatchedFD p(4, eps);
  DriveResult r = Drive(&p, 4, 10000, 10, 3, 2);
  EXPECT_NEAR(p.coordinator_frobenius(), r.truth.squared_frobenius(),
              eps * r.truth.squared_frobenius());
}

TEST(MP2Test, ErrorWithinEpsilonAndOneSided) {
  const double eps = 0.1;
  MP2SvdThreshold p(6, eps);
  DriveResult r = Drive(&p, 6, 20000, 12, 4, 3);
  DirectionalErrorRange range = SignedCovarianceError(
      r.truth.gram(), p.CoordinatorGram(), r.truth.squared_frobenius());
  // Theorem 4: 0 <= ‖Ax‖² − ‖Bx‖² <= ε‖A‖²_F.
  EXPECT_LE(range.max_error, eps + 1e-9);
  EXPECT_GE(range.min_error, -1e-9);
}

TEST(MP2Test, LazyDecompositionsFarFewerThanRows) {
  const size_t n = 20000;
  MP2SvdThreshold p(6, 0.1);
  Drive(&p, 6, n, 12, 4, 4);
  // The trace-guard makes decompositions event-driven, not per-row.
  EXPECT_LT(p.decomposition_count(), n / 4);
}

TEST(MP2Test, CommunicationFarBelowNaive) {
  const size_t n = 20000;
  MP2SvdThreshold p(10, 0.2);
  DriveResult r = Drive(&p, 10, n, 12, 4, 5);
  EXPECT_LT(r.stats.total(), n / 2);
}

TEST(MP2Test, SketchReconstructsCoordinatorGram) {
  MP2SvdThreshold p(4, 0.15);
  Drive(&p, 4, 5000, 8, 3, 6);
  linalg::Matrix sketch = p.CoordinatorSketch();
  EXPECT_LT(sketch.Gram().MaxAbsDiff(p.CoordinatorGram()),
            1e-6 * p.CoordinatorGram().SquaredFrobeniusNorm() + 1e-9);
}

TEST(MP3WoRTest, ErrorWithinEpsilonWhp) {
  const double eps = 0.1;
  MP3SamplingWoR p(6, eps, 99);
  DriveResult r = Drive(&p, 6, 20000, 12, 4, 7);
  // Randomized: allow 2x nominal for the fixed seed.
  EXPECT_LE(CovarianceError(r.truth, p.CoordinatorGram()), 2.0 * eps);
}

TEST(MP3WoRTest, ExactBeforeFirstRoundEnds) {
  MP3SamplingWoR p(4, 0.1, 5, /*sample_size=*/1 << 20);
  DriveResult r = Drive(&p, 4, 3000, 8, 3, 8);
  EXPECT_LE(CovarianceError(r.truth, p.CoordinatorGram()), 1e-10);
}

TEST(MP3WRTest, ErrorReasonable) {
  const double eps = 0.1;
  MP3SamplingWR p(6, eps, 17);
  DriveResult r = Drive(&p, 6, 20000, 12, 4, 9);
  EXPECT_LE(CovarianceError(r.truth, p.CoordinatorGram()), 4.0 * eps);
}

TEST(MP3Test, WoRBeatsWRInMessagesAndError) {
  // The paper's Table 1 finding: without-replacement needs fewer messages
  // and achieves lower error at the same eps.
  const double eps = 0.15;
  MP3SamplingWoR wor(6, eps, 21);
  MP3SamplingWR wr(6, eps, 21);
  DriveResult r_wor = Drive(&wor, 6, 20000, 12, 4, 10);
  DriveResult r_wr = Drive(&wr, 6, 20000, 12, 4, 10);
  EXPECT_LT(r_wor.stats.total(), r_wr.stats.total());
  EXPECT_LE(CovarianceError(r_wor.truth, wor.CoordinatorGram()),
            CovarianceError(r_wr.truth, wr.CoordinatorGram()) + 0.05);
}

TEST(MP4Test, RunsAndReportsButErrorIsLarge) {
  // The appendix's negative result: P4's error is much worse than eps and
  // typically worse than every other protocol.
  const double eps = 0.05;
  MP4Experimental p4(6, eps, 3);
  MP2SvdThreshold p2(6, eps);
  DriveResult r4 = Drive(&p4, 6, 10000, 12, 4, 11);
  DriveResult r2 = Drive(&p2, 6, 10000, 12, 4, 11);
  const double err4 = CovarianceError(r4.truth, p4.CoordinatorGram());
  const double err2 = CovarianceError(r2.truth, p2.CoordinatorGram());
  EXPECT_GT(err4, err2);
  EXPECT_GT(err4, eps);  // fails its nominal target
}

TEST(MP4Test, RealignmentReducesError) {
  // The appendix's sketched fix: periodic FD re-alignment should repair a
  // large part of the error (at extra communication).
  const double eps = 0.05;
  MP4Options plain;
  MP4Options realign;
  realign.realign_rounds = 2;
  MP4Experimental p_plain(6, eps, 3, plain);
  MP4Experimental p_realign(6, eps, 3, realign);
  DriveResult r_plain = Drive(&p_plain, 6, 10000, 12, 4, 12);
  DriveResult r_realign = Drive(&p_realign, 6, 10000, 12, 4, 12);
  const double err_plain =
      CovarianceError(r_plain.truth, p_plain.CoordinatorGram());
  const double err_realign =
      CovarianceError(r_realign.truth, p_realign.CoordinatorGram());
  EXPECT_LT(err_realign, err_plain);
  EXPECT_GT(p_realign.comm_stats().total(), p_plain.comm_stats().total());
}

TEST(MatrixProtocolTest, ContinuousQueriesHoldMidStream) {
  // The guarantee is *continuous*: check at many prefixes, not just at the
  // end.
  const double eps = 0.15;
  MP2SvdThreshold p(5, eps);
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 10;
  cfg.latent_rank = 3;
  cfg.seed = 13;
  data::SyntheticMatrixGenerator gen(cfg);
  stream::Router router(5, stream::RoutingPolicy::kUniform, 14);
  CovarianceTracker truth(10);
  for (size_t i = 0; i < 8000; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    p.ProcessRow(router.NextSite(), row);
    if ((i + 1) % 1000 == 0) {
      ASSERT_LE(CovarianceError(truth, p.CoordinatorGram()), eps + 1e-9)
          << "violated at prefix " << i + 1;
    }
  }
}

TEST(MatrixProtocolTest, SkewedRoutingStillMeetsGuarantee) {
  const double eps = 0.15;
  MP2SvdThreshold p(8, eps);
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 10;
  cfg.latent_rank = 3;
  cfg.seed = 15;
  data::SyntheticMatrixGenerator gen(cfg);
  stream::Router router(8, stream::RoutingPolicy::kSkewed, 16);
  CovarianceTracker truth(10);
  for (size_t i = 0; i < 10000; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    p.ProcessRow(router.NextSite(), row);
  }
  EXPECT_LE(CovarianceError(truth, p.CoordinatorGram()), eps + 1e-9);
}

}  // namespace
}  // namespace matrix
}  // namespace dmt
