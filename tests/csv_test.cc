#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace dmt {
namespace data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void WriteFile(const std::string& content) {
    // One file per test case: gtest_discover_tests runs each TEST as its
    // own ctest process, so a shared fixed path races under `ctest -j`.
    path_ = ::testing::TempDir() + "/dmt_csv_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name() +
            ".csv";
    std::ofstream out(path_);
    out << content;
  }
  std::string path_;
};

TEST_F(CsvTest, LoadsNumericRows) {
  WriteFile("1,2,3\n4,5,6\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST_F(CsvTest, SkipsHeaderAndMalformedRows) {
  WriteFile("a,b,c\n1,2,3\n4,x,6\n7,8,9\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST_F(CsvTest, SkipsRowsWithWrongColumnCount) {
  WriteFile("1,2\n3,4,5\n6,7\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
}

TEST_F(CsvTest, MaxRowsLimit) {
  WriteFile("1\n2\n3\n4\n");
  linalg::Matrix m = LoadCsv(path_, ',', 2);
  EXPECT_EQ(m.rows(), 2u);
}

TEST_F(CsvTest, AlternateDelimiter) {
  WriteFile("1;2\n3;4\n");
  linalg::Matrix m = LoadCsv(path_, ';');
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

// Regression: "12abc" used to parse as 12.0 because only a zero-character
// parse was rejected; a partially-numeric cell must invalidate the row.
TEST_F(CsvTest, RejectsPartialNumericCells) {
  WriteFile("1,2,3\n4,12abc,6\n7,8,9\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST_F(CsvTest, RejectsPartialNumericFirstCell) {
  WriteFile("3.5e2x,2\n1,2\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 1u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
}

TEST_F(CsvTest, AcceptsCellsPaddedWithWhitespace) {
  WriteFile(" 1 ,\t2,3 \n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 1u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST_F(CsvTest, TrailingDelimiterDoesNotAddAColumn) {
  WriteFile("1,2,3,\n4,5,6,\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST_F(CsvTest, RejectsNonFiniteAndOverflowingCells) {
  WriteFile("1,1e999,3\ninf,5,6\n7,nan,9\n10,11,12\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 1u);
  EXPECT_DOUBLE_EQ(m(0, 0), 10.0);
}

TEST_F(CsvTest, AcceptsSubnormalValues) {
  WriteFile("1,1e-310,3\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 1u);
  EXPECT_GT(m(0, 1), 0.0);
  EXPECT_LT(m(0, 1), 1e-300);
}

TEST_F(CsvTest, SkipsRowsWithEmptyInteriorCells) {
  WriteFile("1,,3\n4,5,6\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 1u);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
}

TEST_F(CsvTest, HandlesCrlfLineEndings) {
  WriteFile("1,2,3\r\n4,5,6\r\n\r\n7,8,9\r\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 7.0);
}

TEST(CsvMissingFileTest, ReturnsEmptyMatrix) {
  linalg::Matrix m = LoadCsv("/nonexistent/definitely_missing.csv");
  EXPECT_TRUE(m.empty());
}

TEST_F(CsvTest, ImputePolicySubstitutesMissingCells) {
  WriteFile("1,NaN,3\n4,,6\n");
  CsvParseOptions options;
  options.missing_policy = CsvParseOptions::MissingPolicy::kImpute;
  options.impute_value = -1.0;
  linalg::Matrix m = LoadCsvFiltered(path_, options);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 1), -1.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

// Regression: under kImpute, a fully non-numeric header line used to be
// "imputed" into an all-zero row, locking the expected width onto the
// header's token count and rejecting every real row after it.
TEST_F(CsvTest, ImputePolicyStillSkipsTextHeaderLines) {
  WriteFile("colA,colB,colC\n1,NaN,3\n4,5,6\n");
  CsvParseOptions options;
  options.missing_policy = CsvParseOptions::MissingPolicy::kImpute;
  linalg::Matrix m = LoadCsvFiltered(path_, options);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);  // imputed
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST_F(CsvTest, KeepColumnsSelectsAndReorders) {
  WriteFile("1,2,3,4\n5,6,7,8\n");
  CsvParseOptions options;
  options.keep_columns = {2, 0};
  linalg::Matrix m = LoadCsvFiltered(path_, options);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST_F(CsvTest, WhitespaceDelimitedSplitsOnRuns) {
  WriteFile("1   2\t3\n  4 5  6 \n");
  CsvParseOptions options;
  options.whitespace_delimited = true;
  linalg::Matrix m = LoadCsvFiltered(path_, options);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

}  // namespace
}  // namespace data
}  // namespace dmt
