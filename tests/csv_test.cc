#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace dmt {
namespace data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void WriteFile(const std::string& content) {
    path_ = ::testing::TempDir() + "/dmt_csv_test.csv";
    std::ofstream out(path_);
    out << content;
  }
  std::string path_;
};

TEST_F(CsvTest, LoadsNumericRows) {
  WriteFile("1,2,3\n4,5,6\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 6.0);
}

TEST_F(CsvTest, SkipsHeaderAndMalformedRows) {
  WriteFile("a,b,c\n1,2,3\n4,x,6\n7,8,9\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 7.0);
}

TEST_F(CsvTest, SkipsRowsWithWrongColumnCount) {
  WriteFile("1,2\n3,4,5\n6,7\n");
  linalg::Matrix m = LoadCsv(path_);
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
}

TEST_F(CsvTest, MaxRowsLimit) {
  WriteFile("1\n2\n3\n4\n");
  linalg::Matrix m = LoadCsv(path_, ',', 2);
  EXPECT_EQ(m.rows(), 2u);
}

TEST_F(CsvTest, AlternateDelimiter) {
  WriteFile("1;2\n3;4\n");
  linalg::Matrix m = LoadCsv(path_, ';');
  ASSERT_EQ(m.rows(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
}

TEST(CsvMissingFileTest, ReturnsEmptyMatrix) {
  linalg::Matrix m = LoadCsv("/nonexistent/definitely_missing.csv");
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace data
}  // namespace dmt
