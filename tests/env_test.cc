#include "util/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace dmt {
namespace {

constexpr const char* kVar = "DMT_ENV_TEST_VAR";

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override { ::unsetenv(kVar); }
  void TearDown() override { ::unsetenv(kVar); }
  void Set(const char* value) { ::setenv(kVar, value, /*overwrite=*/1); }
};

TEST_F(EnvTest, StringFallsBackWhenUnsetOrEmpty) {
  EXPECT_EQ(GetEnvString(kVar, "fb"), "fb");
  Set("");
  EXPECT_EQ(GetEnvString(kVar, "fb"), "fb");
  Set("value");
  EXPECT_EQ(GetEnvString(kVar, "fb"), "value");
}

TEST_F(EnvTest, IntParsesWellFormedValues) {
  Set("42");
  EXPECT_EQ(GetEnvInt(kVar, -1), 42);
  Set("-7");
  EXPECT_EQ(GetEnvInt(kVar, -1), -7);
  Set("  13");
  EXPECT_EQ(GetEnvInt(kVar, -1), 13);
  Set("13 ");
  EXPECT_EQ(GetEnvInt(kVar, -1), 13);
}

TEST_F(EnvTest, IntFallsBackWhenUnsetOrEmpty) {
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
  Set("");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
}

// Regression: "12abc" used to parse as 12 because only a zero-character
// parse was rejected; a partial parse must yield the fallback.
TEST_F(EnvTest, IntFallsBackOnPartialParse) {
  Set("12abc");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
  Set("3.5");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
  Set("7 up");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
}

TEST_F(EnvTest, IntFallsBackOnGarbage) {
  Set("abc");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
  Set("   ");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
  Set("-");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
}

TEST_F(EnvTest, IntFallsBackOnOutOfRange) {
  Set("999999999999999999999999999");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
  Set("-999999999999999999999999999");
  EXPECT_EQ(GetEnvInt(kVar, 99), 99);
}

TEST_F(EnvTest, ScaleSelection) {
  ::setenv("DMT_SCALE", "small", 1);
  EXPECT_EQ(GetScale(), Scale::kSmall);
  EXPECT_EQ(ScaledN(1000, 10, 100), 10);
  ::setenv("DMT_SCALE", "paper", 1);
  EXPECT_EQ(GetScale(), Scale::kPaper);
  EXPECT_EQ(ScaledN(1000, 10, 100), 1000);
  ::setenv("DMT_SCALE", "bogus", 1);
  EXPECT_EQ(GetScale(), Scale::kDefault);
  EXPECT_EQ(ScaledN(1000, 10, 100), 100);
  ::unsetenv("DMT_SCALE");
  EXPECT_EQ(GetScale(), Scale::kDefault);
}

}  // namespace
}  // namespace dmt
