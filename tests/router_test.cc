#include "stream/router.h"

#include <vector>

#include <gtest/gtest.h>

namespace dmt {
namespace stream {
namespace {

TEST(RouterTest, RoundRobinCycles) {
  Router r(3, RoutingPolicy::kRoundRobin, 1);
  EXPECT_EQ(r.NextSite(), 0u);
  EXPECT_EQ(r.NextSite(), 1u);
  EXPECT_EQ(r.NextSite(), 2u);
  EXPECT_EQ(r.NextSite(), 0u);
}

TEST(RouterTest, UniformCoversAllSitesEvenly) {
  const size_t m = 8;
  Router r(m, RoutingPolicy::kUniform, 2);
  std::vector<int> counts(m, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.NextSite()];
  for (size_t s = 0; s < m; ++s) {
    EXPECT_NEAR(counts[s], n / static_cast<int>(m), n / m * 0.1);
  }
}

TEST(RouterTest, SkewedFavorsSiteZero) {
  const size_t m = 10;
  Router r(m, RoutingPolicy::kSkewed, 3);
  std::vector<int> counts(m, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[r.NextSite()];
  // Site 0 receives ~50% + ~5% = ~55%.
  EXPECT_GT(counts[0], n * 0.5);
  for (size_t s = 1; s < m; ++s) EXPECT_GT(counts[s], 0);
}

TEST(RouterTest, SingleSiteAlwaysZero) {
  for (auto policy : {RoutingPolicy::kUniform, RoutingPolicy::kRoundRobin,
                      RoutingPolicy::kSkewed}) {
    Router r(1, policy, 4);
    for (int i = 0; i < 20; ++i) EXPECT_EQ(r.NextSite(), 0u);
  }
}

TEST(RouterTest, DeterministicForSeed) {
  Router a(5, RoutingPolicy::kUniform, 99);
  Router b(5, RoutingPolicy::kUniform, 99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextSite(), b.NextSite());
}

}  // namespace
}  // namespace stream
}  // namespace dmt
