// Property-style sweeps over (protocol, m, eps) asserting the paper's
// guarantees on Zipfian weighted streams.
#include <algorithm>
#include <memory>
#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "data/zipf.h"
#include "hh/exact_tracker.h"
#include "hh/p1_batched_mg.h"
#include "hh/p2_threshold.h"
#include "hh/p3_sampling.h"
#include "hh/p4_randomized.h"
#include "stream/router.h"

namespace dmt {
namespace hh {
namespace {

constexpr size_t kStreamLen = 30000;
constexpr double kBeta = 100.0;

std::unique_ptr<HeavyHitterProtocol> MakeProtocol(const std::string& name,
                                                  size_t m, double eps) {
  if (name == "P1") return std::make_unique<P1BatchedMG>(m, eps);
  if (name == "P2") return std::make_unique<P2Threshold>(m, eps);
  if (name == "P3wor") return std::make_unique<P3SamplingWoR>(m, eps, 42);
  if (name == "P3wr") return std::make_unique<P3SamplingWR>(m, eps, 42);
  if (name == "P4") return std::make_unique<P4Randomized>(m, eps, 42);
  return std::make_unique<ExactTracker>(m);
}

class HhProtocolPropertyTest
    : public ::testing::TestWithParam<
          std::tuple<std::string, size_t, double>> {};

TEST_P(HhProtocolPropertyTest, ErrorRecallAndCommunication) {
  auto [name, m, eps] = GetParam();
  auto protocol = MakeProtocol(name, m, eps);

  data::ZipfianStream z(10000, 2.0, kBeta, 77);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 78);
  data::ExactWeights truth;
  for (size_t i = 0; i < kStreamLen; ++i) {
    data::WeightedItem item = z.Next();
    truth.Observe(item);
    protocol->Process(router.NextSite(), item.element, item.weight);
  }
  const double w = truth.total_weight();

  // Deterministic protocols must meet eps exactly; randomized ones get a
  // 3x allowance for the fixed seed.
  const bool deterministic = (name == "P1" || name == "P2");
  const double slack = deterministic ? 1.0 : 3.0;
  for (uint64_t e = 0; e < 30; ++e) {
    EXPECT_NEAR(protocol->EstimateElementWeight(e), truth.Weight(e),
                slack * eps * w)
        << name << " m=" << m << " eps=" << eps << " element " << e;
  }

  // Recall of phi-heavy hitters must be perfect (paper Figure 1a).
  const double phi = 0.05;
  auto got = protocol->HeavyHitters(phi, eps);
  for (uint64_t e : truth.HeavyHitters(phi)) {
    EXPECT_NE(std::find(got.begin(), got.end(), e), got.end())
        << name << " missed heavy hitter " << e;
  }

  // Communication must beat the trivial send-everything protocol. P1 and
  // P3wr carry 1/eps^2 terms, so on a short stream the strict bound is only
  // meaningful at the larger eps; for small eps require sanity, not wins
  // (the paper's Figure 1(d) uses N = 10^7 where the gap re-opens).
  const bool quadratic = (name == "P1" || name == "P3wr");
  if (!quadratic || eps >= 0.1) {
    EXPECT_LT(protocol->comm_stats().total(), kStreamLen)
        << name << " m=" << m << " eps=" << eps;
  } else {
    EXPECT_LT(protocol->comm_stats().total(), 100 * kStreamLen)
        << name << " m=" << m << " eps=" << eps;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, HhProtocolPropertyTest,
    ::testing::Combine(::testing::Values("P1", "P2", "P3wor", "P3wr", "P4"),
                       ::testing::Values<size_t>(5, 20),
                       ::testing::Values(0.02, 0.1)));

// Metamorphic property: scaling every weight by a constant scales all
// estimates by the same constant (deterministic protocols).
class HhScaleInvarianceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(HhScaleInvarianceTest, WeightScalingScalesEstimates) {
  const std::string name = GetParam();
  const size_t m = 8;
  const double eps = 0.05;
  auto p_base = MakeProtocol(name, m, eps);
  auto p_scaled = MakeProtocol(name, m, eps);

  data::ZipfianStream z(1000, 2.0, 10.0, 5);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 6);
  const double c = 4.0;
  for (size_t i = 0; i < 20000; ++i) {
    data::WeightedItem item = z.Next();
    size_t site = router.NextSite();
    p_base->Process(site, item.element, item.weight);
    p_scaled->Process(site, item.element, c * item.weight);
  }
  for (uint64_t e = 0; e < 10; ++e) {
    EXPECT_NEAR(p_scaled->EstimateElementWeight(e), c * p_base->EstimateElementWeight(e),
                1e-6 * c * p_base->EstimateTotalWeight() + 1e-9)
        << name << " element " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(Deterministic, HhScaleInvarianceTest,
                         ::testing::Values("P1", "P2"));

// Communication should grow (roughly log) with stream length, never
// linearly, for the threshold protocol.
TEST(HhCommunicationGrowthTest, P2MessagesSublinearInStreamLength) {
  const size_t m = 10;
  const double eps = 0.01;
  uint64_t msgs_at[3];
  size_t idx = 0;
  P2Threshold p(m, eps);
  data::ZipfianStream z(10000, 2.0, kBeta, 9);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 10);
  for (size_t i = 0; i < 80000; ++i) {
    data::WeightedItem item = z.Next();
    p.Process(router.NextSite(), item.element, item.weight);
    if (i + 1 == 20000 || i + 1 == 40000 || i + 1 == 80000) {
      msgs_at[idx++] = p.comm_stats().total();
    }
  }
  // Doubling the stream must far less than double the messages.
  const double growth1 =
      static_cast<double>(msgs_at[1]) / static_cast<double>(msgs_at[0]);
  const double growth2 =
      static_cast<double>(msgs_at[2]) / static_cast<double>(msgs_at[1]);
  EXPECT_LT(growth1, 1.7);
  EXPECT_LT(growth2, 1.7);
}

}  // namespace
}  // namespace hh
}  // namespace dmt
