// Unit tests for the RCU snapshot store: publication/reclamation
// accounting, pin semantics, reader-slot lifecycle, and a raw
// writer-vs-readers stress run (TSan-covered; the suite name matches the
// CI TSan regex via "Snapshot").
#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/snapshot.h"
#include "serve/snapshot_store.h"

namespace dmt {
namespace {

// A distinguishable snapshot: `tag` entries of weight `tag`, internally
// consistent by construction (checksummable).
std::unique_ptr<const serve::Snapshot> MakeTagged(uint64_t tag) {
  auto snap = std::make_unique<serve::Snapshot>();
  snap->window_index = tag;
  snap->items_ingested = 10 * tag;
  snap->has_hh = true;
  double total = 0.0;
  for (uint64_t i = 0; i < tag % 16; ++i) {
    const double w = static_cast<double>(tag);
    snap->by_weight.push_back(serve::HHEntry{i, w});
    snap->by_element.push_back(serve::HHEntry{i, w});
    total += w;
    snap->prefix_weight.push_back(total);
  }
  snap->total_weight = total;
  return snap;
}

TEST(SnapshotStoreTest, StartsWithEmptySnapshotPublished) {
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  serve::SnapshotRef ref = reader.Acquire();
  ASSERT_TRUE(ref);
  EXPECT_EQ(ref->window_index, 0u);
  EXPECT_FALSE(ref->has_hh);
  EXPECT_FALSE(ref->has_matrix);
}

TEST(SnapshotStoreTest, PublishSupersedesAndReclaims) {
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  for (uint64_t i = 1; i <= 100; ++i) {
    store.Publish(MakeTagged(i));
    serve::SnapshotRef ref = reader.Acquire();
    EXPECT_EQ(ref->window_index, i);
  }
  // Unpinned superseded snapshots are reclaimed promptly: nothing should
  // pile up beyond what a single in-flight acquire can block.
  EXPECT_LE(store.retired_count(), 1u);
  EXPECT_GE(store.reclaimed_count(), 99u);
}

TEST(SnapshotStoreTest, PinBlocksReclamationUntilReleased) {
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  store.Publish(MakeTagged(7));
  serve::SnapshotRef pin = reader.Acquire();
  const uint64_t sum = serve::SnapshotChecksum(*pin);

  store.Publish(MakeTagged(8));
  store.Publish(MakeTagged(9));
  // The pinned publication cannot be freed...
  EXPECT_GE(store.retired_count(), 1u);
  // ...and its bytes are untouched.
  EXPECT_EQ(serve::SnapshotChecksum(*pin), sum);
  EXPECT_EQ(pin->window_index, 7u);

  pin.Reset();
  store.Publish(MakeTagged(10));
  EXPECT_EQ(store.retired_count(), 0u);
}

TEST(SnapshotStoreTest, MovedRefKeepsPinMovedFromIsEmpty) {
  serve::SnapshotStore store;
  serve::SnapshotReader reader(&store);
  store.Publish(MakeTagged(3));
  serve::SnapshotRef a = reader.Acquire();
  serve::SnapshotRef b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move): moved-from probe
  ASSERT_TRUE(b);
  EXPECT_EQ(b->window_index, 3u);
  store.Publish(MakeTagged(4));
  EXPECT_GE(store.retired_count(), 1u);  // b still pins window 3
  b.Reset();
  store.Publish(MakeTagged(5));
  EXPECT_EQ(store.retired_count(), 0u);
}

TEST(SnapshotStoreTest, ReaderSlotsRecycle) {
  serve::SnapshotStore store(/*max_readers=*/2);
  // Sequential readers far beyond the slot count: destruction must
  // recycle slots or the third construction would abort.
  for (int i = 0; i < 10; ++i) {
    serve::SnapshotReader a(&store);
    serve::SnapshotReader b(&store);
    (void)a.Acquire();
    (void)b.Acquire();
  }
}

TEST(SnapshotStoreTest, TooManyConcurrentReadersDies) {
  serve::SnapshotStore store(/*max_readers=*/1);
  serve::SnapshotReader only(&store);
  EXPECT_DEATH({ serve::SnapshotReader second(&store); }, "DMT_CHECK");
}

TEST(SnapshotStoreTest, PublishNullDies) {
  serve::SnapshotStore store;
  EXPECT_DEATH(store.Publish(nullptr), "DMT_CHECK");
}

// Raw stress: one writer publishing tagged snapshots flat out, several
// readers validating internal consistency of whatever they acquire.
// Under TSan this is the direct probe of the acquire/publish/reclaim
// memory-order protocol, without the driver in the loop.
TEST(SnapshotStoreTest, WriterVsReadersStress) {
  serve::SnapshotStore store;
  std::atomic<bool> done{false};
  std::atomic<uint64_t> bad{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&]() {
      serve::SnapshotReader reader(&store);
      while (!done.load(std::memory_order_acquire)) {
        serve::SnapshotRef ref = reader.Acquire();
        const serve::Snapshot& s = *ref;
        // Invariants every MakeTagged (and the initial empty) snapshot
        // satisfies; a torn or reclaimed-under-us snapshot breaks them.
        const size_t expect_n =
            s.window_index == 0 ? 0 : s.window_index % 16;
        bool ok = s.by_weight.size() == expect_n &&
                  s.by_element.size() == expect_n &&
                  s.prefix_weight.size() == expect_n;
        for (const serve::HHEntry& e : s.by_weight) {
          ok = ok && e.weight == static_cast<double>(s.window_index);
        }
        ok = ok && s.items_ingested == 10 * s.window_index;
        if (!ok) bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (uint64_t i = 1; i <= 3000; ++i) store.Publish(MakeTagged(i));
  done.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad.load(), 0u);
  // Mid-run reclamation counts depend on scheduling (a reader preempted
  // inside Acquire legitimately holds back the whole backlog — that is
  // the epoch grace period), so assert the deterministic end state
  // instead: with every reader joined, the next publish reclaims every
  // one of the 3001 retirements (3000 tagged + the initial empty).
  store.Publish(MakeTagged(3001));
  EXPECT_EQ(store.retired_count(), 0u);
  EXPECT_EQ(store.reclaimed_count(), 3001u);
}

}  // namespace
}  // namespace dmt
