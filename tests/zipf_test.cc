#include "data/zipf.h"

#include <vector>

#include <gtest/gtest.h>

namespace dmt {
namespace data {
namespace {

TEST(ZipfTest, WeightsWithinBetaRange) {
  ZipfianStream z(100, 2.0, 50.0, 1);
  for (int i = 0; i < 5000; ++i) {
    WeightedItem item = z.Next();
    EXPECT_GE(item.weight, 1.0);
    EXPECT_LE(item.weight, 50.0);
    EXPECT_LT(item.element, 100u);
  }
}

TEST(ZipfTest, BetaOneMeansUnitWeights) {
  ZipfianStream z(10, 2.0, 1.0, 2);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(z.Next().weight, 1.0);
}

TEST(ZipfTest, FrequenciesDecreaseWithRank) {
  ZipfianStream z(1000, 2.0, 1.0, 3);
  std::vector<int> counts(1000, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[z.Next().element];
  // Element 0 should have ~ 4x element 1 (skew 2 => ratio 2^2).
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 4.0, 1.0);
  EXPECT_GT(counts[1], counts[3]);
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfianStream z(10, 0.0, 1.0, 4);
  std::vector<int> counts(10, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Next().element];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(ZipfTest, TakeReturnsRequestedCount) {
  ZipfianStream z(50, 2.0, 10.0, 5);
  auto items = z.Take(123);
  EXPECT_EQ(items.size(), 123u);
}

TEST(ExactWeightsTest, TallyAndHeavyHitters) {
  ExactWeights ew;
  ew.Observe({1, 60.0});
  ew.Observe({2, 30.0});
  ew.Observe({3, 10.0});
  EXPECT_DOUBLE_EQ(ew.total_weight(), 100.0);
  EXPECT_DOUBLE_EQ(ew.Weight(1), 60.0);
  EXPECT_DOUBLE_EQ(ew.Weight(42), 0.0);

  auto hh = ew.HeavyHitters(0.25);
  ASSERT_EQ(hh.size(), 2u);
  EXPECT_EQ(hh[0], 1u);
  EXPECT_EQ(hh[1], 2u);
}

TEST(ExactWeightsTest, HeavyHittersOfZipfStreamAreHeadElements) {
  ZipfianStream z(10000, 2.0, 1000.0, 6);
  ExactWeights ew;
  for (int i = 0; i < 100000; ++i) ew.Observe(z.Next());
  auto hh = ew.HeavyHitters(0.05);
  ASSERT_FALSE(hh.empty());
  // With skew 2, the heavy hitters are the very first elements.
  for (uint64_t e : hh) EXPECT_LT(e, 10u);
}

}  // namespace
}  // namespace data
}  // namespace dmt
