#include "sketch/space_saving.h"

#include <map>
#include <tuple>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dmt {
namespace sketch {
namespace {

TEST(SpaceSavingTest, ExactWhenUnderCapacity) {
  SpaceSaving ss(8);
  ss.Update(1, 3.0);
  ss.Update(2, 4.0);
  ss.Update(1, 1.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(1), 4.0);
  EXPECT_DOUBLE_EQ(ss.Estimate(2), 4.0);
  EXPECT_DOUBLE_EQ(ss.ErrorBound(1), 0.0);
}

TEST(SpaceSavingTest, EvictionStealsMinimumSlot) {
  SpaceSaving ss(2);
  ss.Update(1, 5.0);
  ss.Update(2, 1.0);
  ss.Update(3, 2.0);  // evicts element 2 (count 1): new count 3.0, err 1.0
  EXPECT_DOUBLE_EQ(ss.Estimate(3), 3.0);
  EXPECT_DOUBLE_EQ(ss.ErrorBound(3), 1.0);
  // Untracked element estimate equals current min counter.
  EXPECT_DOUBLE_EQ(ss.Estimate(2), 3.0);
}

TEST(SpaceSavingTest, ItemsSortedDescending) {
  SpaceSaving ss(4);
  ss.Update(1, 1.0);
  ss.Update(2, 5.0);
  ss.Update(3, 3.0);
  auto items = ss.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 2u);
  EXPECT_EQ(items[2].first, 1u);
}

// Property sweep: SpaceSaving never underestimates, and overestimates by at
// most W/k.
class SpaceSavingBoundTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, int>> {};

TEST_P(SpaceSavingBoundTest, OverestimateWithinBound) {
  auto [k, universe, seed] = GetParam();
  SpaceSaving ss(k);
  Rng rng(seed);
  std::map<uint64_t, double> truth;
  double total = 0.0;
  for (int i = 0; i < 5000; ++i) {
    uint64_t e = rng.NextBelow(universe);
    if (rng.NextDouble() < 0.5) e = rng.NextBelow(1 + universe / 10);
    double w = 1.0 + 4.0 * rng.NextDouble();
    truth[e] += w;
    total += w;
    ss.Update(e, w);
  }
  const double bound = total / static_cast<double>(k);
  for (const auto& [e, w] : truth) {
    const double est = ss.Estimate(e);
    EXPECT_GE(est, w - 1e-9) << "element " << e;
    EXPECT_LE(est, w + bound + 1e-9) << "element " << e;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpaceSavingBoundTest,
    ::testing::Combine(::testing::Values<size_t>(4, 16, 64),
                       ::testing::Values<uint64_t>(20, 500),
                       ::testing::Values(1, 2)));

TEST(SpaceSavingTest, HeavyElementSurvivesChurn) {
  SpaceSaving ss(4);
  Rng rng(7);
  // One heavy element among a churn of light ones.
  for (int i = 0; i < 2000; ++i) {
    ss.Update(999, 10.0);
    ss.Update(rng.NextBelow(1000), 1.0);
  }
  auto items = ss.Items();
  EXPECT_EQ(items[0].first, 999u);
  EXPECT_GE(items[0].second, 20000.0 - 1e-9);
}

}  // namespace
}  // namespace sketch
}  // namespace dmt
