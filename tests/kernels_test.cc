// Property tests for the blocked kernel layer: every blocked kernel must
// match its naive reference to 1e-12 relative accuracy across
// rectangular, degenerate (0-row / 0-col), and non-multiple-of-tile
// shapes, and must be deterministic (same input -> bit-identical output).
#include "linalg/kernels.h"

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/spectral.h"
#include "util/rng.h"

namespace dmt {
namespace linalg {
namespace kernels {
namespace {

std::vector<double> RandomVec(size_t n, Rng* rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng->NextGaussian();
  return v;
}

double MaxAbs(const std::vector<double>& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double MaxAbsDiff(const std::vector<double>& a,
                  const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

// Shapes chosen to cross every tile boundary: exact multiples, +/-1 off
// the register tile (4), the accumulator tile (64), and the k panel
// (256), plus fully degenerate extents.
class GemmShapeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(GemmShapeTest, BlockedMatchesNaive) {
  auto [m, k, n] = GetParam();
  Rng rng(m * 1000003 + k * 1009 + n);
  std::vector<double> a = RandomVec(m * k, &rng);
  std::vector<double> b = RandomVec(k * n, &rng);
  std::vector<double> naive(m * n, -1.0), blocked(m * n, -1.0);
  GemmNaive(a.data(), b.data(), naive.data(), m, k, n);
  Gemm(a.data(), b.data(), blocked.data(), m, k, n);
  const double scale = 1.0 + MaxAbs(naive);
  EXPECT_LE(MaxAbsDiff(naive, blocked), 1e-12 * scale)
      << "m=" << m << " k=" << k << " n=" << n;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmShapeTest,
    ::testing::Values(std::make_tuple(0u, 3u, 4u), std::make_tuple(3u, 0u, 4u),
                      std::make_tuple(3u, 4u, 0u), std::make_tuple(1u, 1u, 1u),
                      std::make_tuple(4u, 4u, 4u), std::make_tuple(5u, 7u, 3u),
                      std::make_tuple(33u, 65u, 17u),
                      std::make_tuple(64u, 64u, 64u),
                      std::make_tuple(63u, 64u, 65u),
                      std::make_tuple(7u, 300u, 129u),
                      std::make_tuple(70u, 257u, 100u)));

class GramShapeTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(GramShapeTest, BlockedMatchesNaive) {
  auto [n, d] = GetParam();
  Rng rng(n * 7919 + d);
  std::vector<double> a = RandomVec(n * d, &rng);
  std::vector<double> naive(d * d, -1.0), blocked(d * d, -1.0);
  GramNaive(a.data(), n, d, naive.data());
  Gram(a.data(), n, d, blocked.data());
  const double scale = 1.0 + MaxAbs(naive);
  EXPECT_LE(MaxAbsDiff(naive, blocked), 1e-12 * scale)
      << "n=" << n << " d=" << d;
  // Exact symmetry: the mirror step copies the upper triangle.
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = 0; j < d; ++j) {
      ASSERT_EQ(blocked[i * d + j], blocked[j * d + i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GramShapeTest,
    ::testing::Values(std::make_tuple(0u, 5u), std::make_tuple(5u, 0u),
                      std::make_tuple(1u, 1u), std::make_tuple(5u, 3u),
                      std::make_tuple(33u, 17u), std::make_tuple(128u, 64u),
                      std::make_tuple(129u, 66u), std::make_tuple(300u, 65u),
                      std::make_tuple(17u, 130u)));

TEST(KernelsTest, GramAccumulateAddsOntoSymmetricInput) {
  const size_t n = 37, d = 19;
  Rng rng(11);
  std::vector<double> a = RandomVec(n * d, &rng);
  // Symmetric starting matrix S = X^T X.
  std::vector<double> x = RandomVec(8 * d, &rng);
  std::vector<double> s(d * d);
  GramNaive(x.data(), 8, d, s.data());
  std::vector<double> expected(d * d), got = s;
  GramNaive(a.data(), n, d, expected.data());
  for (size_t i = 0; i < d * d; ++i) expected[i] += s[i];
  GramAccumulate(a.data(), n, d, got.data());
  const double scale = 1.0 + MaxAbs(expected);
  EXPECT_LE(MaxAbsDiff(expected, got), 1e-12 * scale);
}

TEST(KernelsTest, BatchedRank1MatchesSequentialUpdates) {
  const size_t count = 29, d = 23;
  Rng rng(12);
  std::vector<double> rows = RandomVec(count * d, &rng);
  std::vector<double> alphas(count);
  for (auto& al : alphas) al = rng.NextGaussian();  // signed scales
  std::vector<double> expected(d * d, 0.0), got(d * d, 0.0);
  for (size_t t = 0; t < count; ++t) {
    Rank1Update(alphas[t], rows.data() + t * d, expected.data(), d);
  }
  BatchedRank1(rows.data(), alphas.data(), count, d, got.data());
  const double scale = 1.0 + MaxAbs(expected);
  EXPECT_LE(MaxAbsDiff(expected, got), 1e-12 * scale);
}

TEST(KernelsTest, BatchedRank1NullAlphasIsGramAccumulate) {
  const size_t count = 9, d = 6;
  Rng rng(13);
  std::vector<double> rows = RandomVec(count * d, &rng);
  std::vector<double> a(d * d, 0.0), b(d * d, 0.0);
  BatchedRank1(rows.data(), nullptr, count, d, a.data());
  GramAccumulate(rows.data(), count, d, b.data());
  EXPECT_EQ(MaxAbsDiff(a, b), 0.0);
}

TEST(KernelsTest, TransposeMatchesNaiveAcrossShapes) {
  Rng rng(14);
  const std::vector<std::pair<size_t, size_t>> shapes = {
      {0, 4}, {4, 0}, {1, 1}, {1, 100}, {100, 1},
      {32, 32}, {33, 31}, {5, 130}, {67, 45}};
  for (auto [r, c] : shapes) {
    std::vector<double> a = RandomVec(r * c, &rng);
    std::vector<double> got(c * r, -1.0);
    Transpose(a.data(), r, c, got.data());
    for (size_t i = 0; i < r; ++i) {
      for (size_t j = 0; j < c; ++j) {
        ASSERT_EQ(got[j * r + i], a[i * c + j]) << r << "x" << c;
      }
    }
  }
}

TEST(KernelsTest, SquaredNormAlongMatchesPerRowDots) {
  Rng rng(15);
  for (size_t n : {0u, 1u, 3u, 4u, 5u, 50u}) {
    const size_t d = 13;
    std::vector<double> a = RandomVec(n * d, &rng);
    std::vector<double> x = RandomVec(d, &rng);
    double expected = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double s = 0.0;
      for (size_t j = 0; j < d; ++j) s += a[i * d + j] * x[j];
      expected += s * s;
    }
    const double got = SquaredNormAlong(a.data(), n, d, x.data());
    EXPECT_NEAR(got, expected, 1e-12 * (1.0 + expected)) << "n=" << n;
  }
}

TEST(KernelsTest, KernelsAreDeterministic) {
  const size_t m = 37, k = 53, n = 29;
  Rng rng(16);
  std::vector<double> a = RandomVec(m * k, &rng);
  std::vector<double> b = RandomVec(k * n, &rng);
  std::vector<double> c1(m * n), c2(m * n);
  Gemm(a.data(), b.data(), c1.data(), m, k, n);
  Gemm(a.data(), b.data(), c2.data(), m, k, n);
  EXPECT_EQ(MaxAbsDiff(c1, c2), 0.0);
  std::vector<double> g1(k * k), g2(k * k);
  Gram(a.data(), m, k, g1.data());
  Gram(a.data(), m, k, g2.data());
  EXPECT_EQ(MaxAbsDiff(g1, g2), 0.0);
}

// The Matrix methods must be thin wrappers over these kernels: spot-check
// that they agree with the raw-span entry points exactly.
TEST(KernelsTest, MatrixWrappersDelegateToKernels) {
  Rng rng(17);
  Matrix a = RandomGaussianMatrix(21, 13, &rng);
  Matrix b = RandomGaussianMatrix(13, 9, &rng);

  Matrix prod = a.Multiply(b);
  std::vector<double> raw(21 * 9);
  Gemm(a.Row(0), b.Row(0), raw.data(), 21, 13, 9);
  for (size_t i = 0; i < 21; ++i) {
    for (size_t j = 0; j < 9; ++j) ASSERT_EQ(prod(i, j), raw[i * 9 + j]);
  }

  Matrix gram = a.Gram();
  std::vector<double> rawg(13 * 13);
  Gram(a.Row(0), 21, 13, rawg.data());
  for (size_t i = 0; i < 13; ++i) {
    for (size_t j = 0; j < 13; ++j) ASSERT_EQ(gram(i, j), rawg[i * 13 + j]);
  }
}

}  // namespace
}  // namespace kernels
}  // namespace linalg
}  // namespace dmt
