#include "linalg/jacobi_eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/spectral.h"
#include "linalg/vec_ops.h"
#include "util/rng.h"

namespace dmt {
namespace linalg {
namespace {

Matrix Reconstruct(const EigenDecomposition& e) {
  const size_t n = e.eigenvalues.size();
  Matrix out(n, n);
  for (size_t k = 0; k < n; ++k) {
    std::vector<double> v = e.Eigenvector(k);
    out.AddOuterProduct(e.eigenvalues[k], v);
  }
  return out;
}

TEST(JacobiEigenTest, DiagonalMatrixIsItsOwnDecomposition) {
  Matrix s(3, 3);
  s(0, 0) = 1.0;
  s(1, 1) = 5.0;
  s(2, 2) = 3.0;
  EigenDecomposition e = SymmetricEigen(s);
  EXPECT_NEAR(e.eigenvalues[0], 5.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[2], 1.0, 1e-12);
}

TEST(JacobiEigenTest, Known2x2) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  Matrix s = Matrix::FromRows({{2, 1}, {1, 2}});
  EigenDecomposition e = SymmetricEigen(s);
  EXPECT_NEAR(e.eigenvalues[0], 3.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], 1.0, 1e-12);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  std::vector<double> v = e.Eigenvector(0);
  EXPECT_NEAR(std::fabs(v[0]), std::sqrt(0.5), 1e-10);
  EXPECT_NEAR(v[0], v[1], 1e-10);
}

TEST(JacobiEigenTest, EigenvaluesSortedDescending) {
  Rng rng(3);
  Matrix a = RandomGaussianMatrix(12, 6, &rng);
  EigenDecomposition e = SymmetricEigen(a.Gram());
  for (size_t i = 0; i + 1 < e.eigenvalues.size(); ++i) {
    EXPECT_GE(e.eigenvalues[i], e.eigenvalues[i + 1]);
  }
}

TEST(JacobiEigenTest, ReconstructionMatchesInput) {
  Rng rng(7);
  Matrix a = RandomGaussianMatrix(20, 8, &rng);
  Matrix s = a.Gram();
  EigenDecomposition e = SymmetricEigen(s);
  Matrix rec = Reconstruct(e);
  EXPECT_LT(s.MaxAbsDiff(rec), 1e-9 * s.SquaredFrobeniusNorm());
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  Rng rng(11);
  Matrix a = RandomGaussianMatrix(15, 7, &rng);
  EigenDecomposition e = SymmetricEigen(a.Gram());
  for (size_t i = 0; i < 7; ++i) {
    std::vector<double> vi = e.Eigenvector(i);
    EXPECT_NEAR(Norm(vi), 1.0, 1e-10);
    for (size_t j = i + 1; j < 7; ++j) {
      std::vector<double> vj = e.Eigenvector(j);
      EXPECT_NEAR(Dot(vi, vj), 0.0, 1e-10);
    }
  }
}

TEST(JacobiEigenTest, GramEigenvaluesNonNegative) {
  Rng rng(13);
  Matrix a = RandomGaussianMatrix(30, 9, &rng);
  EigenDecomposition e = SymmetricEigen(a.Gram());
  for (double l : e.eigenvalues) EXPECT_GE(l, -1e-9);
}

TEST(JacobiEigenTest, IndefiniteMatrixHasSignedSpectrum) {
  // [[0,1],[1,0]] has eigenvalues +1 and -1.
  Matrix s = Matrix::FromRows({{0, 1}, {1, 0}});
  EigenDecomposition e = SymmetricEigen(s);
  EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(e.eigenvalues[1], -1.0, 1e-12);
  EXPECT_NEAR(SpectralNormSymmetric(s), 1.0, 1e-12);
}

TEST(JacobiEigenTest, SpectralNormOfZeroMatrix) {
  Matrix s(4, 4);
  EXPECT_DOUBLE_EQ(SpectralNormSymmetric(s), 0.0);
}

TEST(JacobiEigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(17);
  Matrix a = RandomGaussianMatrix(25, 10, &rng);
  Matrix s = a.Gram();
  double trace = 0.0;
  for (size_t i = 0; i < 10; ++i) trace += s(i, i);
  EigenDecomposition e = SymmetricEigen(s);
  double sum = 0.0;
  for (double l : e.eigenvalues) sum += l;
  EXPECT_NEAR(trace, sum, 1e-8 * trace);
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
