// End-to-end integration: all protocols side by side on the same streams,
// with continuous mid-stream checks — the setting of the paper's Section 6.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/continuous_hh_tracker.h"
#include "core/continuous_matrix_tracker.h"
#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "matrix/error.h"
#include "stream/router.h"

namespace dmt {
namespace {

TEST(IntegrationTest, AllMatrixProtocolsTrackTheSameStream) {
  const size_t m = 10;
  const double eps = 0.15;
  std::vector<std::unique_ptr<ContinuousMatrixTracker>> trackers;
  for (auto proto :
       {MatrixProtocol::kP1BatchedFD, MatrixProtocol::kP2SvdThreshold,
        MatrixProtocol::kP3SampleWoR, MatrixProtocol::kP3SampleWR}) {
    MatrixTrackerConfig cfg;
    cfg.num_sites = m;
    cfg.epsilon = eps;
    cfg.protocol = proto;
    cfg.seed = 33;
    trackers.push_back(std::make_unique<ContinuousMatrixTracker>(cfg));
  }

  data::SyntheticMatrixConfig gen_cfg;
  gen_cfg.dim = 12;
  gen_cfg.latent_rank = 4;
  gen_cfg.seed = 6;
  data::SyntheticMatrixGenerator gen(gen_cfg);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 7);
  matrix::CovarianceTracker truth(12);

  const size_t n = 12000;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    size_t site = router.NextSite();
    for (auto& t : trackers) t->Append(site, row);

    if ((i + 1) % 4000 == 0) {
      for (auto& t : trackers) {
        const double err =
            matrix::CovarianceError(truth, t->SketchGram());
        const double slack = t->protocol_name()[1] == '3' ? 3.0 : 1.0;
        ASSERT_LE(err, slack * eps + 1e-9)
            << t->protocol_name() << " at prefix " << i + 1;
      }
    }
  }

  // Every protocol must use less communication than shipping all rows.
  for (auto& t : trackers) {
    EXPECT_LT(t->comm_stats().total(), n) << t->protocol_name();
  }
}

TEST(IntegrationTest, AllHhProtocolsTrackTheSameStream) {
  const size_t m = 10;
  const double eps = 0.02;
  std::vector<std::unique_ptr<ContinuousHeavyHitterTracker>> trackers;
  for (auto proto : {HhProtocol::kP1BatchedMG, HhProtocol::kP2Threshold,
                     HhProtocol::kP3SampleWoR, HhProtocol::kP4Randomized}) {
    HhTrackerConfig cfg;
    cfg.num_sites = m;
    cfg.epsilon = eps;
    cfg.protocol = proto;
    cfg.seed = 44;
    trackers.push_back(std::make_unique<ContinuousHeavyHitterTracker>(cfg));
  }

  data::ZipfianStream z(10000, 2.0, 100.0, 8);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 9);
  data::ExactWeights truth;
  const size_t n = 40000;
  for (size_t i = 0; i < n; ++i) {
    data::WeightedItem item = z.Next();
    truth.Observe(item);
    size_t site = router.NextSite();
    for (auto& t : trackers) t->Observe(site, item.element, item.weight);
  }

  const double w = truth.total_weight();
  const double phi = 0.05;
  auto truth_hh = truth.HeavyHitters(phi);
  ASSERT_FALSE(truth_hh.empty());
  for (auto& t : trackers) {
    // Perfect recall for every protocol (Figure 1a).
    auto got = t->HeavyHitters(phi);
    for (uint64_t e : truth_hh) {
      EXPECT_NE(std::find(got.begin(), got.end(), e), got.end())
          << t->protocol_name() << " missed " << e;
    }
    // Weight estimates of the true heavy hitters are accurate.
    for (uint64_t e : truth_hh) {
      const double slack = (t->protocol_name() == "P1" ||
                            t->protocol_name() == "P2")
                               ? 1.0
                               : 3.0;
      EXPECT_NEAR(t->EstimateWeight(e), truth.Weight(e), slack * eps * w)
          << t->protocol_name();
    }
    EXPECT_LT(t->comm_stats().total(), n) << t->protocol_name();
  }
}

TEST(IntegrationTest, CommunicationOrderingMatchesPaperAtSmallEpsilon) {
  // Figure 1(d) / 2(b): at small eps, P2 (m/eps) uses fewer messages than
  // P1 (m/eps^2); both beat exact.
  const size_t m = 20;
  const double eps = 0.005;
  HhTrackerConfig c1, c2;
  c1.num_sites = c2.num_sites = m;
  c1.epsilon = c2.epsilon = eps;
  c1.protocol = HhProtocol::kP1BatchedMG;
  c2.protocol = HhProtocol::kP2Threshold;
  ContinuousHeavyHitterTracker p1(c1), p2(c2);

  data::ZipfianStream z(10000, 2.0, 100.0, 10);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 11);
  const size_t n = 60000;
  for (size_t i = 0; i < n; ++i) {
    data::WeightedItem item = z.Next();
    size_t site = router.NextSite();
    p1.Observe(site, item.element, item.weight);
    p2.Observe(site, item.element, item.weight);
  }
  EXPECT_LT(p2.comm_stats().total(), p1.comm_stats().total());
}

}  // namespace
}  // namespace dmt
