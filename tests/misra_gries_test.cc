#include "sketch/misra_gries.h"

#include <cmath>
#include <map>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dmt {
namespace sketch {
namespace {

TEST(MisraGriesTest, ExactWhenUnderCapacity) {
  WeightedMisraGries mg(10);
  mg.Update(1, 5.0);
  mg.Update(2, 3.0);
  mg.Update(1, 2.0);
  EXPECT_DOUBLE_EQ(mg.Estimate(1), 7.0);
  EXPECT_DOUBLE_EQ(mg.Estimate(2), 3.0);
  EXPECT_DOUBLE_EQ(mg.Estimate(99), 0.0);
  EXPECT_DOUBLE_EQ(mg.total_weight(), 10.0);
  EXPECT_DOUBLE_EQ(mg.total_decrement(), 0.0);
}

TEST(MisraGriesTest, ZeroWeightIsIgnored) {
  WeightedMisraGries mg(4);
  mg.Update(1, 0.0);
  EXPECT_EQ(mg.size(), 0u);
  EXPECT_DOUBLE_EQ(mg.total_weight(), 0.0);
}

TEST(MisraGriesTest, NeverOverestimates) {
  WeightedMisraGries mg(3);
  Rng rng(1);
  std::map<uint64_t, double> truth;
  for (int i = 0; i < 2000; ++i) {
    uint64_t e = rng.NextBelow(50);
    double w = 1.0 + rng.NextDouble();
    truth[e] += w;
    mg.Update(e, w);
  }
  for (const auto& [e, w] : truth) {
    EXPECT_LE(mg.Estimate(e), w + 1e-9) << "element " << e;
  }
}

TEST(MisraGriesTest, WithEpsilonSizesCounters) {
  WeightedMisraGries mg = WeightedMisraGries::WithEpsilon(0.01);
  EXPECT_EQ(mg.k(), 100u);
}

TEST(MisraGriesTest, SizeBoundedByTwoK) {
  WeightedMisraGries mg(5);
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    mg.Update(rng.NextBelow(400), 1.0 + rng.NextDouble());
    EXPECT_LE(mg.size(), 10u);
  }
}

TEST(MisraGriesTest, ClearResetsEverything) {
  WeightedMisraGries mg(3);
  mg.Update(1, 2.0);
  mg.Clear();
  EXPECT_EQ(mg.size(), 0u);
  EXPECT_DOUBLE_EQ(mg.total_weight(), 0.0);
  EXPECT_DOUBLE_EQ(mg.Estimate(1), 0.0);
}

TEST(MisraGriesTest, ItemsSortedByEstimate) {
  WeightedMisraGries mg(5);
  mg.Update(1, 1.0);
  mg.Update(2, 9.0);
  mg.Update(3, 4.0);
  auto items = mg.Items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 2u);
  EXPECT_EQ(items[1].first, 3u);
  EXPECT_EQ(items[2].first, 1u);
}

// Property sweep: the MG undercount bound W_e - est <= W/(k+1) must hold
// for every element over adversarial-ish random streams.
class MisraGriesBoundTest
    : public ::testing::TestWithParam<std::tuple<size_t, uint64_t, int>> {};

TEST_P(MisraGriesBoundTest, UndercountWithinBound) {
  auto [k, universe, seed] = GetParam();
  WeightedMisraGries mg(k);
  Rng rng(seed);
  std::map<uint64_t, double> truth;
  double total = 0.0;
  // Zipf-ish skew: low ids are hot.
  for (int i = 0; i < 5000; ++i) {
    uint64_t e = rng.NextBelow(universe);
    if (rng.NextDouble() < 0.5) e = rng.NextBelow(1 + universe / 10);
    double w = 1.0 + 9.0 * rng.NextDouble();
    truth[e] += w;
    total += w;
    mg.Update(e, w);
  }
  const double bound = total / static_cast<double>(k + 1);
  EXPECT_LE(mg.total_decrement(), bound + 1e-9);
  for (const auto& [e, w] : truth) {
    const double est = mg.Estimate(e);
    EXPECT_LE(est, w + 1e-9);
    EXPECT_GE(est, w - bound - 1e-9)
        << "element " << e << " k=" << k << " universe=" << universe;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MisraGriesBoundTest,
    ::testing::Combine(::testing::Values<size_t>(2, 8, 32, 128),
                       ::testing::Values<uint64_t>(10, 100, 1000),
                       ::testing::Values(1, 2)));

TEST(MisraGriesMergeTest, MergedBoundHoldsForCombinedStream) {
  const size_t k = 16;
  WeightedMisraGries a(k), b(k);
  Rng rng(3);
  std::map<uint64_t, double> truth;
  double total = 0.0;
  for (int i = 0; i < 3000; ++i) {
    uint64_t e = rng.NextBelow(200);
    double w = 1.0 + rng.NextDouble();
    truth[e] += w;
    total += w;
    (i % 2 == 0 ? a : b).Update(e, w);
  }
  a.Merge(b);
  EXPECT_NEAR(a.total_weight(), total, 1e-9 * total);
  const double bound = total / static_cast<double>(k + 1);
  for (const auto& [e, w] : truth) {
    EXPECT_LE(a.Estimate(e), w + 1e-9);
    EXPECT_GE(a.Estimate(e), w - bound - 1e-9);
  }
}

TEST(MisraGriesMergeTest, MergeEmptyIsNoop) {
  WeightedMisraGries a(4), b(4);
  a.Update(1, 2.0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(1), 2.0);
  EXPECT_DOUBLE_EQ(a.total_weight(), 2.0);
}

TEST(MisraGriesMergeDeathTest, MismatchedKAborts) {
  WeightedMisraGries a(4), b(5);
  EXPECT_DEATH(a.Merge(b), "DMT_CHECK");
}

}  // namespace
}  // namespace sketch
}  // namespace dmt
