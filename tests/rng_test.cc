#include "util/rng.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace dmt {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoublePositiveNeverZero) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDoublePositive();
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.NextBelow(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all values hit over 1000 draws
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextBelow(1), 0u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  double mean = sum / n;
  double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, UniformMeanIsHalf) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

}  // namespace
}  // namespace dmt
