#include <gtest/gtest.h>

#include "core/continuous_hh_tracker.h"
#include "core/continuous_matrix_tracker.h"
#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "matrix/error.h"
#include "stream/router.h"

namespace dmt {
namespace {

TEST(MatrixTrackerFacadeTest, ProtocolNamesWireCorrectly) {
  for (auto [proto, want] :
       std::initializer_list<std::pair<MatrixProtocol, std::string>>{
           {MatrixProtocol::kP1BatchedFD, "P1"},
           {MatrixProtocol::kP2SvdThreshold, "P2"},
           {MatrixProtocol::kP3SampleWoR, "P3wor"},
           {MatrixProtocol::kP3SampleWR, "P3wr"},
           {MatrixProtocol::kP4Experimental, "P4"}}) {
    MatrixTrackerConfig cfg;
    cfg.protocol = proto;
    ContinuousMatrixTracker t(cfg);
    EXPECT_EQ(t.protocol_name(), want);
  }
}

TEST(MatrixTrackerFacadeTest, TracksRowsAndMeetsEpsilon) {
  MatrixTrackerConfig cfg;
  cfg.num_sites = 5;
  cfg.epsilon = 0.1;
  cfg.protocol = MatrixProtocol::kP2SvdThreshold;
  ContinuousMatrixTracker tracker(cfg);

  data::SyntheticMatrixConfig gen_cfg;
  gen_cfg.dim = 10;
  gen_cfg.latent_rank = 3;
  gen_cfg.seed = 1;
  data::SyntheticMatrixGenerator gen(gen_cfg);
  stream::Router router(5, stream::RoutingPolicy::kUniform, 2);
  matrix::CovarianceTracker truth(10);

  for (int i = 0; i < 10000; ++i) {
    std::vector<double> row = gen.Next();
    truth.AddRow(row);
    tracker.Append(router.NextSite(), row);
  }
  EXPECT_EQ(tracker.rows_seen(), 10000u);
  EXPECT_LE(matrix::CovarianceError(truth, tracker.SketchGram()),
            cfg.epsilon + 1e-9);
  EXPECT_GT(tracker.comm_stats().total(), 0u);
  EXPECT_LT(tracker.comm_stats().total(), 10000u);
}

TEST(MatrixTrackerFacadeTest, SquaredNormAlongMatchesGram) {
  MatrixTrackerConfig cfg;
  cfg.num_sites = 3;
  cfg.protocol = MatrixProtocol::kP1BatchedFD;
  ContinuousMatrixTracker tracker(cfg);
  data::SyntheticMatrixConfig gen_cfg;
  gen_cfg.dim = 6;
  gen_cfg.seed = 3;
  data::SyntheticMatrixGenerator gen(gen_cfg);
  for (int i = 0; i < 500; ++i) tracker.Append(i % 3, gen.Next());

  std::vector<double> x(6, 0.0);
  x[0] = 0.6;
  x[2] = 0.8;
  linalg::Matrix sketch = tracker.Sketch();
  EXPECT_NEAR(tracker.SquaredNormAlong(x), sketch.SquaredNormAlong(x),
              1e-8 * sketch.SquaredFrobeniusNorm() + 1e-12);
}

TEST(HhTrackerFacadeTest, ProtocolNamesWireCorrectly) {
  for (auto [proto, want] :
       std::initializer_list<std::pair<HhProtocol, std::string>>{
           {HhProtocol::kP1BatchedMG, "P1"},
           {HhProtocol::kP2Threshold, "P2"},
           {HhProtocol::kP3SampleWoR, "P3wor"},
           {HhProtocol::kP3SampleWR, "P3wr"},
           {HhProtocol::kP4Randomized, "P4"},
           {HhProtocol::kExact, "Exact"}}) {
    HhTrackerConfig cfg;
    cfg.protocol = proto;
    ContinuousHeavyHitterTracker t(cfg);
    EXPECT_EQ(t.protocol_name(), want);
  }
}

TEST(HhTrackerFacadeTest, HeavyHittersMatchExactOracle) {
  HhTrackerConfig cfg;
  cfg.num_sites = 8;
  cfg.epsilon = 0.01;
  cfg.protocol = HhProtocol::kP2Threshold;
  ContinuousHeavyHitterTracker tracker(cfg);

  data::ZipfianStream z(5000, 2.0, 100.0, 4);
  stream::Router router(8, stream::RoutingPolicy::kUniform, 5);
  data::ExactWeights truth;
  for (int i = 0; i < 40000; ++i) {
    data::WeightedItem item = z.Next();
    truth.Observe(item);
    tracker.Observe(router.NextSite(), item.element, item.weight);
  }
  EXPECT_EQ(tracker.items_seen(), 40000u);

  const double phi = 0.05;
  auto got = tracker.HeavyHitters(phi);
  for (uint64_t e : truth.HeavyHitters(phi)) {
    EXPECT_NE(std::find(got.begin(), got.end(), e), got.end());
  }
  EXPECT_NEAR(tracker.EstimateTotalWeight(), truth.total_weight(),
              cfg.epsilon * truth.total_weight());
}

TEST(HhTrackerFacadeDeathTest, OutOfRangeSiteAborts) {
  HhTrackerConfig cfg;
  cfg.num_sites = 2;
  ContinuousHeavyHitterTracker tracker(cfg);
  EXPECT_DEATH(tracker.Observe(2, 1, 1.0), "DMT_CHECK");
}

}  // namespace
}  // namespace dmt
