#include "hh/total_weight.h"

#include <tuple>

#include <gtest/gtest.h>

#include "stream/router.h"
#include "util/rng.h"

namespace dmt {
namespace hh {
namespace {

TEST(TotalWeightTest, BootstrapsOnFirstObservation) {
  stream::Network net(4);
  TotalWeightTracker t(&net);
  EXPECT_DOUBLE_EQ(t.EstimateAtSites(), 0.0);
  t.Observe(0, 2.5);
  EXPECT_GT(t.EstimateAtSites(), 0.0);
}

// Property sweep: W-hat <= W <= 2 W-hat once bootstrapped, for any mix of
// sites and weights.
class TotalWeightInvariantTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(TotalWeightInvariantTest, TwoApproximationInvariant) {
  auto [m, seed] = GetParam();
  stream::Network net(m);
  TotalWeightTracker t(&net);
  stream::Router router(m, stream::RoutingPolicy::kUniform, seed);
  Rng rng(seed);
  double true_weight = 0.0;
  for (int i = 0; i < 20000; ++i) {
    double w = 1.0 + 9.0 * rng.NextDouble();
    true_weight += w;
    t.Observe(router.NextSite(), w);
    const double what = t.EstimateAtSites();
    ASSERT_GT(what, 0.0);
    ASSERT_LE(what, true_weight + 1e-9) << "W-hat must lower-bound W";
    ASSERT_GE(2.0 * what, true_weight - 1e-9) << "W <= 2 W-hat violated";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TotalWeightInvariantTest,
    ::testing::Combine(::testing::Values<size_t>(1, 4, 16, 64),
                       ::testing::Values(1, 2, 3)));

TEST(TotalWeightTest, MessageCountLogarithmic) {
  const size_t m = 10;
  stream::Network net(m);
  TotalWeightTracker t(&net);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 7);
  const int n = 100000;
  for (int i = 0; i < n; ++i) t.Observe(router.NextSite(), 1.0);
  // O(m log W) scalar messages: far below one per item.
  EXPECT_LT(net.stats().scalar_up, static_cast<uint64_t>(n / 10));
  EXPECT_GT(net.stats().broadcast_events, 3u);
  EXPECT_LT(net.stats().broadcast_events, 100u);
}

TEST(TotalWeightTest, CoordinatorWeightLowerBoundsTruth) {
  stream::Network net(3);
  TotalWeightTracker t(&net);
  double truth = 0.0;
  Rng rng(9);
  for (int i = 0; i < 5000; ++i) {
    double w = 1.0 + rng.NextDouble();
    truth += w;
    t.Observe(i % 3, w);
    ASSERT_LE(t.coordinator_weight(), truth + 1e-9);
  }
}

}  // namespace
}  // namespace hh
}  // namespace dmt
