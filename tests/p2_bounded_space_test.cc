// Tests for the bounded-space site option of heavy-hitter protocol P2 and
// the median-of-copies option of P4 (the paper's space/confidence
// extensions).
#include <tuple>

#include <gtest/gtest.h>

#include "data/zipf.h"
#include "hh/p2_threshold.h"
#include "hh/p4_randomized.h"
#include "stream/router.h"

namespace dmt {
namespace hh {
namespace {

struct StreamResult {
  data::ExactWeights truth;
};

StreamResult Drive(HeavyHitterProtocol* p, size_t m, size_t n,
                   uint64_t seed) {
  data::ZipfianStream z(5000, 2.0, 50.0, seed);
  stream::Router router(m, stream::RoutingPolicy::kUniform, seed + 1);
  StreamResult r;
  for (size_t i = 0; i < n; ++i) {
    data::WeightedItem item = z.Next();
    r.truth.Observe(item);
    p->Process(router.NextSite(), item.element, item.weight);
  }
  return r;
}

class P2BoundedSpaceTest
    : public ::testing::TestWithParam<std::tuple<size_t, double>> {};

TEST_P(P2BoundedSpaceTest, ErrorStaysWithinCombinedBound) {
  auto [counters, eps] = GetParam();
  const size_t m = 8;
  P2Options opts;
  opts.site_counters = counters;
  P2Threshold p(m, eps, opts);
  StreamResult r = Drive(&p, m, 40000, 3);
  const double w = r.truth.total_weight();
  // The SpaceSaving sites add up to W_site/counters undercount on top of
  // the protocol's eps*W; with counters >= 4m/eps the combined error stays
  // within 2 eps W.
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_NEAR(p.EstimateElementWeight(e), r.truth.Weight(e), 2.0 * eps * w)
        << "element " << e << " counters=" << counters << " eps=" << eps;
  }
  // The coordinator must never overcount (certain-part reporting).
  for (uint64_t e = 0; e < 50; ++e) {
    EXPECT_LE(p.EstimateElementWeight(e), r.truth.Weight(e) + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, P2BoundedSpaceTest,
    ::testing::Combine(::testing::Values<size_t>(512, 2048),
                       ::testing::Values(0.05, 0.1)));

TEST(P2BoundedSpaceTest, RecallStillPerfect) {
  const size_t m = 8;
  const double eps = 0.02;
  P2Options opts;
  opts.site_counters = 1024;
  P2Threshold p(m, eps, opts);
  StreamResult r = Drive(&p, m, 40000, 5);
  auto got = p.HeavyHitters(0.05, eps);
  for (uint64_t e : r.truth.HeavyHitters(0.05)) {
    EXPECT_NE(std::find(got.begin(), got.end(), e), got.end())
        << "missed heavy hitter " << e;
  }
}

TEST(P4CopiesTest, MedianOfCopiesTightensEstimates) {
  const size_t m = 9;
  const double eps = 0.05;
  const size_t trials = 5;
  double err_single = 0.0, err_median = 0.0;
  for (size_t t = 0; t < trials; ++t) {
    P4Randomized single(m, eps, 100 + t, 1);
    P4Randomized median(m, eps, 200 + t, 5);
    StreamResult r1 = Drive(&single, m, 30000, 10 + t);
    P4Randomized* protocols[2] = {&single, &median};
    (void)protocols;
    StreamResult r2 = Drive(&median, m, 30000, 10 + t);
    const double w = r1.truth.total_weight();
    for (uint64_t e = 0; e < 10; ++e) {
      err_single +=
          std::abs(single.EstimateElementWeight(e) - r1.truth.Weight(e)) / w;
      err_median +=
          std::abs(median.EstimateElementWeight(e) - r2.truth.Weight(e)) / w;
    }
  }
  // Median over 5 copies should not be (meaningfully) worse on average.
  EXPECT_LE(err_median, err_single * 1.5 + 1e-9);
}

TEST(P4CopiesTest, CopiesMultiplyCommunication) {
  const size_t m = 9;
  const double eps = 0.1;
  P4Randomized one(m, eps, 7, 1);
  P4Randomized five(m, eps, 7, 5);
  Drive(&one, m, 20000, 21);
  Drive(&five, m, 20000, 21);
  // Element messages scale ~5x (total-weight tracking is shared).
  EXPECT_GT(five.comm_stats().element_up,
            3 * one.comm_stats().element_up);
  EXPECT_LT(five.comm_stats().element_up,
            8 * one.comm_stats().element_up);
}

TEST(P4CopiesTest, GuaranteeHoldsWithCopies) {
  const size_t m = 9;
  const double eps = 0.05;
  P4Randomized p(m, eps, 31, 7);
  StreamResult r = Drive(&p, m, 40000, 33);
  const double w = r.truth.total_weight();
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_NEAR(p.EstimateElementWeight(e), r.truth.Weight(e),
                2.0 * eps * w);
  }
}

}  // namespace
}  // namespace hh
}  // namespace dmt
