// Regression pin for the per-site RNG streams.
//
// Every randomized protocol derives one generator per site via
// SiteStreamSeed(base_seed, site_id) = whiten(base_seed) ^ site_id, where
// whiten is a SplitMix64 finalizer (so nearby base seeds cannot alias
// site streams). Parallel-site determinism rests on these streams being
// (a) private per site and (b) stable across builds — so the first 8
// outputs of each site stream for base seed 42 are pinned verbatim here.
// If this test fails, every recorded experiment with randomized protocols
// changes meaning: bump seeds deliberately, never silently.
#include "util/rng.h"

#include <cstdint>
#include <set>

#include <gtest/gtest.h>

namespace dmt {
namespace {

TEST(SiteStreamRngTest, FirstEightValuesPinnedForSeed42) {
  const uint64_t kGolden[4][8] = {
    {12343323003495711280ULL, 1641377365623878930ULL, 16068605123119461831ULL, 10057471241892641806ULL, 2249001837203411630ULL, 594923301005428694ULL, 12767529976676458499ULL, 13819282798167931357ULL},
    {4041048026548471592ULL, 16112358804465243869ULL, 13756956136051398150ULL, 2291681065933051677ULL, 5479841929523845725ULL, 13657614079590233283ULL, 7488581319509245452ULL, 11023999099001444732ULL},
    {9383025612706389984ULL, 6840308936680085026ULL, 12569696736101949246ULL, 9819596737191895146ULL, 4943258496072056904ULL, 2959992602558748841ULL, 7505697999516465457ULL, 16001776838751809425ULL},
    {1919976535055668815ULL, 17546413030786267619ULL, 15747774949844035586ULL, 8109602013565789774ULL, 5702963417085441944ULL, 17615719168024558822ULL, 11557446809802496620ULL, 490249953820472965ULL},
  };
  for (size_t site = 0; site < 4; ++site) {
    Rng rng(SiteStreamSeed(42, site));
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(rng.NextUint64(), kGolden[site][i])
          << "site " << site << " draw " << i;
    }
  }
}

TEST(SiteStreamRngTest, SeedIsWhitenedBaseXorSite) {
  // Site id enters by xor on the whitened base...
  EXPECT_EQ(SiteStreamSeed(42, 1), SiteStreamSeed(42, 0) ^ 1u);
  EXPECT_EQ(SiteStreamSeed(42, 7), SiteStreamSeed(42, 0) ^ 7u);
  // ...and the whitening prevents the classic aliasing where consecutive
  // base seeds (experiment arms get seed, seed+1, ...) collide with small
  // site ids: raw xor would make these two identical.
  EXPECT_NE(SiteStreamSeed(101, 3), SiteStreamSeed(102, 0));
  EXPECT_NE(SiteStreamSeed(101, 1), SiteStreamSeed(100, 0));
}

TEST(SiteStreamRngTest, SiteStreamsAreDistinct) {
  // Nearby site ids (xor flips low bits only) must still yield fully
  // decorrelated streams — that's SplitMix64's job in the Rng seeding.
  const uint64_t base = 1234567;
  std::set<uint64_t> firsts;
  for (size_t site = 0; site < 64; ++site) {
    Rng rng(SiteStreamSeed(base, site));
    firsts.insert(rng.NextUint64());
  }
  EXPECT_EQ(firsts.size(), 64u);

  Rng a(SiteStreamSeed(base, 2));
  Rng b(SiteStreamSeed(base, 3));
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(SiteStreamRngTest, ReplayableFromSameBaseSeed) {
  for (size_t site : {0u, 5u, 31u}) {
    Rng a(SiteStreamSeed(99, site));
    Rng b(SiteStreamSeed(99, site));
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

}  // namespace
}  // namespace dmt
