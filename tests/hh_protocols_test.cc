#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "data/zipf.h"
#include "hh/exact_tracker.h"
#include "hh/p1_batched_mg.h"
#include "hh/p2_threshold.h"
#include "hh/p3_sampling.h"
#include "hh/p4_randomized.h"
#include "stream/router.h"

namespace dmt {
namespace hh {
namespace {

struct RunResult {
  data::ExactWeights truth;
  stream::CommStats stats;
};

RunResult Drive(HeavyHitterProtocol* p, size_t m, size_t n, double beta,
                uint64_t seed) {
  data::ZipfianStream z(10000, 2.0, beta, seed);
  stream::Router router(m, stream::RoutingPolicy::kUniform, seed + 1);
  RunResult r;
  for (size_t i = 0; i < n; ++i) {
    data::WeightedItem item = z.Next();
    r.truth.Observe(item);
    p->Process(router.NextSite(), item.element, item.weight);
  }
  r.stats = p->comm_stats();
  return r;
}

TEST(ExactTrackerTest, PerfectEstimatesAtFullCost) {
  ExactTracker t(5);
  RunResult r = Drive(&t, 5, 20000, 100.0, 1);
  EXPECT_DOUBLE_EQ(t.EstimateTotalWeight(), r.truth.total_weight());
  for (uint64_t e : r.truth.HeavyHitters(0.01)) {
    EXPECT_DOUBLE_EQ(t.EstimateElementWeight(e), r.truth.Weight(e));
  }
  EXPECT_EQ(r.stats.total_up(), 20000u);
}

TEST(P1Test, DeterministicErrorBound) {
  const double eps = 0.01;
  const size_t m = 10;
  P1BatchedMG p(m, eps);
  RunResult r = Drive(&p, m, 50000, 100.0, 2);
  const double w = r.truth.total_weight();
  for (uint64_t e = 0; e < 50; ++e) {
    EXPECT_NEAR(p.EstimateElementWeight(e), r.truth.Weight(e), eps * w)
        << "element " << e;
  }
  // Total weight estimate within eps of truth.
  EXPECT_NEAR(p.EstimateTotalWeight(), w, eps * w);
}

TEST(P1Test, CommunicationFarBelowNaive) {
  const size_t n = 50000;
  P1BatchedMG p(10, 0.05);
  RunResult r = Drive(&p, 10, n, 100.0, 3);
  EXPECT_LT(r.stats.total(), n / 2);
}

TEST(P2Test, DeterministicErrorBound) {
  const double eps = 0.01;
  const size_t m = 10;
  P2Threshold p(m, eps);
  RunResult r = Drive(&p, m, 50000, 100.0, 4);
  const double w = r.truth.total_weight();
  for (uint64_t e = 0; e < 50; ++e) {
    EXPECT_NEAR(p.EstimateElementWeight(e), r.truth.Weight(e), eps * w);
  }
  EXPECT_NEAR(p.EstimateTotalWeight(), w, eps * w);
}

TEST(P2Test, FewerMessagesThanP1AtSmallEpsilon) {
  const double eps = 0.002;
  const size_t m = 20, n = 50000;
  P1BatchedMG p1(m, eps);
  P2Threshold p2(m, eps);
  stream::CommStats s1 = Drive(&p1, m, n, 100.0, 5).stats;
  stream::CommStats s2 = Drive(&p2, m, n, 100.0, 5).stats;
  // P1 is O(m/eps^2 log), P2 is O(m/eps log): P2 must win clearly here.
  EXPECT_LT(s2.total(), s1.total());
}

TEST(P3WoRTest, EstimatesWithinEpsilonWhp) {
  const double eps = 0.05;
  const size_t m = 10;
  P3SamplingWoR p(m, eps, 42);
  RunResult r = Drive(&p, m, 50000, 100.0, 6);
  const double w = r.truth.total_weight();
  // Randomized guarantee: allow 2x the nominal bound for a fixed seed.
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_NEAR(p.EstimateElementWeight(e), r.truth.Weight(e),
                2.0 * eps * w);
  }
  EXPECT_NEAR(p.EstimateTotalWeight(), w, 2.0 * eps * w);
}

TEST(P3WoRTest, ExactBeforeFirstRoundEnds) {
  // Huge sample size: tau never doubles, estimates are exact.
  P3SamplingWoR p(4, 0.1, 7, /*sample_size=*/1 << 20);
  RunResult r = Drive(&p, 4, 5000, 10.0, 7);
  EXPECT_DOUBLE_EQ(p.EstimateTotalWeight(), r.truth.total_weight());
  for (uint64_t e = 0; e < 10; ++e) {
    EXPECT_DOUBLE_EQ(p.EstimateElementWeight(e), r.truth.Weight(e));
  }
}

TEST(P3WoRTest, PoolStaysNearSampleSize) {
  P3SamplingWoR p(8, 0.1, 11, /*sample_size=*/100);
  Drive(&p, 8, 50000, 100.0, 8);
  // Pool = Q_cur + Q_next; Q_next < s by construction, Q_cur is bounded by
  // the items of one round (O(s) w.h.p.).
  EXPECT_LT(p.pool_size(), 100u * 8u);
  EXPECT_GT(p.threshold(), 1.0);  // rounds advanced
}

TEST(P3WRTest, EstimatesReasonable) {
  const double eps = 0.1;
  const size_t m = 10;
  P3SamplingWR p(m, eps, 13);
  RunResult r = Drive(&p, m, 30000, 100.0, 9);
  const double w = r.truth.total_weight();
  EXPECT_NEAR(p.EstimateTotalWeight(), w, 3.0 * eps * w);
  // The top Zipf element (~80% of occurrences) must dominate the sample.
  EXPECT_GT(p.EstimateElementWeight(0), 0.3 * w);
}

TEST(P4Test, EstimatesWithinEpsilonWhp) {
  const double eps = 0.05;
  const size_t m = 9;
  P4Randomized p(m, eps, 17);
  RunResult r = Drive(&p, m, 50000, 100.0, 10);
  const double w = r.truth.total_weight();
  for (uint64_t e = 0; e < 20; ++e) {
    EXPECT_NEAR(p.EstimateElementWeight(e), r.truth.Weight(e),
                2.0 * eps * w);
  }
}

TEST(P4Test, CommunicationFarBelowNaive) {
  const size_t n = 50000;
  P4Randomized p(25, 0.1, 19);
  RunResult r = Drive(&p, 25, n, 100.0, 11);
  EXPECT_LT(r.stats.total(), n / 4);
}

TEST(HeavyHittersQueryTest, PerfectRecallForDeterministicProtocols) {
  const double eps = 0.005, phi = 0.05;
  const size_t m = 10;
  P1BatchedMG p1(m, eps);
  P2Threshold p2(m, eps);
  RunResult r1 = Drive(&p1, m, 50000, 100.0, 12);
  RunResult r2 = Drive(&p2, m, 50000, 100.0, 12);
  const std::vector<std::pair<const data::ExactWeights*,
                              const HeavyHitterProtocol*>>
      cases{{&r1.truth, &p1}, {&r2.truth, &p2}};
  for (const auto& [truth, protocol] : cases) {
    auto truth_hh = truth->HeavyHitters(phi);
    auto got = protocol->HeavyHitters(phi, eps);
    for (uint64_t e : truth_hh) {
      EXPECT_NE(std::find(got.begin(), got.end(), e), got.end())
          << protocol->name() << " missed true heavy hitter " << e;
    }
    // Precision rule: nothing below (phi - eps) may be returned.
    for (uint64_t e : got) {
      EXPECT_GE(truth->Weight(e), (phi - eps) * truth->total_weight() * 0.95)
          << protocol->name() << " returned far-light element " << e;
    }
  }
}

}  // namespace
}  // namespace hh
}  // namespace dmt
