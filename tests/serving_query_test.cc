// Property test (serving satellite): at every window boundary of a run,
// the published snapshot — and every QueryEngine answer computed from it
// — is bit-identical to querying the protocol's coordinator state
// directly at that same boundary. Covers every protocol in the repo that
// exposes a coordinator sketch: the six HH protocols and the seven
// matrix protocols.
//
// "Directly" means: from inside the publish observer (coordinator
// thread, between rounds — the protocols' documented query window),
// export a second snapshot straight off the protocol and compare
// canonical bytes, then cross-check individual query answers against the
// protocol's own EstimateElementWeight / EstimateTotalWeight /
// CoordinatorSketch with EXPECT_EQ on doubles (bit-exact, no tolerance).
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "hh/exact_tracker.h"
#include "hh/p1_batched_mg.h"
#include "hh/p2_threshold.h"
#include "hh/p3_sampling.h"
#include "hh/p4_randomized.h"
#include "matrix/baselines.h"
#include "matrix/mp1_batched_fd.h"
#include "matrix/mp2_svd_threshold.h"
#include "matrix/mp3_sampling.h"
#include "matrix/mp4_experimental.h"
#include "serve/query_engine.h"
#include "serve/serving_coordinator.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "stream/simulation_driver.h"

namespace dmt {
namespace {

constexpr size_t kSites = 4;
constexpr size_t kChunk = 128;
constexpr size_t kDim = 8;

std::vector<uint8_t> Bytes(const serve::Snapshot& snap) {
  std::vector<uint8_t> out;
  serve::SerializeSnapshot(snap, &out);
  return out;
}

// --- HH family ---

void RunHhPropertyCheck(hh::HeavyHitterProtocol* protocol) {
  const size_t n = 4000;
  std::vector<size_t> sites(n);
  std::vector<stream::WeightedUpdate> items(n);
  for (size_t i = 0; i < n; ++i) {
    sites[i] = (i * 3) % kSites;
    items[i].element = (i * i + 5 * i) % 61;
    items[i].weight = 1.0 + static_cast<double>(i % 4);
  }

  serve::SnapshotStore store;
  stream::SimulationOptions opt;
  opt.threads = 2;
  opt.chunk_elements = kChunk;
  stream::SimulationDriver driver(opt);
  serve::ServingCoordinator serving(&store);
  serving.AttachHH(&driver, protocol);

  size_t windows_checked = 0;
  serving.set_publish_observer([&](const serve::Snapshot& snap) {
    ++windows_checked;
    // Whole-snapshot bit-identity against a direct export.
    std::unique_ptr<const serve::Snapshot> direct = serve::BuildSnapshot(
        *protocol, snap.window_index, snap.items_ingested);
    ASSERT_EQ(Bytes(snap), Bytes(*direct));

    // Individual answers against the protocol's own query surface.
    serve::QueryEngine engine(&snap);
    EXPECT_EQ(engine.TotalWeight(), protocol->EstimateTotalWeight());
    for (uint64_t e : {0ull, 1ull, 7ull, 42ull, 60ull, 1000000ull}) {
      EXPECT_EQ(engine.ElementWeight(e),
                protocol->EstimateElementWeight(e));
    }
    const std::vector<serve::HHEntry> top = engine.TopK(5);
    double mass = 0.0;
    for (const serve::HHEntry& e : top) {
      EXPECT_EQ(e.weight, protocol->EstimateElementWeight(e.element));
      mass += e.weight;
    }
    EXPECT_EQ(engine.TopKMass(5), mass);
  });

  driver.Run(protocol, sites, items);
  serving.Detach();
  EXPECT_GT(windows_checked, 10u);
}

TEST(ServingQueryPropertyTest, P1BatchedMG) {
  hh::P1BatchedMG p(kSites, 0.05);
  RunHhPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, P2Threshold) {
  hh::P2Threshold p(kSites, 0.05);
  RunHhPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, P3SamplingWoR) {
  hh::P3SamplingWoR p(kSites, 0.2, /*seed=*/11);
  RunHhPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, P3SamplingWR) {
  hh::P3SamplingWR p(kSites, 0.2, /*seed=*/12);
  RunHhPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, P4Randomized) {
  hh::P4Randomized p(kSites, 0.2, /*seed=*/13, /*copies=*/2);
  RunHhPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, ExactTracker) {
  hh::ExactTracker p(kSites);
  RunHhPropertyCheck(&p);
}

// --- Matrix family ---

void RunMatrixPropertyCheck(matrix::MatrixTrackingProtocol* protocol) {
  const size_t n = 1200;
  std::vector<size_t> sites(n);
  std::vector<std::vector<double>> rows(n, std::vector<double>(kDim));
  for (size_t i = 0; i < n; ++i) {
    sites[i] = (i * 3) % kSites;
    for (size_t j = 0; j < kDim; ++j) {
      rows[i][j] = static_cast<double>(((i + 2) * (j + 3)) % 13) / 4.0 +
                   (j == i % kDim ? 1.5 : 0.0);
    }
  }

  serve::SnapshotStore store;
  stream::SimulationOptions opt;
  opt.threads = 2;
  opt.chunk_elements = kChunk;
  stream::SimulationDriver driver(opt);
  serve::ServingCoordinator serving(&store);
  serving.AttachMatrix(&driver, protocol);

  std::vector<double> probe(kDim, 0.0);
  for (size_t j = 0; j < kDim; ++j) {
    probe[j] = 1.0 / static_cast<double>(j + 1);
  }

  size_t windows_checked = 0;
  serving.set_publish_observer([&](const serve::Snapshot& snap) {
    ++windows_checked;
    std::unique_ptr<const serve::Snapshot> direct = serve::BuildSnapshot(
        *protocol, snap.window_index, snap.items_ingested);
    ASSERT_EQ(Bytes(snap), Bytes(*direct));

    serve::QueryEngine engine(&snap);
    const linalg::Matrix sketch = protocol->ExportSnapshotSketch();
    if (sketch.empty()) return;
    // Covariance quadratic form ‖Bx‖²: identical code path over an
    // identical matrix, so bit-exact.
    EXPECT_EQ(engine.CovarianceQuadraticForm(probe),
              sketch.SquaredNormAlong(probe));
    std::vector<double> e0(kDim, 0.0);
    e0[0] = 1.0;
    EXPECT_EQ(engine.CovarianceQuadraticForm(e0),
              sketch.SquaredNormAlong(e0));
    EXPECT_EQ(engine.SketchSquaredFrobenius(),
              sketch.SquaredFrobeniusNorm());
    // Projection / singular values: identical to an engine built over
    // the directly-exported snapshot (same factorization inputs).
    serve::QueryEngine direct_engine(direct.get());
    EXPECT_EQ(engine.TopSingularValues(3),
              direct_engine.TopSingularValues(3));
    EXPECT_EQ(engine.ProjectRow(probe, 2),
              direct_engine.ProjectRow(probe, 2));
  });

  driver.Run(protocol, sites, rows);
  serving.Detach();
  EXPECT_GT(windows_checked, 5u);
}

TEST(ServingQueryPropertyTest, MP1BatchedFD) {
  matrix::MP1BatchedFD p(kSites, 0.2);
  RunMatrixPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, MP2SvdThreshold) {
  matrix::MP2SvdThreshold p(kSites, 0.2);
  RunMatrixPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, MP3SamplingWoR) {
  matrix::MP3SamplingWoR p(kSites, 0.3, /*seed=*/21);
  RunMatrixPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, MP3SamplingWR) {
  matrix::MP3SamplingWR p(kSites, 0.3, /*seed=*/22);
  RunMatrixPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, MP4Experimental) {
  // MP4 has no concurrent site updates; the driver falls back to the
  // serial schedule — publication still happens at every boundary.
  matrix::MP4Experimental p(kSites, 0.3, /*seed=*/23);
  RunMatrixPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, NaiveFdBaseline) {
  matrix::NaiveFdBaseline p(kSites, /*ell=*/6);
  RunMatrixPropertyCheck(&p);
}

TEST(ServingQueryPropertyTest, NaiveSvdBaseline) {
  matrix::NaiveSvdBaseline p(kSites, kDim, /*k=*/3);
  RunMatrixPropertyCheck(&p);
}

}  // namespace
}  // namespace dmt
