#include "sketch/priority_sampler.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

namespace dmt {
namespace sketch {
namespace {

TEST(AdjustedSampleTest, EmptyAndSingletonYieldEmpty) {
  EXPECT_TRUE(AdjustedSample({}).empty());
  EXPECT_TRUE(AdjustedSample({{1, 2.0, 3.0}}).empty());
}

TEST(AdjustedSampleTest, DropsMinPriorityAndClampsWeights) {
  std::vector<PriorityEntry> in{
      {1, 5.0, 100.0}, {2, 0.5, 10.0}, {3, 2.0, 1.0}};
  auto out = AdjustedSample(in);
  ASSERT_EQ(out.size(), 2u);
  // Element 3 (priority 1.0) is the threshold item and is dropped;
  // tau = 1.0, so weights become max(w, 1.0).
  EXPECT_EQ(out[0].element, 1u);
  EXPECT_DOUBLE_EQ(out[0].weight, 5.0);
  EXPECT_EQ(out[1].element, 2u);
  EXPECT_DOUBLE_EQ(out[1].weight, 1.0);
}

TEST(PrioritySamplerWoRTest, ExactBelowSampleSize) {
  PrioritySamplerWoR s(10, 42);
  s.Add(1, 2.0);
  s.Add(2, 3.0);
  EXPECT_DOUBLE_EQ(s.EstimateTotalWeight(), 5.0);
  EXPECT_DOUBLE_EQ(s.EstimateElementWeight(1), 2.0);
  EXPECT_DOUBLE_EQ(s.EstimateElementWeight(7), 0.0);
}

TEST(PrioritySamplerWoRTest, TotalWeightEstimateConcentrates) {
  // E[W_S] = W; with s = 256 the relative error should be small.
  const size_t s = 256;
  double sum_est = 0.0;
  const int trials = 20;
  const double true_total = 5000.0;  // 5000 unit-ish items
  for (int t = 0; t < trials; ++t) {
    PrioritySamplerWoR sampler(s, 1000 + t);
    for (int i = 0; i < 5000; ++i) sampler.Add(i, 1.0);
    sum_est += sampler.EstimateTotalWeight();
  }
  EXPECT_NEAR(sum_est / trials, true_total, 0.05 * true_total);
}

TEST(PrioritySamplerWoRTest, HeavyElementEstimateAccurate) {
  // One element holds 30% of the weight; a 512-sample estimate must see it.
  PrioritySamplerWoR sampler(512, 77);
  const int n = 4000;
  double heavy = 0.0, total = 0.0;
  for (int i = 0; i < n; ++i) {
    sampler.Add(1, 3.0);
    heavy += 3.0;
    sampler.Add(100 + (i % 500), 7.0 / 3.0);
    total += 3.0 + 7.0 / 3.0;
  }
  const double est = sampler.EstimateElementWeight(1);
  EXPECT_NEAR(est, heavy, 0.15 * heavy);
}

TEST(PrioritySamplerWoRTest, LargeWeightsKeptDeterministically) {
  PrioritySamplerWoR sampler(8, 5);
  for (int i = 0; i < 1000; ++i) sampler.Add(i, 1.0);
  sampler.Add(9999, 1e6);  // giant item: priority >= 1e6, always sampled
  EXPECT_GT(sampler.EstimateElementWeight(9999), 0.0);
}

TEST(PrioritySamplerWRTest, TotalWeightEstimateUnbiasedish) {
  const size_t s = 128;
  double sum_est = 0.0;
  const int trials = 30;
  double true_total = 0.0;
  for (int t = 0; t < trials; ++t) {
    PrioritySamplerWR sampler(s, 500 + t);
    true_total = 0.0;
    for (int i = 0; i < 2000; ++i) {
      double w = 1.0 + (i % 5);
      sampler.Add(i % 300, w);
      true_total += w;
    }
    sum_est += sampler.EstimateTotalWeight();
  }
  EXPECT_NEAR(sum_est / trials, true_total, 0.15 * true_total);
}

TEST(PrioritySamplerWRTest, HeavyElementDominatesSlots) {
  PrioritySamplerWR sampler(64, 9);
  // 80% of mass on element 1.
  for (int i = 0; i < 2000; ++i) {
    sampler.Add(1, 8.0);
    sampler.Add(2 + (i % 100), 2.0);
  }
  const double est1 = sampler.EstimateElementWeight(1);
  const double total = sampler.EstimateTotalWeight();
  EXPECT_GT(est1, 0.6 * total);
}

TEST(PrioritySamplerWRTest, EmptySamplerEstimatesZero) {
  PrioritySamplerWR sampler(16, 3);
  EXPECT_DOUBLE_EQ(sampler.EstimateTotalWeight(), 0.0);
  EXPECT_DOUBLE_EQ(sampler.EstimateElementWeight(1), 0.0);
}

}  // namespace
}  // namespace sketch
}  // namespace dmt
