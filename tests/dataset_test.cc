// Dataset subsystem tests: golden-fixture parsing of the PAMAP / MSD
// layouts, CSV -> .dmtbin -> reload bit-identity, registry resolution
// with synthetic fallback, and the driver's streaming row feed.
//
// The golden fixtures are tiny checked-in files in the published formats
// (tests/testdata/, path injected as DMT_TESTDATA_DIR by CMake).
#include "data/dataset.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "data/dmtbin.h"
#include "matrix/error.h"
#include "matrix/mp2_svd_threshold.h"
#include "stream/router.h"
#include "stream/simulation_driver.h"

namespace dmt {
namespace data {
namespace {

std::string TestDataPath(const std::string& name) {
  return std::string(DMT_TESTDATA_DIR) + "/" + name;
}

// Unique scratch directory per test case (ctest runs cases in parallel),
// wiped on entry so reruns start clean.
std::string ScratchDir() {
  const std::string dir =
      ::testing::TempDir() + "/dmt_dataset_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

bool BitIdentical(const linalg::Matrix& a, const linalg::Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return std::memcmp(a.Row(0), b.Row(0),
                     a.rows() * a.cols() * sizeof(double)) == 0;
}

// ---------------------------------------------------------------- PAMAP

TEST(PamapSourceTest, ParsesOriginalLayoutFixture) {
  RealDatasetOptions options;
  options.target_beta = 0.0;  // raw values: check the parse itself
  std::string error;
  PamapSource source({TestDataPath("pamap_tiny.dat")}, options, &error);
  ASSERT_EQ(source.matrix().rows(), 6u) << error;
  EXPECT_EQ(source.dim(), PamapSource::kDim);
  // Row 0: timestamp 0.00 dropped; first kept cell is raw column 1.
  EXPECT_DOUBLE_EQ(source.matrix()(0, 0), 0.5);
  EXPECT_DOUBLE_EQ(source.matrix()(0, 43), 0.5 + 43 * 0.25);
  // Row 2 carries a literal NaN at kept column 4: imputed as 0.
  EXPECT_DOUBLE_EQ(source.matrix()(2, 4), 0.0);
  EXPECT_DOUBLE_EQ(source.matrix()(2, 5), 1.5 + 5 * 0.25);
}

TEST(PamapSourceTest, ParsesPamap2LayoutDroppingMetadata) {
  RealDatasetOptions options;
  options.target_beta = 0.0;
  std::string error;
  PamapSource source({TestDataPath("pamap2_tiny.dat")}, options, &error);
  ASSERT_EQ(source.matrix().rows(), 4u) << error;
  EXPECT_EQ(source.dim(), PamapSource::kDim);
  // 54-column layout: timestamp, activityID, heart rate dropped; the
  // first kept cell is raw column 3 = (i+2)*0.1.
  EXPECT_DOUBLE_EQ(source.matrix()(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(source.matrix()(3, 0), 0.5);
}

TEST(PamapSourceTest, NormalizationBoundsSquaredRowNorms) {
  std::string error;
  PamapSource source({TestDataPath("pamap_tiny.dat")}, {}, &error);
  ASSERT_GT(source.matrix().rows(), 0u) << error;
  EXPECT_DOUBLE_EQ(source.info().beta, 100.0);
  double max_sq = 0.0;
  for (size_t i = 0; i < source.matrix().rows(); ++i) {
    double sq = 0.0;
    for (size_t j = 0; j < source.matrix().cols(); ++j) {
      sq += source.matrix()(i, j) * source.matrix()(i, j);
    }
    max_sq = std::max(max_sq, sq);
  }
  EXPECT_NEAR(max_sq, 100.0, 1e-9);
}

TEST(PamapSourceTest, ConcatenatesMultipleFiles) {
  RealDatasetOptions options;
  options.target_beta = 0.0;
  std::string error;
  PamapSource source(
      {TestDataPath("pamap_tiny.dat"), TestDataPath("pamap_tiny.dat")},
      options, &error);
  EXPECT_EQ(source.matrix().rows(), 12u) << error;
}

TEST(PamapSourceTest, RejectsTooFewColumns) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/narrow.dat";
  std::ofstream(path) << "1.0 2.0 3.0\n4.0 5.0 6.0\n";
  std::string error;
  PamapSource source({path}, {}, &error);
  EXPECT_EQ(source.matrix().rows(), 0u);
  EXPECT_NE(error.find("unrecognized layout"), std::string::npos);
}

// Regression: a text header line must not poison the layout detection
// (the NaN-imputing parse used to deliver it as an all-zero row).
TEST(PamapSourceTest, IgnoresTextHeaderLine) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/with_header.dat";
  {
    std::ifstream fixture(TestDataPath("pamap_tiny.dat"));
    std::ofstream out(path);
    out << "timestamp hand_acc_x hand_acc_y hand_acc_z gyro_x gyro_y\n";
    out << fixture.rdbuf();
  }
  RealDatasetOptions options;
  options.target_beta = 0.0;
  std::string error;
  PamapSource source({path}, options, &error);
  ASSERT_EQ(source.matrix().rows(), 6u) << error;
  EXPECT_DOUBLE_EQ(source.matrix()(0, 0), 0.5);
}

TEST(PamapSourceTest, ReportsMissingFile) {
  std::string error;
  PamapSource source({TestDataPath("no_such_file.dat")}, {}, &error);
  EXPECT_EQ(source.matrix().rows(), 0u);
  EXPECT_FALSE(error.empty());
}

// ------------------------------------------------------------------ MSD

TEST(MsdSourceTest, ParsesFixtureDroppingYearAndShortRow) {
  RealDatasetOptions options;
  options.target_beta = 0.0;
  std::string error;
  MsdSource source(TestDataPath("msd_tiny.csv"), options, &error);
  // 5 lines, one truncated (wrong width -> missing fields): 4 survive.
  ASSERT_EQ(source.matrix().rows(), 4u) << error;
  EXPECT_EQ(source.dim(), MsdSource::kDim);
  // Row 0: year 1990 dropped; features are (i+1)*0.2 + c*0.05.
  EXPECT_DOUBLE_EQ(source.matrix()(0, 0), 0.2);
  EXPECT_DOUBLE_EQ(source.matrix()(0, 89), 0.2 + 89 * 0.05);
  // The truncated line was row 3, so surviving row 3 is source line 4.
  EXPECT_DOUBLE_EQ(source.matrix()(3, 0), 1.0);
}

TEST(MsdSourceTest, RejectsUnrecognizedWidth) {
  const std::string dir = ScratchDir();
  const std::string path = dir + "/narrow.csv";
  std::ofstream(path) << "1,2,3\n4,5,6\n";
  std::string error;
  MsdSource source(path, {}, &error);
  EXPECT_EQ(source.matrix().rows(), 0u);
  EXPECT_NE(error.find("unrecognized layout"), std::string::npos);
}

// ------------------------------------------- golden round-trip (cache)

TEST(DatasetRoundTripTest, PamapCsvToDmtbinReloadIsBitIdentical) {
  std::string error;
  PamapSource parsed({TestDataPath("pamap_tiny.dat")}, {}, &error);
  ASSERT_GT(parsed.matrix().rows(), 0u) << error;

  const std::string cache = ScratchDir() + "/pamap.dmtbin";
  ASSERT_TRUE(WriteDmtbin(cache, parsed.matrix(), &error)) << error;
  DmtbinSource reloaded(cache, 0, &error);
  ASSERT_TRUE(reloaded.ok()) << error;
  EXPECT_TRUE(BitIdentical(parsed.matrix(), reloaded.Take(0)));
}

TEST(DatasetRoundTripTest, MsdCsvToDmtbinReloadIsBitIdentical) {
  std::string error;
  MsdSource parsed(TestDataPath("msd_tiny.csv"), {}, &error);
  ASSERT_GT(parsed.matrix().rows(), 0u) << error;

  const std::string cache = ScratchDir() + "/msd.dmtbin";
  ASSERT_TRUE(WriteDmtbin(cache, parsed.matrix(), &error)) << error;
  DmtbinSource reloaded(cache, 0, &error);
  ASSERT_TRUE(reloaded.ok()) << error;
  EXPECT_TRUE(BitIdentical(parsed.matrix(), reloaded.Take(0)));
}

// ------------------------------------------------------------- registry

TEST(DatasetRegistryTest, ListsBuiltInNames) {
  const auto names = RegisteredDatasets();
  for (const char* expected :
       {"pamap", "msd", "synthetic", "synthetic-pamap", "synthetic-msd"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(DatasetRegistryTest, UnknownNameReportsCandidates) {
  DatasetSpec spec;
  spec.name = "definitely-not-a-dataset";
  std::string error;
  EXPECT_EQ(OpenDataset(spec, &error), nullptr);
  EXPECT_NE(error.find("unknown dataset"), std::string::npos);
  EXPECT_NE(error.find("pamap"), std::string::npos);
}

TEST(DatasetRegistryTest, MissingDataDirFallsBackToSynthetic) {
  DatasetSpec spec;
  spec.name = "pamap";
  spec.data_dir = ScratchDir() + "/empty";
  spec.max_rows = 64;
  auto source = OpenDataset(spec);
  ASSERT_NE(source, nullptr);
  EXPECT_TRUE(source->info().synthetic_fallback);
  EXPECT_EQ(source->info().origin, "synthetic");
  EXPECT_EQ(source->dim(), PamapSource::kDim);
  EXPECT_EQ(source->Take(0).rows(), 64u);
}

TEST(DatasetRegistryTest, FallbackCanBeDisabled) {
  DatasetSpec spec;
  spec.name = "msd";
  spec.allow_synthetic_fallback = false;
  std::string error;
  EXPECT_EQ(OpenDataset(spec, &error), nullptr);
  EXPECT_NE(error.find("fallback disabled"), std::string::npos);
}

TEST(DatasetRegistryTest, OpensRawFilesThenPrefersWrittenCache) {
  // Lay out a data dir in the accepted shape: <dir>/pamap/*.dat.
  const std::string dir = ScratchDir();
  std::filesystem::create_directories(dir + "/pamap");
  std::filesystem::copy_file(TestDataPath("pamap_tiny.dat"),
                             dir + "/pamap/subject101.dat");
  DatasetSpec spec;
  spec.name = "pamap";
  spec.data_dir = dir;

  auto first = OpenDataset(spec);
  ASSERT_NE(first, nullptr);
  EXPECT_FALSE(first->info().synthetic_fallback);
  EXPECT_EQ(first->info().origin.rfind("csv:", 0), 0u);
  EXPECT_TRUE(std::filesystem::exists(dir + "/pamap.dmtbin"));

  auto second = OpenDataset(spec);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(second->info().origin.rfind("dmtbin:", 0), 0u);
  EXPECT_TRUE(BitIdentical(first->Take(0), second->Take(0)));
}

TEST(DatasetRegistryTest, SyntheticMsdMatchesPaperShape) {
  DatasetSpec spec;
  spec.name = "synthetic-msd";
  auto source = OpenDataset(spec);
  ASSERT_NE(source, nullptr);
  EXPECT_EQ(source->dim(), MsdSource::kDim);
  EXPECT_EQ(source->info().rows, 300000u);
  EXPECT_FALSE(source->info().synthetic_fallback);
}

TEST(SyntheticSourceTest, ResetReplaysBitIdenticalRows) {
  SyntheticSource source(SyntheticMatrixGenerator::PamapLike(5), 128);
  const linalg::Matrix first = source.Take(0);
  source.Reset();
  const linalg::Matrix second = source.Take(0);
  EXPECT_TRUE(BitIdentical(first, second));
}

TEST(SyntheticSourceTest, ChunkingDoesNotChangeTheSequence) {
  SyntheticSource a(SyntheticMatrixGenerator::MsdLike(9), 100);
  SyntheticSource b(SyntheticMatrixGenerator::MsdLike(9), 100);
  linalg::Matrix chunked;
  while (a.NextChunk(7, &chunked) != 0) {
  }
  EXPECT_TRUE(BitIdentical(chunked, b.Take(0)));
}

// ------------------------------------------------------- ParseDatasetArgs

TEST(ParseDatasetArgsTest, ParsesBothFlagForms) {
  const char* argv[] = {"bench",           "--dataset=msd",
                        "--data-dir",      "/tmp/x",
                        "--max-rows=1234", "--threads=4"};
  const DatasetSpec spec =
      ParseDatasetArgs(6, const_cast<char**>(argv), DatasetSpec{});
  EXPECT_EQ(spec.name, "msd");
  EXPECT_EQ(spec.data_dir, "/tmp/x");
  EXPECT_EQ(spec.max_rows, 1234u);
}

TEST(ParseDatasetArgsTest, KeepsDefaultsWhenFlagsAbsent) {
  const char* argv[] = {"bench"};
  DatasetSpec defaults;
  defaults.name = "pamap";
  const DatasetSpec spec =
      ParseDatasetArgs(1, const_cast<char**>(argv), defaults);
  EXPECT_EQ(spec.name, "pamap");
  EXPECT_EQ(spec.max_rows, 0u);
}

// ----------------------------------------- driver streaming equivalence

// The streaming row feed must be bit-identical to materializing the same
// rows and running the chunked schedule — same sketches, same messages.
TEST(DatasetDriverTest, StreamingRunMatchesMaterializedRun) {
  constexpr size_t kRows = 3000;
  constexpr size_t kSites = 8;
  constexpr uint64_t kSeed = 17;

  SyntheticSource source(SyntheticMatrixGenerator::PamapLike(kSeed), kRows);
  stream::SimulationOptions options;
  options.threads = 2;
  options.chunk_elements = 512;
  stream::SimulationDriver driver(options);

  matrix::MP2SvdThreshold streamed(kSites, 0.1);
  {
    stream::Router router(kSites, stream::RoutingPolicy::kUniform, kSeed);
    EXPECT_EQ(driver.Run(&streamed, &router, &source, kRows), kRows);
  }

  matrix::MP2SvdThreshold materialized(kSites, 0.1);
  {
    source.Reset();
    const linalg::Matrix all = source.Take(0);
    std::vector<std::vector<double>> rows(all.rows());
    for (size_t i = 0; i < all.rows(); ++i) rows[i] = all.RowVector(i);
    stream::Router router(kSites, stream::RoutingPolicy::kUniform, kSeed);
    const std::vector<size_t> sites = stream::AssignSites(&router, kRows);
    driver.Run(&materialized, sites, rows);
  }

  EXPECT_EQ(streamed.comm_stats().total(), materialized.comm_stats().total());
  EXPECT_EQ(streamed.per_site_messages(), materialized.per_site_messages());
  EXPECT_EQ(
      streamed.CoordinatorGram().MaxAbsDiff(materialized.CoordinatorGram()),
      0.0);
}

}  // namespace
}  // namespace data
}  // namespace dmt
