// Regression tests for the determinism-lint fixes: every container drain
// that feeds protocol answers must present a replay-stable order, and
// coordinator estimates must not depend on how site streams interleave.
//
// These pin the fixes that dmt_lint's determinism checks forced:
//  * WeightedMisraGries::Items() totally orders ties (descending
//    estimate, ascending element) instead of exposing hash order.
//  * P3wor/P3wr/P4 TrackedElements() drain into a sorted vector.
//  * P4's per-copy report table iterates an ordered map, so the
//    floating-point compensation sum is independent of insertion history
//    (exercised here by interleaving the same per-site streams two ways).
#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "hh/p3_sampling.h"
#include "hh/p4_randomized.h"
#include "sketch/misra_gries.h"

namespace dmt {
namespace {

TEST(DeterminismDrainTest, MisraGriesItemsIsInsertionOrderInvariant) {
  sketch::WeightedMisraGries a(8);
  sketch::WeightedMisraGries b(8);
  const std::vector<uint64_t> keys = {5, 1, 9, 3, 7, 2, 8, 4};
  for (uint64_t k : keys) a.Update(k, 1.0);
  std::vector<uint64_t> rev(keys.rbegin(), keys.rend());
  for (uint64_t k : rev) b.Update(k, 1.0);
  EXPECT_EQ(a.Items(), b.Items());
}

TEST(DeterminismDrainTest, MisraGriesItemsBreaksTiesByElement) {
  sketch::WeightedMisraGries mg(8);
  for (uint64_t k : {9u, 2u, 7u, 4u}) mg.Update(k, 3.0);
  mg.Update(1, 5.0);
  const auto items = mg.Items();
  ASSERT_EQ(items.size(), 5u);
  for (size_t i = 0; i + 1 < items.size(); ++i) {
    // Descending estimate; equal estimates ordered by ascending element.
    EXPECT_GE(items[i].second, items[i + 1].second);
    if (items[i].second == items[i + 1].second) {
      EXPECT_LT(items[i].first, items[i + 1].first);
    }
  }
}

template <typename Protocol>
void FeedAndCheckSortedTracked(Protocol* p, size_t num_sites) {
  for (size_t i = 0; i < 400; ++i) {
    p->Process(i % num_sites, i % 23, 1.0 + static_cast<double>(i % 5));
  }
  p->Synchronize();
  const std::vector<uint64_t> tracked = p->TrackedElements();
  EXPECT_FALSE(tracked.empty());
  EXPECT_TRUE(std::is_sorted(tracked.begin(), tracked.end()));
}

TEST(DeterminismDrainTest, P3WithoutReplacementTrackedElementsSorted) {
  hh::P3SamplingWoR p(3, 0.3, /*seed=*/42);
  FeedAndCheckSortedTracked(&p, 3);
}

TEST(DeterminismDrainTest, P3WithReplacementTrackedElementsSorted) {
  hh::P3SamplingWR p(3, 0.3, /*seed=*/42);
  FeedAndCheckSortedTracked(&p, 3);
}

TEST(DeterminismDrainTest, P4TrackedElementsSorted) {
  hh::P4Randomized p(3, 0.25, /*seed=*/42);
  FeedAndCheckSortedTracked(&p, 3);
}

// Replaying the identical schedule on a fresh protocol instance must
// reproduce every coordinator answer bit-for-bit. (Note this is replay
// stability, not schedule invariance: P4's send probability tracks the
// evolving total-weight bootstrap, so *different* interleavings of the
// same per-site streams legitimately send different messages.) The
// ordered per-copy report table is what keeps the floating-point
// compensation sum in CopyEstimate a pure function of the table's
// contents, so replays cannot drift even if the table's internal
// history differs.
TEST(DeterminismDrainTest, P4EstimatesAreReplayStable) {
  std::vector<std::vector<std::pair<uint64_t, double>>> streams(2);
  for (size_t i = 0; i < 300; ++i) {
    streams[0].push_back({i % 13, 1.0 + static_cast<double>(i % 3)});
    streams[1].push_back({(i * 7) % 13, 2.0 + static_cast<double>(i % 4)});
  }

  auto run = [&streams]() {
    hh::P4Randomized p(2, 0.2, /*seed=*/7, /*copies=*/3);
    for (size_t i = 0; i < streams[0].size(); ++i) {
      p.Process(0, streams[0][i].first, streams[0][i].second);
      p.Process(1, streams[1][i].first, streams[1][i].second);
    }
    p.Synchronize();
    std::vector<std::pair<uint64_t, double>> out;
    for (uint64_t e : p.TrackedElements()) {
      out.push_back({e, p.EstimateElementWeight(e)});
    }
    out.push_back({~0ull, p.EstimateTotalWeight()});
    return out;
  };

  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace dmt
