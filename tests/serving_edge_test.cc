// Edge-case contract of the serving query surface: empty pre-window
// snapshots, k beyond the tracked count, rank beyond the sketch rank,
// zero-row FD sketches — all defined results; invalid *arguments* abort
// (death tests).
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "hh/p1_batched_mg.h"
#include "matrix/mp1_batched_fd.h"
#include "serve/query_engine.h"
#include "serve/snapshot.h"
#include "sketch/sliding_window_fd.h"

namespace dmt {
namespace {

TEST(ServingEdgeTest, EmptySnapshotEveryQueryDefined) {
  std::unique_ptr<const serve::Snapshot> snap = serve::BuildEmptySnapshot();
  serve::QueryEngine engine(snap.get());

  EXPECT_EQ(engine.window_index(), 0u);
  EXPECT_EQ(engine.items_ingested(), 0u);
  EXPECT_EQ(engine.TrackedCount(), 0u);
  EXPECT_TRUE(engine.TopK(5).empty());
  EXPECT_EQ(engine.TopKMass(5), 0.0);
  EXPECT_EQ(engine.ElementWeight(123), 0.0);
  EXPECT_EQ(engine.TotalWeight(), 0.0);
  EXPECT_TRUE(engine.HeavyHitters(0.1, 0.05).empty());
  EXPECT_EQ(engine.SketchRows(), 0u);
  EXPECT_EQ(engine.SketchCols(), 0u);
  EXPECT_EQ(engine.SketchSquaredFrobenius(), 0.0);
  EXPECT_TRUE(engine.TopSingularValues(3).empty());
  EXPECT_EQ(engine.CovarianceQuadraticForm({1.0, 2.0}), 0.0);
  // Projection on an empty sketch: the zero vector of the input's size.
  const std::vector<double> p = engine.ProjectRow({1.0, 2.0, 3.0}, 2);
  EXPECT_EQ(p, std::vector<double>({0.0, 0.0, 0.0}));
}

TEST(ServingEdgeTest, KLargerThanTrackedCountClamps) {
  hh::P1BatchedMG protocol(2, 0.1);
  for (uint64_t e = 0; e < 5; ++e) {
    protocol.Process(e % 2, e, static_cast<double>(e + 1));
  }
  protocol.Synchronize();
  std::unique_ptr<const serve::Snapshot> snap =
      serve::BuildSnapshot(protocol, 1, 5);
  serve::QueryEngine engine(snap.get());

  const size_t tracked = engine.TrackedCount();
  ASSERT_GT(tracked, 0u);
  EXPECT_EQ(engine.TopK(1000000).size(), tracked);
  // The clamped mass equals the full tracked mass.
  EXPECT_EQ(engine.TopKMass(1000000), engine.TopKMass(tracked));
  // TopK order: weight descending, ties by ascending element.
  const std::vector<serve::HHEntry> top = engine.TopK(tracked);
  for (size_t i = 0; i + 1 < top.size(); ++i) {
    EXPECT_GE(top[i].weight, top[i + 1].weight);
    if (top[i].weight == top[i + 1].weight) {
      EXPECT_LT(top[i].element, top[i + 1].element);
    }
  }
}

TEST(ServingEdgeTest, RankBeyondSketchRankClamps) {
  matrix::MP1BatchedFD protocol(2, 0.3);
  for (size_t i = 0; i < 200; ++i) {
    std::vector<double> row(6, 0.0);
    row[i % 6] = 1.0 + static_cast<double>(i % 3);
    protocol.ProcessRow(i % 2, row);
  }
  std::unique_ptr<const serve::Snapshot> snap =
      serve::BuildSnapshot(protocol, 1, 200);
  serve::QueryEngine engine(snap.get());
  ASSERT_GT(engine.SketchRows(), 0u);

  const size_t r = snap->sigma.size();
  ASSERT_GT(r, 0u);
  // Requests beyond the factorization rank clamp to it, bit-exactly.
  EXPECT_EQ(engine.TopSingularValues(1000000), engine.TopSingularValues(r));
  std::vector<double> x(6, 1.0);
  EXPECT_EQ(engine.ProjectRow(x, 1000000), engine.ProjectRow(x, r));
}

TEST(ServingEdgeTest, ZeroRowFdSketchIsDefined) {
  // A sliding-window FD that never saw a row exports an empty matrix
  // snapshot: has_matrix set, every query the documented empty result.
  sketch::SlidingWindowFD window_fd(/*window=*/16, /*ell=*/4);
  std::unique_ptr<const serve::Snapshot> snap =
      serve::BuildWindowedSnapshot(window_fd, /*include_straddling=*/true,
                                   /*window_index=*/1, /*items_ingested=*/0);
  EXPECT_TRUE(snap->has_matrix);
  serve::QueryEngine engine(snap.get());
  EXPECT_EQ(engine.SketchRows(), 0u);
  EXPECT_EQ(engine.SketchSquaredFrobenius(), 0.0);
  EXPECT_TRUE(engine.TopSingularValues(2).empty());
  EXPECT_EQ(engine.CovarianceQuadraticForm({1.0, 2.0, 3.0}), 0.0);
  EXPECT_EQ(engine.ProjectRow({1.0, 2.0}, 3),
            std::vector<double>({0.0, 0.0}));
}

TEST(ServingEdgeTest, WindowedSnapshotMatchesSketchBytes) {
  sketch::SlidingWindowFD window_fd(/*window=*/32, /*ell=*/4);
  for (size_t i = 0; i < 50; ++i) {
    std::vector<double> row(5, 0.0);
    row[i % 5] = static_cast<double>(1 + i % 7);
    window_fd.Append(row);
  }
  std::unique_ptr<const serve::Snapshot> snap = serve::BuildWindowedSnapshot(
      window_fd, /*include_straddling=*/true, 1, 50);
  // The exported snapshot sketch is exactly ExportSketch's matrix.
  const linalg::Matrix direct = window_fd.ExportSketch(true);
  ASSERT_EQ(snap->sketch.rows(), direct.rows());
  ASSERT_EQ(snap->sketch.cols(), direct.cols());
  for (size_t i = 0; i < direct.rows(); ++i) {
    for (size_t j = 0; j < direct.cols(); ++j) {
      EXPECT_EQ(snap->sketch(i, j), direct(i, j));
    }
  }
}

TEST(ServingEdgeDeathTest, InvalidArgumentsDie) {
  std::unique_ptr<const serve::Snapshot> snap = serve::BuildEmptySnapshot();
  serve::QueryEngine engine(snap.get());
  EXPECT_DEATH((void)engine.TopK(0), "DMT_CHECK");
  EXPECT_DEATH((void)engine.TopKMass(0), "DMT_CHECK");
  EXPECT_DEATH((void)engine.TopSingularValues(0), "DMT_CHECK");
  EXPECT_DEATH((void)engine.ProjectRow({1.0}, 0), "DMT_CHECK");
  EXPECT_DEATH((void)engine.HeavyHitters(0.0, 0.1), "DMT_CHECK");
  EXPECT_DEATH((void)engine.HeavyHitters(0.1, -1.0), "DMT_CHECK");
  EXPECT_DEATH(serve::QueryEngine(nullptr), "DMT_CHECK");
}

TEST(ServingEdgeDeathTest, DimensionMismatchDies) {
  matrix::MP1BatchedFD protocol(2, 0.3);
  for (size_t i = 0; i < 50; ++i) {
    std::vector<double> row(4, 1.0);
    protocol.ProcessRow(i % 2, row);
  }
  std::unique_ptr<const serve::Snapshot> snap =
      serve::BuildSnapshot(protocol, 1, 50);
  serve::QueryEngine engine(snap.get());
  ASSERT_GT(engine.SketchRows(), 0u);
  EXPECT_DEATH((void)engine.CovarianceQuadraticForm({1.0}), "DMT_CHECK");
  EXPECT_DEATH((void)engine.ProjectRow({1.0, 2.0, 3.0}, 2), "DMT_CHECK");
}

}  // namespace
}  // namespace dmt
