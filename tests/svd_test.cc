#include "linalg/svd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/spectral.h"
#include "linalg/vec_ops.h"
#include "util/rng.h"

namespace dmt {
namespace linalg {
namespace {

Matrix SvdReconstruct(const SvdResult& svd, size_t rows, size_t cols) {
  Matrix out(rows, cols);
  for (size_t t = 0; t < svd.sigma.size(); ++t) {
    for (size_t i = 0; i < rows; ++i) {
      for (size_t j = 0; j < cols; ++j) {
        out(i, j) += svd.u(i, t) * svd.sigma[t] * svd.v(j, t);
      }
    }
  }
  return out;
}

void ExpectOrthonormalColumns(const Matrix& m, double tol) {
  for (size_t i = 0; i < m.cols(); ++i) {
    std::vector<double> ci = m.ColVector(i);
    EXPECT_NEAR(Norm(ci), 1.0, tol) << "column " << i;
    for (size_t j = i + 1; j < m.cols(); ++j) {
      std::vector<double> cj = m.ColVector(j);
      EXPECT_NEAR(Dot(ci, cj), 0.0, tol) << "columns " << i << "," << j;
    }
  }
}

class ThinSvdShapeTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>> {};

TEST_P(ThinSvdShapeTest, ReconstructsAndIsOrthonormal) {
  auto [n, d] = GetParam();
  Rng rng(n * 131 + d);
  Matrix a = RandomGaussianMatrix(n, d, &rng);
  SvdResult svd = ThinSVD(a);
  const size_t r = std::min(n, d);
  ASSERT_EQ(svd.sigma.size(), r);
  ASSERT_EQ(svd.u.rows(), n);
  ASSERT_EQ(svd.u.cols(), r);
  ASSERT_EQ(svd.v.rows(), d);
  ASSERT_EQ(svd.v.cols(), r);

  Matrix rec = SvdReconstruct(svd, n, d);
  EXPECT_LT(a.MaxAbsDiff(rec), 1e-9 * std::sqrt(a.SquaredFrobeniusNorm()));
  ExpectOrthonormalColumns(svd.u, 1e-9);
  ExpectOrthonormalColumns(svd.v, 1e-9);
  for (size_t i = 0; i + 1 < r; ++i) EXPECT_GE(svd.sigma[i], svd.sigma[i + 1]);
  for (double s : svd.sigma) EXPECT_GE(s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ThinSvdShapeTest,
    ::testing::Values(std::make_pair<size_t, size_t>(10, 10),
                      std::make_pair<size_t, size_t>(30, 8),
                      std::make_pair<size_t, size_t>(8, 30),
                      std::make_pair<size_t, size_t>(1, 5),
                      std::make_pair<size_t, size_t>(5, 1)));

TEST(SvdTest, SingularValuesMatchGramEigenvalues) {
  Rng rng(5);
  Matrix a = RandomGaussianMatrix(40, 10, &rng);
  SvdResult svd = ThinSVD(a);
  RightSingular rs = RightSingularOf(a);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_NEAR(svd.sigma[i] * svd.sigma[i], rs.squared_sigma[i],
                1e-7 * rs.squared_sigma[0]);
  }
}

TEST(SvdTest, RightSingularFromGramClampsNegatives) {
  // A slightly indefinite "Gram" from roundoff must clamp at zero.
  Matrix g = Matrix::FromRows({{1.0, 0.0}, {0.0, -1e-18}});
  RightSingular rs = RightSingularFromGram(g);
  EXPECT_GE(rs.squared_sigma[1], 0.0);
}

TEST(SvdTest, RankKOfLowRankMatrixIsExact) {
  // Rank-2 matrix: rank-2 approximation must reproduce it.
  Matrix a = Matrix::FromRows({{1, 0, 0}, {0, 2, 0}, {2, 0, 0}, {0, 4, 0}});
  Matrix a2 = RankKApproximation(a, 2);
  EXPECT_LT(a.MaxAbsDiff(a2), 1e-10);
}

TEST(SvdTest, RankKErrorEqualsTailSingularValues) {
  Rng rng(9);
  Matrix a = RandomGaussianMatrix(20, 6, &rng);
  SvdResult svd = ThinSVD(a);
  const size_t k = 3;
  Matrix ak = RankKApproximation(a, k);
  Matrix diff = a;
  diff.Subtract(ak);
  double tail = 0.0;
  for (size_t i = k; i < svd.sigma.size(); ++i) {
    tail += svd.sigma[i] * svd.sigma[i];
  }
  EXPECT_NEAR(diff.SquaredFrobeniusNorm(), tail, 1e-7 * tail);
}

TEST(SvdTest, ZeroMatrixHasZeroSigma) {
  Matrix a(4, 3);
  SvdResult svd = ThinSVD(a);
  for (double s : svd.sigma) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(SvdTest, NormAlongTopSingularVectorIsSigmaSquared) {
  Rng rng(21);
  Matrix a = RandomGaussianMatrix(50, 12, &rng);
  SvdResult svd = ThinSVD(a);
  std::vector<double> v1 = svd.v.ColVector(0);
  EXPECT_NEAR(a.SquaredNormAlong(v1), svd.sigma[0] * svd.sigma[0],
              1e-7 * svd.sigma[0] * svd.sigma[0]);
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
