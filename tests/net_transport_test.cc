// Transport and end-to-end equivalence tests: the local in-memory pair,
// the TCP loopback socket path, and the headline guarantee — a full
// distributed run (coordinator + site runners on real channels) finishes
// with coordinator state and CommStats bit-identical to the in-process
// SimulationDriver oracle, for both P1 and MP2, over both transports.
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/messages.h"
#include "net/remote.h"
#include "net/transport.h"
#include "net/workload.h"

namespace dmt {
namespace net {
namespace {

// ---------------------------------------------------------------------------
// Local pair semantics.

TEST(LocalPairTest, BytesCrossAndAreCounted) {
  auto [a, b] = MakeLocalPair();
  const uint8_t out[] = {1, 2, 3, 4, 5};
  ASSERT_TRUE(a->Send(out, sizeof(out)));
  uint8_t in[sizeof(out)] = {};
  ASSERT_TRUE(b->Recv(in, sizeof(in)));
  EXPECT_EQ(std::memcmp(in, out, sizeof(out)), 0);
  EXPECT_EQ(a->bytes_sent(), sizeof(out));
  EXPECT_EQ(b->bytes_received(), sizeof(out));
  EXPECT_EQ(a->bytes_received(), 0u);
  EXPECT_EQ(b->bytes_sent(), 0u);
}

TEST(LocalPairTest, RecvBlocksUntilBytesArrive) {
  auto [a, b] = MakeLocalPair();
  uint8_t in[4] = {};
  std::thread sender([conn = a.get()] {
    const uint8_t out[] = {9, 8, 7, 6};
    // Two partial sends; the peer's single Recv must coalesce them.
    ASSERT_TRUE(conn->Send(out, 2));
    ASSERT_TRUE(conn->Send(out + 2, 2));
  });
  ASSERT_TRUE(b->Recv(in, sizeof(in)));
  sender.join();
  EXPECT_EQ(in[0], 9);
  EXPECT_EQ(in[3], 6);
}

TEST(LocalPairTest, CloseUnblocksPeerRecv) {
  auto [a, b] = MakeLocalPair();
  std::thread closer([conn = a.get()] { conn->Close(); });
  uint8_t in[1];
  EXPECT_FALSE(b->Recv(in, 1));
  closer.join();
}

TEST(LocalPairTest, FramesTravelIntact) {
  auto [a, b] = MakeLocalPair();
  BroadcastMsg m;
  m.window = 5;
  m.value = 1.0 / 3.0;
  std::vector<uint8_t> payload;
  EncodeBroadcast(m, &payload);
  ASSERT_TRUE(SendFrame(a.get(), MsgType::kBroadcast, payload));

  FrameHeader header;
  std::vector<uint8_t> got;
  std::string error;
  ASSERT_TRUE(RecvFrame(b.get(), &header, &got, &error)) << error;
  EXPECT_EQ(header.type, MsgType::kBroadcast);
  BroadcastMsg back;
  ASSERT_TRUE(DecodeBroadcast(got.data(), got.size(), &back));
  EXPECT_EQ(back.window, 5u);
  double expect = 1.0 / 3.0;
  EXPECT_EQ(std::memcmp(&back.value, &expect, sizeof(double)), 0);
}

// ---------------------------------------------------------------------------
// TCP loopback path.

TEST(TcpTransportTest, LoopbackFrameEcho) {
  std::string error;
  auto listener = TcpListener::Listen(0, &error);
  ASSERT_NE(listener, nullptr) << error;
  ASSERT_GT(listener->port(), 0);

  std::unique_ptr<Connection> server;
  std::thread accepter([&] {
    std::string accept_error;
    server = listener->Accept(&accept_error);
  });
  auto client = TcpConnect("127.0.0.1", listener->port(), &error);
  ASSERT_NE(client, nullptr) << error;
  accepter.join();
  ASSERT_NE(server, nullptr);

  // Client -> server frame, echoed back, intact both ways.
  std::vector<uint8_t> payload;
  EncodeWindowEnd({99}, &payload);
  ASSERT_TRUE(SendFrame(client.get(), MsgType::kWindowEnd, payload));
  FrameHeader header;
  std::vector<uint8_t> got;
  ASSERT_TRUE(RecvFrame(server.get(), &header, &got, &error)) << error;
  EXPECT_EQ(header.type, MsgType::kWindowEnd);
  ASSERT_TRUE(SendFrame(server.get(), MsgType::kWindowEnd, got));
  got.clear();
  ASSERT_TRUE(RecvFrame(client.get(), &header, &got, &error)) << error;
  WindowEndMsg back;
  ASSERT_TRUE(DecodeWindowEnd(got.data(), got.size(), &back));
  EXPECT_EQ(back.window, 99u);

  // Both directions counted, symmetrically.
  EXPECT_EQ(client->bytes_sent(), server->bytes_received());
  EXPECT_EQ(server->bytes_sent(), client->bytes_received());
  EXPECT_EQ(client->bytes_sent(), kFrameHeaderBytes + payload.size());
}

TEST(TcpTransportTest, ConnectToDeadPortFails) {
  std::string error;
  // Bind-then-drop guarantees a currently-closed port.
  uint16_t dead_port = 0;
  {
    auto listener = TcpListener::Listen(0, &error);
    ASSERT_NE(listener, nullptr) << error;
    dead_port = listener->port();
  }
  auto conn = TcpConnect("127.0.0.1", dead_port, &error, /*retries=*/2);
  EXPECT_EQ(conn, nullptr);
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// End-to-end equivalence: full wire run == in-process oracle, bit for bit.

WireRunConfig SmallConfig(const std::string& protocol) {
  WireRunConfig config;
  config.protocol = protocol;
  config.num_sites = 3;
  config.n = 4000;
  config.chunk = 256;
  config.eps = 0.2;
  config.seed = 17;
  config.universe = 4096;
  config.dim = 12;
  return config;
}

// Runs coordinator + all sites on threads over the given per-site channel
// pairs, asserting success everywhere; returns the wire-side protocol
// instance and the coordinator's byte report.
void RunWireOnThreads(const WireRunConfig& config,
                      const WireWorkload& workload, WireProtocol* coord,
                      std::vector<std::unique_ptr<Connection>> coord_ends,
                      std::vector<std::unique_ptr<Connection>> site_ends,
                      WireCoordinatorReport* report) {
  std::vector<std::thread> site_threads;
  std::vector<WireProtocol> site_protocols(config.num_sites);
  std::vector<std::string> site_errors(config.num_sites);
  // Not vector<bool>: each site thread writes its own element, and the
  // packed-bit specialization would make distinct elements share a word.
  std::vector<char> site_ok(config.num_sites, 0);
  for (size_t s = 0; s < config.num_sites; ++s) {
    site_protocols[s] = MakeWireProtocol(config);
    ASSERT_NE(site_protocols[s].adapter, nullptr);
    site_threads.emplace_back([&, s, conn = site_ends[s].get()] {
      const auto windows =
          SiteWindowIndices(workload.sites, s, workload.window_ends);
      const auto update = MakeSiteUpdater(workload, &site_protocols[s], s);
      std::string error;
      site_ok[s] = RunWireSite(site_protocols[s].adapter.get(), s, windows,
                               update, conn, &error);
      site_errors[s] = error;
    });
  }
  std::string coord_error;
  const bool coord_ok =
      RunWireCoordinator(coord->adapter.get(), &coord_ends,
                         workload.window_ends.size(), report, &coord_error);
  for (auto& t : site_threads) t.join();
  EXPECT_TRUE(coord_ok) << coord_error;
  for (size_t s = 0; s < config.num_sites; ++s) {
    EXPECT_TRUE(site_ok[s]) << "site " << s << ": " << site_errors[s];
  }
  // Byte accounting must agree endpoint-to-endpoint: what each site sent
  // is exactly what the coordinator's channel received, and vice versa.
  ASSERT_EQ(report->bytes_from_site.size(), config.num_sites);
  for (size_t s = 0; s < config.num_sites; ++s) {
    EXPECT_EQ(site_ends[s]->bytes_sent(), report->bytes_from_site[s]);
    EXPECT_EQ(site_ends[s]->bytes_received(), report->bytes_to_site[s]);
    EXPECT_GT(report->bytes_to_site[s], 0u);  // broadcasts flowed down
  }
}

class WireEquivalenceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WireEquivalenceTest, LocalPairRunMatchesOracleBitForBit) {
  const WireRunConfig config = SmallConfig(GetParam());
  const WireWorkload workload = MakeWireWorkload(config);
  WireProtocol coord = MakeWireProtocol(config);
  ASSERT_NE(coord.adapter, nullptr);

  std::vector<std::unique_ptr<Connection>> coord_ends;
  std::vector<std::unique_ptr<Connection>> site_ends;
  for (size_t s = 0; s < config.num_sites; ++s) {
    auto [site_end, coord_end] = MakeLocalPair();
    site_ends.push_back(std::move(site_end));
    coord_ends.push_back(std::move(coord_end));
  }
  WireCoordinatorReport report;
  RunWireOnThreads(config, workload, &coord, std::move(coord_ends),
                   std::move(site_ends), &report);

  const WireProtocol oracle = RunOracle(config, workload);
  EXPECT_EQ(DiffWireProtocols(config, oracle, coord), "");
  EXPECT_GT(report.frames_received, 0u);
}

TEST_P(WireEquivalenceTest, TcpLoopbackRunMatchesOracleBitForBit) {
  const WireRunConfig config = SmallConfig(GetParam());
  const WireWorkload workload = MakeWireWorkload(config);
  WireProtocol coord = MakeWireProtocol(config);
  ASSERT_NE(coord.adapter, nullptr);

  std::string error;
  auto listener = TcpListener::Listen(0, &error);
  ASSERT_NE(listener, nullptr) << error;

  // Sites connect on threads while the main thread accepts; the handshake
  // inside RunWireCoordinator fixes up any accept-order scramble.
  std::vector<std::unique_ptr<Connection>> site_ends(config.num_sites);
  std::vector<std::thread> dialers;
  for (size_t s = 0; s < config.num_sites; ++s) {
    dialers.emplace_back([&, s] {
      std::string connect_error;
      site_ends[s] =
          TcpConnect("127.0.0.1", listener->port(), &connect_error);
    });
  }
  std::vector<std::unique_ptr<Connection>> coord_ends;
  for (size_t s = 0; s < config.num_sites; ++s) {
    auto conn = listener->Accept(&error);
    ASSERT_NE(conn, nullptr) << error;
    coord_ends.push_back(std::move(conn));
  }
  for (auto& t : dialers) t.join();
  for (const auto& conn : site_ends) ASSERT_NE(conn, nullptr);

  WireCoordinatorReport report;
  RunWireOnThreads(config, workload, &coord, std::move(coord_ends),
                   std::move(site_ends), &report);

  const WireProtocol oracle = RunOracle(config, workload);
  EXPECT_EQ(DiffWireProtocols(config, oracle, coord), "");
}

INSTANTIATE_TEST_SUITE_P(Protocols, WireEquivalenceTest,
                         ::testing::Values("p1", "mp2"),
                         [](const auto& info) { return info.param; });

// A site whose stream never routes it an arrival still participates in
// every window (empty flush, broadcast sync) — the schedule is global.
TEST(WireEquivalenceTest2, SiteWindowIndicesCoverEveryWindow) {
  const WireRunConfig config = SmallConfig("p1");
  const WireWorkload workload = MakeWireWorkload(config);
  size_t total = 0;
  for (size_t s = 0; s < config.num_sites; ++s) {
    const auto windows =
        SiteWindowIndices(workload.sites, s, workload.window_ends);
    ASSERT_EQ(windows.size(), workload.window_ends.size());
    for (const auto& w : windows) total += w.size();
  }
  EXPECT_EQ(total, config.n);  // every arrival lands in exactly one slot
}

}  // namespace
}  // namespace net
}  // namespace dmt
