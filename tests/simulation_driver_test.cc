// Determinism suite for the parallel simulation engine.
//
// The contract under test: for a fixed protocol seed, router assignment
// and chunk size, SimulationDriver runs with 1, 2 and 8 threads produce
// final sketches, CommStats and per-site message counts *bit-identical* to
// the serial execution of the same schedule — for every protocol (P1-P4,
// MP1-MP3 and both P3/MP3 variants), across uniform, round-robin and
// skewed routers. The serial reference is the driver at threads=1, which
// takes the plain single-threaded code path (no pool involved).
#include "stream/simulation_driver.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "hh/exact_tracker.h"
#include "hh/p1_batched_mg.h"
#include "hh/p2_threshold.h"
#include "hh/p3_sampling.h"
#include "hh/p4_randomized.h"
#include "linalg/matrix.h"
#include "matrix/mp1_batched_fd.h"
#include "matrix/mp2_svd_threshold.h"
#include "matrix/mp3_sampling.h"
#include "matrix/mp4_experimental.h"

namespace dmt {
namespace stream {
namespace {

constexpr uint64_t kSeed = 2024;
constexpr size_t kSites = 8;
constexpr size_t kChunk = 256;  // several sync rounds over the test streams

const std::vector<RoutingPolicy> kPolicies = {
    RoutingPolicy::kUniform, RoutingPolicy::kRoundRobin,
    RoutingPolicy::kSkewed};

std::string PolicyName(RoutingPolicy p) {
  switch (p) {
    case RoutingPolicy::kUniform: return "uniform";
    case RoutingPolicy::kRoundRobin: return "round-robin";
    default: return "skewed";
  }
}

// ---------------------------------------------------------------------
// Heavy hitters.
// ---------------------------------------------------------------------

struct HhRunResult {
  CommStats stats;
  std::vector<uint64_t> per_site;
  double total_weight = 0.0;
  // (element, estimate) for every tracked element, sorted by element.
  std::vector<std::pair<uint64_t, double>> estimates;
};

HhRunResult FingerprintHh(const hh::HeavyHitterProtocol& p) {
  HhRunResult r;
  r.stats = p.comm_stats();
  r.per_site = p.per_site_messages();
  r.total_weight = p.EstimateTotalWeight();
  std::vector<uint64_t> tracked = p.TrackedElements();
  std::sort(tracked.begin(), tracked.end());
  for (uint64_t e : tracked) {
    r.estimates.emplace_back(e, p.EstimateElementWeight(e));
  }
  return r;
}

void ExpectSameStats(const CommStats& a, const CommStats& b) {
  EXPECT_EQ(a.scalar_up, b.scalar_up);
  EXPECT_EQ(a.element_up, b.element_up);
  EXPECT_EQ(a.vector_up, b.vector_up);
  EXPECT_EQ(a.broadcast_events, b.broadcast_events);
  EXPECT_EQ(a.broadcast_msgs, b.broadcast_msgs);
  EXPECT_EQ(a.rounds, b.rounds);
}

void ExpectIdentical(const HhRunResult& serial, const HhRunResult& parallel) {
  ExpectSameStats(serial.stats, parallel.stats);
  EXPECT_EQ(serial.per_site, parallel.per_site);
  // Bit-identical: exact double equality, deliberately no tolerance.
  EXPECT_EQ(serial.total_weight, parallel.total_weight);
  ASSERT_EQ(serial.estimates.size(), parallel.estimates.size());
  for (size_t i = 0; i < serial.estimates.size(); ++i) {
    EXPECT_EQ(serial.estimates[i].first, parallel.estimates[i].first);
    EXPECT_EQ(serial.estimates[i].second, parallel.estimates[i].second);
  }
}

using HhFactory =
    std::unique_ptr<hh::HeavyHitterProtocol> (*)(size_t m, uint64_t seed);

struct HhProtocolCase {
  const char* name;
  HhFactory make;
};

const HhProtocolCase kHhCases[] = {
    {"P1", [](size_t m, uint64_t) -> std::unique_ptr<hh::HeavyHitterProtocol> {
       return std::make_unique<hh::P1BatchedMG>(m, 0.15);
     }},
    {"P2", [](size_t m, uint64_t) -> std::unique_ptr<hh::HeavyHitterProtocol> {
       return std::make_unique<hh::P2Threshold>(m, 0.15);
     }},
    {"P2-bounded",
     [](size_t m, uint64_t) -> std::unique_ptr<hh::HeavyHitterProtocol> {
       hh::P2Options opt;
       opt.site_counters = 32;
       return std::make_unique<hh::P2Threshold>(m, 0.15, opt);
     }},
    {"P3wor",
     [](size_t m, uint64_t s) -> std::unique_ptr<hh::HeavyHitterProtocol> {
       return std::make_unique<hh::P3SamplingWoR>(m, 0.2, s,
                                                  /*sample_size=*/64);
     }},
    {"P3wr",
     [](size_t m, uint64_t s) -> std::unique_ptr<hh::HeavyHitterProtocol> {
       return std::make_unique<hh::P3SamplingWR>(m, 0.2, s,
                                                 /*sample_size=*/48);
     }},
    {"P4", [](size_t m, uint64_t s) -> std::unique_ptr<hh::HeavyHitterProtocol> {
       return std::make_unique<hh::P4Randomized>(m, 0.2, s, /*copies=*/2);
     }},
    {"Exact",
     [](size_t m, uint64_t) -> std::unique_ptr<hh::HeavyHitterProtocol> {
       return std::make_unique<hh::ExactTracker>(m);
     }},
};

std::vector<WeightedUpdate> MakeHhStream(size_t n) {
  data::ZipfianStream z(2000, 1.5, 100.0, kSeed);
  std::vector<WeightedUpdate> items(n);
  for (auto& it : items) {
    data::WeightedItem w = z.Next();
    it = WeightedUpdate{w.element, w.weight};
  }
  return items;
}

HhRunResult RunHh(const HhProtocolCase& c, const std::vector<size_t>& sites,
                  const std::vector<WeightedUpdate>& items, size_t threads) {
  auto protocol = c.make(kSites, kSeed + 7);
  SimulationOptions opt;
  opt.threads = threads;
  opt.chunk_elements = kChunk;
  SimulationDriver driver(opt);
  driver.Run(protocol.get(), sites, items);
  return FingerprintHh(*protocol);
}

TEST(SimulationDriverHhTest, ParallelRunsBitIdenticalToSerial) {
  const size_t kN = 4000;
  const std::vector<WeightedUpdate> items = MakeHhStream(kN);
  for (RoutingPolicy policy : kPolicies) {
    Router router(kSites, policy, kSeed + 1);
    const std::vector<size_t> sites = AssignSites(&router, kN);
    for (const HhProtocolCase& c : kHhCases) {
      SCOPED_TRACE(std::string(c.name) + " / " + PolicyName(policy));
      const HhRunResult serial = RunHh(c, sites, items, /*threads=*/1);
      // A protocol that never talks to the coordinator would pass this
      // suite trivially; require actual traffic.
      EXPECT_GT(serial.stats.total(), 0u);
      for (size_t threads : {2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ExpectIdentical(serial, RunHh(c, sites, items, threads));
      }
    }
  }
}

// With chunk size 1 the driver synchronizes after every arrival, which for
// the protocols whose Process() == SiteUpdate(); Synchronize() degenerates
// to exactly the legacy element-by-element serial path.
TEST(SimulationDriverHhTest, ChunkOfOneMatchesLegacySerialProcess) {
  const size_t kN = 1500;
  const std::vector<WeightedUpdate> items = MakeHhStream(kN);
  Router router(kSites, RoutingPolicy::kUniform, kSeed + 2);
  const std::vector<size_t> sites = AssignSites(&router, kN);

  // P4 is excluded: its serial path applies the weight report before
  // computing the send probability (the historical semantics), which a
  // deferred schedule intentionally does not reproduce.
  for (const char* name : {"P1", "P2", "P2-bounded", "P3wor", "P3wr",
                           "Exact"}) {
    const auto it = std::find_if(
        std::begin(kHhCases), std::end(kHhCases),
        [name](const HhProtocolCase& c) {
          return std::string(c.name) == name;
        });
    ASSERT_NE(it, std::end(kHhCases));
    SCOPED_TRACE(name);

    auto legacy = it->make(kSites, kSeed + 7);
    for (size_t i = 0; i < kN; ++i) {
      legacy->Process(sites[i], items[i].element, items[i].weight);
    }

    auto driven = it->make(kSites, kSeed + 7);
    SimulationOptions opt;
    opt.threads = 1;
    opt.chunk_elements = 1;
    SimulationDriver driver(opt);
    driver.Run(driven.get(), sites, items);

    ExpectIdentical(FingerprintHh(*legacy), FingerprintHh(*driven));
  }
}

// ---------------------------------------------------------------------
// Matrix protocols.
// ---------------------------------------------------------------------

struct MatrixRunResult {
  CommStats stats;
  std::vector<uint64_t> per_site;
  linalg::Matrix sketch;
};

void ExpectIdentical(const MatrixRunResult& serial,
                     const MatrixRunResult& parallel) {
  ExpectSameStats(serial.stats, parallel.stats);
  EXPECT_EQ(serial.per_site, parallel.per_site);
  ASSERT_EQ(serial.sketch.rows(), parallel.sketch.rows());
  ASSERT_EQ(serial.sketch.cols(), parallel.sketch.cols());
  for (size_t i = 0; i < serial.sketch.rows(); ++i) {
    for (size_t j = 0; j < serial.sketch.cols(); ++j) {
      EXPECT_EQ(serial.sketch(i, j), parallel.sketch(i, j))
          << "sketch mismatch at (" << i << ", " << j << ")";
    }
  }
}

using MatrixFactory = std::unique_ptr<matrix::MatrixTrackingProtocol> (*)(
    size_t m, uint64_t seed);

struct MatrixProtocolCase {
  const char* name;
  MatrixFactory make;
};

const MatrixProtocolCase kMatrixCases[] = {
    {"MP1",
     [](size_t m, uint64_t) -> std::unique_ptr<matrix::MatrixTrackingProtocol> {
       return std::make_unique<matrix::MP1BatchedFD>(m, 0.25);
     }},
    {"MP2",
     [](size_t m, uint64_t) -> std::unique_ptr<matrix::MatrixTrackingProtocol> {
       return std::make_unique<matrix::MP2SvdThreshold>(m, 0.25);
     }},
    {"MP3wor",
     [](size_t m,
        uint64_t s) -> std::unique_ptr<matrix::MatrixTrackingProtocol> {
       return std::make_unique<matrix::MP3SamplingWoR>(m, 0.25, s,
                                                       /*sample_size=*/48);
     }},
    {"MP3wr",
     [](size_t m,
        uint64_t s) -> std::unique_ptr<matrix::MatrixTrackingProtocol> {
       return std::make_unique<matrix::MP3SamplingWR>(m, 0.25, s,
                                                      /*sample_size=*/32);
     }},
};

std::vector<std::vector<double>> MakeRowStream(size_t n) {
  data::SyntheticMatrixConfig cfg;
  cfg.dim = 16;
  cfg.latent_rank = 5;
  cfg.seed = kSeed + 3;
  data::SyntheticMatrixGenerator gen(cfg);
  std::vector<std::vector<double>> rows(n);
  for (auto& r : rows) r = gen.Next();
  return rows;
}

MatrixRunResult RunMatrix(const MatrixProtocolCase& c,
                          const std::vector<size_t>& sites,
                          const std::vector<std::vector<double>>& rows,
                          size_t threads) {
  auto protocol = c.make(kSites, kSeed + 11);
  SimulationOptions opt;
  opt.threads = threads;
  opt.chunk_elements = kChunk;
  SimulationDriver driver(opt);
  driver.Run(protocol.get(), sites, rows);
  MatrixRunResult r;
  r.stats = protocol->comm_stats();
  r.per_site = protocol->per_site_messages();
  r.sketch = protocol->CoordinatorSketch();
  return r;
}

TEST(SimulationDriverMatrixTest, ParallelRunsBitIdenticalToSerial) {
  const size_t kN = 1600;
  const std::vector<std::vector<double>> rows = MakeRowStream(kN);
  for (RoutingPolicy policy : kPolicies) {
    Router router(kSites, policy, kSeed + 4);
    const std::vector<size_t> sites = AssignSites(&router, kN);
    for (const MatrixProtocolCase& c : kMatrixCases) {
      SCOPED_TRACE(std::string(c.name) + " / " + PolicyName(policy));
      const MatrixRunResult serial = RunMatrix(c, sites, rows, /*threads=*/1);
      EXPECT_GT(serial.stats.total(), 0u);
      for (size_t threads : {2u, 8u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ExpectIdentical(serial, RunMatrix(c, sites, rows, threads));
      }
    }
  }
}

// MP4 does not support concurrent site updates; the driver must fall back
// to the serial schedule regardless of the requested thread count and stay
// deterministic.
TEST(SimulationDriverMatrixTest, UnsupportedProtocolFallsBackSerially) {
  const size_t kN = 600;
  const std::vector<std::vector<double>> rows = MakeRowStream(kN);
  Router router(kSites, RoutingPolicy::kUniform, kSeed + 5);
  const std::vector<size_t> sites = AssignSites(&router, kN);

  auto run = [&](size_t threads) {
    auto p = std::make_unique<matrix::MP4Experimental>(kSites, 0.3,
                                                       kSeed + 13);
    EXPECT_FALSE(p->SupportsConcurrentSiteUpdates());
    SimulationOptions opt;
    opt.threads = threads;
    opt.chunk_elements = kChunk;
    SimulationDriver driver(opt);
    driver.Run(p.get(), sites, rows);
    MatrixRunResult r;
    r.stats = p->comm_stats();
    r.per_site = p->per_site_messages();
    r.sketch = p->CoordinatorSketch();
    return r;
  };

  const MatrixRunResult serial = run(1);
  ExpectIdentical(serial, run(8));
}

// ---------------------------------------------------------------------
// Driver plumbing.
// ---------------------------------------------------------------------

TEST(SimulationDriverTest, EmptyStreamIsANoOp) {
  hh::P2Threshold p(kSites, 0.1);
  SimulationDriver driver(SimulationOptions{4, 128});
  driver.Run(&p, {}, std::vector<WeightedUpdate>{});
  EXPECT_EQ(p.comm_stats().total(), 0u);
}

TEST(SimulationDriverTest, ExactTrackerTotalsMatchStream) {
  const size_t kN = 3000;
  const std::vector<WeightedUpdate> items = MakeHhStream(kN);
  double want_total = 0.0;
  for (const auto& it : items) want_total += it.weight;

  Router router(kSites, RoutingPolicy::kUniform, kSeed + 6);
  const std::vector<size_t> sites = AssignSites(&router, kN);
  hh::ExactTracker exact(kSites);
  SimulationDriver driver(SimulationOptions{8, kChunk});
  driver.Run(&exact, sites, items);

  // Exact tracker forwards every arrival: per-site counts must equal the
  // router histogram and the estimate must be the exact stream total.
  EXPECT_DOUBLE_EQ(exact.EstimateTotalWeight(), want_total);
  std::vector<uint64_t> histogram(kSites, 0);
  for (size_t s : sites) ++histogram[s];
  EXPECT_EQ(exact.per_site_messages(), histogram);
  EXPECT_EQ(exact.comm_stats().element_up, kN);
}

TEST(SimulationDriverTest, ResolveThreadCountPrefersExplicitValue) {
  EXPECT_EQ(ResolveThreadCount(3), 3u);
  EXPECT_GE(ResolveThreadCount(0), 1u);  // env or hardware, both >= 1
}

// A protocol whose SiteUpdate throws mid-chunk: the driver must await the
// whole chunk's tasks, then surface the exception — not crash or hang.
class ThrowingProtocol : public hh::HeavyHitterProtocol {
 public:
  void Process(size_t site, uint64_t e, double w) override {
    SiteUpdate(site, e, w);
  }
  void SiteUpdate(size_t, uint64_t element, double) override {
    if (element == 42) throw std::runtime_error("poisoned element");
  }
  void Synchronize() override {}
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  double EstimateElementWeight(uint64_t) const override { return 0.0; }
  double EstimateTotalWeight() const override { return 0.0; }
  const stream::CommStats& comm_stats() const override { return stats_; }
  std::vector<uint64_t> per_site_messages() const override { return {}; }
  std::string name() const override { return "Throwing"; }
  std::vector<uint64_t> TrackedElements() const override { return {}; }

 private:
  stream::CommStats stats_;
};

TEST(SimulationDriverTest, SiteExceptionPropagatesAfterChunkBarrier) {
  const size_t kN = 2000;
  std::vector<WeightedUpdate> items(kN, WeightedUpdate{7, 1.0});
  items[kN / 2].element = 42;  // one poisoned arrival mid-stream
  Router router(kSites, RoutingPolicy::kUniform, kSeed + 8);
  const std::vector<size_t> sites = AssignSites(&router, kN);

  ThrowingProtocol protocol;
  SimulationDriver driver(SimulationOptions{8, 128});
  EXPECT_THROW(driver.Run(&protocol, sites, items), std::runtime_error);
}

}  // namespace
}  // namespace stream
}  // namespace dmt
