#include "linalg/matrix.h"

#include <vector>

#include <gtest/gtest.h>

namespace dmt {
namespace linalg {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(2, 3);
  for (size_t i = 0; i < 2; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 0.0);
  }
}

TEST(MatrixTest, AppendRowInfersColumnCount) {
  Matrix m;
  m.AppendRow({1.0, 2.0});
  m.AppendRow({3.0, 4.0});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, FromRowsRoundTrips) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.RowVector(1), (std::vector<double>{4, 5, 6}));
  EXPECT_EQ(m.ColVector(2), (std::vector<double>{3, 6}));
}

TEST(MatrixTest, IdentityDiagonal) {
  Matrix id = Matrix::Identity(3);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(id(i, j), i == j ? 1.0 : 0.0);
    }
  }
}

TEST(MatrixTest, TransposedSwapsShape) {
  Matrix m = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix t = m.Transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(MatrixTest, MultiplyKnownProduct) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  Matrix b = Matrix::FromRows({{5, 6}, {7, 8}});
  Matrix c = a.Multiply(b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(MatrixTest, MultiplyByIdentityIsNoop) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix c = a.Multiply(Matrix::Identity(3));
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(c), 0.0);
}

TEST(MatrixTest, GramMatchesExplicitTransposeProduct) {
  Matrix a = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 10}});
  Matrix g = a.Gram();
  Matrix expected = a.Transposed().Multiply(a);
  EXPECT_LT(g.MaxAbsDiff(expected), 1e-12);
}

TEST(MatrixTest, GramIsSymmetric) {
  Matrix a = Matrix::FromRows({{1, -2, 0.5}, {0, 3, 2}});
  Matrix g = a.Gram();
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(g(i, j), g(j, i));
  }
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  std::vector<double> y = a.MultiplyVector({1.0, -1.0});
  EXPECT_DOUBLE_EQ(y[0], -1.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(MatrixTest, TransposedMultiplyVector) {
  Matrix a = Matrix::FromRows({{1, 2}, {3, 4}});
  std::vector<double> y = a.TransposedMultiplyVector({1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(MatrixTest, SquaredFrobeniusNorm) {
  Matrix a = Matrix::FromRows({{1, 2}, {2, 1}});
  EXPECT_DOUBLE_EQ(a.SquaredFrobeniusNorm(), 10.0);
}

TEST(MatrixTest, SquaredNormAlongAxis) {
  Matrix a = Matrix::FromRows({{1, 0}, {2, 0}, {0, 5}});
  EXPECT_DOUBLE_EQ(a.SquaredNormAlong({1.0, 0.0}), 5.0);
  EXPECT_DOUBLE_EQ(a.SquaredNormAlong({0.0, 1.0}), 25.0);
}

TEST(MatrixTest, AddSubtractScale) {
  Matrix a = Matrix::FromRows({{1, 2}});
  Matrix b = Matrix::FromRows({{3, 5}});
  a.Add(b);
  EXPECT_DOUBLE_EQ(a(0, 1), 7.0);
  a.Subtract(b);
  EXPECT_DOUBLE_EQ(a(0, 1), 2.0);
  a.ScaleBy(2.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
}

TEST(MatrixTest, AddOuterProductMatchesGramUpdate) {
  Matrix g(3, 3);
  std::vector<double> v{1.0, -2.0, 0.5};
  g.AddOuterProduct(2.0, v);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(g(i, j), 2.0 * v[i] * v[j], 1e-15);
    }
  }
}

TEST(MatrixTest, AppendRowsRawBlockMatchesPerRowAppend) {
  const Matrix src = Matrix::FromRows({{1, 2, 3}, {4, 5, 6}, {7, 8, 9}});
  Matrix bulk;
  bulk.AppendRows(src.Row(0), 3, 3);  // sets cols on first append
  Matrix per_row;
  for (size_t i = 0; i < src.rows(); ++i) per_row.AppendRow(src.Row(i), 3);
  EXPECT_EQ(bulk.rows(), 3u);
  EXPECT_EQ(bulk.cols(), 3u);
  EXPECT_EQ(bulk.MaxAbsDiff(per_row), 0.0);
  bulk.AppendRows(src.Row(1), 2, 3);  // append onto a non-empty matrix
  EXPECT_EQ(bulk.rows(), 5u);
  EXPECT_DOUBLE_EQ(bulk(4, 2), 9.0);
  bulk.AppendRows(src.Row(0), 0, 3);  // n == 0 is a no-op
  EXPECT_EQ(bulk.rows(), 5u);
}

TEST(MatrixTest, ClearRowsKeepsColumns) {
  Matrix m = Matrix::FromRows({{1, 2}, {3, 4}});
  m.ClearRows();
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 2u);
  m.AppendRow({5.0, 6.0});
  EXPECT_EQ(m.rows(), 1u);
}

TEST(MatrixDeathTest, MismatchedRowLengthAborts) {
  Matrix m;
  m.AppendRow({1.0, 2.0});
  EXPECT_DEATH(m.AppendRow({1.0, 2.0, 3.0}), "DMT_CHECK");
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
