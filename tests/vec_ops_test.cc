#include "linalg/vec_ops.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace dmt {
namespace linalg {
namespace {

TEST(VecOpsTest, DotBasic) {
  std::vector<double> a{1.0, 2.0, 3.0};
  std::vector<double> b{4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b), 4.0 - 10.0 + 18.0);
}

TEST(VecOpsTest, DotEmpty) {
  std::vector<double> a, b;
  EXPECT_DOUBLE_EQ(Dot(a, b), 0.0);
}

TEST(VecOpsTest, SquaredNormMatchesDotWithSelf) {
  std::vector<double> a{1.5, -2.5, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(SquaredNorm(a), Dot(a, a));
}

TEST(VecOpsTest, NormOfUnitAxis) {
  std::vector<double> e{0.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(Norm(e), 1.0);
}

TEST(VecOpsTest, AxpyAccumulates) {
  std::vector<double> x{1.0, 2.0};
  std::vector<double> y{10.0, 20.0};
  Axpy(3.0, x.data(), y.data(), 2);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(VecOpsTest, ScaleInPlace) {
  std::vector<double> x{2.0, -4.0};
  Scale(0.5, x.data(), 2);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -2.0);
}

TEST(VecOpsTest, NormalizeReturnsPriorNormAndUnitResult) {
  std::vector<double> x{3.0, 4.0};
  double prior = Normalize(&x);
  EXPECT_DOUBLE_EQ(prior, 5.0);
  EXPECT_NEAR(Norm(x), 1.0, 1e-15);
  EXPECT_DOUBLE_EQ(x[0], 0.6);
  EXPECT_DOUBLE_EQ(x[1], 0.8);
}

TEST(VecOpsTest, NormalizeZeroVectorIsNoop) {
  std::vector<double> x{0.0, 0.0, 0.0};
  double prior = Normalize(&x);
  EXPECT_DOUBLE_EQ(prior, 0.0);
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace linalg
}  // namespace dmt
