// Equivalence test for MP2's engineering shortcuts.
//
// The implementation guards threshold checks behind a trace bound and
// runs each check as a trace-certified partial Lanczos solve (with an
// exact-decomposition fallback for flat spectra). This test pits it
// against a literal transcription of the paper's Algorithm 5.3/5.4 —
// full decomposition of the raw Gram after every row — and requires
// identical messages and an identical coordinator state.
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic_matrix.h"
#include "linalg/svd.h"
#include "linalg/vec_ops.h"
#include "matrix/mp2_svd_threshold.h"
#include "stream/router.h"

namespace dmt {
namespace matrix {
namespace {

// Literal Algorithm 5.3 / 5.4: per-row svd of the raw site Gram.
class ReferenceMP2 {
 public:
  ReferenceMP2(size_t num_sites, double eps)
      : eps_(eps), m_(num_sites), sites_(num_sites) {}

  void ProcessRow(size_t site, const std::vector<double>& row) {
    if (dim_ == 0) {
      dim_ = row.size();
      coord_gram_ = linalg::Matrix(dim_, dim_);
      for (auto& st : sites_) st.gram = linalg::Matrix(dim_, dim_);
    }
    SiteState& st = sites_[site];
    const double w = linalg::SquaredNorm(row);

    st.scalar_counter += w;
    if (st.scalar_counter >= (eps_ / m_) * st.fest) {
      ++scalar_msgs_;
      coord_fest_ += st.scalar_counter;
      st.scalar_counter = 0.0;
      if (++msgs_since_broadcast_ >= sites_.size()) {
        msgs_since_broadcast_ = 0;
        ++broadcasts_;
        for (auto& s : sites_) s.fest = coord_fest_;
      }
    }

    const double threshold = (eps_ / m_) * st.fest;
    if (threshold <= 0.0) {
      if (w > 0.0) {
        ++vector_msgs_;
        coord_gram_.AddOuterProduct(1.0, row);
      }
      return;
    }

    st.gram.AddOuterProduct(1.0, row);
    // Paper-literal: svd after every arrival, ship all heavy directions.
    linalg::RightSingular rs = linalg::RightSingularFromGram(st.gram);
    bool any = false;
    for (size_t i = 0; i < rs.squared_sigma.size(); ++i) {
      const double lam = rs.squared_sigma[i];
      if (lam < threshold || lam <= 0.0) break;
      any = true;
      ++vector_msgs_;
      std::vector<double> v(dim_);
      for (size_t j = 0; j < dim_; ++j) v[j] = rs.v(j, i);
      coord_gram_.AddOuterProduct(lam, v);
    }
    if (any) {
      // Rebuild the Gram from the kept directions.
      linalg::Matrix kept(dim_, dim_);
      for (size_t i = 0; i < rs.squared_sigma.size(); ++i) {
        const double lam = rs.squared_sigma[i];
        if (lam >= threshold || lam <= 0.0) continue;
        std::vector<double> v(dim_);
        for (size_t j = 0; j < dim_; ++j) v[j] = rs.v(j, i);
        kept.AddOuterProduct(lam, v);
      }
      st.gram = std::move(kept);
    }
  }

  uint64_t vector_msgs() const { return vector_msgs_; }
  uint64_t scalar_msgs() const { return scalar_msgs_; }
  uint64_t broadcasts() const { return broadcasts_; }
  const linalg::Matrix& coord_gram() const { return coord_gram_; }

 private:
  struct SiteState {
    linalg::Matrix gram;
    double scalar_counter = 0.0;
    double fest = 0.0;
  };

  double eps_;
  double m_;
  size_t dim_ = 0;
  std::vector<SiteState> sites_;
  linalg::Matrix coord_gram_;
  double coord_fest_ = 0.0;
  size_t msgs_since_broadcast_ = 0;
  uint64_t vector_msgs_ = 0;
  uint64_t scalar_msgs_ = 0;
  uint64_t broadcasts_ = 0;
};

class Mp2EquivalenceTest : public ::testing::TestWithParam<double> {};

TEST_P(Mp2EquivalenceTest, MatchesPaperLiteralImplementation) {
  const double eps = GetParam();
  const size_t m = 5;
  MP2SvdThreshold fast(m, eps);
  ReferenceMP2 reference(m, eps);

  data::SyntheticMatrixConfig cfg;
  cfg.dim = 10;
  cfg.latent_rank = 3;
  cfg.seed = 11;
  data::SyntheticMatrixGenerator gen(cfg);
  stream::Router router(m, stream::RoutingPolicy::kUniform, 12);

  for (int i = 0; i < 4000; ++i) {
    std::vector<double> row = gen.Next();
    const size_t site = router.NextSite();
    fast.ProcessRow(site, row);
    reference.ProcessRow(site, row);
  }

  // Identical message behaviour...
  EXPECT_EQ(fast.comm_stats().vector_up, reference.vector_msgs());
  EXPECT_EQ(fast.comm_stats().scalar_up, reference.scalar_msgs());
  EXPECT_EQ(fast.comm_stats().broadcast_events, reference.broadcasts());
  // ...and an identical coordinator state (up to roundoff).
  EXPECT_LT(fast.CoordinatorGram().MaxAbsDiff(reference.coord_gram()),
            1e-6 * (1.0 + reference.coord_gram().SquaredFrobeniusNorm()));
}

INSTANTIATE_TEST_SUITE_P(EpsSweep, Mp2EquivalenceTest,
                         ::testing::Values(0.05, 0.1, 0.3));

}  // namespace
}  // namespace matrix
}  // namespace dmt
