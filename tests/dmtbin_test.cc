// Format-level tests of the .dmtbin row cache: header fields, payload
// round-trip, and the rejection paths (bad magic, version, truncation).
#include "data/dmtbin.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "linalg/matrix.h"

namespace dmt {
namespace data {
namespace {

class DmtbinTest : public ::testing::Test {
 protected:
  // One file per test case (gtest_discover_tests runs each TEST in its
  // own process, so a shared fixed path would race under `ctest -j`).
  std::string Path() const {
    return ::testing::TempDir() + "/dmt_bin_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".dmtbin";
  }

  static linalg::Matrix SampleMatrix() {
    return linalg::Matrix::FromRows({{1.0, -2.0, 3.5},
                                     {0.25, 0.0, -0.125},
                                     {1e-7, 2e3, 4.0},
                                     {9.0, 8.0, 7.0}});
  }
};

TEST_F(DmtbinTest, RoundTripIsBitIdentical) {
  const linalg::Matrix m = SampleMatrix();
  std::string error;
  ASSERT_TRUE(WriteDmtbin(Path(), m, &error)) << error;

  DmtbinSource source(Path(), 0, &error);
  ASSERT_TRUE(source.ok()) << error;
  EXPECT_EQ(source.info().dim, 3u);
  EXPECT_EQ(source.info().rows, 4u);

  const linalg::Matrix back = source.Take(0);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  // Bit-identical, not approximately equal: the cache must not perturb
  // the stream (memcmp over the raw row-major payload).
  EXPECT_EQ(std::memcmp(back.Row(0), m.Row(0),
                        m.rows() * m.cols() * sizeof(double)),
            0);
}

TEST_F(DmtbinTest, HeaderRecordsBetaAndFrobenius) {
  const linalg::Matrix m = SampleMatrix();
  double beta = 0.0;
  double frob = 0.0;
  for (size_t i = 0; i < m.rows(); ++i) {
    double sq = 0.0;
    for (size_t j = 0; j < m.cols(); ++j) sq += m(i, j) * m(i, j);
    beta = std::max(beta, sq);
    frob += sq;
  }
  ASSERT_TRUE(WriteDmtbin(Path(), m, nullptr));
  DmtbinInfo info;
  std::string error;
  ASSERT_TRUE(ReadDmtbinInfo(Path(), &info, &error)) << error;
  EXPECT_EQ(info.version, kDmtbinVersion);
  EXPECT_DOUBLE_EQ(info.beta, beta);
  EXPECT_DOUBLE_EQ(info.frob_sq, frob);
}

TEST_F(DmtbinTest, MaxRowsCapsServedRows) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  DmtbinSource source(Path(), 2);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.info().rows, 2u);
  EXPECT_EQ(source.Take(0).rows(), 2u);
}

TEST_F(DmtbinTest, ResetReplaysIdenticalRows) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  DmtbinSource source(Path());
  ASSERT_TRUE(source.ok());
  const linalg::Matrix first = source.Take(0);
  source.Reset();
  const linalg::Matrix second = source.Take(0);
  ASSERT_EQ(first.rows(), second.rows());
  EXPECT_EQ(std::memcmp(first.Row(0), second.Row(0),
                        first.rows() * first.cols() * sizeof(double)),
            0);
}

TEST_F(DmtbinTest, ChunkingDoesNotChangeTheSequence) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  DmtbinSource source(Path());
  linalg::Matrix chunked;
  while (source.NextChunk(1, &chunked) != 0) {
  }
  source.Reset();
  const linalg::Matrix whole = source.Take(0);
  ASSERT_EQ(chunked.rows(), whole.rows());
  EXPECT_EQ(std::memcmp(chunked.Row(0), whole.Row(0),
                        whole.rows() * whole.cols() * sizeof(double)),
            0);
}

TEST_F(DmtbinTest, RefusesEmptyMatrix) {
  std::string error;
  EXPECT_FALSE(WriteDmtbin(Path(), linalg::Matrix(), &error));
  EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST_F(DmtbinTest, RejectsMissingFile) {
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path() + ".does-not-exist", nullptr, &error));
  DmtbinSource source(Path() + ".does-not-exist", 0, &error);
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.NextChunk(8, nullptr), 0u);  // serves nothing
}

TEST_F(DmtbinTest, RejectsBadMagic) {
  {
    std::ofstream out(Path(), std::ios::binary);
    std::string junk(128, 'x');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST_F(DmtbinTest, RejectsTruncatedPayload) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  // Chop the last row's final byte off.
  std::ifstream in(Path(), std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size - 1, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(Path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
  DmtbinSource source(Path(), 0, &error);
  EXPECT_FALSE(source.ok());
}

TEST_F(DmtbinTest, RejectsShorterThanHeader) {
  {
    std::ofstream out(Path(), std::ios::binary);
    out.write("DMTBIN", 6);
  }
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("shorter"), std::string::npos);
}

TEST_F(DmtbinTest, RejectsUnsupportedVersion) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  // Bump the version field (offset 8) in place.
  std::fstream f(Path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  const uint32_t bad = 99;
  f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  f.close();
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

}  // namespace
}  // namespace data
}  // namespace dmt
