// Format-level tests of the .dmtbin row cache: header fields, payload
// round-trip, the rejection paths (bad magic, version, truncation), the
// atomic-write guarantee, and the mid-stream short-read degrade.
#include "data/dmtbin.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#include <gtest/gtest.h>

#include "linalg/matrix.h"

namespace dmt {
namespace data {
namespace {

class DmtbinTest : public ::testing::Test {
 protected:
  // One file per test case (gtest_discover_tests runs each TEST in its
  // own process, so a shared fixed path would race under `ctest -j`).
  std::string Path() const {
    return ::testing::TempDir() + "/dmt_bin_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name() +
           ".dmtbin";
  }

  static linalg::Matrix SampleMatrix() {
    return linalg::Matrix::FromRows({{1.0, -2.0, 3.5},
                                     {0.25, 0.0, -0.125},
                                     {1e-7, 2e3, 4.0},
                                     {9.0, 8.0, 7.0}});
  }
};

TEST_F(DmtbinTest, RoundTripIsBitIdentical) {
  const linalg::Matrix m = SampleMatrix();
  std::string error;
  ASSERT_TRUE(WriteDmtbin(Path(), m, &error)) << error;

  DmtbinSource source(Path(), 0, &error);
  ASSERT_TRUE(source.ok()) << error;
  EXPECT_EQ(source.info().dim, 3u);
  EXPECT_EQ(source.info().rows, 4u);

  const linalg::Matrix back = source.Take(0);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  // Bit-identical, not approximately equal: the cache must not perturb
  // the stream (memcmp over the raw row-major payload).
  EXPECT_EQ(std::memcmp(back.Row(0), m.Row(0),
                        m.rows() * m.cols() * sizeof(double)),
            0);
}

TEST_F(DmtbinTest, HeaderRecordsBetaAndFrobenius) {
  const linalg::Matrix m = SampleMatrix();
  double beta = 0.0;
  double frob = 0.0;
  for (size_t i = 0; i < m.rows(); ++i) {
    double sq = 0.0;
    for (size_t j = 0; j < m.cols(); ++j) sq += m(i, j) * m(i, j);
    beta = std::max(beta, sq);
    frob += sq;
  }
  ASSERT_TRUE(WriteDmtbin(Path(), m, nullptr));
  DmtbinInfo info;
  std::string error;
  ASSERT_TRUE(ReadDmtbinInfo(Path(), &info, &error)) << error;
  EXPECT_EQ(info.version, kDmtbinVersion);
  EXPECT_DOUBLE_EQ(info.beta, beta);
  EXPECT_DOUBLE_EQ(info.frob_sq, frob);
}

TEST_F(DmtbinTest, MaxRowsCapsServedRows) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  DmtbinSource source(Path(), 2);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source.info().rows, 2u);
  EXPECT_EQ(source.Take(0).rows(), 2u);
}

TEST_F(DmtbinTest, ResetReplaysIdenticalRows) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  DmtbinSource source(Path());
  ASSERT_TRUE(source.ok());
  const linalg::Matrix first = source.Take(0);
  source.Reset();
  const linalg::Matrix second = source.Take(0);
  ASSERT_EQ(first.rows(), second.rows());
  EXPECT_EQ(std::memcmp(first.Row(0), second.Row(0),
                        first.rows() * first.cols() * sizeof(double)),
            0);
}

TEST_F(DmtbinTest, ChunkingDoesNotChangeTheSequence) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  DmtbinSource source(Path());
  linalg::Matrix chunked;
  while (source.NextChunk(1, &chunked) != 0) {
  }
  source.Reset();
  const linalg::Matrix whole = source.Take(0);
  ASSERT_EQ(chunked.rows(), whole.rows());
  EXPECT_EQ(std::memcmp(chunked.Row(0), whole.Row(0),
                        whole.rows() * whole.cols() * sizeof(double)),
            0);
}

TEST_F(DmtbinTest, RefusesEmptyMatrix) {
  std::string error;
  EXPECT_FALSE(WriteDmtbin(Path(), linalg::Matrix(), &error));
  EXPECT_NE(error.find("empty"), std::string::npos);
}

TEST_F(DmtbinTest, RejectsMissingFile) {
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path() + ".does-not-exist", nullptr, &error));
  DmtbinSource source(Path() + ".does-not-exist", 0, &error);
  EXPECT_FALSE(source.ok());
  EXPECT_EQ(source.NextChunk(8, nullptr), 0u);  // serves nothing
}

TEST_F(DmtbinTest, RejectsBadMagic) {
  {
    std::ofstream out(Path(), std::ios::binary);
    std::string junk(128, 'x');
    out.write(junk.data(), static_cast<std::streamsize>(junk.size()));
  }
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("magic"), std::string::npos);
}

TEST_F(DmtbinTest, RejectsTruncatedPayload) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  // Chop the last row's final byte off.
  std::ifstream in(Path(), std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size - 1, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  in.close();
  {
    std::ofstream out(Path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("truncated"), std::string::npos);
  DmtbinSource source(Path(), 0, &error);
  EXPECT_FALSE(source.ok());
}

TEST_F(DmtbinTest, RejectsShorterThanHeader) {
  {
    std::ofstream out(Path(), std::ios::binary);
    out.write("DMTBIN", 6);
  }
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("shorter"), std::string::npos);
}

TEST_F(DmtbinTest, FailedWriteLeavesNoPartialCache) {
  // Regression: WriteDmtbin used to stream straight into the final path,
  // so a failed write left a partial file that poisoned every later run.
  // Point it at a path whose directory does not exist: the write must
  // fail AND the final path must not appear.
  const std::string path = Path() + ".no-such-dir/cache.dmtbin";
  std::string error;
  EXPECT_FALSE(WriteDmtbin(path, SampleMatrix(), &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ReadDmtbinInfo(path, nullptr, nullptr));
  std::ifstream probe(path, std::ios::binary);
  EXPECT_FALSE(probe.is_open());
}

TEST_F(DmtbinTest, SuccessfulWriteLeavesNoTempFile) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  // The temp file is pid-suffixed next to the final path; after the
  // rename it must be gone.
  const std::string tmp = Path() + ".tmp." + std::to_string(::getpid());
  std::ifstream probe(tmp, std::ios::binary);
  EXPECT_FALSE(probe.is_open());
  EXPECT_TRUE(ReadDmtbinInfo(Path(), nullptr, nullptr));
}

TEST_F(DmtbinTest, OverwriteReplacesWholeFile) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  const linalg::Matrix smaller = linalg::Matrix::FromRows({{5.0, 6.0}});
  ASSERT_TRUE(WriteDmtbin(Path(), smaller, nullptr));
  DmtbinInfo info;
  ASSERT_TRUE(ReadDmtbinInfo(Path(), &info, nullptr));
  // The rename swapped in the new file whole — no stale tail from the
  // larger previous cache survives (which in-place truncless writes had).
  EXPECT_EQ(info.rows, 1u);
  EXPECT_EQ(info.dim, 2u);
}

TEST_F(DmtbinTest, TruncationMidStreamDegradesInsteadOfAborting) {
  // Regression: a short read in NextChunk() used to hit DMT_CHECK_EQ and
  // abort the whole process. A file that shrinks after open must instead
  // end the stream with read_error() set. The payload is made much larger
  // than the ifstream's internal buffer so the truncation is actually
  // observed (a tiny file would be fully buffered by the first read).
  const size_t rows = 4096;
  const size_t dim = 4;
  linalg::Matrix big(0, dim);
  std::vector<double> row(dim);
  for (size_t i = 0; i < rows; ++i) {
    for (size_t j = 0; j < dim; ++j) row[j] = static_cast<double>(i + j);
    big.AppendRow(row);
  }
  ASSERT_TRUE(WriteDmtbin(Path(), big, nullptr));
  DmtbinSource source(Path());
  ASSERT_TRUE(source.ok());

  linalg::Matrix out;
  ASSERT_EQ(source.NextChunk(2, &out), 2u);  // first chunk streams fine

  // Shrink the file underneath the open source: drop the last row's
  // final byte so the remaining bulk read comes up short.
  std::ifstream in(Path(), std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.close();
  ASSERT_EQ(::truncate(Path().c_str(), static_cast<off_t>(size - 1)), 0);

  EXPECT_EQ(source.NextChunk(rows, &out), 0u);
  EXPECT_NE(source.read_error().find("short read"), std::string::npos);
  EXPECT_EQ(out.rows(), 2u);  // nothing partial was appended
  // The error latches: later calls keep serving nothing.
  EXPECT_EQ(source.NextChunk(2, &out), 0u);
  // Reset clears it (the caller may retry after repairing the cache).
  source.Reset();
  EXPECT_TRUE(source.read_error().empty());
}

TEST_F(DmtbinTest, RejectsUnsupportedVersion) {
  ASSERT_TRUE(WriteDmtbin(Path(), SampleMatrix(), nullptr));
  // Bump the version field (offset 8) in place.
  std::fstream f(Path(), std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(8);
  const uint32_t bad = 99;
  f.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  f.close();
  std::string error;
  EXPECT_FALSE(ReadDmtbinInfo(Path(), nullptr, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
}

}  // namespace
}  // namespace data
}  // namespace dmt
