#!/usr/bin/env bash
# Downloads the paper's two real datasets into a dmt data directory:
#
#   PAMAP2 (UCI 231)            ->  <data-dir>/pamap/*.dat
#   YearPredictionMSD (UCI 203) ->  <data-dir>/YearPredictionMSD.txt
#
# Usage:  tools/fetch_datasets.sh [data-dir]      (default: ./data)
#
# The benches then take `--data-dir <data-dir>`; on first use each
# dataset is parsed once and cached as <data-dir>/<name>.dmtbin so later
# runs skip CSV parsing (see docs/DATASETS.md). Nothing in the test suite
# needs these downloads — without them every bench falls back to the
# synthetic stand-ins.
set -euo pipefail

DATA_DIR="${1:-./data}"
PAMAP_URL="https://archive.ics.uci.edu/static/public/231/pamap2+physical+activity+monitoring.zip"
MSD_URL="https://archive.ics.uci.edu/static/public/203/yearpredictionmsd.zip"

note() { printf '%s\n' "$*" >&2; }
die()  { note "error: $*"; exit 1; }

fetch() { # fetch <url> <out-file>
  if command -v curl >/dev/null 2>&1; then
    curl -fL --retry 3 -o "$2" "$1"
  elif command -v wget >/dev/null 2>&1; then
    wget -O "$2" "$1"
  else
    die "need curl or wget to download $1"
  fi
}

command -v unzip >/dev/null 2>&1 || die "need unzip on PATH"

mkdir -p "$DATA_DIR"
TMP="$(mktemp -d "${TMPDIR:-/tmp}/dmt_datasets.XXXXXX")"
# Clean the staging directory on any exit; bash only runs the EXIT trap
# for a signal-induced death if the signal itself is trapped, so cover
# Ctrl-C / TERM during the multi-hundred-MB downloads explicitly.
trap 'rm -rf "$TMP"' EXIT
trap 'exit 129' HUP
trap 'exit 130' INT
trap 'exit 143' TERM

# ---------------------------------------------------------------- PAMAP
if ls "$DATA_DIR"/pamap/*.dat >/dev/null 2>&1; then
  note "PAMAP already present under $DATA_DIR/pamap — skipping"
else
  note "downloading PAMAP2 (~650 MB) ..."
  fetch "$PAMAP_URL" "$TMP/pamap2.zip"
  note "unpacking PAMAP2 ..."
  unzip -q -o "$TMP/pamap2.zip" -d "$TMP/pamap2"
  # The archive nests a second zip holding PAMAP2_Dataset/Protocol/*.dat.
  inner="$(find "$TMP/pamap2" -name '*.zip' | head -n 1 || true)"
  if [ -n "$inner" ]; then
    unzip -q -o "$inner" -d "$TMP/pamap2"
  fi
  mkdir -p "$DATA_DIR/pamap"
  found=0
  while IFS= read -r dat; do
    cp "$dat" "$DATA_DIR/pamap/"
    found=$((found + 1))
  done < <(find "$TMP/pamap2" -path '*Protocol*' -name '*.dat' | sort)
  [ "$found" -gt 0 ] || die "no Protocol/*.dat files found in the PAMAP2 archive"
  note "PAMAP: $found subject files -> $DATA_DIR/pamap/"
fi

# ------------------------------------------------------------------ MSD
if [ -f "$DATA_DIR/YearPredictionMSD.txt" ]; then
  note "YearPredictionMSD already present — skipping"
else
  note "downloading YearPredictionMSD (~200 MB) ..."
  fetch "$MSD_URL" "$TMP/msd.zip"
  note "unpacking YearPredictionMSD ..."
  unzip -q -o "$TMP/msd.zip" -d "$TMP/msd"
  txt="$(find "$TMP/msd" -name 'YearPredictionMSD.txt' | head -n 1 || true)"
  [ -n "$txt" ] || die "YearPredictionMSD.txt not found in the archive"
  cp "$txt" "$DATA_DIR/YearPredictionMSD.txt"
  note "MSD -> $DATA_DIR/YearPredictionMSD.txt"
fi

note "done. try: build/bench/table1_matrix_raw --data-dir $DATA_DIR"
