// Coordinator process for a distributed protocol run (docs/PROTOCOL.md).
//
// Binds a TCP listener, accepts one channel per site, runs the registered
// protocol's coordinator half over the wire (net/remote.h), and reports
// the paper's message counts next to the bytes that actually crossed each
// channel. With --check it also replays the identical workload through the
// in-process SimulationDriver and verifies the wire run reproduced the
// oracle's coordinator state and CommStats bit-for-bit.
//
//   dmt_coordinator --protocol p1 --sites 4 --n 20000 --chunk 1024
//       --eps 0.1 --seed 42 --port 0 --port-file /tmp/port --check
//
// --port 0 picks an ephemeral port; --port-file publishes the bound port
// (written atomically) so site processes can poll for it.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "net/remote.h"
#include "net/transport.h"
#include "net/workload.h"
#include "serve/query_engine.h"
#include "serve/serving_coordinator.h"
#include "serve/snapshot_store.h"
#include "stream/comm_stats.h"

namespace {

using dmt::net::WireRunConfig;

int Fail(const std::string& message) {
  std::fprintf(stderr, "dmt_coordinator: error: %s\n", message.c_str());
  return 1;
}

// Publishes the bound port via write-to-temp + rename, so a polling site
// never reads a half-written file.
bool PublishPort(const std::string& path, uint16_t port) {
  const std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

void PrintCommStats(const dmt::stream::CommStats& stats) {
  std::printf("  messages (paper metric): total=%llu up=%llu "
              "(scalar=%llu element=%llu vector=%llu) "
              "broadcast_events=%llu broadcast_msgs=%llu rounds=%llu\n",
              static_cast<unsigned long long>(stats.total()),
              static_cast<unsigned long long>(stats.total_up()),
              static_cast<unsigned long long>(stats.scalar_up),
              static_cast<unsigned long long>(stats.element_up),
              static_cast<unsigned long long>(stats.vector_up),
              static_cast<unsigned long long>(stats.broadcast_events),
              static_cast<unsigned long long>(stats.broadcast_msgs),
              static_cast<unsigned long long>(stats.rounds));
}

}  // namespace

int main(int argc, char** argv) {
  const WireRunConfig config = dmt::net::ParseWireArgs(argc, argv);

  dmt::net::WireProtocol protocol = dmt::net::MakeWireProtocol(config);
  if (protocol.adapter == nullptr) {
    return Fail("unknown --protocol '" + config.protocol +
                "' (use p1 or mp2)");
  }
  const dmt::net::WireWorkload workload =
      dmt::net::MakeWireWorkload(config);

  std::string error;
  auto listener = dmt::net::TcpListener::Listen(config.port, &error);
  if (listener == nullptr) return Fail(error);
  std::printf("dmt_coordinator: %s, %zu sites, %zu arrivals, %zu windows, "
              "listening on %s:%u\n",
              config.protocol.c_str(), config.num_sites, config.n,
              workload.window_ends.size(), config.host.c_str(),
              static_cast<unsigned>(listener->port()));
  std::fflush(stdout);
  if (!config.port_file.empty() &&
      !PublishPort(config.port_file, listener->port())) {
    return Fail("cannot publish port to " + config.port_file);
  }

  std::vector<std::unique_ptr<dmt::net::Connection>> channels;
  for (size_t s = 0; s < config.num_sites; ++s) {
    auto conn = listener->Accept(&error);
    if (conn == nullptr) return Fail(error);
    channels.push_back(std::move(conn));
  }

  // Publish a queryable RCU snapshot after every drained window, exactly
  // as the in-process serving path does — in-process readers (none in
  // this CLI, but anything linked into the coordinator process) can
  // acquire and query without ever blocking the wire loop.
  dmt::serve::SnapshotStore snapshot_store;
  dmt::serve::ServingCoordinator serving(&snapshot_store);
  if (protocol.hh != nullptr) {
    serving.AttachHHProtocol(protocol.hh.get());
  } else {
    serving.AttachMatrixProtocol(protocol.mp.get());
  }
  const auto on_window = [&](size_t w) {
    serving.PublishWindow(w, workload.window_ends[w - 1]);
  };

  dmt::net::WireCoordinatorReport report;
  if (!dmt::net::RunWireCoordinator(protocol.adapter.get(), &channels,
                                    workload.window_ends.size(), &report,
                                    &error, on_window)) {
    return Fail(error);
  }

  const dmt::stream::CommStats& stats =
      protocol.hh != nullptr ? protocol.hh->comm_stats()
                             : protocol.mp->comm_stats();
  const std::vector<uint64_t> per_site =
      protocol.hh != nullptr ? protocol.hh->per_site_messages()
                             : protocol.mp->per_site_messages();
  std::printf("run complete: %llu frames received\n",
              static_cast<unsigned long long>(report.frames_received));
  {
    dmt::serve::SnapshotReader snapshot_reader(&snapshot_store);
    dmt::serve::SnapshotRef snap = snapshot_reader.Acquire();
    dmt::serve::QueryEngine engine(&*snap);
    std::printf("  serving: %llu windows published; final snapshot "
                "window=%llu tracked=%zu sketch=%zux%zu\n",
                static_cast<unsigned long long>(serving.windows_published()),
                static_cast<unsigned long long>(engine.window_index()),
                engine.TrackedCount(), engine.SketchRows(),
                engine.SketchCols());
  }
  PrintCommStats(stats);
  std::printf("  bytes on the wire: up=%llu down=%llu\n",
              static_cast<unsigned long long>(report.total_bytes_up()),
              static_cast<unsigned long long>(report.total_bytes_down()));
  for (size_t s = 0; s < per_site.size(); ++s) {
    std::printf("  site %zu: %llu upstream messages, %llu bytes up, "
                "%llu bytes down\n",
                s, static_cast<unsigned long long>(per_site[s]),
                static_cast<unsigned long long>(report.bytes_from_site[s]),
                static_cast<unsigned long long>(report.bytes_to_site[s]));
  }

  if (config.check) {
    dmt::net::WireProtocol oracle = dmt::net::RunOracle(config, workload);
    const std::string diff =
        dmt::net::DiffWireProtocols(config, protocol, oracle);
    if (!diff.empty()) {
      return Fail("wire run diverged from in-process oracle: " + diff);
    }
    std::printf("EQUIVALENCE OK: wire run is bit-identical to the "
                "in-process oracle\n");
  }
  return 0;
}
