// Site process for a distributed protocol run (docs/PROTOCOL.md).
//
// Reconstructs the shared workload from the run config (every process
// derives the identical stream, assignment and window schedule from the
// seed), connects to the coordinator, and runs this site's half: apply the
// site's arrivals window by window, batch-send the protocol's outbox, and
// absorb the coordinator's broadcasts.
//
//   dmt_site --site 0 --protocol p1 --sites 4 --n 20000 --chunk 1024
//       --eps 0.1 --seed 42 --host 127.0.0.1 --port-file /tmp/port
//
// The config flags must match the coordinator's exactly (the handshake
// cross-checks protocol, site count and window count). --port-file polls
// for the coordinator's published ephemeral port.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "net/remote.h"
#include "net/transport.h"
#include "net/workload.h"

namespace {

using dmt::net::WireRunConfig;

int Fail(const std::string& message) {
  std::fprintf(stderr, "dmt_site: error: %s\n", message.c_str());
  return 1;
}

// Polls for the coordinator's port file (written atomically on its side);
// 0 after ~15s without a parseable port.
uint16_t PollPortFile(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    FILE* f = std::fopen(path.c_str(), "r");
    if (f != nullptr) {
      unsigned port = 0;
      const int got = std::fscanf(f, "%u", &port);
      std::fclose(f);
      if (got == 1 && port > 0 && port <= 65535) {
        return static_cast<uint16_t>(port);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  WireRunConfig config = dmt::net::ParseWireArgs(argc, argv);
  if (config.site >= config.num_sites) {
    return Fail("--site must name one of the --sites site ids");
  }

  dmt::net::WireProtocol protocol = dmt::net::MakeWireProtocol(config);
  if (protocol.adapter == nullptr) {
    return Fail("unknown --protocol '" + config.protocol +
                "' (use p1 or mp2)");
  }

  if (config.port == 0) {
    if (config.port_file.empty()) {
      return Fail("need --port or --port-file to find the coordinator");
    }
    config.port = PollPortFile(config.port_file);
    if (config.port == 0) {
      return Fail("no port appeared in " + config.port_file);
    }
  }

  const dmt::net::WireWorkload workload =
      dmt::net::MakeWireWorkload(config);
  const auto windows = dmt::net::SiteWindowIndices(
      workload.sites, config.site, workload.window_ends);

  std::string error;
  auto conn = dmt::net::TcpConnect(config.host, config.port, &error);
  if (conn == nullptr) return Fail(error);

  const auto update =
      dmt::net::MakeSiteUpdater(workload, &protocol, config.site);
  if (!dmt::net::RunWireSite(protocol.adapter.get(), config.site, windows,
                             update, conn.get(), &error)) {
    return Fail(error);
  }
  std::printf("dmt_site %zu: done — %zu windows, %llu bytes sent, "
              "%llu bytes received\n",
              config.site, windows.size(),
              static_cast<unsigned long long>(conn->bytes_sent()),
              static_cast<unsigned long long>(conn->bytes_received()));
  return 0;
}
