#!/usr/bin/env bash
# Fails if any tests/*_test.cc file exists without a registered CMake test
# target. Wired into CTest as `check_test_registration` (see CMakeLists.txt):
# at configure time CMake writes the list of test sources it registered to
# <build>/registered_tests.txt, and this script diffs that list against the
# tests/ directory on disk. Guards against suites being silently dropped if
# test registration ever moves from a glob to an explicit list (or a stale
# build directory hides a newly added suite).
#
# Usage: check_test_registration.sh <repo_root> <registered_tests.txt>
#        check_test_registration.sh --list-fixtures
# The second form prints the lint fixtures the selftest covers (one per
# line) — a quick way to confirm a new fixture under tools/lint/testdata
# was picked up.
set -euo pipefail

if [[ $# -eq 1 && "$1" == "--list-fixtures" ]]; then
  script_root=$(cd "$(dirname "$0")/.." && pwd)
  exec python3 "${script_root}/tools/lint/dmt_lint" --list-fixtures
fi

if [[ $# -ne 2 ]]; then
  echo "usage: $0 <repo_root> <registered_tests.txt>" >&2
  echo "       $0 --list-fixtures" >&2
  exit 2
fi

repo_root=$1
registered_list=$2

if [[ ! -d "${repo_root}/tests" ]]; then
  echo "FAIL: ${repo_root}/tests is not a directory" >&2
  exit 1
fi
if [[ ! -f "${registered_list}" ]]; then
  echo "FAIL: registered-test list ${registered_list} not found" \
       "(re-run the CMake configure step)" >&2
  exit 1
fi

status=0
while IFS= read -r test_src; do
  [[ -z "${test_src}" ]] && continue
  if ! grep -Fxq "${test_src}" "${registered_list}"; then
    echo "FAIL: ${test_src} has no registered CMake test target" >&2
    echo "      (stale build directory? re-run cmake to pick it up)" >&2
    status=1
  fi
done < <(find "${repo_root}/tests" -maxdepth 1 -name '*_test.cc' | sort)

# Every lint fixture under tools/lint/testdata must be covered by the
# `lint_selftest` CTest target, i.e. appear in `dmt_lint --list-fixtures`
# (which is exactly the set the selftest iterates). Guards against fixtures
# being added but never exercised.
if [[ -d "${repo_root}/tools/lint/testdata" ]] \
    && command -v python3 >/dev/null 2>&1; then
  fixture_list=$(python3 "${repo_root}/tools/lint/dmt_lint" --list-fixtures)
  while IFS= read -r fixture; do
    [[ -z "${fixture}" ]] && continue
    if ! grep -Fxq "$(basename "${fixture}")" <<<"${fixture_list}"; then
      echo "FAIL: lint fixture ${fixture} is not covered by" \
           "'dmt_lint --selftest' (see tools/lint/dmtlint/cli.py)" >&2
      status=1
    fi
  done < <(find "${repo_root}/tools/lint/testdata" -maxdepth 1 -name '*.cc' | sort)
fi

if [[ ${status} -eq 0 ]]; then
  count=$(grep -c . "${registered_list}" || true)
  echo "OK: all $(find "${repo_root}/tests" -maxdepth 1 -name '*_test.cc' | wc -l)" \
       "test sources registered (${count} targets);" \
       "all lint fixtures covered by lint_selftest"
fi
exit ${status}
