// Violating fixture: every determinism check family fires here.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-FINDING: determinism-banned-call fn=SeedFromWallClock
// EXPECT-FINDING: determinism-banned-call fn=EntropyMix
// EXPECT-FINDING: determinism-unordered-iter fn=SummarizeCounters
// EXPECT-FINDING: determinism-thread-fp fn=PlanChunks
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <thread>
#include <unordered_map>

namespace dmt {
namespace fixture {

// Wall-clock reads are replay-breaking in protocol code: a re-run of the
// same stream would observe different values.
long SeedFromWallClock() {
  auto now = std::chrono::steady_clock::now();
  return now.time_since_epoch().count() + std::time(nullptr);
}

// The libc PRNG draws from hidden global state.
int EntropyMix() { return std::rand(); }

// Folding floating-point state while iterating an unordered container
// makes the sum depend on hash-table layout (libstdc++ version, load
// factor, insertion history).
double SummarizeCounters(const std::unordered_map<unsigned long, double>& m) {
  double total = 0.0;
  for (const auto& kv : m) total += kv.second;
  return total;
}

// Sizing work by the machine's thread count changes the FP reduction
// order across hosts.
unsigned PlanChunks() { return std::thread::hardware_concurrency() * 4u; }

}  // namespace fixture
}  // namespace dmt
