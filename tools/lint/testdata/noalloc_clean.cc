// Clean fixture: DMT_NO_ALLOC roots that only touch preallocated
// storage, including one that calls through a DMT_ALLOC_OK setup
// barrier (the walk must stop there).
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-CLEAN
#include <cstddef>
#include <vector>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

struct Workspace {
  std::vector<double> data;

  DMT_ALLOC_OK("one-time setup; hot paths run only after it")
  void Ensure(std::size_t n) {
    if (data.size() < n) data.resize(n);
  }
};

DMT_NO_ALLOC
double HotSum(const Workspace& w) {
  double s = 0.0;
  for (std::size_t i = 0; i < w.data.size(); ++i) s += w.data[i];
  return s;
}

DMT_NO_ALLOC
void HotFill(Workspace& w, double value) {
  for (std::size_t i = 0; i < w.data.size(); ++i) w.data[i] = value;
}

// Calling an ALLOC_OK helper from a NO_ALLOC root is the sanctioned
// setup pattern: the barrier stops the transitive walk.
DMT_NO_ALLOC
void HotWithSetup(Workspace& w) {
  w.Ensure(64);
  HotFill(w, 0.0);
}

}  // namespace fixture
}  // namespace dmt
