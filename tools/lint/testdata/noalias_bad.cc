// Violating fixture: the same buffer passed to two DMT_NOALIAS
// parameters, one of them written through.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-FINDING: noalias-duplicate-arg fn=BadCall
#include <cstddef>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

void Accumulate(const double* DMT_NOALIAS src, double* DMT_NOALIAS dst,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void BadCall(double* buf, std::size_t n) {
  Accumulate(buf, buf, n);
}

}  // namespace fixture
}  // namespace dmt
