// Clean fixture for the untrusted-input family: decoders fail by
// returning errors and clamp every wire-derived size before allocating.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-CLEAN
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

constexpr uint32_t kMaxBody = 1u << 20;

DMT_UNTRUSTED_INPUT
bool DecodeClamped(const uint8_t* p, size_t n, std::vector<uint8_t>* out) {
  if (n < 4) return false;
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  if (len > kMaxBody) return false;
  out->resize(len);
  return true;
}

DMT_UNTRUSTED_INPUT
bool DecodeChecksFirst(const uint8_t* p, size_t n) {
  if (n == 0) return false;
  return p[0] == 1;
}

}  // namespace fixture
}  // namespace dmt
