// Violating fixture: allocation reachable from DMT_NO_ALLOC roots, both
// directly and through a transitive call.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-FINDING: noalloc-violation fn=HotDirect
// EXPECT-FINDING: noalloc-violation fn=HotTransitive
// EXPECT-FINDING: noalloc-violation fn=HotNew
#include <cstddef>
#include <vector>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

struct Workspace {
  std::vector<double> data;
  // No DMT_ALLOC_OK here: the growth is visible to the call-graph walk.
  void Grow(std::size_t n) { data.resize(n); }
};

DMT_NO_ALLOC
void HotDirect(std::vector<double>& v) { v.push_back(1.0); }

DMT_NO_ALLOC
void HotTransitive(Workspace& w, std::size_t n) { w.Grow(n); }

DMT_NO_ALLOC
double HotNew(std::size_t n) {
  double* p = new double[n];
  double s = p[0];
  delete[] p;
  return s;
}

}  // namespace fixture
}  // namespace dmt
