// Clean fixture: DMT_NOALIAS call sites the aliasing check must accept —
// distinct buffers, offset expressions it cannot prove identical, and a
// read-only duplicate (no parameter written through).
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-CLEAN
#include <cstddef>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

void Accumulate(const double* DMT_NOALIAS src, double* DMT_NOALIAS dst,
                std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

double DotNoAlias(const double* DMT_NOALIAS x, const double* DMT_NOALIAS y,
                  std::size_t n) {
  double s = 0.0;
  for (std::size_t i = 0; i < n; ++i) s += x[i] * y[i];
  return s;
}

void GoodCalls(double* a, double* b, const double* v, std::size_t n) {
  Accumulate(a, b, n);      // distinct buffers
  Accumulate(a, a + 1, n);  // not provably identical (caller's burden)
  (void)DotNoAlias(v, v, n);  // duplicate, but neither side is written
}

}  // namespace fixture
}  // namespace dmt
