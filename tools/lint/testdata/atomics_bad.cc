// Violating fixture for the atomics-discipline family: implicit orders,
// operator forms, a mis-ordered publish field, an over-ordered counter,
// an unclassified atomic, and a single-order compare_exchange.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-FINDING: atomic-implicit-order fn=ImplicitLoad
// EXPECT-FINDING: atomic-implicit-order fn=OperatorStore
// EXPECT-FINDING: atomic-publish-relaxed fn=RelaxedPublish
// EXPECT-FINDING: atomic-counter-order fn=SeqCstCounter
// EXPECT-FINDING: atomic-unclassified fn=TouchStray
// EXPECT-FINDING: atomic-implicit-order fn=SingleOrderCas
#include <atomic>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

struct State {
  DMT_ATOMIC_PUBLISH std::atomic<int> head{0};
  DMT_ATOMIC_COUNTER std::atomic<int> hits{0};
  std::atomic<int> stray{0};  // no classification: every op is a finding
};

// Defaulted order: the call is really seq_cst but the code does not say so.
int ImplicitLoad(State& s) { return s.head.load(); }

// Operator form: cannot name an order at all.
void OperatorStore(State& s) { s.head = 42; }

// Publish-classified fields carry synchronization; relaxed breaks it.
void RelaxedPublish(State& s) {
  s.head.store(1, std::memory_order_relaxed);
}

// Counter-classified fields are pure stats; seq_cst is an unjustified fence.
void SeqCstCounter(State& s) {
  s.hits.fetch_add(1, std::memory_order_seq_cst);
}

// Explicit order, but the field has no DMT_ATOMIC_* classification.
void TouchStray(State& s) {
  s.stray.fetch_add(1, std::memory_order_relaxed);
}

// compare_exchange with one order defaults the failure order.
bool SingleOrderCas(State& s) {
  int expected = 0;
  return s.head.compare_exchange_strong(expected, 1,
                                        std::memory_order_acq_rel);
}

}  // namespace fixture
}  // namespace dmt
