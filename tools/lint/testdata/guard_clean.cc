// Clean fixture for the guard-discipline family: locked access, access
// from a helper reached only under the lock, and a writer-side function
// touching a DMT_GUARDED_BY(writer) field.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-CLEAN
#include <mutex>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

class Pool {
 public:
  void LockedTouch();
  void Retire();

 private:
  void TouchImpl();

  std::mutex mutex_;
  DMT_GUARDED_BY(mutex_) int pending_ = 0;
  DMT_GUARDED_BY(writer) int retired_ = 0;
};

void Pool::LockedTouch() {
  std::lock_guard<std::mutex> lk(mutex_);
  pending_ += 1;
  TouchImpl();
}

// Touches the guarded field without acquiring, but is reached only from
// LockedTouch, which holds the lock — caller propagation covers it.
void Pool::TouchImpl() { pending_ += 1; }

DMT_WRITER_SIDE
void Pool::Retire() { retired_ += 1; }

}  // namespace fixture
}  // namespace dmt
