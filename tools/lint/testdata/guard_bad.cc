// Violating fixture for the guard-discipline family: a DMT_GUARDED_BY
// mutex field touched without the lock, and a DMT_GUARDED_BY(writer)
// field touched outside any DMT_WRITER_SIDE function.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-FINDING: guard-unlocked-access fn=UnlockedTouch
// EXPECT-FINDING: guard-unlocked-access fn=StrayWriter
#include <mutex>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

class Pool {
 public:
  void UnlockedTouch();
  void StrayWriter();

 private:
  std::mutex mutex_;
  DMT_GUARDED_BY(mutex_) int pending_ = 0;
  DMT_GUARDED_BY(writer) int retired_ = 0;
};

// No lock acquisition anywhere on the path to this access.
void Pool::UnlockedTouch() { pending_ += 1; }

// Not DMT_WRITER_SIDE, and no writer-side caller.
void Pool::StrayWriter() { retired_ += 1; }

}  // namespace fixture
}  // namespace dmt
