// Violating fixture for the untrusted-input family: decoders that abort
// (directly and transitively) and a wire-derived size reaching an
// allocation with no clamp.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-FINDING: untrusted-abort-path fn=DecodeAborts
// EXPECT-FINDING: untrusted-abort-path fn=DecodeTransitive
// EXPECT-FINDING: untrusted-unclamped-alloc fn=DecodeUnclamped
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/contracts.h"

namespace dmt {
namespace fixture {

// Aborting on adversarial bytes instead of returning an error.
DMT_UNTRUSTED_INPUT
bool DecodeAborts(const uint8_t* p, size_t n) {
  DMT_CHECK(n >= 4);
  return p[0] == 1;
}

void ValidateOrDie(size_t n) { DMT_CHECK_GE(n, 4u); }

// The abort hides one call deep; the walk is transitive.
DMT_UNTRUSTED_INPUT
bool DecodeTransitive(const uint8_t* p, size_t n) {
  ValidateOrDie(n);
  return p[0] == 1;
}

// A length read straight off the wire sizes an allocation unbounded.
DMT_UNTRUSTED_INPUT
bool DecodeUnclamped(const uint8_t* p, size_t n,
                     std::vector<uint8_t>* out) {
  if (n < 4) return false;
  const uint32_t len = static_cast<uint32_t>(p[0]) |
                       (static_cast<uint32_t>(p[1]) << 8) |
                       (static_cast<uint32_t>(p[2]) << 16) |
                       (static_cast<uint32_t>(p[3]) << 24);
  out->resize(len);
  return true;
}

}  // namespace fixture
}  // namespace dmt
