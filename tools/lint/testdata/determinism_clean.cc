// Clean fixture: deterministic counterparts of the patterns the
// determinism checks reject, plus the sanctioned suppression form.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-CLEAN
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

namespace dmt {
namespace fixture {

// Ordered-map iteration has a replay-stable order, so FP folds over it
// are deterministic.
double SummarizeOrdered(const std::map<unsigned long, double>& m) {
  double total = 0.0;
  for (const auto& kv : m) total += kv.second;
  return total;
}

// Draining an unordered container into a vector and sorting before any
// order-sensitive consumer is the sanctioned pattern; the drain loop
// itself carries the allow directive.
// dmt-lint: allow(determinism-unordered-iter): drained and sorted below.
std::vector<unsigned long> SortedKeys(
    const std::unordered_map<unsigned long, double>& m) {
  std::vector<unsigned long> keys;
  keys.reserve(m.size());
  // dmt-lint: allow(determinism-unordered-iter): keys sorted before use.
  for (const auto& kv : m) keys.push_back(kv.first);
  std::sort(keys.begin(), keys.end());
  return keys;
}

// A fixed chunk schedule keeps the reduction order independent of the
// machine the protocol replays on.
unsigned FixedChunks() { return 8u; }

}  // namespace fixture
}  // namespace dmt
