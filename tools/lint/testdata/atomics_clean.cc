// Clean fixture for the atomics-discipline family: every operation names
// its order explicitly, publish fields use ordered operations, counter
// fields use relaxed, and compare_exchange spells both orders.
// Compiled only by `dmt_lint --selftest`, never linked into the build.
//
// EXPECT-CLEAN
#include <atomic>

#include "util/contracts.h"

namespace dmt {
namespace fixture {

struct State {
  DMT_ATOMIC_PUBLISH std::atomic<int> head{0};
  DMT_ATOMIC_COUNTER std::atomic<int> hits{0};
};

int OrderedLoad(State& s) { return s.head.load(std::memory_order_acquire); }

void OrderedStore(State& s) { s.head.store(1, std::memory_order_release); }

void RelaxedCounter(State& s) {
  s.hits.fetch_add(1, std::memory_order_relaxed);
}

bool TwoOrderCas(State& s) {
  int expected = 0;
  return s.head.compare_exchange_strong(expected, 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire);
}

}  // namespace fixture
}  // namespace dmt
