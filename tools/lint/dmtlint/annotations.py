"""Lexical discovery of contract annotations and suppression comments.

GCC erases the DMT_* macros (they expand to nothing outside Clang), so the
AST cannot carry them; this module locates them in source text and the
checks bind them to function_decl srcp locations. Suppressions live in
comments, which no AST sees. This is the only place dmt_lint reads source
text — the checks themselves operate on the GENERIC dump.

Recognized forms:

  DMT_NO_ALLOC            on (or up to BIND_WINDOW lines above) a function
                          definition's signature start.
  DMT_ALLOC_OK("reason")  same placement; the reason must be non-empty.
  // dmt-lint: allow(<check-id>): <reason>
                          suppresses findings of <check-id> attributed to
                          the next BIND_WINDOW source lines (or, when placed
                          on/above a function signature, to that whole
                          function). The reason must be non-empty.
  DMT_NOALIAS             between the '*' and the name of a pointer
                          parameter. GCC's GENERIC dump erases the restrict
                          qualifier, so no-alias contracts are discovered
                          here too: each parameter list containing the token
                          is parsed into a NoAliasDecl (function name, line,
                          annotated positions, writability) that the alias
                          check matches against resolved call sites.
  DMT_ATOMIC_PUBLISH / DMT_ATOMIC_COUNTER
                          on (or up to BIND_WINDOW lines above) an atomic
                          field's declaration line; classifies the field for
                          the atomics-discipline checks. At most one per
                          field.
  DMT_GUARDED_BY(guard)   same placement; `guard` is a mutex member name or
                          the reserved word `writer`. The guard name must be
                          a plain identifier.
  DMT_WRITER_SIDE         on a function definition (like DMT_NO_ALLOC);
                          marks the single-writer role for
                          DMT_GUARDED_BY(writer) fields.
  DMT_UNTRUSTED_INPUT     on a function definition; marks a decode entry
                          point for the untrusted-input checks.
"""

import re

# How many lines below an annotation/suppression it still binds: the macro
# or comment goes on the signature/statement line or up to two lines above
# (multi-line signatures, long call statements).
BIND_WINDOW = 3

_NO_ALLOC_RE = re.compile(r"\bDMT_NO_ALLOC\b")
_ALLOC_OK_RE = re.compile(r"\bDMT_ALLOC_OK\s*\(\s*(\"(?:[^\"\\]|\\.)*\")?", re.S)
_ATOMIC_PUBLISH_RE = re.compile(r"\bDMT_ATOMIC_PUBLISH\b")
_ATOMIC_COUNTER_RE = re.compile(r"\bDMT_ATOMIC_COUNTER\b")
_GUARDED_BY_ANY_RE = re.compile(r"\bDMT_GUARDED_BY\b")
_GUARDED_BY_RE = re.compile(
    r"\bDMT_GUARDED_BY\s*\(\s*([A-Za-z_][A-Za-z0-9_]*)\s*\)")
_WRITER_SIDE_RE = re.compile(r"\bDMT_WRITER_SIDE\b")
_UNTRUSTED_RE = re.compile(r"\bDMT_UNTRUSTED_INPUT\b")
_ALLOW_RE = re.compile(r"//\s*dmt-lint:\s*allow\(([a-z0-9-]+)\)\s*:?\s*(.*)")
_LINE_COMMENT_RE = re.compile(r"//.*")
_NOALIAS_TOKEN_RE = re.compile(r"\bDMT_NOALIAS\b")
# Field-level annotation tokens, stripped to decide whether a line is
# annotation-only (may bind downward) or carries other code (binds its own
# line only, and stops an upward scan).
_FIELD_ANNOT_STRIP_RE = re.compile(
    r"\bDMT_ATOMIC_PUBLISH\b|\bDMT_ATOMIC_COUNTER\b"
    r"|\bDMT_GUARDED_BY\s*\([^)]*\)")
_NAME_BEFORE_PAREN_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*$")

_OPEN = {"(": ")", "[": "]", "{": "}", "<": ">"}
_CLOSE = {v: k for k, v in _OPEN.items()}

_COMMENT_RE = re.compile(r"//[^\n]*|/\*.*?\*/", re.S)


def _blank_comments(text):
    """Replace comment bodies with spaces, preserving every offset and
    newline, so lexical scans never match tokens inside comments."""
    def blank(m):
        return "".join(c if c == "\n" else " " for c in m.group(0))
    return _COMMENT_RE.sub(blank, text)


def _split_params(text):
    """Split a parameter-list body at top-level commas, tracking nesting."""
    parts = []
    depth = 0
    start = 0
    for i, c in enumerate(text):
        if c in _OPEN:
            depth += 1
        elif c in _CLOSE:
            depth = max(0, depth - 1)
        elif c == "," and depth == 0:
            parts.append(text[start:i])
            start = i + 1
    parts.append(text[start:])
    return parts


class NoAliasDecl:
    """A function declaration whose parameter list carries DMT_NOALIAS."""

    __slots__ = ("file", "line", "name", "params")

    def __init__(self, file, line, name, params):
        self.file = file
        self.line = line      # line of the '(' opening the parameter list
        self.name = name      # unqualified function name
        self.params = params  # list of (position, writable)

    def __repr__(self):
        return "noalias %s@%s:%d %r" % (self.name, self.file, self.line,
                                        self.params)


class Annotation:
    __slots__ = ("kind", "file", "line", "check_id", "reason", "bound")

    def __init__(self, kind, file, line, check_id=None, reason=None):
        self.kind = kind  # "no_alloc" | "alloc_ok" | "allow"
        self.file = file
        self.line = line
        self.check_id = check_id
        self.reason = reason
        self.bound = False

    def __repr__(self):
        return "%s@%s:%d" % (self.kind, self.file, self.line)


class FileAnnotations:
    def __init__(self, path):
        self.path = path
        self.no_alloc = {}  # line -> Annotation
        self.alloc_ok = {}  # line -> Annotation
        self.allows = []    # list of Annotation (kind="allow")
        self.noalias = {}   # (name, line) -> NoAliasDecl
        self.atomic_class = {}  # line -> Annotation (atomic_publish/_counter)
        self.guarded = {}       # line -> Annotation (reason = guard name)
        self.writer_side = {}   # line -> Annotation
        self.untrusted = {}     # line -> Annotation
        self.errors = []    # (line, message) for malformed annotations
        self._line_code = {}  # line -> comment-stripped code text
        self._scan()

    def _scan(self):
        try:
            with open(self.path, "r", errors="replace") as f:
                text = f.read()
        except OSError:
            return
        lines = text.splitlines(keepends=True)
        self._scan_noalias(_blank_comments(text))
        for i, raw in enumerate(lines, 1):
            cm = _LINE_COMMENT_RE.search(raw)
            comment = cm.group(0) if cm else ""
            code = raw[: cm.start()] if cm else raw

            am = _ALLOW_RE.search(comment)
            if am:
                reason = am.group(2).strip()
                if not reason:
                    self.errors.append(
                        (i, "dmt-lint allow(%s) needs a reason after the colon"
                         % am.group(1)))
                else:
                    self.allows.append(
                        Annotation("allow", self.path, i, am.group(1), reason))

            self._line_code[i] = code
            if not code.lstrip().startswith("#"):  # skip the #define lines
                self._scan_concurrency_line(i, code)

            okm = _ALLOC_OK_RE.search(code)
            # Search for DMT_NO_ALLOC outside any DMT_ALLOC_OK("...") span,
            # so a reason string mentioning the other macro cannot bind.
            code_wo_ok = code if okm is None else (
                code[: okm.start()] + code[okm.end():])
            if _NO_ALLOC_RE.search(code_wo_ok):
                self.no_alloc[i] = Annotation("no_alloc", self.path, i)
            if okm:
                lit = okm.group(1)
                if not lit or lit == '""':
                    self.errors.append(
                        (i, "DMT_ALLOC_OK requires a non-empty reason string"))
                else:
                    self.alloc_ok[i] = Annotation(
                        "alloc_ok", self.path, i, reason=lit.strip('"'))

    def _scan_concurrency_line(self, i, code):
        """Annotations of the atomics/guard/untrusted families on line i."""
        pub = _ATOMIC_PUBLISH_RE.search(code)
        cnt = _ATOMIC_COUNTER_RE.search(code)
        if pub and cnt:
            self.errors.append(
                (i, "a field cannot be both DMT_ATOMIC_PUBLISH and "
                 "DMT_ATOMIC_COUNTER"))
        elif pub:
            self.atomic_class[i] = Annotation("atomic_publish", self.path, i)
        elif cnt:
            self.atomic_class[i] = Annotation("atomic_counter", self.path, i)
        if _GUARDED_BY_ANY_RE.search(code):
            gm = _GUARDED_BY_RE.search(code)
            if gm is None:
                self.errors.append(
                    (i, "DMT_GUARDED_BY needs a guard name — a mutex member "
                     "(DMT_GUARDED_BY(mutex_)) or the single-writer role "
                     "(DMT_GUARDED_BY(writer))"))
            else:
                self.guarded[i] = Annotation("guarded_by", self.path, i,
                                             reason=gm.group(1))
        if _WRITER_SIDE_RE.search(code):
            self.writer_side[i] = Annotation("writer_side", self.path, i)
        if _UNTRUSTED_RE.search(code):
            self.untrusted[i] = Annotation("untrusted", self.path, i)

    def _scan_noalias(self, text):
        """Parse every parameter list containing DMT_NOALIAS into a
        NoAliasDecl. Purely lexical: the restrict qualifier the macro
        expands to does not survive into GCC's GENERIC dump."""
        for m in _NOALIAS_TOKEN_RE.finditer(text):
            line_at = text.count("\n", 0, m.start()) + 1
            # Walk back to the '(' opening the enclosing parameter list.
            depth = 0
            i = m.start() - 1
            while i >= 0:
                c = text[i]
                if c == ")":
                    depth += 1
                elif c == "(":
                    if depth == 0:
                        break
                    depth -= 1
                i -= 1
            if i < 0:
                self.errors.append(
                    (line_at, "DMT_NOALIAS outside a parameter list"))
                continue
            open_paren = i
            nm = _NAME_BEFORE_PAREN_RE.search(text[:open_paren])
            if nm is None:
                self.errors.append(
                    (line_at,
                     "cannot find the function name before the DMT_NOALIAS "
                     "parameter list"))
                continue
            name = nm.group(1)
            depth = 0
            j = open_paren
            while j < len(text):
                if text[j] == "(":
                    depth += 1
                elif text[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            if depth != 0:
                self.errors.append(
                    (line_at, "unbalanced DMT_NOALIAS parameter list"))
                continue
            params = []
            for idx, ptext in enumerate(
                    _split_params(text[open_paren + 1:j])):
                if not _NOALIAS_TOKEN_RE.search(ptext):
                    continue
                head = ptext.split("*", 1)[0]
                writable = not re.search(r"\bconst\b", head)
                params.append((idx, writable))
            line = text.count("\n", 0, open_paren) + 1
            self.noalias[(name, line)] = NoAliasDecl(
                self.path, line, name, params)

    def noalias_for(self, name, line, window):
        """The NoAliasDecl for a call to `name` whose resolved decl srcp is
        `line` (parameter list opens within `window` lines below it)."""
        best = None
        for (nm, ln), decl in self.noalias.items():
            if nm != name or not (line <= ln <= line + window):
                continue
            if best is None or abs(decl.line - line) < abs(best.line - line):
                best = decl
        return best

    # ---- binding ------------------------------------------------------

    def annotation_for_decl(self, line):
        """The no_alloc/alloc_ok annotation binding a function whose
        definition signature starts at `line` (macro on the line itself or
        up to BIND_WINDOW-1 lines above), or None."""
        for delta in range(0, BIND_WINDOW):
            a = self.no_alloc.get(line - delta)
            if a is not None:
                a.bound = True
                return a
            a = self.alloc_ok.get(line - delta)
            if a is not None:
                a.bound = True
                return a
        return None

    def _field_annotation_at(self, table, line):
        """The field annotation from `table` binding a field declared at
        `line`: on the field's own line, or on an annotation-only line up
        to BIND_WINDOW lines above with nothing but blank/comment lines in
        between (an intervening code line — another field, a brace — stops
        the upward scan so one field's same-line annotation can never leak
        onto a later field)."""
        a = table.get(line)
        if a is not None:
            a.bound = True
            return a
        for l in range(line - 1, max(0, line - BIND_WINDOW) - 1, -1):
            code = self._line_code.get(l, "")
            rest = _FIELD_ANNOT_STRIP_RE.sub(" ", code).strip()
            a = table.get(l)
            if a is not None and not rest:
                a.bound = True
                return a
            if rest:
                break
        return None

    def atomic_class_at(self, line):
        """The atomic classification ("publish"/"counter") covering a field
        declared at `line`, or None."""
        a = self._field_annotation_at(self.atomic_class, line)
        if a is None:
            return None
        return "publish" if a.kind == "atomic_publish" else "counter"

    def guard_at(self, line):
        """The DMT_GUARDED_BY guard name covering a field declared at
        `line`, or None."""
        a = self._field_annotation_at(self.guarded, line)
        return None if a is None else a.reason

    def allows_at(self, check_id, line):
        """True if an allow(<check_id>) comment covers `line`. The window
        starts one line above the comment: only expr_stmt nodes carry line
        info in the dump, so a finding inside a multi-line statement can be
        attributed to the preceding statement's line."""
        for a in self.allows:
            if a.check_id == check_id and a.line - 1 <= line < a.line + BIND_WINDOW + 1:
                a.bound = True
                return True
        return False


class AnnotationIndex:
    def __init__(self):
        self._files = {}

    def for_file(self, path):
        fa = self._files.get(path)
        if fa is None:
            fa = FileAnnotations(path)
            self._files[path] = fa
        return fa

    def files(self):
        return self._files.values()
