"""dmt_lint command line driver.

Modes:
  dmt_lint [paths...]    lint repo sources (default: every .cc under src/),
                         using build/compile_commands.json flags when
                         present, else -std=c++17 -I src.
  dmt_lint --selftest    compile and check every fixture under
                         tools/lint/testdata/ against its EXPECT comments.
  dmt_lint --list-fixtures
                         print the fixture files the selftest covers (used
                         by tools/check_test_registration.sh).

Exit codes: 0 clean, 1 findings / selftest mismatch, 2 usage or
environment error (e.g. the compiler front end failed).
"""

import argparse
import glob
import json
import os
import re
import shlex
import subprocess
import sys
import tempfile

from . import gcc_ast
from .annotations import AnnotationIndex
from .checks import Analyzer, build_file_index

_EXPECT_RE = re.compile(r"//\s*EXPECT-FINDING:\s*([a-z0-9-]+)(?:\s+fn=(\S+))?")
_EXPECT_CLEAN_RE = re.compile(r"//\s*EXPECT-CLEAN\b")


def repo_root_from_tool():
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(here, "..", "..", ".."))


def testdata_dir():
    return os.path.join(repo_root_from_tool(), "tools", "lint", "testdata")


def find_compile_commands(root):
    for cand in ("build", "build-debug", "build-release", "out", "."):
        p = os.path.join(root, cand, "compile_commands.json")
        if os.path.exists(p):
            return p
    return None


def load_compile_commands(path):
    table = {}
    with open(path) as f:
        for entry in json.load(f):
            args = entry.get("arguments")
            if args is None:
                args = shlex.split(entry.get("command", ""))
            src = entry.get("file", "")
            if not os.path.isabs(src):
                src = os.path.normpath(os.path.join(entry.get("directory", "."), src))
            table[os.path.normpath(src)] = (args, entry.get("directory"))
    return table


def default_args(root, cxx):
    return [cxx, "-std=c++17", "-I", os.path.join(root, "src")]


def lint_sources(sources, root, cxx, scope_all=False, verbose=False):
    cc_path = find_compile_commands(root)
    cc_table = load_compile_commands(cc_path) if cc_path else {}
    ann = AnnotationIndex()
    index = build_file_index(root, extra_files=[os.path.abspath(s)
                                               for s in sources])
    analyzer = Analyzer(root, ann, file_index=index, scope_all=scope_all)
    failures = []
    with tempfile.TemporaryDirectory(prefix="dmtlint.") as workdir:
        for src in sources:
            src = os.path.abspath(src)
            args, cwd = cc_table.get(os.path.normpath(src), (None, None))
            if args is None:
                args = default_args(root, cxx)
                cwd = root
            if verbose:
                print("  [dmt_lint] parsing %s" % os.path.relpath(src, root),
                      file=sys.stderr)
            try:
                tu = gcc_ast.parse_tu(src, args, workdir=workdir, cwd=cwd)
            except gcc_ast.DumpError as e:
                failures.append(str(e))
                continue
            analyzer.add_tu(tu)
    findings = analyzer.finish()
    return findings, failures, analyzer


def run_lint(opts):
    root = os.path.abspath(opts.root)
    if opts.paths:
        sources = []
        for p in opts.paths:
            if os.path.isdir(p):
                sources += sorted(glob.glob(os.path.join(p, "**", "*.cc"),
                                            recursive=True))
            else:
                sources.append(p)
    else:
        sources = sorted(glob.glob(os.path.join(root, "src", "**", "*.cc"),
                                   recursive=True))
    if not sources:
        print("dmt_lint: no sources to lint", file=sys.stderr)
        return 2
    findings, failures, _ = lint_sources(
        sources, root, opts.cxx, scope_all=opts.scope_all, verbose=opts.verbose)
    for msg in failures:
        print("dmt_lint: ERROR: %s" % msg, file=sys.stderr)
    for f in findings:
        try:
            shown = os.path.relpath(f.file, root)
        except ValueError:
            shown = f.file
        print("%s:%d: [%s] %s: %s" % (shown, f.line, f.check_id, f.function,
                                      f.message))
    n = len(findings)
    print("dmt_lint: %d finding%s over %d source file%s"
          % (n, "" if n == 1 else "s", len(sources),
             "" if len(sources) == 1 else "s"), file=sys.stderr)
    if failures:
        return 2
    return 1 if findings else 0


# ---------------------------------------------------------------------------
# Selftest over tools/lint/testdata fixtures
# ---------------------------------------------------------------------------

def fixture_files():
    return sorted(glob.glob(os.path.join(testdata_dir(), "*.cc")))


def parse_expectations(path):
    expects = []
    clean = False
    with open(path) as f:
        for line in f:
            m = _EXPECT_RE.search(line)
            if m:
                expects.append((m.group(1), m.group(2) or ""))
            elif _EXPECT_CLEAN_RE.search(line):
                clean = True
    return expects, clean


def compiler_is_gcc(cxx):
    """True if `cxx` is real GCC (defines __GNUC__ without __clang__).
    The AST backend reads -fdump-tree-original-raw output, which only GCC
    produces."""
    try:
        out = subprocess.run(
            [cxx, "-E", "-dM", "-x", "c++", os.devnull],
            capture_output=True, text=True, timeout=60).stdout
    except (OSError, subprocess.SubprocessError):
        return False
    return "__GNUC__" in out and "__clang__" not in out


def run_selftest(opts):
    root = repo_root_from_tool()
    if not compiler_is_gcc(opts.cxx):
        print("dmt_lint --selftest: SKIP: %s is not GCC (the AST backend "
              "needs -fdump-tree-original-raw)" % opts.cxx, file=sys.stderr)
        return 77
    fixtures = fixture_files()
    if not fixtures:
        print("dmt_lint --selftest: no fixtures under %s" % testdata_dir(),
              file=sys.stderr)
        return 2
    failed = 0
    for fx in fixtures:
        expects, clean = parse_expectations(fx)
        if not expects and not clean:
            print("FAIL %s: fixture declares no EXPECT-FINDING/EXPECT-CLEAN"
                  % os.path.basename(fx))
            failed += 1
            continue
        findings, failures, _ = lint_sources(
            [fx], root, opts.cxx, scope_all=True, verbose=opts.verbose)
        findings = [f for f in findings
                    if os.path.normpath(f.file) == os.path.normpath(fx)]
        problems = []
        for msg in failures:
            problems.append("front end error: %s" % msg)
        if clean and findings:
            for f in findings:
                problems.append("unexpected finding: %s" % f.render())
        for check_id, fn_substr in expects:
            hit = any(f.check_id == check_id and fn_substr in f.function
                      for f in findings)
            if not hit:
                problems.append("missing expected finding: %s fn=%s"
                                % (check_id, fn_substr or "<any>"))
        expected_ids = {e[0] for e in expects}
        for f in findings:
            if not clean and f.check_id not in expected_ids:
                problems.append("unexpected finding: %s" % f.render())
        if problems:
            failed += 1
            print("FAIL %s" % os.path.basename(fx))
            for p in problems:
                print("     %s" % p)
        else:
            tag = "clean" if clean else "%d expected finding(s)" % len(expects)
            print("PASS %s (%s)" % (os.path.basename(fx), tag))
    print("dmt_lint --selftest: %d/%d fixtures pass"
          % (len(fixtures) - failed, len(fixtures)))
    return 1 if failed else 0


def main(argv=None):
    ap = argparse.ArgumentParser(prog="dmt_lint", description=__doc__)
    ap.add_argument("paths", nargs="*", help="files or directories to lint")
    ap.add_argument("--root", default=repo_root_from_tool(),
                    help="repository root (default: autodetected)")
    ap.add_argument("--cxx", default=os.environ.get("CXX", "g++"),
                    help="compiler used to produce AST dumps (must be GCC)")
    ap.add_argument("--selftest", action="store_true",
                    help="run the fixture-based self test")
    ap.add_argument("--list-fixtures", action="store_true",
                    help="print selftest fixture files, one per line")
    ap.add_argument("--scope-all", action="store_true",
                    help="apply the directory-scoped checks (determinism, "
                         "atomics discipline) to every linted file, not "
                         "just their default directories")
    ap.add_argument("--verbose", action="store_true")
    opts = ap.parse_args(argv)

    if opts.list_fixtures:
        for fx in fixture_files():
            print(os.path.basename(fx))
        return 0
    if opts.selftest:
        return run_selftest(opts)
    return run_lint(opts)
