"""GENERIC-AST access: dump generation, parsing, and traversal.

A raw tree dump is a sequence of per-function sections:

    ;; Function void dmt::linalg::kernels::Gemm(...) (null)
    ;; enabled by -tree-original

    @1  bind_expr  type: @2  body: @3
    @2  void_type  name: @4  algn: 8
    ...

Node numbering restarts per section. Fields are `key: value` pairs where a
key may contain a space ("op 0") or be a bare index (statement_list), values
are `@refs`, numbers, or words, and long nodes wrap onto indented
continuation lines. String payloads print as `strg: <text> lngt: <n>`.

Facts this module relies on (verified against GCC 12 dumps):
  * the section header's pretty signature is the only reliable identity of
    the section's own function; the matching function_decl node appears in
    the section when any of its locals/parms/result are referenced, and its
    srcp names the definition site;
  * constructors/destructors are identifier `__ct`/`__ct_comp`/`__ct_base` /
    `__dt*`; operator functions have an identifier_node with `note: operator`
    and no strg;
  * operator new / new[] are function_decls with `note: operator`, srcp in
    the <new> header, and a pointer return type;
  * `__restrict__` parameters show as `qual: r` on the pointer_type in the
    function_type's prms list;
  * loops are genericized to goto/label form: a goto_expr that targets an
    already-visited label_decl is a loop backedge.
"""

import os
import re
import subprocess
import tempfile

_SECTION_RE = re.compile(r"^;; Function (.*) \((?:null|\*?0x[0-9a-f]+|[^)]*)\)\s*$", re.M)
_NODE_START_RE = re.compile(r"^@(\d+)\s+(\S+)\s*(.*)$")
# A field key: "name", "op 0", bare "0" (statement_list), padded with spaces
# before the colon ("fn  : @20", "min : @23"). The lookahead requires a
# value so "h:311" inside srcp paths does not match.
_FIELD_RE = re.compile(r"(?:(?<=\s)|^)((?:[a-z_]+(?: \d+)?)|\d+)\s*: (?=\S)")
_STRG_RE = re.compile(r"strg: (.*?)\s+lngt: (-?\d+)")

# Field keys whose @refs are structural children for the body walk. Keys
# like type/scpe/srcp lead into the type/scope graphs and are followed only
# on demand by the name-resolution helpers.
_WALK_KEYS = frozenset(
    ["body", "expr", "init", "cond", "then", "else", "vars", "decl", "fn",
     "valu", "chan", "labl", "stmt", "low", "high"]
)
# Node kinds the body walk never descends into.
_WALK_STOP_KINDS = frozenset(
    ["function_decl", "identifier_node", "namespace_decl", "type_decl",
     "translation_unit_decl", "field_decl", "label_decl", "const_decl",
     "template_decl", "using_decl"]
)


class Node:
    __slots__ = ("nid", "kind", "fields")

    def __init__(self, nid, kind, fields):
        self.nid = nid
        self.kind = kind
        self.fields = fields  # list of (key, value) preserving order

    def get(self, key):
        for k, v in self.fields:
            if k == key:
                return v
        return None

    def get_all(self, key):
        return [v for k, v in self.fields if k == key]

    def ref(self, key):
        v = self.get(key)
        if v is not None and v.startswith("@"):
            return int(v[1:])
        return None

    def refs(self, key_prefix=None):
        out = []
        for k, v in self.fields:
            if v.startswith("@") and (key_prefix is None or k.startswith(key_prefix)):
                out.append((k, int(v[1:])))
        return out

    def has_note(self, word):
        return any(k == "note" and v == word for k, v in self.fields)

    def __repr__(self):
        return "@%d %s" % (self.nid, self.kind)


class Section:
    """One function's dump: pretty signature + node graph."""

    def __init__(self, pretty, nodes, tu):
        self.pretty = pretty
        self.nodes = nodes  # dict[int, Node]
        self.tu = tu
        self._owner = _MISSING

    def node(self, ref):
        return self.nodes.get(ref)

    # ---- identity -----------------------------------------------------

    def owner_decl(self):
        """The function_decl node of this section's own function, if dumped."""
        if self._owner is not _MISSING:
            return self._owner
        self._owner = self._find_owner()
        return self._owner

    def _find_owner(self):
        want = qname_from_pretty(self.pretty, self.tu.anon_tag).rsplit("::", 1)[-1]
        is_lambda = "::<lambda" in self.pretty
        named, scoped = [], []
        for n in self.nodes.values():
            if n.kind != "function_decl":
                continue
            comp = decl_name_component(self, n)
            if is_lambda:
                if n.has_note("operator") and n.has_note("artificial"):
                    named.append(n)
                continue
            if comp == want or (want.startswith("~") and comp == want):
                named.append(n)
        if not named:
            return None
        if len(named) > 1:
            # Disambiguate: the owner is the scpe of this section's local
            # var_decls / result_decl (callee locals are never dumped).
            owners = set()
            for n in self.nodes.values():
                if n.kind in ("var_decl", "result_decl"):
                    s = n.ref("scpe")
                    if s is not None:
                        owners.add(s)
            scoped = [n for n in named if n.nid in owners]
        pick = scoped or named
        return min(pick, key=lambda n: n.nid)

    def owner_srcp(self):
        d = self.owner_decl()
        return srcp_of(d) if d is not None else (None, None)

    def qname(self):
        return qname_from_pretty(self.pretty, self.tu.anon_tag)

    def lambda_parent_qname(self):
        """For a <lambda> section, the enclosing function's qname."""
        i = self.pretty.find("::<lambda")
        if i < 0:
            return None
        return qname_from_pretty(self.pretty[:i], self.tu.anon_tag)


_MISSING = object()


class TU:
    """All sections of one translation unit's dump."""

    def __init__(self, source, dump_text):
        self.source = source
        self.anon_tag = "(anon@%s)" % os.path.basename(source)
        self.sections = []
        parts = _SECTION_RE.split(dump_text)
        # parts: [preamble, pretty1, body1, pretty2, body2, ...]
        for i in range(1, len(parts) - 1, 2):
            pretty = parts[i].strip()
            nodes = _parse_nodes(parts[i + 1])
            if nodes:
                self.sections.append(Section(pretty, nodes, self))


def _parse_nodes(body_text):
    nodes = {}
    cur = None
    for raw in body_text.splitlines():
        if not raw:
            continue
        m = _NODE_START_RE.match(raw)
        if m:
            if cur is not None:
                _finish_node(nodes, cur)
            cur = [int(m.group(1)), m.group(2), m.group(3)]
        elif cur is not None and raw[0] in " \t":
            cur[2] += " " + raw.strip()
        else:
            cur = None  # ";; enabled by" etc.
    if cur is not None:
        _finish_node(nodes, cur)
    return nodes


def _finish_node(nodes, cur):
    nid, kind, text = cur
    fields = []
    sm = _STRG_RE.search(text)
    if sm is not None:
        # Cut the string payload out first so its content (which may
        # contain "word: value" shapes) cannot confuse the field scanner.
        fields.append(("strg", sm.group(1)))
        fields.append(("lngt", sm.group(2)))
        text = text[: sm.start()] + " " + text[sm.end():]
    marks = list(_FIELD_RE.finditer(text))
    for i, m in enumerate(marks):
        end = marks[i + 1].start() if i + 1 < len(marks) else len(text)
        fields.append((m.group(1), text[m.end():end].strip()))
    nodes[nid] = Node(nid, kind, fields)


# ---------------------------------------------------------------------------
# Name resolution
# ---------------------------------------------------------------------------

def srcp_of(node):
    """(file, line) of a decl, or (None, None)."""
    if node is None:
        return (None, None)
    v = node.get("srcp")
    if not v or ":" not in v:
        return (None, None)
    f, _, l = v.rpartition(":")
    try:
        return (f, int(l))
    except ValueError:
        return (None, None)


def identifier_of(section, ref):
    n = section.node(ref)
    if n is None:
        return None
    if n.kind == "identifier_node":
        return n.get("strg")
    if n.kind == "type_decl":
        return identifier_of(section, n.ref("name"))
    return None


def decl_name_component(section, decl):
    """Last-component name for a decl; ctors/dtors map to Class / ~Class."""
    name = identifier_of(section, decl.ref("name"))
    if name is not None:
        name = name.strip()
    if name is not None and name.startswith("__ct"):
        cls = _scope_class_name(section, decl)
        return cls if cls else name
    if name is not None and name.startswith("__dt"):
        cls = _scope_class_name(section, decl)
        return ("~" + cls) if cls else name
    if name is None:
        nref = decl.ref("name")
        nnode = section.node(nref) if nref is not None else None
        if nnode is not None and nnode.has_note("operator"):
            return "<op>"
        return "?"
    return name


def _scope_class_name(section, decl):
    s = section.node(decl.ref("scpe")) if decl.ref("scpe") is not None else None
    if s is not None and s.kind.endswith("_type"):
        return identifier_of(section, s.ref("name"))
    return None


def scope_chain(section, decl, depth=0):
    """Qualified-name components of a decl's enclosing scopes (outermost
    first), template arguments stripped (the dump names instantiated
    records by their template identifier)."""
    if depth > 12:
        return ["?"]
    ref = decl.ref("scpe")
    if ref is None:
        return []
    s = section.node(ref)
    if s is None:
        return []
    if s.kind == "translation_unit_decl":
        return []
    if s.kind == "namespace_decl":
        name = identifier_of(section, s.ref("name"))
        parent = scope_chain(section, s, depth + 1)
        if name is None or name == "::":
            return parent if name == "::" else parent + [section.tu.anon_tag]
        return parent + [name]
    if s.kind.endswith("_type"):
        name_ref = s.ref("name")
        tdecl = section.node(name_ref) if name_ref is not None else None
        comp = identifier_of(section, name_ref) or "?"
        parent = scope_chain(section, tdecl, depth + 1) if tdecl is not None and tdecl.kind == "type_decl" else []
        return parent + [comp]
    if s.kind == "function_decl":
        return scope_chain(section, s, depth + 1) + [decl_name_component(section, s)]
    return []


def fdecl_qname(section, fdecl):
    return "::".join(scope_chain(section, fdecl) + [decl_name_component(section, fdecl)])


def strip_template_args(s):
    out = []
    depth = 0
    for ch in s:
        if ch == "<":
            depth += 1
        elif ch == ">":
            if depth > 0:
                depth -= 1
                continue
        if depth == 0:
            out.append(ch)
    return "".join(out)


def qname_from_pretty(pretty, anon_tag):
    """Normalize a section header's pretty signature to a qualified name
    comparable with fdecl_qname output."""
    s = pretty
    i = s.find(" [with ")
    if i >= 0:
        s = s[:i]
    s = s.strip()
    for suf in (" const", " volatile", " &&", " &", " noexcept"):
        while s.endswith(suf):
            s = s[: -len(suf)]
    # Drop the parameter list: the last balanced (...) group — unless what
    # precedes it is the name "operator()" itself.
    if s.endswith(")") and not s.endswith("operator()"):
        depth = 0
        for j in range(len(s) - 1, -1, -1):
            if s[j] == ")":
                depth += 1
            elif s[j] == "(":
                depth -= 1
                if depth == 0:
                    if s[:j].endswith("operator"):
                        break  # "operator()" — keep it
                    s = s[:j]
                    break
    s = strip_template_args(s)
    s = s.replace("{anonymous}", anon_tag)
    # The last whitespace-separated token is the qualified name (return
    # type and specifiers precede it; template args are already gone).
    return s.split()[-1] if s.split() else s


# ---------------------------------------------------------------------------
# Body traversal
# ---------------------------------------------------------------------------

class Visit:
    __slots__ = ("node", "line", "index")

    def __init__(self, node, line, index):
        self.node = node
        self.line = line
        self.index = index


def body_root(section):
    """The section's body root: by construction node @1."""
    return section.nodes.get(1)


def walk_body(section):
    """In-order DFS over a section's statement tree.

    Returns (visits, backedges):
      visits    — list of Visit in traversal order, each with the closest
                  preceding source line (from `line:` fields / local srcp);
      backedges — list of (start_index, end_index) visit-index ranges, one
                  per goto that targets an already-visited label (i.e. one
                  per genericized loop).
    """
    root = body_root(section)
    visits = []
    backedges = []
    if root is None:
        return visits, backedges
    seen = set()
    label_first = {}
    line = 0
    stack = [root.nid]
    while stack:
        ref = stack.pop()
        if ref in seen:
            continue
        seen.add(ref)
        node = section.node(ref)
        if node is None:
            continue
        lf = node.get("line")
        if lf is not None:
            try:
                line = int(lf)
            except ValueError:
                pass
        elif node.kind in ("var_decl", "parm_decl"):
            f, l = srcp_of(node)
            if l and f and os.path.basename(f) == os.path.basename(section.tu.source):
                line = l
        v = Visit(node, line, len(visits))
        visits.append(v)
        if node.kind == "label_expr":
            lref = node.ref("name")
            if lref is not None and lref not in label_first:
                label_first[lref] = v.index
        elif node.kind == "goto_expr":
            lref = node.ref("labl")
            if lref is not None and lref in label_first:
                backedges.append((label_first[lref], v.index))
        children = []
        for k, cref in node.refs():
            base = k.split(" ")[0]
            if not (k.isdigit() or base == "op" or k in _WALK_KEYS):
                continue
            child = section.node(cref)
            if child is None or child.kind in _WALK_STOP_KINDS:
                continue
            if child.kind.endswith("_type") or child.kind.endswith("_cst"):
                continue
            children.append(cref)
        # push reversed so field order is preserved in traversal order
        for cref in reversed(children):
            stack.append(cref)
    return visits, backedges


def resolve_callee(section, call_node):
    """The function_decl a call_expr/aggr_init_expr targets, or None for
    indirect calls (function pointers, virtual dispatch)."""
    fref = call_node.ref("fn")
    if fref is None:
        return None
    f = section.node(fref)
    hops = 0
    while f is not None and hops < 4:
        if f.kind == "function_decl":
            return f
        if f.kind in ("addr_expr", "nop_expr", "convert_expr", "non_lvalue_expr"):
            nref = f.ref("op 0")
            f = section.node(nref) if nref is not None else None
            hops += 1
            continue
        return None  # var/parm/component (fn pointer) or obj_type_ref (virtual)
    return None


def call_args(call_node):
    """Argument @refs of a call, in positional order."""
    out = []
    for k, v in call_node.fields:
        if k.isdigit() and v.startswith("@"):
            out.append((int(k), int(v[1:])))
    return [r for _, r in sorted(out)]


_STRIP_WRAPPERS = frozenset(
    ["nop_expr", "convert_expr", "non_lvalue_expr", "float_expr",
     "fix_trunc_expr", "view_convert_expr", "cleanup_point_expr",
     "save_expr"]
)


def strip_wrappers(section, ref, limit=8):
    for _ in range(limit):
        n = section.node(ref)
        if n is None or n.kind not in _STRIP_WRAPPERS:
            return ref
        nref = n.ref("op 0") if n.get("op 0") is not None else n.ref("expr")
        if nref is None:
            return ref
        ref = nref
    return ref


def structural_key(section, ref, depth=0):
    """A hashable structural fingerprint of an expression: two identical
    fingerprints mean the expressions compute the same lvalue/rvalue
    (decl references compare by node identity, constants by value)."""
    if depth > 16:
        return ("...",)
    ref = strip_wrappers(section, ref)
    n = section.node(ref)
    if n is None:
        return ("?", ref)
    if n.kind in ("var_decl", "parm_decl", "result_decl", "field_decl", "function_decl"):
        return ("decl", n.nid)
    if n.kind.endswith("_cst"):
        return (n.kind, n.get("int"), n.get("strg"), n.get("valu"))
    parts = [n.kind]
    for k, v in n.fields:
        base = k.split(" ")[0]
        if not (k.isdigit() or base in ("op", "fn", "expr", "decl", "valu")):
            continue
        if v.startswith("@"):
            parts.append((k, structural_key(section, int(v[1:]), depth + 1)))
        else:
            parts.append((k, v))
    return tuple(parts)


# ---------------------------------------------------------------------------
# Dump generation
# ---------------------------------------------------------------------------

class DumpError(RuntimeError):
    pass


def generate_dump(source, base_args, workdir, cwd=None):
    """Run the compiler front end on `source`, returning the raw GENERIC
    dump text. `base_args` is the argv of the real compile command (or a
    default); codegen-affecting tail flags are overridden so the dump is
    always produced at -O0 with warnings silenced."""
    dump_path = os.path.join(
        workdir, re.sub(r"[^A-Za-z0-9_.]", "_", os.path.basename(source)) + ".dump"
    )
    args = []
    skip = False
    for a in base_args:
        if skip:
            skip = False
            continue
        if a in ("-o", "-MF", "-MT", "-MQ"):
            skip = True
            continue
        if a in ("-c", "-S", "-E", "-MD", "-MMD", "-M", "-MM", "-MP"):
            continue
        if a.startswith("-fdump-"):
            continue
        if a == source or os.path.abspath(a) == os.path.abspath(source):
            continue
        args.append(a)
    # -S (not -fsyntax-only): the dump is written at gimplification, which
    # never runs under -fsyntax-only. -O0 keeps the front end fast; it does
    # not change the GENERIC tree shape.
    args += [
        "-w", "-O0", "-S", "-o", os.devnull,
        "-fdump-tree-original-raw=" + dump_path, source,
    ]
    proc = subprocess.run(
        args, cwd=cwd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    if proc.returncode != 0:
        raise DumpError(
            "front end failed for %s:\n%s" % (source, proc.stderr.strip()[:4000])
        )
    try:
        with open(dump_path, "r", errors="replace") as f:
            return f.read()
    except OSError as e:
        raise DumpError("no dump produced for %s: %s" % (source, e))


def parse_tu(source, base_args, workdir=None, cwd=None):
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="dmtlint.") as td:
            text = generate_dump(source, base_args, td, cwd=cwd)
            return TU(source, text)
    text = generate_dump(source, base_args, workdir, cwd=cwd)
    return TU(source, text)
