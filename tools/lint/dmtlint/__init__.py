"""dmt_lint: repo-specific static analysis over GCC GENERIC tree dumps.

Three check families enforce the repo's machine-checked contracts (see
docs/ARCHITECTURE.md "Machine-checked contracts" and tools/lint/README.md):

  * determinism-*      — protocol/sketch code must be replay-deterministic
  * noalloc-*          — DMT_NO_ALLOC hot paths must not reach an allocation
  * noalias-*          — DMT_NOALIAS kernel buffers must not be passed twice

The AST backend is GCC's GENERIC dump (-fdump-tree-original-raw): the real
front-end tree after template instantiation and overload resolution, before
gimplification. No regexes over source text are used for the checks
themselves; lexical scanning is used only to locate annotation macros and
suppression comments (which the compiler erases or cannot see).
"""

__version__ = "1.0"
