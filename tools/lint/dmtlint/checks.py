"""The three dmt_lint check families.

Check IDs (stable; used in suppression comments and fixtures):

  determinism-banned-call   — RNG / wall-clock / thread-id calls in
                              protocol code (src/stream, src/hh,
                              src/matrix, src/sketch, src/core, src/net)
  determinism-unordered-iter— iterating an unordered container in
                              protocol code (emission order would leak
                              hash-table layout into protocol state)
  determinism-thread-fp     — thread-count queries and floating-point
                              accumulation whose order depends on a
                              thread/worker-count loop
  noalloc-violation         — an allocation (or unverifiable indirect
                              call) reachable from a DMT_NO_ALLOC function
  noalias-duplicate-arg     — the same buffer passed to two DMT_NOALIAS
                              (__restrict__) parameters, at least one
                              written through
  annotation-error          — malformed or unbindable annotations

Suppression: `// dmt-lint: allow(<check-id>): <reason>` on or up to
BIND_WINDOW lines above the flagged line, or on the owning function's
signature to cover the whole function.
"""

import os
import re

from . import gcc_ast
from .annotations import BIND_WINDOW

DETERMINISM_DIRS = (
    "src/stream", "src/hh", "src/matrix", "src/sketch", "src/core",
    "src/net", "src/serve",
)

# Individual files swept in addition to the directories above. src/util is
# mostly out of scope (timer.h wraps steady_clock, env.cc reads the
# environment), but the scheduler's building blocks live there and carry
# the same replay-determinism contract as the driver that uses them: the
# thread pool's batch barrier orders the site phase against the
# coordinator drain, and the aligned allocator backs the WindowPlan's
# site-keyed scratch.
DETERMINISM_FILES = (
    "src/util/thread_pool.h", "src/util/thread_pool.cc",
    "src/util/aligned.h",
)

_UNORDERED_CLASSES = frozenset(
    ["unordered_map", "unordered_set", "unordered_multimap",
     "unordered_multiset", "_Hashtable"]
)
# Reporting on begin/cbegin alone keeps one finding per loop (the paired
# end/cend call would double-report the same iteration).
_ITER_FNS = frozenset(["begin", "cbegin"])
_CLOCK_CLASSES = frozenset(
    ["system_clock", "steady_clock", "high_resolution_clock"]
)
_BANNED_GLOBAL = frozenset(
    ["rand", "srand", "random", "drand48", "lrand48", "mrand48", "rand_r",
     "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
     "localtime", "gmtime", "getpid", "gettid"]
)
_C_ALLOC = frozenset(
    ["malloc", "calloc", "realloc", "reallocarray", "aligned_alloc",
     "valloc", "posix_memalign", "strdup", "strndup"]
)
# Out-of-line libstdc++ growth entry points (no body in any TU — the
# implementation lives in the shared library), flagged by name as a
# backstop; everything with an instantiated body is walked instead.
_STRING_GROWTH = frozenset(
    ["_M_create", "_M_mutate", "_M_replace", "_M_append", "append",
     "push_back", "reserve", "resize", "insert", "assign"]
)
_THREADISH_RE = re.compile(r"thread|worker|concurr", re.I)

_MAX_PATHS_PER_FN = 64
_MAX_CHAIN_SHOWN = 6


class Finding:
    __slots__ = ("check_id", "file", "line", "function", "message")

    def __init__(self, check_id, file, line, function, message):
        self.check_id = check_id
        self.file = file
        self.line = line
        self.function = function
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s: %s" % (
            self.file, self.line or 0, self.check_id, self.function, self.message)


class CallSite:
    __slots__ = ("callee", "file", "line", "leaf")

    def __init__(self, callee, file, line, leaf=None):
        self.callee = callee  # qname or None
        self.file = file
        self.line = line
        self.leaf = leaf      # description if this call IS an allocation


class FunctionInfo:
    __slots__ = ("qname", "file", "line", "calls", "indirect", "has_body",
                 "annotation")

    def __init__(self, qname):
        self.qname = qname
        self.file = None
        self.line = None
        self.calls = []
        self.indirect = []  # (file, line)
        self.has_body = False
        self.annotation = None  # resolved "no_alloc" / "alloc_ok" / None


class AllocPath:
    __slots__ = ("steps", "leaf")

    def __init__(self, steps, leaf):
        self.steps = steps  # [(file, line, callee_desc), ...] root-first
        self.leaf = leaf


def _norm(path):
    return path.replace("\\", "/")


def _is_repo_file(path, repo_root):
    if not path:
        return False
    p = _norm(os.path.normpath(path))
    root = _norm(os.path.normpath(repo_root)) + "/"
    return os.path.isabs(p) and p.startswith(root)


def _in_determinism_scope(path):
    p = _norm(path)
    if any(("/" + d + "/") in p or p.startswith(d + "/") for d in DETERMINISM_DIRS):
        return True
    return any(("/" + f) in p or p == f for f in DETERMINISM_FILES)


def build_file_index(repo_root, extra_files=()):
    """srcp locations in GCC dumps carry basenames only; this index maps a
    basename back to the repo file it names. Repo basenames are unique
    (enforced here: a collision raises, since it would make attribution
    ambiguous)."""
    index = {}
    roots = [os.path.join(repo_root, "src"),
             os.path.join(repo_root, "tools", "lint", "testdata")]
    files = list(extra_files)
    for r in roots:
        for dirpath, _dirs, names in os.walk(r):
            for n in names:
                if n.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, n))
    for f in files:
        base = os.path.basename(f)
        prev = index.get(base)
        full = os.path.normpath(os.path.abspath(f))
        if prev is not None and prev != full:
            raise RuntimeError(
                "duplicate basename %r (%s vs %s): dump srcp attribution "
                "needs unique basenames" % (base, prev, full))
        index[base] = full
    return index


class Analyzer:
    def __init__(self, repo_root, ann_index, file_index=None, scope_all=False):
        self.repo_root = repo_root
        self.ann = ann_index
        self.file_index = file_index if file_index is not None else {}
        self.scope_all = scope_all
        self.functions = {}
        self.findings = []
        self._decl_lines = {}  # file -> {line -> qname}
        self._alloc_memo = {}
        self._seen_sections = set()

    # ------------------------------------------------------------------
    # Model building
    # ------------------------------------------------------------------

    def add_tu(self, tu):
        for section in tu.sections:
            self._add_section(section)

    def _fn(self, qname):
        fi = self.functions.get(qname)
        if fi is None:
            fi = FunctionInfo(qname)
            self.functions[qname] = fi
        return fi

    def _add_section(self, section):
        parent = section.lambda_parent_qname()
        qname = (parent + "::<lambda>") if parent else section.qname()
        fi = self._fn(qname)
        fi.has_body = True
        ofile, oline = section.owner_srcp()
        if ofile is not None:
            ofile = self._resolve_file(ofile, section.tu) or ofile
        # Inline/template functions are dumped once per including TU; the
        # dumps are identical, so process each definition exactly once.
        skey = (qname, ofile, oline)
        if skey in self._seen_sections:
            return
        self._seen_sections.add(skey)
        if ofile is not None and fi.file is None:
            fi.file = _norm(ofile)
            fi.line = oline
            if _is_repo_file(fi.file, self.repo_root):
                self._decl_lines.setdefault(fi.file, {})[oline] = qname
        if parent:
            # A lambda defined inside a function is reachable from it: add
            # a pseudo call edge so DMT_NO_ALLOC constraints propagate into
            # the closure body.
            pfi = self._fn(parent)
            pfi.calls.append(CallSite(qname, fi.file or section.tu.source,
                                      fi.line or 0))

        visits, backedges = gcc_ast.walk_body(section)
        in_scope = self._determinism_in_scope(fi)
        attr_file = fi.file if (fi.file and _is_repo_file(fi.file, self.repo_root)) else None

        for v in visits:
            node = v.node
            if node.kind not in ("call_expr", "aggr_init_expr"):
                continue
            callee = gcc_ast.resolve_callee(section, node)
            if callee is None:
                if attr_file:
                    fi.indirect.append((attr_file, v.line))
                continue
            leaf = self._classify_alloc_leaf(section, callee)
            cq = gcc_ast.fdecl_qname(section, callee)
            fi.calls.append(CallSite(cq, attr_file or (fi.file or section.tu.source),
                                     v.line, leaf))
            if in_scope and attr_file:
                self._determinism_call(section, callee, cq, attr_file, v.line, qname)
            if attr_file:
                self._noalias_call(section, node, callee, cq, attr_file, v.line, qname)

        if in_scope and attr_file and backedges:
            self._thread_fp_loops(section, visits, backedges, attr_file, qname)

    def _resolve_file(self, srcp_file, tu):
        """Map a dump srcp file (basename only) to the repo file it names,
        or None for system/non-repo files."""
        base = os.path.basename(srcp_file)
        if base == os.path.basename(tu.source):
            return os.path.normpath(os.path.abspath(tu.source))
        return self.file_index.get(base)

    def _determinism_in_scope(self, fi):
        if fi.file is None or not _is_repo_file(fi.file, self.repo_root):
            return False
        if self.scope_all:
            return True
        return _in_determinism_scope(os.path.relpath(fi.file, self.repo_root))

    # ------------------------------------------------------------------
    # Allocation classification
    # ------------------------------------------------------------------

    def _classify_alloc_leaf(self, section, fdecl):
        name = gcc_ast.identifier_of(section, fdecl.ref("name"))
        if name is not None:
            name = name.strip()
        chain = gcc_ast.scope_chain(section, fdecl)
        if fdecl.has_note("operator") and name is None:
            sfile, _ = gcc_ast.srcp_of(fdecl)
            if sfile and os.path.basename(sfile) == "new":
                ftype = section.node(fdecl.ref("type"))
                retn = section.node(ftype.ref("retn")) if ftype is not None else None
                if retn is not None and retn.kind == "pointer_type":
                    return "operator new (srcp <new>:%s)" % (gcc_ast.srcp_of(fdecl)[1],)
            return None
        if name in _C_ALLOC and (not chain or chain[-1] in ("std", "__gnu_cxx")):
            return "%s()" % name
        if name in _STRING_GROWTH and chain and chain[-1] == "basic_string":
            if fdecl.get("body") == "undefined":
                return "std::string growth (%s)" % name
        return None

    # ------------------------------------------------------------------
    # Determinism checks (per call site)
    # ------------------------------------------------------------------

    def _determinism_call(self, section, fdecl, cq, file, line, owner_qname):
        name = gcc_ast.identifier_of(section, fdecl.ref("name"))
        if name is None:
            return
        name = name.strip()
        chain = gcc_ast.scope_chain(section, fdecl)
        cls = chain[-1] if chain else None

        if name in _ITER_FNS and cls in _UNORDERED_CLASSES:
            self._report("determinism-unordered-iter", file, line, owner_qname,
                         "iterates an unordered container (%s::%s); hash-table "
                         "order is not replay-stable — drain into a sorted "
                         "container or iterate an ordered mirror before it can "
                         "reach protocol state or messages" % (cls, name))
            return

        banned = None
        if name in _BANNED_GLOBAL and (not chain or chain[-1] == "std"):
            banned = name + "()"
        elif name == "now" and cls in _CLOCK_CLASSES:
            banned = "std::chrono::%s::now()" % cls
        elif name == "get_id" and (cls == "thread" or (chain and chain[-1] == "this_thread")):
            banned = "thread-id query (%s)" % cq
        elif cls == "random_device":
            banned = "std::random_device::%s" % name
        if banned is not None:
            self._report("determinism-banned-call", file, line, owner_qname,
                         "calls %s — nondeterministic input in protocol code; "
                         "replay must be a pure function of the stream"
                         % banned)
            return

        if name == "hardware_concurrency" and cls == "thread":
            self._report("determinism-thread-fp", file, line, owner_qname,
                         "queries std::thread::hardware_concurrency(); results "
                         "must be bit-identical for any thread count, so "
                         "thread-count-dependent values must not feed "
                         "computation or message contents")

    # ------------------------------------------------------------------
    # Thread-count-dependent FP reduction order
    # ------------------------------------------------------------------

    def _thread_fp_loops(self, section, visits, backedges, file, owner_qname):
        index_of = {}
        for v in visits:
            index_of.setdefault(v.node.nid, v.index)
        for start, end in backedges:
            region = visits[start:end + 1]
            if not self._region_is_thread_loop(section, region):
                continue
            for v in region:
                n = v.node
                if n.kind != "modify_expr":
                    continue
                t = section.node(n.ref("type"))
                if t is None or t.kind != "real_type":
                    continue
                lhs_ref = n.ref("op 0")
                rhs_ref = n.ref("op 1")
                if lhs_ref is None or rhs_ref is None:
                    continue
                lhs_key = gcc_ast.structural_key(section, lhs_ref)
                if not self._subtree_contains(section, rhs_ref, lhs_key):
                    continue  # plain store, not an accumulation
                base = self._base_decl(section, lhs_ref)
                if base is not None and base.kind == "var_decl":
                    first = index_of.get(base.nid)
                    if first is not None and first >= start:
                        continue  # accumulator lives inside the loop
                self._report(
                    "determinism-thread-fp", file, v.line, owner_qname,
                    "floating-point accumulation inside a loop whose bounds "
                    "reference a thread/worker count: the reduction order "
                    "(and so the rounded result) would change with the "
                    "thread count — accumulate in a fixed order independent "
                    "of parallelism")

    def _region_is_thread_loop(self, section, region):
        for v in region:
            if v.node.kind != "cond_expr":
                continue
            cref = v.node.ref("op 0")
            if cref is None:
                continue
            for nm in self._decl_names_in(section, cref):
                if _THREADISH_RE.search(nm):
                    return True
        return False

    def _decl_names_in(self, section, ref, depth=0, seen=None):
        if seen is None:
            seen = set()
        if depth > 10 or ref in seen:
            return
        seen.add(ref)
        n = section.node(ref)
        if n is None:
            return
        if n.kind in ("var_decl", "parm_decl", "field_decl"):
            nm = gcc_ast.identifier_of(section, n.ref("name"))
            if nm:
                yield nm
            return
        for k, v in n.fields:
            base = k.split(" ")[0]
            if (k.isdigit() or base in ("op", "expr", "fn", "decl")) and v.startswith("@"):
                yield from self._decl_names_in(section, int(v[1:]), depth + 1, seen)

    def _subtree_contains(self, section, ref, key, depth=0, seen=None):
        if seen is None:
            seen = set()
        if depth > 12 or ref in seen:
            return False
        seen.add(ref)
        if gcc_ast.structural_key(section, ref) == key:
            return True
        n = section.node(gcc_ast.strip_wrappers(section, ref))
        if n is None:
            return False
        for k, v in n.fields:
            base = k.split(" ")[0]
            if (k.isdigit() or base in ("op", "expr", "fn", "decl", "valu")) and v.startswith("@"):
                if self._subtree_contains(section, int(v[1:]), key, depth + 1, seen):
                    return True
        return False

    def _base_decl(self, section, ref, depth=0):
        ref = gcc_ast.strip_wrappers(section, ref)
        n = section.node(ref)
        if n is None or depth > 10:
            return None
        if n.kind in ("var_decl", "parm_decl", "result_decl", "field_decl"):
            return n
        nref = n.ref("op 0")
        if nref is None:
            return None
        return self._base_decl(section, nref, depth + 1)

    # ------------------------------------------------------------------
    # Workspace-aliasing check
    # ------------------------------------------------------------------

    def _noalias_call(self, section, call_node, fdecl, cq, file, line, owner_qname):
        # GCC's GENERIC dump erases the restrict qualifier, so the contract
        # is bound lexically: the callee's resolved decl file is scanned for
        # a DMT_NOALIAS parameter list matching its name and srcp line.
        dfile, dline = gcc_ast.srcp_of(fdecl)
        if dfile is None or dline is None:
            return
        dfile = self._resolve_file(dfile, section.tu)
        if dfile is None or not _is_repo_file(dfile, self.repo_root):
            return
        name = gcc_ast.decl_name_component(section, fdecl)
        if not name:
            return
        decl = self.ann.for_file(dfile).noalias_for(name, dline, BIND_WINDOW)
        if decl is None or len(decl.params) < 2:
            return
        args = gcc_ast.call_args(call_node)
        # Member functions receive `this` as argument 0; DMT_NOALIAS
        # positions count declared parameters only.
        ftype = section.node(fdecl.ref("type"))
        shift = 1 if (ftype is not None and ftype.kind == "method_type") else 0
        keys = {}
        for pos, writable in decl.params:
            if pos + shift < len(args):
                keys[pos] = (gcc_ast.structural_key(section, args[pos + shift]),
                             writable)
        positions = sorted(keys)
        for ai in range(len(positions)):
            for bi in range(ai + 1, len(positions)):
                pa, pb = positions[ai], positions[bi]
                ka, wa = keys[pa]
                kb, wb = keys[pb]
                if ka == kb and (wa or wb):
                    self._report(
                        "noalias-duplicate-arg", file, line, owner_qname,
                        "passes the same buffer to two DMT_NOALIAS "
                        "(__restrict__) parameters of %s (positions %d and "
                        "%d, at least one written): the kernel's no-alias "
                        "contract makes this undefined behavior" % (cq, pa, pb))

    # ------------------------------------------------------------------
    # No-alloc call-graph walk
    # ------------------------------------------------------------------

    def resolve_annotations(self):
        """Bind DMT_NO_ALLOC / DMT_ALLOC_OK macros to function definitions
        (nearest definition at or within BIND_WINDOW lines below the macro)."""
        for file, lines in self._decl_lines.items():
            fa = self.ann.for_file(file)
            anns = list(fa.no_alloc.values()) + list(fa.alloc_ok.values())
            for a in anns:
                target = None
                for delta in range(0, BIND_WINDOW + 1):
                    q = lines.get(a.line + delta)
                    if q is not None:
                        target = q
                        break
                if target is None:
                    self._report(
                        "annotation-error", file, a.line, "-",
                        "%s does not bind to any function definition within "
                        "%d lines — put it on the definition's signature"
                        % ("DMT_NO_ALLOC" if a.kind == "no_alloc"
                           else "DMT_ALLOC_OK", BIND_WINDOW))
                    continue
                a.bound = True
                fi = self.functions.get(target)
                if fi is not None and fi.annotation is None:
                    fi.annotation = a.kind
        for fa in self.ann.files():
            for line, msg in fa.errors:
                self._report("annotation-error", fa.path, line, "-", msg)

    def check_noalloc(self):
        roots = [fi for fi in self.functions.values()
                 if fi.annotation == "no_alloc"]
        for fi in sorted(roots, key=lambda f: (f.file or "", f.line or 0)):
            # One finding per offending site (deepest repo-owned frame:
            # that is where a fix or DMT_ALLOC_OK belongs), shortest path
            # shown when several reach the same site.
            best = {}
            for path in self._alloc_paths(fi.qname, frozenset()):
                file, line, desc = path.steps[0]
                for sf, sl, _sd in reversed(path.steps):
                    if _is_repo_file(sf, self.repo_root):
                        file, line = sf, sl
                        break
                key = (file, line)
                if key not in best or len(path.steps) < len(best[key].steps):
                    best[key] = path
            for (file, line), path in sorted(best.items(),
                                             key=lambda kv: kv[0]):
                chain = " -> ".join(d for _, _, d in path.steps[:_MAX_CHAIN_SHOWN])
                if len(path.steps) > _MAX_CHAIN_SHOWN:
                    chain += " -> ..."
                self._report(
                    "noalloc-violation", file, line, fi.qname,
                    "DMT_NO_ALLOC function reaches %s via %s — hoist the "
                    "allocation into a DMT_ALLOC_OK setup path or remove it"
                    % (path.leaf, chain))

    def _alloc_paths(self, qname, stack):
        if qname in self._alloc_memo:
            return self._alloc_memo[qname]
        if qname in stack:
            return []
        fi = self.functions.get(qname)
        if fi is None:
            return []
        stack = stack | {qname}
        out = []
        for cs in fi.calls:
            if len(out) >= _MAX_PATHS_PER_FN:
                break
            if cs.leaf is not None:
                out.append(AllocPath([(cs.file, cs.line, cs.callee or cs.leaf)],
                                     cs.leaf))
                continue
            if cs.callee is None:
                continue
            sub = self.functions.get(cs.callee)
            if sub is None or not sub.has_body:
                continue  # external, body unknown: leaves are the backstop
            if sub.annotation == "alloc_ok":
                continue  # explicitly allowlisted setup path
            for p in self._alloc_paths(cs.callee, stack):
                if len(out) >= _MAX_PATHS_PER_FN:
                    break
                out.append(AllocPath([(cs.file, cs.line, cs.callee)] + p.steps,
                                     p.leaf))
        for file, line in fi.indirect:
            if len(out) >= _MAX_PATHS_PER_FN:
                break
            out.append(AllocPath(
                [(file, line, "<indirect call>")],
                "an indirect call (callee not statically resolvable)"))
        self._alloc_memo[qname] = out
        return out

    # ------------------------------------------------------------------
    # Reporting / suppression
    # ------------------------------------------------------------------

    def _report(self, check_id, file, line, function, message):
        if not line:
            # Only expr_stmt nodes carry line info; a finding inside a
            # body with no preceding statement (e.g. a lone return) falls
            # back to the owning function's signature line.
            fi = self.functions.get(function)
            if fi is not None and fi.file == file and fi.line:
                line = fi.line
        if file and _is_repo_file(file, self.repo_root):
            fa = self.ann.for_file(file)
            if line and fa.allows_at(check_id, line):
                return
            # Function-level suppression: an allow on the signature of the
            # owning function covers the whole body.
            fi = self.functions.get(function)
            if (fi is not None and fi.file == file
                    and fi.line and fa.allows_at(check_id, fi.line)):
                return
        self.findings.append(Finding(check_id, file or "?", line or 0,
                                     function, message))

    def finish(self):
        self.resolve_annotations()
        self.check_noalloc()
        uniq = {}
        for f in self.findings:
            uniq.setdefault((f.file, f.line, f.check_id, f.function,
                             f.message), f)
        self.findings = sorted(
            uniq.values(), key=lambda f: (f.file, f.line, f.check_id))
        return self.findings
