"""The dmt_lint check families.

Check IDs (stable; used in suppression comments and fixtures):

  determinism-banned-call   — RNG / wall-clock / thread-id calls in
                              protocol code (src/stream, src/hh,
                              src/matrix, src/sketch, src/core, src/net)
  determinism-unordered-iter— iterating an unordered container in
                              protocol code (emission order would leak
                              hash-table layout into protocol state)
  determinism-thread-fp     — thread-count queries and floating-point
                              accumulation whose order depends on a
                              thread/worker-count loop
  noalloc-violation         — an allocation (or unverifiable indirect
                              call) reachable from a DMT_NO_ALLOC function
  noalias-duplicate-arg     — the same buffer passed to two DMT_NOALIAS
                              (__restrict__) parameters, at least one
                              written through
  atomic-implicit-order     — an atomic operation in the concurrency scope
                              that does not spell its std::memory_order
                              (defaulted seq_cst, a single-order
                              compare_exchange, or an operator form)
  atomic-publish-relaxed    — a relaxed operation on a field classified
                              DMT_ATOMIC_PUBLISH
  atomic-counter-order      — a non-relaxed operation on a field
                              classified DMT_ATOMIC_COUNTER
  atomic-unclassified       — an atomic member field in the concurrency
                              scope with neither classification
  guard-unlocked-access     — a DMT_GUARDED_BY field touched by a function
                              that neither takes the named lock (or holds
                              the writer role) nor is reached exclusively
                              from functions that do
  untrusted-abort-path      — a DMT_CHECK-family abort reachable from a
                              DMT_UNTRUSTED_INPUT decode entry point
  untrusted-unclamped-alloc — a size-taking allocation inside a
                              DMT_UNTRUSTED_INPUT function body with no
                              prior clamp (remaining()/FitsRemaining/kMax*
                              or a validated-by-decoder call)
  annotation-error          — malformed or unbindable annotations

Suppression: `// dmt-lint: allow(<check-id>): <reason>` on or up to
BIND_WINDOW lines above the flagged line, or on the owning function's
signature to cover the whole function.
"""

import os
import re

from . import gcc_ast
from .annotations import BIND_WINDOW, _blank_comments

DETERMINISM_DIRS = (
    "src/stream", "src/hh", "src/matrix", "src/sketch", "src/core",
    "src/net", "src/serve",
)

# Individual files swept in addition to the directories above. src/util is
# mostly out of scope (timer.h wraps steady_clock, env.cc reads the
# environment), but the scheduler's building blocks live there and carry
# the same replay-determinism contract as the driver that uses them: the
# thread pool's batch barrier orders the site phase against the
# coordinator drain, and the aligned allocator backs the WindowPlan's
# site-keyed scratch.
DETERMINISM_FILES = (
    "src/util/thread_pool.h", "src/util/thread_pool.cc",
    "src/util/aligned.h",
)

_UNORDERED_CLASSES = frozenset(
    ["unordered_map", "unordered_set", "unordered_multimap",
     "unordered_multiset", "_Hashtable"]
)
# Reporting on begin/cbegin alone keeps one finding per loop (the paired
# end/cend call would double-report the same iteration).
_ITER_FNS = frozenset(["begin", "cbegin"])
_CLOCK_CLASSES = frozenset(
    ["system_clock", "steady_clock", "high_resolution_clock"]
)
_BANNED_GLOBAL = frozenset(
    ["rand", "srand", "random", "drand48", "lrand48", "mrand48", "rand_r",
     "time", "clock", "gettimeofday", "clock_gettime", "timespec_get",
     "localtime", "gmtime", "getpid", "gettid"]
)
_C_ALLOC = frozenset(
    ["malloc", "calloc", "realloc", "reallocarray", "aligned_alloc",
     "valloc", "posix_memalign", "strdup", "strndup"]
)
# Out-of-line libstdc++ growth entry points (no body in any TU — the
# implementation lives in the shared library), flagged by name as a
# backstop; everything with an instantiated body is walked instead.
_STRING_GROWTH = frozenset(
    ["_M_create", "_M_mutate", "_M_replace", "_M_append", "append",
     "push_back", "reserve", "resize", "insert", "assign"]
)
_THREADISH_RE = re.compile(r"thread|worker|concurr", re.I)

_MAX_PATHS_PER_FN = 64
_MAX_CHAIN_SHOWN = 6

# Scope of the atomics-discipline family: the concurrency layers whose
# memory-order contracts are documented (RCU snapshot store, scheduler
# counters, transport byte counters, the thread pool). Unlike the
# annotation-driven guard/untrusted families, absence of an annotation is
# itself a finding here (atomic-unclassified), so the sweep must be scoped.
ATOMICS_DIRS = ("src/serve", "src/stream", "src/net")
ATOMICS_FILES = (
    "src/util/thread_pool.h", "src/util/thread_pool.cc",
    "src/util/aligned.h",
)

# The classes std::atomic member calls resolve into in GENERIC dumps:
# integral atomics dispatch through the __atomic_base base class,
# bool/pointer atomics stay on std::atomic, flags on atomic_flag.
_ATOMIC_SCOPES = frozenset(["atomic", "__atomic_base", "atomic_flag"])
_ATOMIC_OPS = frozenset(
    ["load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
     "fetch_or", "fetch_xor", "compare_exchange_strong",
     "compare_exchange_weak", "test_and_set", "clear"])
# std::memory_order enum values as they appear in integer_cst order args.
_ORDER_NAMES = {0: "relaxed", 1: "consume", 2: "acquire", 3: "release",
                4: "acq_rel", 5: "seq_cst"}
# Implicit defaulted orders materialize as integer_cst 5 identically to a
# written memory_order_seq_cst, so explicitness is checked lexically: count
# memory_order tokens over the statement's extent.
_MEMORD_RE = re.compile(r"\bmemory_order(?:_[a-z_]+|\s*::\s*[a-z_]+)")

_ABORT_NAMES = frozenset(
    ["abort", "exit", "_Exit", "_exit", "quick_exit", "terminate",
     "__assert_fail"])
# Lexical clamp evidence for wire-derived sizes: a latched-bounds check
# (remaining()/FitsRemaining) or a named kMax* backstop constant.
_CLAMP_RE = re.compile(r"remaining\s*\(|\bkMax\w+", re.I)
_GROWTH_SINKS = frozenset(["resize", "reserve", "assign"])
_ACQUIRE_KINDS = r"(?:lock_guard|unique_lock|scoped_lock|shared_lock)"


class Finding:
    __slots__ = ("check_id", "file", "line", "function", "message")

    def __init__(self, check_id, file, line, function, message):
        self.check_id = check_id
        self.file = file
        self.line = line
        self.function = function
        self.message = message

    def render(self):
        return "%s:%d: [%s] %s: %s" % (
            self.file, self.line or 0, self.check_id, self.function, self.message)


class CallSite:
    __slots__ = ("callee", "file", "line", "leaf", "abort_leaf")

    def __init__(self, callee, file, line, leaf=None, abort_leaf=None):
        self.callee = callee  # qname or None
        self.file = file
        self.line = line
        self.leaf = leaf      # description if this call IS an allocation
        self.abort_leaf = abort_leaf  # description if this call aborts


class FunctionInfo:
    __slots__ = ("qname", "file", "line", "calls", "indirect", "has_body",
                 "annotation", "roles", "sinks")

    def __init__(self, qname):
        self.qname = qname
        self.file = None
        self.line = None
        self.calls = []
        self.indirect = []  # (file, line)
        self.has_body = False
        self.annotation = None  # resolved "no_alloc" / "alloc_ok" / None
        self.roles = None   # set of "writer_side" / "untrusted", or None
        self.sinks = []     # (file, line, desc) size-taking allocations


class AllocPath:
    __slots__ = ("steps", "leaf")

    def __init__(self, steps, leaf):
        self.steps = steps  # [(file, line, callee_desc), ...] root-first
        self.leaf = leaf


def _norm(path):
    return path.replace("\\", "/")


def _is_repo_file(path, repo_root):
    if not path:
        return False
    p = _norm(os.path.normpath(path))
    root = _norm(os.path.normpath(repo_root)) + "/"
    return os.path.isabs(p) and p.startswith(root)


def _in_determinism_scope(path):
    p = _norm(path)
    if any(("/" + d + "/") in p or p.startswith(d + "/") for d in DETERMINISM_DIRS):
        return True
    return any(("/" + f) in p or p == f for f in DETERMINISM_FILES)


def _in_atomics_scope(path):
    p = _norm(path)
    if any(("/" + d + "/") in p or p.startswith(d + "/") for d in ATOMICS_DIRS):
        return True
    return any(("/" + f) in p or p == f for f in ATOMICS_FILES)


def build_file_index(repo_root, extra_files=()):
    """srcp locations in GCC dumps carry basenames only; this index maps a
    basename back to the repo file it names. Repo basenames are unique
    (enforced here: a collision raises, since it would make attribution
    ambiguous)."""
    index = {}
    roots = [os.path.join(repo_root, "src"),
             os.path.join(repo_root, "tools", "lint", "testdata")]
    files = list(extra_files)
    for r in roots:
        for dirpath, _dirs, names in os.walk(r):
            for n in names:
                if n.endswith((".h", ".cc")):
                    files.append(os.path.join(dirpath, n))
    for f in files:
        base = os.path.basename(f)
        prev = index.get(base)
        full = os.path.normpath(os.path.abspath(f))
        if prev is not None and prev != full:
            raise RuntimeError(
                "duplicate basename %r (%s vs %s): dump srcp attribution "
                "needs unique basenames" % (base, prev, full))
        index[base] = full
    return index


class Analyzer:
    def __init__(self, repo_root, ann_index, file_index=None, scope_all=False):
        self.repo_root = repo_root
        self.ann = ann_index
        self.file_index = file_index if file_index is not None else {}
        self.scope_all = scope_all
        self.functions = {}
        self.findings = []
        self._decl_lines = {}  # file -> {line -> qname}
        self._alloc_memo = {}
        self._abort_memo = {}
        self._guard_memo = {}
        self._seen_sections = set()
        self.atomic_ops = []      # dicts, one per atomic member operation
        self.guard_accesses = []  # dicts, one per guarded-field access
        self._text_cache = {}     # file -> comment-blanked source lines

    # ------------------------------------------------------------------
    # Model building
    # ------------------------------------------------------------------

    def add_tu(self, tu):
        for section in tu.sections:
            self._add_section(section)

    def _fn(self, qname):
        fi = self.functions.get(qname)
        if fi is None:
            fi = FunctionInfo(qname)
            self.functions[qname] = fi
        return fi

    def _add_section(self, section):
        parent = section.lambda_parent_qname()
        ofile, oline = section.owner_srcp()
        if ofile is not None:
            ofile = self._resolve_file(ofile, section.tu) or ofile
        if parent:
            # One function may define several lambdas; the definition line
            # keeps their FunctionInfos (call edges, lexical extents for
            # the atomics token count) distinct.
            qname = parent + ("::<lambda@%d>" % oline if oline
                              else "::<lambda>")
        else:
            qname = section.qname()
        fi = self._fn(qname)
        fi.has_body = True
        # Inline/template functions are dumped once per including TU; the
        # dumps are identical, so process each definition exactly once.
        skey = (qname, ofile, oline)
        if skey in self._seen_sections:
            return
        self._seen_sections.add(skey)
        if ofile is not None and fi.file is None:
            fi.file = _norm(ofile)
            fi.line = oline
            if _is_repo_file(fi.file, self.repo_root):
                self._decl_lines.setdefault(fi.file, {})[oline] = qname
        if parent:
            # A lambda defined inside a function is reachable from it: add
            # a pseudo call edge so DMT_NO_ALLOC constraints propagate into
            # the closure body.
            pfi = self._fn(parent)
            pfi.calls.append(CallSite(qname, fi.file or section.tu.source,
                                      fi.line or 0))

        visits, backedges = gcc_ast.walk_body(section)
        in_scope = self._determinism_in_scope(fi)
        in_atomics = self._atomics_in_scope(fi)
        attr_file = fi.file if (fi.file and _is_repo_file(fi.file, self.repo_root)) else None

        for v in visits:
            node = v.node
            if node.kind == "component_ref" and attr_file:
                self._guard_access(section, node, attr_file, v.line, qname)
                continue
            if node.kind not in ("call_expr", "aggr_init_expr"):
                continue
            callee = gcc_ast.resolve_callee(section, node)
            if callee is None:
                if attr_file:
                    fi.indirect.append((attr_file, v.line))
                continue
            leaf = self._classify_alloc_leaf(section, callee)
            cq = gcc_ast.fdecl_qname(section, callee)
            fi.calls.append(CallSite(cq, attr_file or (fi.file or section.tu.source),
                                     v.line, leaf,
                                     self._classify_abort_leaf(section, callee)))
            if attr_file:
                sink = self._classify_growth_sink(section, node, callee, leaf)
                if sink is not None:
                    fi.sinks.append((attr_file, v.line, sink))
                self._atomic_call(section, node, callee, attr_file, v.line,
                                  qname, in_atomics)
            if in_scope and attr_file:
                self._determinism_call(section, callee, cq, attr_file, v.line, qname)
            if attr_file:
                self._noalias_call(section, node, callee, cq, attr_file, v.line, qname)

        if in_scope and attr_file and backedges:
            self._thread_fp_loops(section, visits, backedges, attr_file, qname)

    def _resolve_file(self, srcp_file, tu):
        """Map a dump srcp file (basename only) to the repo file it names,
        or None for system/non-repo files."""
        base = os.path.basename(srcp_file)
        if base == os.path.basename(tu.source):
            return os.path.normpath(os.path.abspath(tu.source))
        return self.file_index.get(base)

    def _determinism_in_scope(self, fi):
        if fi.file is None or not _is_repo_file(fi.file, self.repo_root):
            return False
        if self.scope_all:
            return True
        return _in_determinism_scope(os.path.relpath(fi.file, self.repo_root))

    def _atomics_in_scope(self, fi):
        if fi.file is None or not _is_repo_file(fi.file, self.repo_root):
            return False
        if self.scope_all:
            return True
        return _in_atomics_scope(os.path.relpath(fi.file, self.repo_root))

    # ------------------------------------------------------------------
    # Allocation classification
    # ------------------------------------------------------------------

    def _classify_alloc_leaf(self, section, fdecl):
        name = gcc_ast.identifier_of(section, fdecl.ref("name"))
        if name is not None:
            name = name.strip()
        chain = gcc_ast.scope_chain(section, fdecl)
        if fdecl.has_note("operator") and name is None:
            sfile, _ = gcc_ast.srcp_of(fdecl)
            if sfile and os.path.basename(sfile) == "new":
                ftype = section.node(fdecl.ref("type"))
                retn = section.node(ftype.ref("retn")) if ftype is not None else None
                if retn is not None and retn.kind == "pointer_type":
                    return "operator new (srcp <new>:%s)" % (gcc_ast.srcp_of(fdecl)[1],)
            return None
        if name in _C_ALLOC and (not chain or chain[-1] in ("std", "__gnu_cxx")):
            return "%s()" % name
        if name in _STRING_GROWTH and chain and chain[-1] == "basic_string":
            if fdecl.get("body") == "undefined":
                return "std::string growth (%s)" % name
        return None

    def _classify_abort_leaf(self, section, fdecl):
        """Description if a call to `fdecl` terminates the process, for the
        untrusted-abort-path walk. The DMT_CHECK macros expand to a call to
        dmt::internal::CheckFailed, so that name is the leaf whether or not
        its body (which calls std::abort) is visible in this TU."""
        name = gcc_ast.identifier_of(section, fdecl.ref("name"))
        if name is None:
            return None
        name = name.strip()
        chain = gcc_ast.scope_chain(section, fdecl)
        if name == "CheckFailed" and chain[-2:] == ["dmt", "internal"]:
            return "DMT_CHECK abort (dmt::internal::CheckFailed)"
        if name in _ABORT_NAMES and (not chain or chain == ["std"]):
            return "%s()" % name
        return None

    def _classify_growth_sink(self, section, call_node, fdecl, alloc_leaf):
        """Description if this call is a size-taking allocation, for the
        untrusted-unclamped-alloc check: container growth, a sized Matrix
        construction, or a raw allocation leaf."""
        if alloc_leaf is not None:
            return alloc_leaf
        name = gcc_ast.decl_name_component(section, fdecl)
        chain = gcc_ast.scope_chain(section, fdecl)
        cls = chain[-1] if chain else None
        if name in _GROWTH_SINKS and cls is not None:
            return "%s::%s" % (cls, name)
        if (cls == "Matrix" and name == "Matrix"
                and len(gcc_ast.call_args(call_node)) >= 2):
            return "Matrix(rows, cols) construction"
        return None

    # ------------------------------------------------------------------
    # Atomics discipline (event collection)
    # ------------------------------------------------------------------

    def _atomic_call(self, section, node, fdecl, attr_file, line, owner_qname,
                     in_scope):
        chain = gcc_ast.scope_chain(section, fdecl)
        if not chain or chain[-1] not in _ATOMIC_SCOPES:
            return
        name = gcc_ast.decl_name_component(section, fdecl)
        is_op = name == "<op>"
        if not is_op and name not in _ATOMIC_OPS:
            return  # constructor, is_lock_free, ...
        args = gcc_ast.call_args(node)
        is_cas = name.startswith("compare_exchange")

        def order_of(aref):
            n = section.node(gcc_ast.strip_wrappers(section, aref))
            if n is not None and n.kind == "integer_cst":
                try:
                    v = int(n.get("int"))
                except (TypeError, ValueError):
                    return None
                if 0 <= v <= 5:
                    return v
            return None

        order = fail_order = None
        if not is_op and len(args) >= 2:
            # The order is the last argument (arg 0 is `this`); an explicit
            # two-order compare_exchange carries success then failure.
            if is_cas and len(args) >= 5:
                order, fail_order = order_of(args[-2]), order_of(args[-1])
            else:
                order = order_of(args[-1])
        field = self._atomic_target(section, args[0], section.tu) if args else None
        self.atomic_ops.append({
            "file": attr_file, "line": line, "fn": owner_qname,
            "op": name, "nargs": len(args), "is_cas": is_cas,
            "order": order, "fail_order": fail_order,
            "field": field, "in_scope": in_scope,
        })

    def _atomic_target(self, section, ref, tu):
        """The repo member field an atomic operation's `this` argument
        names: ("field"|"local", file, line, name, class) or None. Walks
        addr_expr / component_ref chains outside-in; the first *named*
        field whose srcp resolves into the repo is the user's field (inner
        unnamed fields belong to the <atomic> headers). Lambda-capture
        fields (unnamed closure classes) count as locals."""
        for _ in range(12):
            ref = gcc_ast.strip_wrappers(section, ref)
            n = section.node(ref)
            if n is None:
                return None
            if n.kind in ("addr_expr", "indirect_ref", "array_ref", "mem_ref"):
                ref = n.ref("op 0")
                if ref is None:
                    return None
                continue
            if n.kind in ("var_decl", "parm_decl", "result_decl"):
                nm = gcc_ast.identifier_of(section, n.ref("name")) or "?"
                return ("local", None, None, nm.strip(), None)
            if n.kind != "component_ref":
                return None
            fref = n.ref("op 1")
            fd = section.node(fref) if fref is not None else None
            if fd is not None and fd.kind == "field_decl":
                fname = gcc_ast.identifier_of(section, fd.ref("name"))
                sfile, sline = gcc_ast.srcp_of(fd)
                if fname and sfile and sline:
                    rfile = self._resolve_file(sfile, tu)
                    if rfile is not None and _is_repo_file(rfile, self.repo_root):
                        cls = self._field_class_name(section, fd)
                        if cls is not None and re.match(r"[A-Za-z_]\w*$", cls):
                            return ("field", rfile, sline, fname.strip(), cls)
                        return ("local", None, None, fname.strip(), None)
            ref = n.ref("op 0")
            if ref is None:
                return None
        return None

    def _field_class_name(self, section, fd):
        s = section.node(fd.ref("scpe")) if fd.ref("scpe") is not None else None
        if s is not None and s.kind.endswith("_type"):
            return gcc_ast.identifier_of(section, s.ref("name"))
        return None

    # ------------------------------------------------------------------
    # Guard discipline (event collection)
    # ------------------------------------------------------------------

    def _guard_access(self, section, node, attr_file, line, owner_qname):
        fref = node.ref("op 1")
        fd = section.node(fref) if fref is not None else None
        if fd is None or fd.kind != "field_decl":
            return
        fname = gcc_ast.identifier_of(section, fd.ref("name"))
        sfile, sline = gcc_ast.srcp_of(fd)
        if not fname or not sfile or not sline:
            return
        rfile = self._resolve_file(sfile, section.tu)
        if rfile is None or not _is_repo_file(rfile, self.repo_root):
            return
        guard = self.ann.for_file(rfile).guard_at(sline)
        if guard is None:
            return
        self.guard_accesses.append({
            "file": attr_file, "line": line, "fn": owner_qname,
            "field": fname.strip(), "guard": guard,
            "cls": self._field_class_name(section, fd),
        })

    # ------------------------------------------------------------------
    # Determinism checks (per call site)
    # ------------------------------------------------------------------

    def _determinism_call(self, section, fdecl, cq, file, line, owner_qname):
        name = gcc_ast.identifier_of(section, fdecl.ref("name"))
        if name is None:
            return
        name = name.strip()
        chain = gcc_ast.scope_chain(section, fdecl)
        cls = chain[-1] if chain else None

        if name in _ITER_FNS and cls in _UNORDERED_CLASSES:
            self._report("determinism-unordered-iter", file, line, owner_qname,
                         "iterates an unordered container (%s::%s); hash-table "
                         "order is not replay-stable — drain into a sorted "
                         "container or iterate an ordered mirror before it can "
                         "reach protocol state or messages" % (cls, name))
            return

        banned = None
        if name in _BANNED_GLOBAL and (not chain or chain[-1] == "std"):
            banned = name + "()"
        elif name == "now" and cls in _CLOCK_CLASSES:
            banned = "std::chrono::%s::now()" % cls
        elif name == "get_id" and (cls == "thread" or (chain and chain[-1] == "this_thread")):
            banned = "thread-id query (%s)" % cq
        elif cls == "random_device":
            banned = "std::random_device::%s" % name
        if banned is not None:
            self._report("determinism-banned-call", file, line, owner_qname,
                         "calls %s — nondeterministic input in protocol code; "
                         "replay must be a pure function of the stream"
                         % banned)
            return

        if name == "hardware_concurrency" and cls == "thread":
            self._report("determinism-thread-fp", file, line, owner_qname,
                         "queries std::thread::hardware_concurrency(); results "
                         "must be bit-identical for any thread count, so "
                         "thread-count-dependent values must not feed "
                         "computation or message contents")

    # ------------------------------------------------------------------
    # Thread-count-dependent FP reduction order
    # ------------------------------------------------------------------

    def _thread_fp_loops(self, section, visits, backedges, file, owner_qname):
        index_of = {}
        for v in visits:
            index_of.setdefault(v.node.nid, v.index)
        for start, end in backedges:
            region = visits[start:end + 1]
            if not self._region_is_thread_loop(section, region):
                continue
            for v in region:
                n = v.node
                if n.kind != "modify_expr":
                    continue
                t = section.node(n.ref("type"))
                if t is None or t.kind != "real_type":
                    continue
                lhs_ref = n.ref("op 0")
                rhs_ref = n.ref("op 1")
                if lhs_ref is None or rhs_ref is None:
                    continue
                lhs_key = gcc_ast.structural_key(section, lhs_ref)
                if not self._subtree_contains(section, rhs_ref, lhs_key):
                    continue  # plain store, not an accumulation
                base = self._base_decl(section, lhs_ref)
                if base is not None and base.kind == "var_decl":
                    first = index_of.get(base.nid)
                    if first is not None and first >= start:
                        continue  # accumulator lives inside the loop
                self._report(
                    "determinism-thread-fp", file, v.line, owner_qname,
                    "floating-point accumulation inside a loop whose bounds "
                    "reference a thread/worker count: the reduction order "
                    "(and so the rounded result) would change with the "
                    "thread count — accumulate in a fixed order independent "
                    "of parallelism")

    def _region_is_thread_loop(self, section, region):
        for v in region:
            if v.node.kind != "cond_expr":
                continue
            cref = v.node.ref("op 0")
            if cref is None:
                continue
            for nm in self._decl_names_in(section, cref):
                if _THREADISH_RE.search(nm):
                    return True
        return False

    def _decl_names_in(self, section, ref, depth=0, seen=None):
        if seen is None:
            seen = set()
        if depth > 10 or ref in seen:
            return
        seen.add(ref)
        n = section.node(ref)
        if n is None:
            return
        if n.kind in ("var_decl", "parm_decl", "field_decl"):
            nm = gcc_ast.identifier_of(section, n.ref("name"))
            if nm:
                yield nm
            return
        for k, v in n.fields:
            base = k.split(" ")[0]
            if (k.isdigit() or base in ("op", "expr", "fn", "decl")) and v.startswith("@"):
                yield from self._decl_names_in(section, int(v[1:]), depth + 1, seen)

    def _subtree_contains(self, section, ref, key, depth=0, seen=None):
        if seen is None:
            seen = set()
        if depth > 12 or ref in seen:
            return False
        seen.add(ref)
        if gcc_ast.structural_key(section, ref) == key:
            return True
        n = section.node(gcc_ast.strip_wrappers(section, ref))
        if n is None:
            return False
        for k, v in n.fields:
            base = k.split(" ")[0]
            if (k.isdigit() or base in ("op", "expr", "fn", "decl", "valu")) and v.startswith("@"):
                if self._subtree_contains(section, int(v[1:]), key, depth + 1, seen):
                    return True
        return False

    def _base_decl(self, section, ref, depth=0):
        ref = gcc_ast.strip_wrappers(section, ref)
        n = section.node(ref)
        if n is None or depth > 10:
            return None
        if n.kind in ("var_decl", "parm_decl", "result_decl", "field_decl"):
            return n
        nref = n.ref("op 0")
        if nref is None:
            return None
        return self._base_decl(section, nref, depth + 1)

    # ------------------------------------------------------------------
    # Workspace-aliasing check
    # ------------------------------------------------------------------

    def _noalias_call(self, section, call_node, fdecl, cq, file, line, owner_qname):
        # GCC's GENERIC dump erases the restrict qualifier, so the contract
        # is bound lexically: the callee's resolved decl file is scanned for
        # a DMT_NOALIAS parameter list matching its name and srcp line.
        dfile, dline = gcc_ast.srcp_of(fdecl)
        if dfile is None or dline is None:
            return
        dfile = self._resolve_file(dfile, section.tu)
        if dfile is None or not _is_repo_file(dfile, self.repo_root):
            return
        name = gcc_ast.decl_name_component(section, fdecl)
        if not name:
            return
        decl = self.ann.for_file(dfile).noalias_for(name, dline, BIND_WINDOW)
        if decl is None or len(decl.params) < 2:
            return
        args = gcc_ast.call_args(call_node)
        # Member functions receive `this` as argument 0; DMT_NOALIAS
        # positions count declared parameters only.
        ftype = section.node(fdecl.ref("type"))
        shift = 1 if (ftype is not None and ftype.kind == "method_type") else 0
        keys = {}
        for pos, writable in decl.params:
            if pos + shift < len(args):
                keys[pos] = (gcc_ast.structural_key(section, args[pos + shift]),
                             writable)
        positions = sorted(keys)
        for ai in range(len(positions)):
            for bi in range(ai + 1, len(positions)):
                pa, pb = positions[ai], positions[bi]
                ka, wa = keys[pa]
                kb, wb = keys[pb]
                if ka == kb and (wa or wb):
                    self._report(
                        "noalias-duplicate-arg", file, line, owner_qname,
                        "passes the same buffer to two DMT_NOALIAS "
                        "(__restrict__) parameters of %s (positions %d and "
                        "%d, at least one written): the kernel's no-alias "
                        "contract makes this undefined behavior" % (cq, pa, pb))

    # ------------------------------------------------------------------
    # No-alloc call-graph walk
    # ------------------------------------------------------------------

    _FN_MACRO_NAMES = {"no_alloc": "DMT_NO_ALLOC", "alloc_ok": "DMT_ALLOC_OK",
                       "writer_side": "DMT_WRITER_SIDE",
                       "untrusted": "DMT_UNTRUSTED_INPUT"}

    def resolve_annotations(self):
        """Bind the function-level macros (DMT_NO_ALLOC / DMT_ALLOC_OK /
        DMT_WRITER_SIDE / DMT_UNTRUSTED_INPUT) to function definitions
        (nearest definition at or within BIND_WINDOW lines below the macro)."""
        for file, lines in self._decl_lines.items():
            fa = self.ann.for_file(file)
            anns = (list(fa.no_alloc.values()) + list(fa.alloc_ok.values())
                    + list(fa.writer_side.values())
                    + list(fa.untrusted.values()))
            for a in anns:
                target = None
                for delta in range(0, BIND_WINDOW + 1):
                    q = lines.get(a.line + delta)
                    if q is not None:
                        target = q
                        break
                if target is None:
                    self._report(
                        "annotation-error", file, a.line, "-",
                        "%s does not bind to any function definition within "
                        "%d lines — put it on the definition's signature"
                        % (self._FN_MACRO_NAMES[a.kind], BIND_WINDOW))
                    continue
                a.bound = True
                fi = self.functions.get(target)
                if fi is None:
                    continue
                if a.kind in ("no_alloc", "alloc_ok"):
                    if fi.annotation is None:
                        fi.annotation = a.kind
                else:
                    if fi.roles is None:
                        fi.roles = set()
                    fi.roles.add(a.kind)
        for fa in self.ann.files():
            for line, msg in fa.errors:
                self._report("annotation-error", fa.path, line, "-", msg)

    def check_noalloc(self):
        roots = [fi for fi in self.functions.values()
                 if fi.annotation == "no_alloc"]
        for fi in sorted(roots, key=lambda f: (f.file or "", f.line or 0)):
            # One finding per offending site (deepest repo-owned frame:
            # that is where a fix or DMT_ALLOC_OK belongs), shortest path
            # shown when several reach the same site.
            best = {}
            for path in self._alloc_paths(fi.qname, frozenset()):
                file, line, desc = path.steps[0]
                for sf, sl, _sd in reversed(path.steps):
                    if _is_repo_file(sf, self.repo_root):
                        file, line = sf, sl
                        break
                key = (file, line)
                if key not in best or len(path.steps) < len(best[key].steps):
                    best[key] = path
            for (file, line), path in sorted(best.items(),
                                             key=lambda kv: kv[0]):
                chain = " -> ".join(d for _, _, d in path.steps[:_MAX_CHAIN_SHOWN])
                if len(path.steps) > _MAX_CHAIN_SHOWN:
                    chain += " -> ..."
                self._report(
                    "noalloc-violation", file, line, fi.qname,
                    "DMT_NO_ALLOC function reaches %s via %s — hoist the "
                    "allocation into a DMT_ALLOC_OK setup path or remove it"
                    % (path.leaf, chain))

    def _alloc_paths(self, qname, stack):
        if qname in self._alloc_memo:
            return self._alloc_memo[qname]
        if qname in stack:
            return []
        fi = self.functions.get(qname)
        if fi is None:
            return []
        stack = stack | {qname}
        out = []
        for cs in fi.calls:
            if len(out) >= _MAX_PATHS_PER_FN:
                break
            if cs.leaf is not None:
                out.append(AllocPath([(cs.file, cs.line, cs.callee or cs.leaf)],
                                     cs.leaf))
                continue
            if cs.callee is None:
                continue
            sub = self.functions.get(cs.callee)
            if sub is None or not sub.has_body:
                continue  # external, body unknown: leaves are the backstop
            if sub.annotation == "alloc_ok":
                continue  # explicitly allowlisted setup path
            for p in self._alloc_paths(cs.callee, stack):
                if len(out) >= _MAX_PATHS_PER_FN:
                    break
                out.append(AllocPath([(cs.file, cs.line, cs.callee)] + p.steps,
                                     p.leaf))
        for file, line in fi.indirect:
            if len(out) >= _MAX_PATHS_PER_FN:
                break
            out.append(AllocPath(
                [(file, line, "<indirect call>")],
                "an indirect call (callee not statically resolvable)"))
        self._alloc_memo[qname] = out
        return out

    # ------------------------------------------------------------------
    # Atomics discipline (checks)
    # ------------------------------------------------------------------

    def _file_lines(self, path):
        """Comment-blanked source lines of a repo file (1-indexed via
        lines[i-1]), or None."""
        cached = self._text_cache.get(path)
        if cached is not None:
            return cached
        try:
            with open(path, "r", errors="replace") as f:
                text = f.read()
        except OSError:
            self._text_cache[path] = []
            return []
        lines = _blank_comments(text).splitlines()
        self._text_cache[path] = lines
        return lines

    def _fn_order_tokens(self, qname):
        """memory_order tokens written inside a function's lexical extent.
        Statement-level attribution is unreliable in the dump (line info
        lags inside loop bodies), so explicitness is checked at function
        granularity: every ordered atomic operation the AST sees must be
        matched by a memory_order token somewhere in the function text."""
        fi = self.functions.get(qname)
        if fi is None:
            return 0
        ext = self._fn_extent(fi)
        if ext is None:
            return 0
        lines = self._file_lines(fi.file)
        text = "\n".join(lines[ext[0] - 1:ext[1]])
        return len(_MEMORD_RE.findall(text))

    def check_atomics(self):
        groups = {}
        for ev in self.atomic_ops:
            if not ev["in_scope"]:
                continue
            field = ev["field"]
            fdesc = ("field %s" % field[3]) if field and field[0] == "field" \
                else ("%s (local)" % field[3] if field else "the target")
            # --- explicit-order discipline -----------------------------
            if ev["op"] == "<op>":
                self._report(
                    "atomic-implicit-order", ev["file"], ev["line"], ev["fn"],
                    "atomic operator form on %s (++/--/+=/= or implicit "
                    "conversion) cannot name a memory order — use "
                    ".load()/.store()/.fetch_add() with an explicit "
                    "std::memory_order" % fdesc)
            elif ev["is_cas"] and ev["nargs"] < 5:
                self._report(
                    "atomic-implicit-order", ev["file"], ev["line"], ev["fn"],
                    "%s on %s names at most one memory order — spell both "
                    "the success and the failure order explicitly"
                    % (ev["op"], fdesc))
            else:
                need = 2 if (ev["is_cas"] and ev["nargs"] >= 5) else 1
                g = groups.setdefault(ev["fn"], {"need": 0, "ops": [],
                                                 "file": ev["file"],
                                                 "line": ev["line"]})
                g["need"] += need
                g["ops"].append(ev["op"])
                g["line"] = min(g["line"], ev["line"]) or g["line"]
            # --- classification discipline -----------------------------
            if field is None or field[0] != "field":
                continue
            _, ffile, fline, fname, _cls = field
            classification = self.ann.for_file(ffile).atomic_class_at(fline)
            orders = [o for o in (ev["order"], ev["fail_order"])
                      if o is not None and ev["op"] != "<op>"]
            if classification is None:
                self._report(
                    "atomic-unclassified", ev["file"], ev["line"], ev["fn"],
                    "atomic field %s is unclassified — annotate its "
                    "declaration (%s:%d) with DMT_ATOMIC_PUBLISH (carries "
                    "synchronization) or DMT_ATOMIC_COUNTER (pure statistic)"
                    % (fname, os.path.relpath(ffile, self.repo_root), fline))
            elif classification == "publish" and any(o == 0 for o in orders):
                self._report(
                    "atomic-publish-relaxed", ev["file"], ev["line"], ev["fn"],
                    "relaxed %s on DMT_ATOMIC_PUBLISH field %s — publish "
                    "fields carry synchronization; use the documented "
                    "acquire/release/seq_cst order or reclassify the field"
                    % (ev["op"], fname))
            elif classification == "counter" and any(o != 0 for o in orders):
                bad = next(o for o in orders if o != 0)
                self._report(
                    "atomic-counter-order", ev["file"], ev["line"], ev["fn"],
                    "%s on DMT_ATOMIC_COUNTER field %s uses memory_order_%s "
                    "— stat counters synchronize nothing and must be "
                    "explicitly relaxed (or reclassified DMT_ATOMIC_PUBLISH)"
                    % (ev["op"], fname, _ORDER_NAMES.get(bad, bad)))
        for fn, g in groups.items():
            tokens = self._fn_order_tokens(fn)
            if tokens < g["need"]:
                ops = ", ".join(sorted(set(g["ops"])))
                self._report(
                    "atomic-implicit-order", g["file"], g["line"], fn,
                    "atomic %s defaults its std::memory_order (implicit "
                    "seq_cst): the function writes %d memory_order token%s "
                    "but performs %d ordered atomic operation%s — the "
                    "RCU/counter contracts require the order to be spelled "
                    "at every site" % (ops, tokens,
                                       "" if tokens == 1 else "s", g["need"],
                                       "" if g["need"] == 1 else "s"))

    # ------------------------------------------------------------------
    # Guard discipline (checks)
    # ------------------------------------------------------------------

    def _fn_extent(self, fi):
        """(start, end) line range of a function body via brace matching
        from its signature line, or None."""
        if fi.file is None or not fi.line:
            return None
        lines = self._file_lines(fi.file)
        if not lines or fi.line > len(lines):
            return None
        depth = 0
        opened = False
        for i in range(fi.line, min(fi.line + 800, len(lines) + 1)):
            for ch in lines[i - 1]:
                if ch == "{":
                    depth += 1
                    opened = True
                elif ch == "}":
                    depth -= 1
                    if opened and depth <= 0:
                        return (fi.line, i)
        return (fi.line, min(fi.line + 800, len(lines)))

    def _fn_acquires(self, fi, guard):
        """True if the function's lexical extent acquires `guard`: a scoped
        lock object constructed on it or a direct .lock() call. Function
        granularity — a lock anywhere in the body satisfies the check."""
        ext = self._fn_extent(fi)
        if ext is None:
            return False
        text = "\n".join(self._file_lines(fi.file)[ext[0] - 1:ext[1]])
        pat = (_ACQUIRE_KINDS + r"\s*(?:<[^;()]*>)?\s+\w+\s*[({]\s*"
               + re.escape(guard) + r"\b")
        if re.search(pat, text):
            return True
        return re.search(r"\b" + re.escape(guard) + r"\s*\.\s*lock\s*\(",
                         text) is not None

    def _guard_ok(self, qname, guard, rev, stack):
        """True if `qname` holds `guard` (lexically / by role), or is
        reached only from functions that do. Optimistic on cycles."""
        key = (qname, guard)
        if key in self._guard_memo:
            return self._guard_memo[key]
        if key in stack:
            return True
        fi = self.functions.get(qname)
        if fi is None:
            return False
        ok = False
        if guard == "writer":
            ok = bool(fi.roles) and "writer_side" in fi.roles
        else:
            ok = self._fn_acquires(fi, guard)
        if not ok:
            callers = rev.get(qname, ())
            ok = bool(callers) and all(
                self._guard_ok(c, guard, rev, stack | {key}) for c in callers)
        self._guard_memo[key] = ok
        return ok

    def check_guards(self):
        if not self.guard_accesses:
            return
        rev = {}
        for fi in self.functions.values():
            for cs in fi.calls:
                if cs.callee is not None:
                    rev.setdefault(cs.callee, set()).add(fi.qname)
        for ev in self.guard_accesses:
            comps = ev["fn"].split("::")
            cls = ev["cls"]
            # Constructors/destructor of the owning class run before/after
            # any sharing (and materialize the in-class initializers).
            if (cls and len(comps) >= 2 and comps[-2] == cls
                    and comps[-1] in (cls, "~" + cls)):
                continue
            if self._guard_ok(ev["fn"], ev["guard"], rev, frozenset()):
                continue
            if ev["guard"] == "writer":
                msg = ("field %s is DMT_GUARDED_BY(writer) but %s is not "
                       "DMT_WRITER_SIDE and is not reached exclusively from "
                       "writer-side functions — mark the function or move "
                       "the access" % (ev["field"], ev["fn"]))
            else:
                msg = ("field %s is DMT_GUARDED_BY(%s) but %s does not "
                       "acquire %s (no scoped lock or .lock() in its body) "
                       "and is not reached exclusively from functions that "
                       "do — take the lock or move the access"
                       % (ev["field"], ev["guard"], ev["fn"], ev["guard"]))
            self._report("guard-unlocked-access", ev["file"], ev["line"],
                         ev["fn"], msg)

    # ------------------------------------------------------------------
    # Untrusted-input checks
    # ------------------------------------------------------------------

    def _abort_paths(self, qname, stack):
        """AllocPath-shaped walk to aborting leaves (same mechanics as
        _alloc_paths; indirect calls are unverifiable and count)."""
        if qname in self._abort_memo:
            return self._abort_memo[qname]
        if qname in stack:
            return []
        fi = self.functions.get(qname)
        if fi is None:
            return []
        stack = stack | {qname}
        out = []
        for cs in fi.calls:
            if len(out) >= _MAX_PATHS_PER_FN:
                break
            if cs.abort_leaf is not None:
                out.append(AllocPath([(cs.file, cs.line, cs.abort_leaf)],
                                     cs.abort_leaf))
                continue
            if cs.callee is None:
                continue
            sub = self.functions.get(cs.callee)
            if sub is None or not sub.has_body:
                continue  # external, body unknown: named leaves backstop
            for p in self._abort_paths(cs.callee, stack):
                if len(out) >= _MAX_PATHS_PER_FN:
                    break
                out.append(AllocPath([(cs.file, cs.line, cs.callee)] + p.steps,
                                     p.leaf))
        for file, line in fi.indirect:
            if len(out) >= _MAX_PATHS_PER_FN:
                break
            out.append(AllocPath(
                [(file, line, "<indirect call>")],
                "an indirect call (callee not statically resolvable)"))
        self._abort_memo[qname] = out
        return out

    def _has_clamp(self, fi, sink_line):
        """True if a clamp precedes the sink inside the function body: a
        remaining()/FitsRemaining/kMax* token, or a call to another
        DMT_UNTRUSTED_INPUT function (validated-by-decoder — e.g. RecvFrame
        resizing to a length DecodeFrameHeader already bounded)."""
        if fi.file is None or not fi.line:
            return False
        lines = self._file_lines(fi.file)
        start = min(fi.line, sink_line)
        seg = "\n".join(lines[start - 1:min(sink_line, len(lines))])
        if _CLAMP_RE.search(seg):
            return True
        for cs in fi.calls:
            if cs.callee is None or not cs.line or cs.line > sink_line:
                continue
            sub = self.functions.get(cs.callee)
            if sub is not None and sub.roles and "untrusted" in sub.roles:
                return True
        return False

    def check_untrusted(self):
        roots = [fi for fi in self.functions.values()
                 if fi.roles and "untrusted" in fi.roles]
        for fi in sorted(roots, key=lambda f: (f.file or "", f.line or 0)):
            best = {}
            for path in self._abort_paths(fi.qname, frozenset()):
                file, line, _desc = path.steps[0]
                for sf, sl, _sd in reversed(path.steps):
                    if _is_repo_file(sf, self.repo_root):
                        file, line = sf, sl
                        break
                key = (file, line)
                if key not in best or len(path.steps) < len(best[key].steps):
                    best[key] = path
            for (file, line), path in sorted(best.items(),
                                             key=lambda kv: kv[0]):
                chain = " -> ".join(d for _, _, d in path.steps[:_MAX_CHAIN_SHOWN])
                if len(path.steps) > _MAX_CHAIN_SHOWN:
                    chain += " -> ..."
                self._report(
                    "untrusted-abort-path", file, line, fi.qname,
                    "DMT_UNTRUSTED_INPUT decoder reaches %s via %s — "
                    "decoders parse adversarial bytes and must fail by "
                    "returning an error, never by trapping" % (path.leaf, chain))
            for sfile, sline, desc in fi.sinks:
                if self._has_clamp(fi, sline):
                    continue
                self._report(
                    "untrusted-unclamped-alloc", sfile, sline, fi.qname,
                    "wire-derived size reaches %s with no prior clamp in "
                    "%s (no remaining()/FitsRemaining/kMax* bound and no "
                    "validated-by-decoder call) — bound it against the "
                    "64 MiB frame backstop before allocating"
                    % (desc, fi.qname))

    # ------------------------------------------------------------------
    # Reporting / suppression
    # ------------------------------------------------------------------

    def _report(self, check_id, file, line, function, message):
        if not line:
            # Only expr_stmt nodes carry line info; a finding inside a
            # body with no preceding statement (e.g. a lone return) falls
            # back to the owning function's signature line.
            fi = self.functions.get(function)
            if fi is not None and fi.file == file and fi.line:
                line = fi.line
        if file and _is_repo_file(file, self.repo_root):
            fa = self.ann.for_file(file)
            if line and fa.allows_at(check_id, line):
                return
            # Function-level suppression: an allow on the signature of the
            # owning function covers the whole body.
            fi = self.functions.get(function)
            if (fi is not None and fi.file == file
                    and fi.line and fa.allows_at(check_id, fi.line)):
                return
        self.findings.append(Finding(check_id, file or "?", line or 0,
                                     function, message))

    def finish(self):
        self.resolve_annotations()
        self.check_noalloc()
        self.check_atomics()
        self.check_guards()
        self.check_untrusted()
        uniq = {}
        for f in self.findings:
            uniq.setdefault((f.file, f.line, f.check_id, f.function,
                             f.message), f)
        self.findings = sorted(
            uniq.values(), key=lambda f: (f.file, f.line, f.check_id))
        return self.findings
