#!/usr/bin/env bash
# One-stop static-analysis driver; the CI `static-analysis` job runs this
# with --require-tools. Layers, in order:
#
#   1. dmt_lint --selftest   fixture expectations for the contract checks
#   2. dmt_lint              repo contracts (determinism, no-alloc hot
#                            paths, no-alias kernels, atomics discipline,
#                            guard discipline, untrusted wire decoding)
#                            over every src/*.cc, zero findings required
#   3. clang-tidy            curated .clang-tidy profile (bugprone-*,
#                            concurrency-*, ...), zero warnings
#   4. cppcheck              generic bug patterns, zero warnings
#
# Every layer runs even when an earlier one fails; the exit status
# aggregates all of them (worst wins), so one broken tool never hides
# findings from the rest.
#
# Usage: run_static_analysis.sh [--require-tools] [build_dir]
#
#   build_dir        directory holding compile_commands.json (default:
#                    build; configure with CMake first — the project sets
#                    CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#   --require-tools  fail (exit 2) when clang-tidy or cppcheck is missing.
#                    Default is to skip missing tools with a note, so the
#                    script stays useful on dev boxes that only have GCC.
set -uo pipefail

require_tools=0
build_dir=build
for arg in "$@"; do
  case "${arg}" in
    --require-tools) require_tools=1 ;;
    -h|--help) sed -n '2,26p' "$0"; exit 0 ;;
    *) build_dir=${arg} ;;
  esac
done

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
cd "${repo_root}" || exit 2
status=0

# worsen <rc>: fold one layer's exit code into the aggregate (worst wins;
# 2 = environment error outranks 1 = findings).
worsen() {
  local rc=$1
  if [[ ${rc} -gt ${status} ]]; then status=${rc}; fi
}

echo "== dmt_lint --selftest =="
selftest_rc=0
python3 tools/lint/dmt_lint --selftest || selftest_rc=$?
if [[ ${selftest_rc} -eq 77 ]]; then
  echo "SKIP: dmt_lint needs GCC for its AST dumps" >&2
elif [[ ${selftest_rc} -ne 0 ]]; then
  worsen "${selftest_rc}"
fi

echo "== dmt_lint (contracts over src/) =="
if [[ ${selftest_rc} -eq 77 ]]; then
  echo "SKIP: dmt_lint needs GCC for its AST dumps" >&2
else
  lint_rc=0
  python3 tools/lint/dmt_lint || lint_rc=$?
  worsen "${lint_rc}"
fi

cc_json=${build_dir}/compile_commands.json
have_cc_json=1
if [[ ! -f "${cc_json}" ]]; then
  have_cc_json=0
  echo "ERROR: ${cc_json} not found; configure first:" >&2
  echo "  cmake -B ${build_dir} -S ." >&2
  worsen 2
fi

echo "== clang-tidy =="
if [[ ${have_cc_json} -eq 0 ]]; then
  echo "SKIP: no compile_commands.json" >&2
elif command -v clang-tidy >/dev/null 2>&1; then
  tidy_rc=0
  find src -name '*.cc' -print0 \
    | xargs -0 clang-tidy -p "${build_dir}" --quiet \
        --warnings-as-errors='*' \
    || tidy_rc=$?
  if [[ ${tidy_rc} -ne 0 ]]; then worsen 1; fi
else
  echo "SKIP: clang-tidy not installed" >&2
  if [[ ${require_tools} -eq 1 ]]; then
    echo "ERROR: --require-tools set and clang-tidy missing" >&2
    worsen 2
  fi
fi

echo "== cppcheck =="
if [[ ${have_cc_json} -eq 0 ]]; then
  echo "SKIP: no compile_commands.json" >&2
elif command -v cppcheck >/dev/null 2>&1; then
  cppcheck_rc=0
  cppcheck \
    --project="${cc_json}" \
    --enable=warning,performance,portability \
    --suppressions-list=tools/lint/cppcheck_suppressions.txt \
    --inline-suppr \
    --error-exitcode=1 \
    --quiet \
    || cppcheck_rc=$?
  if [[ ${cppcheck_rc} -ne 0 ]]; then worsen 1; fi
else
  echo "SKIP: cppcheck not installed" >&2
  if [[ ${require_tools} -eq 1 ]]; then
    echo "ERROR: --require-tools set and cppcheck missing" >&2
    worsen 2
  fi
fi

if [[ ${status} -eq 0 ]]; then
  echo "static analysis: all layers clean"
else
  echo "static analysis: FAILURES above (aggregate exit ${status})" >&2
fi
exit "${status}"
