#!/usr/bin/env bash
# One-stop static-analysis driver; the CI `static-analysis` job runs this
# with --require-tools. Layers, in order:
#
#   1. dmt_lint --selftest   fixture expectations for the contract checks
#   2. dmt_lint              repo contracts (determinism, no-alloc hot
#                            paths, no-alias kernels) over every src/*.cc,
#                            zero findings required
#   3. clang-tidy            curated .clang-tidy profile, zero warnings
#   4. cppcheck              generic bug patterns, zero warnings
#
# Usage: run_static_analysis.sh [--require-tools] [build_dir]
#
#   build_dir        directory holding compile_commands.json (default:
#                    build; configure with CMake first — the project sets
#                    CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#   --require-tools  fail (exit 2) when clang-tidy or cppcheck is missing.
#                    Default is to skip missing tools with a note, so the
#                    script stays useful on dev boxes that only have GCC.
set -euo pipefail

require_tools=0
build_dir=build
for arg in "$@"; do
  case "${arg}" in
    --require-tools) require_tools=1 ;;
    -h|--help) sed -n '2,20p' "$0"; exit 0 ;;
    *) build_dir=${arg} ;;
  esac
done

repo_root=$(cd "$(dirname "$0")/../.." && pwd)
cd "${repo_root}"
status=0

echo "== dmt_lint --selftest =="
selftest_rc=0
python3 tools/lint/dmt_lint --selftest || selftest_rc=$?
if [[ ${selftest_rc} -eq 77 ]]; then
  echo "SKIP: dmt_lint needs GCC for its AST dumps" >&2
elif [[ ${selftest_rc} -ne 0 ]]; then
  status=1
fi

echo "== dmt_lint (contracts over src/) =="
if [[ ${selftest_rc} -eq 77 ]]; then
  echo "SKIP: dmt_lint needs GCC for its AST dumps" >&2
else
  python3 tools/lint/dmt_lint || status=1
fi

cc_json=${build_dir}/compile_commands.json
if [[ ! -f "${cc_json}" ]]; then
  echo "ERROR: ${cc_json} not found; configure first:" >&2
  echo "  cmake -B ${build_dir} -S ." >&2
  exit 2
fi

echo "== clang-tidy =="
if command -v clang-tidy >/dev/null 2>&1; then
  # shellcheck disable=SC2046
  find src -name '*.cc' -print0 \
    | xargs -0 clang-tidy -p "${build_dir}" --quiet \
        --warnings-as-errors='*' \
    || status=1
else
  echo "SKIP: clang-tidy not installed" >&2
  [[ ${require_tools} -eq 1 ]] && { echo "ERROR: --require-tools set" >&2; exit 2; }
fi

echo "== cppcheck =="
if command -v cppcheck >/dev/null 2>&1; then
  cppcheck \
    --project="${cc_json}" \
    --enable=warning,performance,portability \
    --suppressions-list=tools/lint/cppcheck_suppressions.txt \
    --inline-suppr \
    --error-exitcode=1 \
    --quiet \
    || status=1
else
  echo "SKIP: cppcheck not installed" >&2
  [[ ${require_tools} -eq 1 ]] && { echo "ERROR: --require-tools set" >&2; exit 2; }
fi

if [[ ${status} -eq 0 ]]; then
  echo "static analysis: all layers clean"
else
  echo "static analysis: FAILURES above" >&2
fi
exit ${status}
