// dmt_cli — run any tracking protocol over CSV, registry datasets, or
// synthetic data.
//
// Examples:
//   dmt_cli --mode=matrix --protocol=P2 --eps=0.1 --sites=50 --synthetic=pamap --rows=100000
//   dmt_cli --mode=matrix --protocol=P3 --input=features.csv --eps=0.05
//   dmt_cli --mode=matrix --protocol=P2 --dataset=pamap --data-dir=./data
//   dmt_cli --mode=hh --protocol=P2 --eps=0.001 --rows=1000000 --phi=0.05
//
// For matrix mode the tool reports the continuous approximation error
// against the exact covariance at checkpoints; for hh mode it prints the
// final heavy hitters with true vs tracked weights.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/continuous_hh_tracker.h"
#include "core/continuous_matrix_tracker.h"
#include "data/csv.h"
#include "data/dataset.h"
#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "matrix/error.h"
#include "stream/router.h"
#include "util/env.h"

namespace {

struct Args {
  std::string mode = "matrix";       // matrix | hh
  std::string protocol = "P2";       // P1 | P2 | P3 | P3wr | P4 | exact(hh)
  std::string input;                 // CSV path (matrix mode)
  std::string dataset;               // registry name (matrix mode)
  std::string data_dir;              // raw files / .dmtbin caches
  std::string synthetic = "pamap";   // pamap | msd (matrix mode)
  double eps = 0.1;
  size_t sites = 50;
  size_t rows = 100000;
  double phi = 0.05;
  double beta = 1000.0;
  uint64_t universe = 10000;
  uint64_t seed = 1;
};

bool ParseArg(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) == 0 && arg[n] == '=') {
    *out = arg + n + 1;
    return true;
  }
  return false;
}

Args Parse(int argc, char** argv) {
  Args a;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    if (ParseArg(argv[i], "--mode", &v)) a.mode = v;
    else if (ParseArg(argv[i], "--protocol", &v)) a.protocol = v;
    else if (ParseArg(argv[i], "--input", &v)) a.input = v;
    else if (ParseArg(argv[i], "--dataset", &v)) a.dataset = v;
    else if (ParseArg(argv[i], "--data-dir", &v)) a.data_dir = v;
    else if (ParseArg(argv[i], "--synthetic", &v)) a.synthetic = v;
    else if (ParseArg(argv[i], "--eps", &v)) a.eps = std::atof(v.c_str());
    else if (ParseArg(argv[i], "--sites", &v)) a.sites = std::atoi(v.c_str());
    else if (ParseArg(argv[i], "--rows", &v)) a.rows = std::atoll(v.c_str());
    else if (ParseArg(argv[i], "--phi", &v)) a.phi = std::atof(v.c_str());
    else if (ParseArg(argv[i], "--beta", &v)) a.beta = std::atof(v.c_str());
    else if (ParseArg(argv[i], "--universe", &v))
      a.universe = std::atoll(v.c_str());
    else if (ParseArg(argv[i], "--seed", &v)) a.seed = std::atoll(v.c_str());
    else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      std::exit(2);
    }
  }
  return a;
}

dmt::MatrixProtocol MatrixProtocolFromName(const std::string& name) {
  if (name == "P1") return dmt::MatrixProtocol::kP1BatchedFD;
  if (name == "P2") return dmt::MatrixProtocol::kP2SvdThreshold;
  if (name == "P3") return dmt::MatrixProtocol::kP3SampleWoR;
  if (name == "P3wr") return dmt::MatrixProtocol::kP3SampleWR;
  if (name == "P4") return dmt::MatrixProtocol::kP4Experimental;
  std::fprintf(stderr, "unknown matrix protocol: %s\n", name.c_str());
  std::exit(2);
}

dmt::HhProtocol HhProtocolFromName(const std::string& name) {
  if (name == "P1") return dmt::HhProtocol::kP1BatchedMG;
  if (name == "P2") return dmt::HhProtocol::kP2Threshold;
  if (name == "P3") return dmt::HhProtocol::kP3SampleWoR;
  if (name == "P3wr") return dmt::HhProtocol::kP3SampleWR;
  if (name == "P4") return dmt::HhProtocol::kP4Randomized;
  if (name == "exact") return dmt::HhProtocol::kExact;
  std::fprintf(stderr, "unknown hh protocol: %s\n", name.c_str());
  std::exit(2);
}

int RunMatrix(const Args& args) {
  dmt::MatrixTrackerConfig cfg;
  cfg.num_sites = args.sites;
  cfg.epsilon = args.eps;
  cfg.seed = args.seed;
  cfg.protocol = MatrixProtocolFromName(args.protocol);
  dmt::ContinuousMatrixTracker tracker(cfg);
  dmt::stream::Router router(args.sites,
                             dmt::stream::RoutingPolicy::kUniform,
                             args.seed + 1);

  // Data source: registry dataset or CSV file if given, else a synthetic
  // generator.
  dmt::linalg::Matrix csv;
  std::unique_ptr<dmt::data::SyntheticMatrixGenerator> gen;
  size_t n = args.rows;
  if (!args.dataset.empty()) {
    dmt::data::DatasetSpec spec;
    spec.name = args.dataset;
    // Same default as the benches: --data-dir, else DMT_DATA_DIR.
    spec.data_dir = args.data_dir.empty()
                        ? dmt::GetEnvString("DMT_DATA_DIR", "")
                        : args.data_dir;
    spec.max_rows = args.rows;
    spec.seed = args.seed + 2;
    std::string error;
    auto source = dmt::data::OpenDataset(spec, &error);
    if (source == nullptr) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    csv = source->Take(args.rows);
    if (csv.empty()) {
      std::fprintf(stderr, "dataset %s served no rows\n",
                   args.dataset.c_str());
      return 1;
    }
    n = csv.rows();
  } else if (!args.input.empty()) {
    csv = dmt::data::LoadCsv(args.input);
    if (csv.empty()) {
      std::fprintf(stderr, "could not read any rows from %s\n",
                   args.input.c_str());
      return 1;
    }
    n = csv.rows();
  } else {
    auto gen_cfg = args.synthetic == "msd"
                       ? dmt::data::SyntheticMatrixGenerator::MsdLike(
                             args.seed + 2)
                       : dmt::data::SyntheticMatrixGenerator::PamapLike(
                             args.seed + 2);
    gen = std::make_unique<dmt::data::SyntheticMatrixGenerator>(gen_cfg);
  }

  const size_t dim = csv.empty() ? gen->config().dim : csv.cols();
  dmt::matrix::CovarianceTracker truth(dim);
  const size_t checkpoint = std::max<size_t>(1, n / 5);
  std::printf("matrix %s: %zu rows x %zu cols, m=%zu, eps=%g\n\n",
              args.protocol.c_str(), n, dim, args.sites, args.eps);
  std::printf("%12s  %12s  %12s\n", "rows", "err", "messages");
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row =
        csv.empty() ? gen->Next() : csv.RowVector(i);
    truth.AddRow(row);
    tracker.Append(router.NextSite(), row);
    if ((i + 1) % checkpoint == 0 || i + 1 == n) {
      std::printf("%12zu  %12.6f  %12llu\n", i + 1,
                  dmt::matrix::CovarianceError(truth, tracker.SketchGram()),
                  static_cast<unsigned long long>(
                      tracker.comm_stats().total()));
    }
  }
  std::printf("\nnaive would send %zu messages; protocol sent %llu\n", n,
              static_cast<unsigned long long>(
                  tracker.comm_stats().total()));
  return 0;
}

int RunHh(const Args& args) {
  dmt::HhTrackerConfig cfg;
  cfg.num_sites = args.sites;
  cfg.epsilon = args.eps;
  cfg.seed = args.seed;
  cfg.protocol = HhProtocolFromName(args.protocol);
  dmt::ContinuousHeavyHitterTracker tracker(cfg);
  dmt::stream::Router router(args.sites,
                             dmt::stream::RoutingPolicy::kUniform,
                             args.seed + 1);
  dmt::data::ZipfianStream z(args.universe, 2.0, args.beta, args.seed + 2);
  dmt::data::ExactWeights truth;

  std::printf("hh %s: N=%zu, m=%zu, eps=%g, phi=%g, beta=%g\n\n",
              args.protocol.c_str(), args.rows, args.sites, args.eps,
              args.phi, args.beta);
  for (size_t i = 0; i < args.rows; ++i) {
    dmt::data::WeightedItem item = z.Next();
    truth.Observe(item);
    tracker.Observe(router.NextSite(), item.element, item.weight);
  }

  std::printf("%-10s %-16s %-16s\n", "element", "weight(true)",
              "weight(tracked)");
  for (uint64_t e : tracker.HeavyHitters(args.phi)) {
    std::printf("%-10llu %-16.1f %-16.1f\n",
                static_cast<unsigned long long>(e), truth.Weight(e),
                tracker.EstimateWeight(e));
  }
  std::printf("\nmessages: %llu of %zu naive (%.2f%%)\n",
              static_cast<unsigned long long>(tracker.comm_stats().total()),
              args.rows,
              100.0 * static_cast<double>(tracker.comm_stats().total()) /
                  static_cast<double>(args.rows));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = Parse(argc, argv);
  if (args.mode == "matrix") return RunMatrix(args);
  if (args.mode == "hh") return RunHh(args);
  std::fprintf(stderr, "unknown mode: %s (use matrix|hh)\n",
               args.mode.c_str());
  return 2;
}
