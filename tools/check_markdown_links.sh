#!/usr/bin/env bash
# Markdown link checker for README.md and docs/*.md (run by CTest).
#
# Verifies that every relative link target `[text](path)` resolves to an
# existing file or directory, relative to the markdown file that
# contains it. External links (http/https/mailto) are not fetched — this
# guard is for the intra-repo pointers that rot when files move.
#
# Usage: check_markdown_links.sh <repo-root>
set -u

ROOT="${1:-.}"
fail=0
checked=0

for md in "$ROOT"/README.md "$ROOT"/docs/*.md; do
  [ -f "$md" ] || continue
  dir="$(dirname "$md")"
  # Pull out every](target) occurrence; tolerate several links per line.
  while IFS= read -r target; do
    case "$target" in
      http://*|https://*|mailto:*) continue ;;   # external
      '#'*) continue ;;                          # same-file anchor
      '') continue ;;
    esac
    path="${target%%#*}"                         # strip anchors
    checked=$((checked + 1))
    if [ ! -e "$dir/$path" ] && [ ! -e "$ROOT/$path" ]; then
      echo "BROKEN: $md -> $target" >&2
      fail=1
    fi
  done < <(grep -oE '\]\([^)]+\)' "$md" | sed -E 's/^\]\(//; s/\)$//; s/ .*$//')
done

if [ "$fail" -ne 0 ]; then
  echo "markdown link check FAILED" >&2
  exit 1
fi
echo "markdown link check OK ($checked relative links checked)"
