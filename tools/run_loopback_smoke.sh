#!/usr/bin/env bash
# Loopback smoke for the wire transport: one dmt_coordinator plus one
# dmt_site process per site over 127.0.0.1, fixed seed, with --check
# asserting the wire run reproduced the in-process oracle bit-for-bit.
#
#   tools/run_loopback_smoke.sh <tools-bin-dir> [p1|mp2]
#
# Used as a ctest (loopback_smoke_p1 / loopback_smoke_mp2) and by the CI
# transport-smoke job.
set -euo pipefail

BIN_DIR=${1:?usage: run_loopback_smoke.sh <tools-bin-dir> [p1|mp2]}
PROTOCOL=${2:-p1}

SITES=2
N=6000
CHUNK=512
EPS=0.2
SEED=7

WORKDIR=$(mktemp -d)
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT
PORT_FILE="$WORKDIR/port"

COMMON=(--protocol "$PROTOCOL" --sites "$SITES" --n "$N" --chunk "$CHUNK"
        --eps "$EPS" --seed "$SEED" --dim 16 --port-file "$PORT_FILE")

"$BIN_DIR/dmt_coordinator" "${COMMON[@]}" --port 0 --check \
    > "$WORKDIR/coordinator.log" 2>&1 &
COORD_PID=$!

for ((s = 0; s < SITES; ++s)); do
  "$BIN_DIR/dmt_site" "${COMMON[@]}" --site "$s" \
      > "$WORKDIR/site$s.log" 2>&1 &
done

STATUS=0
wait "$COORD_PID" || STATUS=$?
# Collect the site processes too, so a hung or failed site fails the smoke.
for job in $(jobs -p); do
  wait "$job" || STATUS=$?
done

cat "$WORKDIR/coordinator.log"
if [[ $STATUS -ne 0 ]]; then
  echo "--- site logs ---"
  cat "$WORKDIR"/site*.log
  echo "loopback smoke FAILED (exit $STATUS)" >&2
  exit "$STATUS"
fi
grep -q "EQUIVALENCE OK" "$WORKDIR/coordinator.log" || {
  echo "loopback smoke FAILED: coordinator did not report equivalence" >&2
  exit 1
}
echo "loopback smoke OK ($PROTOCOL, $SITES sites, $N arrivals)"
