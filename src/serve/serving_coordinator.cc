#include "serve/serving_coordinator.h"

#include <utility>

#include "util/check.h"

namespace dmt {
namespace serve {

ServingCoordinator::ServingCoordinator(SnapshotStore* store)
    : store_(store) {
  DMT_CHECK(store != nullptr);
}

ServingCoordinator::~ServingCoordinator() { Detach(); }

void ServingCoordinator::AttachHH(stream::SimulationDriver* driver,
                                  const hh::HeavyHitterProtocol* protocol) {
  DMT_CHECK(driver != nullptr);
  AttachHHProtocol(protocol);
  driver_ = driver;
  driver_->set_window_callback([this](const stream::WindowEndInfo& info) {
    PublishWindow(info.window_index, info.arrivals_total);
  });
}

void ServingCoordinator::AttachMatrix(
    stream::SimulationDriver* driver,
    const matrix::MatrixTrackingProtocol* protocol) {
  DMT_CHECK(driver != nullptr);
  AttachMatrixProtocol(protocol);
  driver_ = driver;
  driver_->set_window_callback([this](const stream::WindowEndInfo& info) {
    PublishWindow(info.window_index, info.arrivals_total);
  });
}

void ServingCoordinator::AttachHHProtocol(
    const hh::HeavyHitterProtocol* protocol) {
  DMT_CHECK(protocol != nullptr);
  Detach();
  hh_ = protocol;
}

void ServingCoordinator::AttachMatrixProtocol(
    const matrix::MatrixTrackingProtocol* protocol) {
  DMT_CHECK(protocol != nullptr);
  Detach();
  matrix_ = protocol;
}

void ServingCoordinator::Detach() {
  if (driver_ != nullptr) {
    driver_->set_window_callback({});
    driver_ = nullptr;
  }
  hh_ = nullptr;
  matrix_ = nullptr;
}

void ServingCoordinator::PublishWindow(uint64_t window_index,
                                       uint64_t items_ingested) {
  DMT_CHECK(hh_ != nullptr || matrix_ != nullptr);
  if (hh_ != nullptr) {
    Publish(BuildSnapshot(*hh_, window_index, items_ingested));
  } else {
    Publish(BuildSnapshot(*matrix_, window_index, items_ingested));
  }
}

void ServingCoordinator::Publish(std::unique_ptr<const Snapshot> snap) {
  if (observer_) observer_(*snap);
  store_->Publish(std::move(snap));
  ++windows_published_;
}

}  // namespace serve
}  // namespace dmt
