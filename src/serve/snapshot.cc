#include "serve/snapshot.h"

#include <algorithm>
#include <utility>

#include "linalg/svd.h"
#include "util/check.h"
#include "util/codec.h"

namespace dmt {
namespace serve {
namespace {

// Precomputes the HH query structures from element-ascending entries.
void FinishHHSection(std::vector<HHEntry> by_element, Snapshot* snap) {
  snap->has_hh = true;
  snap->by_element = std::move(by_element);
  snap->by_weight = snap->by_element;
  std::sort(snap->by_weight.begin(), snap->by_weight.end(),
            [](const HHEntry& a, const HHEntry& b) {
              if (a.weight != b.weight) return a.weight > b.weight;
              return a.element < b.element;
            });
  snap->prefix_weight.resize(snap->by_weight.size());
  double running = 0.0;
  for (size_t i = 0; i < snap->by_weight.size(); ++i) {
    running += snap->by_weight[i].weight;
    snap->prefix_weight[i] = running;
  }
}

// Factors the sketch B = UΣVᵀ into the snapshot's σ / V query structures.
// An empty sketch (no rows yet, or a zero-row FD buffer) leaves them
// empty — the QueryEngine's documented empty-state answers apply.
void FinishMatrixSection(linalg::Matrix sketch, Snapshot* snap) {
  snap->has_matrix = true;
  snap->sketch = std::move(sketch);
  snap->sketch_sq_frob = snap->sketch.SquaredFrobeniusNorm();
  if (snap->sketch.empty()) return;
  linalg::SvdResult svd = linalg::ThinSVD(snap->sketch);
  snap->sigma = std::move(svd.sigma);
  snap->right_vectors = std::move(svd.v);
}

}  // namespace

std::unique_ptr<const Snapshot> BuildEmptySnapshot() {
  return std::make_unique<Snapshot>();
}

std::unique_ptr<const Snapshot> BuildSnapshot(
    const hh::HeavyHitterProtocol& protocol, uint64_t window_index,
    uint64_t items_ingested) {
  auto snap = std::make_unique<Snapshot>();
  snap->window_index = window_index;
  snap->items_ingested = items_ingested;
  snap->total_weight = protocol.EstimateTotalWeight();
  std::vector<hh::HHSnapshotEntry> exported =
      protocol.ExportSnapshotEntries();
  std::vector<HHEntry> entries(exported.size());
  for (size_t i = 0; i < exported.size(); ++i) {
    entries[i] = HHEntry{exported[i].element, exported[i].weight};
  }
  FinishHHSection(std::move(entries), snap.get());
  return snap;
}

std::unique_ptr<const Snapshot> BuildSnapshot(
    const matrix::MatrixTrackingProtocol& protocol, uint64_t window_index,
    uint64_t items_ingested) {
  auto snap = std::make_unique<Snapshot>();
  snap->window_index = window_index;
  snap->items_ingested = items_ingested;
  FinishMatrixSection(protocol.ExportSnapshotSketch(), snap.get());
  return snap;
}

std::unique_ptr<const Snapshot> BuildWindowedSnapshot(
    const sketch::SlidingWindowFD& window_fd, bool include_straddling,
    uint64_t window_index, uint64_t items_ingested) {
  auto snap = std::make_unique<Snapshot>();
  snap->window_index = window_index;
  snap->items_ingested = items_ingested;
  // ExportSketch deep-copies the block buffers by contract; the returned
  // matrix owns every row, so this snapshot survives subsequent appends.
  FinishMatrixSection(window_fd.ExportSketch(include_straddling),
                      snap.get());
  return snap;
}

void SerializeSnapshot(const Snapshot& snapshot, std::vector<uint8_t>* out) {
  DMT_CHECK(out != nullptr);
  out->clear();
  ByteWriter w(out);
  w.Put<uint64_t>(snapshot.window_index);
  w.Put<uint64_t>(snapshot.items_ingested);

  w.Put<uint8_t>(snapshot.has_hh ? 1 : 0);
  w.Put<uint64_t>(snapshot.by_weight.size());
  for (const HHEntry& e : snapshot.by_weight) {
    w.Put<uint64_t>(e.element);
    w.Put<double>(e.weight);
  }
  w.Put<uint64_t>(snapshot.by_element.size());
  for (const HHEntry& e : snapshot.by_element) {
    w.Put<uint64_t>(e.element);
    w.Put<double>(e.weight);
  }
  w.Put<uint64_t>(snapshot.prefix_weight.size());
  for (double p : snapshot.prefix_weight) w.Put<double>(p);
  w.Put<double>(snapshot.total_weight);

  w.Put<uint8_t>(snapshot.has_matrix ? 1 : 0);
  w.Put<uint64_t>(snapshot.sketch.rows());
  w.Put<uint64_t>(snapshot.sketch.cols());
  if (!snapshot.sketch.empty()) {
    w.PutBytes(snapshot.sketch.Row(0),
               snapshot.sketch.rows() * snapshot.sketch.cols() *
                   sizeof(double));
  }
  w.Put<uint64_t>(snapshot.sigma.size());
  for (double s : snapshot.sigma) w.Put<double>(s);
  w.Put<uint64_t>(snapshot.right_vectors.rows());
  w.Put<uint64_t>(snapshot.right_vectors.cols());
  if (!snapshot.right_vectors.empty()) {
    w.PutBytes(snapshot.right_vectors.Row(0),
               snapshot.right_vectors.rows() *
                   snapshot.right_vectors.cols() * sizeof(double));
  }
  w.Put<double>(snapshot.sketch_sq_frob);
}

uint64_t SnapshotChecksum(const Snapshot& snapshot) {
  std::vector<uint8_t> bytes;
  SerializeSnapshot(snapshot, &bytes);
  // FNV-1a, 64-bit.
  uint64_t h = 14695981039346656037ull;
  for (uint8_t b : bytes) {
    h ^= b;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace serve
}  // namespace dmt
