// Query facade over one immutable serve::Snapshot.
//
// Every answer is computed from the snapshot's precomputed structures —
// the (weight desc, element asc) HH order with prefix weights, the
// element-sorted lookup index, and the factored sketch B = UΣVᵀ — so no
// query re-sorts, re-scans protocol state, or re-decomposes. All methods
// are const, deterministic (fixed iteration order, no wall-clock, no
// RNG), and safe to call from any number of threads at once on the same
// snapshot.
//
// Empty-state contract (the pre-first-window snapshot, or a section the
// tracked protocol doesn't populate): every query returns the documented
// empty result — empty vectors, zero weights/norms — never UB. Invalid
// *arguments* (zero k, zero rank, non-positive phi, dimension mismatch
// against a non-empty sketch) abort via DMT_CHECK: they are caller bugs,
// not data states (death-tested by tests/serving_edge_test.cc).
#ifndef DMT_SERVE_QUERY_ENGINE_H_
#define DMT_SERVE_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "serve/snapshot.h"

namespace dmt {
namespace serve {

/// Lightweight, copyable view answering queries from one snapshot. Does
/// not own or pin the snapshot — hold the SnapshotRef for at least as
/// long as the engine.
class QueryEngine {
 public:
  explicit QueryEngine(const Snapshot* snapshot);

  const Snapshot& snapshot() const { return *snapshot_; }
  uint64_t window_index() const { return snapshot_->window_index; }
  uint64_t items_ingested() const { return snapshot_->items_ingested; }

  // --- Heavy-hitter queries ---

  /// Number of tracked elements (0 when no HH section).
  size_t TrackedCount() const { return snapshot_->by_weight.size(); }

  /// The k heaviest tracked elements, (weight desc, element asc); fewer
  /// than k when fewer are tracked, empty on an empty snapshot. k ≥ 1.
  std::vector<HHEntry> TopK(size_t k) const;

  /// Total estimated weight of the k heaviest tracked elements (0 when
  /// nothing is tracked). k ≥ 1.
  double TopKMass(size_t k) const;

  /// Coordinator estimate for one element; 0 for untracked elements
  /// (binary search on the element-sorted index).
  double ElementWeight(uint64_t element) const;

  /// Coordinator estimate of the total stream weight W (0 pre-window).
  double TotalWeight() const { return snapshot_->total_weight; }

  /// Elements passing the paper's report rule
  /// estimate/W ≥ phi − eps/2, in (weight desc, element asc) order.
  /// Empty when W ≤ 0. Requires phi > 0 and eps ≥ 0.
  std::vector<HHEntry> HeavyHitters(double phi, double eps) const;

  // --- Matrix queries ---

  /// Rows/cols of the snapshot sketch B (0 when empty).
  size_t SketchRows() const { return snapshot_->sketch.rows(); }
  size_t SketchCols() const { return snapshot_->sketch.cols(); }

  /// ‖B‖²_F (0 when empty).
  double SketchSquaredFrobenius() const {
    return snapshot_->sketch_sq_frob;
  }

  /// The k largest singular values of B, descending; fewer when B has
  /// lower rank, empty on an empty sketch. k ≥ 1.
  std::vector<double> TopSingularValues(size_t k) const;

  /// Projection of x onto the top-`rank` right singular directions of B:
  /// Σ_{i<r} (vᵢᵀx) vᵢ with r = min(rank, #directions). rank ≥ 1;
  /// x.size() must equal SketchCols() when the sketch is non-empty.
  /// Returns the zero vector of x's size on an empty sketch.
  std::vector<double> ProjectRow(const std::vector<double>& x,
                                 size_t rank) const;

  /// ‖Bx‖² — the covariance quadratic form the paper's tracking bound
  /// |‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F is stated over. Computed directly from
  /// the sketch rows (bit-identical to querying the protocol sketch).
  /// x.size() must equal SketchCols() when the sketch is non-empty;
  /// returns 0 on an empty sketch.
  double CovarianceQuadraticForm(const std::vector<double>& x) const;

 private:
  const Snapshot* snapshot_;
};

}  // namespace serve
}  // namespace dmt

#endif  // DMT_SERVE_QUERY_ENGINE_H_
