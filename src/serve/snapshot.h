// Immutable sketch snapshots — the unit of publication of the serving
// layer (src/serve).
//
// A Snapshot is a self-contained, deeply-copied image of the coordinator's
// queryable state at one synchronization-window boundary, plus the
// precomputed per-snapshot query structures the QueryEngine answers from:
//
//  * heavy hitters — every tracked element with its estimate, held twice:
//    sorted by (weight desc, element asc) with prefix weights (top-k and
//    top-k-mass queries are one slice / one array read), and sorted by
//    element (point lookups are one binary search);
//  * matrix — the coordinator sketch B with its factorization B = UΣVᵀ
//    (σ descending, V's columns the right singular vectors), so low-rank
//    projection and top-k direction queries never decompose at read time.
//
// Snapshots are built on the ingestion thread at window boundaries
// (serve::ServingCoordinator) and published through serve::SnapshotStore;
// after construction they are never mutated, which is what makes lock-free
// concurrent reads safe. Nothing in a Snapshot aliases live protocol or
// sketch state — builders deep-copy by contract (the regression tests pin
// a snapshot, mutate the source, and re-verify the checksum).
#ifndef DMT_SERVE_SNAPSHOT_H_
#define DMT_SERVE_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "hh/hh_protocol.h"
#include "linalg/matrix.h"
#include "matrix/matrix_protocol.h"
#include "sketch/sliding_window_fd.h"

namespace dmt {
namespace serve {

/// One tracked element with its coordinator estimate.
struct HHEntry {
  uint64_t element = 0;
  double weight = 0.0;
};

/// Immutable queryable image of the coordinator at one window boundary.
/// `window_index` 0 is the pre-first-window empty snapshot; real windows
/// publish 1, 2, ... in schedule order.
struct Snapshot {
  uint64_t window_index = 0;
  /// Stream arrivals (items or rows) absorbed up to this boundary.
  uint64_t items_ingested = 0;

  // --- Heavy-hitter section (has_hh) ---
  bool has_hh = false;
  /// Sorted by (weight desc, element asc) — the top-k order.
  std::vector<HHEntry> by_weight;
  /// The same entries sorted by element — the point-lookup index.
  std::vector<HHEntry> by_element;
  /// prefix_weight[i] = sum of by_weight[0..i].weight (top-k mass).
  std::vector<double> prefix_weight;
  /// Coordinator estimate of the total stream weight W.
  double total_weight = 0.0;

  // --- Matrix section (has_matrix) ---
  bool has_matrix = false;
  /// The coordinator sketch B (deep copy; rows stacked).
  linalg::Matrix sketch;
  /// Singular values of B, descending (length min(rows, cols); empty for
  /// an empty sketch).
  std::vector<double> sigma;
  /// d x r matrix whose columns are B's right singular vectors (the V of
  /// B = UΣVᵀ); empty for an empty sketch.
  linalg::Matrix right_vectors;
  /// ‖B‖²_F of the snapshot sketch.
  double sketch_sq_frob = 0.0;
};

/// Builds the pre-first-window snapshot: no sections, everything empty.
/// Every query on it returns the documented empty-state result.
std::unique_ptr<const Snapshot> BuildEmptySnapshot();

/// Exports a heavy-hitter protocol's coordinator state. Must be called
/// between synchronization rounds (same contract as comm_stats()).
std::unique_ptr<const Snapshot> BuildSnapshot(
    const hh::HeavyHitterProtocol& protocol, uint64_t window_index,
    uint64_t items_ingested);

/// Exports a matrix protocol's coordinator sketch and factors it. Must be
/// called between synchronization rounds.
std::unique_ptr<const Snapshot> BuildSnapshot(
    const matrix::MatrixTrackingProtocol& protocol, uint64_t window_index,
    uint64_t items_ingested);

/// Exports a sliding-window FD sketch as a matrix snapshot. The sketch
/// matrix is deep-copied out of the live block buffers (never aliased), so
/// the snapshot stays bit-identical while the window keeps sliding —
/// regression-pinned by tests/sliding_window_fd_test.cc.
std::unique_ptr<const Snapshot> BuildWindowedSnapshot(
    const sketch::SlidingWindowFD& window_fd, bool include_straddling,
    uint64_t window_index, uint64_t items_ingested);

/// Canonical byte serialization: every field in a fixed order, integers
/// and doubles as little-endian fixed-width images (doubles bit-exact).
/// Two snapshots serialize identically iff they are bit-identical — the
/// torn-read detector of the concurrency tests.
void SerializeSnapshot(const Snapshot& snapshot, std::vector<uint8_t>* out);

/// FNV-1a (64-bit) over SerializeSnapshot's bytes.
uint64_t SnapshotChecksum(const Snapshot& snapshot);

}  // namespace serve
}  // namespace dmt

#endif  // DMT_SERVE_SNAPSHOT_H_
