// ServingCoordinator — glue between ingestion and the snapshot store.
//
// Wraps a protocol run (stream::SimulationDriver in-process, or the
// src/net wire coordinator loop) and publishes one immutable
// serve::Snapshot into a SnapshotStore after every synchronization
// window, from the coordinator thread, while the protocol is in its
// between-rounds state. Reader threads meanwhile acquire snapshots
// through serve::SnapshotReader and answer queries with
// serve::QueryEngine — ingestion never blocks on them.
//
// Usage (in-process):
//
//   serve::SnapshotStore store;
//   serve::ServingCoordinator serving(&store);
//   serving.AttachMatrix(&driver, protocol.get());   // hooks the driver
//   driver.Run(protocol.get(), sites, rows);         // publishes per window
//
// Usage (wire):
//
//   serve::ServingCoordinator serving(&store);
//   serving.AttachMatrixProtocol(&mp2);
//   net::RunWireCoordinator(&adapter, &channels, windows, &report, &err,
//                           [&](size_t w) { serving.PublishWindow(w, 0); });
//
// Publication order is the schedule's window order; window_index is the
// 1-based drained-window count (0 names the pre-attach empty snapshot).
#ifndef DMT_SERVE_SERVING_COORDINATOR_H_
#define DMT_SERVE_SERVING_COORDINATOR_H_

#include <cstdint>
#include <functional>

#include "hh/hh_protocol.h"
#include "matrix/matrix_protocol.h"
#include "serve/snapshot.h"
#include "serve/snapshot_store.h"
#include "stream/simulation_driver.h"

namespace dmt {
namespace serve {

/// Publishes protocol snapshots into a SnapshotStore at window
/// boundaries. Single-threaded (the coordinator/ingestion thread); only
/// the store it publishes into is shared with readers.
class ServingCoordinator {
 public:
  /// Does not take ownership of the store.
  explicit ServingCoordinator(SnapshotStore* store);
  ~ServingCoordinator();
  ServingCoordinator(const ServingCoordinator&) = delete;
  ServingCoordinator& operator=(const ServingCoordinator&) = delete;

  /// Hooks `driver`'s window callback: after every drained window,
  /// exports `protocol`'s coordinator state and publishes it. Replaces
  /// any previous attachment (and any previous callback on `driver`).
  /// Both pointers must outlive this object or the next Attach/Detach.
  void AttachHH(stream::SimulationDriver* driver,
                const hh::HeavyHitterProtocol* protocol);
  void AttachMatrix(stream::SimulationDriver* driver,
                    const matrix::MatrixTrackingProtocol* protocol);

  /// Protocol-only attachments for runs this class does not drive (the
  /// wire coordinator loop): the caller invokes PublishWindow() itself.
  void AttachHHProtocol(const hh::HeavyHitterProtocol* protocol);
  void AttachMatrixProtocol(const matrix::MatrixTrackingProtocol* protocol);

  /// Clears the driver hook and the protocol attachment.
  void Detach();

  /// Exports the attached protocol's state as a snapshot for window
  /// `window_index` and publishes it. Call only from the coordinator
  /// thread, only between rounds. DMT_CHECKs that a protocol is attached.
  void PublishWindow(uint64_t window_index, uint64_t items_ingested);

  /// Test/bench hook: observes every snapshot right before publication,
  /// on the publishing thread. The oracle recorder of
  /// tests/serving_concurrency_test.cc. Pass empty to clear.
  void set_publish_observer(std::function<void(const Snapshot&)> observer) {
    observer_ = std::move(observer);
  }

  /// Windows published through this coordinator so far.
  uint64_t windows_published() const { return windows_published_; }

  SnapshotStore* store() const { return store_; }

 private:
  void Publish(std::unique_ptr<const Snapshot> snap);

  SnapshotStore* store_;
  stream::SimulationDriver* driver_ = nullptr;
  const hh::HeavyHitterProtocol* hh_ = nullptr;
  const matrix::MatrixTrackingProtocol* matrix_ = nullptr;
  std::function<void(const Snapshot&)> observer_;
  uint64_t windows_published_ = 0;
};

}  // namespace serve
}  // namespace dmt

#endif  // DMT_SERVE_SERVING_COORDINATOR_H_
