#include "serve/query_engine.h"

#include <algorithm>

#include "util/check.h"

namespace dmt {
namespace serve {

QueryEngine::QueryEngine(const Snapshot* snapshot) : snapshot_(snapshot) {
  DMT_CHECK(snapshot != nullptr);
}

std::vector<HHEntry> QueryEngine::TopK(size_t k) const {
  DMT_CHECK_GE(k, 1u);
  const std::vector<HHEntry>& by_weight = snapshot_->by_weight;
  const size_t n = std::min(k, by_weight.size());
  return std::vector<HHEntry>(by_weight.begin(),
                              by_weight.begin() + static_cast<long>(n));
}

double QueryEngine::TopKMass(size_t k) const {
  DMT_CHECK_GE(k, 1u);
  const std::vector<double>& prefix = snapshot_->prefix_weight;
  if (prefix.empty()) return 0.0;
  return prefix[std::min(k, prefix.size()) - 1];
}

double QueryEngine::ElementWeight(uint64_t element) const {
  const std::vector<HHEntry>& idx = snapshot_->by_element;
  auto it = std::lower_bound(idx.begin(), idx.end(), element,
                             [](const HHEntry& e, uint64_t value) {
                               return e.element < value;
                             });
  if (it == idx.end() || it->element != element) return 0.0;
  return it->weight;
}

std::vector<HHEntry> QueryEngine::HeavyHitters(double phi,
                                               double eps) const {
  DMT_CHECK_GT(phi, 0.0);
  DMT_CHECK_GE(eps, 0.0);
  std::vector<HHEntry> out;
  const double total = snapshot_->total_weight;
  if (total <= 0.0) return out;
  const double cut = (phi - eps / 2.0) * total;
  // by_weight is weight-descending, so the qualifying set is a prefix.
  for (const HHEntry& e : snapshot_->by_weight) {
    if (e.weight < cut) break;
    out.push_back(e);
  }
  return out;
}

std::vector<double> QueryEngine::TopSingularValues(size_t k) const {
  DMT_CHECK_GE(k, 1u);
  const std::vector<double>& sigma = snapshot_->sigma;
  const size_t n = std::min(k, sigma.size());
  return std::vector<double>(sigma.begin(),
                             sigma.begin() + static_cast<long>(n));
}

std::vector<double> QueryEngine::ProjectRow(const std::vector<double>& x,
                                            size_t rank) const {
  DMT_CHECK_GE(rank, 1u);
  const linalg::Matrix& v = snapshot_->right_vectors;
  if (v.empty()) return std::vector<double>(x.size(), 0.0);
  DMT_CHECK_EQ(x.size(), v.rows());
  const size_t r = std::min(rank, v.cols());
  std::vector<double> out(x.size(), 0.0);
  for (size_t i = 0; i < r; ++i) {
    double coef = 0.0;
    for (size_t j = 0; j < v.rows(); ++j) coef += v(j, i) * x[j];
    for (size_t j = 0; j < v.rows(); ++j) out[j] += coef * v(j, i);
  }
  return out;
}

double QueryEngine::CovarianceQuadraticForm(
    const std::vector<double>& x) const {
  const linalg::Matrix& b = snapshot_->sketch;
  if (b.empty()) return 0.0;
  DMT_CHECK_EQ(x.size(), b.cols());
  return b.SquaredNormAlong(x);
}

}  // namespace serve
}  // namespace dmt
