// Epoch-based RCU snapshot publication — the concurrency core of the
// serving layer.
//
// One writer (the ingestion thread, at synchronization-window boundaries)
// publishes immutable serve::Snapshot objects; many readers acquire the
// current snapshot without ever blocking the writer, and the writer never
// blocks a reader. The scheme is a hybrid of epoch-based reclamation (for
// the acquisition race) and per-snapshot reference counts (for long-term
// pins):
//
//   reader (SnapshotReader::Acquire, wait-free):
//     1. announce: slot.epoch ← global epoch        (seq_cst store)
//     2. load the current Published* pointer        (seq_cst load)
//     3. pin: published.refs += 1                   (acq_rel RMW)
//     4. quiesce: slot.epoch ← kQuiescent           (release store)
//     The returned SnapshotRef holds the refcount until destroyed.
//
//   writer (SnapshotStore::Publish, lock-free):
//     1. swap: current ← new Published              (seq_cst exchange)
//     2. retire the old pointer at epoch E, then global epoch ← E + 1
//     3. reclaim scan: free a retired Published only when refs == 0 AND
//        every reader slot is quiescent or announced an epoch > E.
//
// Why no torn acquisition is possible: announce (1) and pointer load (2)
// are both seq_cst, as are the writer's swap and its scan of the slots.
// If a reader loaded the *old* pointer, its announce is ordered before the
// writer's swap in the single total order of seq_cst operations, hence
// before the writer's scan — so the scan observes an announced epoch
// ≤ E and refuses to free until the reader either quiesces (after taking
// its refcount, which then blocks the free by itself) or moves to a later
// epoch (proving it can no longer hold the retired pointer unpinned).
//
// Readers never free memory and never loop: Acquire is a constant number
// of atomic operations (wait-free). The writer never waits on readers
// either — a still-pinned old snapshot simply stays on the retire list
// until a later Publish (or the destructor) reclaims it, which is what
// makes long-term snapshot pinning safe (tested by
// tests/serving_concurrency_test.cc, SnapshotPinning*).
#ifndef DMT_SERVE_SNAPSHOT_STORE_H_
#define DMT_SERVE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "serve/snapshot.h"
#include "util/aligned.h"
#include "util/contracts.h"

namespace dmt {
namespace serve {

class SnapshotStore;
class SnapshotReader;

/// A pinned, immutable snapshot. Holds one reference on the published
/// entry; the snapshot stays valid and bit-identical for the life of the
/// ref, no matter how many newer windows publish. Movable, not copyable.
/// Thread-compatible: one ref belongs to one thread (acquire more refs for
/// more threads).
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& other) noexcept;
  SnapshotRef& operator=(SnapshotRef&& other) noexcept;
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  ~SnapshotRef();

  /// The pinned snapshot; nullptr only on a default-constructed or
  /// moved-from ref.
  const Snapshot* get() const { return snapshot_; }
  const Snapshot& operator*() const { return *snapshot_; }
  const Snapshot* operator->() const { return snapshot_; }
  explicit operator bool() const { return snapshot_ != nullptr; }

  /// Drops the pin (idempotent).
  void Reset();

 private:
  friend class SnapshotReader;
  SnapshotRef(std::atomic<uint64_t>* refs, const Snapshot* snapshot)
      : refs_(refs), snapshot_(snapshot) {}

  // Points at the owning Published::refs pin count (publish-classified
  // there); the pointer itself is plain data owned by this ref.
  DMT_ATOMIC_PUBLISH std::atomic<uint64_t>* refs_ = nullptr;
  const Snapshot* snapshot_ = nullptr;
};

/// One reader thread's registration with a SnapshotStore. Each reader
/// thread constructs its own SnapshotReader (claiming one announcement
/// slot) and calls Acquire() as often as it likes; Acquire is wait-free
/// and never blocks or is blocked by the writer. A SnapshotReader must
/// not outlive its store and must stay on one thread.
class SnapshotReader {
 public:
  explicit SnapshotReader(SnapshotStore* store);
  ~SnapshotReader();
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Pins and returns the currently published snapshot. Never returns a
  /// null ref: the store always has at least the empty pre-first-window
  /// snapshot published.
  SnapshotRef Acquire();

 private:
  SnapshotStore* store_;
  size_t slot_;
};

/// The single-writer, many-reader snapshot store. The writer thread calls
/// Publish() at window boundaries; reader threads go through
/// SnapshotReader. Reclamation of superseded snapshots happens on the
/// writer thread only (inside Publish and the destructor), so readers
/// never free memory.
class SnapshotStore {
 public:
  /// `max_readers` bounds the number of concurrently-registered
  /// SnapshotReaders (announcement slots are preallocated — registration
  /// is lock-free and slots recycle on reader destruction). Starts with
  /// BuildEmptySnapshot() published.
  explicit SnapshotStore(size_t max_readers = kDefaultMaxReaders);
  ~SnapshotStore();
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  static constexpr size_t kDefaultMaxReaders = 64;

  /// Publishes `snapshot` as the new current snapshot and retires the old
  /// one. Writer thread only. Attempts reclamation of every retired
  /// snapshot whose pins and epochs allow it.
  void Publish(std::unique_ptr<const Snapshot> snapshot);

  /// Snapshots retired but not yet reclaimed (still pinned or possibly
  /// visible to an in-flight Acquire). Writer thread only; test hook.
  DMT_WRITER_SIDE size_t retired_count() const { return retired_.size(); }

  /// Total snapshots reclaimed (freed) so far. Writer thread only.
  DMT_WRITER_SIDE uint64_t reclaimed_count() const { return reclaimed_; }

  size_t max_readers() const { return slots_.size(); }

 private:
  friend class SnapshotReader;

  /// Announced-epoch value meaning "not inside Acquire".
  static constexpr uint64_t kQuiescent = UINT64_MAX;

  /// One published snapshot plus its pin count and retirement epoch.
  struct Published {
    explicit Published(std::unique_ptr<const Snapshot> s)
        : snap(std::move(s)) {}
    std::unique_ptr<const Snapshot> snap;
    DMT_ATOMIC_PUBLISH std::atomic<uint64_t> refs{0};
    // Set when retired; read only by the writer's reclaim scan.
    DMT_GUARDED_BY(writer) uint64_t retire_epoch = 0;
  };

  /// One reader announcement slot, alone on its cache line so reader
  /// announcements never false-share with each other or the writer's
  /// fields.
  struct alignas(kCacheLineBytes) Slot {
    DMT_ATOMIC_PUBLISH std::atomic<uint64_t> epoch{kQuiescent};
    DMT_ATOMIC_PUBLISH std::atomic<bool> in_use{false};
  };

  size_t ClaimSlot();
  void ReleaseSlot(size_t slot);
  /// Frees every retired snapshot not blocked by a pin or an announced
  /// epoch ≤ its retirement epoch. Writer thread only.
  void Reclaim();

  CacheAlignedVector<Slot> slots_;
  DMT_ATOMIC_PUBLISH std::atomic<Published*> current_;
  DMT_ATOMIC_PUBLISH std::atomic<uint64_t> epoch_{0};
  DMT_GUARDED_BY(writer) std::vector<Published*> retired_;
  DMT_GUARDED_BY(writer) uint64_t reclaimed_ = 0;
};

}  // namespace serve
}  // namespace dmt

#endif  // DMT_SERVE_SNAPSHOT_STORE_H_
