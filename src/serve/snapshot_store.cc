#include "serve/snapshot_store.h"

#include <utility>

#include "util/check.h"

namespace dmt {
namespace serve {

// --- SnapshotRef ---

SnapshotRef::SnapshotRef(SnapshotRef&& other) noexcept
    : refs_(other.refs_), snapshot_(other.snapshot_) {
  other.refs_ = nullptr;
  other.snapshot_ = nullptr;
}

SnapshotRef& SnapshotRef::operator=(SnapshotRef&& other) noexcept {
  if (this != &other) {
    Reset();
    refs_ = other.refs_;
    snapshot_ = other.snapshot_;
    other.refs_ = nullptr;
    other.snapshot_ = nullptr;
  }
  return *this;
}

SnapshotRef::~SnapshotRef() { Reset(); }

void SnapshotRef::Reset() {
  if (refs_ != nullptr) {
    // Release pairs with the writer's acquire read in Reclaim(): every
    // access this reader made to the snapshot happens-before the writer
    // observes refs == 0 and frees it.
    refs_->fetch_sub(1, std::memory_order_release);
    refs_ = nullptr;
    snapshot_ = nullptr;
  }
}

// --- SnapshotReader ---

SnapshotReader::SnapshotReader(SnapshotStore* store)
    : store_(store), slot_(store->ClaimSlot()) {}

SnapshotReader::~SnapshotReader() { store_->ReleaseSlot(slot_); }

SnapshotRef SnapshotReader::Acquire() {
  SnapshotStore::Slot& slot = store_->slots_[slot_];
  // 1. Announce the epoch we are entering under. seq_cst so the announce
  //    is ordered before the pointer load below in the single total order
  //    — the writer's swap-then-scan relies on that order (see the
  //    file comment in snapshot_store.h).
  slot.epoch.store(store_->epoch_.load(std::memory_order_seq_cst),
                   std::memory_order_seq_cst);
  // 2. Load the current publication.
  SnapshotStore::Published* pub =
      store_->current_.load(std::memory_order_seq_cst);
  // 3. Pin it. Acquire so the snapshot's construction (sequenced before
  //    the writer's swap, which this load synchronized with) is visible;
  //    the RMW also makes the pin visible to the writer's reclaim scan.
  pub->refs.fetch_add(1, std::memory_order_acq_rel);
  // 4. Quiesce. Release so the pin above is ordered before the slot
  //    reads as quiescent.
  slot.epoch.store(SnapshotStore::kQuiescent, std::memory_order_release);
  return SnapshotRef(&pub->refs, pub->snap.get());
}

// --- SnapshotStore ---

SnapshotStore::SnapshotStore(size_t max_readers) : slots_(max_readers) {
  DMT_CHECK_GE(max_readers, 1u);
  current_.store(new Published(BuildEmptySnapshot()),
                 std::memory_order_release);
}

SnapshotStore::~SnapshotStore() {
  // No readers may be live here (SnapshotReader must not outlive the
  // store); outstanding SnapshotRefs would dangle, so pins must be gone
  // too. Free everything unconditionally.
  delete current_.load(std::memory_order_acquire);
  for (Published* p : retired_) delete p;
}

size_t SnapshotStore::ClaimSlot() {
  for (size_t i = 0; i < slots_.size(); ++i) {
    bool expected = false;
    if (slots_[i].in_use.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel,
            std::memory_order_acquire)) {
      slots_[i].epoch.store(kQuiescent, std::memory_order_release);
      return i;
    }
  }
  DMT_CHECK(false);  // more concurrent readers than max_readers
  return 0;
}

void SnapshotStore::ReleaseSlot(size_t slot) {
  slots_[slot].epoch.store(kQuiescent, std::memory_order_release);
  slots_[slot].in_use.store(false, std::memory_order_release);
}

DMT_WRITER_SIDE
void SnapshotStore::Publish(std::unique_ptr<const Snapshot> snapshot) {
  DMT_CHECK(snapshot != nullptr);
  Published* fresh = new Published(std::move(snapshot));
  // Swap in the new publication. seq_cst exchange: readers that loaded
  // the *old* pointer announced their epoch before this point in the
  // seq_cst total order (their announce precedes their load precedes
  // this swap), so the scan below cannot miss them.
  Published* old = current_.exchange(fresh, std::memory_order_seq_cst);
  // Retire the old publication at the epoch value *before* the bump:
  // every reader announced at ≤ retire_epoch may still be acquiring it;
  // a reader announced at > retire_epoch provably loaded a newer pointer.
  old->retire_epoch = epoch_.fetch_add(1, std::memory_order_seq_cst);
  retired_.push_back(old);
  Reclaim();
}

DMT_WRITER_SIDE
void SnapshotStore::Reclaim() {
  size_t kept = 0;
  for (size_t i = 0; i < retired_.size(); ++i) {
    Published* p = retired_[i];
    bool blocked = false;
    for (const Slot& s : slots_) {
      if (!s.in_use.load(std::memory_order_acquire)) continue;
      const uint64_t announced = s.epoch.load(std::memory_order_seq_cst);
      // A reader announced at an epoch ≤ this snapshot's retirement
      // epoch may be between its pointer load and its refcount
      // increment right now — conservatively keep the snapshot until
      // the reader quiesces (then its pin, if any, blocks by itself)
      // or announces a later epoch.
      if (announced != kQuiescent && announced <= p->retire_epoch) {
        blocked = true;
        break;
      }
    }
    // The refcount is checked only AFTER the slot scan, and the order
    // matters: a reader that quiesced before the scan published its pin
    // with the release store the scan's load acquired, so the pin is
    // visible here; a reader still between pointer load and pin is
    // caught by the scan itself. Checking refs first would race with a
    // reader pinning mid-scan.
    if (!blocked && p->refs.load(std::memory_order_acquire) != 0) {
      blocked = true;
    }
    if (blocked) {
      retired_[kept++] = p;
    } else {
      delete p;
      ++reclaimed_;
    }
  }
  retired_.resize(kept);
}

}  // namespace serve
}  // namespace dmt
