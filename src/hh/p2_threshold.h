// Protocol P2: per-element threshold reports (paper Algorithms 4.3 / 4.4),
// the weighted extension of Yi & Zhang's deterministic tracker.
//
// A site accumulates, per element, the weight delta since it last reported
// that element, and separately the total local weight W_i since its last
// scalar report. When either crosses (eps/m) * W-hat, only that quantity is
// sent. The coordinator adds scalar reports into W-hat and, after m of
// them, broadcasts the new W-hat (a round boundary).
//
// Guarantee: |W_e - Estimate(e)| <= eps * W with O((m/eps) log(beta*N))
// messages (Theorem 1) — a 1/eps factor better than P1.
#ifndef DMT_HH_P2_THRESHOLD_H_
#define DMT_HH_P2_THRESHOLD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "hh/hh_protocol.h"
#include "sketch/space_saving.h"
#include "stream/network.h"
#include "util/aligned.h"

namespace dmt {
namespace hh {

/// Options for P2.
struct P2Options {
  /// When > 0, each site tracks its per-element deltas with a weighted
  /// SpaceSaving summary of this many counters instead of an exact map —
  /// the space reduction the paper suggests via [Metwally et al.]. Sites
  /// then use O(counters) memory regardless of the element universe, at
  /// the cost of (bounded) overestimates in the reported deltas.
  size_t site_counters = 0;
};

/// Deterministic threshold protocol (P2).
class P2Threshold : public HeavyHitterProtocol {
 public:
  P2Threshold(size_t num_sites, double eps, const P2Options& options = {});

  void Process(size_t site, uint64_t element, double weight) override;
  void SiteUpdate(size_t site, uint64_t element, double weight) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  double EstimateElementWeight(uint64_t element) const override;
  double EstimateTotalWeight() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P2"; }
  std::vector<uint64_t> TrackedElements() const override;

 private:
  /// One queued site->coordinator report. Scalar (total-weight) and
  /// element (delta) reports share a FIFO so delivery preserves the exact
  /// emission order within a site.
  struct PendingReport {
    bool is_scalar;
    double value;      // W_i for scalars, reported delta for elements
    uint64_t element;  // only meaningful when !is_scalar
  };

  /// Delivers one site's queued reports in emission order.
  void DrainSite(size_t site);

  double eps_;
  P2Options options_;
  stream::Network network_;
  // Per-site state, SoA. The scalar-hot arrays (every SiteUpdate reads
  // and often writes both) are cache-line-aligned: with the driver's
  // batch-reservation scheduler handing each worker a contiguous site
  // range, workers then touch disjoint line ranges except at the two
  // range boundaries. With bounded space, `site_summary_` replaces the
  // exact delta map (only one of the two is populated per run).
  CacheAlignedVector<double> site_weight_;  // W_i since last scalar report
  std::vector<std::unordered_map<uint64_t, double>> site_delta_;
  std::vector<sketch::SpaceSaving> site_summary_;
  // Bounded-space mode: cumulative weight already reported per element
  // (only elements that crossed the threshold ever get an entry).
  std::vector<std::unordered_map<uint64_t, double>> site_reported_;
  CacheAlignedVector<double> site_west_;    // W-hat known at the site
  std::vector<std::vector<PendingReport>> outbox_;  // per-site, FIFO
  // Coordinator state.
  std::unordered_map<uint64_t, double> coordinator_weights_;
  double coordinator_total_ = 0.0;   // W-hat (grows with scalar reports)
  size_t scalar_msgs_since_broadcast_ = 0;
};

}  // namespace hh
}  // namespace dmt

#endif  // DMT_HH_P2_THRESHOLD_H_
