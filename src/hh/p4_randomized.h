// Protocol P4: randomized reporting (paper Algorithm 4.7), the weighted
// extension of Huang, Yi & Zhang's sqrt(m) tracker.
//
// Each site knows a 2-approximation W-hat of the total weight and sets
// p = 2 sqrt(m) / (eps * W-hat). For an arriving (e, w) it sends its
// *exact* local tally f_e(A_j) with probability p-bar = 1 - exp(-p w)
// (the limiting form of treating w as w/10^k unit items, Lemma 7). The
// coordinator compensates the expected unreported residue by adding 1/p to
// each reported tally.
//
// Guarantee: |W_e - Estimate(e)| <= eps W with probability >= 0.75, using
// O((sqrt(m)/eps) log(beta N)) messages (Theorem 3).
#ifndef DMT_HH_P4_RANDOMIZED_H_
#define DMT_HH_P4_RANDOMIZED_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "hh/hh_protocol.h"
#include "hh/total_weight.h"
#include "stream/network.h"
#include "util/rng.h"

namespace dmt {
namespace hh {

/// Randomized sqrt(m) protocol (P4).
///
/// `copies` > 1 runs that many independent instances of the reporting
/// scheme over the same site tallies and answers queries with the median
/// estimate — the paper's remark after Theorem 3: log(2/delta) copies
/// boost the 0.75 success probability to 1 - delta, at proportionally
/// more communication.
class P4Randomized : public HeavyHitterProtocol {
 public:
  P4Randomized(size_t num_sites, double eps, uint64_t seed,
               size_t copies = 1);

  void Process(size_t site, uint64_t element, double weight) override;
  void SiteUpdate(size_t site, uint64_t element, double weight) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  double EstimateElementWeight(uint64_t element) const override;
  double EstimateTotalWeight() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P4"; }
  std::vector<uint64_t> TrackedElements() const override;

 private:
  /// One queued site->coordinator message: either a total-weight report
  /// (amount) or a tally refresh for (copy, element, site).
  struct PendingReport {
    bool is_weight_report;
    double value;    // reported weight, or the tally being refreshed
    size_t copy;
    uint64_t element;
    size_t site;
  };

  /// Current send probability parameter p = 2 sqrt(m) / (eps W-hat);
  /// infinite (send always) before bootstrap.
  double CurrentP() const;

  /// Flips the per-copy coins for one arrival (success probability
  /// 1 - exp(-p * weight)) with the site's generator, recording messages.
  /// A success ships the site's full exact tally for `element`: queued
  /// into `sink` if given, else applied to the coordinator immediately
  /// (serial path).
  void EmitSends(size_t site, uint64_t element, double weight, double tally,
                 std::vector<PendingReport>* sink);

  /// Delivers one site's queued reports in emission order.
  void DrainSite(size_t site);

  /// Estimate of one independent copy.
  double CopyEstimate(size_t copy, uint64_t element) const;

  double eps_;
  stream::Network network_;
  // One private generator per site (seed = base ⊕ site): all copies'
  // coins for a site flip from that site's stream.
  std::vector<Rng> site_rngs_;
  TotalWeightTracker weight_tracker_;
  // Per-site exact local tallies f_e(A_j), shared by all copies.
  std::vector<std::unordered_map<uint64_t, double>> site_tally_;
  std::vector<std::vector<PendingReport>> outbox_;  // per-site, FIFO
  // Per-copy coordinator state: last reported tally w-bar_{e,j} per
  // element per site. The inner per-site map is ordered: CopyEstimate sums
  // its values in iteration order, and that floating-point reduction must
  // be replay-stable (hash order is not).
  std::vector<std::unordered_map<uint64_t, std::map<size_t, double>>>
      reported_;
};

}  // namespace hh
}  // namespace dmt

#endif  // DMT_HH_P4_RANDOMIZED_H_
