// Distributed 2-approximate total-weight tracking.
//
// Several protocols (P4, MP4) need every site to know an estimate W-hat
// with W-hat <= W <= 2*W-hat at all times (w.h.p. / deterministically).
// This helper implements the standard scheme: each site reports its
// unreported weight once it exceeds a (1/2m) fraction of the current
// estimate, and the coordinator re-broadcasts once its exact tally of
// reported weight grows by a factor 1.5. Deterministic argument:
//   W <= W_C + m * (W-hat / 2m) <= 1.5*W-hat + 0.5*W-hat = 2*W-hat.
//
// The site half (SitePendingReport) and coordinator half (ApplyReport) are
// split so owning protocols can defer delivery to a synchronization round:
// SitePendingReport touches only per-site state plus the site's network
// shard and the (stable-between-rounds) broadcast estimate, so it may run
// concurrently for distinct sites.
#ifndef DMT_HH_TOTAL_WEIGHT_H_
#define DMT_HH_TOTAL_WEIGHT_H_

#include <cstddef>
#include <vector>

#include "stream/network.h"

namespace dmt {
namespace hh {

/// Coordinator+sites total-weight tracker with counted messages.
class TotalWeightTracker {
 public:
  /// `network` must outlive the tracker and is shared with the owning
  /// protocol (messages are tallied there).
  explicit TotalWeightTracker(stream::Network* network);

  /// Site `site` observed `weight` more stream mass. Returns true if the
  /// global estimate changed (i.e. a broadcast happened). Serial path:
  /// equivalent to SitePendingReport + immediate ApplyReport.
  bool Observe(size_t site, double weight);

  /// Site half: folds `weight` into the site's unreported mass; when the
  /// report threshold crosses, records the scalar message and returns the
  /// reported amount (the site resets). Returns 0.0 when no report fires.
  /// Safe to call concurrently for distinct sites between ApplyReport
  /// batches.
  double SitePendingReport(size_t site, double weight);

  /// Coordinator half: folds a reported amount into the exact tally and
  /// re-broadcasts when it grew enough. Returns true on broadcast. Must
  /// not run concurrently with SitePendingReport.
  bool ApplyReport(double amount);

  /// Site-visible estimate: W-hat <= W <= 2*W-hat once bootstrapped.
  double EstimateAtSites() const { return broadcast_estimate_; }

  /// Coordinator's exact tally of reported weight (a lower bound on W).
  double coordinator_weight() const { return coordinator_weight_; }

 private:
  stream::Network* network_;
  std::vector<double> unreported_;  // per-site weight since last report
  double coordinator_weight_ = 0.0;
  double broadcast_estimate_ = 0.0;
};

}  // namespace hh
}  // namespace dmt

#endif  // DMT_HH_TOTAL_WEIGHT_H_
