#include "hh/p4_randomized.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "util/check.h"

namespace dmt {
namespace hh {

P4Randomized::P4Randomized(size_t num_sites, double eps, uint64_t seed,
                           size_t copies)
    : eps_(eps),
      network_(num_sites),
      site_rngs_(MakeSiteRngs(num_sites, seed)),
      weight_tracker_(&network_),
      site_tally_(num_sites),
      outbox_(num_sites),
      reported_(std::max<size_t>(copies, 1)) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
}

double P4Randomized::CurrentP() const {
  const double what = weight_tracker_.EstimateAtSites();
  if (what <= 0.0) return std::numeric_limits<double>::infinity();
  const double m = static_cast<double>(network_.num_sites());
  return 2.0 * std::sqrt(m) / (eps_ * what);
}

void P4Randomized::EmitSends(size_t site, uint64_t element, double weight,
                             double tally,
                             std::vector<PendingReport>* sink) {
  const double p = CurrentP();
  const double send_prob =
      std::isinf(p) ? 1.0 : 1.0 - std::exp(-p * weight);
  // Each copy flips its own coin (all from the site's private generator);
  // every success is one message.
  for (size_t c = 0; c < reported_.size(); ++c) {
    if (site_rngs_[site].NextDouble() < send_prob) {
      network_.RecordElement(site);
      if (sink != nullptr) {
        sink->push_back(PendingReport{false, tally, c, element, site});
      } else {
        reported_[c][element][site] = tally;
      }
    }
  }
}

void P4Randomized::Process(size_t site, uint64_t element, double weight) {
  DMT_CHECK_LT(site, site_tally_.size());
  DMT_CHECK_GT(weight, 0.0);
  // Serial path: the weight report lands at the coordinator immediately,
  // so a broadcast it triggers already lowers the send probability for
  // this very arrival — the historical behavior.
  weight_tracker_.Observe(site, weight);

  double& tally = site_tally_[site][element];
  tally += weight;
  EmitSends(site, element, weight, tally, /*sink=*/nullptr);
}

void P4Randomized::SiteUpdate(size_t site, uint64_t element, double weight) {
  DMT_CHECK_LT(site, site_tally_.size());
  DMT_CHECK_GT(weight, 0.0);
  const double amount = weight_tracker_.SitePendingReport(site, weight);
  if (amount > 0.0) {
    outbox_[site].push_back(PendingReport{true, amount, 0, 0, site});
  }

  double& tally = site_tally_[site][element];
  tally += weight;
  EmitSends(site, element, weight, tally, &outbox_[site]);
}

void P4Randomized::DrainSite(size_t site) {
  for (const PendingReport& r : outbox_[site]) {
    if (r.is_weight_report) {
      weight_tracker_.ApplyReport(r.value);
    } else {
      reported_[r.copy][r.element][r.site] = r.value;
    }
  }
  outbox_[site].clear();
}

void P4Randomized::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void P4Randomized::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

double P4Randomized::CopyEstimate(size_t copy, uint64_t element) const {
  auto it = reported_[copy].find(element);
  if (it == reported_[copy].end()) return 0.0;
  const double p = CurrentP();
  const double correction = std::isinf(p) ? 0.0 : 1.0 / p;
  double sum = 0.0;
  // Ordered map: the site-by-site FP summation order is replay-stable.
  for (const auto& [site, tally] : it->second) {
    sum += tally + correction;
  }
  return sum;
}

double P4Randomized::EstimateElementWeight(uint64_t element) const {
  std::vector<double> estimates;
  estimates.reserve(reported_.size());
  for (size_t c = 0; c < reported_.size(); ++c) {
    estimates.push_back(CopyEstimate(c, element));
  }
  // Median over the independent copies (a single copy: its estimate).
  const size_t mid = estimates.size() / 2;
  std::nth_element(estimates.begin(), estimates.begin() + mid,
                   estimates.end());
  return estimates[mid];
}

double P4Randomized::EstimateTotalWeight() const {
  return weight_tracker_.coordinator_weight();
}

const stream::CommStats& P4Randomized::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> P4Randomized::TrackedElements() const {
  std::unordered_set<uint64_t> seen;
  // dmt-lint: allow(determinism-unordered-iter): set union — the collected
  // element set is order-independent; sorted before it escapes below.
  for (const auto& copy : reported_) {
    for (const auto& [e, sites] : copy) seen.insert(e);
  }
  // dmt-lint: allow(determinism-unordered-iter): drained into a vector and
  // sorted below so callers observe a replay-stable order.
  std::vector<uint64_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hh
}  // namespace dmt
