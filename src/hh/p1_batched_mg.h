// Protocol P1: batched Misra-Gries (paper Algorithms 4.1 / 4.2).
//
// Each site runs a weighted MG summary with eps' = eps/2 error and tracks
// the local weight W_i since its last flush. When W_i reaches
// tau = (eps/2m) * W-hat, the whole summary is shipped to the coordinator
// and the site resets. The coordinator merges summaries (mergeability of
// MG keeps the error bound) and re-broadcasts W-hat whenever its tally
// grew by a (1 + eps/2) factor.
//
// Guarantee: |W_e - Estimate(e)| <= eps * W for every element, with
// O((m/eps^2) log(beta*N)) total messages (Lemma 2).
#ifndef DMT_HH_P1_BATCHED_MG_H_
#define DMT_HH_P1_BATCHED_MG_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hh/hh_protocol.h"
#include "sketch/misra_gries.h"
#include "stream/network.h"

namespace dmt {
namespace hh {

/// Deterministic batched-summary protocol (P1).
class P1BatchedMG : public HeavyHitterProtocol {
 public:
  /// `num_sites` = m, `eps` = target additive error fraction.
  P1BatchedMG(size_t num_sites, double eps);

  void Process(size_t site, uint64_t element, double weight) override;
  void SiteUpdate(size_t site, uint64_t element, double weight) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  double EstimateElementWeight(uint64_t element) const override;
  double EstimateTotalWeight() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P1"; }
  std::vector<uint64_t> TrackedElements() const override;

  /// A site's shipped batch awaiting coordinator delivery: the snapshot of
  /// its MG summary plus the local weight W_i since the previous flush.
  /// Public because the wire transport (src/net) serializes it.
  struct PendingFlush {
    sketch::WeightedMisraGries summary;
    double weight;
  };

  // --- Wire-transport hooks (src/net). The in-process schedule and these
  // hooks expose the same site/coordinator halves, so a run over a real
  // channel replays bit-identically (tests/net_transport_test.cc).

  /// Site half: moves out this site's queued flushes, in emission order.
  std::vector<PendingFlush> TakePendingFlushes(size_t site);
  /// Coordinator half: records the message cost for `site` and applies one
  /// flush — the remote-delivery equivalent of Synchronize()'s drain.
  void DeliverFlush(size_t site, const PendingFlush& flush);
  /// Last broadcast W-hat (what the coordinator pushes down to sites).
  double broadcast_weight() const { return broadcast_weight_; }
  /// Installs a received W-hat broadcast into one site's view.
  void SetSiteBroadcastWeight(size_t site, double west);
  /// Counter budget of every summary in this run (wire k cross-check).
  size_t summary_k() const { return coordinator_summary_.k(); }

 private:
  // Site half of a flush (messages + outbox + site reset).
  void EmitFlush(size_t site);
  // Delivers one site's queued flushes in emission order.
  void DrainSite(size_t site);
  // Coordinator half (merge + W_C + possible W-hat broadcast).
  void ApplyFlush(const PendingFlush& flush);

  double eps_;
  stream::Network network_;
  // Per-site state.
  std::vector<sketch::WeightedMisraGries> site_summaries_;
  std::vector<double> site_weight_;    // W_i since last flush
  std::vector<double> site_west_;      // W-hat as known by the site
  std::vector<std::vector<PendingFlush>> outbox_;  // per-site, FIFO
  // Coordinator state.
  sketch::WeightedMisraGries coordinator_summary_;
  double coordinator_weight_ = 0.0;    // W_C
  double broadcast_weight_ = 0.0;      // last broadcast W-hat
};

}  // namespace hh
}  // namespace dmt

#endif  // DMT_HH_P1_BATCHED_MG_H_
