#include "hh/p1_batched_mg.h"

#include <utility>

#include "util/check.h"

namespace dmt {
namespace hh {

P1BatchedMG::P1BatchedMG(size_t num_sites, double eps)
    : eps_(eps),
      network_(num_sites),
      coordinator_summary_(sketch::WeightedMisraGries::WithEpsilon(eps / 2)) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
  site_summaries_.reserve(num_sites);
  for (size_t i = 0; i < num_sites; ++i) {
    site_summaries_.push_back(
        sketch::WeightedMisraGries::WithEpsilon(eps / 2));
  }
  site_weight_.assign(num_sites, 0.0);
  site_west_.assign(num_sites, 0.0);
  outbox_.resize(num_sites);
}

void P1BatchedMG::Process(size_t site, uint64_t element, double weight) {
  SiteUpdate(site, element, weight);
  DrainSite(site);  // only this site can have queued anything
}

void P1BatchedMG::SiteUpdate(size_t site, uint64_t element, double weight) {
  DMT_CHECK_LT(site, site_summaries_.size());
  DMT_CHECK_GT(weight, 0.0);
  site_summaries_[site].Update(element, weight);
  site_weight_[site] += weight;

  const double m = static_cast<double>(network_.num_sites());
  // site_west_ is the W-hat from the last broadcast the site has seen; it
  // only changes in Synchronize(), so this read is round-stable.
  const double tau = (eps_ / (2.0 * m)) * site_west_[site];
  // Before the first broadcast tau is 0 and every item triggers a flush;
  // this is the bootstrap the paper leaves implicit.
  if (site_weight_[site] >= tau) EmitFlush(site);
}

void P1BatchedMG::EmitFlush(size_t site) {
  // Message cost: every live counter travels as an (element, weight) pair;
  // the scalar W_i piggybacks on the batch (Algorithm 4.1 ships "(G_i,
  // W_i)" as one payload). An empty summary still costs the scalar.
  for (size_t c = 0; c < site_summaries_[site].size(); ++c) {
    network_.RecordElement(site);
  }
  if (site_summaries_[site].size() == 0) network_.RecordScalar(site);

  // Move, don't copy: Clear() below fully re-initializes the moved-from
  // summary (k is untouched by the move; counters/weights are reset).
  outbox_[site].push_back(
      PendingFlush{std::move(site_summaries_[site]), site_weight_[site]});
  site_summaries_[site].Clear();
  site_weight_[site] = 0.0;
}

void P1BatchedMG::ApplyFlush(const PendingFlush& flush) {
  coordinator_summary_.Merge(flush.summary);
  coordinator_weight_ += flush.weight;

  if (broadcast_weight_ == 0.0 ||
      coordinator_weight_ / broadcast_weight_ > 1.0 + eps_ / 2.0) {
    broadcast_weight_ = coordinator_weight_;
    network_.RecordBroadcast();
    network_.RecordRound();
    for (auto& w : site_west_) w = broadcast_weight_;
  }
}

void P1BatchedMG::DrainSite(size_t site) {
  for (const PendingFlush& flush : outbox_[site]) ApplyFlush(flush);
  outbox_[site].clear();
}

void P1BatchedMG::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void P1BatchedMG::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

std::vector<P1BatchedMG::PendingFlush> P1BatchedMG::TakePendingFlushes(
    size_t site) {
  DMT_CHECK_LT(site, outbox_.size());
  std::vector<PendingFlush> out = std::move(outbox_[site]);
  outbox_[site].clear();
  return out;
}

void P1BatchedMG::DeliverFlush(size_t site, const PendingFlush& flush) {
  DMT_CHECK_LT(site, site_summaries_.size());
  // Accounting happens at delivery on the coordinator's instance — the
  // mirror image of EmitFlush, which accounts at emission on the site's
  // instance. The tally sees the same messages either way, so the wire
  // coordinator's CommStats matches the in-process oracle's.
  for (size_t c = 0; c < flush.summary.size(); ++c) {
    network_.RecordElement(site);
  }
  if (flush.summary.size() == 0) network_.RecordScalar(site);
  ApplyFlush(flush);
}

void P1BatchedMG::SetSiteBroadcastWeight(size_t site, double west) {
  DMT_CHECK_LT(site, site_west_.size());
  site_west_[site] = west;
}

double P1BatchedMG::EstimateElementWeight(uint64_t element) const {
  return coordinator_summary_.Estimate(element);
}

double P1BatchedMG::EstimateTotalWeight() const {
  return coordinator_weight_;
}

const stream::CommStats& P1BatchedMG::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> P1BatchedMG::TrackedElements() const {
  std::vector<uint64_t> out;
  for (const auto& [e, w] : coordinator_summary_.Items()) out.push_back(e);
  return out;
}

}  // namespace hh
}  // namespace dmt
