#include "hh/p2_threshold.h"

#include "util/check.h"

namespace dmt {
namespace hh {

P2Threshold::P2Threshold(size_t num_sites, double eps,
                         const P2Options& options)
    : eps_(eps), options_(options), network_(num_sites) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
  site_weight_.assign(num_sites, 0.0);
  site_west_.assign(num_sites, 0.0);
  if (options_.site_counters > 0) {
    site_summary_.reserve(num_sites);
    for (size_t i = 0; i < num_sites; ++i) {
      site_summary_.emplace_back(options_.site_counters);
    }
    site_reported_.resize(num_sites);
  } else {
    site_delta_.resize(num_sites);
  }
}

void P2Threshold::Process(size_t site, uint64_t element, double weight) {
  DMT_CHECK_LT(site, site_weight_.size());
  DMT_CHECK_GT(weight, 0.0);
  const double m = static_cast<double>(network_.num_sites());

  site_weight_[site] += weight;
  double delta;
  if (options_.site_counters > 0) {
    // Bounded-space site: the pending delta is the summary's estimate
    // minus what has already been reported for this element.
    site_summary_[site].Update(element, weight);
    delta = site_summary_[site].Estimate(element) -
            site_reported_[site][element];
  } else {
    delta = (site_delta_[site][element] += weight);
  }

  const double threshold = (eps_ / m) * site_west_[site];

  // Scalar (total-weight) report. With W-hat == 0 (bootstrap) the
  // threshold is 0 and the report happens immediately.
  if (site_weight_[site] >= threshold) {
    network_.RecordScalar(site);
    coordinator_total_ += site_weight_[site];
    site_weight_[site] = 0.0;
    if (++scalar_msgs_since_broadcast_ >= network_.num_sites()) {
      scalar_msgs_since_broadcast_ = 0;
      network_.RecordBroadcast();
      network_.RecordRound();
      for (auto& w : site_west_) w = coordinator_total_;
    }
  }

  // Element report.
  if (delta >= threshold) {
    if (options_.site_counters > 0) {
      // SpaceSaving overestimates by up to its per-element error bound;
      // ship only the certain part so the coordinator never overcounts.
      const double certain =
          delta - site_summary_[site].ErrorBound(element);
      if (certain > 0.0) {
        network_.RecordElement(site);
        coordinator_weights_[element] += certain;
        site_reported_[site][element] += certain;
      }
    } else {
      network_.RecordElement(site);
      coordinator_weights_[element] += delta;
      site_delta_[site].erase(element);
    }
  }
}

double P2Threshold::EstimateElementWeight(uint64_t element) const {
  auto it = coordinator_weights_.find(element);
  return it == coordinator_weights_.end() ? 0.0 : it->second;
}

double P2Threshold::EstimateTotalWeight() const { return coordinator_total_; }

const stream::CommStats& P2Threshold::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> P2Threshold::TrackedElements() const {
  std::vector<uint64_t> out;
  out.reserve(coordinator_weights_.size());
  for (const auto& [e, w] : coordinator_weights_) out.push_back(e);
  return out;
}

}  // namespace hh
}  // namespace dmt
