#include "hh/p2_threshold.h"

#include "util/check.h"

namespace dmt {
namespace hh {

P2Threshold::P2Threshold(size_t num_sites, double eps,
                         const P2Options& options)
    : eps_(eps), options_(options), network_(num_sites) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
  site_weight_.assign(num_sites, 0.0);
  site_west_.assign(num_sites, 0.0);
  outbox_.resize(num_sites);
  if (options_.site_counters > 0) {
    site_summary_.reserve(num_sites);
    for (size_t i = 0; i < num_sites; ++i) {
      site_summary_.emplace_back(options_.site_counters);
    }
    site_reported_.resize(num_sites);
  } else {
    site_delta_.resize(num_sites);
  }
}

void P2Threshold::Process(size_t site, uint64_t element, double weight) {
  // Both thresholds below compare against the same pre-report W-hat, so
  // deferring coordinator delivery to the end of the element is exactly
  // the historical immediate-delivery behavior.
  SiteUpdate(site, element, weight);
  DrainSite(site);  // only this site can have queued anything
}

void P2Threshold::SiteUpdate(size_t site, uint64_t element, double weight) {
  DMT_CHECK_LT(site, site_weight_.size());
  DMT_CHECK_GT(weight, 0.0);
  const double m = static_cast<double>(network_.num_sites());

  site_weight_[site] += weight;
  double delta;
  if (options_.site_counters > 0) {
    // Bounded-space site: the pending delta is the summary's estimate
    // minus what has already been reported for this element.
    site_summary_[site].Update(element, weight);
    delta = site_summary_[site].Estimate(element) -
            site_reported_[site][element];
  } else {
    delta = (site_delta_[site][element] += weight);
  }

  // site_west_ only changes at Synchronize(), so the threshold is stable
  // for the whole round.
  const double threshold = (eps_ / m) * site_west_[site];

  // Scalar (total-weight) report. With W-hat == 0 (bootstrap) the
  // threshold is 0 and the report happens immediately.
  if (site_weight_[site] >= threshold) {
    network_.RecordScalar(site);
    outbox_[site].push_back(PendingReport{true, site_weight_[site], 0});
    site_weight_[site] = 0.0;
  }

  // Element report.
  if (delta >= threshold) {
    if (options_.site_counters > 0) {
      // SpaceSaving overestimates by up to its per-element error bound;
      // ship only the certain part so the coordinator never overcounts.
      const double certain =
          delta - site_summary_[site].ErrorBound(element);
      if (certain > 0.0) {
        network_.RecordElement(site);
        outbox_[site].push_back(PendingReport{false, certain, element});
        site_reported_[site][element] += certain;
      }
    } else {
      network_.RecordElement(site);
      outbox_[site].push_back(PendingReport{false, delta, element});
      site_delta_[site].erase(element);
    }
  }
}

void P2Threshold::DrainSite(size_t site) {
  for (const PendingReport& r : outbox_[site]) {
    if (r.is_scalar) {
      coordinator_total_ += r.value;
      if (++scalar_msgs_since_broadcast_ >= network_.num_sites()) {
        scalar_msgs_since_broadcast_ = 0;
        network_.RecordBroadcast();
        network_.RecordRound();
        for (auto& w : site_west_) w = coordinator_total_;
      }
    } else {
      coordinator_weights_[r.element] += r.value;
    }
  }
  outbox_[site].clear();
}

void P2Threshold::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void P2Threshold::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

double P2Threshold::EstimateElementWeight(uint64_t element) const {
  auto it = coordinator_weights_.find(element);
  return it == coordinator_weights_.end() ? 0.0 : it->second;
}

double P2Threshold::EstimateTotalWeight() const { return coordinator_total_; }

const stream::CommStats& P2Threshold::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> P2Threshold::TrackedElements() const {
  std::vector<uint64_t> out;
  out.reserve(coordinator_weights_.size());
  for (const auto& [e, w] : coordinator_weights_) out.push_back(e);
  return out;
}

}  // namespace hh
}  // namespace dmt
