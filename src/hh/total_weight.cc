#include "hh/total_weight.h"

#include "util/check.h"

namespace dmt {
namespace hh {

TotalWeightTracker::TotalWeightTracker(stream::Network* network)
    : network_(network), unreported_(network->num_sites(), 0.0) {}

double TotalWeightTracker::SitePendingReport(size_t site, double weight) {
  DMT_CHECK_LT(site, unreported_.size());
  DMT_CHECK_GE(weight, 0.0);
  unreported_[site] += weight;

  const double m = static_cast<double>(unreported_.size());
  // Bootstrap: before any broadcast every observation is reported so the
  // estimate becomes positive immediately.
  const double report_threshold = broadcast_estimate_ / (2.0 * m);
  if (unreported_[site] < report_threshold || unreported_[site] == 0.0) {
    return 0.0;
  }
  network_->RecordScalar(site);
  const double amount = unreported_[site];
  unreported_[site] = 0.0;
  return amount;
}

bool TotalWeightTracker::ApplyReport(double amount) {
  DMT_CHECK_GT(amount, 0.0);
  coordinator_weight_ += amount;
  if (broadcast_estimate_ == 0.0 ||
      coordinator_weight_ >= 1.5 * broadcast_estimate_) {
    broadcast_estimate_ = coordinator_weight_;
    network_->RecordBroadcast();
    network_->RecordRound();
    return true;
  }
  return false;
}

bool TotalWeightTracker::Observe(size_t site, double weight) {
  const double amount = SitePendingReport(site, weight);
  if (amount <= 0.0) return false;
  return ApplyReport(amount);
}

}  // namespace hh
}  // namespace dmt
