#include "hh/total_weight.h"

#include "util/check.h"

namespace dmt {
namespace hh {

TotalWeightTracker::TotalWeightTracker(stream::Network* network)
    : network_(network), unreported_(network->num_sites(), 0.0) {}

bool TotalWeightTracker::Observe(size_t site, double weight) {
  DMT_CHECK_LT(site, unreported_.size());
  DMT_CHECK_GE(weight, 0.0);
  unreported_[site] += weight;

  const double m = static_cast<double>(unreported_.size());
  // Bootstrap: before any broadcast every observation is reported so the
  // estimate becomes positive immediately.
  const double report_threshold = broadcast_estimate_ / (2.0 * m);
  if (unreported_[site] < report_threshold || unreported_[site] == 0.0) {
    return false;
  }
  network_->RecordScalar(site);
  coordinator_weight_ += unreported_[site];
  unreported_[site] = 0.0;

  if (broadcast_estimate_ == 0.0 ||
      coordinator_weight_ >= 1.5 * broadcast_estimate_) {
    broadcast_estimate_ = coordinator_weight_;
    network_->RecordBroadcast();
    network_->RecordRound();
    return true;
  }
  return false;
}

}  // namespace hh
}  // namespace dmt
