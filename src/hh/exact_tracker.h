// Exact baseline: every element is forwarded to the coordinator.
//
// Zero error, Theta(N) messages — the reference point the paper's
// "baseline ... would have no error" refers to in Section 6.1.
#ifndef DMT_HH_EXACT_TRACKER_H_
#define DMT_HH_EXACT_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "hh/hh_protocol.h"
#include "stream/network.h"

namespace dmt {
namespace hh {

/// Forward-everything exact tracker.
class ExactTracker : public HeavyHitterProtocol {
 public:
  explicit ExactTracker(size_t num_sites);

  void Process(size_t site, uint64_t element, double weight) override;
  void SiteUpdate(size_t site, uint64_t element, double weight) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  double EstimateElementWeight(uint64_t element) const override;
  double EstimateTotalWeight() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "Exact"; }
  std::vector<uint64_t> TrackedElements() const override;

 private:
  /// Delivers one site's queued forwards in emission order.
  void DrainSite(size_t site);

  stream::Network network_;
  // Per-site queue of forwarded (element, weight) pairs.
  std::vector<std::vector<std::pair<uint64_t, double>>> outbox_;
  std::unordered_map<uint64_t, double> weights_;
  double total_ = 0.0;
};

}  // namespace hh
}  // namespace dmt

#endif  // DMT_HH_EXACT_TRACKER_H_
