// Common interface for distributed weighted heavy-hitter protocols
// (paper Section 4).
#ifndef DMT_HH_HH_PROTOCOL_H_
#define DMT_HH_HH_PROTOCOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/comm_stats.h"

namespace dmt {
namespace hh {

/// One tracked element with its coordinator estimate, as exported for the
/// serving layer (serve::BuildSnapshot).
struct HHSnapshotEntry {
  uint64_t element = 0;
  double weight = 0.0;
};

/// A distributed weighted heavy-hitters tracking protocol: items arrive at
/// sites; the coordinator continuously answers weight queries.
///
/// Approximation contract (paper Section 4): with W the total stream
/// weight so far, at all times and for every element e,
///
///   |EstimateElementWeight(e) − w(e)| ≤ ε·W,
///
/// so every true φ-heavy hitter (w(e) ≥ φW) passes the report rule of
/// HeavyHitters() and nothing below (φ − ε)W does. The randomized
/// protocols (P3/P4) meet the bound with constant probability per
/// query. Weights are positive reals in [1, β] with β known to all
/// sites; communication is counted in messages (stream::CommStats) —
/// one site→coordinator report or one per-receiver broadcast each
/// count 1.
class HeavyHitterProtocol {
 public:
  virtual ~HeavyHitterProtocol() = default;

  /// Processes one stream element arriving at `site`. `weight` > 0.
  /// Serial entry point: any triggered site->coordinator messages are
  /// delivered (and broadcasts applied) before this returns.
  virtual void Process(size_t site, uint64_t element, double weight) = 0;

  /// Site-local half of Process(): updates only state owned by `site`
  /// (including that site's network shard) and queues outgoing messages in
  /// a per-site outbox for the next Synchronize(). When
  /// SupportsConcurrentSiteUpdates() is true, calls for *distinct* sites
  /// may run concurrently between two Synchronize() calls; calls for the
  /// same site must stay on one thread. Default: serial Process()
  /// (correct, but not concurrency-safe).
  virtual void SiteUpdate(size_t site, uint64_t element, double weight) {
    Process(site, element, weight);
  }

  /// Coordinator half: drains every site's outbox in ascending site order
  /// (emission order within a site), applying merges and broadcasts. Must
  /// run on a single thread with no concurrent SiteUpdate — the simulation
  /// driver calls it at round boundaries. Default: no-op (matches the
  /// default SiteUpdate, which delivers immediately).
  virtual void Synchronize() {}

  /// Targeted coordinator half: drains exactly the listed sites' outboxes,
  /// in the given order. The driver passes the ascending-sorted set of
  /// sites whose outboxes are non-empty (collected from the workers'
  /// per-lane publication buffers), so this applies the exact total order
  /// of Synchronize() — ascending site, emission order within a site —
  /// without the O(num_sites) scan. Equivalence requires every unlisted
  /// site's outbox to be empty. Same threading contract as Synchronize().
  /// Default: full Synchronize() scan (always correct).
  virtual void SynchronizeSites(const uint32_t* sites, size_t count) {
    (void)sites;
    (void)count;
    Synchronize();
  }

  /// True when SynchronizeSites() implements a real targeted drain. The
  /// driver then skips the full scan; otherwise every window costs one
  /// all-sites Synchronize() (counted as a drain stall in
  /// stream::SchedulerStats).
  virtual bool SupportsTargetedDrain() const { return false; }

  /// Messages queued in `site`'s outbox awaiting the next drain. Workers
  /// call this right after the site's last SiteUpdate of a window to
  /// decide whether to publish the site for draining — same concurrency
  /// contract as SiteUpdate (distinct sites from distinct threads).
  /// Default: SIZE_MAX, "unknown — always publish".
  virtual size_t PendingOutboxSize(size_t site) const {
    (void)site;
    return SIZE_MAX;
  }

  /// True when SiteUpdate() touches only per-site state and may therefore
  /// run concurrently for distinct sites.
  virtual bool SupportsConcurrentSiteUpdates() const { return false; }

  /// Coordinator's current estimate of element's total weight; within
  /// ε·W of the truth per the class contract. Returns 0 for untracked
  /// elements (correct up to the same bound).
  virtual double EstimateElementWeight(uint64_t element) const = 0;

  /// Coordinator's current estimate of the total stream weight W
  /// (within a (1 ± ε) factor for the threshold-style protocols).
  virtual double EstimateTotalWeight() const = 0;

  /// Communication counters so far.
  virtual const stream::CommStats& comm_stats() const = 0;

  /// Per-site upstream message counts (index = site id). Same
  /// synchronization requirement as comm_stats(): call only between
  /// rounds / after the run.
  virtual std::vector<uint64_t> per_site_messages() const = 0;

  /// Short display name (e.g. "P2").
  virtual std::string name() const = 0;

  /// Returns every element the coordinator currently tracks that passes the
  /// paper's report rule: Estimate(e)/EstimateTotal() >= phi - eps/2.
  /// The default implementation filters `TrackedElements()`.
  std::vector<uint64_t> HeavyHitters(double phi, double eps) const;

  /// Elements the coordinator has any evidence for (candidates for
  /// HeavyHitters()). Order is unspecified.
  virtual std::vector<uint64_t> TrackedElements() const = 0;

  /// Deep-copied coordinator state for the serving layer: every tracked
  /// element with its current estimate, element-ascending, no duplicates.
  /// Nothing in the result aliases live protocol state. Same threading
  /// contract as comm_stats(): call only between rounds / after the run.
  /// Default: sorted+deduplicated TrackedElements() with
  /// EstimateElementWeight() per element.
  virtual std::vector<HHSnapshotEntry> ExportSnapshotEntries() const;
};

inline std::vector<HHSnapshotEntry> HeavyHitterProtocol::ExportSnapshotEntries()
    const {
  std::vector<uint64_t> elements = TrackedElements();
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()),
                 elements.end());
  std::vector<HHSnapshotEntry> out;
  out.reserve(elements.size());
  for (uint64_t e : elements) {
    out.push_back(HHSnapshotEntry{e, EstimateElementWeight(e)});
  }
  return out;
}

inline std::vector<uint64_t> HeavyHitterProtocol::HeavyHitters(
    double phi, double eps) const {
  std::vector<uint64_t> out;
  const double total = EstimateTotalWeight();
  if (total <= 0.0) return out;
  for (uint64_t e : TrackedElements()) {
    if (EstimateElementWeight(e) / total >= phi - eps / 2.0) {
      out.push_back(e);
    }
  }
  return out;
}

}  // namespace hh
}  // namespace dmt

#endif  // DMT_HH_HH_PROTOCOL_H_
