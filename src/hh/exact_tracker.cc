#include "hh/exact_tracker.h"

namespace dmt {
namespace hh {

ExactTracker::ExactTracker(size_t num_sites) : network_(num_sites) {}

void ExactTracker::Process(size_t site, uint64_t element, double weight) {
  network_.RecordElement(site);
  weights_[element] += weight;
  total_ += weight;
}

double ExactTracker::EstimateElementWeight(uint64_t element) const {
  auto it = weights_.find(element);
  return it == weights_.end() ? 0.0 : it->second;
}

double ExactTracker::EstimateTotalWeight() const { return total_; }

const stream::CommStats& ExactTracker::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> ExactTracker::TrackedElements() const {
  std::vector<uint64_t> out;
  out.reserve(weights_.size());
  for (const auto& [e, w] : weights_) out.push_back(e);
  return out;
}

}  // namespace hh
}  // namespace dmt
