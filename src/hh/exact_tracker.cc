#include "hh/exact_tracker.h"

namespace dmt {
namespace hh {

ExactTracker::ExactTracker(size_t num_sites)
    : network_(num_sites), outbox_(num_sites) {}

void ExactTracker::Process(size_t site, uint64_t element, double weight) {
  network_.RecordElement(site);
  weights_[element] += weight;
  total_ += weight;
}

void ExactTracker::SiteUpdate(size_t site, uint64_t element, double weight) {
  network_.RecordElement(site);
  outbox_[site].emplace_back(element, weight);
}

void ExactTracker::DrainSite(size_t site) {
  for (const auto& [element, weight] : outbox_[site]) {
    weights_[element] += weight;
    total_ += weight;
  }
  outbox_[site].clear();
}

void ExactTracker::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void ExactTracker::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

double ExactTracker::EstimateElementWeight(uint64_t element) const {
  auto it = weights_.find(element);
  return it == weights_.end() ? 0.0 : it->second;
}

double ExactTracker::EstimateTotalWeight() const { return total_; }

const stream::CommStats& ExactTracker::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> ExactTracker::TrackedElements() const {
  std::vector<uint64_t> out;
  out.reserve(weights_.size());
  for (const auto& [e, w] : weights_) out.push_back(e);
  return out;
}

}  // namespace hh
}  // namespace dmt
