// Protocol P3: sampling-based trackers (paper Algorithms 4.5 / 4.6 and the
// with-replacement variant of Section 4.3.1).
//
// Without replacement (P3wor): sites forward an item when its priority
// rho = w / Unif(0,1] reaches the global threshold tau. The coordinator
// buckets arrivals into Q_cur (tau <= rho < 2 tau) and Q_next (rho >= 2
// tau); when |Q_next| reaches s it doubles tau, broadcasts it, discards
// Q_cur and re-partitions. The pool Q_cur + Q_next is at all times exactly
// {items with rho >= tau}, i.e. a priority sample, from which subset-sum
// estimates use adjusted weights max(w, rho_min).
//
// With replacement (P3wr): s independent single-item priority samplers.
// Each site conceptually draws s priorities per item and forwards the
// successes; we simulate the identical distribution with geometric skips
// so the cost is proportional to the number of *sent* messages, not s*N.
// The coordinator keeps the top-2 priorities per sampler; a round ends
// when every second-highest priority exceeds 2 tau.
#ifndef DMT_HH_P3_SAMPLING_H_
#define DMT_HH_P3_SAMPLING_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "hh/hh_protocol.h"
#include "sketch/priority_sampler.h"
#include "stream/network.h"
#include "util/rng.h"

namespace dmt {
namespace hh {

/// Returns the paper's sample size s = Theta((1/eps^2) log(1/eps)).
size_t SampleSizeForEpsilon(double eps);

/// Without-replacement sampling protocol (P3wor).
class P3SamplingWoR : public HeavyHitterProtocol {
 public:
  /// `sample_size` = 0 derives s from eps via SampleSizeForEpsilon.
  P3SamplingWoR(size_t num_sites, double eps, uint64_t seed,
                size_t sample_size = 0);

  void Process(size_t site, uint64_t element, double weight) override;
  void SiteUpdate(size_t site, uint64_t element, double weight) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  double EstimateElementWeight(uint64_t element) const override;
  double EstimateTotalWeight() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P3wor"; }
  std::vector<uint64_t> TrackedElements() const override;

  size_t sample_size() const { return s_; }
  double threshold() const { return tau_; }
  size_t pool_size() const { return q_cur_.size() + q_next_.size(); }

 protected:
  /// Current adjusted sample (exact weights while still in round 1).
  std::vector<sketch::PriorityEntry> CurrentSample() const;

  /// Hook for the matrix variant: called when an item is forwarded.
  virtual void OnForward(size_t site, const sketch::PriorityEntry& entry);

  size_t s_;
  stream::Network network_;
  // One private generator per site (seed = base ⊕ site), so sites draw
  // priorities independently and may run on concurrent threads.
  std::vector<Rng> site_rngs_;
  double tau_ = 1.0;
  bool tau_ever_doubled_ = false;
  std::vector<sketch::PriorityEntry> q_cur_;
  std::vector<sketch::PriorityEntry> q_next_;
  // Forwarded items awaiting coordinator bucketing (per-site, FIFO).
  std::vector<std::vector<sketch::PriorityEntry>> outbox_;

 private:
  /// Delivers one site's queued forwards in emission order.
  void DrainSite(size_t site);
  void EndRoundIfNeeded();
};

/// With-replacement sampling protocol (P3wr).
class P3SamplingWR : public HeavyHitterProtocol {
 public:
  P3SamplingWR(size_t num_sites, double eps, uint64_t seed,
               size_t sample_size = 0);

  void Process(size_t site, uint64_t element, double weight) override;
  void SiteUpdate(size_t site, uint64_t element, double weight) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  double EstimateElementWeight(uint64_t element) const override;
  double EstimateTotalWeight() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P3wr"; }
  std::vector<uint64_t> TrackedElements() const override;

  size_t sample_size() const { return s_; }

 private:
  struct Slot {
    sketch::PriorityEntry top;
    double second_priority = 0.0;
  };

  /// All sampler successes one element scored at one site: (slot index,
  /// priority) pairs, delivered to the coordinator as one batch so round
  /// accounting matches the per-element serial schedule.
  struct PendingSends {
    uint64_t element;
    double weight;
    std::vector<std::pair<size_t, double>> hits;
  };

  void ApplySlotUpdate(size_t t, uint64_t element, double weight,
                       double rho);
  /// Delivers one site's queued sampler successes in emission order.
  void DrainSite(size_t site);
  void EndRoundIfNeeded();

  size_t s_;
  stream::Network network_;
  // One private generator per site (seed = base ⊕ site); see P3SamplingWoR.
  std::vector<Rng> site_rngs_;
  double tau_ = 1.0;
  std::vector<Slot> slots_;
  size_t slots_below_2tau_ = 0;  // count of slots with second <= 2 tau
  std::vector<std::vector<PendingSends>> outbox_;  // per-site, FIFO
};

}  // namespace hh
}  // namespace dmt

#endif  // DMT_HH_P3_SAMPLING_H_
