#include "hh/p3_sampling.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace dmt {
namespace hh {

size_t SampleSizeForEpsilon(double eps) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
  const double inv = 1.0 / eps;
  const double s = inv * inv * std::max(1.0, std::log(inv));
  return static_cast<size_t>(std::max(8.0, std::ceil(s)));
}

P3SamplingWoR::P3SamplingWoR(size_t num_sites, double eps, uint64_t seed,
                             size_t sample_size)
    : s_(sample_size != 0 ? sample_size : SampleSizeForEpsilon(eps)),
      network_(num_sites),
      site_rngs_(MakeSiteRngs(num_sites, seed)),
      outbox_(num_sites) {
  q_cur_.reserve(s_ + 1);
  q_next_.reserve(s_ + 1);
}

void P3SamplingWoR::OnForward(size_t site, const sketch::PriorityEntry&) {
  network_.RecordElement(site);
}

void P3SamplingWoR::Process(size_t site, uint64_t element, double weight) {
  SiteUpdate(site, element, weight);
  DrainSite(site);  // only this site can have queued anything
}

void P3SamplingWoR::SiteUpdate(size_t site, uint64_t element,
                               double weight) {
  DMT_CHECK_LT(site, site_rngs_.size());
  DMT_CHECK_GT(weight, 0.0);
  sketch::PriorityEntry e{element, weight,
                          weight / site_rngs_[site].NextDoublePositive()};
  // tau_ only moves at Synchronize(); within a round every site compares
  // against the threshold of the last broadcast, exactly like a real site
  // that has not yet seen the next one.
  if (e.priority < tau_) return;  // not sampled; no message
  OnForward(site, e);
  outbox_[site].push_back(e);
}

void P3SamplingWoR::DrainSite(size_t site) {
  for (const sketch::PriorityEntry& e : outbox_[site]) {
    // A message can arrive after tau doubled past it (sent before the
    // broadcast of this round reached the site). The coordinator drops
    // it: the pool invariant is "items with priority >= current tau".
    if (e.priority < tau_) continue;
    if (e.priority >= 2.0 * tau_) {
      q_next_.push_back(e);
      EndRoundIfNeeded();
    } else {
      q_cur_.push_back(e);
    }
  }
  outbox_[site].clear();
}

void P3SamplingWoR::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void P3SamplingWoR::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

void P3SamplingWoR::EndRoundIfNeeded() {
  while (q_next_.size() >= s_) {
    tau_ *= 2.0;
    tau_ever_doubled_ = true;
    network_.RecordBroadcast();
    network_.RecordRound();
    // Q_cur is discarded; Q_next is re-partitioned against the new tau.
    q_cur_.clear();
    std::vector<sketch::PriorityEntry> promoted;
    for (const auto& e : q_next_) {
      if (e.priority >= 2.0 * tau_) {
        promoted.push_back(e);
      } else {
        q_cur_.push_back(e);
      }
    }
    q_next_ = std::move(promoted);
  }
}

std::vector<sketch::PriorityEntry> P3SamplingWoR::CurrentSample() const {
  std::vector<sketch::PriorityEntry> pool = q_cur_;
  pool.insert(pool.end(), q_next_.begin(), q_next_.end());
  // While tau has never doubled every arriving item was forwarded (weights
  // are >= 1 = tau), so the pool *is* the stream and estimates are exact.
  if (!tau_ever_doubled_) return pool;
  return sketch::AdjustedSample(std::move(pool));
}

double P3SamplingWoR::EstimateElementWeight(uint64_t element) const {
  double sum = 0.0;
  for (const auto& e : CurrentSample()) {
    if (e.element == element) sum += e.weight;
  }
  return sum;
}

double P3SamplingWoR::EstimateTotalWeight() const {
  double sum = 0.0;
  for (const auto& e : CurrentSample()) sum += e.weight;
  return sum;
}

const stream::CommStats& P3SamplingWoR::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> P3SamplingWoR::TrackedElements() const {
  std::unordered_set<uint64_t> seen;
  for (const auto& e : q_cur_) seen.insert(e.element);
  for (const auto& e : q_next_) seen.insert(e.element);
  // dmt-lint: allow(determinism-unordered-iter): drained into a vector and
  // sorted below so callers observe a replay-stable order.
  std::vector<uint64_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

P3SamplingWR::P3SamplingWR(size_t num_sites, double eps, uint64_t seed,
                           size_t sample_size)
    : s_(sample_size != 0 ? sample_size : SampleSizeForEpsilon(eps)),
      network_(num_sites),
      site_rngs_(MakeSiteRngs(num_sites, seed)),
      slots_(s_),
      slots_below_2tau_(s_),
      outbox_(num_sites) {}

void P3SamplingWR::Process(size_t site, uint64_t element, double weight) {
  SiteUpdate(site, element, weight);
  DrainSite(site);  // only this site can have queued anything
}

void P3SamplingWR::SiteUpdate(size_t site, uint64_t element, double weight) {
  DMT_CHECK_LT(site, site_rngs_.size());
  DMT_CHECK_GT(weight, 0.0);
  Rng& rng = site_rngs_[site];
  // Success probability per sampler: P[rho >= tau] = min(1, w/tau), with
  // tau the last broadcast threshold the site knows.
  const double p = std::min(1.0, weight / tau_);
  if (p <= 0.0) return;

  // Geometric skips over the s samplers: visit exactly the successes.
  size_t t;
  if (p >= 1.0) {
    t = 0;
  } else {
    t = static_cast<size_t>(std::log(rng.NextDoublePositive()) /
                            std::log(1.0 - p));
  }
  PendingSends sends{element, weight, {}};
  while (t < s_) {
    // Priority conditioned on success: u ~ Unif(0, min(1, w/tau)].
    const double u = rng.NextDoublePositive() * p;
    sends.hits.emplace_back(t, weight / u);
    network_.RecordElement(site);
    if (p >= 1.0) {
      ++t;
    } else {
      t += 1 + static_cast<size_t>(std::log(rng.NextDoublePositive()) /
                                   std::log(1.0 - p));
    }
  }
  if (!sends.hits.empty()) outbox_[site].push_back(std::move(sends));
}

void P3SamplingWR::ApplySlotUpdate(size_t t, uint64_t element, double weight,
                                   double rho) {
  Slot& slot = slots_[t];
  if (rho > slot.top.priority) {
    const double old_second = slot.second_priority;
    slot.second_priority = slot.top.priority;
    slot.top = sketch::PriorityEntry{element, weight, rho};
    if (old_second <= 2.0 * tau_ && slot.second_priority > 2.0 * tau_) {
      --slots_below_2tau_;
    }
  } else if (rho > slot.second_priority) {
    if (slot.second_priority <= 2.0 * tau_ && rho > 2.0 * tau_) {
      --slots_below_2tau_;
    }
    slot.second_priority = rho;
  }
}

void P3SamplingWR::DrainSite(size_t site) {
  for (const PendingSends& sends : outbox_[site]) {
    for (const auto& [t, rho] : sends.hits) {
      ApplySlotUpdate(t, sends.element, sends.weight, rho);
    }
    // One round check per element, matching the per-element serial
    // schedule (a batch of hits for one element ends with one check).
    EndRoundIfNeeded();
  }
  outbox_[site].clear();
}

void P3SamplingWR::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void P3SamplingWR::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

void P3SamplingWR::EndRoundIfNeeded() {
  while (slots_below_2tau_ == 0) {
    tau_ *= 2.0;
    network_.RecordBroadcast();
    network_.RecordRound();
    slots_below_2tau_ = 0;
    for (const Slot& slot : slots_) {
      if (slot.second_priority <= 2.0 * tau_) ++slots_below_2tau_;
    }
  }
}

double P3SamplingWR::EstimateTotalWeight() const {
  // Each second-highest priority is an unbiased estimator of W.
  double sum = 0.0;
  size_t live = 0;
  for (const Slot& slot : slots_) {
    if (slot.top.priority > 0.0) {
      sum += slot.second_priority;
      ++live;
    }
  }
  return live == 0 ? 0.0 : sum / static_cast<double>(live);
}

double P3SamplingWR::EstimateElementWeight(uint64_t element) const {
  const double what = EstimateTotalWeight();
  size_t hits = 0;
  size_t live = 0;
  for (const Slot& slot : slots_) {
    if (slot.top.priority > 0.0) {
      ++live;
      if (slot.top.element == element) ++hits;
    }
  }
  if (live == 0) return 0.0;
  return what * static_cast<double>(hits) / static_cast<double>(live);
}

const stream::CommStats& P3SamplingWR::comm_stats() const {
  return network_.stats();
}

std::vector<uint64_t> P3SamplingWR::TrackedElements() const {
  std::unordered_set<uint64_t> seen;
  for (const Slot& slot : slots_) {
    if (slot.top.priority > 0.0) seen.insert(slot.top.element);
  }
  // dmt-lint: allow(determinism-unordered-iter): drained into a vector and
  // sorted below so callers observe a replay-stable order.
  std::vector<uint64_t> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace hh
}  // namespace dmt
