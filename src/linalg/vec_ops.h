// Dense vector kernels shared by the matrix class and the sketches.
//
// Vectors are plain std::vector<double> / raw spans; these free functions
// are the only place inner loops live, so they are easy to audit and to
// vectorize.
#ifndef DMT_LINALG_VEC_OPS_H_
#define DMT_LINALG_VEC_OPS_H_

#include <cstddef>
#include <vector>

namespace dmt {
namespace linalg {

/// Dot product of two length-`n` arrays.
double Dot(const double* a, const double* b, size_t n);
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// Squared Euclidean norm.
double SquaredNorm(const double* a, size_t n);
double SquaredNorm(const std::vector<double>& a);

/// Euclidean norm.
double Norm(const double* a, size_t n);
double Norm(const std::vector<double>& a);

/// y += alpha * x (length n).
void Axpy(double alpha, const double* x, double* y, size_t n);

/// x *= alpha (length n).
void Scale(double alpha, double* x, size_t n);

/// Normalizes `x` to unit Euclidean norm in place; returns the prior norm.
/// If the norm is zero the vector is left untouched and 0 is returned.
double Normalize(std::vector<double>* x);

}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_VEC_OPS_H_
