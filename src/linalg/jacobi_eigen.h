// Symmetric eigendecomposition via cyclic Jacobi rotations.
//
// Every decomposition in this library reduces to a small (d <= a few
// hundred) symmetric eigenproblem: Frequent Directions shrinks, protocol
// MP2's per-site direction checks, and the covariance-error metric all work
// on d x d Gram matrices. Jacobi is simple, unconditionally stable, and for
// the sizes here within a small factor of LAPACK.
#ifndef DMT_LINALG_JACOBI_EIGEN_H_
#define DMT_LINALG_JACOBI_EIGEN_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dmt {
namespace linalg {

/// Result of a symmetric eigendecomposition: S = V diag(lambda) V^T.
struct EigenDecomposition {
  /// Eigenvalues in non-increasing order.
  std::vector<double> eigenvalues;
  /// Columns are the matching orthonormal eigenvectors (d x d).
  Matrix eigenvectors;

  /// Convenience: eigenvector i as a vector.
  std::vector<double> Eigenvector(size_t i) const {
    return eigenvectors.ColVector(i);
  }
};

/// Computes the full eigendecomposition of the symmetric matrix `s`.
///
/// `s` must be square and (numerically) symmetric; only the upper triangle
/// is trusted. Convergence: off-diagonal Frobenius mass below
/// `tol * ||S||_F`, default ~1e-14, or `max_sweeps` cyclic sweeps.
EigenDecomposition SymmetricEigen(const Matrix& s, double tol = 1e-14,
                                  int max_sweeps = 60);

/// Diagonalizes symmetric `g` in place by cyclic Jacobi, accumulating the
/// rotations into `v` (v <- v * J, so that v_in * g_in * v_in^T is
/// preserved). Returns the number of rotations applied.
///
/// This is the warm-start workhorse: callers that keep a matrix in its own
/// (approximate) eigenbasis pay only for the few rotations the new data
/// actually requires, instead of a full decomposition. Eigenvalues end up
/// on the diagonal of `g`, unsorted.
///
/// `ignore_below` enables *targeted* diagonalization: a rotation pair is
/// skipped when both of its rows have Gershgorin bound (diagonal plus
/// absolute off-diagonal row sum) below this value. By Gershgorin's
/// theorem no eigenvalue >= ignore_below can hide in skipped rows, so the
/// diagonal faithfully exposes every eigenvalue at or above the bound
/// while the (irrelevant) small-eigenvalue block is left un-diagonalized.
/// The matrix itself stays exact — skipping loses no information. Pass 0
/// (default) for a full diagonalization.
size_t JacobiDiagonalizeInPlace(Matrix* g, Matrix* v, double tol = 1e-14,
                                int max_sweeps = 60,
                                double ignore_below = 0.0);

/// Largest |eigenvalue| of symmetric `s` (i.e. the spectral norm).
double SpectralNormSymmetric(const Matrix& s);

}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_JACOBI_EIGEN_H_
