#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.h"
#include "util/contracts.h"

namespace dmt {
namespace linalg {

namespace {

// Absolute off-diagonal row sum of row i (Gershgorin radius).
double GershgorinRadius(const Matrix& a, size_t i) {
  double s = 0.0;
  for (size_t j = 0; j < a.cols(); ++j) {
    if (j != i) s += std::fabs(a(i, j));
  }
  return s;
}

DMT_ALLOC_OK("targeted-skip setup; the hot ignore_below == 0 path never materializes the bounds")
void InitGershgorinBounds(const Matrix& a, std::vector<double>* bound) {
  bound->assign(a.rows(), 0.0);
  for (size_t i = 0; i < a.rows(); ++i) {
    (*bound)[i] = a(i, i) + GershgorinRadius(a, i);
  }
}

}  // namespace

DMT_NO_ALLOC
size_t JacobiDiagonalizeInPlace(Matrix* g, Matrix* v, double tol,
                                int max_sweeps, double ignore_below) {
  DMT_CHECK_EQ(g->rows(), g->cols());
  DMT_CHECK_EQ(v->rows(), g->rows());
  DMT_CHECK_EQ(v->cols(), g->cols());
  Matrix& a = *g;
  const size_t n = a.rows();
  // The Frobenius norm is invariant under the rotations, so computing the
  // absolute negligibility floor once per call is safe.
  const double frob = std::sqrt(a.SquaredFrobeniusNorm());
  const double abs_floor = std::max(tol * frob / 10.0, 1e-300);
  size_t rotations = 0;

  // Gershgorin bounds (diag + radius) per row, for targeted skipping.
  // Only materialized when the caller opted into skipping (`bound` is
  // never read while ignore_below == 0): the hot Lanczos Rayleigh-Ritz
  // path must not allocate per call.
  std::vector<double> bound;
  if (ignore_below > 0.0) {
    InitGershgorinBounds(a, &bound);
  }

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (size_t p = 0; p + 1 < n; ++p) {
      if (ignore_below > 0.0 && bound[p] < ignore_below) {
        // Row p cannot host an eigenvalue >= ignore_below; a rotation with
        // any q whose bound is also below cannot create one either.
        bool any = false;
        for (size_t q = p + 1; q < n; ++q) {
          if (bound[q] >= ignore_below) {
            any = true;
            break;
          }
        }
        if (!any) continue;
      }
      for (size_t q = p + 1; q < n; ++q) {
        if (ignore_below > 0.0 && bound[p] < ignore_below &&
            bound[q] < ignore_below) {
          continue;
        }
        const double apq = a(p, q);
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Skip rotations that cannot change the spectrum noticeably: the
        // relative test is the standard cyclic-Jacobi accelerator (Golub &
        // Van Loan §8.5.5); the absolute floor keeps emptied directions
        // (diagonal ~ 0) from forcing endless noise rotations — exactly
        // the warm-start case MP2 relies on.
        if (std::fabs(apq) <= abs_floor ||
            apq * apq <= 1e-28 * std::fabs(app * aqq)) {
          continue;
        }
        rotated = true;
        ++rotations;
        // Classic stable rotation computation (Golub & Van Loan §8.5).
        const double tau = (aqq - app) / (2.0 * apq);
        double t;
        if (tau >= 0.0) {
          t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
        } else {
          t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double sn = t * c;

        // Apply rotation J(p,q,theta) on both sides: A <- J^T A J.
        for (size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - sn * akq;
          a(k, q) = sn * akp + c * akq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - sn * aqk;
          a(q, k) = sn * apk + c * aqk;
        }
        // Accumulate eigenvectors: V <- V J.
        for (size_t k = 0; k < n; ++k) {
          const double vkp = (*v)(k, p);
          const double vkq = (*v)(k, q);
          (*v)(k, p) = c * vkp - sn * vkq;
          (*v)(k, q) = sn * vkp + c * vkq;
        }
        if (ignore_below > 0.0) {
          bound[p] = a(p, p) + GershgorinRadius(a, p);
          bound[q] = a(q, q) + GershgorinRadius(a, q);
        }
      }
    }
    if (!rotated) break;  // converged: every off-diagonal is negligible
  }
  return rotations;
}

EigenDecomposition SymmetricEigen(const Matrix& s, double tol,
                                  int max_sweeps) {
  DMT_CHECK_EQ(s.rows(), s.cols());
  const size_t n = s.rows();
  Matrix a = s;  // working copy, diagonalized in place
  Matrix v = Matrix::Identity(n);
  JacobiDiagonalizeInPlace(&a, &v, tol, max_sweeps);

  // Extract and sort by eigenvalue, descending.
  std::vector<double> lambda(n);
  for (size_t i = 0; i < n; ++i) lambda[i] = a(i, i);
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&lambda](size_t x, size_t y) { return lambda[x] > lambda[y]; });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n);
  for (size_t i = 0; i < n; ++i) {
    out.eigenvalues[i] = lambda[order[i]];
    for (size_t k = 0; k < n; ++k) out.eigenvectors(k, i) = v(k, order[i]);
  }
  return out;
}

double SpectralNormSymmetric(const Matrix& s) {
  EigenDecomposition e = SymmetricEigen(s);
  double mx = 0.0;
  for (double l : e.eigenvalues) mx = std::max(mx, std::fabs(l));
  return mx;
}

}  // namespace linalg
}  // namespace dmt
