// Singular value decomposition.
//
// Two routes are provided:
//  * SingularValues / RightSingular via the Gram matrix (fast; exactly what
//    streaming sketches need, which never require U), and
//  * ThinSVD via one-sided Jacobi (Hestenes) rotations on the explicit
//    matrix, used when U is required or extra accuracy matters.
#ifndef DMT_LINALG_SVD_H_
#define DMT_LINALG_SVD_H_

#include <cstddef>
#include <vector>

#include "linalg/jacobi_eigen.h"
#include "linalg/matrix.h"

namespace dmt {
namespace linalg {

/// Thin SVD A = U diag(sigma) V^T with A n x d, U n x r, V d x r,
/// r = min(n, d). Singular values are non-increasing and non-negative.
struct SvdResult {
  Matrix u;                   // n x r, orthonormal columns
  std::vector<double> sigma;  // length r, descending
  Matrix v;                   // d x r, orthonormal columns
};

/// Full-accuracy thin SVD via one-sided Jacobi on A (transposed internally
/// when n < d so rotations always act on the shorter side).
SvdResult ThinSVD(const Matrix& a);

/// Right singular structure {sigma_i^2, v_i} obtained from the d x d Gram
/// matrix A^T A. Faster than ThinSVD and sufficient for all sketching
/// algorithms in this library (they only ever need sigma and V).
struct RightSingular {
  std::vector<double> squared_sigma;  // eigenvalues of A^T A, descending,
                                      // clamped at 0
  Matrix v;                           // d x d, columns are singular vectors
};

/// Decomposes a Gram matrix (must be symmetric PSD up to roundoff).
RightSingular RightSingularFromGram(const Matrix& gram);

/// Convenience: builds the Gram matrix of `a` and decomposes it.
RightSingular RightSingularOf(const Matrix& a);

/// Reconstructs the best rank-k approximation of `a` from its thin SVD.
Matrix RankKApproximation(const Matrix& a, size_t k);

}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_SVD_H_
