#include "linalg/vec_ops.h"

#include <cmath>

#include "util/check.h"

namespace dmt {
namespace linalg {

double Dot(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  DMT_CHECK_EQ(a.size(), b.size());
  return Dot(a.data(), b.data(), a.size());
}

double SquaredNorm(const double* a, size_t n) { return Dot(a, a, n); }

double SquaredNorm(const std::vector<double>& a) {
  return SquaredNorm(a.data(), a.size());
}

double Norm(const double* a, size_t n) { return std::sqrt(SquaredNorm(a, n)); }

double Norm(const std::vector<double>& a) {
  return Norm(a.data(), a.size());
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, double* x, size_t n) {
  for (size_t i = 0; i < n; ++i) x[i] *= alpha;
}

double Normalize(std::vector<double>* x) {
  double nrm = Norm(*x);
  if (nrm > 0.0) Scale(1.0 / nrm, x->data(), x->size());
  return nrm;
}

}  // namespace linalg
}  // namespace dmt
