// Partial symmetric eigensolver: thick-restart Lanczos with full
// reorthogonalization and residual-based stopping.
//
// Every hot decomposition in this library needs only a few leading
// eigenpairs: the Frequent Directions shrink uses the top ell+1 pairs of
// a (at most 4*ell) x d buffer's Gram, MP2's threshold checks need just
// the eigenvalues at or above the send threshold, and the covariance
// error metric needs the two spectral extremes. Diagonalizing the full
// d x d spectrum with Jacobi for those is the dominant cost at large d;
// this solver computes the top-k pairs at O(k) matrix-vector products
// plus small dense work instead.
//
// Algorithm: build an orthonormal Krylov basis (full reorthogonalization
// against the whole basis, twice — the small basis makes this cheap and
// unconditionally stable), Rayleigh-Ritz on the explicit projected
// matrix, then thick restart: keep the leading Ritz vectors AND their
// operator images (both are exact linear combinations of stored
// quantities, so a restart costs no matvecs) and continue expanding.
// Thick restart is the symmetric form of implicit restarting [Wu &
// Simon, SIAM J. Matrix Anal. 2000]. A Ritz pair (theta, u) counts as
// converged when ||S u - theta u|| <= tol * spectral-scale; on an exact
// invariant subspace (happy breakdown) the expansion inserts
// deterministic canonical directions so repeated and zero eigenvalues
// are still found.
//
// Determinism: no RNG anywhere — the default seed vector is a fixed
// quasi-random fill, restarts and breakdown replacements are
// deterministic, so results are a pure function of the operator and the
// options (the same contract the kernel layer keeps).
//
// Caveat shared by every Krylov method: a seed vector *exactly*
// orthogonal to a dominant eigenvector (probability zero for generic
// data, but constructible) can converge inside an invariant subspace and
// miss that eigenvector. Callers that need certified bounds combine the
// returned Ritz values with an exactly-tracked trace (see MP2) or fall
// back to Jacobi when `converged` is false.
#ifndef DMT_LINALG_LANCZOS_H_
#define DMT_LINALG_LANCZOS_H_

#include <cstddef>
#include <type_traits>
#include <vector>

#include "linalg/matrix.h"
#include "util/contracts.h"

namespace dmt {
namespace linalg {

/// y = S x for an implicit symmetric operator S (x, y both length d;
/// y never aliases x).
///
/// Non-owning callable reference (a "function_ref"): the solver only
/// invokes the operator during TopK, so it borrows the callable instead
/// of owning it. This replaces std::function in the hot path —
/// libstdc++'s std::function heap-allocates any capture larger than 16
/// bytes on construction, which made every TopKOfRows solve allocate.
class SymmetricMatvec {
 public:
  template <typename F,
            typename = typename std::enable_if<!std::is_same<
                typename std::decay<F>::type, SymmetricMatvec>::value>::type>
  SymmetricMatvec(const F& f)  // NOLINT(google-explicit-constructor)
      : obj_(&f), call_(&Trampoline<F>) {}

  void operator()(const double* x, double* y) const { call_(obj_, x, y); }

 private:
  template <typename F>
  static void Trampoline(const void* obj, const double* x, double* y) {
    (*static_cast<const F*>(obj))(x, y);
  }

  const void* obj_;
  void (*call_)(const void* obj, const double* x, double* y);
};

struct LanczosOptions {
  /// Residual stopping: pair i is converged when
  /// ||S u_i - theta_i u_i|| <= tol * max_j |theta_j|.
  double tol = 1e-10;
  /// Krylov basis rows per restart cycle; 0 = min(d, 2k + 8).
  size_t basis_size = 0;
  /// Thick-restart cycles before giving up (`converged` = false).
  size_t max_restarts = 200;
  /// Optional warm-start seed of length d (e.g. the previous solve's
  /// leading eigenvector); nullptr = deterministic default fill.
  const double* seed = nullptr;
};

struct LanczosInfo {
  bool converged = false;
  size_t matvecs = 0;
  size_t restarts = 0;
  /// sqrt(sum of squared residual norms) of the returned pairs — an upper
  /// bound on the coupling between the returned subspace and the rest of
  /// the spectrum (MP2's certified gating adds this to its trace bound).
  double residual_bound = 0.0;
};

/// Reusable top-k solver. All workspaces persist across Solve calls, so
/// steady-state solves of a fixed (d, k) shape do not allocate — the same
/// contract as the FD shrink pipeline that owns one of these.
class LanczosSolver {
 public:
  /// Computes the top-k (largest algebraic) eigenpairs of the symmetric
  /// operator given by `matvec` on R^d. On return `eigenvalues` holds
  /// min(k, d) values in non-increasing order (not clamped — small
  /// negatives from a PSD operator are reported as computed) and row i of
  /// `eigenvectors` (min(k,d) x d) is the matching unit eigenvector.
  /// `info.converged` is true when every returned pair passed the
  /// residual test (always true once the basis spans R^d, where
  /// Rayleigh-Ritz is exact).
  LanczosInfo TopK(size_t d, size_t k, const SymmetricMatvec& matvec,
                   std::vector<double>* eigenvalues, Matrix* eigenvectors,
                   const LanczosOptions& opts = LanczosOptions());

  /// TopK on an explicit symmetric matrix (the shared row-dot matvec
  /// lives here so callers that reuse this solver's workspaces don't
  /// each hand-roll it).
  LanczosInfo TopKOfGram(const Matrix& gram, size_t k,
                         std::vector<double>* eigenvalues,
                         Matrix* eigenvectors,
                         const LanczosOptions& opts = LanczosOptions());

  /// TopK of A^T A for a row matrix A (n x d) without materializing the
  /// Gram: each matvec is two GEMV-shaped passes over the rows
  /// (y = A^T (A x)), which wins whenever n < d. The n-length scratch is
  /// solver-owned, so steady-state solves stay allocation-free.
  LanczosInfo TopKOfRows(const Matrix& rows, size_t k,
                         std::vector<double>* eigenvalues,
                         Matrix* eigenvectors,
                         const LanczosOptions& opts = LanczosOptions());

 private:
  // Allocation is confined to these DMT_ALLOC_OK setup helpers (see the
  // definitions); the solve loops themselves are DMT_NO_ALLOC.
  void EnsureWorkspace(size_t d, size_t m);
  void EnsureRitzWorkspace(size_t j);
  void EnsureRowScratch(size_t n);
  static void SizeOutputs(size_t need, size_t d,
                          std::vector<double>* eigenvalues,
                          Matrix* eigenvectors);

  Matrix q_;    // basis rows (m x d), orthonormal
  Matrix sq_;   // S * basis rows (m x d)
  Matrix u_;    // Ritz-vector scratch (m x d)
  Matrix su_;   // S * Ritz-vector scratch (m x d)
  Matrix t_;    // projected operator (j x j)
  Matrix y_;    // eigenvector coefficients of t_ (j x j)
  std::vector<double> cand_;   // expansion candidate (d)
  std::vector<double> theta_;  // Ritz values scratch
  std::vector<size_t> order_;  // descending sort permutation
  std::vector<double> rowmv_;  // n-length scratch for TopKOfRows
};

/// Top-k eigenpairs of an explicit symmetric matrix (e.g. a Gram).
LanczosInfo LanczosTopKOfGram(const Matrix& gram, size_t k,
                              std::vector<double>* eigenvalues,
                              Matrix* eigenvectors,
                              const LanczosOptions& opts = LanczosOptions());

/// One-shot convenience over LanczosSolver::TopKOfRows (throwaway
/// workspaces; callers in a loop should own a solver instead).
LanczosInfo LanczosTopKOfRows(const Matrix& rows, size_t k,
                              std::vector<double>* eigenvalues,
                              Matrix* eigenvectors,
                              const LanczosOptions& opts = LanczosOptions());

/// Both spectral extremes (algebraic min and max eigenvalue) of a
/// symmetric matrix via two top-1 Lanczos solves (on S and on -S, so
/// indefinite difference matrices are handled). Falls back to the exact
/// Jacobi route if either solve misses its residual tolerance, so the
/// result is always trustworthy.
void SymmetricEigenExtremesLanczos(const Matrix& s, double* lambda_min,
                                   double* lambda_max, double tol = 1e-12);

/// Spectral norm (largest |eigenvalue|) of a symmetric matrix — the
/// max-magnitude reduction of SymmetricEigenExtremesLanczos.
double SpectralNormSymmetricLanczos(const Matrix& s, double tol = 1e-12);

}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_LANCZOS_H_
