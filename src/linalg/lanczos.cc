#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numeric>

#include "linalg/jacobi_eigen.h"
#include "linalg/vec_ops.h"
#include "util/check.h"
#include "util/contracts.h"

namespace dmt {
namespace linalg {

namespace {

constexpr double kTiny = 1e-300;

// Deterministic quasi-random seed fill (splitmix64 mapped to [-1, 1]).
// Fixed so solves are a pure function of the operator — no RNG
// dependency, same contract as the kernel layer.
void DeterministicFill(double* x, size_t d) {
  uint64_t state = 0x9E3779B97F4A7C15ull ^ (0x243F6A8885A308D3ull * d);
  for (size_t i = 0; i < d; ++i) {
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    z ^= z >> 31;
    x[i] = 2.0 * (static_cast<double>(z >> 11) * 0x1.0p-53) - 1.0;
  }
}

// Two full modified-Gram-Schmidt passes of `x` against the first j rows
// of q ("twice is enough" — Giraud et al.). Returns the final norm of x.
double Reorthogonalize(double* x, const Matrix& q, size_t j, size_t d) {
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < j; ++i) {
      const double c = Dot(x, q.Row(i), d);
      Axpy(-c, q.Row(i), x, d);
    }
  }
  return Norm(x, d);
}

}  // namespace

DMT_ALLOC_OK("one-time workspace setup; reallocates only on (d, m) shape change")
void LanczosSolver::EnsureWorkspace(size_t d, size_t m) {
  if (q_.rows() != m || q_.cols() != d) {
    q_ = Matrix(m, d);
    sq_ = Matrix(m, d);
    u_ = Matrix(m, d);
    su_ = Matrix(m, d);
  }
  if (cand_.size() != d) cand_.resize(d);
  if (theta_.size() < m) theta_.resize(m);
  if (order_.size() < m) order_.resize(m);
}

DMT_ALLOC_OK("shape change only: the basis size moves on the first cycle and a final truncated cycle")
void LanczosSolver::EnsureRitzWorkspace(size_t j) {
  if (t_.rows() != j) {
    t_ = Matrix(j, j);
    y_ = Matrix(j, j);
  }
}

DMT_ALLOC_OK("grow-once n-length scratch; steady-state solves of a fixed shape do not reallocate")
void LanczosSolver::EnsureRowScratch(size_t n) {
  if (rowmv_.size() < n) rowmv_.resize(n);
}

DMT_ALLOC_OK("caller-visible output sizing; no-op when outputs already have the solve's shape")
void LanczosSolver::SizeOutputs(size_t need, size_t d,
                                std::vector<double>* eigenvalues,
                                Matrix* eigenvectors) {
  eigenvalues->assign(need, 0.0);
  if (eigenvectors->rows() != need || eigenvectors->cols() != d) {
    *eigenvectors = Matrix(need, d);
  } else {
    eigenvectors->SetZero();
  }
}

DMT_NO_ALLOC
LanczosInfo LanczosSolver::TopK(size_t d, size_t k,
                                const SymmetricMatvec& matvec,
                                std::vector<double>* eigenvalues,
                                Matrix* eigenvectors,
                                const LanczosOptions& opts) {
  LanczosInfo info;
  eigenvalues->clear();
  if (d == 0 || k == 0) {
    SizeOutputs(0, d, eigenvalues, eigenvectors);
    info.converged = true;
    return info;
  }
  k = std::min(k, d);
  size_t m = opts.basis_size != 0 ? opts.basis_size : 2 * k + 8;
  m = std::min(std::max(m, k + 2), d);
  EnsureWorkspace(d, m);

  // Seed the basis.
  double* q0 = q_.Row(0);
  if (opts.seed != nullptr) {
    std::memcpy(q0, opts.seed, d * sizeof(double));
  } else {
    DeterministicFill(q0, d);
  }
  double nrm = Norm(q0, d);
  if (nrm <= kTiny) {
    std::fill(q0, q0 + d, 0.0);
    q0[0] = 1.0;
  } else {
    Scale(1.0 / nrm, q0, d);
  }
  // dmt-lint: allow(noalloc-violation): indirect call — every operator
  // passed in-tree is an allocation-free row-dot loop (see TopKOfGram /
  // TopKOfRows); out-of-tree operators must honor the same contract.
  matvec(q_.Row(0), sq_.Row(0));
  ++info.matvecs;

  size_t j = 1;          // current basis rows
  size_t fresh = 0;      // next canonical direction for breakdown recovery
  const size_t need = k; // pairs the caller asked for (k <= m <= d)

  for (;; ++info.restarts) {
    // ---- Expand the basis to m rows: candidate = S q_{last}, fully
    // reorthogonalized; on (happy) breakdown — the current span is
    // invariant — insert a deterministic canonical direction so repeated
    // and zero eigenvalues are reachable.
    while (j < m) {
      const double* src = sq_.Row(j - 1);
      std::memcpy(cand_.data(), src, d * sizeof(double));
      const double src_norm = Norm(src, d);
      nrm = Reorthogonalize(cand_.data(), q_, j, d);
      if (nrm <= 1e-10 * src_norm + kTiny) {
        bool replaced = false;
        while (fresh < d) {
          const size_t t = fresh++;
          std::fill(cand_.begin(), cand_.end(), 0.0);
          cand_[t] = 1.0;
          nrm = Reorthogonalize(cand_.data(), q_, j, d);
          // Some e_t must keep norm >= 1/sqrt(d) while j < d, so this
          // floor cannot exhaust the supply before the basis spans R^d.
          if (nrm > 1e-6) {
            replaced = true;
            break;
          }
        }
        if (!replaced) break;  // basis numerically spans R^d
      }
      Scale(1.0 / nrm, cand_.data(), d);
      std::memcpy(q_.Row(j), cand_.data(), d * sizeof(double));
      // dmt-lint: allow(noalloc-violation): indirect call, same operator
      // contract as the seeding matvec above.
      matvec(q_.Row(j), sq_.Row(j));
      ++info.matvecs;
      ++j;
    }

    // ---- Rayleigh-Ritz on the j-row basis: T = Q S Q^T (j x j, upper
    // triangle computed, mirrored for exact symmetry).
    EnsureRitzWorkspace(j);
    for (size_t a = 0; a < j; ++a) {
      for (size_t b = a; b < j; ++b) {
        const double v = Dot(q_.Row(a), sq_.Row(b), d);
        t_(a, b) = v;
        t_(b, a) = v;
      }
    }
    y_.SetZero();
    for (size_t i = 0; i < j; ++i) y_(i, i) = 1.0;
    JacobiDiagonalizeInPlace(&t_, &y_);
    for (size_t i = 0; i < j; ++i) theta_[i] = t_(i, i);
    std::iota(order_.begin(), order_.begin() + j, size_t{0});
    std::sort(order_.begin(), order_.begin() + j,
              [this](size_t a, size_t b) {
                if (theta_[a] != theta_[b]) return theta_[a] > theta_[b];
                return a < b;  // deterministic tie-break
              });

    // Spectral scale for the relative residual test: the largest |Ritz
    // value| seen, a faithful stand-in for ||S||.
    double scale = kTiny;
    for (size_t i = 0; i < j; ++i) {
      scale = std::max(scale, std::fabs(theta_[i]));
    }

    // ---- Ritz vectors u_i = sum_a y(a, order[i]) q_a and their operator
    // images (exact linear combinations of stored rows — no matvecs),
    // plus residuals r_i = ||S u_i - theta_i u_i|| for the top `need`.
    const size_t avail = std::min(j, need);
    bool all_converged = true;
    double resid_sq_sum = 0.0;
    for (size_t i = 0; i < avail; ++i) {
      double* u = u_.Row(i);
      double* su = su_.Row(i);
      std::fill(u, u + d, 0.0);
      std::fill(su, su + d, 0.0);
      for (size_t a = 0; a < j; ++a) {
        const double c = y_(a, order_[i]);
        if (c == 0.0) continue;
        Axpy(c, q_.Row(a), u, d);
        Axpy(c, sq_.Row(a), su, d);
      }
      const double th = theta_[order_[i]];
      double rsq = 0.0;
      for (size_t t = 0; t < d; ++t) {
        const double r = su[t] - th * u[t];
        rsq += r * r;
      }
      resid_sq_sum += rsq;
      if (std::sqrt(rsq) > opts.tol * scale + kTiny) all_converged = false;
    }

    const bool exact_span = j >= d;
    if (all_converged || exact_span || avail < need ||
        info.restarts >= opts.max_restarts) {
      // `avail < need` only happens when expansion exhausted every
      // direction with j < k, i.e. the basis already spans the reachable
      // space; Rayleigh-Ritz is then exact on it. Pad with zeros.
      SizeOutputs(need, d, eigenvalues, eigenvectors);
      for (size_t i = 0; i < avail; ++i) {
        (*eigenvalues)[i] = theta_[order_[i]];
        std::memcpy(eigenvectors->Row(i), u_.Row(i), d * sizeof(double));
      }
      info.residual_bound = std::sqrt(resid_sq_sum);
      info.converged = all_converged || exact_span;
      return info;
    }

    // ---- Thick restart: keep the leading p Ritz rows and their operator
    // images (no matvecs), then keep expanding. The kept rows stay
    // orthonormal because the coefficient matrix y_ is orthogonal.
    const size_t p = std::min(j - 1, k + std::min(k, size_t{8}));
    for (size_t i = avail; i < p; ++i) {
      double* u = u_.Row(i);
      double* su = su_.Row(i);
      std::fill(u, u + d, 0.0);
      std::fill(su, su + d, 0.0);
      for (size_t a = 0; a < j; ++a) {
        const double c = y_(a, order_[i]);
        if (c == 0.0) continue;
        Axpy(c, q_.Row(a), u, d);
        Axpy(c, sq_.Row(a), su, d);
      }
    }
    std::swap(q_, u_);
    std::swap(sq_, su_);
    j = p;
    // The restart shrank the span, so canonical directions rejected as
    // in-span earlier may be valid breakdown replacements again.
    fresh = 0;
  }
}

DMT_NO_ALLOC
LanczosInfo LanczosSolver::TopKOfGram(const Matrix& gram, size_t k,
                                      std::vector<double>* eigenvalues,
                                      Matrix* eigenvectors,
                                      const LanczosOptions& opts) {
  DMT_CHECK_EQ(gram.rows(), gram.cols());
  const size_t d = gram.rows();
  return TopK(
      d, k,
      [&gram, d](const double* x, double* y) {
        for (size_t i = 0; i < d; ++i) y[i] = Dot(gram.Row(i), x, d);
      },
      eigenvalues, eigenvectors, opts);
}

LanczosInfo LanczosTopKOfGram(const Matrix& gram, size_t k,
                              std::vector<double>* eigenvalues,
                              Matrix* eigenvectors,
                              const LanczosOptions& opts) {
  LanczosSolver solver;
  return solver.TopKOfGram(gram, k, eigenvalues, eigenvectors, opts);
}

DMT_NO_ALLOC
LanczosInfo LanczosSolver::TopKOfRows(const Matrix& rows, size_t k,
                                      std::vector<double>* eigenvalues,
                                      Matrix* eigenvectors,
                                      const LanczosOptions& opts) {
  const size_t n = rows.rows();
  const size_t d = rows.cols();
  EnsureRowScratch(n);
  return TopK(
      d, k,
      [this, &rows, n, d](const double* x, double* y) {
        for (size_t i = 0; i < n; ++i) rowmv_[i] = Dot(rows.Row(i), x, d);
        std::fill(y, y + d, 0.0);
        for (size_t i = 0; i < n; ++i) Axpy(rowmv_[i], rows.Row(i), y, d);
      },
      eigenvalues, eigenvectors, opts);
}

LanczosInfo LanczosTopKOfRows(const Matrix& rows, size_t k,
                              std::vector<double>* eigenvalues,
                              Matrix* eigenvectors,
                              const LanczosOptions& opts) {
  LanczosSolver solver;
  return solver.TopKOfRows(rows, k, eigenvalues, eigenvectors, opts);
}

void SymmetricEigenExtremesLanczos(const Matrix& s, double* lambda_min,
                                   double* lambda_max, double tol) {
  DMT_CHECK_EQ(s.rows(), s.cols());
  const size_t d = s.rows();
  *lambda_min = 0.0;
  *lambda_max = 0.0;
  if (d == 0) return;
  LanczosSolver solver;
  LanczosOptions opts;
  opts.tol = tol;
  std::vector<double> vals;
  Matrix vecs;
  LanczosInfo pos = solver.TopKOfGram(s, 1, &vals, &vecs, opts);
  const double hi = vals.empty() ? 0.0 : vals[0];
  LanczosInfo neg;
  double lo = 0.0;
  if (pos.converged) {  // the fallback discards both, so don't start -S
    neg = solver.TopK(
        d, 1,
        [&s, d](const double* x, double* y) {
          for (size_t i = 0; i < d; ++i) y[i] = -Dot(s.Row(i), x, d);
        },
        &vals, &vecs, opts);
    lo = vals.empty() ? 0.0 : -vals[0];
  }
  if (!pos.converged || !neg.converged) {
    EigenDecomposition e = SymmetricEigen(s);  // exact reference fallback
    *lambda_max = e.eigenvalues.front();
    *lambda_min = e.eigenvalues.back();
    return;
  }
  *lambda_max = hi;
  *lambda_min = lo;
}

double SpectralNormSymmetricLanczos(const Matrix& s, double tol) {
  double lo = 0.0, hi = 0.0;
  SymmetricEigenExtremesLanczos(s, &lo, &hi, tol);
  return std::max(0.0, std::max(hi, -lo));
}

}  // namespace linalg
}  // namespace dmt
