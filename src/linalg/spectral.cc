#include "linalg/spectral.h"

#include <algorithm>
#include <cmath>

#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace linalg {

double PowerIterationSpectralNorm(const Matrix& s, int max_iters, Rng* rng,
                                  double tol, int* iters_used) {
  DMT_CHECK_EQ(s.rows(), s.cols());
  const size_t d = s.rows();
  if (iters_used != nullptr) *iters_used = 0;
  if (d == 0) return 0.0;
  std::vector<double> x = RandomUnitVector(d, rng);
  double lambda = 0.0;
  size_t restart_next = 0;  // next canonical vector for zero-iterate restarts
  for (int it = 0; it < max_iters; ++it) {
    std::vector<double> y = s.MultiplyVector(x);
    double nrm = Norm(y);
    if (nrm == 0.0) {
      // x is in the null space. Restart deterministically on canonical
      // basis vectors: S e_t is column t, so only S = 0 zeroes them all.
      bool found = false;
      while (restart_next < d) {
        std::fill(x.begin(), x.end(), 0.0);
        x[restart_next++] = 1.0;
        y = s.MultiplyVector(x);
        nrm = Norm(y);
        if (nrm > 0.0) {
          found = true;
          break;
        }
      }
      if (!found) {
        if (iters_used != nullptr) *iters_used = it + 1;
        return 0.0;  // every column is zero: S = 0
      }
    }
    Scale(1.0 / nrm, y.data(), d);
    // Rayleigh quotient on the normalized iterate; |.| handles negative
    // dominant eigenvalues (we iterate on S, not S^2, so convergence to a
    // negative extreme still yields the right magnitude via the quotient).
    std::vector<double> sy = s.MultiplyVector(y);
    const double rho = Dot(y, sy);
    lambda = std::fabs(rho);
    if (tol > 0.0) {
      // Residual-certified stop: ‖S·y − ρ·y‖ ≤ tol·|ρ| guarantees an
      // eigenvalue within tol·|ρ| of the estimate.
      double resid_sq = 0.0;
      for (size_t i = 0; i < d; ++i) {
        const double r = sy[i] - rho * y[i];
        resid_sq += r * r;
      }
      if (std::sqrt(resid_sq) <= tol * std::max(lambda, 1e-300)) {
        if (iters_used != nullptr) *iters_used = it + 1;
        return lambda;
      }
    }
    x = std::move(y);
  }
  if (iters_used != nullptr) *iters_used = max_iters;
  return lambda;
}

std::vector<double> RandomUnitVector(size_t d, Rng* rng) {
  std::vector<double> x(d);
  for (auto& xi : x) xi = rng->NextGaussian();
  double nrm = Normalize(&x);
  if (nrm == 0.0 && d > 0) x[0] = 1.0;
  return x;
}

Matrix RandomGaussianMatrix(size_t n, size_t d, Rng* rng) {
  Matrix m(n, d);
  for (size_t i = 0; i < n; ++i) {
    double* r = m.Row(i);
    for (size_t j = 0; j < d; ++j) r[j] = rng->NextGaussian();
  }
  return m;
}

Matrix RandomOrthogonalMatrix(size_t d, Rng* rng) {
  // Modified Gram-Schmidt with one re-orthogonalization pass on the columns
  // of a Gaussian matrix.
  Matrix g = RandomGaussianMatrix(d, d, rng);
  for (size_t j = 0; j < d; ++j) {
    std::vector<double> col = g.ColVector(j);
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t k = 0; k < j; ++k) {
        std::vector<double> prev = g.ColVector(k);
        double proj = Dot(col, prev);
        Axpy(-proj, prev.data(), col.data(), d);
      }
    }
    double nrm = Normalize(&col);
    DMT_CHECK_GT(nrm, 0.0);
    for (size_t i = 0; i < d; ++i) g(i, j) = col[i];
  }
  return g;
}

}  // namespace linalg
}  // namespace dmt
