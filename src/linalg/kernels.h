// Cache-blocked dense kernels — the numerical core of the library.
//
// Every protocol, sketch and error metric in this repo bottoms out in a
// handful of dense operations: general matrix multiply, the symmetric
// Gram product A^T A, transposition, and (batched) symmetric rank-1
// updates. This header is the one place those inner loops live; the
// Matrix class methods are thin wrappers over these free functions.
//
// Design contract:
//  * All kernels operate on raw row-major spans (`double*` + dimensions).
//    There is no Matrix dependency, so sketches can call them on
//    workspace they own.
//  * Kernels never allocate. The blocked implementations accumulate into
//    fixed-size stack tiles (kRowTile x kColTile doubles, ~2 KiB) sized to
//    stay register/L1 resident; panel blocking (kKTile, kPanelRows) keeps
//    the streamed operand L2-resident. Any larger workspace (e.g. the
//    rotated-row buffer of the Frequent Directions shrink pipeline) is
//    provided by the caller.
//  * Determinism: for a fixed build on a fixed machine, output is a pure
//    function of the input — no threading, a fixed per-element summation
//    order (k ascending within a panel, panels ascending), and a single
//    instruction-set decision. The hot cores ship as a portable baseline
//    plus an AVX2+FMA clone (x86-64 GCC/Clang; define
//    DMT_KERNELS_NO_SIMD_DISPATCH to compile the baseline only); the
//    clone is chosen once per process from CPUID, never per call.
//    Blocking and FMA contraction change the grouping of partial sums
//    versus the naive loops, so results may differ from the pre-kernel
//    code in the last ulps, but they never depend on thread count or
//    call history.
//  * The Naive variants preserve the original (seed) triple loops. They
//    are the reference implementations for the property tests and the
//    baseline for bench/micro_kernels' naive-vs-blocked measurements.
#ifndef DMT_LINALG_KERNELS_H_
#define DMT_LINALG_KERNELS_H_

#include <cstddef>

#include "util/contracts.h"

namespace dmt {
namespace linalg {
namespace kernels {

/// Register-blocked rows per micro-kernel step (MR).
inline constexpr size_t kRowTile = 4;
/// Accumulator tile columns (NR); kRowTile * kColTile doubles live on the
/// stack per tile.
inline constexpr size_t kColTile = 64;
/// k-dimension panel: bounds the B panel streamed per tile to
/// kKTile * kColTile doubles (~128 KiB), which stays L2-resident.
inline constexpr size_t kKTile = 256;
/// Row panel for the symmetric (SYRK/Gram) kernels: the panel of input
/// rows re-streamed per tile, kPanelRows * d doubles.
inline constexpr size_t kPanelRows = 128;
/// Square tile for the blocked transpose.
inline constexpr size_t kTransposeTile = 32;

// ---------------------------------------------------------------------
// GEMM: c = a * b with a (m x k), b (k x n), c (m x n), all row-major.
// `c` is overwritten and must not alias `a` or `b`.
// ---------------------------------------------------------------------

/// Cache-blocked GEMM (register tile kRowTile x kColTile, k panels).
void Gemm(const double* DMT_NOALIAS a, const double* DMT_NOALIAS b,
          double* DMT_NOALIAS c, size_t m, size_t k, size_t n);

/// Reference i-k-j triple loop (the seed Matrix::Multiply).
void GemmNaive(const double* DMT_NOALIAS a, const double* DMT_NOALIAS b,
               double* DMT_NOALIAS c, size_t m, size_t k, size_t n);

// ---------------------------------------------------------------------
// Gram / SYRK: g = (or +=) a^T a with a (n x d), g (d x d).
// Only the upper triangle is computed; the lower is mirrored afterwards,
// so g is exactly symmetric on exit. `g` must not alias `a`.
// ---------------------------------------------------------------------

/// Blocked Gram, overwriting g.
void Gram(const double* DMT_NOALIAS a, size_t n, size_t d,
          double* DMT_NOALIAS g);

/// Blocked Gram accumulation: g += a^T a. `g` must be symmetric on entry
/// (the mirror step copies the updated upper triangle over the lower).
void GramAccumulate(const double* DMT_NOALIAS a, size_t n, size_t d,
                    double* DMT_NOALIAS g);

/// Reference one-pass upper-triangle Gram (the seed Matrix::Gram).
void GramNaive(const double* DMT_NOALIAS a, size_t n, size_t d,
               double* DMT_NOALIAS g);

// ---------------------------------------------------------------------
// Rank-1 updates.
// ---------------------------------------------------------------------

/// g += alpha * v v^T for one vector (v length d, g d x d, full update,
/// no mirror needed; v must not alias g). The workhorse of incremental
/// Gram maintenance. alpha may be negative (e.g. sliding-window
/// retractions); symmetry of g is preserved exactly.
void Rank1Update(double alpha, const double* DMT_NOALIAS v,
                 double* DMT_NOALIAS g, size_t d);

/// Batched symmetric rank-1 updates: g += sum_t alphas[t] * r_t r_t^T,
/// where r_t is row t of `rows` (count x d). One blocked pass over the
/// rows instead of `count` full d^2 sweeps. `g` must be symmetric on
/// entry; alphas may be negative. Pass alphas == nullptr for all-ones
/// (then this is exactly GramAccumulate).
void BatchedRank1(const double* DMT_NOALIAS rows, const double* alphas,
                  size_t count, size_t d, double* DMT_NOALIAS g);

// ---------------------------------------------------------------------
// Transpose and row reductions.
// ---------------------------------------------------------------------

/// out = a^T with a (rows x cols), out (cols x rows), tile-blocked so both
/// sides stream cache lines. `out` must not alias `a`.
void Transpose(const double* DMT_NOALIAS a, size_t rows, size_t cols,
               double* DMT_NOALIAS out);

/// sum_i (row_i . x)^2 over the n rows of a (n x d), x length d — i.e.
/// ‖A·x‖², the directional mass every FD error bound is stated in. One
/// pass over a, no workspace.
double SquaredNormAlong(const double* a, size_t n, size_t d,
                        const double* x);

}  // namespace kernels
}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_KERNELS_H_
