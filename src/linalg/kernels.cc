#include "linalg/kernels.h"

#include <algorithm>

// The hot cores (blocked GEMM and the SYRK upper-triangle accumulator)
// are compiled twice: a portable baseline and, where the toolchain
// supports per-function targets (x86-64 GCC/Clang), an AVX2+FMA clone.
// The clone is selected once per process from CPUID, so for a fixed
// build on a fixed machine the kernels remain pure functions of their
// inputs (see the determinism notes in kernels.h).
#if (defined(__GNUC__) || defined(__clang__)) && defined(__x86_64__) && \
    !defined(DMT_KERNELS_NO_SIMD_DISPATCH)
#define DMT_KERNELS_SIMD_DISPATCH 1
#else
#define DMT_KERNELS_SIMD_DISPATCH 0
#endif

namespace dmt {
namespace linalg {
namespace kernels {
namespace {

#define DMT_KERNEL_NAME(fn) fn##Base
#define DMT_KERNEL_TARGET
#include "linalg/kernels_impl.inc"
#undef DMT_KERNEL_NAME
#undef DMT_KERNEL_TARGET

#if DMT_KERNELS_SIMD_DISPATCH
#define DMT_KERNEL_NAME(fn) fn##Avx2
#define DMT_KERNEL_TARGET __attribute__((target("avx2,fma")))
#include "linalg/kernels_impl.inc"
#undef DMT_KERNEL_NAME
#undef DMT_KERNEL_TARGET

bool UseAvx2() {
  static const bool use =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return use;
}
#endif  // DMT_KERNELS_SIMD_DISPATCH

void SyrkUpperAccumulate(const double* rows, const double* alphas,
                         size_t count, size_t d, double* g) {
  if (count == 0 || d == 0) return;
#if DMT_KERNELS_SIMD_DISPATCH
  if (UseAvx2()) {
    SyrkUpperCoreAvx2(rows, alphas, count, d, g);
    return;
  }
#endif
  SyrkUpperCoreBase(rows, alphas, count, d, g);
}

// Copies the upper triangle over the lower one so g is exactly symmetric.
void MirrorUpperToLower(double* g, size_t d) {
  for (size_t i = 0; i < d; ++i) {
    for (size_t j = i + 1; j < d; ++j) g[j * d + i] = g[i * d + j];
  }
}

}  // namespace

DMT_NO_ALLOC
void Gemm(const double* DMT_NOALIAS a, const double* DMT_NOALIAS b,
          double* DMT_NOALIAS c, size_t m, size_t k, size_t n) {
  std::fill(c, c + m * n, 0.0);
  if (m == 0 || n == 0 || k == 0) return;
#if DMT_KERNELS_SIMD_DISPATCH
  if (UseAvx2()) {
    GemmCoreAvx2(a, b, c, m, k, n);
    return;
  }
#endif
  GemmCoreBase(a, b, c, m, k, n);
}

DMT_NO_ALLOC
void GemmNaive(const double* DMT_NOALIAS a, const double* DMT_NOALIAS b,
               double* DMT_NOALIAS c, size_t m, size_t k, size_t n) {
  std::fill(c, c + m * n, 0.0);
  for (size_t i = 0; i < m; ++i) {
    const double* ai = a + i * k;
    double* ci = c + i * n;
    for (size_t kk = 0; kk < k; ++kk) {
      const double aik = ai[kk];
      if (aik == 0.0) continue;
      const double* bk = b + kk * n;
      for (size_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
    }
  }
}

DMT_NO_ALLOC
void Gram(const double* DMT_NOALIAS a, size_t n, size_t d,
          double* DMT_NOALIAS g) {
  std::fill(g, g + d * d, 0.0);
  SyrkUpperAccumulate(a, nullptr, n, d, g);
  MirrorUpperToLower(g, d);
}

DMT_NO_ALLOC
void GramAccumulate(const double* DMT_NOALIAS a, size_t n, size_t d,
                    double* DMT_NOALIAS g) {
  SyrkUpperAccumulate(a, nullptr, n, d, g);
  MirrorUpperToLower(g, d);
}

DMT_NO_ALLOC
void GramNaive(const double* DMT_NOALIAS a, size_t n, size_t d,
               double* DMT_NOALIAS g) {
  std::fill(g, g + d * d, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const double* r = a + i * d;
    for (size_t j = 0; j < d; ++j) {
      const double rj = r[j];
      if (rj == 0.0) continue;
      double* gj = g + j * d;
      for (size_t k = j; k < d; ++k) gj[k] += rj * r[k];
    }
  }
  MirrorUpperToLower(g, d);
}

DMT_NO_ALLOC
void Rank1Update(double alpha, const double* DMT_NOALIAS v,
                 double* DMT_NOALIAS g, size_t d) {
  for (size_t i = 0; i < d; ++i) {
    const double avi = alpha * v[i];
    if (avi == 0.0) continue;
    double* gi = g + i * d;
    for (size_t j = 0; j < d; ++j) gi[j] += avi * v[j];
  }
}

DMT_NO_ALLOC
void BatchedRank1(const double* DMT_NOALIAS rows, const double* alphas,
                  size_t count, size_t d, double* DMT_NOALIAS g) {
  SyrkUpperAccumulate(rows, alphas, count, d, g);
  MirrorUpperToLower(g, d);
}

DMT_NO_ALLOC
void Transpose(const double* DMT_NOALIAS a, size_t rows, size_t cols,
               double* DMT_NOALIAS out) {
  for (size_t i0 = 0; i0 < rows; i0 += kTransposeTile) {
    const size_t iend = std::min(i0 + kTransposeTile, rows);
    for (size_t j0 = 0; j0 < cols; j0 += kTransposeTile) {
      const size_t jend = std::min(j0 + kTransposeTile, cols);
      for (size_t i = i0; i < iend; ++i) {
        const double* ai = a + i * cols;
        for (size_t j = j0; j < jend; ++j) out[j * rows + i] = ai[j];
      }
    }
  }
}

double SquaredNormAlong(const double* a, size_t n, size_t d,
                        const double* x) {
  double total = 0.0;
  size_t i = 0;
  // Four rows per pass so each loaded x[j] feeds four dot products.
  for (; i + kRowTile <= n; i += kRowTile) {
    const double* r0 = a + (i + 0) * d;
    const double* r1 = a + (i + 1) * d;
    const double* r2 = a + (i + 2) * d;
    const double* r3 = a + (i + 3) * d;
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    for (size_t j = 0; j < d; ++j) {
      const double xj = x[j];
      s0 += r0[j] * xj;
      s1 += r1[j] * xj;
      s2 += r2[j] * xj;
      s3 += r3[j] * xj;
    }
    total += s0 * s0 + s1 * s1 + s2 * s2 + s3 * s3;
  }
  for (; i < n; ++i) {
    const double* r = a + i * d;
    double s = 0.0;
    for (size_t j = 0; j < d; ++j) s += r[j] * x[j];
    total += s * s;
  }
  return total;
}

}  // namespace kernels
}  // namespace linalg
}  // namespace dmt
