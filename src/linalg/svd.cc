#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace linalg {
namespace {

// One-sided Jacobi (Hestenes): orthogonalizes the columns of `w` (n x d,
// n >= d is not required) by plane rotations, accumulating them into `v`
// (d x d). On exit the columns of w are mutually orthogonal; their norms are
// the singular values.
void OneSidedJacobi(Matrix* w, Matrix* v, double tol, int max_sweeps) {
  const size_t n = w->rows();
  const size_t d = w->cols();
  *v = Matrix::Identity(d);
  if (n == 0 || d == 0) return;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool rotated = false;
    for (size_t p = 0; p + 1 < d; ++p) {
      for (size_t q = p + 1; q < d; ++q) {
        // Column inner products.
        double app = 0.0, aqq = 0.0, apq = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double wip = (*w)(i, p);
          const double wiq = (*w)(i, q);
          app += wip * wip;
          aqq += wiq * wiq;
          apq += wip * wiq;
        }
        if (std::fabs(apq) <= tol * std::sqrt(app * aqq) ||
            std::fabs(apq) < 1e-300) {
          continue;
        }
        rotated = true;
        const double tau = (aqq - app) / (2.0 * apq);
        double t;
        if (tau >= 0.0) {
          t = 1.0 / (tau + std::sqrt(1.0 + tau * tau));
        } else {
          t = -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
        }
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        for (size_t i = 0; i < n; ++i) {
          const double wip = (*w)(i, p);
          const double wiq = (*w)(i, q);
          (*w)(i, p) = c * wip - s * wiq;
          (*w)(i, q) = s * wip + c * wiq;
        }
        for (size_t i = 0; i < d; ++i) {
          const double vip = (*v)(i, p);
          const double viq = (*v)(i, q);
          (*v)(i, p) = c * vip - s * viq;
          (*v)(i, q) = s * vip + c * viq;
        }
      }
    }
    if (!rotated) break;
  }
}

}  // namespace

SvdResult ThinSVD(const Matrix& a) {
  const size_t n = a.rows();
  const size_t d = a.cols();
  const bool transpose = n < d;
  // Work on the orientation with the fewer columns so the rotation count is
  // min(n,d)^2 rather than max(n,d)^2.
  Matrix w = transpose ? a.Transposed() : a;
  Matrix rot;
  OneSidedJacobi(&w, &rot, 1e-14, 60);

  const size_t r = std::min(n, d);
  const size_t wd = w.cols();
  // Column norms are the singular values.
  std::vector<double> sigma(wd);
  for (size_t j = 0; j < wd; ++j) {
    double s2 = 0.0;
    for (size_t i = 0; i < w.rows(); ++i) s2 += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(s2);
  }
  std::vector<size_t> order(wd);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&sigma](size_t x, size_t y) { return sigma[x] > sigma[y]; });

  // Left factor: normalized columns of w; right factor: accumulated
  // rotations.
  Matrix left(w.rows(), r);
  Matrix right(rot.rows(), r);
  std::vector<double> sig(r);
  for (size_t jj = 0; jj < r; ++jj) {
    const size_t j = order[jj];
    sig[jj] = sigma[j];
    const double inv = sigma[j] > 0.0 ? 1.0 / sigma[j] : 0.0;
    for (size_t i = 0; i < w.rows(); ++i) left(i, jj) = w(i, j) * inv;
    for (size_t i = 0; i < rot.rows(); ++i) right(i, jj) = rot(i, j);
  }

  SvdResult out;
  out.sigma = std::move(sig);
  if (!transpose) {
    out.u = std::move(left);   // n x r
    out.v = std::move(right);  // d x r
  } else {
    out.u = std::move(right);  // n x r (rotations acted on rows of A)
    out.v = std::move(left);   // d x r
  }
  return out;
}

RightSingular RightSingularFromGram(const Matrix& gram) {
  EigenDecomposition e = SymmetricEigen(gram);
  RightSingular out;
  out.squared_sigma.resize(e.eigenvalues.size());
  for (size_t i = 0; i < e.eigenvalues.size(); ++i) {
    out.squared_sigma[i] = std::max(0.0, e.eigenvalues[i]);
  }
  out.v = std::move(e.eigenvectors);
  return out;
}

RightSingular RightSingularOf(const Matrix& a) {
  // For short-and-wide inputs (n < d, the common case for sketch buffers)
  // one-sided Jacobi on the n rows is far cheaper than an eigensolve of
  // the d x d Gram matrix, and more accurate for small singular values.
  if (a.rows() > 0 && a.rows() < a.cols()) {
    SvdResult svd = ThinSVD(a);
    RightSingular out;
    out.squared_sigma.resize(svd.sigma.size());
    for (size_t i = 0; i < svd.sigma.size(); ++i) {
      out.squared_sigma[i] = svd.sigma[i] * svd.sigma[i];
    }
    out.v = std::move(svd.v);  // d x r (r = n): callers index i < size()
    return out;
  }
  return RightSingularFromGram(a.Gram());
}

Matrix RankKApproximation(const Matrix& a, size_t k) {
  SvdResult svd = ThinSVD(a);
  const size_t r = std::min(k, svd.sigma.size());
  Matrix out(a.rows(), a.cols());
  for (size_t t = 0; t < r; ++t) {
    const double s = svd.sigma[t];
    for (size_t i = 0; i < a.rows(); ++i) {
      const double us = svd.u(i, t) * s;
      if (us == 0.0) continue;
      for (size_t j = 0; j < a.cols(); ++j) out(i, j) += us * svd.v(j, t);
    }
  }
  return out;
}

}  // namespace linalg
}  // namespace dmt
