// Row-major dense matrix.
//
// This is the only matrix representation in the library. Rows are the
// streaming unit (each stream element is one row), so the layout is
// row-major and rows are exposed as contiguous spans.
#ifndef DMT_LINALG_MATRIX_H_
#define DMT_LINALG_MATRIX_H_

#include <cstddef>
#include <vector>

namespace dmt {
namespace linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(size_t rows, size_t cols);

  /// Builds from a row-major initializer (used heavily in tests).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(size_t i, size_t j) { return data_[i * cols_ + j]; }
  double operator()(size_t i, size_t j) const { return data_[i * cols_ + j]; }

  /// Contiguous pointer to row i.
  double* Row(size_t i) { return data_.data() + i * cols_; }
  const double* Row(size_t i) const { return data_.data() + i * cols_; }

  /// Copies row i out as a vector.
  std::vector<double> RowVector(size_t i) const;

  /// Copies column j out as a vector.
  std::vector<double> ColVector(size_t j) const;

  /// Appends a row (must have length cols(); sets cols on first append).
  void AppendRow(const std::vector<double>& row);
  void AppendRow(const double* row, size_t n);

  /// Appends every row of `other` (column counts must match; sets cols on
  /// first append). Self-append is safe and doubles the matrix.
  void AppendRows(const Matrix& other);

  /// Appends `n` rows copied from a contiguous row-major block of
  /// n * cols doubles in one bulk insert (sets cols on first append;
  /// `rows` must not alias this matrix's storage). The bulk-ingest path
  /// of the dataset loaders and the .dmtbin cache reader.
  void AppendRows(const double* rows, size_t n, size_t cols);

  /// Reserves storage for at least `rows` rows (cols must be known), so
  /// subsequent AppendRow calls up to that count never reallocate.
  void ReserveRows(size_t rows);

  /// Sets the row count, keeping the column count. Growing zero-fills the
  /// new rows; shrinking keeps the reserved capacity.
  void ResizeRows(size_t rows);

  /// Removes all rows but keeps the column count.
  void ClearRows();

  /// Sets every entry to zero without changing the shape.
  void SetZero();

  /// Matrix transpose.
  Matrix Transposed() const;

  /// this * other.
  Matrix Multiply(const Matrix& other) const;

  /// this^T * this — the Gram matrix, computed in one pass (symmetric).
  Matrix Gram() const;

  /// Matrix-vector product y = this * x.
  std::vector<double> MultiplyVector(const std::vector<double>& x) const;

  /// Transposed matrix-vector product y = this^T * x.
  std::vector<double> TransposedMultiplyVector(
      const std::vector<double>& x) const;

  /// Squared Frobenius norm (sum of squared entries).
  double SquaredFrobeniusNorm() const;

  /// ‖this·x‖² for a vector x of length cols().
  double SquaredNormAlong(const std::vector<double>& x) const;

  /// this += other (same shape).
  void Add(const Matrix& other);

  /// this -= other (same shape).
  void Subtract(const Matrix& other);

  /// this *= alpha.
  void ScaleBy(double alpha);

  /// Rank-1 symmetric update: this += alpha * v v^T (this must be square,
  /// v.size() == rows()). The workhorse of incremental Gram maintenance.
  void AddOuterProduct(double alpha, const std::vector<double>& v);

  /// Max |a_ij - b_ij| over all entries (shape must match).
  double MaxAbsDiff(const Matrix& other) const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_MATRIX_H_
