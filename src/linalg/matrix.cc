#include "linalg/matrix.h"

#include <cmath>

#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace linalg {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& r : rows) m.AppendRow(r);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::RowVector(size_t i) const {
  DMT_CHECK_LT(i, rows_);
  return std::vector<double>(Row(i), Row(i) + cols_);
}

std::vector<double> Matrix::ColVector(size_t j) const {
  DMT_CHECK_LT(j, cols_);
  std::vector<double> col(rows_);
  for (size_t i = 0; i < rows_; ++i) col[i] = (*this)(i, j);
  return col;
}

void Matrix::AppendRow(const std::vector<double>& row) {
  AppendRow(row.data(), row.size());
}

void Matrix::AppendRow(const double* row, size_t n) {
  if (rows_ == 0 && cols_ == 0) cols_ = n;
  DMT_CHECK_EQ(n, cols_);
  data_.insert(data_.end(), row, row + n);
  ++rows_;
}

void Matrix::ClearRows() {
  rows_ = 0;
  data_.clear();
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  DMT_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  // i-k-j loop order: streams through both row-major operands.
  for (size_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    double* o = out.Row(i);
    for (size_t k = 0; k < cols_; ++k) {
      const double aik = a[k];
      if (aik == 0.0) continue;
      const double* b = other.Row(k);
      Axpy(aik, b, o, other.cols_);
    }
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  for (size_t i = 0; i < rows_; ++i) {
    const double* r = Row(i);
    for (size_t j = 0; j < cols_; ++j) {
      const double rj = r[j];
      if (rj == 0.0) continue;
      double* gj = g.Row(j);
      // Only fill the upper triangle; mirror afterwards.
      for (size_t k = j; k < cols_; ++k) gj[k] += rj * r[k];
    }
  }
  for (size_t j = 0; j < cols_; ++j) {
    for (size_t k = j + 1; k < cols_; ++k) g(k, j) = g(j, k);
  }
  return g;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& x) const {
  DMT_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_);
  for (size_t i = 0; i < rows_; ++i) y[i] = Dot(Row(i), x.data(), cols_);
  return y;
}

std::vector<double> Matrix::TransposedMultiplyVector(
    const std::vector<double>& x) const {
  DMT_CHECK_EQ(x.size(), rows_);
  std::vector<double> y(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) Axpy(x[i], Row(i), y.data(), cols_);
  return y;
}

double Matrix::SquaredFrobeniusNorm() const {
  return linalg::SquaredNorm(data_.data(), data_.size());
}

double Matrix::SquaredNormAlong(const std::vector<double>& x) const {
  DMT_CHECK_EQ(x.size(), cols_);
  double total = 0.0;
  for (size_t i = 0; i < rows_; ++i) {
    double d = Dot(Row(i), x.data(), cols_);
    total += d * d;
  }
  return total;
}

void Matrix::Add(const Matrix& other) {
  DMT_CHECK_EQ(rows_, other.rows_);
  DMT_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Subtract(const Matrix& other) {
  DMT_CHECK_EQ(rows_, other.rows_);
  DMT_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::ScaleBy(double alpha) {
  Scale(alpha, data_.data(), data_.size());
}

void Matrix::AddOuterProduct(double alpha, const std::vector<double>& v) {
  DMT_CHECK_EQ(rows_, cols_);
  DMT_CHECK_EQ(v.size(), rows_);
  for (size_t i = 0; i < rows_; ++i) {
    const double avi = alpha * v[i];
    if (avi == 0.0) continue;
    Axpy(avi, v.data(), Row(i), cols_);
  }
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  DMT_CHECK_EQ(rows_, other.rows_);
  DMT_CHECK_EQ(cols_, other.cols_);
  double mx = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
  }
  return mx;
}

}  // namespace linalg
}  // namespace dmt
