#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "linalg/vec_ops.h"
#include "util/check.h"
#include "util/contracts.h"

namespace dmt {
namespace linalg {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  Matrix m;
  for (const auto& r : rows) m.AppendRow(r);
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

std::vector<double> Matrix::RowVector(size_t i) const {
  DMT_CHECK_LT(i, rows_);
  return std::vector<double>(Row(i), Row(i) + cols_);
}

std::vector<double> Matrix::ColVector(size_t j) const {
  DMT_CHECK_LT(j, cols_);
  std::vector<double> col(rows_);
  for (size_t i = 0; i < rows_; ++i) col[i] = (*this)(i, j);
  return col;
}

void Matrix::AppendRow(const std::vector<double>& row) {
  AppendRow(row.data(), row.size());
}

void Matrix::AppendRow(const double* row, size_t n) {
  if (rows_ == 0 && cols_ == 0) cols_ = n;
  DMT_CHECK_EQ(n, cols_);
  data_.insert(data_.end(), row, row + n);
  ++rows_;
}

void Matrix::AppendRows(const Matrix& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0 && cols_ == 0) cols_ = other.cols_;
  DMT_CHECK_EQ(other.cols_, cols_);
  if (&other == this) {
    // Self-append: size first, then copy the original prefix (iterators
    // into other.data_ would dangle across the reallocation).
    const size_t n = data_.size();
    data_.resize(2 * n);
    std::copy(data_.begin(), data_.begin() + static_cast<long>(n),
              data_.begin() + static_cast<long>(n));
    rows_ *= 2;
    return;
  }
  data_.insert(data_.end(), other.data_.begin(), other.data_.end());
  rows_ += other.rows_;
}

void Matrix::AppendRows(const double* rows, size_t n, size_t cols) {
  if (n == 0) return;
  DMT_CHECK_GT(cols, 0u);
  if (rows_ == 0 && cols_ == 0) cols_ = cols;
  DMT_CHECK_EQ(cols, cols_);
  data_.insert(data_.end(), rows, rows + n * cols);
  rows_ += n;
}

void Matrix::ReserveRows(size_t rows) { data_.reserve(rows * cols_); }

DMT_ALLOC_OK("reallocates only when growing past the reserved capacity; annotated shrink paths always resize within it")
void Matrix::ResizeRows(size_t rows) {
  data_.resize(rows * cols_, 0.0);
  rows_ = rows;
}

void Matrix::ClearRows() {
  rows_ = 0;
  data_.clear();
}

void Matrix::SetZero() { std::fill(data_.begin(), data_.end(), 0.0); }

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  kernels::Transpose(data_.data(), rows_, cols_, t.data_.data());
  return t;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  DMT_CHECK_EQ(cols_, other.rows_);
  Matrix out(rows_, other.cols_);
  kernels::Gemm(data_.data(), other.data_.data(), out.data_.data(), rows_,
                cols_, other.cols_);
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_);
  kernels::Gram(data_.data(), rows_, cols_, g.data_.data());
  return g;
}

std::vector<double> Matrix::MultiplyVector(const std::vector<double>& x) const {
  DMT_CHECK_EQ(x.size(), cols_);
  std::vector<double> y(rows_);
  for (size_t i = 0; i < rows_; ++i) y[i] = Dot(Row(i), x.data(), cols_);
  return y;
}

std::vector<double> Matrix::TransposedMultiplyVector(
    const std::vector<double>& x) const {
  DMT_CHECK_EQ(x.size(), rows_);
  std::vector<double> y(cols_, 0.0);
  for (size_t i = 0; i < rows_; ++i) Axpy(x[i], Row(i), y.data(), cols_);
  return y;
}

double Matrix::SquaredFrobeniusNorm() const {
  return linalg::SquaredNorm(data_.data(), data_.size());
}

double Matrix::SquaredNormAlong(const std::vector<double>& x) const {
  DMT_CHECK_EQ(x.size(), cols_);
  return kernels::SquaredNormAlong(data_.data(), rows_, cols_, x.data());
}

void Matrix::Add(const Matrix& other) {
  DMT_CHECK_EQ(rows_, other.rows_);
  DMT_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Matrix::Subtract(const Matrix& other) {
  DMT_CHECK_EQ(rows_, other.rows_);
  DMT_CHECK_EQ(cols_, other.cols_);
  for (size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
}

void Matrix::ScaleBy(double alpha) {
  Scale(alpha, data_.data(), data_.size());
}

void Matrix::AddOuterProduct(double alpha, const std::vector<double>& v) {
  DMT_CHECK_EQ(rows_, cols_);
  DMT_CHECK_EQ(v.size(), rows_);
  kernels::Rank1Update(alpha, v.data(), data_.data(), cols_);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  DMT_CHECK_EQ(rows_, other.rows_);
  DMT_CHECK_EQ(cols_, other.cols_);
  double mx = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    mx = std::max(mx, std::fabs(data_[i] - other.data_[i]));
  }
  return mx;
}

}  // namespace linalg
}  // namespace dmt
