// Spectral helpers used by the evaluation metrics.
#ifndef DMT_LINALG_SPECTRAL_H_
#define DMT_LINALG_SPECTRAL_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace dmt {
namespace linalg {

/// Power iteration estimate of the spectral norm (largest |eigenvalue|) of
/// a symmetric matrix. Cheaper than a full Jacobi decomposition when only
/// the norm is needed; used as a cross-check of the exact route in tests.
///
/// Iterates until the Rayleigh-quotient residual ‖S·y − ρ·y‖ drops to
/// `tol * |ρ|` or `max_iters` is reached, whichever comes first — a fixed
/// iteration count silently underestimates on near-tied leading
/// eigenvalues (λ₁/λ₂ → 1 makes convergence arbitrarily slow), so the
/// residual test is what certifies the estimate. Pass tol = 0 to disable
/// early stopping and run exactly `max_iters` iterations (the legacy
/// fixed-count behaviour). A zero iterate (start vector in the null
/// space) restarts deterministically on canonical basis vectors instead
/// of reporting 0 for a non-zero matrix; 0 is returned only when S = 0.
/// `iters_used`, when non-null, receives the number of iterations run.
double PowerIterationSpectralNorm(const Matrix& s, int max_iters, Rng* rng,
                                  double tol = 1e-10,
                                  int* iters_used = nullptr);

/// Random unit vector of dimension d (uniform on the sphere).
std::vector<double> RandomUnitVector(size_t d, Rng* rng);

/// Random n x d matrix with iid N(0,1) entries.
Matrix RandomGaussianMatrix(size_t n, size_t d, Rng* rng);

/// Random d x d orthogonal matrix (QR of a Gaussian matrix via
/// Gram-Schmidt; d is small in this library so the classic procedure with
/// re-orthogonalization is fine).
Matrix RandomOrthogonalMatrix(size_t d, Rng* rng);

}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_SPECTRAL_H_
