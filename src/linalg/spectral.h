// Spectral helpers used by the evaluation metrics.
#ifndef DMT_LINALG_SPECTRAL_H_
#define DMT_LINALG_SPECTRAL_H_

#include <cstddef>

#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace dmt {
namespace linalg {

/// Power iteration estimate of the spectral norm (largest |eigenvalue|) of
/// a symmetric matrix. Cheaper than a full Jacobi decomposition when only
/// the norm is needed and `iters` is small; used as a cross-check of the
/// exact route in tests.
double PowerIterationSpectralNorm(const Matrix& s, int iters, Rng* rng);

/// Random unit vector of dimension d (uniform on the sphere).
std::vector<double> RandomUnitVector(size_t d, Rng* rng);

/// Random n x d matrix with iid N(0,1) entries.
Matrix RandomGaussianMatrix(size_t n, size_t d, Rng* rng);

/// Random d x d orthogonal matrix (QR of a Gaussian matrix via
/// Gram-Schmidt; d is small in this library so the classic procedure with
/// re-orthogonalization is fine).
Matrix RandomOrthogonalMatrix(size_t d, Rng* rng);

}  // namespace linalg
}  // namespace dmt

#endif  // DMT_LINALG_SPECTRAL_H_
