#include "net/workload.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "data/synthetic_matrix.h"
#include "data/zipf.h"
#include "stream/router.h"

namespace dmt {
namespace net {
namespace {

const char* FindArgValue(int argc, char** argv, const char* flag) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, flag) == 0 && i + 1 < argc) return argv[i + 1];
    if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
      return arg + flag_len + 1;
    }
  }
  return nullptr;
}

std::string ParseStringArg(int argc, char** argv, const char* flag,
                           const std::string& fallback) {
  const char* v = FindArgValue(argc, argv, flag);
  return v == nullptr ? fallback : std::string(v);
}

double ParseDoubleArg(int argc, char** argv, const char* flag,
                      double fallback) {
  const char* v = FindArgValue(argc, argv, flag);
  if (v == nullptr) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end == v || *end != '\0') ? fallback : parsed;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

// Bitwise double comparison: the equivalence contract is bit-identity, and
// operator== would also paper over signed-zero / NaN differences.
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

}  // namespace

WireRunConfig ParseWireArgs(int argc, char** argv) {
  WireRunConfig c;
  c.protocol = ParseStringArg(argc, argv, "--protocol", c.protocol);
  c.num_sites = stream::ParseSizeArg(argc, argv, "--sites", c.num_sites);
  c.n = stream::ParseSizeArg(argc, argv, "--n", c.n);
  c.chunk = stream::ParseSizeArg(argc, argv, "--chunk", c.chunk);
  c.eps = ParseDoubleArg(argc, argv, "--eps", c.eps);
  c.seed = stream::ParseSizeArg(argc, argv, "--seed", c.seed);
  c.universe = stream::ParseSizeArg(argc, argv, "--universe",
                                    static_cast<size_t>(c.universe));
  c.skew = ParseDoubleArg(argc, argv, "--skew", c.skew);
  c.beta = ParseDoubleArg(argc, argv, "--beta", c.beta);
  c.dim = stream::ParseSizeArg(argc, argv, "--dim", c.dim);
  c.host = ParseStringArg(argc, argv, "--host", c.host);
  c.port = static_cast<uint16_t>(
      stream::ParseSizeArg(argc, argv, "--port", c.port));
  c.port_file = ParseStringArg(argc, argv, "--port-file", c.port_file);
  c.site = stream::ParseSizeArg(argc, argv, "--site", c.site);
  c.check = HasFlag(argc, argv, "--check");
  return c;
}

WireWorkload MakeWireWorkload(const WireRunConfig& config) {
  WireWorkload w;
  if (config.protocol == "mp2") {
    data::SyntheticMatrixConfig gen_config;
    gen_config.dim = config.dim;
    gen_config.latent_rank = std::max<size_t>(1, config.dim / 3);
    gen_config.seed = config.seed;
    data::SyntheticMatrixGenerator gen(gen_config);
    w.rows.resize(config.n);
    for (size_t i = 0; i < config.n; ++i) w.rows[i] = gen.Next();
  } else {
    data::ZipfianStream z(config.universe, config.skew, config.beta,
                          config.seed);
    w.items.resize(config.n);
    for (size_t i = 0; i < config.n; ++i) {
      const data::WeightedItem item = z.Next();
      w.items[i] = stream::WeightedUpdate{item.element, item.weight};
    }
  }
  stream::Router router(config.num_sites, stream::RoutingPolicy::kUniform,
                        config.seed + 1);
  w.sites = stream::AssignSites(&router, config.n);
  // RunImpl's schedule derives num_sites from the materialized assignment
  // (max site + 1), which can be below config.num_sites for tiny streams;
  // match it exactly or the bootstrap window would differ.
  size_t sched_sites = 0;
  for (size_t s : w.sites) sched_sites = std::max(sched_sites, s + 1);
  w.window_ends = stream::WindowEnds(config.n, config.chunk, sched_sites);
  return w;
}

WireProtocol MakeWireProtocol(const WireRunConfig& config) {
  WireProtocol p;
  if (config.protocol == "p1") {
    p.hh = std::make_unique<hh::P1BatchedMG>(config.num_sites, config.eps);
    p.adapter = std::make_unique<P1Wire>(p.hh.get(), config.num_sites);
  } else if (config.protocol == "mp2") {
    p.mp = std::make_unique<matrix::MP2SvdThreshold>(config.num_sites,
                                                     config.eps);
    p.adapter = std::make_unique<MP2Wire>(p.mp.get(), config.num_sites);
  }
  return p;
}

std::function<void(uint32_t)> MakeSiteUpdater(const WireWorkload& workload,
                                              WireProtocol* protocol,
                                              size_t site) {
  if (protocol->hh != nullptr) {
    hh::P1BatchedMG* p = protocol->hh.get();
    const auto* items = &workload.items;
    return [p, items, site](uint32_t i) {
      p->SiteUpdate(site, (*items)[i].element, (*items)[i].weight);
    };
  }
  matrix::MP2SvdThreshold* p = protocol->mp.get();
  const auto* rows = &workload.rows;
  return [p, rows, site](uint32_t i) { p->SiteUpdate(site, (*rows)[i]); };
}

WireProtocol RunOracle(const WireRunConfig& config,
                       const WireWorkload& workload) {
  WireProtocol p = MakeWireProtocol(config);
  stream::SimulationOptions opt;
  opt.threads = 1;  // any count is bit-identical; one keeps the check cheap
  opt.chunk_elements = config.chunk;
  stream::SimulationDriver driver(opt);
  if (p.hh != nullptr) {
    driver.Run(p.hh.get(), workload.sites, workload.items);
  } else if (p.mp != nullptr) {
    driver.Run(p.mp.get(), workload.sites, workload.rows);
  }
  return p;
}

std::string DiffWireProtocols(const WireRunConfig& config,
                              const WireProtocol& a, const WireProtocol& b) {
  std::ostringstream out;
  const auto diff_stats = [&](const stream::CommStats& sa,
                              const stream::CommStats& sb) {
    if (sa.scalar_up != sb.scalar_up || sa.element_up != sb.element_up ||
        sa.vector_up != sb.vector_up ||
        sa.broadcast_events != sb.broadcast_events ||
        sa.broadcast_msgs != sb.broadcast_msgs || sa.rounds != sb.rounds) {
      out << "CommStats differ: (" << sa.scalar_up << "," << sa.element_up
          << "," << sa.vector_up << "," << sa.broadcast_events << ","
          << sa.broadcast_msgs << "," << sa.rounds << ") vs ("
          << sb.scalar_up << "," << sb.element_up << "," << sb.vector_up
          << "," << sb.broadcast_events << "," << sb.broadcast_msgs << ","
          << sb.rounds << "); ";
    }
  };

  if (config.protocol == "p1") {
    if (a.hh == nullptr || b.hh == nullptr) return "p1 instance missing";
    diff_stats(a.hh->comm_stats(), b.hh->comm_stats());
    if (a.hh->per_site_messages() != b.hh->per_site_messages()) {
      out << "per-site messages differ; ";
    }
    if (!SameBits(a.hh->EstimateTotalWeight(), b.hh->EstimateTotalWeight())) {
      out << "total weight differs (" << a.hh->EstimateTotalWeight()
          << " vs " << b.hh->EstimateTotalWeight() << "); ";
    }
    if (!SameBits(a.hh->broadcast_weight(), b.hh->broadcast_weight())) {
      out << "broadcast W-hat differs; ";
    }
    const auto ea = a.hh->TrackedElements();
    const auto eb = b.hh->TrackedElements();
    if (ea != eb) {
      out << "tracked element sets differ (" << ea.size() << " vs "
          << eb.size() << " elements); ";
    } else {
      for (uint64_t e : ea) {
        if (!SameBits(a.hh->EstimateElementWeight(e),
                      b.hh->EstimateElementWeight(e))) {
          out << "estimate for element " << e << " differs; ";
          break;
        }
      }
    }
    return out.str();
  }

  if (a.mp == nullptr || b.mp == nullptr) return "mp2 instance missing";
  diff_stats(a.mp->comm_stats(), b.mp->comm_stats());
  if (a.mp->per_site_messages() != b.mp->per_site_messages()) {
    out << "per-site messages differ; ";
  }
  if (!SameBits(a.mp->coordinator_frobenius(),
                b.mp->coordinator_frobenius())) {
    out << "coordinator F-hat differs; ";
  }
  if (!SameBits(a.mp->last_broadcast_fest(), b.mp->last_broadcast_fest())) {
    out << "broadcast F-hat differs; ";
  }
  const linalg::Matrix ga = a.mp->CoordinatorGram();
  const linalg::Matrix gb = b.mp->CoordinatorGram();
  if (ga.rows() != gb.rows() || ga.cols() != gb.cols()) {
    out << "coordinator Gram shapes differ; ";
  } else {
    for (size_t i = 0; i < ga.rows(); ++i) {
      for (size_t j = 0; j < ga.cols(); ++j) {
        if (!SameBits(ga(i, j), gb(i, j))) {
          out << "coordinator Gram differs at (" << i << "," << j << "); ";
          i = ga.rows();
          break;
        }
      }
    }
  }
  return out.str();
}

}  // namespace net
}  // namespace dmt
