#include "net/frame.h"

#include "util/codec.h"
#include "util/contracts.h"

namespace dmt {
namespace net {
namespace {

constexpr char kMagic[4] = {'D', 'M', 'T', 'W'};

// Table-driven CRC-32, table built once per process (deterministic: the
// table depends only on the polynomial).
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

bool IsKnownMsgType(uint8_t t) {
  return t >= static_cast<uint8_t>(MsgType::kHello) &&
         t <= static_cast<uint8_t>(MsgType::kShutdown);
}

uint32_t Crc32(const uint8_t* data, size_t n) {
  const uint32_t* table = CrcTable();
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void AppendFrame(MsgType type, const uint8_t* payload, size_t n,
                 std::vector<uint8_t>* out) {
  char header[kFrameHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutLE<uint8_t>(header, 4, kFrameVersion);
  PutLE<uint8_t>(header, 5, static_cast<uint8_t>(type));
  PutLE<uint32_t>(header, 8, static_cast<uint32_t>(n));
  PutLE<uint32_t>(header, 12, Crc32(payload, n));
  const size_t at = out->size();
  out->resize(at + kFrameHeaderBytes + n);
  std::memcpy(out->data() + at, header, kFrameHeaderBytes);
  if (n != 0) std::memcpy(out->data() + at + kFrameHeaderBytes, payload, n);
}

DMT_UNTRUSTED_INPUT
bool DecodeFrameHeader(const uint8_t* header, FrameHeader* out,
                       std::string* error) {
  const char* h = reinterpret_cast<const char*>(header);
  if (std::memcmp(h, kMagic, sizeof(kMagic)) != 0) {
    if (error != nullptr) *error = "frame: bad magic";
    return false;
  }
  const uint8_t version = GetLE<uint8_t>(h, 4);
  if (version != kFrameVersion) {
    if (error != nullptr) {
      *error = "frame: unsupported version " + std::to_string(version);
    }
    return false;
  }
  const uint8_t type = GetLE<uint8_t>(h, 5);
  if (!IsKnownMsgType(type)) {
    if (error != nullptr) {
      *error = "frame: unknown message type " + std::to_string(type);
    }
    return false;
  }
  const uint32_t len = GetLE<uint32_t>(h, 8);
  if (len > kMaxFramePayload) {
    if (error != nullptr) {
      *error = "frame: payload length " + std::to_string(len) +
               " exceeds the " + std::to_string(kMaxFramePayload) +
               "-byte bound";
    }
    return false;
  }
  out->type = static_cast<MsgType>(type);
  out->payload_len = len;
  out->crc = GetLE<uint32_t>(h, 12);
  return true;
}

DMT_UNTRUSTED_INPUT
bool CheckFrameCrc(const FrameHeader& header, const uint8_t* payload,
                   std::string* error) {
  const uint32_t crc = Crc32(payload, header.payload_len);
  if (crc != header.crc) {
    if (error != nullptr) *error = "frame: payload CRC mismatch";
    return false;
  }
  return true;
}

}  // namespace net
}  // namespace dmt
