#include "net/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

namespace dmt {
namespace net {
namespace {

/// Blocking full-duplex TCP socket. TCP_NODELAY is set so a window's
/// single batched Send leaves immediately instead of waiting on Nagle.
class TcpConnection : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {
    int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~TcpConnection() override { Close(); }

  bool Send(const uint8_t* data, size_t n) override {
    size_t off = 0;
    while (off < n) {
      // MSG_NOSIGNAL: a peer that died mid-run must surface as a false
      // return, not a SIGPIPE process kill.
      const ssize_t w =
          ::send(fd_, data + off, n - off, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(w);
    }
    CountSent(n);
    return true;
  }

  bool Recv(uint8_t* data, size_t n) override {
    size_t off = 0;
    while (off < n) {
      const ssize_t r = ::recv(fd_, data + off, n - off, 0);
      if (r < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (r == 0) return false;  // orderly peer close mid-message
      off += static_cast<size_t>(r);
    }
    CountReceived(n);
    return true;
  }

  void Close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

/// One direction of the in-memory pair: a byte queue with blocking reads.
struct LocalPipe {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<uint8_t> bytes;
  bool closed = false;

  void Write(const uint8_t* data, size_t n) {
    {
      std::lock_guard<std::mutex> lock(mu);
      bytes.insert(bytes.end(), data, data + n);
    }
    cv.notify_all();
  }

  // Reads exactly n bytes; false if the pipe closes before they arrive.
  bool Read(uint8_t* data, size_t n) {
    std::unique_lock<std::mutex> lock(mu);
    size_t off = 0;
    while (off < n) {
      cv.wait(lock, [&] { return !bytes.empty() || closed; });
      if (bytes.empty() && closed) return false;
      while (off < n && !bytes.empty()) {
        data[off++] = bytes.front();
        bytes.pop_front();
      }
    }
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

/// One endpoint of the in-memory pair: sends into `out`, receives from
/// `in`. Both endpoints share the two pipes.
class LocalConnection : public Connection {
 public:
  LocalConnection(std::shared_ptr<LocalPipe> in, std::shared_ptr<LocalPipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~LocalConnection() override { Close(); }

  bool Send(const uint8_t* data, size_t n) override {
    {
      std::lock_guard<std::mutex> lock(out_->mu);
      if (out_->closed) return false;
    }
    out_->Write(data, n);
    CountSent(n);
    return true;
  }

  bool Recv(uint8_t* data, size_t n) override {
    if (!in_->Read(data, n)) return false;
    CountReceived(n);
    return true;
  }

  void Close() override {
    in_->Close();
    out_->Close();
  }

 private:
  std::shared_ptr<LocalPipe> in_;
  std::shared_ptr<LocalPipe> out_;
};

}  // namespace

bool SendFrame(Connection* conn, MsgType type,
               const std::vector<uint8_t>& payload) {
  std::vector<uint8_t> frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(type, payload.data(), payload.size(), &frame);
  return conn->Send(frame.data(), frame.size());
}

// The virtual Connection::Recv calls are not statically resolvable; every
// implementation is a blocking byte copy that reports failure by returning
// false and never interprets the bytes it moves.
// dmt-lint: allow(untrusted-abort-path): virtual Recv is a byte copy, returns false on failure
DMT_UNTRUSTED_INPUT
bool RecvFrame(Connection* conn, FrameHeader* header,
               std::vector<uint8_t>* payload, std::string* error) {
  uint8_t raw[kFrameHeaderBytes];
  if (!conn->Recv(raw, kFrameHeaderBytes)) {
    if (error != nullptr) *error = "frame: channel closed";
    return false;
  }
  if (!DecodeFrameHeader(raw, header, error)) return false;
  payload->resize(header->payload_len);
  if (header->payload_len != 0 &&
      !conn->Recv(payload->data(), header->payload_len)) {
    if (error != nullptr) *error = "frame: channel closed mid-payload";
    return false;
  }
  return CheckFrameCrc(*header, payload->data(), error);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

std::unique_ptr<TcpListener> TcpListener::Listen(uint16_t port,
                                                 std::string* error,
                                                 bool any_interface) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::string("socket: ") + strerror(errno);
    return nullptr;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr =
      any_interface ? htonl(INADDR_ANY) : htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = std::string("bind: ") + strerror(errno);
    ::close(fd);
    return nullptr;
  }
  if (::listen(fd, 64) != 0) {
    if (error != nullptr) *error = std::string("listen: ") + strerror(errno);
    ::close(fd);
    return nullptr;
  }
  // Read back the bound port so port 0 (ephemeral) is usable.
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    if (error != nullptr) {
      *error = std::string("getsockname: ") + strerror(errno);
    }
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(bound.sin_port)));
}

std::unique_ptr<Connection> TcpListener::Accept(std::string* error) {
  while (true) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return std::make_unique<TcpConnection>(fd);
    if (errno == EINTR) continue;
    if (error != nullptr) *error = std::string("accept: ") + strerror(errno);
    return nullptr;
  }
}

std::unique_ptr<Connection> TcpConnect(const std::string& host, uint16_t port,
                                       std::string* error, int retries) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "connect: bad IPv4 address " + host;
    return nullptr;
  }
  int last_errno = 0;
  for (int attempt = 0; attempt <= retries; ++attempt) {
    if (attempt != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      last_errno = errno;
      continue;
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
      return std::make_unique<TcpConnection>(fd);
    }
    last_errno = errno;
    ::close(fd);
  }
  if (error != nullptr) {
    *error = "connect " + host + ":" + std::to_string(port) + ": " +
             strerror(last_errno);
  }
  return nullptr;
}

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
MakeLocalPair() {
  auto a_to_b = std::make_shared<LocalPipe>();
  auto b_to_a = std::make_shared<LocalPipe>();
  return {std::make_unique<LocalConnection>(b_to_a, a_to_b),
          std::make_unique<LocalConnection>(a_to_b, b_to_a)};
}

}  // namespace net
}  // namespace dmt
