// Shared run configuration and deterministic workload construction for the
// wire binaries (tools/dmt_site, tools/dmt_coordinator), the
// transport-equivalence tests and the loopback bench.
//
// Every process of one distributed run parses the same flags and calls
// MakeWireWorkload with the same config; because stream generation, site
// assignment and the window schedule are all pure functions of the config
// (seeded generators, stream::WindowEnds), each process independently
// reconstructs the identical global stream — no data travels out-of-band.
#ifndef DMT_NET_WORKLOAD_H_
#define DMT_NET_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/remote.h"
#include "stream/simulation_driver.h"

namespace dmt {
namespace net {

/// One distributed run's parameters (every process must agree on these).
struct WireRunConfig {
  std::string protocol = "p1";  ///< "p1" (HH) or "mp2" (matrix)
  size_t num_sites = 4;
  size_t n = 20000;             ///< stream length (items or rows)
  size_t chunk = 1024;          ///< arrivals per synchronization window
  double eps = 0.1;
  uint64_t seed = 42;
  // HH workload (protocol == "p1"): Zipfian stream parameters.
  uint64_t universe = 16384;
  double skew = 2.0;
  double beta = 4.0;
  // Matrix workload (protocol == "mp2").
  size_t dim = 24;
  // Transport endpoint.
  std::string host = "127.0.0.1";
  uint16_t port = 0;            ///< 0 = ephemeral (coordinator side)
  std::string port_file;        ///< publish/poll the bound port here
  // Role-specific.
  size_t site = SIZE_MAX;       ///< dmt_site --site
  bool check = false;           ///< dmt_coordinator --check (oracle compare)
};

/// Parses the shared flag vocabulary (--protocol, --sites, --n, --chunk,
/// --eps, --seed, --universe, --skew, --beta, --dim, --host, --port,
/// --port-file, --site, --check). Unknown flags are ignored so role-only
/// flags can coexist.
WireRunConfig ParseWireArgs(int argc, char** argv);

/// The materialized global stream: exactly one of items/rows is populated,
/// plus the site assignment and the oracle's window schedule.
struct WireWorkload {
  std::vector<stream::WeightedUpdate> items;  ///< protocol == "p1"
  std::vector<std::vector<double>> rows;      ///< protocol == "mp2"
  std::vector<size_t> sites;                  ///< arrival i -> site
  std::vector<size_t> window_ends;            ///< stream::WindowEnds
};

/// Builds the workload deterministically from the config (same config in
/// two processes -> bit-identical streams, assignment and schedule).
WireWorkload MakeWireWorkload(const WireRunConfig& config);

/// A protocol instance bundled with its wire adapter; exactly one of
/// hh/mp is set. `adapter` is null when config.protocol is unknown.
struct WireProtocol {
  std::unique_ptr<hh::P1BatchedMG> hh;
  std::unique_ptr<matrix::MP2SvdThreshold> mp;
  std::unique_ptr<WireAdapter> adapter;
};

/// Instantiates the configured protocol and its adapter.
WireProtocol MakeWireProtocol(const WireRunConfig& config);

/// The site-update callback RunWireSite needs: applies stream arrival
/// `idx` to `protocol` as site `site`. `workload` and `protocol` must
/// outlive the returned function.
std::function<void(uint32_t)> MakeSiteUpdater(const WireWorkload& workload,
                                              WireProtocol* protocol,
                                              size_t site);

/// Runs the same workload through the in-process SimulationDriver — the
/// deterministic oracle a wire run is compared against.
WireProtocol RunOracle(const WireRunConfig& config,
                       const WireWorkload& workload);

/// Compares two instances' final coordinator state and CommStats exactly
/// (doubles by bit pattern). Returns "" when identical, else a
/// human-readable description of the first difference.
std::string DiffWireProtocols(const WireRunConfig& config,
                              const WireProtocol& a, const WireProtocol& b);

}  // namespace net
}  // namespace dmt

#endif  // DMT_NET_WORKLOAD_H_
