// Distributed protocol runner: the site and coordinator halves of a run
// over a real channel, replaying the SimulationDriver schedule exactly.
//
// Execution model. Every site process holds a full protocol instance but
// drives only its own site's SiteUpdate; the coordinator process holds its
// own instance and never sees a raw arrival. Per synchronization window
// (stream::WindowEnds):
//
//   site s:        apply this window's arrivals -> serialize the outbox ->
//                  one batched send (frames + kWindowEnd) -> block on the
//                  coordinator's kBroadcast.
//   coordinator:   drain sites in ascending order (each until kWindowEnd),
//                  delivering every message to its protocol instance ->
//                  push the current broadcast value to every site.
//
// That is message-for-message the oracle's schedule — site phase, ordered
// drain, broadcast visibility only at the window boundary — and payloads
// travel as exact 8-byte doubles, so the coordinator's final sketch and
// CommStats are bit-identical to an in-process run over the same workload
// (tests/net_transport_test.cc asserts this). The per-window kBroadcast
// push is a transport frame, not a paper message: CommStats still counts
// only the protocol's own broadcast events, while Connection byte counters
// report what actually crossed the wire.
//
// Deadlock-freedom: the coordinator drains sites in ascending order, and a
// site blocks on its broadcast only after its batched send completed; a
// site whose send fills the socket buffer simply waits until the
// coordinator's drain reaches it. There is no cycle.
#ifndef DMT_NET_REMOTE_H_
#define DMT_NET_REMOTE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hh/p1_batched_mg.h"
#include "matrix/mp2_svd_threshold.h"
#include "net/transport.h"

namespace dmt {
namespace net {

/// Protocol-specific serialization glue between a protocol instance's wire
/// hooks and the frame vocabulary. One adapter wraps one instance and
/// serves whichever half (site or coordinator) the process runs.
class WireAdapter {
 public:
  virtual ~WireAdapter() = default;

  /// Registered protocol name carried in the handshake ("p1", "mp2").
  virtual std::string protocol_name() const = 0;
  virtual size_t num_sites() const = 0;

  /// Site half: drains site `site`'s outbox into `batch`, one frame per
  /// protocol message, in emission order.
  virtual void EncodeWindow(size_t site, FrameBatch* batch) = 0;
  /// Site half: installs a received broadcast value into `site`'s view.
  virtual void ApplyBroadcast(size_t site, double value) = 0;

  /// Coordinator half: decodes one received frame from `site` and delivers
  /// it to the protocol instance. False (with `*error`) on a malformed or
  /// out-of-vocabulary payload — wire input is untrusted.
  virtual bool ApplyFrame(size_t site, MsgType type, const uint8_t* payload,
                          size_t n, std::string* error) = 0;
  /// Coordinator half: the broadcast value to push after a window drain.
  virtual double BroadcastValue() const = 0;
};

/// Adapter for protocol P1 (batched Misra-Gries heavy hitters).
class P1Wire : public WireAdapter {
 public:
  P1Wire(hh::P1BatchedMG* protocol, size_t num_sites)
      : protocol_(protocol), num_sites_(num_sites) {}

  std::string protocol_name() const override { return "p1"; }
  size_t num_sites() const override { return num_sites_; }
  void EncodeWindow(size_t site, FrameBatch* batch) override;
  void ApplyBroadcast(size_t site, double value) override;
  bool ApplyFrame(size_t site, MsgType type, const uint8_t* payload,
                  size_t n, std::string* error) override;
  double BroadcastValue() const override;

 private:
  hh::P1BatchedMG* protocol_;
  size_t num_sites_;
};

/// Adapter for matrix protocol MP2 (SVD-threshold tracking).
class MP2Wire : public WireAdapter {
 public:
  MP2Wire(matrix::MP2SvdThreshold* protocol, size_t num_sites)
      : protocol_(protocol), num_sites_(num_sites) {}

  std::string protocol_name() const override { return "mp2"; }
  size_t num_sites() const override { return num_sites_; }
  void EncodeWindow(size_t site, FrameBatch* batch) override;
  void ApplyBroadcast(size_t site, double value) override;
  bool ApplyFrame(size_t site, MsgType type, const uint8_t* payload,
                  size_t n, std::string* error) override;
  double BroadcastValue() const override;

 private:
  matrix::MP2SvdThreshold* protocol_;
  size_t num_sites_;
};

/// Splits a materialized site assignment into one site's per-window lists
/// of stream indices, following the oracle's window schedule
/// (stream::WindowEnds output for the same n/chunk/num_sites). A site has
/// an (often empty) entry for every window — the schedule is global.
std::vector<std::vector<uint32_t>> SiteWindowIndices(
    const std::vector<size_t>& sites, size_t site,
    const std::vector<size_t>& window_ends);

/// Runs one site's half of the protocol over `conn`: handshake, then per
/// window apply this site's arrivals via `update` (called with the stream
/// index), batch-send the outbox, and absorb the broadcast. Returns false
/// with `*error` on any channel or protocol-framing failure.
bool RunWireSite(WireAdapter* adapter, size_t site,
                 const std::vector<std::vector<uint32_t>>& windows,
                 const std::function<void(uint32_t)>& update,
                 Connection* conn, std::string* error);

/// Per-channel byte accounting of a coordinator run (index = site id).
struct WireCoordinatorReport {
  uint64_t frames_received = 0;
  std::vector<uint64_t> bytes_from_site;
  std::vector<uint64_t> bytes_to_site;

  uint64_t total_bytes_up() const {
    uint64_t t = 0;
    for (uint64_t b : bytes_from_site) t += b;
    return t;
  }
  uint64_t total_bytes_down() const {
    uint64_t t = 0;
    for (uint64_t b : bytes_to_site) t += b;
    return t;
  }
};

/// Runs the coordinator's half over `channels` (accept order — the
/// handshake reorders them by the site id each peer announces). Expects
/// exactly adapter->num_sites() channels and `num_windows` windows; drains
/// every window in ascending site order, pushes broadcasts, then runs the
/// kSiteDone / kShutdown teardown. Returns false with `*error` on any
/// channel failure, malformed frame, or handshake mismatch.
///
/// `on_window`, when non-empty, runs after each window's drain completes
/// (1-based count of drained windows), before the broadcast push — the
/// protocol instance is in its between-rounds state, so the callback may
/// export snapshots (serve::ServingCoordinator publishes from here).
/// Observer plane only: it must not mutate the protocol.
bool RunWireCoordinator(WireAdapter* adapter,
                        std::vector<std::unique_ptr<Connection>>* channels,
                        size_t num_windows, WireCoordinatorReport* report,
                        std::string* error,
                        const std::function<void(size_t)>& on_window = {});

}  // namespace net
}  // namespace dmt

#endif  // DMT_NET_REMOTE_H_
