// Per-message payload encodings for the wire protocol (docs/PROTOCOL.md).
//
// Each message type has a struct, an Encode (append payload bytes) and a
// Decode (parse payload bytes, false on malformed input). Encodings are
// exact: doubles travel as their 8-byte little-endian IEEE-754 images, so
// a decoded value is bit-identical to the encoded one — the property the
// transport-equivalence tests (in-process vs TCP, bit-identical sketches)
// rest on. Decoders never abort; wire input is untrusted.
#ifndef DMT_NET_MESSAGES_H_
#define DMT_NET_MESSAGES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "linalg/matrix.h"
#include "net/frame.h"

namespace dmt {
namespace net {

/// Site -> coordinator handshake, first frame on every channel.
struct HelloMsg {
  uint32_t site = 0;        ///< this channel's site id (0-based)
  uint32_t num_sites = 0;   ///< m, so the coordinator can cross-check
  uint64_t num_windows = 0; ///< synchronization windows the site will run
  std::string protocol;     ///< registered protocol name, e.g. "p1"
};

/// Site -> coordinator: all of window `window`'s messages have been sent.
struct WindowEndMsg {
  uint64_t window = 0;
};

/// Coordinator -> site: broadcast state to apply before the next window
/// (P1: W-hat; MP2: F-hat as of the last broadcast).
struct BroadcastMsg {
  uint64_t window = 0;
  double value = 0.0;
};

/// P1 batch flush: the site's Misra-Gries summary snapshot plus the local
/// weight W_i since the previous flush (Algorithm 4.1 ships "(G_i, W_i)").
struct HHFlushMsg {
  double weight = 0.0;           ///< W_i
  uint32_t k = 0;                ///< summary's counter budget
  double total_weight = 0.0;     ///< summary's processed weight
  double total_decrement = 0.0;  ///< summary's compaction loss
  /// Live counters, (element, weight), in the summary's canonical drain
  /// order (weight desc, element asc — WeightedMisraGries::Items()).
  std::vector<std::pair<uint64_t, double>> counters;
};

/// MP2 scalar total-mass report F_j.
struct MatrixScalarMsg {
  double value = 0.0;
};

/// MP2 shipped direction: the coordinator adds lambda * v v^T to its Gram
/// (i.e. appends sqrt(lambda) v to B).
struct MatrixDirectionMsg {
  double lambda = 0.0;
  std::vector<double> dir;
};

/// Frequent Directions sketch snapshot — the MP1-style batch payload (a
/// whole sketch ships and merges at the coordinator).
struct FdSketchMsg {
  uint32_t ell = 0;
  uint32_t dim = 0;
  double stream_sq_frob = 0.0;
  double total_shrinkage = 0.0;
  linalg::Matrix rows;  ///< current sketch rows (row-major)
};

/// Site -> coordinator: the site's stream is exhausted.
struct SiteDoneMsg {
  uint64_t windows = 0;  ///< windows actually run (sanity cross-check)
};

void EncodeHello(const HelloMsg& m, std::vector<uint8_t>* out);
bool DecodeHello(const uint8_t* payload, size_t n, HelloMsg* out);

void EncodeWindowEnd(const WindowEndMsg& m, std::vector<uint8_t>* out);
bool DecodeWindowEnd(const uint8_t* payload, size_t n, WindowEndMsg* out);

void EncodeBroadcast(const BroadcastMsg& m, std::vector<uint8_t>* out);
bool DecodeBroadcast(const uint8_t* payload, size_t n, BroadcastMsg* out);

void EncodeHHFlush(const HHFlushMsg& m, std::vector<uint8_t>* out);
bool DecodeHHFlush(const uint8_t* payload, size_t n, HHFlushMsg* out);

void EncodeMatrixScalar(const MatrixScalarMsg& m, std::vector<uint8_t>* out);
bool DecodeMatrixScalar(const uint8_t* payload, size_t n,
                        MatrixScalarMsg* out);

void EncodeMatrixDirection(const MatrixDirectionMsg& m,
                           std::vector<uint8_t>* out);
bool DecodeMatrixDirection(const uint8_t* payload, size_t n,
                           MatrixDirectionMsg* out);

void EncodeFdSketch(const FdSketchMsg& m, std::vector<uint8_t>* out);
bool DecodeFdSketch(const uint8_t* payload, size_t n, FdSketchMsg* out);

void EncodeSiteDone(const SiteDoneMsg& m, std::vector<uint8_t>* out);
bool DecodeSiteDone(const uint8_t* payload, size_t n, SiteDoneMsg* out);

}  // namespace net
}  // namespace dmt

#endif  // DMT_NET_MESSAGES_H_
