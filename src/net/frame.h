// Wire frame protocol: the length-prefixed binary envelope every message
// between dmt_site and dmt_coordinator travels in. The full layout and the
// per-message payload encodings are specified in docs/PROTOCOL.md (the
// golden-byte fixtures in tests/net_wire_test.cc pin them).
//
// Frame layout (little-endian, 16-byte header):
//
//   offset  size  field
//        0     4  magic "DMTW"
//        4     1  version (currently 1)
//        5     1  message type (MsgType)
//        6     2  reserved (zero)
//        8     4  payload length in bytes (uint32)
//       12     4  CRC-32 of the payload (IEEE reflected, poly 0xEDB88320)
//       16     …  payload
//
// A reader must reject a wrong magic or version, an unknown type, a
// payload length above kMaxFramePayload, and a CRC mismatch — rejection
// means a decode error surfaced to the caller, never an abort: frames
// arrive from the network and are not trusted.
#ifndef DMT_NET_FRAME_H_
#define DMT_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace dmt {
namespace net {

/// Frame header size in bytes; the payload starts at this offset.
inline constexpr size_t kFrameHeaderBytes = 16;
/// Version written (and required) by this implementation.
inline constexpr uint8_t kFrameVersion = 1;
/// Upper bound on a payload, as a corruption backstop: a flipped length
/// byte must not turn into a multi-gigabyte allocation. Generous next to
/// real payloads (the largest is an FD sketch snapshot, ~2*ell*d doubles).
inline constexpr uint32_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Message vocabulary. Values are wire format — append only, never renumber.
enum class MsgType : uint8_t {
  kHello = 1,            ///< site -> coordinator handshake
  kWindowEnd = 2,        ///< site -> coordinator: window's messages all sent
  kBroadcast = 3,        ///< coordinator -> site: broadcast state for next window
  kHHFlush = 4,          ///< P1 batch: Misra-Gries summary snapshot + W_i
  kMatrixScalar = 5,     ///< MP2 total-mass report F_j
  kMatrixDirection = 6,  ///< MP2 scaled singular direction (lambda, v)
  kFdSketch = 7,         ///< FD sketch snapshot (MP1-style payload)
  kSiteDone = 8,         ///< site -> coordinator: stream exhausted
  kShutdown = 9,         ///< coordinator -> site: tear the channel down
};

/// True when `t` names a defined MsgType.
bool IsKnownMsgType(uint8_t t);

/// CRC-32 (IEEE 802.3 reflected polynomial 0xEDB88320) of `data`.
uint32_t Crc32(const uint8_t* data, size_t n);

/// Appends one complete frame (header + payload) to `out`.
void AppendFrame(MsgType type, const uint8_t* payload, size_t n,
                 std::vector<uint8_t>* out);

/// Decoded frame header.
struct FrameHeader {
  MsgType type = MsgType::kShutdown;
  uint32_t payload_len = 0;
  uint32_t crc = 0;
};

/// Validates the 16 header bytes (magic, version, known type, length
/// bound). Returns false and sets `*error` on any violation.
bool DecodeFrameHeader(const uint8_t* header, FrameHeader* out,
                       std::string* error);

/// Validates a received payload against the header's CRC.
bool CheckFrameCrc(const FrameHeader& header, const uint8_t* payload,
                   std::string* error);

}  // namespace net
}  // namespace dmt

#endif  // DMT_NET_FRAME_H_
