#include "net/remote.h"

#include <algorithm>
#include <utility>

#include "net/messages.h"

namespace dmt {
namespace net {
namespace {

std::string MsgTypeName(MsgType t) {
  return "type " + std::to_string(static_cast<int>(t));
}

}  // namespace

void P1Wire::EncodeWindow(size_t site, FrameBatch* batch) {
  std::vector<uint8_t> payload;
  for (const auto& flush : protocol_->TakePendingFlushes(site)) {
    HHFlushMsg m;
    m.weight = flush.weight;
    m.k = static_cast<uint32_t>(flush.summary.k());
    m.total_weight = flush.summary.total_weight();
    m.total_decrement = flush.summary.total_decrement();
    m.counters = flush.summary.Items();
    payload.clear();
    EncodeHHFlush(m, &payload);
    batch->Add(MsgType::kHHFlush, payload);
  }
}

void P1Wire::ApplyBroadcast(size_t site, double value) {
  protocol_->SetSiteBroadcastWeight(site, value);
}

bool P1Wire::ApplyFrame(size_t site, MsgType type, const uint8_t* payload,
                        size_t n, std::string* error) {
  if (type != MsgType::kHHFlush) {
    *error = "p1: unexpected " + MsgTypeName(type);
    return false;
  }
  HHFlushMsg m;
  if (!DecodeHHFlush(payload, n, &m)) {
    *error = "p1: malformed flush payload";
    return false;
  }
  // The k cross-check keeps a corrupt (or mis-configured) peer from
  // tripping the summary invariants, which are aborts, not errors.
  if (m.k != protocol_->summary_k() ||
      m.counters.size() > 2 * static_cast<size_t>(m.k)) {
    *error = "p1: flush k/counter-count mismatch";
    return false;
  }
  sketch::WeightedMisraGries summary(m.k);
  summary.RestoreState(m.total_weight, m.total_decrement, m.counters);
  protocol_->DeliverFlush(
      site, hh::P1BatchedMG::PendingFlush{std::move(summary), m.weight});
  return true;
}

double P1Wire::BroadcastValue() const { return protocol_->broadcast_weight(); }

void MP2Wire::EncodeWindow(size_t site, FrameBatch* batch) {
  std::vector<uint8_t> payload;
  for (const auto& msg : protocol_->TakePendingMessages(site)) {
    payload.clear();
    if (msg.is_scalar) {
      EncodeMatrixScalar(MatrixScalarMsg{msg.value}, &payload);
      batch->Add(MsgType::kMatrixScalar, payload);
    } else {
      EncodeMatrixDirection(MatrixDirectionMsg{msg.value, msg.dir},
                            &payload);
      batch->Add(MsgType::kMatrixDirection, payload);
    }
  }
}

void MP2Wire::ApplyBroadcast(size_t site, double value) {
  protocol_->SetSiteFest(site, value);
}

bool MP2Wire::ApplyFrame(size_t site, MsgType type, const uint8_t* payload,
                         size_t n, std::string* error) {
  if (type == MsgType::kMatrixScalar) {
    MatrixScalarMsg m;
    if (!DecodeMatrixScalar(payload, n, &m)) {
      *error = "mp2: malformed scalar payload";
      return false;
    }
    protocol_->DeliverMessage(
        site, matrix::MP2SvdThreshold::PendingMsg{true, m.value, {}});
    return true;
  }
  if (type == MsgType::kMatrixDirection) {
    MatrixDirectionMsg m;
    if (!DecodeMatrixDirection(payload, n, &m)) {
      *error = "mp2: malformed direction payload";
      return false;
    }
    // Dimension cross-check before delivery: EnsureDim treats a mismatch
    // as a programming error (abort), but wire input is untrusted.
    if (m.dir.empty() ||
        (protocol_->dim() != 0 && m.dir.size() != protocol_->dim())) {
      *error = "mp2: direction dimension mismatch";
      return false;
    }
    protocol_->DeliverMessage(
        site, matrix::MP2SvdThreshold::PendingMsg{false, m.lambda,
                                                  std::move(m.dir)});
    return true;
  }
  *error = "mp2: unexpected " + MsgTypeName(type);
  return false;
}

double MP2Wire::BroadcastValue() const {
  return protocol_->last_broadcast_fest();
}

std::vector<std::vector<uint32_t>> SiteWindowIndices(
    const std::vector<size_t>& sites, size_t site,
    const std::vector<size_t>& window_ends) {
  std::vector<std::vector<uint32_t>> windows(window_ends.size());
  size_t w = 0;
  for (size_t i = 0; i < sites.size(); ++i) {
    while (w < window_ends.size() && i >= window_ends[w]) ++w;
    if (w == window_ends.size()) break;  // beyond the scheduled stream
    if (sites[i] == site) windows[w].push_back(static_cast<uint32_t>(i));
  }
  return windows;
}

bool RunWireSite(WireAdapter* adapter, size_t site,
                 const std::vector<std::vector<uint32_t>>& windows,
                 const std::function<void(uint32_t)>& update,
                 Connection* conn, std::string* error) {
  {
    HelloMsg hello;
    hello.site = static_cast<uint32_t>(site);
    hello.num_sites = static_cast<uint32_t>(adapter->num_sites());
    hello.num_windows = windows.size();
    hello.protocol = adapter->protocol_name();
    std::vector<uint8_t> payload;
    EncodeHello(hello, &payload);
    if (!SendFrame(conn, MsgType::kHello, payload)) {
      *error = "site: hello send failed";
      return false;
    }
  }

  FrameBatch batch;
  std::vector<uint8_t> payload;
  FrameHeader header;
  for (size_t w = 0; w < windows.size(); ++w) {
    for (uint32_t idx : windows[w]) update(idx);

    // One batched send per window: every queued protocol message plus the
    // window-end marker leave in a single write.
    adapter->EncodeWindow(site, &batch);
    payload.clear();
    EncodeWindowEnd(WindowEndMsg{w}, &payload);
    batch.Add(MsgType::kWindowEnd, payload);
    if (!batch.Flush(conn)) {
      *error = "site: window " + std::to_string(w) + " send failed";
      return false;
    }

    if (!RecvFrame(conn, &header, &payload, error)) return false;
    BroadcastMsg b;
    if (header.type != MsgType::kBroadcast ||
        !DecodeBroadcast(payload.data(), payload.size(), &b) ||
        b.window != w) {
      *error = "site: expected broadcast for window " + std::to_string(w);
      return false;
    }
    adapter->ApplyBroadcast(site, b.value);
  }

  payload.clear();
  EncodeSiteDone(SiteDoneMsg{windows.size()}, &payload);
  if (!SendFrame(conn, MsgType::kSiteDone, payload)) {
    *error = "site: done send failed";
    return false;
  }
  if (!RecvFrame(conn, &header, &payload, error)) return false;
  if (header.type != MsgType::kShutdown) {
    *error = "site: expected shutdown, got " + MsgTypeName(header.type);
    return false;
  }
  return true;
}

bool RunWireCoordinator(WireAdapter* adapter,
                        std::vector<std::unique_ptr<Connection>>* channels,
                        size_t num_windows, WireCoordinatorReport* report,
                        std::string* error,
                        const std::function<void(size_t)>& on_window) {
  const size_t m = adapter->num_sites();
  if (channels->size() != m) {
    *error = "coordinator: got " + std::to_string(channels->size()) +
             " channels for " + std::to_string(m) + " sites";
    return false;
  }

  // Handshake: channels arrive in accept order; each peer announces its
  // site id, and the drain below needs them indexed by that id.
  std::vector<std::unique_ptr<Connection>> by_site(m);
  FrameHeader header;
  std::vector<uint8_t> payload;
  for (auto& conn : *channels) {
    if (!RecvFrame(conn.get(), &header, &payload, error)) return false;
    HelloMsg hello;
    if (header.type != MsgType::kHello ||
        !DecodeHello(payload.data(), payload.size(), &hello)) {
      *error = "coordinator: bad handshake frame";
      return false;
    }
    if (hello.protocol != adapter->protocol_name()) {
      *error = "coordinator: protocol mismatch (peer runs '" +
               hello.protocol + "', expected '" + adapter->protocol_name() +
               "')";
      return false;
    }
    if (hello.num_sites != m || hello.num_windows != num_windows) {
      *error = "coordinator: schedule mismatch in hello from site " +
               std::to_string(hello.site);
      return false;
    }
    if (hello.site >= m || by_site[hello.site] != nullptr) {
      *error = "coordinator: duplicate or out-of-range site id " +
               std::to_string(hello.site);
      return false;
    }
    by_site[hello.site] = std::move(conn);
  }
  *channels = std::move(by_site);

  report->bytes_from_site.assign(m, 0);
  report->bytes_to_site.assign(m, 0);

  for (size_t w = 0; w < num_windows; ++w) {
    // Ascending-site drain: the oracle's Synchronize() order.
    for (size_t s = 0; s < m; ++s) {
      Connection* conn = (*channels)[s].get();
      while (true) {
        if (!RecvFrame(conn, &header, &payload, error)) return false;
        ++report->frames_received;
        if (header.type == MsgType::kWindowEnd) {
          WindowEndMsg end;
          if (!DecodeWindowEnd(payload.data(), payload.size(), &end) ||
              end.window != w) {
            *error = "coordinator: window marker mismatch from site " +
                     std::to_string(s);
            return false;
          }
          break;
        }
        if (!adapter->ApplyFrame(s, header.type, payload.data(),
                                 payload.size(), error)) {
          *error = "coordinator: site " + std::to_string(s) + ": " + *error;
          return false;
        }
      }
    }

    // Post-drain, pre-broadcast: the coordinator protocol is between
    // rounds — the snapshot-export window the serving layer publishes in.
    if (on_window) on_window(w + 1);

    BroadcastMsg b;
    b.window = w;
    b.value = adapter->BroadcastValue();
    payload.clear();
    EncodeBroadcast(b, &payload);
    for (size_t s = 0; s < m; ++s) {
      if (!SendFrame((*channels)[s].get(), MsgType::kBroadcast, payload)) {
        *error = "coordinator: broadcast to site " + std::to_string(s) +
                 " failed";
        return false;
      }
    }
  }

  for (size_t s = 0; s < m; ++s) {
    if (!RecvFrame((*channels)[s].get(), &header, &payload, error)) {
      return false;
    }
    ++report->frames_received;
    SiteDoneMsg done;
    if (header.type != MsgType::kSiteDone ||
        !DecodeSiteDone(payload.data(), payload.size(), &done) ||
        done.windows != num_windows) {
      *error = "coordinator: bad done frame from site " + std::to_string(s);
      return false;
    }
  }
  payload.clear();
  for (size_t s = 0; s < m; ++s) {
    if (!SendFrame((*channels)[s].get(), MsgType::kShutdown, payload)) {
      *error = "coordinator: shutdown to site " + std::to_string(s) +
               " failed";
      return false;
    }
  }
  for (size_t s = 0; s < m; ++s) {
    report->bytes_from_site[s] = (*channels)[s]->bytes_received();
    report->bytes_to_site[s] = (*channels)[s]->bytes_sent();
  }
  return true;
}

}  // namespace net
}  // namespace dmt
