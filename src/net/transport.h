// Blocking byte transports behind one small interface, plus framed I/O
// helpers on top.
//
// A Connection is one bidirectional channel between a site and the
// coordinator. Implementations are blocking and count every byte that
// crosses the channel (header + payload), which is where the
// "bytes on the wire" column next to the paper's message metric comes
// from. Two implementations:
//
//  * TcpConnection — a loopback-or-real-host TCP socket (dmt_site /
//    dmt_coordinator, the transport-equivalence tests).
//  * local pair   — an in-memory queue pair (MakeLocalPair), the same
//    framed semantics with no sockets; unit-tests the runner logic and
//    demonstrates that nothing above this interface knows about TCP.
//
// Threading: a Connection may be used by one sender thread and one
// receiver thread concurrently (the local pair locks internally; a TCP
// socket already allows full-duplex), but each direction by only one
// thread at a time.
#ifndef DMT_NET_TRANSPORT_H_
#define DMT_NET_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "net/frame.h"
#include "util/contracts.h"

namespace dmt {
namespace net {

/// One blocking bidirectional byte channel with per-direction accounting.
class Connection {
 public:
  virtual ~Connection() = default;

  /// Sends exactly `n` bytes; false on a broken channel.
  virtual bool Send(const uint8_t* data, size_t n) = 0;

  /// Receives exactly `n` bytes, blocking until available; false when the
  /// peer closed or the channel broke before `n` bytes arrived.
  virtual bool Recv(uint8_t* data, size_t n) = 0;

  /// Closes the channel (idempotent; unblocks a peer's Recv with false).
  virtual void Close() = 0;

  /// Bytes successfully sent / received so far on this endpoint.
  uint64_t bytes_sent() const {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_received() const {
    return bytes_received_.load(std::memory_order_relaxed);
  }

 protected:
  void CountSent(size_t n) {
    bytes_sent_.fetch_add(n, std::memory_order_relaxed);
  }
  void CountReceived(size_t n) {
    bytes_received_.fetch_add(n, std::memory_order_relaxed);
  }

 private:
  // Pure statistics (the "bytes on the wire" report column): relaxed per
  // the DMT_ATOMIC_COUNTER contract — they order nothing and are read
  // after the exchange completes (or where approximate values suffice).
  DMT_ATOMIC_COUNTER std::atomic<uint64_t> bytes_sent_{0};
  DMT_ATOMIC_COUNTER std::atomic<uint64_t> bytes_received_{0};
};

/// Accumulates frames so one window's worth of messages goes out in a
/// single Send — the batched-send path of the site loop (one syscall per
/// window instead of one per protocol message).
class FrameBatch {
 public:
  /// Appends one frame wrapping `payload`.
  void Add(MsgType type, const std::vector<uint8_t>& payload) {
    AppendFrame(type, payload.data(), payload.size(), &buf_);
    ++frames_;
  }

  /// Writes every buffered frame in one Send and clears the batch.
  bool Flush(Connection* conn) {
    if (!buf_.empty() && !conn->Send(buf_.data(), buf_.size())) return false;
    buf_.clear();
    frames_ = 0;
    return true;
  }

  size_t frames() const { return frames_; }
  size_t bytes() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
  size_t frames_ = 0;
};

/// Sends one frame immediately (header + payload in one Send).
bool SendFrame(Connection* conn, MsgType type,
               const std::vector<uint8_t>& payload);

/// Receives one frame: header, validation, payload, CRC check. Returns
/// false with `*error` set on a closed channel or a malformed frame.
bool RecvFrame(Connection* conn, FrameHeader* header,
               std::vector<uint8_t>* payload, std::string* error);

/// Listening socket bound to 127.0.0.1 (or all interfaces with
/// `any_interface`); `port` 0 picks an ephemeral port, readable from
/// port() afterwards.
class TcpListener {
 public:
  ~TcpListener();

  /// Binds and listens. Returns nullptr with `*error` set on failure.
  static std::unique_ptr<TcpListener> Listen(uint16_t port,
                                             std::string* error,
                                             bool any_interface = false);

  /// Accepts one connection (blocking). nullptr with `*error` on failure.
  std::unique_ptr<Connection> Accept(std::string* error);

  /// The bound port (the ephemeral one when constructed with port 0).
  uint16_t port() const { return port_; }

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  int fd_;
  uint16_t port_;
};

/// Connects to host:port, retrying `retries` times with a short pause so
/// sites can start before (or while) the coordinator binds its port.
/// nullptr with `*error` set when every attempt failed.
std::unique_ptr<Connection> TcpConnect(const std::string& host, uint16_t port,
                                       std::string* error, int retries = 100);

/// An in-memory connected pair: bytes sent on one endpoint arrive at the
/// other, with the same blocking semantics as a socket.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
MakeLocalPair();

}  // namespace net
}  // namespace dmt

#endif  // DMT_NET_TRANSPORT_H_
