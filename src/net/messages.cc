#include "net/messages.h"

#include "util/codec.h"
#include "util/contracts.h"

namespace dmt {
namespace net {
namespace {

// Guard for decoded element counts: a count field must be consistent with
// the bytes actually present, or a corrupt count would drive a huge
// allocation before the reader runs dry.
bool FitsRemaining(const ByteReader& r, uint64_t count, size_t elem_bytes) {
  return count <= r.remaining() / elem_bytes;
}

}  // namespace

void EncodeHello(const HelloMsg& m, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<uint32_t>(m.site);
  w.Put<uint32_t>(m.num_sites);
  w.Put<uint64_t>(m.num_windows);
  w.Put<uint8_t>(static_cast<uint8_t>(m.protocol.size()));
  w.PutBytes(m.protocol.data(), m.protocol.size());
}

DMT_UNTRUSTED_INPUT
bool DecodeHello(const uint8_t* payload, size_t n, HelloMsg* out) {
  ByteReader r(payload, n);
  out->site = r.Get<uint32_t>();
  out->num_sites = r.Get<uint32_t>();
  out->num_windows = r.Get<uint64_t>();
  const uint8_t name_len = r.Get<uint8_t>();
  if (!r.ok() || r.remaining() < name_len) return false;
  out->protocol.resize(name_len);
  r.GetBytes(out->protocol.data(), name_len);
  return r.exhausted();
}

void EncodeWindowEnd(const WindowEndMsg& m, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<uint64_t>(m.window);
}

DMT_UNTRUSTED_INPUT
bool DecodeWindowEnd(const uint8_t* payload, size_t n, WindowEndMsg* out) {
  ByteReader r(payload, n);
  out->window = r.Get<uint64_t>();
  return r.exhausted();
}

void EncodeBroadcast(const BroadcastMsg& m, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<uint64_t>(m.window);
  w.Put<double>(m.value);
}

DMT_UNTRUSTED_INPUT
bool DecodeBroadcast(const uint8_t* payload, size_t n, BroadcastMsg* out) {
  ByteReader r(payload, n);
  out->window = r.Get<uint64_t>();
  out->value = r.Get<double>();
  return r.exhausted();
}

void EncodeHHFlush(const HHFlushMsg& m, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<double>(m.weight);
  w.Put<uint32_t>(m.k);
  w.Put<double>(m.total_weight);
  w.Put<double>(m.total_decrement);
  w.Put<uint32_t>(static_cast<uint32_t>(m.counters.size()));
  for (const auto& [element, weight] : m.counters) {
    w.Put<uint64_t>(element);
    w.Put<double>(weight);
  }
}

DMT_UNTRUSTED_INPUT
bool DecodeHHFlush(const uint8_t* payload, size_t n, HHFlushMsg* out) {
  ByteReader r(payload, n);
  out->weight = r.Get<double>();
  out->k = r.Get<uint32_t>();
  out->total_weight = r.Get<double>();
  out->total_decrement = r.Get<double>();
  const uint32_t count = r.Get<uint32_t>();
  if (!r.ok() || !FitsRemaining(r, count, 16)) return false;
  out->counters.resize(count);
  for (uint32_t i = 0; i < count; ++i) {
    out->counters[i].first = r.Get<uint64_t>();
    out->counters[i].second = r.Get<double>();
  }
  return r.exhausted();
}

void EncodeMatrixScalar(const MatrixScalarMsg& m, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<double>(m.value);
}

DMT_UNTRUSTED_INPUT
bool DecodeMatrixScalar(const uint8_t* payload, size_t n,
                        MatrixScalarMsg* out) {
  ByteReader r(payload, n);
  out->value = r.Get<double>();
  return r.exhausted();
}

void EncodeMatrixDirection(const MatrixDirectionMsg& m,
                           std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<double>(m.lambda);
  w.Put<uint32_t>(static_cast<uint32_t>(m.dir.size()));
  w.PutBytes(m.dir.data(), m.dir.size() * sizeof(double));
}

DMT_UNTRUSTED_INPUT
bool DecodeMatrixDirection(const uint8_t* payload, size_t n,
                           MatrixDirectionMsg* out) {
  ByteReader r(payload, n);
  out->lambda = r.Get<double>();
  const uint32_t dim = r.Get<uint32_t>();
  if (!r.ok() || !FitsRemaining(r, dim, sizeof(double))) return false;
  out->dir.resize(dim);
  r.GetBytes(out->dir.data(), dim * sizeof(double));
  return r.exhausted();
}

void EncodeFdSketch(const FdSketchMsg& m, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<uint32_t>(m.ell);
  w.Put<uint32_t>(m.dim);
  w.Put<double>(m.stream_sq_frob);
  w.Put<double>(m.total_shrinkage);
  w.Put<uint64_t>(static_cast<uint64_t>(m.rows.rows()));
  w.Put<uint32_t>(static_cast<uint32_t>(m.rows.cols()));
  if (!m.rows.empty()) {
    w.PutBytes(m.rows.Row(0), m.rows.rows() * m.rows.cols() * sizeof(double));
  }
}

DMT_UNTRUSTED_INPUT
bool DecodeFdSketch(const uint8_t* payload, size_t n, FdSketchMsg* out) {
  ByteReader r(payload, n);
  out->ell = r.Get<uint32_t>();
  out->dim = r.Get<uint32_t>();
  out->stream_sq_frob = r.Get<double>();
  out->total_shrinkage = r.Get<double>();
  const uint64_t rows = r.Get<uint64_t>();
  const uint32_t cols = r.Get<uint32_t>();
  if (!r.ok() || cols == 0 ||
      rows > r.remaining() / (cols * sizeof(double))) {
    // A rows == 0 snapshot still carries cols so shape survives; cols == 0
    // with rows > 0 is malformed. Accept the degenerate empty sketch.
    if (r.ok() && rows == 0 && cols == 0 && r.exhausted()) {
      out->rows = linalg::Matrix();
      return true;
    }
    return false;
  }
  out->rows = linalg::Matrix(static_cast<size_t>(rows), cols);
  if (rows != 0) {
    r.GetBytes(out->rows.Row(0),
               static_cast<size_t>(rows) * cols * sizeof(double));
  }
  return r.exhausted();
}

void EncodeSiteDone(const SiteDoneMsg& m, std::vector<uint8_t>* out) {
  ByteWriter w(out);
  w.Put<uint64_t>(m.windows);
}

DMT_UNTRUSTED_INPUT
bool DecodeSiteDone(const uint8_t* payload, size_t n, SiteDoneMsg* out) {
  ByteReader r(payload, n);
  out->windows = r.Get<uint64_t>();
  return r.exhausted();
}

}  // namespace net
}  // namespace dmt
