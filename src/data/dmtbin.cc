#include "data/dmtbin.h"

#include <algorithm>
#include <cstring>

#include "util/check.h"

namespace dmt {
namespace data {
namespace {

constexpr char kMagic[8] = {'D', 'M', 'T', 'B', 'I', 'N', '\0', 0x01};

// Fixed-width little-endian field codecs. The repo only targets
// little-endian hosts (x86-64 / AArch64), so these are raw memcpys; the
// explicit width keeps the on-disk layout independent of host types.
template <typename T>
void PutField(char* header, size_t offset, T value) {
  std::memcpy(header + offset, &value, sizeof(T));
}

template <typename T>
T GetField(const char* header, size_t offset) {
  T value;
  std::memcpy(&value, header + offset, sizeof(T));
  return value;
}

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool WriteDmtbin(const std::string& path, const linalg::Matrix& rows,
                 std::string* error) {
  if (rows.empty()) {
    SetError(error, "dmtbin: refusing to write an empty matrix to " + path);
    return false;
  }
  double beta = 0.0;
  double frob_sq = 0.0;
  for (size_t i = 0; i < rows.rows(); ++i) {
    const double* r = rows.Row(i);
    double sq = 0.0;
    for (size_t j = 0; j < rows.cols(); ++j) sq += r[j] * r[j];
    beta = std::max(beta, sq);
    frob_sq += sq;
  }

  char header[kDmtbinHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutField<uint32_t>(header, 8, kDmtbinVersion);
  PutField<uint32_t>(header, 12, static_cast<uint32_t>(rows.cols()));
  PutField<uint64_t>(header, 16, static_cast<uint64_t>(rows.rows()));
  PutField<double>(header, 24, beta);
  PutField<double>(header, 32, frob_sq);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    SetError(error, "dmtbin: cannot open " + path + " for writing");
    return false;
  }
  out.write(header, sizeof(header));
  // Matrix rows are contiguous row-major, so the payload is one write.
  out.write(reinterpret_cast<const char*>(rows.Row(0)),
            static_cast<std::streamsize>(rows.rows() * rows.cols() *
                                         sizeof(double)));
  out.flush();
  if (!out.good()) {
    SetError(error, "dmtbin: short write to " + path);
    return false;
  }
  return true;
}

bool ReadDmtbinInfo(const std::string& path, DmtbinInfo* info,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    SetError(error, "dmtbin: cannot open " + path);
    return false;
  }
  char header[kDmtbinHeaderBytes];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    SetError(error, "dmtbin: " + path + " is shorter than the header");
    return false;
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "dmtbin: " + path + " has a bad magic (not a .dmtbin)");
    return false;
  }
  DmtbinInfo parsed;
  parsed.version = GetField<uint32_t>(header, 8);
  parsed.dim = GetField<uint32_t>(header, 12);
  parsed.rows = GetField<uint64_t>(header, 16);
  parsed.beta = GetField<double>(header, 24);
  parsed.frob_sq = GetField<double>(header, 32);
  if (parsed.version != kDmtbinVersion) {
    SetError(error, "dmtbin: " + path + " has unsupported version " +
                        std::to_string(parsed.version));
    return false;
  }
  if (parsed.dim == 0) {
    SetError(error, "dmtbin: " + path + " declares dim == 0");
    return false;
  }
  in.seekg(0, std::ios::end);
  const auto size = static_cast<uint64_t>(in.tellg());
  const uint64_t expected =
      kDmtbinHeaderBytes + parsed.rows * parsed.dim * sizeof(double);
  if (size != expected) {
    SetError(error, "dmtbin: " + path + " is truncated or corrupt (" +
                        std::to_string(size) + " bytes, header implies " +
                        std::to_string(expected) + ")");
    return false;
  }
  if (info != nullptr) *info = parsed;
  return true;
}

DmtbinSource::DmtbinSource(const std::string& path, size_t max_rows,
                           std::string* error) {
  DmtbinInfo h;
  if (!ReadDmtbinInfo(path, &h, error)) return;
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    SetError(error, "dmtbin: cannot open " + path);
    return;
  }
  in_.seekg(kDmtbinHeaderBytes);
  info_.origin = "dmtbin:" + path;
  info_.dim = h.dim;
  info_.rows = max_rows == 0
                   ? h.rows
                   : std::min<uint64_t>(h.rows, max_rows);
  info_.beta = h.beta;
  ok_ = true;
}

size_t DmtbinSource::NextChunk(size_t max_rows, linalg::Matrix* out) {
  DMT_CHECK_GT(max_rows, 0u);
  if (!ok_ || served_ >= info_.rows) return 0;
  const size_t take = static_cast<size_t>(
      std::min<uint64_t>(max_rows, info_.rows - served_));
  // One bulk read per chunk (the cache exists to make repeat runs fast).
  row_buf_.resize(take * info_.dim);
  in_.read(reinterpret_cast<char*>(row_buf_.data()),
           static_cast<std::streamsize>(row_buf_.size() * sizeof(double)));
  // The constructor verified the byte size, so a short read here is an
  // I/O failure, not expected end-of-data.
  DMT_CHECK_EQ(in_.gcount(), static_cast<std::streamsize>(row_buf_.size() *
                                                          sizeof(double)));
  out->AppendRows(row_buf_.data(), take, info_.dim);
  served_ += take;
  return take;
}

void DmtbinSource::Reset() {
  if (!ok_) return;
  in_.clear();
  in_.seekg(kDmtbinHeaderBytes);
  served_ = 0;
}

}  // namespace data
}  // namespace dmt
