#include "data/dmtbin.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/check.h"
#include "util/codec.h"

namespace dmt {
namespace data {
namespace {

constexpr char kMagic[8] = {'D', 'M', 'T', 'B', 'I', 'N', '\0', 0x01};

// Field access uses the shared fixed-width little-endian codecs
// (util/codec.h) — the same primitives the wire frame format builds on.

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

bool WriteDmtbin(const std::string& path, const linalg::Matrix& rows,
                 std::string* error) {
  if (rows.empty()) {
    SetError(error, "dmtbin: refusing to write an empty matrix to " + path);
    return false;
  }
  double beta = 0.0;
  double frob_sq = 0.0;
  for (size_t i = 0; i < rows.rows(); ++i) {
    const double* r = rows.Row(i);
    double sq = 0.0;
    for (size_t j = 0; j < rows.cols(); ++j) sq += r[j] * r[j];
    beta = std::max(beta, sq);
    frob_sq += sq;
  }

  char header[kDmtbinHeaderBytes] = {};
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutLE<uint32_t>(header, 8, kDmtbinVersion);
  PutLE<uint32_t>(header, 12, static_cast<uint32_t>(rows.cols()));
  PutLE<uint64_t>(header, 16, static_cast<uint64_t>(rows.rows()));
  PutLE<double>(header, 24, beta);
  PutLE<double>(header, 32, frob_sq);

  // Write to a temp file in the same directory, then rename into place:
  // the rename is atomic on POSIX, so a failed or interrupted write never
  // leaves a partial cache at the final path (which a later run would
  // reject — or a concurrent OpenDataset() would stream half-written).
  // The pid suffix keeps two concurrent writers off each other's temp.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    SetError(error, "dmtbin: cannot open " + tmp + " for writing");
    return false;
  }
  out.write(header, sizeof(header));
  // Matrix rows are contiguous row-major, so the payload is one write.
  out.write(reinterpret_cast<const char*>(rows.Row(0)),
            static_cast<std::streamsize>(rows.rows() * rows.cols() *
                                         sizeof(double)));
  out.flush();
  const bool wrote = out.good();
  out.close();
  if (!wrote) {
    SetError(error, "dmtbin: short write to " + tmp);
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    SetError(error, "dmtbin: cannot rename " + tmp + " to " + path);
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool ReadDmtbinInfo(const std::string& path, DmtbinInfo* info,
                    std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    SetError(error, "dmtbin: cannot open " + path);
    return false;
  }
  char header[kDmtbinHeaderBytes];
  in.read(header, sizeof(header));
  if (in.gcount() != static_cast<std::streamsize>(sizeof(header))) {
    SetError(error, "dmtbin: " + path + " is shorter than the header");
    return false;
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    SetError(error, "dmtbin: " + path + " has a bad magic (not a .dmtbin)");
    return false;
  }
  DmtbinInfo parsed;
  parsed.version = GetLE<uint32_t>(header, 8);
  parsed.dim = GetLE<uint32_t>(header, 12);
  parsed.rows = GetLE<uint64_t>(header, 16);
  parsed.beta = GetLE<double>(header, 24);
  parsed.frob_sq = GetLE<double>(header, 32);
  if (parsed.version != kDmtbinVersion) {
    SetError(error, "dmtbin: " + path + " has unsupported version " +
                        std::to_string(parsed.version));
    return false;
  }
  if (parsed.dim == 0) {
    SetError(error, "dmtbin: " + path + " declares dim == 0");
    return false;
  }
  in.seekg(0, std::ios::end);
  const auto size = static_cast<uint64_t>(in.tellg());
  const uint64_t expected =
      kDmtbinHeaderBytes + parsed.rows * parsed.dim * sizeof(double);
  if (size != expected) {
    SetError(error, "dmtbin: " + path + " is truncated or corrupt (" +
                        std::to_string(size) + " bytes, header implies " +
                        std::to_string(expected) + ")");
    return false;
  }
  if (info != nullptr) *info = parsed;
  return true;
}

DmtbinSource::DmtbinSource(const std::string& path, size_t max_rows,
                           std::string* error) {
  DmtbinInfo h;
  if (!ReadDmtbinInfo(path, &h, error)) return;
  in_.open(path, std::ios::binary);
  if (!in_.is_open()) {
    SetError(error, "dmtbin: cannot open " + path);
    return;
  }
  in_.seekg(kDmtbinHeaderBytes);
  info_.origin = "dmtbin:" + path;
  info_.dim = h.dim;
  info_.rows = max_rows == 0
                   ? h.rows
                   : std::min<uint64_t>(h.rows, max_rows);
  info_.beta = h.beta;
  ok_ = true;
}

size_t DmtbinSource::NextChunk(size_t max_rows, linalg::Matrix* out) {
  DMT_CHECK_GT(max_rows, 0u);
  if (!ok_ || !read_error_.empty() || served_ >= info_.rows) return 0;
  const size_t take = static_cast<size_t>(
      std::min<uint64_t>(max_rows, info_.rows - served_));
  // One bulk read per chunk (the cache exists to make repeat runs fast).
  row_buf_.resize(take * info_.dim);
  in_.read(reinterpret_cast<char*>(row_buf_.data()),
           static_cast<std::streamsize>(row_buf_.size() * sizeof(double)));
  if (in_.gcount() !=
      static_cast<std::streamsize>(row_buf_.size() * sizeof(double))) {
    // The constructor verified the byte size, so a short read means the
    // file shrank or failed underneath us. Latch the error and serve
    // nothing further instead of aborting the process mid-run; callers
    // distinguish this from clean exhaustion via read_error().
    read_error_ = "dmtbin: short read at row " + std::to_string(served_) +
                  " (" + info_.origin + " changed or failed mid-stream)";
    return 0;
  }
  out->AppendRows(row_buf_.data(), take, info_.dim);
  served_ += take;
  return take;
}

void DmtbinSource::Reset() {
  if (!ok_) return;
  in_.clear();
  in_.seekg(kDmtbinHeaderBytes);
  served_ = 0;
  read_error_.clear();
}

}  // namespace data
}  // namespace dmt
