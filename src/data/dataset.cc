#include "data/dataset.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <utility>

#include "data/csv.h"
#include "data/dmtbin.h"
#include "util/check.h"
#include "util/env.h"

namespace dmt {
namespace data {
namespace {

namespace fs = std::filesystem;

// Paper workload sizes (Section 6): the default row counts of the
// synthetic stand-ins, so `--dataset synthetic` and a real-data run cover
// the same stream length.
constexpr uint64_t kPamapPaperRows = 629250;
constexpr uint64_t kMsdPaperRows = 300000;

void SetError(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

// Scales every row by one global factor so the max squared row norm is
// exactly `target_beta` (> 0), after dropping all-zero rows (they carry
// no covariance mass and would break weight-proportional sampling).
// Returns the number of dropped rows.
size_t NormalizeRows(linalg::Matrix* rows, double target_beta, double* beta) {
  size_t kept = 0;
  size_t dropped = 0;
  double max_sq = 0.0;
  for (size_t i = 0; i < rows->rows(); ++i) {
    const double* r = rows->Row(i);
    double sq = 0.0;
    for (size_t j = 0; j < rows->cols(); ++j) sq += r[j] * r[j];
    if (sq == 0.0) {
      ++dropped;
      continue;
    }
    max_sq = std::max(max_sq, sq);
    if (kept != i) {
      std::memcpy(rows->Row(kept), r, rows->cols() * sizeof(double));
    }
    ++kept;
  }
  rows->ResizeRows(kept);
  if (kept == 0 || max_sq == 0.0) {
    *beta = 0.0;
    return dropped;
  }
  if (target_beta > 0.0 && max_sq != target_beta) {
    const double scale = std::sqrt(target_beta / max_sq);
    for (size_t i = 0; i < rows->rows(); ++i) {
      double* r = rows->Row(i);
      for (size_t j = 0; j < rows->cols(); ++j) r[j] *= scale;
    }
    *beta = target_beta;
  } else {
    *beta = max_sq;
  }
  return dropped;
}

}  // namespace

// ---------------------------------------------------------------------
// DatasetSource.
// ---------------------------------------------------------------------

linalg::Matrix DatasetSource::Take(size_t n) {
  // n == 0 means "everything remaining", which needs a finite source.
  if (n == 0) DMT_CHECK_GT(info().rows, 0u);
  constexpr size_t kChunk = 8192;
  linalg::Matrix out;
  size_t remaining = n == 0 ? static_cast<size_t>(-1) : n;
  while (remaining > 0) {
    const size_t got = NextChunk(std::min(remaining, kChunk), &out);
    if (got == 0) break;
    remaining -= got;
  }
  return out;
}

// ---------------------------------------------------------------------
// SyntheticSource.
// ---------------------------------------------------------------------

SyntheticSource::SyntheticSource(const SyntheticMatrixConfig& config,
                                 uint64_t total_rows, std::string name)
    : config_(config),
      gen_(std::make_unique<SyntheticMatrixGenerator>(config)) {
  info_.name = std::move(name);
  info_.origin = "synthetic";
  info_.dim = config_.dim;
  info_.rows = total_rows;
  info_.beta = config_.beta;
}

size_t SyntheticSource::NextChunk(size_t max_rows, linalg::Matrix* out) {
  DMT_CHECK_GT(max_rows, 0u);
  size_t limit = max_rows;
  if (info_.rows != 0) {
    if (served_ >= info_.rows) return 0;
    limit = static_cast<size_t>(
        std::min<uint64_t>(max_rows, info_.rows - served_));
  }
  for (size_t i = 0; i < limit; ++i) {
    const std::vector<double> row = gen_->Next();
    out->AppendRow(row.data(), row.size());
  }
  served_ += limit;
  return limit;
}

void SyntheticSource::Reset() {
  gen_ = std::make_unique<SyntheticMatrixGenerator>(config_);
  served_ = 0;
}

// ---------------------------------------------------------------------
// MaterializedSource.
// ---------------------------------------------------------------------

MaterializedSource::MaterializedSource(DatasetInfo info, linalg::Matrix rows) {
  SetData(std::move(info), std::move(rows));
}

void MaterializedSource::SetData(DatasetInfo info, linalg::Matrix rows) {
  info_ = std::move(info);
  rows_ = std::move(rows);
  if (info_.rows == 0 || info_.rows > rows_.rows()) {
    info_.rows = rows_.rows();
  }
  info_.dim = rows_.cols();
  next_ = 0;
}

size_t MaterializedSource::NextChunk(size_t max_rows, linalg::Matrix* out) {
  DMT_CHECK_GT(max_rows, 0u);
  const size_t available = static_cast<size_t>(info_.rows);
  if (next_ >= available) return 0;
  const size_t take = std::min(max_rows, available - next_);
  // Backing rows are contiguous row-major: one bulk append.
  out->AppendRows(rows_.Row(next_), take, rows_.cols());
  next_ += take;
  return take;
}

// ---------------------------------------------------------------------
// PAMAP loader.
// ---------------------------------------------------------------------

PamapSource::PamapSource(const std::vector<std::string>& files,
                         const RealDatasetOptions& options,
                         std::string* error) {
  if (files.empty()) {
    SetError(error, "pamap: no input files");
    return;
  }
  CsvParseOptions parse;
  parse.whitespace_delimited = true;
  parse.missing_policy = CsvParseOptions::MissingPolicy::kImpute;
  parse.impute_value = 0.0;

  linalg::Matrix rows;
  // Column selection is decided once, from the raw width of the first
  // parsed row, and held fixed across all files (see the header contract).
  std::vector<size_t> keep;
  size_t expected_raw = 0;
  std::string bad_layout;
  const auto on_row = [&](const std::vector<double>& raw) {
    if (expected_raw == 0) {
      expected_raw = raw.size();
      if (raw.size() == kDim) {
        for (size_t c = 0; c < kDim; ++c) keep.push_back(c);
      } else if (raw.size() == 54) {
        // PAMAP2 protocol layout: timestamp, activityID, heart rate, then
        // 51 IMU columns — drop the three metadata columns, keep 44.
        for (size_t c = 3; c < 3 + kDim; ++c) keep.push_back(c);
      } else if (raw.size() >= kDim + 1) {
        // Original PAMAP layout: timestamp + sensor columns.
        for (size_t c = 1; c < 1 + kDim; ++c) keep.push_back(c);
      } else {
        bad_layout = "pamap: unrecognized layout (" +
                     std::to_string(raw.size()) + " columns, need >= " +
                     std::to_string(kDim) + ")";
        return;
      }
    }
    if (!bad_layout.empty() || raw.size() != expected_raw) return;
    double row[kDim];
    for (size_t c = 0; c < kDim; ++c) row[c] = raw[keep[c]];
    rows.AppendRow(row, kDim);
  };

  std::string first_err;
  for (const std::string& file : files) {
    std::string file_err;
    ForEachCsvRow(file, parse, on_row, &file_err);
    if (!file_err.empty() && first_err.empty()) first_err = file_err;
    if (!bad_layout.empty()) {
      SetError(error, bad_layout);
      return;
    }
  }
  if (rows.rows() == 0) {
    SetError(error, first_err.empty()
                        ? "pamap: no parseable rows in " + files[0]
                        : first_err);
    return;
  }

  DatasetInfo info;
  info.name = "pamap";
  info.origin = "csv:" + files[0] +
                (files.size() > 1
                     ? " (+" + std::to_string(files.size() - 1) + " more)"
                     : "");
  NormalizeRows(&rows, options.target_beta, &info.beta);
  info.rows = options.max_rows;
  SetData(std::move(info), std::move(rows));
}

// ---------------------------------------------------------------------
// MSD loader.
// ---------------------------------------------------------------------

MsdSource::MsdSource(const std::string& file,
                     const RealDatasetOptions& options, std::string* error) {
  CsvParseOptions parse;
  parse.delimiter = ',';
  parse.missing_policy = CsvParseOptions::MissingPolicy::kSkipRow;

  linalg::Matrix rows;
  size_t expected_raw = 0;
  std::string bad_layout;
  const auto on_row = [&](const std::vector<double>& raw) {
    if (expected_raw == 0) {
      expected_raw = raw.size();
      if (raw.size() != kDim && raw.size() != kDim + 1) {
        bad_layout = "msd: unrecognized layout (" +
                     std::to_string(raw.size()) + " columns, expected " +
                     std::to_string(kDim + 1) + " with the year label or " +
                     std::to_string(kDim) + " without)";
        return;
      }
    }
    if (!bad_layout.empty() || raw.size() != expected_raw) return;
    // Column 0 is the year label in the published file; audio features
    // are the trailing 90 columns either way.
    const size_t offset = expected_raw - kDim;
    rows.AppendRow(raw.data() + offset, kDim);
  };

  std::string file_err;
  ForEachCsvRow(file, parse, on_row, &file_err);
  if (!bad_layout.empty()) {
    SetError(error, bad_layout);
    return;
  }
  if (rows.rows() == 0) {
    SetError(error, file_err.empty() ? "msd: no parseable rows in " + file
                                     : file_err);
    return;
  }

  DatasetInfo info;
  info.name = "msd";
  info.origin = "csv:" + file;
  NormalizeRows(&rows, options.target_beta, &info.beta);
  info.rows = options.max_rows;
  SetData(std::move(info), std::move(rows));
}

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

namespace {

std::unique_ptr<DatasetSource> MakeSynthetic(const DatasetSpec& spec,
                                             bool msd_like,
                                             const std::string& name,
                                             bool fallback) {
  const SyntheticMatrixConfig config =
      msd_like ? SyntheticMatrixGenerator::MsdLike(spec.seed)
               : SyntheticMatrixGenerator::PamapLike(spec.seed);
  const uint64_t paper_rows = msd_like ? kMsdPaperRows : kPamapPaperRows;
  auto src = std::make_unique<SyntheticSource>(
      config, spec.max_rows != 0 ? spec.max_rows : paper_rows, name);
  if (fallback) src->MarkAsFallback();
  return src;
}

// Raw-file layouts accepted under <data_dir>, tried in order.
std::vector<std::string> ResolvePamapFiles(const std::string& data_dir) {
  const fs::path dir(data_dir);
  for (const fs::path& sub : {dir / "pamap", dir / "PAMAP2_Dataset" / "Protocol"}) {
    std::error_code ec;
    if (!fs::is_directory(sub, ec)) continue;
    std::vector<std::string> files;
    for (const auto& entry : fs::directory_iterator(sub, ec)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".dat" || ext == ".csv" || ext == ".txt") {
        files.push_back(entry.path().string());
      }
    }
    if (!files.empty()) {
      std::sort(files.begin(), files.end());
      return files;
    }
  }
  for (const fs::path& single : {dir / "pamap.dat", dir / "pamap.csv"}) {
    std::error_code ec;
    if (fs::is_regular_file(single, ec)) return {single.string()};
  }
  return {};
}

std::vector<std::string> ResolveMsdFiles(const std::string& data_dir) {
  const fs::path dir(data_dir);
  for (const fs::path& single :
       {dir / "YearPredictionMSD.txt", dir / "msd.csv", dir / "msd.txt"}) {
    std::error_code ec;
    if (fs::is_regular_file(single, ec)) return {single.string()};
  }
  return {};
}

// Cache -> raw CSV (writing the cache) -> synthetic fallback, shared by
// the "pamap" and "msd" entries.
std::unique_ptr<DatasetSource> OpenReal(const DatasetSpec& spec,
                                        const std::string& name, bool msd_like,
                                        std::string* error) {
  if (!spec.data_dir.empty()) {
    const std::string cache_path =
        (fs::path(spec.data_dir) / (name + ".dmtbin")).string();
    std::error_code ec;
    if (spec.use_cache && fs::is_regular_file(cache_path, ec)) {
      std::string cache_err;
      auto cached = std::make_unique<DmtbinSource>(cache_path, spec.max_rows,
                                                   &cache_err);
      if (cached->ok()) {
        cached->set_name(name);
        return cached;
      }
      std::fprintf(stderr,
                   "dmt datasets: ignoring unreadable cache %s (%s); "
                   "re-parsing raw files\n",
                   cache_path.c_str(), cache_err.c_str());
    }

    const std::vector<std::string> files =
        msd_like ? ResolveMsdFiles(spec.data_dir)
                 : ResolvePamapFiles(spec.data_dir);
    if (!files.empty()) {
      RealDatasetOptions options;
      options.max_rows = spec.max_rows;
      std::string parse_err;
      std::unique_ptr<MaterializedSource> src;
      if (msd_like) {
        src = std::make_unique<MsdSource>(files[0], options, &parse_err);
      } else {
        src = std::make_unique<PamapSource>(files, options, &parse_err);
      }
      if (src->matrix().rows() == 0) {
        // Files are present but unusable: surface the error instead of
        // silently substituting synthetic data.
        SetError(error, parse_err);
        return nullptr;
      }
      if (spec.use_cache) {
        std::string write_err;
        if (WriteDmtbin(cache_path, src->matrix(), &write_err)) {
          std::fprintf(stderr,
                       "dmt datasets: cached %s (%" PRIu64 " x %zu rows) — "
                       "later runs skip CSV parsing\n",
                       cache_path.c_str(),
                       static_cast<uint64_t>(src->matrix().rows()),
                       src->matrix().cols());
        } else {
          std::fprintf(stderr, "dmt datasets: could not write cache (%s)\n",
                       write_err.c_str());
        }
      }
      return src;
    }
  }

  if (!spec.allow_synthetic_fallback) {
    SetError(error, "dataset '" + name + "' not found under '" +
                        spec.data_dir + "' and synthetic fallback disabled");
    return nullptr;
  }
  std::fprintf(
      stderr,
      "dmt datasets: '%s' not found under '%s' — falling back to the "
      "synthetic %s-like stream (seed %" PRIu64 "). See docs/DATASETS.md / "
      "tools/fetch_datasets.sh for the real data.\n",
      name.c_str(), spec.data_dir.empty() ? "(no --data-dir)" : spec.data_dir.c_str(),
      name.c_str(), spec.seed);
  return MakeSynthetic(spec, msd_like, name, /*fallback=*/true);
}

std::map<std::string, DatasetFactory>& FactoryMap() {
  static auto* factories = new std::map<std::string, DatasetFactory>{
      {"synthetic",
       [](const DatasetSpec& s, std::string*) {
         return MakeSynthetic(s, /*msd_like=*/false, "synthetic", false);
       }},
      {"synthetic-pamap",
       [](const DatasetSpec& s, std::string*) {
         return MakeSynthetic(s, /*msd_like=*/false, "synthetic-pamap",
                              false);
       }},
      {"synthetic-msd",
       [](const DatasetSpec& s, std::string*) {
         return MakeSynthetic(s, /*msd_like=*/true, "synthetic-msd", false);
       }},
      {"pamap",
       [](const DatasetSpec& s, std::string* e) {
         return OpenReal(s, "pamap", /*msd_like=*/false, e);
       }},
      {"msd",
       [](const DatasetSpec& s, std::string* e) {
         return OpenReal(s, "msd", /*msd_like=*/true, e);
       }},
  };
  return *factories;
}

}  // namespace

std::unique_ptr<DatasetSource> OpenDataset(const DatasetSpec& spec,
                                           std::string* error) {
  auto& factories = FactoryMap();
  const auto it = factories.find(spec.name);
  if (it == factories.end()) {
    std::string names;
    for (const std::string& n : RegisteredDatasets()) {
      names += (names.empty() ? "" : ", ") + n;
    }
    SetError(error, "unknown dataset '" + spec.name + "' (have: " + names +
                        ")");
    return nullptr;
  }
  return it->second(spec, error);
}

void RegisterDataset(const std::string& name, DatasetFactory factory) {
  FactoryMap()[name] = std::move(factory);
}

std::vector<std::string> RegisteredDatasets() {
  std::vector<std::string> names;
  for (const auto& [name, factory] : FactoryMap()) names.push_back(name);
  return names;
}

DatasetSpec ParseDatasetArgs(int argc, char** argv,
                             const DatasetSpec& defaults) {
  DatasetSpec spec = defaults;
  if (spec.data_dir.empty()) {
    spec.data_dir = GetEnvString("DMT_DATA_DIR", "");
  }
  const auto match = [&](const char* arg, const char* flag,
                         std::string* out) {
    const size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0) return false;
    if (arg[n] == '=') {
      *out = arg + n + 1;
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    std::string value;
    const bool has_next = i + 1 < argc;
    if (match(argv[i], "--dataset", &value)) {
      spec.name = value;
    } else if (std::strcmp(argv[i], "--dataset") == 0 && has_next) {
      spec.name = argv[++i];
    } else if (match(argv[i], "--data-dir", &value)) {
      spec.data_dir = value;
    } else if (std::strcmp(argv[i], "--data-dir") == 0 && has_next) {
      spec.data_dir = argv[++i];
    } else if (match(argv[i], "--max-rows", &value) ||
               (std::strcmp(argv[i], "--max-rows") == 0 && has_next &&
                (value = argv[++i], true))) {
      char* end = nullptr;
      const unsigned long long parsed =
          std::strtoull(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0' ||
          value.find('-') != std::string::npos) {
        std::fprintf(stderr,
                     "warning: ignoring --max-rows=%s (not a non-negative "
                     "integer)\n",
                     value.c_str());
      } else {
        spec.max_rows = static_cast<size_t>(parsed);
      }
    }
  }
  return spec;
}

}  // namespace data
}  // namespace dmt
