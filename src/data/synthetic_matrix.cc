#include "data/synthetic_matrix.h"

#include <cmath>

#include "linalg/spectral.h"
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace data {

SyntheticMatrixGenerator::SyntheticMatrixGenerator(
    const SyntheticMatrixConfig& config)
    : config_(config), rng_(config.seed) {
  DMT_CHECK_GE(config_.dim, 1u);
  DMT_CHECK_GE(config_.latent_rank, 1u);
  // A latent rank beyond d means "full rank".
  if (config_.latent_rank > config_.dim) config_.latent_rank = config_.dim;
  DMT_CHECK_GT(config_.beta, 0.0);
  DMT_CHECK_LE(config_.min_norm_sq, config_.beta);
  basis_ = linalg::RandomOrthogonalMatrix(config_.dim, &rng_);
  amplitudes_.resize(config_.dim, config_.noise_level);
  for (size_t k = 0; k < config_.latent_rank; ++k) {
    double amp;
    if (config_.decay_power > 0.0) {
      amp = std::pow(static_cast<double>(k + 1), -config_.decay_power);
    } else {
      amp = std::pow(config_.decay_base, static_cast<double>(k));
    }
    amplitudes_[k] = std::max(amp, config_.noise_level);
  }
}

SyntheticMatrixConfig SyntheticMatrixGenerator::PamapLike(uint64_t seed) {
  SyntheticMatrixConfig c;
  c.dim = 44;
  c.latent_rank = 25;
  c.decay_base = 0.72;   // sigma_k ~ 0.72^k: energy gone well before k=30
  c.decay_power = 0.0;
  c.noise_level = 5e-4;
  c.beta = 100.0;
  c.seed = seed;
  return c;
}

SyntheticMatrixConfig SyntheticMatrixGenerator::MsdLike(uint64_t seed) {
  SyntheticMatrixConfig c;
  c.dim = 90;
  c.latent_rank = 90;    // energy in every direction
  c.decay_power = 0.35;  // sigma_k ~ (k+1)^-0.35: heavy spectral tail
  c.noise_level = 5e-2;
  c.beta = 100.0;
  c.seed = seed;
  return c;
}

std::vector<double> SyntheticMatrixGenerator::Next() {
  const size_t d = config_.dim;
  // Row = sum_k c_k * amp_k * basis_col_k with c_k ~ N(0,1), then clamped
  // to the beta bound on the squared norm.
  std::vector<double> row(d, 0.0);
  for (size_t k = 0; k < d; ++k) {
    const double ck = rng_.NextGaussian() * amplitudes_[k];
    if (ck == 0.0) continue;
    for (size_t j = 0; j < d; ++j) row[j] += ck * basis_(j, k);
  }
  const double sq = linalg::SquaredNorm(row);
  if (sq > config_.beta) {
    linalg::Scale(std::sqrt(config_.beta / sq), row.data(), d);
  } else if (sq < config_.min_norm_sq) {
    if (sq > 0.0) {
      linalg::Scale(std::sqrt(config_.min_norm_sq / sq), row.data(), d);
    } else {
      row[0] = std::sqrt(config_.min_norm_sq);  // degenerate all-zero draw
    }
  }
  return row;
}

linalg::Matrix SyntheticMatrixGenerator::Take(size_t n) {
  linalg::Matrix m(0, 0);
  for (size_t i = 0; i < n; ++i) m.AppendRow(Next());
  return m;
}

}  // namespace data
}  // namespace dmt
