// Dataset subsystem: one streaming interface over every row source the
// experiments run on — the published PAMAP / YearPredictionMSD matrices,
// their .dmtbin binary caches, and the synthetic generators used when the
// real files are not on disk.
//
// The paper's headline experiments (Table 1, Figures 2-3) are defined on
// two real matrices:
//
//   PAMAP              N = 629,250   d = 44   low rank (activity sensors)
//   YearPredictionMSD  N = 300,000   d = 90   high rank (audio features)
//
// Neither is redistributable here, so the registry resolves a dataset
// name against a data directory and *falls back to the matched synthetic
// generator* (data/synthetic_matrix.h) with a clear log line when the
// files are absent — CI and fresh checkouts never need the downloads,
// and `tools/fetch_datasets.sh` + docs/DATASETS.md explain how to get
// the real ones.
//
// Resolution order for a real dataset name under OpenDataset():
//   1. `<data_dir>/<name>.dmtbin` row cache (data/dmtbin.h) — stream it.
//   2. The raw published files (see PamapSource / MsdSource for the
//      accepted layouts) — parse once, write the .dmtbin cache next to
//      them (best effort), serve from memory.
//   3. SyntheticSource fallback (unless the spec forbids it).
#ifndef DMT_DATA_DATASET_H_
#define DMT_DATA_DATASET_H_

#include <cstddef>
#include <cstdint>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic_matrix.h"
#include "linalg/matrix.h"

namespace dmt {
namespace data {

/// Shape and provenance of an opened dataset.
struct DatasetInfo {
  /// Registry name that was resolved (e.g. "pamap").
  std::string name;
  /// How the rows are actually served: "dmtbin:<path>", "csv:<path>",
  /// "synthetic" — for log lines and bench headers.
  std::string origin;
  size_t dim = 0;      ///< columns per row
  uint64_t rows = 0;   ///< rows this source will serve (after any cap)
  /// Upper bound on the squared row norm (the paper's beta). 0 = unknown.
  double beta = 0.0;
  /// True when the registry substituted a synthetic stream for missing
  /// real files.
  bool synthetic_fallback = false;
};

/// A row stream with rewind. Rows are the streaming unit of every
/// protocol in this repo; sources hand them out in row-major chunks so
/// callers control the working-set size (the simulation driver reads one
/// synchronization window at a time).
class DatasetSource {
 public:
  virtual ~DatasetSource() = default;

  /// Shape/provenance. Constant over the source's lifetime.
  virtual const DatasetInfo& info() const = 0;

  /// Columns per row (shorthand for info().dim).
  size_t dim() const { return info().dim; }

  /// Appends up to `max_rows` rows (must be > 0) to `*out`, which keeps
  /// its column count (dim) across calls. Returns the number appended;
  /// 0 means the stream is exhausted. Chunk boundaries carry no meaning:
  /// any chunking yields the same concatenated row sequence.
  virtual size_t NextChunk(size_t max_rows, linalg::Matrix* out) = 0;

  /// Rewinds to the first row. A Reset() replay yields bit-identical
  /// rows — the property that lets one source feed several protocols the
  /// same stream (and lets benches make a truth pass first).
  virtual void Reset() = 0;

  /// Materializes min(n, remaining) rows from the current position
  /// (n = 0: everything remaining; forbidden on unbounded sources).
  linalg::Matrix Take(size_t n);
};

// ---------------------------------------------------------------------
// Concrete sources.
// ---------------------------------------------------------------------

/// DatasetSource over the synthetic generators — the automatic fallback
/// when a data directory is absent, and the explicit "synthetic*"
/// registry entries. Reset() re-seeds the generator, so replays are
/// bit-identical.
class SyntheticSource : public DatasetSource {
 public:
  /// Serves `total_rows` rows drawn from a generator with `config`
  /// (total_rows = 0 keeps the source unbounded — NextChunk never
  /// returns short; callers must cap).
  SyntheticSource(const SyntheticMatrixConfig& config, uint64_t total_rows,
                  std::string name = "synthetic");

  const DatasetInfo& info() const override { return info_; }
  size_t NextChunk(size_t max_rows, linalg::Matrix* out) override;
  void Reset() override;

  /// Flags this source in info() as a stand-in for missing real files
  /// (set by the registry when it substitutes).
  void MarkAsFallback() { info_.synthetic_fallback = true; }

 private:
  DatasetInfo info_;
  SyntheticMatrixConfig config_;
  std::unique_ptr<SyntheticMatrixGenerator> gen_;
  uint64_t served_ = 0;
};

/// DatasetSource over rows already in memory (the CSV loaders below
/// parse whole files, then serve from here).
class MaterializedSource : public DatasetSource {
 public:
  /// `info.rows` is clamped to the matrix's row count.
  MaterializedSource(DatasetInfo info, linalg::Matrix rows);

  const DatasetInfo& info() const override { return info_; }
  size_t NextChunk(size_t max_rows, linalg::Matrix* out) override;
  void Reset() override { next_ = 0; }

  /// The full backing matrix (uncapped), e.g. for writing a .dmtbin cache.
  const linalg::Matrix& matrix() const { return rows_; }

 protected:
  /// For loader subclasses: construct empty, then SetData() once parsing
  /// succeeds (a failed loader stays at rows() == 0).
  MaterializedSource() = default;
  void SetData(DatasetInfo info, linalg::Matrix rows);

 private:
  DatasetInfo info_;
  linalg::Matrix rows_;
  size_t next_ = 0;
};

/// Shared knobs of the real-CSV loaders.
struct RealDatasetOptions {
  /// Cap on rows served (the files are always parsed whole so the
  /// .dmtbin cache is complete). 0 = no cap.
  size_t max_rows = 0;
  /// After parsing, all rows are scaled by one global factor so the
  /// maximum squared row norm equals this bound (the paper's protocols
  /// assume row norms bounded by beta; the reported error metric is
  /// scale-invariant, so this loses nothing). 0 disables normalization.
  double target_beta = 100.0;
};

/// PAMAP loader (physical-activity monitoring; the paper's low-rank
/// matrix, d = 44). Accepts the whitespace-delimited .dat layouts:
///  * 45+ columns: column 0 (timestamp) is dropped;
///  * exactly 54 columns (the PAMAP2 protocol files): columns 1
///    (activityID) and 2 (heart rate, mostly missing) are dropped too;
/// then the first 44 remaining columns are kept. Missing cells (literal
/// "NaN") are imputed as 0 per docs/DATASETS.md. Multiple files (e.g.
/// one per subject) are concatenated in the order given.
class PamapSource : public MaterializedSource {
 public:
  /// Columns of the PAMAP matrix in the paper.
  static constexpr size_t kDim = 44;

  /// Parses `files`; on failure (no readable rows, unrecognized layout)
  /// the source has rows() == 0 and `*error` (when non-null) is set.
  explicit PamapSource(const std::vector<std::string>& files,
                       const RealDatasetOptions& options = {},
                       std::string* error = nullptr);
};

/// YearPredictionMSD loader (million-song audio features; the paper's
/// high-rank matrix, d = 90). Accepts the published comma-separated
/// layout of 91 columns — column 0 (the year label) is dropped — or a
/// pre-stripped 90-column file. Rows with missing cells are skipped
/// (the published file has none).
class MsdSource : public MaterializedSource {
 public:
  /// Columns of the MSD matrix in the paper.
  static constexpr size_t kDim = 90;

  explicit MsdSource(const std::string& file,
                     const RealDatasetOptions& options = {},
                     std::string* error = nullptr);
};

// ---------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------

/// What to open and how. Benches fill this from --dataset / --data-dir
/// (see ParseDatasetArgs).
struct DatasetSpec {
  /// Registry key: "pamap", "msd", "synthetic" (PAMAP-like),
  /// "synthetic-pamap", "synthetic-msd", or a RegisterDataset() name.
  std::string name = "synthetic";
  /// Directory holding raw files and .dmtbin caches. Empty = no real
  /// data (real names then fall back to synthetic).
  std::string data_dir;
  /// Cap on rows served; 0 = dataset size (synthetic: the paper's N).
  size_t max_rows = 0;
  /// Seed for synthetic sources/fallbacks.
  uint64_t seed = 42;
  /// Substitute the matched synthetic stream (with a stderr log line)
  /// when the real files are missing; when false, OpenDataset returns
  /// nullptr instead.
  bool allow_synthetic_fallback = true;
  /// Read `<data_dir>/<name>.dmtbin` when present and write it after a
  /// raw-CSV parse (best effort).
  bool use_cache = true;
};

/// Opens a dataset by name. Returns nullptr and sets `*error` (when
/// non-null) for unknown names, unreadable/corrupt files, or a missing
/// real dataset with fallback disabled. Fallback substitution logs one
/// clear line to stderr.
std::unique_ptr<DatasetSource> OpenDataset(const DatasetSpec& spec,
                                           std::string* error = nullptr);

/// Extension hook: registers (or replaces) a named opener. Not
/// thread-safe against concurrent OpenDataset calls — register at
/// startup.
using DatasetFactory =
    std::function<std::unique_ptr<DatasetSource>(const DatasetSpec&,
                                                 std::string*)>;
void RegisterDataset(const std::string& name, DatasetFactory factory);

/// Sorted names OpenDataset currently accepts (built-ins + registered).
std::vector<std::string> RegisteredDatasets();

/// Fills a spec from command-line flags: `--dataset NAME`,
/// `--data-dir PATH`, `--max-rows N` (both `--flag value` and
/// `--flag=value` forms). When --data-dir is absent, the DMT_DATA_DIR
/// environment variable supplies the default. Unrelated flags are
/// ignored (benches parse --threads/--chunk separately).
DatasetSpec ParseDatasetArgs(int argc, char** argv,
                             const DatasetSpec& defaults = {});

}  // namespace data
}  // namespace dmt

#endif  // DMT_DATA_DATASET_H_
