// .dmtbin — the binary row cache for real datasets.
//
// Parsing the published PAMAP / MSD CSVs costs far more than streaming
// the rows, so the first OpenDataset() over the raw files converts them
// once into this format; every later bench run streams the cache and
// skips CSV parsing entirely.
//
// Layout (little-endian, fixed 64-byte header, mmap-friendly: the
// payload starts at a 64-byte-aligned offset and is a plain row-major
// double array):
//
//   offset  size  field
//        0     8  magic "DMTBIN\0" + format byte 0x01
//        8     4  version  (uint32, currently 1)
//       12     4  dim      (uint32, columns per row, >= 1)
//       16     8  rows     (uint64)
//       24     8  beta     (double, max squared row norm over the payload)
//       32     8  frob_sq  (double, sum of all squared entries; reload
//                           integrity check alongside the size check)
//       40    24  reserved (zero)
//       64   8*rows*dim    row-major IEEE-754 doubles
//
// A reader must reject a wrong magic/version, dim == 0, and any file
// whose byte size differs from 64 + 8*rows*dim (truncation check).
#ifndef DMT_DATA_DMTBIN_H_
#define DMT_DATA_DMTBIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include <fstream>
#include <string>

#include "data/dataset.h"
#include "linalg/matrix.h"

namespace dmt {
namespace data {

/// Payload offset and header size in bytes.
inline constexpr size_t kDmtbinHeaderBytes = 64;
/// Current format version written by WriteDmtbin().
inline constexpr uint32_t kDmtbinVersion = 1;

/// Decoded .dmtbin header.
struct DmtbinInfo {
  uint32_t version = 0;
  size_t dim = 0;
  uint64_t rows = 0;
  double beta = 0.0;     ///< max squared row norm over the payload
  double frob_sq = 0.0;  ///< total squared Frobenius mass of the payload
};

/// Writes `rows` (all of them) as a .dmtbin file, computing the header's
/// beta / frob_sq fields from the data. The write goes to a temp file in
/// the same directory followed by an atomic rename, so a failed or
/// interrupted write never leaves a partial cache at `path`. Returns
/// false and sets `*error` (when non-null) on I/O failure or an empty
/// matrix.
bool WriteDmtbin(const std::string& path, const linalg::Matrix& rows,
                 std::string* error = nullptr);

/// Reads and validates only the header. Returns false and sets `*error`
/// (when non-null) on open failure, bad magic/version, dim == 0, or a
/// byte size inconsistent with rows*dim (truncated/corrupt file).
bool ReadDmtbinInfo(const std::string& path, DmtbinInfo* info,
                    std::string* error = nullptr);

/// Streaming DatasetSource over a .dmtbin file: NextChunk() reads
/// straight from disk, Reset() seeks back to the payload start, so a
/// cached dataset never needs to be held in memory whole.
class DmtbinSource : public DatasetSource {
 public:
  /// Opens `path`, validating the header. `max_rows` > 0 caps the rows
  /// served (the file itself is untouched). On failure ok() is false and
  /// `*error` (when non-null) holds the reason.
  explicit DmtbinSource(const std::string& path, size_t max_rows = 0,
                        std::string* error = nullptr);

  /// False when the constructor rejected the file; the source then serves
  /// zero rows.
  bool ok() const { return ok_; }

  /// Display name shown in info() (the registry stamps the dataset name
  /// it resolved, e.g. "pamap").
  void set_name(const std::string& name) { info_.name = name; }

  const DatasetInfo& info() const override { return info_; }

  /// Serves up to `max_rows` rows. A short read (the file shrank or
  /// failed underneath us after the constructor validated its size)
  /// returns 0 and latches read_error() instead of aborting; later calls
  /// keep returning 0 until Reset().
  size_t NextChunk(size_t max_rows, linalg::Matrix* out) override;
  void Reset() override;

  /// Non-empty after NextChunk() hit a mid-stream short read. Callers
  /// use this to distinguish an I/O failure from clean exhaustion.
  const std::string& read_error() const { return read_error_; }

 private:
  bool ok_ = false;
  DatasetInfo info_;
  std::ifstream in_;
  uint64_t served_ = 0;
  std::vector<double> row_buf_;
  std::string read_error_;
};

}  // namespace data
}  // namespace dmt

#endif  // DMT_DATA_DMTBIN_H_
