// Synthetic matrix stream generators.
//
// The paper evaluates on two real datasets that are not redistributable
// here, so we build synthetic equivalents that preserve the properties the
// experiments actually depend on (dimension, spectrum shape, bounded row
// norms); see DESIGN.md §4 for the substitution argument.
//
//  * PAMAP  (N=629,250, d=44): *low rank* — the paper observes that offline
//    SVD/FD error at k=30 is minuscule. PamapLike() draws rows from a
//    25-dimensional latent subspace with exponentially decaying energy plus
//    small isotropic noise.
//  * YearPredictionMSD (N=300,000, d=90): *high rank* — "error remains,
//    even with the best rank 50 approximation". MsdLike() uses a slowly
//    decaying power-law spectrum so the rank-50 residual stays substantial.
#ifndef DMT_DATA_SYNTHETIC_MATRIX_H_
#define DMT_DATA_SYNTHETIC_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "util/rng.h"

namespace dmt {
namespace data {

/// Configuration of the synthetic row-stream generator.
struct SyntheticMatrixConfig {
  size_t dim = 44;            ///< columns d
  size_t latent_rank = 25;    ///< energy concentrated in this many directions
  /// Per-direction amplitude of latent direction k is
  ///   decay_base^k          (exponential mode, decay_power == 0), or
  ///   (k+1)^-decay_power    (power-law mode, decay_power > 0).
  double decay_base = 0.75;
  double decay_power = 0.0;
  double noise_level = 1e-3;  ///< isotropic residual amplitude (all d dims)
  double beta = 100.0;        ///< upper bound on squared row norms
  /// Lower bound on squared row norms. The paper's protocols assume row
  /// weights in [1, beta]; undersized rows are scaled up to this bound.
  double min_norm_sq = 1.0;
  uint64_t seed = 42;
};

/// Streaming generator of matrix rows with a controlled spectrum.
class SyntheticMatrixGenerator {
 public:
  explicit SyntheticMatrixGenerator(const SyntheticMatrixConfig& config);

  /// PAMAP-like low-rank regime (d=44).
  static SyntheticMatrixConfig PamapLike(uint64_t seed = 42);

  /// MSD-like high-rank regime (d=90).
  static SyntheticMatrixConfig MsdLike(uint64_t seed = 43);

  /// Draws the next row (length dim). Squared norm is <= beta.
  std::vector<double> Next();

  /// Draws `n` rows into a matrix.
  linalg::Matrix Take(size_t n);

  const SyntheticMatrixConfig& config() const { return config_; }

  /// Maximum possible squared row norm (the generator's beta bound).
  double beta() const { return config_.beta; }

 private:
  SyntheticMatrixConfig config_;
  Rng rng_;
  linalg::Matrix basis_;             // d x d random orthogonal
  std::vector<double> amplitudes_;   // length d: latent + noise floor
};

}  // namespace data
}  // namespace dmt

#endif  // DMT_DATA_SYNTHETIC_MATRIX_H_
