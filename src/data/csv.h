// Minimal CSV loader so users with access to the original PAMAP /
// YearPredictionMSD datasets can replay the paper's experiments on the real
// data (drop the file next to the bench binaries and pass its path).
#ifndef DMT_DATA_CSV_H_
#define DMT_DATA_CSV_H_

#include <cstddef>

#include <string>

#include "linalg/matrix.h"

namespace dmt {
namespace data {

/// Loads a numeric CSV file into a matrix. Rows with parse errors or a
/// differing column count are skipped. `max_rows` = 0 means unlimited.
/// Returns an empty matrix if the file cannot be opened.
linalg::Matrix LoadCsv(const std::string& path, char delimiter = ',',
                       size_t max_rows = 0);

}  // namespace data
}  // namespace dmt

#endif  // DMT_DATA_CSV_H_
