// CSV parsing for the real-dataset path.
//
// Two layers:
//  * LoadCsv — the original minimal loader (numeric cells only, rows with
//    any bad cell are skipped). Kept for tools and tests that want the
//    strict behavior.
//  * CsvParseOptions + ForEachCsvRow / LoadCsvFiltered — the configurable
//    streaming parser the dataset loaders (PamapSource / MsdSource in
//    data/dataset.h) are built on: whitespace-delimited files, per-paper
//    column selection, and explicit missing-value policy (PAMAP encodes
//    dropped sensor readings as literal "NaN" cells).
#ifndef DMT_DATA_CSV_H_
#define DMT_DATA_CSV_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "linalg/matrix.h"

namespace dmt {
namespace data {

/// Loads a numeric CSV file into a matrix. Rows with parse errors or a
/// differing column count are skipped. `max_rows` = 0 means unlimited.
/// Returns an empty matrix if the file cannot be opened.
linalg::Matrix LoadCsv(const std::string& path, char delimiter = ',',
                       size_t max_rows = 0);

/// Parser configuration for the dataset loaders.
struct CsvParseOptions {
  /// Cell separator. Ignored when `whitespace_delimited` is set.
  char delimiter = ',';
  /// Split on any run of spaces/tabs instead of `delimiter` (the PAMAP
  /// .dat files are space-separated).
  bool whitespace_delimited = false;
  /// Stop after this many delivered rows; 0 = unlimited.
  size_t max_rows = 0;
  /// Raw-file column indices to keep, in the given order. Empty = keep
  /// every column. Indices past a row's width invalidate the row (it is
  /// skipped, like a wrong column count).
  std::vector<size_t> keep_columns;
  /// What to do with a missing cell — empty, non-numeric (e.g. literal
  /// "NaN"), or non-finite after parsing:
  ///  * kSkipRow: drop the whole row (the strict LoadCsv behavior).
  ///  * kImpute: substitute `impute_value` and keep the row. A line with
  ///    no numeric cell at all (a text header) is still skipped — it is
  ///    not a row of missing values.
  enum class MissingPolicy { kSkipRow, kImpute };
  MissingPolicy missing_policy = MissingPolicy::kSkipRow;
  double impute_value = 0.0;
};

/// Streams `path` row by row: parses each line under `options`, applies
/// the column selection, and calls `fn(row)` for every surviving row
/// (row.size() is constant across calls: keep_columns.size() when set,
/// else the width of the first surviving row — later rows with a
/// different raw width are skipped). Returns the number of rows
/// delivered. If the file cannot be opened, returns 0 and sets `*error`
/// (when non-null).
size_t ForEachCsvRow(const std::string& path, const CsvParseOptions& options,
                     const std::function<void(const std::vector<double>&)>& fn,
                     std::string* error = nullptr);

/// Materializing convenience wrapper over ForEachCsvRow().
linalg::Matrix LoadCsvFiltered(const std::string& path,
                               const CsvParseOptions& options,
                               std::string* error = nullptr);

}  // namespace data
}  // namespace dmt

#endif  // DMT_DATA_CSV_H_
