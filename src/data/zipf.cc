#include "data/zipf.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dmt {
namespace data {

ZipfianStream::ZipfianStream(uint64_t universe, double skew, double beta,
                             uint64_t seed)
    : universe_(universe), beta_(beta), rng_(seed) {
  DMT_CHECK_GE(universe, 1u);
  DMT_CHECK_GE(beta, 1.0);
  cdf_.resize(universe_);
  double acc = 0.0;
  for (uint64_t i = 0; i < universe_; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf_[i] = acc;
  }
  for (auto& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against roundoff at the top end
}

WeightedItem ZipfianStream::Next() {
  const double u = rng_.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  WeightedItem item;
  item.element = static_cast<uint64_t>(it - cdf_.begin());
  // Uniform real weight in [1, beta].
  item.weight = 1.0 + (beta_ - 1.0) * rng_.NextDouble();
  return item;
}

std::vector<WeightedItem> ZipfianStream::Take(size_t n) {
  std::vector<WeightedItem> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

void ExactWeights::Observe(const WeightedItem& item) {
  if (item.element >= weights_.size()) weights_.resize(item.element + 1, 0.0);
  weights_[item.element] += item.weight;
  total_ += item.weight;
}

double ExactWeights::Weight(uint64_t element) const {
  return element < weights_.size() ? weights_[element] : 0.0;
}

std::vector<uint64_t> ExactWeights::HeavyHitters(double phi) const {
  std::vector<uint64_t> out;
  const double bar = phi * total_;
  for (uint64_t e = 0; e < weights_.size(); ++e) {
    if (weights_[e] >= bar) out.push_back(e);
  }
  return out;
}

}  // namespace data
}  // namespace dmt
