// Zipfian weighted item stream, matching the paper's heavy-hitter workload:
// "data from Zipfian distribution, skew parameter 2, 10^7 points, weights
//  uniform random in [1, beta] (not necessarily integers)".
#ifndef DMT_DATA_ZIPF_H_
#define DMT_DATA_ZIPF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dmt {
namespace data {

/// One weighted stream element.
struct WeightedItem {
  uint64_t element = 0;
  double weight = 1.0;
};

/// Generator of Zipf-distributed elements with uniform [1, beta] weights.
class ZipfianStream {
 public:
  /// `universe`: number of distinct elements (ids 0..universe-1);
  /// `skew`: Zipf exponent (paper uses 2.0); `beta`: weight upper bound.
  ZipfianStream(uint64_t universe, double skew, double beta, uint64_t seed);

  /// Draws the next stream element.
  WeightedItem Next();

  /// Draws `n` elements at once.
  std::vector<WeightedItem> Take(size_t n);

  uint64_t universe() const { return universe_; }
  double beta() const { return beta_; }

 private:
  uint64_t universe_;
  double beta_;
  Rng rng_;
  std::vector<double> cdf_;  // cumulative element probabilities
};

/// Exact per-element weights for a generated stream (ground truth oracle).
class ExactWeights {
 public:
  void Observe(const WeightedItem& item);

  double Weight(uint64_t element) const;
  double total_weight() const { return total_; }

  /// All elements with weight >= phi * total (the true phi-heavy hitters).
  std::vector<uint64_t> HeavyHitters(double phi) const;

 private:
  std::vector<double> weights_;  // index = element id (dense universe)
  double total_ = 0.0;
};

}  // namespace data
}  // namespace dmt

#endif  // DMT_DATA_ZIPF_H_
