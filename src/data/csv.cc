#include "data/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dmt {
namespace data {

linalg::Matrix LoadCsv(const std::string& path, char delimiter,
                       size_t max_rows) {
  std::ifstream in(path);
  linalg::Matrix out;
  if (!in.is_open()) return out;

  std::string line;
  size_t expected_cols = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    bool bad = false;
    while (std::getline(ss, cell, delimiter)) {
      char* end = nullptr;
      double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        bad = true;  // non-numeric cell (e.g. a header line)
        break;
      }
      row.push_back(v);
    }
    if (bad || row.empty()) continue;
    if (expected_cols == 0) expected_cols = row.size();
    if (row.size() != expected_cols) continue;
    out.AppendRow(row);
    if (max_rows != 0 && out.rows() >= max_rows) break;
  }
  return out;
}

}  // namespace data
}  // namespace dmt
