#include "data/csv.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace dmt {
namespace data {
namespace {

// Parses `cell` as a double, requiring the whole cell to be consumed modulo
// surrounding whitespace (so "12abc" is rejected rather than read as 12.0).
// Empty, all-whitespace, overflowing, and non-finite ("inf"/"nan") cells are
// rejected: experiments expect finite matrix entries.
bool ParseCell(const std::string& cell, double* out) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  // isfinite covers overflow too (strtod returns +-inf); underflowed
  // subnormals are fine and deliberately not rejected via errno.
  if (end == cell.c_str() || !std::isfinite(v)) return false;
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

// Splits `line` into cells: on any run of spaces/tabs when
// `whitespace_delimited`, else on every occurrence of `delimiter`.
void SplitLine(const std::string& line, const CsvParseOptions& options,
               std::vector<std::string>* cells) {
  cells->clear();
  if (options.whitespace_delimited) {
    size_t i = 0;
    const auto is_ws = [](char c) { return c == ' ' || c == '\t'; };
    while (i < line.size()) {
      while (i < line.size() && is_ws(line[i])) ++i;
      size_t begin = i;
      while (i < line.size() && !is_ws(line[i])) ++i;
      if (i > begin) cells->emplace_back(line, begin, i - begin);
    }
  } else {
    size_t begin = 0;
    while (true) {
      const size_t pos = line.find(options.delimiter, begin);
      if (pos == std::string::npos) {
        cells->emplace_back(line, begin, line.size() - begin);
        break;
      }
      cells->emplace_back(line, begin, pos - begin);
      begin = pos + 1;
    }
  }
}

}  // namespace

size_t ForEachCsvRow(const std::string& path, const CsvParseOptions& options,
                     const std::function<void(const std::vector<double>&)>& fn,
                     std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return 0;
  }

  const bool impute =
      options.missing_policy == CsvParseOptions::MissingPolicy::kImpute;
  std::string line;
  std::vector<std::string> cells;
  std::vector<double> raw;
  std::vector<double> row;
  size_t expected_raw_cols = 0;
  size_t delivered = 0;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    SplitLine(line, options, &cells);
    // Delimiter-split lines keep a trailing empty cell off ("1,2,3," is
    // three columns, matching the strict loader).
    if (!options.whitespace_delimited && cells.size() > 1 &&
        cells.back().empty()) {
      cells.pop_back();
    }
    if (cells.empty()) continue;

    raw.clear();
    bool bad = false;
    size_t numeric_cells = 0;
    for (const std::string& cell : cells) {
      double v = 0.0;
      if (ParseCell(cell, &v)) {
        ++numeric_cells;
      } else {
        if (!impute) {
          bad = true;  // strict mode: a header or malformed line
          break;
        }
        v = options.impute_value;
      }
      raw.push_back(v);
    }
    // Even under kImpute, a line with not a single numeric cell is a
    // header/comment, not a row of missing values: imputing it would
    // lock the expected width onto the header's token count.
    if (bad || raw.empty() || numeric_cells == 0) continue;
    // Lock onto the first surviving row's raw width; later rows that
    // disagree (truncated tails, concatenation artifacts) are skipped.
    if (expected_raw_cols == 0) expected_raw_cols = raw.size();
    if (raw.size() != expected_raw_cols) continue;

    if (options.keep_columns.empty()) {
      fn(raw);
    } else {
      row.clear();
      bool out_of_range = false;
      for (size_t c : options.keep_columns) {
        if (c >= raw.size()) {
          out_of_range = true;
          break;
        }
        row.push_back(raw[c]);
      }
      if (out_of_range) continue;
      fn(row);
    }
    ++delivered;
    if (options.max_rows != 0 && delivered >= options.max_rows) break;
  }
  return delivered;
}

linalg::Matrix LoadCsvFiltered(const std::string& path,
                               const CsvParseOptions& options,
                               std::string* error) {
  linalg::Matrix out;
  ForEachCsvRow(
      path, options, [&out](const std::vector<double>& row) { out.AppendRow(row); },
      error);
  return out;
}

linalg::Matrix LoadCsv(const std::string& path, char delimiter,
                       size_t max_rows) {
  CsvParseOptions options;
  options.delimiter = delimiter;
  options.max_rows = max_rows;
  return LoadCsvFiltered(path, options);
}

}  // namespace data
}  // namespace dmt
