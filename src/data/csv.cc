#include "data/csv.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace dmt {
namespace data {
namespace {

// Parses `cell` as a double, requiring the whole cell to be consumed modulo
// surrounding whitespace (so "12abc" is rejected rather than read as 12.0).
// Empty, all-whitespace, overflowing, and non-finite ("inf"/"nan") cells are
// rejected: experiments expect finite matrix entries.
bool ParseCell(const std::string& cell, double* out) {
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  // isfinite covers overflow too (strtod returns +-inf); underflowed
  // subnormals are fine and deliberately not rejected via errno.
  if (end == cell.c_str() || !std::isfinite(v)) return false;
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

linalg::Matrix LoadCsv(const std::string& path, char delimiter,
                       size_t max_rows) {
  std::ifstream in(path);
  linalg::Matrix out;
  if (!in.is_open()) return out;

  std::string line;
  size_t expected_cols = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    std::stringstream ss(line);
    std::string cell;
    bool bad = false;
    while (std::getline(ss, cell, delimiter)) {
      double v = 0.0;
      if (!ParseCell(cell, &v)) {
        bad = true;  // non- or partially-numeric cell (e.g. a header line)
        break;
      }
      row.push_back(v);
    }
    if (bad || row.empty()) continue;
    if (expected_cols == 0) expected_cols = row.size();
    if (row.size() != expected_cols) continue;
    out.AppendRow(row);
    if (max_rows != 0 && out.rows() >= max_rows) break;
  }
  return out;
}

}  // namespace data
}  // namespace dmt
