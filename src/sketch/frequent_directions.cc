#include "sketch/frequent_directions.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "linalg/jacobi_eigen.h"
#include "linalg/kernels.h"
#include "linalg/vec_ops.h"
#include "util/check.h"
#include "util/contracts.h"
#include "util/env.h"

namespace dmt {
namespace sketch {

FrequentDirections::FrequentDirections(size_t ell, size_t dim)
    : ell_(ell), dim_(dim), backend_(DefaultShrinkBackend()) {
  DMT_CHECK_GE(ell, 1u);
}

FdShrinkBackend FrequentDirections::DefaultShrinkBackend() {
  static const FdShrinkBackend def =
      GetEnvString("DMT_FD_BACKEND", "lanczos") == "jacobi"
          ? FdShrinkBackend::kJacobi
          : FdShrinkBackend::kLanczos;
  return def;
}

FrequentDirections FrequentDirections::WithEpsilon(double eps, size_t dim) {
  DMT_CHECK_GT(eps, 0.0);
  return FrequentDirections(static_cast<size_t>(std::ceil(1.0 / eps)), dim);
}

void FrequentDirections::Append(const std::vector<double>& row) {
  Append(row.data(), row.size());
}

void FrequentDirections::Append(const double* row, size_t n) {
  if (dim_ == 0) dim_ = n;
  DMT_CHECK_EQ(n, dim_);
  buffer_.AppendRow(row, n);
  stream_sq_frob_ += linalg::SquaredNorm(row, n);
  ShrinkIfNeeded();
}

void FrequentDirections::AppendRows(const linalg::Matrix& rows) {
  if (rows.rows() == 0) return;
  if (dim_ == 0) dim_ = rows.cols();
  DMT_CHECK_EQ(rows.cols(), dim_);
  // Self-alias guard (same as Merge): appending from our own buffer while
  // it grows and shrinks would read through dangling row pointers.
  linalg::Matrix self_copy;
  const linalg::Matrix* src = &rows;
  if (&rows == &buffer_) {
    self_copy = buffer_;
    src = &self_copy;
  }
  // Bulk path: fill the buffer to its full capacity between shrinks, so a
  // block of n rows costs ~n / (capacity - ell) shrinks instead of the
  // row-at-a-time n / ell. The FD guarantee is unaffected: each shrink's
  // cutoff is the (ell+1)-th eigenvalue of whatever buffer it compresses,
  // and errors remain additive across shrinks.
  const size_t cap = BufferCapacityRows();
  const size_t n = src->rows();
  for (size_t i = 0; i < n; ++i) {
    if (buffer_.rows() >= cap) Shrink();
    buffer_.AppendRow(src->Row(i), dim_);
    stream_sq_frob_ += linalg::SquaredNorm(src->Row(i), dim_);
  }
  ShrinkIfNeeded();  // restore the < 2*ell streaming invariant
}

void FrequentDirections::Merge(const FrequentDirections& other) {
  DMT_CHECK_EQ(ell_, other.ell_);
  if (other.dim_ == 0) return;
  if (dim_ == 0) dim_ = other.dim_;
  DMT_CHECK_EQ(dim_, other.dim_);
  // Bulk-append the other sketch's rows, then shrink once. One shrink of
  // the (at most 4*ell-row) combined buffer restores the <= 2*ell
  // invariant, versus up to one shrink per ell_ appended rows on the
  // row-at-a-time path. The FD guarantee is unaffected: errors are
  // additive under merge and the single shrink's cutoff is accounted in
  // total_shrinkage_ as usual.
  //
  // Snapshots first: self-merge aliases other's counters with ours, and
  // ShrinkIfNeeded may bump total_shrinkage_. Matrix::AppendRows handles
  // the aliased-buffer case itself.
  const double other_sq_frob = other.stream_sq_frob_;
  const double other_shrinkage = other.total_shrinkage_;
  buffer_.AppendRows(other.buffer_);
  ShrinkIfNeeded();
  stream_sq_frob_ += other_sq_frob;
  total_shrinkage_ += other_shrinkage;
}

void FrequentDirections::ShrinkIfNeeded() {
  if (buffer_.rows() >= 2 * ell_) Shrink();
}

void FrequentDirections::Compress() {
  if (buffer_.rows() > ell_) Shrink();
}

DMT_ALLOC_OK("one-time Jacobi-path workspace setup, gated on jacobi_ready_")
void FrequentDirections::EnsureJacobiWorkspace() {
  if (jacobi_ready_) return;
  DMT_CHECK_GT(dim_, 0u);
  basis_ = linalg::Matrix(dim_, dim_);
  gram_work_ = linalg::Matrix(dim_, dim_);
  basis_work_ = linalg::Matrix(dim_, dim_);
  rotated_ = linalg::Matrix(0, dim_);
  rotated_.ReserveRows(BufferCapacityRows());
  diag_.assign(dim_, 0.0);
  order_.resize(dim_);
  jacobi_ready_ = true;
}

DMT_ALLOC_OK("one-time shrink workspace setup; no-op once buffer and seed have the sketch's shape")
void FrequentDirections::EnsureShrinkWorkspace() {
  buffer_.ReserveRows(BufferCapacityRows());
  if (warm_seed_.size() != dim_) {
    warm_seed_.assign(dim_, 0.0);
    warm_seed_valid_ = false;
  }
}

DMT_ALLOC_OK("lazy d x d Gram workspace; only tall (n >= d) Lanczos shrinks pay for it, once")
void FrequentDirections::EnsureLanczosGram() {
  if (lanczos_gram_.rows() != dim_) {
    lanczos_gram_ = linalg::Matrix(dim_, dim_);
  }
}

DMT_NO_ALLOC
void FrequentDirections::Shrink() {
  ++shrink_count_;
  DMT_CHECK_GT(dim_, 0u);
  EnsureShrinkWorkspace();
  if (backend_ == FdShrinkBackend::kJacobi) {
    ShrinkJacobi();
    return;
  }
  if (!ShrinkLanczos()) {
    // Residual tolerance missed (adversarial seed/spectrum): rerun this
    // shrink on the exact reference path. The buffer is untouched until a
    // Lanczos solve succeeds, so the rerun sees the same rows.
    ++lanczos_fallbacks_;
    ShrinkJacobi();
  }
}

DMT_NO_ALLOC
bool FrequentDirections::ShrinkLanczos() {
  const size_t d = dim_;
  const size_t n = buffer_.rows();
  const size_t k = std::min(ell_ + 1, d);

  linalg::LanczosOptions opts;
  opts.tol = 1e-11;
  if (warm_seed_valid_) opts.seed = warm_seed_.data();

  linalg::LanczosInfo info;
  if (n < d) {
    // Buffer currently wider than tall: iterate on the rows directly —
    // each matvec is two GEMV-shaped passes, y = B^T (B x) — so the
    // d x d Gram is never materialized. This covers every shrink when
    // 4*ell < d, and streaming (2*ell-row) shrinks up to d > 2*ell.
    info = eigensolver_.TopKOfRows(buffer_, k, &eigenvalues_,
                                   &eigenvectors_, opts);
  } else {
    // Tall buffer: one blocked Gram build, then d^2 matvecs on it.
    EnsureLanczosGram();
    linalg::kernels::Gram(buffer_.Row(0), n, d, lanczos_gram_.Row(0));
    info = eigensolver_.TopKOfGram(lanczos_gram_, k, &eigenvalues_,
                                   &eigenvectors_, opts);
  }
  if (!info.converged) return false;

  const double delta =
      ell_ < d ? std::max(0.0, eigenvalues_[ell_]) : 0.0;
  total_shrinkage_ += delta;

  size_t kept = 0;
  for (size_t i = 0; i < ell_ && i < d; ++i) {
    if (eigenvalues_[i] - delta <= 0.0) break;  // sorted descending
    kept = i + 1;
  }

  // Warm seed for the next shrink, captured before the rebuild below
  // (storage pre-sized by EnsureShrinkWorkspace, so this never allocates).
  std::copy(eigenvectors_.Row(0), eigenvectors_.Row(0) + d,
            warm_seed_.begin());
  warm_seed_valid_ = true;

  for (size_t i = 0; i < kept; ++i) {
    // Clamp before the sqrt: near-tied lambda_ell ~ lambda_{ell+1} can
    // leave the difference a roundoff hair negative.
    const double lam = std::max(0.0, eigenvalues_[i] - delta);
    const double scale = std::sqrt(lam);
    const double* v = eigenvectors_.Row(i);
    double* row = buffer_.Row(i);
    for (size_t j = 0; j < d; ++j) row[j] = scale * v[j];
  }
  buffer_.ResizeRows(kept);
  jacobi_warm_valid_ = false;  // kept rows are no longer basis_ columns
  return true;
}

DMT_NO_ALLOC
void FrequentDirections::ShrinkJacobi() {
  EnsureJacobiWorkspace();
  if (!jacobi_warm_valid_) {
    // Cold start: no rows are pre-diagonalized, the rotation basis is
    // fresh. The warm machinery below then rotates every buffer row in.
    basis_.SetZero();
    for (size_t i = 0; i < dim_; ++i) basis_(i, i) = 1.0;
    gram_work_.SetZero();
    kept_rows_ = 0;
    jacobi_warm_valid_ = true;
  }
  const size_t d = dim_;
  const size_t n = buffer_.rows();

  // Invariant on entry: buffer rows [0, kept_rows_) are exact scaled
  // eigenvectors of basis_, so their Gram in that basis is the diagonal
  // already stored in gram_work_. Only the rows appended since the last
  // shrink need to be rotated in: one blocked GEMM (R = New * V) plus one
  // blocked symmetric accumulation (G += R^T R).
  const size_t nn = n - kept_rows_;
  if (nn > 0) {
    rotated_.ResizeRows(nn);
    linalg::kernels::Gemm(buffer_.Row(kept_rows_), basis_.Row(0),
                          rotated_.Row(0), nn, d, d);
    linalg::kernels::GramAccumulate(rotated_.Row(0), nn, d,
                                    gram_work_.Row(0));
  }

  // Warm-started cyclic Jacobi: the kept block is already diagonal, so
  // only couplings introduced by the new rows cost rotations. basis_
  // absorbs the rotations and stays the full eigenbasis.
  linalg::JacobiDiagonalizeInPlace(&gram_work_, &basis_);

  for (size_t i = 0; i < d; ++i) diag_[i] = gram_work_(i, i);
  std::iota(order_.begin(), order_.end(), size_t{0});
  std::sort(order_.begin(), order_.end(), [this](size_t x, size_t y) {
    // Index tie-break keeps the permutation deterministic under std::sort.
    if (diag_[x] != diag_[y]) return diag_[x] > diag_[y];
    return x < y;
  });

  // Cutoff: the (ell+1)-th largest eigenvalue of B^T B, clamped at 0
  // (trailing eigenvalues of a rank-deficient Gram are roundoff noise).
  const double delta =
      ell_ < d ? std::max(0.0, diag_[order_[ell_]]) : 0.0;
  total_shrinkage_ += delta;

  size_t kept = 0;
  for (size_t i = 0; i < ell_ && i < d; ++i) {
    if (diag_[order_[i]] - delta <= 0.0) break;  // sorted descending
    kept = i + 1;
  }

  // Rebuild the surviving rows in place: row i = sqrt(lambda_i - delta)
  // times eigenvector order_[i]. Safe because kept <= ell < n and the
  // source is basis_, not the buffer. The max() clamps the subtraction
  // against roundoff-negative differences (near-tied lambda_ell ~
  // lambda_{ell+1}) that would otherwise sqrt into NaN.
  for (size_t i = 0; i < kept; ++i) {
    const double scale = std::sqrt(std::max(0.0, diag_[order_[i]] - delta));
    const size_t c = order_[i];
    double* row = buffer_.Row(i);
    for (size_t j = 0; j < d; ++j) row[j] = scale * basis_(j, c);
  }
  buffer_.ResizeRows(kept);

  // Re-establish the invariant for the next warm start: permute the basis
  // columns into eigenvalue order (row i <-> column i) and store the
  // shrunk spectrum as the new diagonal Gram.
  for (size_t r = 0; r < d; ++r) {
    const double* src = basis_.Row(r);
    double* dst = basis_work_.Row(r);
    for (size_t i = 0; i < d; ++i) dst[i] = src[order_[i]];
  }
  std::swap(basis_, basis_work_);
  gram_work_.SetZero();
  for (size_t i = 0; i < kept; ++i) {
    gram_work_(i, i) = std::max(0.0, diag_[order_[i]] - delta);
  }
  kept_rows_ = kept;

  // Keep the Lanczos warm seed fresh too, so switching backends
  // mid-stream still warm-starts (column 0 of the permuted basis is the
  // leading eigenvector; storage pre-sized by EnsureShrinkWorkspace).
  for (size_t r = 0; r < d; ++r) warm_seed_[r] = basis_(r, 0);
  warm_seed_valid_ = true;
}

double FrequentDirections::SquaredNormAlong(
    const std::vector<double>& x) const {
  if (buffer_.rows() == 0) return 0.0;
  return buffer_.SquaredNormAlong(x);
}

}  // namespace sketch
}  // namespace dmt
