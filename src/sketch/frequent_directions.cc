#include "sketch/frequent_directions.h"

#include <cmath>

#include "linalg/svd.h"
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace sketch {

FrequentDirections::FrequentDirections(size_t ell, size_t dim)
    : ell_(ell), dim_(dim) {
  DMT_CHECK_GE(ell, 1u);
}

FrequentDirections FrequentDirections::WithEpsilon(double eps, size_t dim) {
  DMT_CHECK_GT(eps, 0.0);
  return FrequentDirections(static_cast<size_t>(std::ceil(1.0 / eps)), dim);
}

void FrequentDirections::Append(const std::vector<double>& row) {
  Append(row.data(), row.size());
}

void FrequentDirections::Append(const double* row, size_t n) {
  if (dim_ == 0) dim_ = n;
  DMT_CHECK_EQ(n, dim_);
  buffer_.AppendRow(row, n);
  stream_sq_frob_ += linalg::SquaredNorm(row, n);
  ShrinkIfNeeded();
}

void FrequentDirections::AppendRows(const linalg::Matrix& rows) {
  for (size_t i = 0; i < rows.rows(); ++i) Append(rows.Row(i), rows.cols());
}

void FrequentDirections::Merge(const FrequentDirections& other) {
  DMT_CHECK_EQ(ell_, other.ell_);
  if (other.dim_ == 0) return;
  if (dim_ == 0) dim_ = other.dim_;
  DMT_CHECK_EQ(dim_, other.dim_);
  // Bulk-append the other sketch's rows, then shrink once. One SVD of the
  // (at most 4*ell-row) combined buffer restores the <= 2*ell invariant,
  // versus up to one SVD per ell_ appended rows on the row-at-a-time path.
  // The FD guarantee is unaffected: errors are additive under merge and the
  // single shrink's cutoff is accounted in total_shrinkage_ as usual.
  //
  // Self-merge aliases buffer_ with the append target (the row count would
  // grow under the loop and Row(i) dangles on reallocation), so append from
  // a copy in that case.
  linalg::Matrix self_copy;
  const linalg::Matrix* rows = &other.buffer_;
  if (&other == this) {
    self_copy = buffer_;
    rows = &self_copy;
  }
  const double other_sq_frob = other.stream_sq_frob_;
  const double other_shrinkage = other.total_shrinkage_;
  const size_t n = rows->rows();
  for (size_t i = 0; i < n; ++i) {
    buffer_.AppendRow(rows->Row(i), dim_);
  }
  ShrinkIfNeeded();  // may bump total_shrinkage_, hence the snapshots above
  stream_sq_frob_ += other_sq_frob;
  total_shrinkage_ += other_shrinkage;
}

void FrequentDirections::ShrinkIfNeeded() {
  if (buffer_.rows() >= 2 * ell_) Shrink();
}

void FrequentDirections::Compress() {
  if (buffer_.rows() > ell_) Shrink();
}

void FrequentDirections::Shrink() {
  ++shrink_count_;
  linalg::RightSingular rs = linalg::RightSingularOf(buffer_);
  // Cutoff: the (ell+1)-th largest squared singular value (0 if the sketch
  // has rank <= ell already).
  const size_t d = rs.squared_sigma.size();
  const double delta = ell_ < d ? rs.squared_sigma[ell_] : 0.0;
  total_shrinkage_ += delta;

  linalg::Matrix next(0, 0);
  for (size_t i = 0; i < d && i < ell_; ++i) {
    const double lam = rs.squared_sigma[i] - delta;
    if (lam <= 0.0) break;  // eigenvalues are sorted descending
    const double scale = std::sqrt(lam);
    std::vector<double> row(dim_);
    for (size_t j = 0; j < dim_; ++j) row[j] = scale * rs.v(j, i);
    next.AppendRow(row);
  }
  if (next.rows() == 0) next = linalg::Matrix(0, dim_);
  buffer_ = std::move(next);
}

double FrequentDirections::SquaredNormAlong(
    const std::vector<double>& x) const {
  if (buffer_.rows() == 0) return 0.0;
  return buffer_.SquaredNormAlong(x);
}

}  // namespace sketch
}  // namespace dmt
