// Priority sampling [Duffield, Lund, Thorup, JACM 2007].
//
// For a weighted stream, each item gets priority rho = w / u with
// u ~ Unif(0,1]; the s items of highest priority form a without-replacement
// sample. With tau = (s+1)-th highest priority, assigning each sampled item
// the weight max(w, tau) makes every subset-sum estimate unbiased
// (E[sum] = true sum) with near-optimal variance.
//
// These classes implement the centralized samplers; the distributed
// protocols (hh::P3, matrix::MP3) reimplement the site/coordinator split
// with rounds and thresholds but share the estimate construction here.
#ifndef DMT_SKETCH_PRIORITY_SAMPLER_H_
#define DMT_SKETCH_PRIORITY_SAMPLER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace dmt {
namespace sketch {

/// One sampled stream item.
struct PriorityEntry {
  uint64_t element = 0;  // item id (or row index for matrix sampling)
  double weight = 0.0;   // original weight
  double priority = 0.0;
};

/// Given sampled entries *including* the threshold item (the smallest
/// priority in the pool, which acts as tau and is excluded from the
/// estimate), returns per-entry adjusted weights max(w_i, tau) for the
/// remaining entries, in the same order (threshold item removed).
///
/// `entries` must be non-empty; if it has a single entry the result is
/// empty (no estimate is possible).
std::vector<PriorityEntry> AdjustedSample(std::vector<PriorityEntry> entries);

/// Centralized priority sampler without replacement, sample size `s`.
class PrioritySamplerWoR {
 public:
  PrioritySamplerWoR(size_t s, uint64_t seed);

  /// Processes one weighted item (weight > 0).
  void Add(uint64_t element, double weight);

  /// Sampled entries with adjusted weights (unbiased subset-sum weights).
  std::vector<PriorityEntry> Sample() const;

  /// Unbiased estimate of the total stream weight.
  double EstimateTotalWeight() const;

  /// Unbiased estimate of the total weight of `element`.
  double EstimateElementWeight(uint64_t element) const;

  size_t s() const { return s_; }
  double true_total_weight() const { return total_weight_; }

 private:
  size_t s_;
  Rng rng_;
  // Pool of the s+1 highest-priority items seen (min at front via heap).
  std::vector<PriorityEntry> pool_;
  double total_weight_ = 0.0;
};

/// Centralized with-replacement sampler: `s` independent single-item
/// priority samplers, as in Section 4.3.1 of the paper.
class PrioritySamplerWR {
 public:
  PrioritySamplerWR(size_t s, uint64_t seed);

  void Add(uint64_t element, double weight);

  /// Estimated total weight: average of the per-sampler second-highest
  /// priorities (each is an unbiased estimator of W).
  double EstimateTotalWeight() const;

  /// Estimate of element's weight: (#samplers whose winner is `element`)
  /// / s * EstimateTotalWeight().
  double EstimateElementWeight(uint64_t element) const;

  size_t s() const { return s_; }

 private:
  struct Slot {
    PriorityEntry top;      // highest priority item
    double second_priority = 0.0;
  };

  size_t s_;
  Rng rng_;
  std::vector<Slot> slots_;
  double total_weight_ = 0.0;
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_PRIORITY_SAMPLER_H_
