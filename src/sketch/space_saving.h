// Weighted SpaceSaving summary [Metwally et al., TODS 2006].
//
// Unlike Misra-Gries (which undercounts), SpaceSaving overcounts:
//
//   0 <= Estimate(e) - W_e <= W / k.
//
// The paper suggests it to cap per-site memory in protocols P2 and P4; we
// provide it as a drop-in alternative summary and verify both bounds in
// tests.
#ifndef DMT_SKETCH_SPACE_SAVING_H_
#define DMT_SKETCH_SPACE_SAVING_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dmt {
namespace sketch {

/// Weighted SpaceSaving with `k` monitored elements.
class SpaceSaving {
 public:
  explicit SpaceSaving(size_t k);

  /// Processes one (element, weight) pair; weight must be >= 0.
  void Update(uint64_t element, double weight);

  /// Upper-bound estimate of element's weight. For untracked elements this
  /// is the current minimum counter (the standard SpaceSaving bound).
  double Estimate(uint64_t element) const;

  /// Overestimation bound for `element` (its epsilon field), 0 if exact.
  double ErrorBound(uint64_t element) const;

  /// All tracked (element, estimate) pairs, sorted by estimate descending.
  std::vector<std::pair<uint64_t, double>> Items() const;

  double total_weight() const { return total_weight_; }
  size_t k() const { return k_; }
  size_t size() const { return counts_.size(); }

 private:
  struct Entry {
    double count = 0.0;
    double error = 0.0;  // overestimate introduced when the slot was stolen
  };

  // Ordered multiset of (count, element) supports O(log k) min extraction.
  using Ordered = std::set<std::pair<double, uint64_t>>;

  size_t k_;
  std::unordered_map<uint64_t, Entry> counts_;
  Ordered ordered_;
  double total_weight_ = 0.0;
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_SPACE_SAVING_H_
