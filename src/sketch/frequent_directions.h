// Frequent Directions matrix sketch [Liberty, KDD 2013].
//
// Maintains a sketch B with at most `ell` rows such that for the stream
// matrix A (rows appended so far) and every unit vector x:
//
//   0 <= ||Ax||^2 - ||Bx||^2 <= ||A||_F^2 / (ell + 1).
//
// Implementation notes:
//  * We use the doubled-buffer ("fast FD") variant: rows accumulate in a
//    buffer of capacity 2*ell; when full, one shrink keeps <= ell rows.
//    Amortized update cost is O(d^2) per row.
//  * The shrink pipeline is allocation-free in steady state and
//    warm-started. The sketch owns a row buffer preallocated to 4*ell
//    rows (2*ell for the streaming path; the head-room absorbs Merge and
//    bulk-append spikes without reallocating) plus persistent d x d
//    Gram/eigen workspaces. Shrink() works at the Gram level: the
//    surviving rows of the previous shrink are exact scaled eigenvectors
//    of the retained rotation basis V, so their Gram is the diagonal
//    carried over from last time; only the rows appended since are
//    rotated into V (one blocked GEMM) and accumulated (one blocked
//    batched rank-1 pass). The cyclic Jacobi sweep then starts from an
//    already mostly-diagonal matrix — the warm start — instead of a cold
//    eigendecomposition from scratch, and the shrunk rows are rebuilt in
//    place in the same buffer.
//  * Shrinking at the Gram level (subtract the (ell+1)-th eigenvalue from
//    every eigenvalue, clamp at 0, rebuild rows as sqrt(lambda') * v^T)
//    is numerically equivalent to the SVD formulation in the paper;
//    tests/fd_shrink_test.cc pins the warm path against a cold
//    RightSingularOf reference.
//  * Sketches are mergeable [Agarwal et al. 2012]: Merge() bulk-appends
//    the other sketch's rows and lets one shrink re-compress; errors add,
//    so the combined sketch still satisfies the bound for A1 stacked on
//    A2. Protocol MP1 relies on this at the coordinator. AppendRows uses
//    the same bulk path: it fills the buffer to capacity before each
//    shrink, so a block of n rows costs ~n/(3*ell) shrinks instead of the
//    row-at-a-time n/ell.
#ifndef DMT_SKETCH_FREQUENT_DIRECTIONS_H_
#define DMT_SKETCH_FREQUENT_DIRECTIONS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dmt {
namespace sketch {

/// Streaming Frequent Directions sketch.
class FrequentDirections {
 public:
  /// `ell` >= 1: maximum rows retained after a shrink. `dim` may be 0 to
  /// infer the dimension from the first appended row.
  explicit FrequentDirections(size_t ell, size_t dim = 0);

  /// Sketch sized so the directional error is <= eps * ||A||_F^2
  /// (ell = ceil(1/eps), so ||A||_F^2/(ell+1) < eps * ||A||_F^2; eps > 0).
  static FrequentDirections WithEpsilon(double eps, size_t dim = 0);

  /// Appends one row of the stream matrix.
  void Append(const std::vector<double>& row);
  void Append(const double* row, size_t n);

  /// Appends every row of `rows` through the bulk path: the buffer fills
  /// to its full (4*ell) capacity between shrinks, amortizing one shrink
  /// over ~3*ell rows instead of the row-at-a-time ell. Self-alias with
  /// the sketch buffer is safe.
  void AppendRows(const linalg::Matrix& rows);

  /// Merges another FD sketch (same ell) into this one. Mergeability
  /// [Agarwal et al. 2012]: the errors add, so the combined sketch
  /// satisfies the class bound for A1 stacked on A2 with no loss over
  /// sketching the concatenated stream directly.
  void Merge(const FrequentDirections& other);

  /// Forces compression down to <= ell rows (a query-time convenience; the
  /// guarantee holds with or without the final shrink).
  void Compress();

  /// Current sketch rows (between ell and 2*ell rows; call Compress() first
  /// if a hard ell-row budget is required).
  const linalg::Matrix& sketch() const { return buffer_; }

  /// ‖Bx‖² for unit-vector queries (x length dim()). Guarantee: for the
  /// stream matrix A, 0 ≤ ‖Ax‖² − ‖Bx‖² ≤ total_shrinkage()
  ///                                     ≤ stream_squared_frobenius()/(ell+1).
  double SquaredNormAlong(const std::vector<double>& x) const;

  /// B^T B of the current sketch.
  linalg::Matrix Gram() const { return buffer_.Gram(); }

  /// Total squared Frobenius mass of all appended rows (i.e. ||A||_F^2).
  double stream_squared_frobenius() const { return stream_sq_frob_; }

  /// Sum of shrink cutoffs so far. The FD analysis guarantees that the
  /// directional undercount is between 0 and this value, and that it is at
  /// most stream_squared_frobenius() / (ell+1).
  double total_shrinkage() const { return total_shrinkage_; }

  size_t ell() const { return ell_; }
  size_t dim() const { return dim_; }
  size_t rows() const { return buffer_.rows(); }
  /// Number of shrink (eigendecomposition) events so far.
  size_t shrink_count() const { return shrink_count_; }

 private:
  /// Buffer capacity in rows: 2*ell for streaming plus head-room so the
  /// Merge/AppendRows bulk paths never reallocate.
  size_t BufferCapacityRows() const { return 4 * ell_; }

  /// One-time (per sketch) allocation of the shrink workspaces, deferred
  /// until the first shrink so short-lived sketches (e.g. the size-1
  /// blocks of SlidingWindowFD) stay tiny.
  void EnsureShrinkWorkspace();

  void ShrinkIfNeeded();
  void Shrink();

  size_t ell_;
  size_t dim_;
  linalg::Matrix buffer_;  // up to 2*ell_ rows between public calls
  double stream_sq_frob_ = 0.0;
  double total_shrinkage_ = 0.0;
  size_t shrink_count_ = 0;

  // --- persistent shrink pipeline state (see EnsureShrinkWorkspace) ---
  bool workspace_ready_ = false;
  // Leading buffer rows that are exact scaled eigenvectors of basis_
  // (buffer row i == sqrt(gram_work_(i,i)) * column i of basis_).
  size_t kept_rows_ = 0;
  linalg::Matrix basis_;       // d x d rotation carried across shrinks
  linalg::Matrix gram_work_;   // d x d rotated Gram (diagonal after shrink)
  linalg::Matrix basis_work_;  // d x d column-permutation scratch
  linalg::Matrix rotated_;     // new rows rotated into basis_ (<= 4*ell x d)
  std::vector<double> diag_;   // eigenvalue scratch
  std::vector<size_t> order_;  // descending sort permutation scratch
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_FREQUENT_DIRECTIONS_H_
