// Frequent Directions matrix sketch [Liberty, KDD 2013].
//
// Maintains a sketch B with at most `ell` rows such that for the stream
// matrix A (rows appended so far) and every unit vector x:
//
//   0 <= ||Ax||^2 - ||Bx||^2 <= ||A||_F^2 / (ell + 1).
//
// Implementation notes:
//  * We use the doubled-buffer ("fast FD") variant: rows accumulate in a
//    buffer of capacity 2*ell; when full, one shrink keeps <= ell rows.
//    Amortized update cost is O(d^2) per row for the Gram rank-1 updates
//    plus O(d^3 / ell) for the eigendecompositions.
//  * The shrink is performed at the Gram level: eigendecompose B^T B,
//    subtract the (ell+1)-th eigenvalue from all eigenvalues (clamped at
//    0), and rebuild rows as sqrt(lambda_i') * v_i^T. This is numerically
//    equivalent to the SVD formulation in the paper.
//  * Sketches are mergeable [Agarwal et al. 2012]: Merge() appends the
//    other sketch's rows and lets the shrink machinery re-compress; errors
//    add, so the combined sketch still satisfies the bound for A1 stacked
//    on A2. Protocol MP1 relies on this at the coordinator.
#ifndef DMT_SKETCH_FREQUENT_DIRECTIONS_H_
#define DMT_SKETCH_FREQUENT_DIRECTIONS_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dmt {
namespace sketch {

/// Streaming Frequent Directions sketch.
class FrequentDirections {
 public:
  /// `ell` >= 1: maximum rows retained after a shrink. `dim` may be 0 to
  /// infer the dimension from the first appended row.
  explicit FrequentDirections(size_t ell, size_t dim = 0);

  /// Sketch sized so the directional error is <= eps * ||A||_F^2.
  static FrequentDirections WithEpsilon(double eps, size_t dim = 0);

  /// Appends one row of the stream matrix.
  void Append(const std::vector<double>& row);
  void Append(const double* row, size_t n);

  /// Appends every row of `rows`.
  void AppendRows(const linalg::Matrix& rows);

  /// Merges another FD sketch (same ell) into this one.
  void Merge(const FrequentDirections& other);

  /// Forces compression down to <= ell rows (a query-time convenience; the
  /// guarantee holds with or without the final shrink).
  void Compress();

  /// Current sketch rows (between ell and 2*ell rows; call Compress() first
  /// if a hard ell-row budget is required).
  const linalg::Matrix& sketch() const { return buffer_; }

  /// ||B x||^2 for unit-vector queries.
  double SquaredNormAlong(const std::vector<double>& x) const;

  /// B^T B of the current sketch.
  linalg::Matrix Gram() const { return buffer_.Gram(); }

  /// Total squared Frobenius mass of all appended rows (i.e. ||A||_F^2).
  double stream_squared_frobenius() const { return stream_sq_frob_; }

  /// Sum of shrink cutoffs so far. The FD analysis guarantees that the
  /// directional undercount is between 0 and this value, and that it is at
  /// most stream_squared_frobenius() / (ell+1).
  double total_shrinkage() const { return total_shrinkage_; }

  size_t ell() const { return ell_; }
  size_t dim() const { return dim_; }
  size_t rows() const { return buffer_.rows(); }
  /// Number of shrink (eigendecomposition) events so far.
  size_t shrink_count() const { return shrink_count_; }

 private:
  void ShrinkIfNeeded();
  void Shrink();

  size_t ell_;
  size_t dim_;
  linalg::Matrix buffer_;  // up to 2*ell_ rows
  double stream_sq_frob_ = 0.0;
  double total_shrinkage_ = 0.0;
  size_t shrink_count_ = 0;
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_FREQUENT_DIRECTIONS_H_
