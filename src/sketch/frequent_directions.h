// Frequent Directions matrix sketch [Liberty, KDD 2013].
//
// Maintains a sketch B with at most `ell` rows such that for the stream
// matrix A (rows appended so far) and every unit vector x:
//
//   0 <= ||Ax||^2 - ||Bx||^2 <= ||A||_F^2 / (ell + 1).
//
// Implementation notes:
//  * We use the doubled-buffer ("fast FD") variant: rows accumulate in a
//    buffer of capacity 2*ell; when full, one shrink keeps <= ell rows.
//    Amortized update cost is O(d^2) per row.
//  * A shrink only ever needs the top ell+1 eigenpairs of the buffer's
//    Gram (the FD analysis [Liberty KDD'13; Ghashami & Phillips SODA'14]
//    depends only on delta = lambda_{ell+1} and the leading subspace).
//    The default shrink backend is therefore a thick-restart Lanczos
//    partial eigensolver (linalg/lanczos.h): whenever the buffer is
//    currently wider than tall (fewer rows than columns — always the
//    case when 4*ell < d, and for streaming 2*ell-row shrinks whenever
//    2*ell < d) it iterates directly on the rows — two GEMV-shaped
//    passes per matvec, never materializing the d x d Gram — and
//    otherwise on a persistent Gram workspace. The Krylov seed is
//    warm-started from the previous shrink's leading eigenvector. If a
//    solve ever fails its residual test (not observed in practice; see
//    lanczos_fallback_count) the shrink transparently reruns on the
//    Jacobi reference path.
//  * The full-spectrum Jacobi pipeline is kept as the reference backend
//    (set_shrink_backend / DMT_FD_BACKEND=jacobi): allocation-free and
//    warm-started, it keeps the surviving rows as exact scaled
//    eigenvectors of a retained rotation basis V so only rows appended
//    since the last shrink are rotated in (one blocked GEMM + one
//    blocked symmetric accumulation) before a warm cyclic Jacobi sweep.
//  * Both backends shrink at the Gram level (subtract the (ell+1)-th
//    eigenvalue from every kept eigenvalue, clamp at 0, rebuild rows as
//    sqrt(lambda') * v^T in place), numerically equivalent to the SVD
//    formulation in the paper; tests/fd_shrink_test.cc pins both against
//    a cold RightSingularOf reference and against each other.
//  * Sketches are mergeable [Agarwal et al. 2012]: Merge() bulk-appends
//    the other sketch's rows and lets one shrink re-compress; errors add,
//    so the combined sketch still satisfies the bound for A1 stacked on
//    A2. Protocol MP1 relies on this at the coordinator. AppendRows uses
//    the same bulk path: it fills the buffer to capacity before each
//    shrink, so a block of n rows costs ~n/(3*ell) shrinks instead of the
//    row-at-a-time n/ell.
#ifndef DMT_SKETCH_FREQUENT_DIRECTIONS_H_
#define DMT_SKETCH_FREQUENT_DIRECTIONS_H_

#include <cstddef>
#include <vector>

#include "linalg/lanczos.h"
#include "linalg/matrix.h"

namespace dmt {
namespace sketch {

/// Which eigensolver a FrequentDirections shrink uses.
enum class FdShrinkBackend {
  /// Thick-restart Lanczos, top ell+1 pairs only (the default fast path).
  kLanczos,
  /// Full-spectrum warm-started cyclic Jacobi (the reference path).
  kJacobi,
};

/// Streaming Frequent Directions sketch.
class FrequentDirections {
 public:
  /// `ell` >= 1: maximum rows retained after a shrink. `dim` may be 0 to
  /// infer the dimension from the first appended row.
  explicit FrequentDirections(size_t ell, size_t dim = 0);

  /// Sketch sized so the directional error is <= eps * ||A||_F^2
  /// (ell = ceil(1/eps), so ||A||_F^2/(ell+1) < eps * ||A||_F^2; eps > 0).
  static FrequentDirections WithEpsilon(double eps, size_t dim = 0);

  /// Appends one row of the stream matrix.
  void Append(const std::vector<double>& row);
  void Append(const double* row, size_t n);

  /// Appends every row of `rows` through the bulk path: the buffer fills
  /// to its full (4*ell) capacity between shrinks, amortizing one shrink
  /// over ~3*ell rows instead of the row-at-a-time ell. Self-alias with
  /// the sketch buffer is safe.
  void AppendRows(const linalg::Matrix& rows);

  /// Merges another FD sketch (same ell) into this one. Mergeability
  /// [Agarwal et al. 2012]: the errors add, so the combined sketch
  /// satisfies the class bound for A1 stacked on A2 with no loss over
  /// sketching the concatenated stream directly.
  void Merge(const FrequentDirections& other);

  /// Forces compression down to <= ell rows (a query-time convenience; the
  /// guarantee holds with or without the final shrink).
  void Compress();

  /// Current sketch rows (between ell and 2*ell rows; call Compress() first
  /// if a hard ell-row budget is required).
  const linalg::Matrix& sketch() const { return buffer_; }

  /// ‖Bx‖² for unit-vector queries (x length dim()). Guarantee: for the
  /// stream matrix A, 0 ≤ ‖Ax‖² − ‖Bx‖² ≤ total_shrinkage()
  ///                                     ≤ stream_squared_frobenius()/(ell+1).
  double SquaredNormAlong(const std::vector<double>& x) const;

  /// B^T B of the current sketch.
  linalg::Matrix Gram() const { return buffer_.Gram(); }

  /// Total squared Frobenius mass of all appended rows (i.e. ||A||_F^2).
  double stream_squared_frobenius() const { return stream_sq_frob_; }

  /// Sum of shrink cutoffs so far. The FD analysis guarantees that the
  /// directional undercount is between 0 and this value, and that it is at
  /// most stream_squared_frobenius() / (ell+1).
  double total_shrinkage() const { return total_shrinkage_; }

  size_t ell() const { return ell_; }
  size_t dim() const { return dim_; }
  size_t rows() const { return buffer_.rows(); }
  /// Number of shrink (eigendecomposition) events so far.
  size_t shrink_count() const { return shrink_count_; }

  /// Selects the shrink eigensolver. May be switched at any time — the
  /// Jacobi path cold-starts after a Lanczos shrink (its warm-start
  /// invariant no longer holds) and re-warms from there.
  void set_shrink_backend(FdShrinkBackend backend) { backend_ = backend; }
  FdShrinkBackend shrink_backend() const { return backend_; }
  /// Process-wide default backend: Lanczos unless DMT_FD_BACKEND=jacobi.
  static FdShrinkBackend DefaultShrinkBackend();
  /// Shrinks where the Lanczos solve missed its residual tolerance and
  /// the Jacobi reference path ran instead (expected 0; observability).
  size_t lanczos_fallback_count() const { return lanczos_fallbacks_; }

 private:
  /// Buffer capacity in rows: 2*ell for streaming plus head-room so the
  /// Merge/AppendRows bulk paths never reallocate.
  size_t BufferCapacityRows() const { return 4 * ell_; }

  /// One-time (per sketch) allocation of what every shrink needs:
  /// full-capacity buffer reservation and warm-seed storage. Shrink calls
  /// it first, so the shrink paths themselves are DMT_NO_ALLOC.
  void EnsureShrinkWorkspace();

  /// Lazily sizes the persistent d x d Gram workspace; only tall (n >= d)
  /// Lanczos shrinks ever need it, so it is not part of
  /// EnsureShrinkWorkspace.
  void EnsureLanczosGram();

  /// One-time (per sketch) allocation of the Jacobi-path workspaces,
  /// deferred until the first Jacobi shrink so Lanczos-backed sketches
  /// never pay for the three d x d matrices.
  void EnsureJacobiWorkspace();

  void ShrinkIfNeeded();
  void Shrink();
  /// Jacobi reference shrink (cold-starts when jacobi_warm_valid_ is
  /// false, e.g. right after a Lanczos shrink).
  void ShrinkJacobi();
  /// Lanczos partial shrink; returns false if the solve did not converge
  /// (caller then runs ShrinkJacobi on the untouched buffer).
  bool ShrinkLanczos();

  size_t ell_;
  size_t dim_;
  linalg::Matrix buffer_;  // up to 2*ell_ rows between public calls
  double stream_sq_frob_ = 0.0;
  double total_shrinkage_ = 0.0;
  size_t shrink_count_ = 0;
  FdShrinkBackend backend_;
  size_t lanczos_fallbacks_ = 0;

  // --- Lanczos backend state (allocated lazily on first use) ---
  linalg::LanczosSolver eigensolver_;
  std::vector<double> eigenvalues_;   // top ell+1, descending
  linalg::Matrix eigenvectors_;       // (ell+1) x d eigenvector rows
  std::vector<double> warm_seed_;     // previous shrink's leading vector
  bool warm_seed_valid_ = false;      // warm_seed_ holds a real eigenvector
  linalg::Matrix lanczos_gram_;       // d x d, only for tall (n >= d) shrinks

  // --- Jacobi backend state (see EnsureJacobiWorkspace) ---
  bool jacobi_ready_ = false;
  // True when the warm-start invariant holds: buffer rows [0, kept_rows_)
  // are exact scaled eigenvectors of basis_ with diagonal Gram stored in
  // gram_work_. A Lanczos shrink invalidates it.
  bool jacobi_warm_valid_ = false;
  size_t kept_rows_ = 0;
  linalg::Matrix basis_;       // d x d rotation carried across shrinks
  linalg::Matrix gram_work_;   // d x d rotated Gram (diagonal after shrink)
  linalg::Matrix basis_work_;  // d x d column-permutation scratch
  linalg::Matrix rotated_;     // new rows rotated into basis_ (<= 4*ell x d)
  std::vector<double> diag_;   // eigenvalue scratch
  std::vector<size_t> order_;  // descending sort permutation scratch
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_FREQUENT_DIRECTIONS_H_
