#include "sketch/sliding_window_fd.h"

#include "util/check.h"

namespace dmt {
namespace sketch {

SlidingWindowFD::SlidingWindowFD(size_t window, size_t ell)
    : window_(window), ell_(ell) {
  DMT_CHECK_GE(window, 1u);
  DMT_CHECK_GE(ell, 1u);
}

void SlidingWindowFD::Append(const std::vector<double>& row) {
  ++rows_seen_;
  Block b(FrequentDirections(ell_, row.size()));
  b.sketch.Append(row);
  b.rows = 1;
  b.newest = rows_seen_;
  blocks_.push_back(std::move(b));
  MergeAndExpire();
}

void SlidingWindowFD::MergeAndExpire() {
  // Merge from the back (newest, smallest blocks): whenever three blocks
  // of the same size-class exist, merge the two oldest of them. One pass
  // per append suffices because each append adds a single size-1 block.
  bool merged = true;
  while (merged) {
    merged = false;
    // Find three consecutive blocks of equal row count (the deque is
    // ordered oldest->newest with sizes non-increasing then 1s at back).
    for (size_t i = 0; i + 2 < blocks_.size(); ++i) {
      if (blocks_[i].rows == blocks_[i + 1].rows &&
          blocks_[i + 1].rows == blocks_[i + 2].rows) {
        // Merge blocks i and i+1 (the two oldest of the triple).
        blocks_[i].sketch.Merge(blocks_[i + 1].sketch);
        blocks_[i].rows += blocks_[i + 1].rows;
        blocks_[i].newest = blocks_[i + 1].newest;
        blocks_.erase(blocks_.begin() + static_cast<long>(i) + 1);
        merged = true;
        break;
      }
    }
  }
  // Expire blocks that no longer intersect the window.
  while (!blocks_.empty() &&
         blocks_.front().newest + window_ <= rows_seen_) {
    blocks_.pop_front();
  }
}

linalg::Matrix SlidingWindowFD::Sketch(bool include_straddling) const {
  linalg::Matrix out;
  bool first = true;
  for (const auto& b : blocks_) {
    if (first) {
      first = false;
      // The oldest block straddles the window boundary when its oldest
      // covered row (b.newest - b.rows + 1) has already expired. This is
      // well-defined for every block — including one anchored at row 1,
      // where newest == rows; an extra `newest > rows` guard here used to
      // make such a block never count as straddling, silently including
      // expired rows in the strict sketch (regression test:
      // SlidingWindowFdTest.StrictSketchExcludesFrontBlockAnchoredAtRowOne).
      const bool straddles =
          (b.newest - b.rows + 1) + window_ <= rows_seen_;
      if (straddles && !include_straddling) continue;
    }
    out.AppendRows(b.sketch.sketch());
  }
  return out;
}

linalg::Matrix SlidingWindowFD::Gram(bool include_straddling) const {
  return Sketch(include_straddling).Gram();
}

linalg::Matrix SlidingWindowFD::ExportSketch(bool include_straddling) const {
  linalg::Matrix out;
  size_t total_rows = 0;
  size_t cols = 0;
  bool skip_front = false;
  if (!blocks_.empty()) {
    const Block& front = blocks_.front();
    const bool straddles =
        (front.newest - front.rows + 1) + window_ <= rows_seen_;
    skip_front = straddles && !include_straddling;
  }
  for (size_t i = skip_front ? 1 : 0; i < blocks_.size(); ++i) {
    const linalg::Matrix& b = blocks_[i].sketch.sketch();
    total_rows += b.rows();
    if (cols == 0) cols = b.cols();
  }
  if (total_rows == 0) return out;
  // One exact-size allocation, then element-wise copies out of each block
  // buffer. AppendRows' raw-pointer overload copies eagerly, so nothing in
  // `out` aliases the deque's live FD buffers — the deep-copy contract the
  // pinning regression test enforces.
  out = linalg::Matrix(0, cols);
  out.ReserveRows(total_rows);
  for (size_t i = skip_front ? 1 : 0; i < blocks_.size(); ++i) {
    const linalg::Matrix& b = blocks_[i].sketch.sketch();
    if (b.rows() == 0) continue;
    out.AppendRows(b.Row(0), b.rows(), b.cols());
  }
  return out;
}

}  // namespace sketch
}  // namespace dmt
