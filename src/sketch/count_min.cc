#include "sketch/count_min.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/rng.h"

namespace dmt {
namespace sketch {

CountMin::CountMin(size_t depth, size_t width, uint64_t seed)
    : depth_(depth), width_(width), cells_(depth * width, 0.0) {
  DMT_CHECK_GE(depth, 1u);
  DMT_CHECK_GE(width, 1u);
  Rng rng(seed);
  hash_a_.resize(depth_);
  hash_b_.resize(depth_);
  for (size_t r = 0; r < depth_; ++r) {
    hash_a_[r] = rng.NextUint64() | 1ULL;  // multiplier must be odd
    hash_b_[r] = rng.NextUint64();
  }
}

CountMin CountMin::WithError(double eps, double delta, uint64_t seed) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_GT(delta, 0.0);
  size_t width = static_cast<size_t>(std::ceil(M_E / eps));
  size_t depth = static_cast<size_t>(std::ceil(std::log(1.0 / delta)));
  return CountMin(std::max<size_t>(depth, 1), width, seed);
}

size_t CountMin::CellIndex(size_t row, uint64_t element) const {
  // Multiply-shift universal hashing.
  uint64_t h = hash_a_[row] * element + hash_b_[row];
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h % width_);
}

void CountMin::Update(uint64_t element, double weight) {
  DMT_CHECK_GE(weight, 0.0);
  total_weight_ += weight;
  for (size_t r = 0; r < depth_; ++r) {
    cells_[r * width_ + CellIndex(r, element)] += weight;
  }
}

double CountMin::Estimate(uint64_t element) const {
  double est = cells_[CellIndex(0, element)];
  for (size_t r = 1; r < depth_; ++r) {
    est = std::min(est, cells_[r * width_ + CellIndex(r, element)]);
  }
  return est;
}

void CountMin::Merge(const CountMin& other) {
  DMT_CHECK_EQ(depth_, other.depth_);
  DMT_CHECK_EQ(width_, other.width_);
  DMT_CHECK_EQ(hash_a_[0], other.hash_a_[0]);  // same seed family
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_weight_ += other.total_weight_;
}

}  // namespace sketch
}  // namespace dmt
