#include "sketch/priority_sampler.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dmt {
namespace sketch {
namespace {

// Min-heap on priority.
bool HeapGreater(const PriorityEntry& a, const PriorityEntry& b) {
  return a.priority > b.priority;
}

}  // namespace

std::vector<PriorityEntry> AdjustedSample(std::vector<PriorityEntry> entries) {
  if (entries.size() <= 1) return {};
  auto min_it =
      std::min_element(entries.begin(), entries.end(),
                       [](const PriorityEntry& a, const PriorityEntry& b) {
                         return a.priority < b.priority;
                       });
  const double tau = min_it->priority;
  entries.erase(min_it);
  for (auto& e : entries) e.weight = std::max(e.weight, tau);
  return entries;
}

PrioritySamplerWoR::PrioritySamplerWoR(size_t s, uint64_t seed)
    : s_(s), rng_(seed) {
  DMT_CHECK_GE(s, 1u);
  pool_.reserve(s + 2);
}

void PrioritySamplerWoR::Add(uint64_t element, double weight) {
  DMT_CHECK_GT(weight, 0.0);
  total_weight_ += weight;
  PriorityEntry e{element, weight, weight / rng_.NextDoublePositive()};
  if (pool_.size() < s_ + 1) {
    pool_.push_back(e);
    std::push_heap(pool_.begin(), pool_.end(), HeapGreater);
    return;
  }
  if (e.priority <= pool_.front().priority) return;
  std::pop_heap(pool_.begin(), pool_.end(), HeapGreater);
  pool_.back() = e;
  std::push_heap(pool_.begin(), pool_.end(), HeapGreater);
}

std::vector<PriorityEntry> PrioritySamplerWoR::Sample() const {
  // Before the pool fills (fewer than s+1 items seen) the sample is exact:
  // every item is present with its true weight.
  if (pool_.size() <= s_) return pool_;
  return AdjustedSample(pool_);
}

double PrioritySamplerWoR::EstimateTotalWeight() const {
  double sum = 0.0;
  for (const auto& e : Sample()) sum += e.weight;
  return sum;
}

double PrioritySamplerWoR::EstimateElementWeight(uint64_t element) const {
  double sum = 0.0;
  for (const auto& e : Sample()) {
    if (e.element == element) sum += e.weight;
  }
  return sum;
}

PrioritySamplerWR::PrioritySamplerWR(size_t s, uint64_t seed)
    : s_(s), rng_(seed), slots_(s) {
  DMT_CHECK_GE(s, 1u);
}

void PrioritySamplerWR::Add(uint64_t element, double weight) {
  DMT_CHECK_GT(weight, 0.0);
  total_weight_ += weight;
  for (auto& slot : slots_) {
    const double rho = weight / rng_.NextDoublePositive();
    if (rho > slot.top.priority) {
      slot.second_priority = slot.top.priority;
      slot.top = PriorityEntry{element, weight, rho};
    } else if (rho > slot.second_priority) {
      slot.second_priority = rho;
    }
  }
}

double PrioritySamplerWR::EstimateTotalWeight() const {
  // E[second-highest priority] = W for each independent sampler.
  double sum = 0.0;
  size_t live = 0;
  for (const auto& slot : slots_) {
    if (slot.top.priority > 0.0) {
      sum += slot.second_priority;
      ++live;
    }
  }
  return live == 0 ? 0.0 : sum / static_cast<double>(live);
}

double PrioritySamplerWR::EstimateElementWeight(uint64_t element) const {
  const double what = EstimateTotalWeight();
  size_t hits = 0;
  size_t live = 0;
  for (const auto& slot : slots_) {
    if (slot.top.priority > 0.0) {
      ++live;
      if (slot.top.element == element) ++hits;
    }
  }
  if (live == 0) return 0.0;
  return what * static_cast<double>(hits) / static_cast<double>(live);
}

}  // namespace sketch
}  // namespace dmt
