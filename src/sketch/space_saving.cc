#include "sketch/space_saving.h"

#include "util/check.h"

namespace dmt {
namespace sketch {

SpaceSaving::SpaceSaving(size_t k) : k_(k) { DMT_CHECK_GE(k, 1u); }

void SpaceSaving::Update(uint64_t element, double weight) {
  DMT_CHECK_GE(weight, 0.0);
  if (weight == 0.0) return;
  total_weight_ += weight;

  auto it = counts_.find(element);
  if (it != counts_.end()) {
    ordered_.erase({it->second.count, element});
    it->second.count += weight;
    ordered_.insert({it->second.count, element});
    return;
  }
  if (counts_.size() < k_) {
    counts_[element] = Entry{weight, 0.0};
    ordered_.insert({weight, element});
    return;
  }
  // Steal the slot of the minimum-count element; the evicted count becomes
  // the new element's overestimation error.
  auto min_it = ordered_.begin();
  const double min_count = min_it->first;
  const uint64_t victim = min_it->second;
  ordered_.erase(min_it);
  counts_.erase(victim);
  counts_[element] = Entry{min_count + weight, min_count};
  ordered_.insert({min_count + weight, element});
}

double SpaceSaving::Estimate(uint64_t element) const {
  auto it = counts_.find(element);
  if (it != counts_.end()) return it->second.count;
  // Untracked element: its weight is at most the minimum counter.
  return ordered_.empty() ? 0.0 : ordered_.begin()->first;
}

double SpaceSaving::ErrorBound(uint64_t element) const {
  auto it = counts_.find(element);
  if (it != counts_.end()) return it->second.error;
  return ordered_.empty() ? 0.0 : ordered_.begin()->first;
}

std::vector<std::pair<uint64_t, double>> SpaceSaving::Items() const {
  std::vector<std::pair<uint64_t, double>> out;
  out.reserve(counts_.size());
  for (auto it = ordered_.rbegin(); it != ordered_.rend(); ++it) {
    out.emplace_back(it->second, it->first);
  }
  return out;
}

}  // namespace sketch
}  // namespace dmt
