// Weighted Misra-Gries frequency summary (deterministic, mergeable).
//
// The classic MG algorithm [Misra & Gries 1982] keeps k counters and on
// overflow decrements all counters by the minimum. The weighted variant
// here follows the mergeable-summaries formulation [Agarwal et al., PODS
// 2012]: counters absorb arbitrary positive weights, and compaction
// subtracts the (k+1)-th largest counter value from everyone. Guarantee:
//
//   0 <= W_e - Estimate(e) <= W / (k+1)
//
// where W is the total weight processed (plus merged). Merging two
// summaries with the same k keeps the guarantee relative to the combined
// weight, which is exactly the property protocol P1 needs at the
// coordinator.
#ifndef DMT_SKETCH_MISRA_GRIES_H_
#define DMT_SKETCH_MISRA_GRIES_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace dmt {
namespace sketch {

/// Weighted Misra-Gries summary with `k` counters.
class WeightedMisraGries {
 public:
  /// `k` >= 1 is the number of counters retained after compaction.
  explicit WeightedMisraGries(size_t k);

  /// Summary sized for additive error `eps * W`: k = ceil(1/eps).
  static WeightedMisraGries WithEpsilon(double eps);

  /// Processes one (element, weight) pair; weight must be >= 0.
  void Update(uint64_t element, double weight);

  /// Lower-bound estimate of element's total weight (0 if untracked).
  double Estimate(uint64_t element) const;

  /// Merges another summary (same k) into this one.
  void Merge(const WeightedMisraGries& other);

  /// All currently tracked (element, estimate) pairs.
  std::vector<std::pair<uint64_t, double>> Items() const;

  /// Total weight processed (including merged-in weight).
  double total_weight() const { return total_weight_; }

  /// Sum of all compaction decrements so far; the worst-case undercount of
  /// any single element. Always <= total_weight() / (k+1).
  double total_decrement() const { return total_decrement_; }

  size_t k() const { return k_; }

  /// Number of live counters (<= 2k between compactions).
  size_t size() const { return counters_.size(); }

  /// Drops all state (counters and weight tallies).
  void Clear();

  /// Replaces all state with a deserialized snapshot (wire transport,
  /// net/messages.h): the exact counter set plus the weight tallies. The
  /// counter budget k is unchanged; `counters` must hold at most 2k live
  /// entries with positive weights (what Items() of a valid summary
  /// yields). The rebuilt summary merges bit-identically to the original —
  /// keyed accumulation and compaction depend only on the counter
  /// multiset, never on map iteration order.
  void RestoreState(double total_weight, double total_decrement,
                    const std::vector<std::pair<uint64_t, double>>& counters);

 private:
  void CompactIfNeeded();

  size_t k_;
  std::unordered_map<uint64_t, double> counters_;
  double total_weight_ = 0.0;
  double total_decrement_ = 0.0;
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_MISRA_GRIES_H_
