// Count-Min sketch [Cormode & Muthukrishnan 2005].
//
// Included as the randomized, hash-based contrast to Misra-Gries that the
// paper mentions in Section 3; it is exercised by tests and the micro
// benches but the protocols themselves use the deterministic summaries.
#ifndef DMT_SKETCH_COUNT_MIN_H_
#define DMT_SKETCH_COUNT_MIN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmt {
namespace sketch {

/// Count-Min sketch with `depth` rows and `width` cells per row.
///
/// Guarantees (with prob. 1 - delta, depth = ceil(ln 1/delta)):
///   W_e <= Estimate(e) <= W_e + (e/width) * W.
class CountMin {
 public:
  CountMin(size_t depth, size_t width, uint64_t seed = 1);

  /// Sketch sized for additive error eps*W with failure prob delta.
  static CountMin WithError(double eps, double delta, uint64_t seed = 1);

  /// Adds `weight` (>= 0) to element's cells.
  void Update(uint64_t element, double weight);

  /// Point query: min over the element's cells (never an underestimate).
  double Estimate(uint64_t element) const;

  /// Merges another sketch with identical shape and seed.
  void Merge(const CountMin& other);

  double total_weight() const { return total_weight_; }
  size_t depth() const { return depth_; }
  size_t width() const { return width_; }

 private:
  size_t CellIndex(size_t row, uint64_t element) const;

  size_t depth_;
  size_t width_;
  std::vector<uint64_t> hash_a_;  // per-row multipliers (odd)
  std::vector<uint64_t> hash_b_;
  std::vector<double> cells_;  // depth_ * width_
  double total_weight_ = 0.0;
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_COUNT_MIN_H_
