// Sliding-window Frequent Directions.
//
// The paper's conclusion names the sliding-window model as an open
// extension: track |‖A_W x‖² − ‖Bx‖²| ≤ ε‖A_W‖²_F where A_W holds only
// the most recent `window` rows. This module implements the classic
// logarithmic-merging (exponential histogram / DGIM-style) construction on
// top of mergeable FD sketches:
//
//  * incoming rows start as size-1 blocks, each carrying an FD sketch;
//  * when more than two blocks of one size exist, the two oldest merge
//    into a block of twice the size (FD sketches are mergeable, so the
//    merged sketch covers the union with the same ε);
//  * blocks that fall entirely outside the window are dropped.
//
// The query sketch covers every row in the window except possibly those in
// the single oldest (straddling) block, whose size is at most half the
// window; this is the standard count-based sliding-window approximation:
//
//   rows covered ∈ [window − oldest_block_size, window].
//
// Space: O((1/ε) log(window)) sketch rows.
#ifndef DMT_SKETCH_SLIDING_WINDOW_FD_H_
#define DMT_SKETCH_SLIDING_WINDOW_FD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "linalg/matrix.h"
#include "sketch/frequent_directions.h"

namespace dmt {
namespace sketch {

/// Count-based sliding-window Frequent Directions sketch.
class SlidingWindowFD {
 public:
  /// Tracks (approximately) the last `window` rows with per-block FD
  /// sketches of `ell` rows each.
  SlidingWindowFD(size_t window, size_t ell);

  /// Appends one row of the stream.
  void Append(const std::vector<double>& row);

  /// Sketch covering the current window (all live blocks merged).
  /// The straddling block is included, so the covered range is
  /// [window, window + oldest_block_size); callers preferring the
  /// conservative side can pass include_straddling = false.
  linalg::Matrix Sketch(bool include_straddling = true) const;

  /// B^T B of Sketch().
  linalg::Matrix Gram(bool include_straddling = true) const;

  /// Deep-copied owning snapshot of Sketch(include_straddling) for the
  /// serving layer (serve::BuildWindowedSnapshot). Contract: the returned
  /// matrix owns every element — one exact-size allocation, nothing
  /// aliasing the live block buffers — so a pinned snapshot stays
  /// bit-identical across subsequent Append() calls (merges, expiries,
  /// shrinks). Regression-pinned by tests/sliding_window_fd_test.cc.
  linalg::Matrix ExportSketch(bool include_straddling = true) const;

  /// Rows appended so far (stream position).
  uint64_t rows_seen() const { return rows_seen_; }

  /// Number of live blocks (O(log window)).
  size_t block_count() const { return blocks_.size(); }

  /// Rows covered by the oldest live block (the approximation slack).
  size_t oldest_block_rows() const {
    return blocks_.empty() ? 0 : blocks_.front().rows;
  }

  size_t window() const { return window_; }
  size_t ell() const { return ell_; }

 private:
  struct Block {
    explicit Block(FrequentDirections s) : sketch(std::move(s)) {}
    FrequentDirections sketch;
    size_t rows = 0;        // stream rows covered
    uint64_t newest = 0;    // stream index of the newest covered row
  };

  void MergeAndExpire();

  size_t window_;
  size_t ell_;
  uint64_t rows_seen_ = 0;
  // Oldest block at the front; sizes (roughly) decrease front to back.
  std::deque<Block> blocks_;
};

}  // namespace sketch
}  // namespace dmt

#endif  // DMT_SKETCH_SLIDING_WINDOW_FD_H_
