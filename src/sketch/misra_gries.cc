#include "sketch/misra_gries.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dmt {
namespace sketch {

WeightedMisraGries::WeightedMisraGries(size_t k) : k_(k) {
  DMT_CHECK_GE(k, 1u);
  counters_.reserve(2 * k + 1);
}

WeightedMisraGries WeightedMisraGries::WithEpsilon(double eps) {
  DMT_CHECK_GT(eps, 0.0);
  return WeightedMisraGries(static_cast<size_t>(std::ceil(1.0 / eps)));
}

void WeightedMisraGries::Update(uint64_t element, double weight) {
  DMT_CHECK_GE(weight, 0.0);
  if (weight == 0.0) return;
  total_weight_ += weight;
  counters_[element] += weight;
  CompactIfNeeded();
}

void WeightedMisraGries::CompactIfNeeded() {
  // Amortization: let the map grow to 2k, then do one O(k) compaction that
  // subtracts the (k+1)-th largest value. This preserves the classic MG
  // error bound (each compaction's decrement delta is "paid for" by at
  // least (k+1) counters each losing delta).
  if (counters_.size() <= 2 * k_) return;
  std::vector<double> values;
  values.reserve(counters_.size());
  // dmt-lint: allow(determinism-unordered-iter): order-independent fold —
  // nth_element's result does not depend on the order values were collected.
  for (const auto& [e, v] : counters_) values.push_back(v);
  // delta = (k+1)-th largest value.
  std::nth_element(values.begin(), values.begin() + k_, values.end(),
                   std::greater<double>());
  const double delta = values[k_];
  total_decrement_ += delta;
  // dmt-lint: allow(determinism-unordered-iter): each counter is updated
  // exactly once with the same delta; the result set is order-independent.
  for (auto it = counters_.begin(); it != counters_.end();) {
    it->second -= delta;
    if (it->second <= 0.0) {
      it = counters_.erase(it);
    } else {
      ++it;
    }
  }
  DMT_CHECK_LE(counters_.size(), k_);
}

double WeightedMisraGries::Estimate(uint64_t element) const {
  auto it = counters_.find(element);
  return it == counters_.end() ? 0.0 : it->second;
}

void WeightedMisraGries::Merge(const WeightedMisraGries& other) {
  DMT_CHECK_EQ(k_, other.k_);
  total_weight_ += other.total_weight_;
  total_decrement_ += other.total_decrement_;
  // dmt-lint: allow(determinism-unordered-iter): keyed accumulation — each
  // key's final value is independent of the iteration order.
  for (const auto& [e, v] : other.counters_) {
    counters_[e] += v;
  }
  // One compaction pass restores the size invariant; the merged summary's
  // error is the sum of the two inputs' errors plus this decrement, which
  // stays within (W1+W2)/(k+1) by the mergeable-summaries analysis.
  if (counters_.size() > k_) {
    std::vector<double> values;
    values.reserve(counters_.size());
    // dmt-lint: allow(determinism-unordered-iter): order-independent fold
    // feeding nth_element; see CompactIfNeeded.
    for (const auto& [e, v] : counters_) values.push_back(v);
    if (values.size() > k_) {
      std::nth_element(values.begin(), values.begin() + k_, values.end(),
                       std::greater<double>());
      const double delta = values[k_];
      if (delta > 0.0) {
        total_decrement_ += delta;
        // dmt-lint: allow(determinism-unordered-iter): uniform per-counter
        // decrement; the surviving set is order-independent.
        for (auto it = counters_.begin(); it != counters_.end();) {
          it->second -= delta;
          if (it->second <= 0.0) {
            it = counters_.erase(it);
          } else {
            ++it;
          }
        }
      }
    }
  }
}

std::vector<std::pair<uint64_t, double>> WeightedMisraGries::Items() const {
  // dmt-lint: allow(determinism-unordered-iter): drained into a vector and
  // totally ordered below (weight desc, element id asc as a tie-break).
  std::vector<std::pair<uint64_t, double>> out(counters_.begin(),
                                               counters_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void WeightedMisraGries::Clear() {
  counters_.clear();
  total_weight_ = 0.0;
  total_decrement_ = 0.0;
}

void WeightedMisraGries::RestoreState(
    double total_weight, double total_decrement,
    const std::vector<std::pair<uint64_t, double>>& counters) {
  DMT_CHECK_LE(counters.size(), 2 * k_);
  counters_.clear();
  for (const auto& [element, weight] : counters) {
    counters_[element] = weight;
  }
  total_weight_ = total_weight;
  total_decrement_ = total_decrement;
}

}  // namespace sketch
}  // namespace dmt
