#include "stream/site_schedule.h"

#include <algorithm>
#include <limits>

#include "util/check.h"

namespace dmt {
namespace stream {

void WindowPlan::Reset(size_t num_sites) {
  DMT_CHECK_LE(num_sites, std::numeric_limits<uint32_t>::max());
  num_sites_ = num_sites;
  // Fresh epoch space: zero-fill once so stale stamps from a previous Run
  // (with a different site count) can never alias epoch 0.
  last_epoch_.assign(num_sites, 0);
  slot_.assign(num_sites, 0);
  epoch_ = 0;
  active_.clear();
  offsets_.clear();
  idx_.clear();
  fill_.clear();
}

void WindowPlan::Build(const size_t* sites, size_t count) {
  DMT_CHECK_LE(count, std::numeric_limits<uint32_t>::max());
  // Epoch 0 is the "never seen" stamp of a fresh Reset(); on wraparound,
  // re-clear instead of aliasing it.
  if (++epoch_ == 0) {
    std::fill(last_epoch_.begin(), last_epoch_.end(), 0u);
    epoch_ = 1;
  }

  // Pass 1: discover the active sites of this window.
  active_.clear();
  for (size_t i = 0; i < count; ++i) {
    const size_t s = sites[i];
    DMT_CHECK_LT(s, num_sites_);
    if (last_epoch_[s] != epoch_) {
      last_epoch_[s] = epoch_;
      active_.push_back(static_cast<uint32_t>(s));
    }
  }
  // Ascending site ids: workers then claim contiguous *site* ranges
  // (cache-dense walks of the protocols' per-site arrays) and the
  // coordinator's pending-list merge stays in drain order.
  std::sort(active_.begin(), active_.end());

  const size_t k = active_.size();
  for (size_t p = 0; p < k; ++p) slot_[active_[p]] = static_cast<uint32_t>(p);

  // Pass 2: per-site arrival counts -> CSR offsets.
  offsets_.assign(k + 1, 0);
  for (size_t i = 0; i < count; ++i) ++offsets_[slot_[sites[i]] + 1];
  for (size_t p = 0; p < k; ++p) offsets_[p + 1] += offsets_[p];

  // Pass 3: flatten arrival indices, stream order within each site.
  idx_.resize(count);
  fill_.assign(offsets_.begin(), offsets_.end() - 1);
  for (size_t i = 0; i < count; ++i) {
    idx_[fill_[slot_[sites[i]]]++] = static_cast<uint32_t>(i);
  }
}

size_t ReservationBatchSize(size_t active_sites, size_t lanes,
                            size_t override_size) {
  if (override_size > 0) return override_size;
  if (lanes <= 1) return active_sites == 0 ? 1 : active_sites;
  // ~4 reservations per lane: big contiguous ranges (claim cost and cache
  // traffic amortized over many sites) while still letting a lane that
  // drew light sites steal more work.
  return std::max<size_t>(1, active_sites / (lanes * 4));
}

}  // namespace stream
}  // namespace dmt
