#include "stream/simulation_driver.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <thread>

#include "util/check.h"
#include "util/env.h"

namespace dmt {
namespace stream {
namespace {

// Payload dispatch: the driver schedule is identical for both protocol
// families; only the SiteUpdate signature differs.
inline void ApplyItem(hh::HeavyHitterProtocol* p, size_t site,
                      const WeightedUpdate& item) {
  p->SiteUpdate(site, item.element, item.weight);
}

inline void ApplyItem(matrix::MatrixTrackingProtocol* p, size_t site,
                      const std::vector<double>& row) {
  p->SiteUpdate(site, row);
}

}  // namespace

namespace {

// Full-consumption parse (like GetEnvInt): "12abc", "", and negatives are
// rejected with a warning rather than silently becoming a number — a bad
// --chunk value would otherwise silently run a very different schedule.
size_t ParseSizeValueOr(const char* flag, const char* value,
                        size_t fallback) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr, "warning: ignoring %s=%s (not a non-negative "
                 "integer); using %zu\n", flag, value, fallback);
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

}  // namespace

size_t ParseSizeArg(int argc, char** argv, const char* flag,
                    size_t fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, flag) == 0 && i + 1 < argc) {
      return ParseSizeValueOr(flag, argv[i + 1], fallback);
    }
    if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
      return ParseSizeValueOr(flag, arg + flag_len + 1, fallback);
    }
  }
  return fallback;
}

size_t ParseThreadsArg(int argc, char** argv) {
  return ParseSizeArg(argc, argv, "--threads", 0);
}

size_t ParseChunkArg(int argc, char** argv, size_t fallback) {
  return ParseSizeArg(argc, argv, "--chunk", fallback);
}

size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  const int64_t env = GetEnvInt("DMT_THREADS", 0);
  if (env > 0) return static_cast<size_t>(env);
  // Thread count only sizes the worker pool; RunImpl's chunk schedule and
  // coordinator drain order are fixed regardless of pool size, so protocol
  // state and messages are identical for any count (covered by
  // parallel_determinism_test).
  // dmt-lint: allow(determinism-thread-fp): pool sizing only, see above.
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

std::vector<size_t> AssignSites(Router* router, size_t n) {
  std::vector<size_t> sites(n);
  for (size_t i = 0; i < n; ++i) sites[i] = router->NextSite();
  return sites;
}

std::vector<size_t> WindowEnds(size_t n, size_t chunk_elements,
                               size_t num_sites) {
  std::vector<size_t> ends;
  if (n == 0) return ends;
  const size_t chunk = std::max<size_t>(1, chunk_elements);
  // Bootstrap round: protocols start with a zero broadcast value (W-hat /
  // F-hat / tau), which makes every site threshold 0 until the first
  // Synchronize. A full chunk at threshold 0 would send one message per
  // arrival; a short first round (~one arrival per site) bounds that
  // bootstrap traffic to O(num_sites) messages. Part of the fixed
  // schedule, so determinism across thread counts is unaffected.
  const size_t bootstrap = std::min(chunk, std::max<size_t>(1, num_sites));
  size_t begin = 0;
  while (begin < n) {
    const size_t end = std::min(n, begin + (begin == 0 ? bootstrap : chunk));
    ends.push_back(end);
    begin = end;
  }
  return ends;
}

SimulationDriver::SimulationDriver(const SimulationOptions& options)
    : options_(options), threads_(ResolveThreadCount(options.threads)) {
  if (options_.chunk_elements == 0) options_.chunk_elements = 1;
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
}

SimulationDriver::~SimulationDriver() = default;

template <typename Protocol, typename Item>
void SimulationDriver::RunImpl(Protocol* protocol,
                               const std::vector<size_t>& sites,
                               const std::vector<Item>& items,
                               bool concurrent) {
  DMT_CHECK_EQ(sites.size(), items.size());
  const size_t n = items.size();
  if (n == 0) return;
  DMT_CHECK_LE(n, std::numeric_limits<uint32_t>::max());

  // Partition: per-site arrival index lists, in stream order.
  size_t num_sites = 0;
  for (size_t s : sites) num_sites = std::max(num_sites, s + 1);
  std::vector<std::vector<uint32_t>> per_site(num_sites);
  for (size_t i = 0; i < n; ++i) {
    per_site[sites[i]].push_back(static_cast<uint32_t>(i));
  }

  // cursor[s]: next unprocessed position in per_site[s]. Each entry is
  // written only by site s's task within a chunk.
  std::vector<size_t> cursor(num_sites, 0);
  const auto advance_site = [&](size_t s, size_t end) {
    const std::vector<uint32_t>& idx = per_site[s];
    size_t c = cursor[s];
    while (c < idx.size() && idx[c] < end) {
      ApplyItem(protocol, s, items[idx[c]]);
      ++c;
    }
    cursor[s] = c;
  };

  // The window schedule (bootstrap + full chunks) is shared with the wire
  // transport via WindowEnds — see its comment for the bootstrap rationale.
  std::vector<std::future<void>> futures;
  for (const size_t end :
       WindowEnds(n, options_.chunk_elements, num_sites)) {
    if (concurrent && pool_ != nullptr) {
      futures.clear();
      for (size_t s = 0; s < num_sites; ++s) {
        // Skip sites with no arrivals in this window: no task, no state
        // touched — exactly what the serial loop does.
        const std::vector<uint32_t>& idx = per_site[s];
        if (cursor[s] >= idx.size() || idx[cursor[s]] >= end) continue;
        futures.push_back(
            pool_->Submit([&advance_site, s, end] { advance_site(s, end); }));
      }
      // The pool barrier: site work of this chunk happens-before the
      // coordinator drain below (and before any aggregate stats read).
      // Every future is awaited even when one throws — unwinding early
      // would destroy cursor/per_site while sibling tasks still use them.
      std::exception_ptr first_error;
      for (auto& f : futures) {
        try {
          f.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    } else {
      for (size_t s = 0; s < num_sites; ++s) advance_site(s, end);
    }
    protocol->Synchronize();
  }
}

void SimulationDriver::Run(hh::HeavyHitterProtocol* protocol,
                           const std::vector<size_t>& sites,
                           const std::vector<WeightedUpdate>& items) {
  RunImpl(protocol, sites, items,
          protocol->SupportsConcurrentSiteUpdates());
}

void SimulationDriver::Run(matrix::MatrixTrackingProtocol* protocol,
                           const std::vector<size_t>& sites,
                           const std::vector<std::vector<double>>& rows) {
  RunImpl(protocol, sites, rows,
          protocol->SupportsConcurrentSiteUpdates());
}

size_t SimulationDriver::Run(matrix::MatrixTrackingProtocol* protocol,
                             Router* router, data::DatasetSource* source,
                             size_t max_rows) {
  DMT_CHECK(router != nullptr);
  DMT_CHECK(source != nullptr);
  // An unbounded source (synthetic with no row budget) never returns a
  // short chunk, so "feed until exhaustion" would not terminate.
  DMT_CHECK(max_rows > 0 || source->info().rows > 0);

  const size_t num_sites = router->num_sites();
  const bool concurrent =
      protocol->SupportsConcurrentSiteUpdates() && pool_ != nullptr;
  const size_t chunk = options_.chunk_elements;
  // Same bootstrap rationale as RunImpl: a short first round bounds the
  // zero-threshold startup traffic to O(num_sites). RunImpl derives
  // num_sites from the materialized assignment (max site + 1); here the
  // router declares it up front — identical once every site receives at
  // least one arrival.
  const size_t bootstrap = std::min(chunk, num_sites);

  linalg::Matrix window;                       // rows of the current window
  std::vector<size_t> sites;                   // site of window row i
  std::vector<std::vector<uint32_t>> per_site(num_sites);
  std::vector<std::future<void>> futures;
  size_t fed = 0;
  bool first = true;
  while (max_rows == 0 || fed < max_rows) {
    size_t want = first ? bootstrap : chunk;
    if (max_rows != 0) want = std::min(want, max_rows - fed);
    window.ClearRows();
    const size_t got = source->NextChunk(want, &window);
    if (got == 0) break;
    DMT_CHECK_LE(got, std::numeric_limits<uint32_t>::max());

    sites.resize(got);
    for (auto& list : per_site) list.clear();
    for (size_t i = 0; i < got; ++i) {
      sites[i] = router->NextSite();
      DMT_CHECK_LT(sites[i], num_sites);
      per_site[sites[i]].push_back(static_cast<uint32_t>(i));
    }

    // Site phase: within the window each site processes exactly its
    // arrivals in stream order, touching only per-site state — the same
    // contract as RunImpl's chunk loop.
    const auto run_site = [&](size_t s) {
      std::vector<double> site_row(window.cols());
      for (uint32_t i : per_site[s]) {
        std::memcpy(site_row.data(), window.Row(i),
                    window.cols() * sizeof(double));
        protocol->SiteUpdate(s, site_row);
      }
    };
    if (concurrent) {
      futures.clear();
      for (size_t s = 0; s < num_sites; ++s) {
        if (per_site[s].empty()) continue;
        futures.push_back(pool_->Submit([&run_site, s] { run_site(s); }));
      }
      // Await every task even when one throws (see RunImpl).
      std::exception_ptr first_error;
      for (auto& f : futures) {
        try {
          f.get();
        } catch (...) {
          if (!first_error) first_error = std::current_exception();
        }
      }
      if (first_error) std::rethrow_exception(first_error);
    } else {
      for (size_t s = 0; s < num_sites; ++s) {
        if (!per_site[s].empty()) run_site(s);
      }
    }
    protocol->Synchronize();
    fed += got;
    first = false;
  }
  return fed;
}

}  // namespace stream
}  // namespace dmt
