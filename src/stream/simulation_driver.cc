#include "stream/simulation_driver.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

#include "util/check.h"
#include "util/env.h"

namespace dmt {
namespace stream {
namespace {

// Payload dispatch: the driver schedule is identical for both protocol
// families; only the SiteUpdate signature differs.
inline void ApplyItem(hh::HeavyHitterProtocol* p, size_t site,
                      const WeightedUpdate& item) {
  p->SiteUpdate(site, item.element, item.weight);
}

inline void ApplyItem(matrix::MatrixTrackingProtocol* p, size_t site,
                      const std::vector<double>& row) {
  p->SiteUpdate(site, row);
}

// Full-consumption parse (like GetEnvInt): "12abc", "", and negatives are
// rejected with a warning rather than silently becoming a number — a bad
// --chunk value would otherwise silently run a very different schedule.
size_t ParseSizeValueOr(const char* flag, const char* value,
                        size_t fallback) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || std::strchr(value, '-') != nullptr) {
    std::fprintf(stderr, "warning: ignoring %s=%s (not a non-negative "
                 "integer); using %zu\n", flag, value, fallback);
    return fallback;
  }
  return static_cast<size_t>(parsed);
}

// Strict thread-count parse: positive integer or die. Unlike the sizes
// above there is no safe fallback — "--threads 0" silently running the
// hardware default would invalidate whatever comparison the caller was
// setting up.
size_t ParseStrictThreadValue(const char* what, const char* value) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0' || std::strchr(value, '-') != nullptr ||
      parsed == 0) {
    std::fprintf(stderr,
                 "error: %s=%s is not a positive integer; "
                 "use a count >= 1 (or unset it for the hardware default)\n",
                 what, value);
    std::exit(2);
  }
  return static_cast<size_t>(parsed);
}

size_t HardwareThreads() {
  // dmt-lint: allow(determinism-thread-fp): pool sizing only — the window
  // schedule and drain order are fixed regardless of pool size, so results
  // are identical for any count (simulation_driver_test, parallel_scale_test).
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<size_t>(hc);
}

}  // namespace

size_t ParseSizeArg(int argc, char** argv, const char* flag,
                    size_t fallback) {
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, flag) == 0 && i + 1 < argc) {
      return ParseSizeValueOr(flag, argv[i + 1], fallback);
    }
    if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
      return ParseSizeValueOr(flag, arg + flag_len + 1, fallback);
    }
  }
  return fallback;
}

size_t ParseThreadsArg(int argc, char** argv) {
  const char* flag = "--threads";
  const size_t flag_len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, flag) == 0 && i + 1 < argc) {
      return ParseStrictThreadValue(flag, argv[i + 1]);
    }
    if (std::strncmp(arg, flag, flag_len) == 0 && arg[flag_len] == '=') {
      return ParseStrictThreadValue(flag, arg + flag_len + 1);
    }
  }
  return 0;  // absent: auto (ResolveThreadCount)
}

size_t ParseChunkArg(int argc, char** argv, size_t fallback) {
  return ParseSizeArg(argc, argv, "--chunk", fallback);
}

size_t ResolveThreadCount(size_t requested) {
  size_t resolved;
  if (requested > 0) {
    resolved = requested;
  } else {
    const std::string env = GetEnvString("DMT_THREADS", "");
    if (!env.empty()) {
      resolved = ParseStrictThreadValue("DMT_THREADS", env.c_str());
    } else {
      resolved = HardwareThreads();
    }
  }
  // Oversubscription cap: beyond ~4x the hardware threads the extra lanes
  // only add context-switch noise. Results are unaffected (the schedule,
  // not the lane count, defines the semantics), so clamping is safe — but
  // say so, because the caller asked for something else.
  const size_t cap = 4 * HardwareThreads();
  if (resolved > cap) {
    std::fprintf(stderr,
                 "warning: clamping thread count %zu to %zu (4x the %zu "
                 "hardware threads); results are identical by the driver's "
                 "determinism guarantee\n",
                 resolved, cap, cap / 4);
    resolved = cap;
  }
  return resolved;
}

std::vector<size_t> AssignSites(Router* router, size_t n) {
  std::vector<size_t> sites(n);
  for (size_t i = 0; i < n; ++i) sites[i] = router->NextSite();
  return sites;
}

std::vector<size_t> WindowEnds(size_t n, size_t chunk_elements,
                               size_t num_sites) {
  std::vector<size_t> ends;
  if (n == 0) return ends;
  const size_t chunk = std::max<size_t>(1, chunk_elements);
  // Bootstrap round: protocols start with a zero broadcast value (W-hat /
  // F-hat / tau), which makes every site threshold 0 until the first
  // Synchronize. A full chunk at threshold 0 would send one message per
  // arrival; a short first round (~one arrival per site) bounds that
  // bootstrap traffic to O(num_sites) messages. Part of the fixed
  // schedule, so determinism across thread counts is unaffected.
  const size_t bootstrap = std::min(chunk, std::max<size_t>(1, num_sites));
  size_t begin = 0;
  while (begin < n) {
    const size_t end = std::min(n, begin + (begin == 0 ? bootstrap : chunk));
    ends.push_back(end);
    begin = end;
  }
  return ends;
}

SimulationDriver::SimulationDriver(const SimulationOptions& options)
    : options_(options), threads_(ResolveThreadCount(options.threads)) {
  if (options_.chunk_elements == 0) options_.chunk_elements = 1;
  if (threads_ > 1) pool_ = std::make_unique<ThreadPool>(threads_);
  lanes_.resize(std::max<size_t>(threads_, 1));
}

SimulationDriver::~SimulationDriver() = default;

template <typename Protocol, typename Apply>
void SimulationDriver::ExecuteWindow(Protocol* protocol, bool concurrent,
                                     const Apply& apply) {
  const size_t k = plan_.active_count();
  ++stats_.windows;

  // One active slot: run its arrivals in stream order, then publish the
  // site for draining if its outbox is non-empty. PendingOutboxSize reads
  // only the site's own queue (same concurrency contract as SiteUpdate),
  // and SIZE_MAX — "unknown" — publishes unconditionally, which is always
  // safe: draining an empty site is a no-op in every protocol.
  const auto run_slot = [&](size_t p, WorkerLane& lane) {
    const uint32_t site = plan_.site_at(p);
    size_t len = 0;
    const uint32_t* rel = plan_.arrivals(p, &len);
    for (size_t j = 0; j < len; ++j) apply(site, rel[j], lane);
    if (protocol->PendingOutboxSize(site) > 0) lane.pending.push_back(site);
  };

  if (concurrent && pool_ != nullptr && k > 0) {
    const size_t nlanes = lanes_.size();
    const size_t batch =
        ReservationBatchSize(k, nlanes, options_.sites_per_batch);
    std::atomic<size_t> cursor{0};
    // Exactly nlanes lane executions per window, each claiming contiguous
    // ascending ranges of the active list until the cursor runs dry. The
    // RunBatch barrier makes all site work happen-before the drain below.
    pool_->RunBatch(nlanes, [&](size_t lane_id) {
      WorkerLane& lane = lanes_[lane_id];
      lane.pending.clear();
      lane.batches = 0;
      lane.sites = 0;
      for (;;) {
        const size_t begin =
            cursor.fetch_add(batch, std::memory_order_relaxed);
        if (begin >= k) break;
        const size_t end = std::min(k, begin + batch);
        ++lane.batches;
        for (size_t p = begin; p < end; ++p) {
          run_slot(p, lane);
          ++lane.sites;
        }
      }
    });
    for (const WorkerLane& lane : lanes_) {
      stats_.batches_reserved += lane.batches;
      stats_.sites_scheduled += lane.sites;
    }
  } else {
    WorkerLane& lane = lanes_[0];
    lane.pending.clear();
    for (size_t p = 0; p < k; ++p) run_slot(p, lane);
    if (k > 0) ++stats_.batches_reserved;
    stats_.sites_scheduled += k;
    for (size_t i = 1; i < lanes_.size(); ++i) lanes_[i].pending.clear();
  }

  // Coordinator drain. Each lane's pending buffer is ascending (monotone
  // cursor over an ascending active list, ascending within a batch), and
  // a site appears in at most one lane, so one sort of the concatenation
  // reproduces the full scan's ascending-site total order exactly.
  if (protocol->SupportsTargetedDrain()) {
    drain_sites_.clear();
    for (const WorkerLane& lane : lanes_) {
      drain_sites_.insert(drain_sites_.end(), lane.pending.begin(),
                          lane.pending.end());
    }
    std::sort(drain_sites_.begin(), drain_sites_.end());
    ++stats_.targeted_drains;
    protocol->SynchronizeSites(drain_sites_.data(), drain_sites_.size());
  } else {
    ++stats_.drain_stalls;
    protocol->Synchronize();
  }
}

template <typename Protocol, typename Item>
void SimulationDriver::RunImpl(Protocol* protocol,
                               const std::vector<size_t>& sites,
                               const std::vector<Item>& items,
                               bool concurrent) {
  DMT_CHECK_EQ(sites.size(), items.size());
  stats_ = SchedulerStats{};
  const size_t n = items.size();
  if (n == 0) return;
  DMT_CHECK_LE(n, std::numeric_limits<uint32_t>::max());

  size_t num_sites = 0;
  for (size_t s : sites) num_sites = std::max(num_sites, s + 1);
  plan_.Reset(num_sites);

  // The window schedule (bootstrap + full chunks) is shared with the wire
  // transport via WindowEnds — see its comment for the bootstrap rationale.
  size_t begin = 0;
  uint64_t window_index = 0;
  for (const size_t end :
       WindowEnds(n, options_.chunk_elements, num_sites)) {
    plan_.Build(sites.data() + begin, end - begin);
    ExecuteWindow(protocol, concurrent,
                  [&](uint32_t site, uint32_t rel, WorkerLane&) {
                    ApplyItem(protocol, site, items[begin + rel]);
                  });
    begin = end;
    ++window_index;
    // Post-drain: no site work in flight, the protocol is in its
    // between-rounds state — safe for the callback to export snapshots.
    if (window_callback_) {
      window_callback_(WindowEndInfo{window_index, end});
    }
  }
}

void SimulationDriver::Run(hh::HeavyHitterProtocol* protocol,
                           const std::vector<size_t>& sites,
                           const std::vector<WeightedUpdate>& items) {
  RunImpl(protocol, sites, items,
          protocol->SupportsConcurrentSiteUpdates());
}

void SimulationDriver::Run(matrix::MatrixTrackingProtocol* protocol,
                           const std::vector<size_t>& sites,
                           const std::vector<std::vector<double>>& rows) {
  RunImpl(protocol, sites, rows,
          protocol->SupportsConcurrentSiteUpdates());
}

size_t SimulationDriver::Run(matrix::MatrixTrackingProtocol* protocol,
                             Router* router, data::DatasetSource* source,
                             size_t max_rows) {
  DMT_CHECK(router != nullptr);
  DMT_CHECK(source != nullptr);
  // An unbounded source (synthetic with no row budget) never returns a
  // short chunk, so "feed until exhaustion" would not terminate.
  DMT_CHECK(max_rows > 0 || source->info().rows > 0);

  const size_t num_sites = router->num_sites();
  const bool concurrent =
      protocol->SupportsConcurrentSiteUpdates() && pool_ != nullptr;
  const size_t chunk = options_.chunk_elements;
  // Same bootstrap rationale as WindowEnds: a short first round bounds the
  // zero-threshold startup traffic to O(num_sites). RunImpl derives
  // num_sites from the materialized assignment (max site + 1); here the
  // router declares it up front — identical once every site receives at
  // least one arrival.
  const size_t bootstrap = std::min(chunk, num_sites);

  stats_ = SchedulerStats{};
  plan_.Reset(num_sites);

  linalg::Matrix window;      // rows of the current window
  std::vector<size_t> sites;  // site of window row i
  size_t fed = 0;
  uint64_t window_index = 0;
  bool first = true;
  while (max_rows == 0 || fed < max_rows) {
    size_t want = first ? bootstrap : chunk;
    if (max_rows != 0) want = std::min(want, max_rows - fed);
    window.ClearRows();
    const size_t got = source->NextChunk(want, &window);
    if (got == 0) break;
    DMT_CHECK_LE(got, std::numeric_limits<uint32_t>::max());

    sites.resize(got);
    for (size_t i = 0; i < got; ++i) {
      sites[i] = router->NextSite();
      DMT_CHECK_LT(sites[i], num_sites);
    }
    plan_.Build(sites.data(), got);

    // Site phase: within the window each site processes exactly its
    // arrivals in stream order, touching only per-site state. Rows are
    // staged through the lane's reusable scratch (one buffer per lane,
    // not one allocation per site task).
    const size_t cols = window.cols();
    ExecuteWindow(protocol, concurrent,
                  [&](uint32_t site, uint32_t rel, WorkerLane& lane) {
                    lane.row_scratch.resize(cols);
                    std::memcpy(lane.row_scratch.data(), window.Row(rel),
                                cols * sizeof(double));
                    protocol->SiteUpdate(site, lane.row_scratch);
                  });
    fed += got;
    first = false;
    ++window_index;
    if (window_callback_) {
      window_callback_(WindowEndInfo{window_index, fed});
    }
  }
  return fed;
}

}  // namespace stream
}  // namespace dmt
