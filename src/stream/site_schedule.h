// Batch-reservation window scheduling: the SoA work plan and per-worker
// lanes behind stream::SimulationDriver.
//
// The driver's unit of parallelism used to be "one pool task per site per
// window". At m sites that is m task allocations, m queue round-trips and
// m futures per synchronization window — fine at m = 32, fatal at
// m = 10^5 (the scheduling overhead drowns the per-site sketch work and
// the parallel driver clocks <= 1.0x; see BENCH_parallel_sites.json
// history). The replacement here has three parts:
//
//  1. WindowPlan — a structure-of-arrays partition of one window's
//     arrivals into per-site runs (CSR layout: ascending active-site
//     list, offset array, flattened arrival indices), rebuilt in O(window
//     arrivals + k log k) per window where k is the number of sites that
//     actually received something. Nothing is ever scanned per-site over
//     all m sites, and the site-keyed scratch arrays are cache-line
//     aligned (util/aligned.h) and reused across windows.
//
//  2. WorkerLane — per-worker state, one cache line apart: the SPSC
//     pending-site publication buffer (written only by the owning worker
//     during the site phase, read only by the coordinator after the
//     window barrier — single producer, single consumer, no locks), the
//     streaming path's row scratch, and reservation counters.
//
//  3. SchedulerStats — observability counters (batches reserved, sites
//     scheduled, targeted drains vs full-scan drain stalls) emitted into
//     the BENCH_parallel_sites.json envelope.
//
// Workers claim contiguous ranges of the active-site list from a single
// atomic cursor (batch reservation). Because the cursor is monotone and a
// batch is an ascending slice of an ascending list, every lane's pending
// buffer comes out sorted by site id, and the coordinator's drain merge
// reproduces today's ascending-site total order exactly. Which lane runs
// which batch is scheduling noise — per-site results never depend on it,
// which is what keeps replay bit-identical for any thread count.
#ifndef DMT_STREAM_SITE_SCHEDULE_H_
#define DMT_STREAM_SITE_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/aligned.h"

namespace dmt {
namespace stream {

/// Deterministic aggregate counters for the batch-reservation scheduler.
/// Reset at the start of every SimulationDriver::Run.
struct SchedulerStats {
  uint64_t windows = 0;           ///< synchronization windows executed
  uint64_t batches_reserved = 0;  ///< ranges claimed from the cursor
  uint64_t sites_scheduled = 0;   ///< site-window executions
  uint64_t targeted_drains = 0;   ///< windows drained via pending lists
  uint64_t drain_stalls = 0;      ///< windows that fell back to a full
                                  ///< all-sites Synchronize() scan

  double mean_sites_per_batch() const {
    return batches_reserved == 0
               ? 0.0
               : static_cast<double>(sites_scheduled) /
                     static_cast<double>(batches_reserved);
  }
};

/// Per-worker lane, padded to a cache line so concurrent lanes never
/// false-share. All fields are owned by exactly one worker between two
/// window barriers; the coordinator reads them only after the barrier.
struct alignas(kCacheLineBytes) WorkerLane {
  /// SPSC publication buffer: sites this lane ran that still hold queued
  /// outbox messages, ascending (see file comment).
  std::vector<uint32_t> pending;
  /// Streaming-path row staging (one per lane, not one per site task).
  std::vector<double> row_scratch;
  uint64_t batches = 0;  ///< ranges this lane claimed this window
  uint64_t sites = 0;    ///< sites this lane executed this window
};

/// The SoA partition of one synchronization window's arrivals.
///
/// Build() takes the window's site assignment (sites[i] = site of the
/// window's i-th arrival, in stream order) and produces, reusing all
/// internal storage:
///   - active list: every site with >= 1 arrival, ascending;
///   - per-active-site runs: the window-relative arrival indices of that
///     site, in stream order (CSR: offsets_ into idx_).
/// Executing run p's arrivals in order, for all p, on any partition of
/// the active list across workers, is exactly the serial window schedule.
class WindowPlan {
 public:
  /// Sizes the site-keyed scratch arrays; call once per Run.
  /// `num_sites` must fit a uint32 site id.
  void Reset(size_t num_sites);

  /// Partitions `count` arrivals with assignment `sites` (each < the
  /// Reset() num_sites). O(count) plus sorting the k active sites.
  void Build(const size_t* sites, size_t count);

  size_t num_sites() const { return num_sites_; }
  /// Number of sites with at least one arrival in this window.
  size_t active_count() const { return active_.size(); }
  /// Site id of active slot p (ascending in p).
  uint32_t site_at(size_t p) const { return active_[p]; }
  /// Window-relative arrival indices of active slot p, stream order.
  const uint32_t* arrivals(size_t p, size_t* len) const {
    *len = offsets_[p + 1] - offsets_[p];
    return idx_.data() + offsets_[p];
  }

 private:
  size_t num_sites_ = 0;
  uint32_t epoch_ = 0;
  // Site-keyed scratch (size num_sites_): which window a site was last
  // active in, and its slot in that window's active list. Epoch stamping
  // avoids an O(m) clear per window.
  CacheAlignedVector<uint32_t> last_epoch_;
  CacheAlignedVector<uint32_t> slot_;
  // Window-local CSR (size ~ active/arrival count, reused).
  CacheAlignedVector<uint32_t> active_;   // ascending site ids
  CacheAlignedVector<uint32_t> offsets_;  // active slot -> idx_ range
  CacheAlignedVector<uint32_t> idx_;      // flattened arrival indices
  CacheAlignedVector<uint32_t> fill_;     // per-slot fill cursor (Build)
};

/// Batch size for reserving active-list ranges: large enough to amortize
/// the cursor claim and keep each worker on a contiguous ascending site
/// range, small enough to leave ~4 claims per lane for load balance.
/// `override_size` > 0 (SimulationOptions::sites_per_batch) wins.
size_t ReservationBatchSize(size_t active_sites, size_t lanes,
                            size_t override_size);

}  // namespace stream
}  // namespace dmt

#endif  // DMT_STREAM_SITE_SCHEDULE_H_
