#include "stream/network.h"

#include "util/check.h"

namespace dmt {
namespace stream {

Network::Network(size_t num_sites)
    : num_sites_(num_sites), per_site_up_(num_sites, 0) {
  DMT_CHECK_GE(num_sites, 1u);
}

void Network::RecordScalar(size_t site) {
  DMT_CHECK_LT(site, num_sites_);
  ++stats_.scalar_up;
  ++per_site_up_[site];
}

void Network::RecordElement(size_t site) {
  DMT_CHECK_LT(site, num_sites_);
  ++stats_.element_up;
  ++per_site_up_[site];
}

void Network::RecordVector(size_t site) {
  DMT_CHECK_LT(site, num_sites_);
  ++stats_.vector_up;
  ++per_site_up_[site];
}

void Network::RecordBroadcast() {
  ++stats_.broadcast_events;
  stats_.broadcast_msgs += num_sites_;
}

void Network::RecordRound() { ++stats_.rounds; }

}  // namespace stream
}  // namespace dmt
