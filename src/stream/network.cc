#include "stream/network.h"

#include "util/check.h"

namespace dmt {
namespace stream {

Network::Network(size_t num_sites)
    : num_sites_(num_sites),
      shards_(num_sites),
      per_site_up_(num_sites, 0) {
  DMT_CHECK_GE(num_sites, 1u);
}

void Network::RecordScalar(size_t site) {
  DMT_CHECK_LT(site, num_sites_);
  ++shards_[site].scalar_up;
}

void Network::RecordElement(size_t site) {
  DMT_CHECK_LT(site, num_sites_);
  ++shards_[site].element_up;
}

void Network::RecordVector(size_t site) {
  DMT_CHECK_LT(site, num_sites_);
  ++shards_[site].vector_up;
}

void Network::RecordBroadcast() {
  broadcast_events_.fetch_add(1, std::memory_order_relaxed);
}

void Network::RecordRound() {
  rounds_.fetch_add(1, std::memory_order_relaxed);
}

const CommStats& Network::stats() const {
  CommStats merged;
  for (const Shard& s : shards_) {
    merged.scalar_up += s.scalar_up;
    merged.element_up += s.element_up;
    merged.vector_up += s.vector_up;
  }
  merged.broadcast_events = broadcast_events_.load(std::memory_order_relaxed);
  merged.broadcast_msgs = merged.broadcast_events * num_sites_;
  merged.rounds = rounds_.load(std::memory_order_relaxed);
  merged_ = merged;
  return merged_;
}

const std::vector<uint64_t>& Network::per_site_up() const {
  for (size_t i = 0; i < num_sites_; ++i) {
    const Shard& s = shards_[i];
    per_site_up_[i] = s.scalar_up + s.element_up + s.vector_up;
  }
  return per_site_up_;
}

}  // namespace stream
}  // namespace dmt
