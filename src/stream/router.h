// Site assignment for arriving stream elements.
//
// The distributed streaming model assumes each element appears at exactly
// one of the m sites. The paper does not fix an assignment, so the
// experiments use uniform-random assignment; round-robin and a skewed
// (hot-site) assignment are provided to test protocol robustness to load
// imbalance.
#ifndef DMT_STREAM_ROUTER_H_
#define DMT_STREAM_ROUTER_H_

#include <cstddef>
#include <cstdint>

#include "util/rng.h"

namespace dmt {
namespace stream {

/// Assignment policy for stream elements to sites.
enum class RoutingPolicy {
  kUniform,    ///< each element lands at a uniformly random site
  kRoundRobin, ///< element i goes to site i mod m
  kSkewed,     ///< half of all elements land at site 0, rest uniform
};

/// Stateful element->site router.
class Router {
 public:
  Router(size_t num_sites, RoutingPolicy policy, uint64_t seed);

  /// Site for the next stream element.
  size_t NextSite();

  size_t num_sites() const { return num_sites_; }
  RoutingPolicy policy() const { return policy_; }

 private:
  size_t num_sites_;
  RoutingPolicy policy_;
  Rng rng_;
  size_t counter_ = 0;
};

}  // namespace stream
}  // namespace dmt

#endif  // DMT_STREAM_ROUTER_H_
