#include "stream/router.h"

#include "util/check.h"

namespace dmt {
namespace stream {

Router::Router(size_t num_sites, RoutingPolicy policy, uint64_t seed)
    : num_sites_(num_sites), policy_(policy), rng_(seed) {
  DMT_CHECK_GE(num_sites, 1u);
}

size_t Router::NextSite() {
  switch (policy_) {
    case RoutingPolicy::kRoundRobin:
      return counter_++ % num_sites_;
    case RoutingPolicy::kSkewed:
      if (rng_.NextDouble() < 0.5) return 0;
      return static_cast<size_t>(rng_.NextBelow(num_sites_));
    case RoutingPolicy::kUniform:
    default:
      return static_cast<size_t>(rng_.NextBelow(num_sites_));
  }
}

}  // namespace stream
}  // namespace dmt
