// Simulated star network: m sites, one coordinator, counted channels.
//
// The simulator is synchronous and in-process (the paper's evaluation also
// only counts messages, never wall-clock network time). Protocols call the
// Record* methods at each send; delivery itself is a direct method call
// inside the protocol implementation.
#ifndef DMT_STREAM_NETWORK_H_
#define DMT_STREAM_NETWORK_H_

#include <cstddef>
#include <vector>

#include "stream/comm_stats.h"

namespace dmt {
namespace stream {

/// Message tally for one protocol instance.
class Network {
 public:
  /// `num_sites` is m in the paper.
  explicit Network(size_t num_sites);

  size_t num_sites() const { return num_sites_; }

  /// Site -> coordinator sends.
  void RecordScalar(size_t site);
  void RecordElement(size_t site);
  void RecordVector(size_t site);

  /// Coordinator -> all-sites broadcast (costs num_sites messages).
  void RecordBroadcast();

  /// Marks a protocol round/epoch boundary (bookkeeping only).
  void RecordRound();

  const CommStats& stats() const { return stats_; }

  /// Per-site upstream message counts (diagnostics; index = site id).
  const std::vector<uint64_t>& per_site_up() const { return per_site_up_; }

 private:
  size_t num_sites_;
  CommStats stats_;
  std::vector<uint64_t> per_site_up_;
};

}  // namespace stream
}  // namespace dmt

#endif  // DMT_STREAM_NETWORK_H_
