// Simulated star network: m sites, one coordinator, counted channels.
//
// The simulator is synchronous and in-process (the paper's evaluation also
// only counts messages, never wall-clock network time). Protocols call the
// Record* methods at each send; delivery itself is a direct method call
// inside the protocol implementation.
//
// Threading model: the per-site upstream counters are sharded one cache
// line per site, so RecordScalar/RecordElement/RecordVector may be called
// concurrently as long as no two threads record for the *same* site — the
// contract the simulation driver upholds by pinning each site to exactly
// one task per round. Coordinator-side events (RecordBroadcast /
// RecordRound) use relaxed atomics and are safe from any thread. Aggregate
// reads (stats(), per_site_up()) merge the shards into mutable caches and
// must be externally serialized: no concurrent site recording AND no
// second concurrent aggregate read (const here does not mean thread-safe).
// In driver terms both hold trivially — aggregates are read on the
// coordinator thread at round boundaries or after the run, and the pool
// barrier provides the needed happens-before edge.
#ifndef DMT_STREAM_NETWORK_H_
#define DMT_STREAM_NETWORK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "stream/comm_stats.h"
#include "util/contracts.h"

namespace dmt {
namespace stream {

/// Message tally for one protocol instance.
class Network {
 public:
  /// `num_sites` is m in the paper.
  explicit Network(size_t num_sites);

  size_t num_sites() const { return num_sites_; }

  /// Site -> coordinator sends. Concurrency-safe across distinct sites
  /// (each writes only its own shard).
  void RecordScalar(size_t site);
  void RecordElement(size_t site);
  void RecordVector(size_t site);

  /// Coordinator -> all-sites broadcast (costs num_sites messages).
  /// Safe from any thread (relaxed atomic).
  void RecordBroadcast();

  /// Marks a protocol round/epoch boundary (bookkeeping only).
  /// Safe from any thread (relaxed atomic).
  void RecordRound();

  /// Merged counters. Only call while no site is concurrently recording
  /// (e.g. at a synchronization round boundary).
  const CommStats& stats() const;

  /// Per-site upstream message counts (diagnostics; index = site id).
  /// Same synchronization requirement as stats().
  const std::vector<uint64_t>& per_site_up() const;

 private:
  // One cache line per site: protocols running sites on distinct threads
  // must not contend on (or false-share) each other's tallies.
  struct alignas(64) Shard {
    uint64_t scalar_up = 0;
    uint64_t element_up = 0;
    uint64_t vector_up = 0;
  };

  size_t num_sites_;
  std::vector<Shard> shards_;
  // Pure statistics, read only at round boundaries under the pool
  // barrier's happens-before edge: relaxed per the DMT_ATOMIC_COUNTER
  // contract — anything stronger would be an unjustified fence.
  DMT_ATOMIC_COUNTER std::atomic<uint64_t> broadcast_events_{0};
  DMT_ATOMIC_COUNTER std::atomic<uint64_t> rounds_{0};
  // Merge caches rebuilt by the aggregate accessors (logically const).
  mutable CommStats merged_;
  mutable std::vector<uint64_t> per_site_up_;
};

}  // namespace stream
}  // namespace dmt

#endif  // DMT_STREAM_NETWORK_H_
