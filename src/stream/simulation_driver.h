// Parallel multi-site simulation engine with deterministic replay.
//
// The paper's star network has m sites streaming concurrently, but the
// protocols themselves are driven element-by-element. This driver closes
// the gap: it partitions a materialized stream by router assignment and
// runs each site's local sketch updates (SiteUpdate) concurrently on a
// fixed thread pool, while every coordinator interaction — merges,
// broadcasts, round transitions — happens at explicit synchronization
// points between chunks of the stream.
//
// Schedule. The stream is cut into chunks of `chunk_elements` arrivals (in
// stream order), preceded by one short bootstrap round of ~one arrival per
// site (protocols start with zero broadcast thresholds; syncing early
// bounds the bootstrap message traffic to O(num_sites) instead of one
// message per arrival for a whole chunk). Within a chunk every site
// processes exactly its assigned arrivals, in stream order, reading only
// its own state plus the last-broadcast values (which are frozen for the
// whole chunk). At the chunk boundary the coordinator drains all queued
// site messages in ascending site order.
//
// Execution. Each window is partitioned once into a CSR plan over the
// sites that actually received arrivals (stream::WindowPlan — no O(m)
// scans, no per-site allocations). The worker pool then runs exactly
// `threads` lane bodies (ThreadPool::RunBatch); each lane claims large
// contiguous ranges of the ascending active-site list from one shared
// atomic cursor (batch reservation) and executes the claimed sites'
// arrivals in stream order. A site whose outbox holds queued messages
// after its last arrival is published into the lane's single-producer
// pending buffer; after the window barrier the coordinator merges those
// buffers (ascending site ids) and drains exactly the pending sites via
// SynchronizeSites — the same total order as a full Synchronize() scan,
// without touching the m - k idle sites. Protocols that cannot drain
// selectively fall back to Synchronize() (counted as a drain stall in
// SchedulerStats).
//
//   Determinism guarantee: for a fixed (protocol seed, router assignment,
//   chunk_elements), runs with ANY number of threads produce bit-identical
//   coordinator state, CommStats and per-site message counts to the serial
//   execution of the same schedule. Per-site work touches only per-site
//   state (the protocols' SiteUpdate contract and per-site RNG streams),
//   per-site network shards, and per-site outboxes, so which lane runs
//   which batch is scheduling noise; the coordinator phase is
//   single-threaded and replays the fixed ascending-site order. Only the
//   SchedulerStats observability counters (e.g. batches_reserved) may
//   differ across thread counts.
//
// Protocols that do not support concurrent site updates (e.g. the
// experimental MP4, whose coordinator exchange is interleaved with the
// site update) automatically fall back to the serial schedule — same
// results, no parallelism.
#ifndef DMT_STREAM_SIMULATION_DRIVER_H_
#define DMT_STREAM_SIMULATION_DRIVER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "hh/hh_protocol.h"
#include "matrix/matrix_protocol.h"
#include "stream/router.h"
#include "stream/site_schedule.h"
#include "util/thread_pool.h"

namespace dmt {
namespace stream {

/// Driver configuration.
struct SimulationOptions {
  /// Worker threads for the site phase. 0 = resolve from the DMT_THREADS
  /// environment variable, falling back to hardware_concurrency.
  size_t threads = 0;
  /// Stream arrivals between two coordinator synchronization points. This
  /// is part of the simulated schedule: changing it changes (slightly) the
  /// message pattern, so keep it fixed when comparing runs.
  size_t chunk_elements = 8192;
  /// Sites per reservation batch claimed from the window cursor. 0 = auto
  /// (~4 claims per lane, see stream::ReservationBatchSize). Scheduling
  /// only — results are identical for any value.
  size_t sites_per_batch = 0;
};

/// Effective thread count: `requested` if > 0, else the DMT_THREADS
/// environment variable if set, else std::thread::hardware_concurrency()
/// (minimum 1). A DMT_THREADS value that is not a positive integer is a
/// hard error (exits with a diagnostic — a typo'd value silently running
/// serial would invalidate a benchmark). Counts above 4x the hardware
/// concurrency are clamped to that cap with a logged warning:
/// oversubscription past that point only adds scheduling noise, and the
/// determinism guarantee makes the results identical anyway.
size_t ResolveThreadCount(size_t requested);

/// Parses a `<flag> N` / `<flag>=N` command-line option (shared by benches
/// and examples); returns `fallback` when absent.
size_t ParseSizeArg(int argc, char** argv, const char* flag,
                    size_t fallback);

/// Parses `--threads`; returns 0 — "auto", resolved by the driver via
/// ResolveThreadCount — when the flag is absent. A present flag must be a
/// positive integer: 0, negatives and garbage are hard errors (exit with
/// a diagnostic), matching the DMT_THREADS contract.
size_t ParseThreadsArg(int argc, char** argv);

/// Parses `--chunk` (arrivals per synchronization round); returns
/// `fallback` when the flag is absent.
size_t ParseChunkArg(int argc, char** argv, size_t fallback);

/// One weighted heavy-hitter arrival, as materialized for the driver.
struct WeightedUpdate {
  uint64_t element = 0;
  double weight = 1.0;
};

/// Materializes the router's site assignment for `n` arrivals (the
/// partition step of the driver; also handy for tests that need the exact
/// same assignment across runs).
std::vector<size_t> AssignSites(Router* router, size_t n);

/// The driver's synchronization-window schedule: the exclusive end index
/// of every window for an n-arrival stream — one bootstrap window of
/// min(chunk_elements, num_sites) arrivals, then full chunks of
/// chunk_elements. Both RunImpl and the wire transport (src/net) run
/// exactly this schedule, which is what makes a distributed run replay
/// the in-process oracle bit-identically.
std::vector<size_t> WindowEnds(size_t n, size_t chunk_elements,
                               size_t num_sites);

/// Passed to the driver's window callback after each coordinator drain.
struct WindowEndInfo {
  /// 1-based index of the window that just drained (1 = bootstrap).
  uint64_t window_index = 0;
  /// Stream arrivals absorbed so far, including this window.
  uint64_t arrivals_total = 0;
};

/// Runs protocols over materialized streams with the schedule above.
class SimulationDriver {
 public:
  explicit SimulationDriver(const SimulationOptions& options = {});
  ~SimulationDriver();

  SimulationDriver(const SimulationDriver&) = delete;
  SimulationDriver& operator=(const SimulationDriver&) = delete;

  /// Effective worker-thread count for the site phase.
  size_t threads() const { return threads_; }
  size_t chunk_elements() const { return options_.chunk_elements; }

  /// Registers a callback invoked on the coordinator thread immediately
  /// after every window's drain, while no site work is in flight — the
  /// one moment the protocol's between-rounds query contract
  /// (CoordinatorSketch / comm_stats / ExportSnapshot*) holds mid-run.
  /// The serving layer (serve::ServingCoordinator) publishes snapshots
  /// from here. The callback is part of the observer plane, never the
  /// schedule: registering one must not change any protocol state or
  /// message counts. Pass an empty function to clear.
  void set_window_callback(std::function<void(const WindowEndInfo&)> cb) {
    window_callback_ = std::move(cb);
  }

  /// Scheduler counters of the most recent Run (reset at each Run start).
  /// windows / sites_scheduled / targeted_drains / drain_stalls are
  /// schedule-determined and thread-count-invariant; batches_reserved
  /// depends on the lane count (observability, never fed back into the
  /// simulation).
  const SchedulerStats& scheduler_stats() const { return stats_; }

  /// Drives a heavy-hitter protocol: items[i] arrives at sites[i].
  /// `sites` and `items` must have equal length.
  void Run(hh::HeavyHitterProtocol* protocol,
           const std::vector<size_t>& sites,
           const std::vector<WeightedUpdate>& items);

  /// Drives a matrix protocol: rows[i] arrives at sites[i].
  void Run(matrix::MatrixTrackingProtocol* protocol,
           const std::vector<size_t>& sites,
           const std::vector<std::vector<double>>& rows);

  /// Streams rows straight from a dataset source (data/dataset.h) without
  /// materializing the whole stream: each synchronization window reads
  /// its rows via NextChunk() and assigns sites from `router` in stream
  /// order, so at most one window (`chunk_elements` rows) is in memory.
  /// The schedule — bootstrap window of min(chunk_elements,
  /// router->num_sites()) arrivals, then full chunks, coordinator drain
  /// at every boundary — matches the materialized Run(), and results are
  /// bit-identical to it (and across thread counts) for the same router
  /// sequence and rows. Feeds until `max_rows` rows (0 = until the source
  /// is exhausted; the source must then be finite) and returns the number
  /// of rows actually fed.
  size_t Run(matrix::MatrixTrackingProtocol* protocol, Router* router,
             data::DatasetSource* source, size_t max_rows = 0);

 private:
  template <typename Protocol, typename Item>
  void RunImpl(Protocol* protocol, const std::vector<size_t>& sites,
               const std::vector<Item>& items, bool concurrent);

  /// Runs the already-Built plan_'s site phase (batch reservation across
  /// the lanes, or the single-lane serial walk) and the coordinator drain.
  /// `apply(site, rel, lane)` processes the window-relative arrival `rel`
  /// at `site` using `lane`'s scratch.
  template <typename Protocol, typename Apply>
  void ExecuteWindow(Protocol* protocol, bool concurrent,
                     const Apply& apply);

  SimulationOptions options_;
  size_t threads_;
  std::unique_ptr<ThreadPool> pool_;  // only when threads_ > 1
  WindowPlan plan_;                   // per-window CSR partition, reused
  std::vector<WorkerLane> lanes_;     // cache-line-apart worker state
  std::vector<uint32_t> drain_sites_; // merged pending sites, ascending
  SchedulerStats stats_;
  std::function<void(const WindowEndInfo&)> window_callback_;
};

}  // namespace stream
}  // namespace dmt

#endif  // DMT_STREAM_SIMULATION_DRIVER_H_
