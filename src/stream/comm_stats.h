// Communication accounting for the distributed streaming model.
//
// The paper measures protocols in *messages*, where one message is one
// stream-element-sized payload: a scalar weight report, an (element,
// weight) update, or a d-dimensional row / scaled singular vector. A
// coordinator broadcast reaches all m sites and therefore costs m
// messages. CommStats keeps each category separate so harnesses can report
// any breakdown; total() is the paper's "msg" metric.
#ifndef DMT_STREAM_COMM_STATS_H_
#define DMT_STREAM_COMM_STATS_H_

#include <cstdint>

namespace dmt {
namespace stream {

/// Message counters for one protocol run.
struct CommStats {
  uint64_t scalar_up = 0;       ///< scalar site->coordinator messages
  uint64_t element_up = 0;      ///< (element, weight) updates
  uint64_t vector_up = 0;       ///< d-dimensional rows / singular vectors
  uint64_t broadcast_events = 0;///< coordinator broadcast occurrences
  uint64_t broadcast_msgs = 0;  ///< broadcast_events summed over m sites
  uint64_t rounds = 0;          ///< protocol round/epoch transitions

  /// Upstream messages only.
  uint64_t total_up() const { return scalar_up + element_up + vector_up; }

  /// The paper's message metric: upstream + downstream.
  uint64_t total() const { return total_up() + broadcast_msgs; }

  CommStats& operator+=(const CommStats& o) {
    scalar_up += o.scalar_up;
    element_up += o.element_up;
    vector_up += o.vector_up;
    broadcast_events += o.broadcast_events;
    broadcast_msgs += o.broadcast_msgs;
    rounds += o.rounds;
    return *this;
  }
};

}  // namespace stream
}  // namespace dmt

#endif  // DMT_STREAM_COMM_STATS_H_
