// Public facade: continuous distributed weighted heavy hitters.
//
//   dmt::HhTrackerConfig cfg;
//   cfg.num_sites = 50;
//   cfg.epsilon = 1e-3;
//   cfg.protocol = dmt::HhProtocol::kP2Threshold;
//   dmt::ContinuousHeavyHitterTracker tracker(cfg);
//   tracker.Observe(site, element, weight);
//   auto hh = tracker.HeavyHitters(0.05);  // phi-heavy hitters, any time
#ifndef DMT_CORE_CONTINUOUS_HH_TRACKER_H_
#define DMT_CORE_CONTINUOUS_HH_TRACKER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "hh/hh_protocol.h"

namespace dmt {
namespace stream {
class SimulationDriver;
struct WeightedUpdate;
}  // namespace stream

/// Continuous distributed weighted heavy-hitter tracker.
class ContinuousHeavyHitterTracker {
 public:
  explicit ContinuousHeavyHitterTracker(const HhTrackerConfig& config);
  ~ContinuousHeavyHitterTracker();

  ContinuousHeavyHitterTracker(const ContinuousHeavyHitterTracker&) = delete;
  ContinuousHeavyHitterTracker& operator=(
      const ContinuousHeavyHitterTracker&) = delete;

  /// Feeds one weighted element observed at `site`. `weight` > 0; the
  /// paper's analysis assumes weights in [1, beta].
  void Observe(size_t site, uint64_t element, double weight);

  /// Feeds a batch of weighted elements through the parallel simulation
  /// driver: items[i] arrives at sites[i]. Deterministic for a fixed
  /// driver configuration regardless of thread count.
  void ObserveBatch(stream::SimulationDriver* driver,
                    const std::vector<size_t>& sites,
                    const std::vector<stream::WeightedUpdate>& items);

  /// Estimate of element's cumulative weight.
  double EstimateWeight(uint64_t element) const;

  /// Estimate of the total stream weight W.
  double EstimateTotalWeight() const;

  /// The phi-heavy hitters under the paper's report rule
  /// (estimate/total >= phi - eps/2).
  std::vector<uint64_t> HeavyHitters(double phi) const;

  /// Messages used so far.
  const stream::CommStats& comm_stats() const;

  /// Items observed so far across all sites.
  size_t items_seen() const { return items_seen_; }

  std::string protocol_name() const;

  const HhTrackerConfig& config() const { return config_; }

 private:
  HhTrackerConfig config_;
  std::unique_ptr<hh::HeavyHitterProtocol> protocol_;
  size_t items_seen_ = 0;
};

}  // namespace dmt

#endif  // DMT_CORE_CONTINUOUS_HH_TRACKER_H_
