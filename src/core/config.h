// Public configuration types for the tracker facades.
#ifndef DMT_CORE_CONFIG_H_
#define DMT_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace dmt {

/// Which distributed matrix tracking protocol to run.
enum class MatrixProtocol {
  kP1BatchedFD,    ///< deterministic, batched FD sketches (Sec. 5.1)
  kP2SvdThreshold, ///< deterministic, per-direction thresholds (Sec. 5.2)
  kP3SampleWoR,    ///< randomized, priority row sampling (Sec. 5.3)
  kP3SampleWR,     ///< randomized, with-replacement sampling (Sec. 4.3.1)
  kP4Experimental, ///< appendix C negative result (for study only)
};

/// Which distributed weighted heavy-hitters protocol to run.
enum class HhProtocol {
  kP1BatchedMG,
  kP2Threshold,
  kP3SampleWoR,
  kP3SampleWR,
  kP4Randomized,
  kExact,
};

/// Configuration shared by both tracker facades.
struct TrackerConfig {
  size_t num_sites = 8;    ///< m: number of distributed sites
  double epsilon = 0.1;    ///< target error fraction
  uint64_t seed = 1;       ///< seed for randomized protocols
};

/// Matrix tracker configuration.
struct MatrixTrackerConfig : TrackerConfig {
  MatrixProtocol protocol = MatrixProtocol::kP2SvdThreshold;
};

/// Heavy-hitters tracker configuration.
struct HhTrackerConfig : TrackerConfig {
  HhProtocol protocol = HhProtocol::kP2Threshold;
};

}  // namespace dmt

#endif  // DMT_CORE_CONFIG_H_
