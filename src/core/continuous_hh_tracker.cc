#include "core/continuous_hh_tracker.h"

#include "hh/exact_tracker.h"
#include "hh/p1_batched_mg.h"
#include "hh/p2_threshold.h"
#include "hh/p3_sampling.h"
#include "hh/p4_randomized.h"
#include "stream/simulation_driver.h"
#include "util/check.h"

namespace dmt {

ContinuousHeavyHitterTracker::ContinuousHeavyHitterTracker(
    const HhTrackerConfig& config)
    : config_(config) {
  DMT_CHECK_GE(config.num_sites, 1u);
  switch (config.protocol) {
    case HhProtocol::kP1BatchedMG:
      protocol_ = std::make_unique<hh::P1BatchedMG>(config.num_sites,
                                                    config.epsilon);
      break;
    case HhProtocol::kP2Threshold:
      protocol_ = std::make_unique<hh::P2Threshold>(config.num_sites,
                                                    config.epsilon);
      break;
    case HhProtocol::kP3SampleWoR:
      protocol_ = std::make_unique<hh::P3SamplingWoR>(
          config.num_sites, config.epsilon, config.seed);
      break;
    case HhProtocol::kP3SampleWR:
      protocol_ = std::make_unique<hh::P3SamplingWR>(
          config.num_sites, config.epsilon, config.seed);
      break;
    case HhProtocol::kP4Randomized:
      protocol_ = std::make_unique<hh::P4Randomized>(
          config.num_sites, config.epsilon, config.seed);
      break;
    case HhProtocol::kExact:
      protocol_ = std::make_unique<hh::ExactTracker>(config.num_sites);
      break;
  }
}

ContinuousHeavyHitterTracker::~ContinuousHeavyHitterTracker() = default;

void ContinuousHeavyHitterTracker::Observe(size_t site, uint64_t element,
                                           double weight) {
  DMT_CHECK_LT(site, config_.num_sites);
  protocol_->Process(site, element, weight);
  ++items_seen_;
}

void ContinuousHeavyHitterTracker::ObserveBatch(
    stream::SimulationDriver* driver, const std::vector<size_t>& sites,
    const std::vector<stream::WeightedUpdate>& items) {
  for (size_t site : sites) DMT_CHECK_LT(site, config_.num_sites);
  driver->Run(protocol_.get(), sites, items);
  items_seen_ += items.size();
}

double ContinuousHeavyHitterTracker::EstimateWeight(uint64_t element) const {
  return protocol_->EstimateElementWeight(element);
}

double ContinuousHeavyHitterTracker::EstimateTotalWeight() const {
  return protocol_->EstimateTotalWeight();
}

std::vector<uint64_t> ContinuousHeavyHitterTracker::HeavyHitters(
    double phi) const {
  return protocol_->HeavyHitters(phi, config_.epsilon);
}

const stream::CommStats& ContinuousHeavyHitterTracker::comm_stats() const {
  return protocol_->comm_stats();
}

std::string ContinuousHeavyHitterTracker::protocol_name() const {
  return protocol_->name();
}

}  // namespace dmt
