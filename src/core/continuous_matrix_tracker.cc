#include "core/continuous_matrix_tracker.h"

#include "linalg/jacobi_eigen.h"
#include "linalg/vec_ops.h"
#include "matrix/baselines.h"
#include "matrix/mp1_batched_fd.h"
#include "matrix/mp2_svd_threshold.h"
#include "matrix/mp3_sampling.h"
#include "matrix/mp4_experimental.h"
#include "stream/simulation_driver.h"
#include "util/check.h"

namespace dmt {

ContinuousMatrixTracker::ContinuousMatrixTracker(
    const MatrixTrackerConfig& config)
    : config_(config) {
  DMT_CHECK_GE(config.num_sites, 1u);
  switch (config.protocol) {
    case MatrixProtocol::kP1BatchedFD:
      protocol_ = std::make_unique<matrix::MP1BatchedFD>(config.num_sites,
                                                         config.epsilon);
      break;
    case MatrixProtocol::kP2SvdThreshold:
      protocol_ = std::make_unique<matrix::MP2SvdThreshold>(config.num_sites,
                                                            config.epsilon);
      break;
    case MatrixProtocol::kP3SampleWoR:
      protocol_ = std::make_unique<matrix::MP3SamplingWoR>(
          config.num_sites, config.epsilon, config.seed);
      break;
    case MatrixProtocol::kP3SampleWR:
      protocol_ = std::make_unique<matrix::MP3SamplingWR>(
          config.num_sites, config.epsilon, config.seed);
      break;
    case MatrixProtocol::kP4Experimental:
      protocol_ = std::make_unique<matrix::MP4Experimental>(
          config.num_sites, config.epsilon, config.seed);
      break;
  }
}

ContinuousMatrixTracker::~ContinuousMatrixTracker() = default;

void ContinuousMatrixTracker::Append(size_t site,
                                     const std::vector<double>& row) {
  DMT_CHECK_LT(site, config_.num_sites);
  protocol_->ProcessRow(site, row);
  ++rows_seen_;
}

void ContinuousMatrixTracker::AppendBatch(
    stream::SimulationDriver* driver, const std::vector<size_t>& sites,
    const std::vector<std::vector<double>>& rows) {
  for (size_t site : sites) DMT_CHECK_LT(site, config_.num_sites);
  driver->Run(protocol_.get(), sites, rows);
  rows_seen_ += rows.size();
}

linalg::Matrix ContinuousMatrixTracker::Sketch() const {
  return protocol_->CoordinatorSketch();
}

linalg::Matrix ContinuousMatrixTracker::SketchGram() const {
  return protocol_->CoordinatorGram();
}

double ContinuousMatrixTracker::SquaredNormAlong(
    const std::vector<double>& x) const {
  linalg::Matrix gram = protocol_->CoordinatorGram();
  if (gram.rows() == 0) return 0.0;
  std::vector<double> gx = gram.MultiplyVector(x);
  return linalg::Dot(x, gx);
}

const stream::CommStats& ContinuousMatrixTracker::comm_stats() const {
  return protocol_->comm_stats();
}

std::string ContinuousMatrixTracker::protocol_name() const {
  return protocol_->name();
}

}  // namespace dmt
