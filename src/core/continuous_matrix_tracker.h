// Public facade: continuous distributed matrix approximation.
//
// This is the API a downstream user consumes. It wires a chosen protocol
// to the simulated site/coordinator split and exposes continuous queries:
//
//   dmt::MatrixTrackerConfig cfg;
//   cfg.num_sites = 50;
//   cfg.epsilon = 0.1;
//   cfg.protocol = dmt::MatrixProtocol::kP2SvdThreshold;
//   dmt::ContinuousMatrixTracker tracker(cfg);
//   tracker.Append(site_id, row);              // any time, any site
//   dmt::linalg::Matrix b = tracker.Sketch();  // any time
//
// The guarantee maintained at all times is the paper's Definition 1:
// |‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F for every unit vector x.
#ifndef DMT_CORE_CONTINUOUS_MATRIX_TRACKER_H_
#define DMT_CORE_CONTINUOUS_MATRIX_TRACKER_H_

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "core/config.h"
#include "linalg/matrix.h"
#include "matrix/matrix_protocol.h"

namespace dmt {
namespace stream {
class SimulationDriver;
}  // namespace stream

/// Continuous distributed matrix approximation tracker.
class ContinuousMatrixTracker {
 public:
  explicit ContinuousMatrixTracker(const MatrixTrackerConfig& config);
  ~ContinuousMatrixTracker();

  ContinuousMatrixTracker(const ContinuousMatrixTracker&) = delete;
  ContinuousMatrixTracker& operator=(const ContinuousMatrixTracker&) = delete;

  /// Feeds one matrix row observed at `site` (0-based, < num_sites).
  void Append(size_t site, const std::vector<double>& row);

  /// Feeds a batch of rows through the parallel simulation driver:
  /// rows[i] arrives at sites[i]. Site-local sketch work runs on the
  /// driver's thread pool; coordinator interactions happen at the driver's
  /// synchronization rounds. Results are deterministic for a fixed driver
  /// configuration regardless of thread count.
  void AppendBatch(stream::SimulationDriver* driver,
                   const std::vector<size_t>& sites,
                   const std::vector<std::vector<double>>& rows);

  /// Current coordinator approximation B (rows stacked).
  linalg::Matrix Sketch() const;

  /// Current B^T B (cheaper than Sketch().Gram() for some protocols).
  linalg::Matrix SketchGram() const;

  /// ‖Bx‖² for a direction x (length = row dimension).
  double SquaredNormAlong(const std::vector<double>& x) const;

  /// Messages used so far (the paper's communication metric).
  const stream::CommStats& comm_stats() const;

  /// Rows appended so far across all sites.
  size_t rows_seen() const { return rows_seen_; }

  /// Name of the underlying protocol (e.g. "P2").
  std::string protocol_name() const;

  const MatrixTrackerConfig& config() const { return config_; }

 private:
  MatrixTrackerConfig config_;
  std::unique_ptr<matrix::MatrixTrackingProtocol> protocol_;
  size_t rows_seen_ = 0;
};

}  // namespace dmt

#endif  // DMT_CORE_CONTINUOUS_MATRIX_TRACKER_H_
