// Cache-line-aligned storage for hot per-site arrays.
//
// The batch-reservation scheduler walks structure-of-arrays site state
// (cursors, offsets, pending counts) from several worker threads at once.
// Aligning each array's base to the cache-line size guarantees that array
// element 0 never straddles a line shared with an unrelated allocation,
// so two workers touching *different* arrays can never false-share, and
// contiguous site ranges map to contiguous, predictably-aligned lines.
// (Within one array, adjacent sites still share a line — by design: the
// scheduler hands each worker a contiguous site range, so cross-worker
// sharing happens only at the two range boundaries.)
#ifndef DMT_UTIL_ALIGNED_H_
#define DMT_UTIL_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace dmt {

/// Assumed cache-line/destructive-interference size. Hardcoded 64: every
/// x86-64 and the common AArch64 parts use 64-byte lines, and
/// std::hardware_destructive_interference_size is still patchy in
/// libstdc++ (and ABI-fragile to boot).
inline constexpr size_t kCacheLineBytes = 64;

/// Minimal C++17 aligned allocator: std::vector<T, CacheLineAllocator<T>>
/// gets a 64-byte-aligned data() pointer.
template <typename T, size_t Alignment = kCacheLineBytes>
struct CacheLineAllocator {
  using value_type = T;

  // Explicit rebind: allocator_traits cannot synthesize one for a template
  // with a non-type (Alignment) parameter.
  template <typename U>
  struct rebind {
    using other = CacheLineAllocator<U, Alignment>;
  };

  CacheLineAllocator() noexcept = default;
  template <typename U>
  CacheLineAllocator(const CacheLineAllocator<U, Alignment>&) noexcept {}

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  template <typename U>
  bool operator==(const CacheLineAllocator<U, Alignment>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const CacheLineAllocator<U, Alignment>&) const noexcept {
    return false;
  }
};

/// A std::vector whose buffer starts on a cache-line boundary.
template <typename T>
using CacheAlignedVector = std::vector<T, CacheLineAllocator<T>>;

}  // namespace dmt

#endif  // DMT_UTIL_ALIGNED_H_
