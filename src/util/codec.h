// Fixed-width little-endian field codecs shared by every binary format in
// the repo: the .dmtbin row cache (src/data/dmtbin.cc) and the wire frame
// protocol (src/net/). The repo only targets little-endian hosts (x86-64 /
// AArch64), so the codecs are raw memcpys; the explicit widths keep every
// on-disk and on-wire layout independent of host types.
//
// Two tiers:
//  * PutLE/GetLE — fixed-offset fields inside a preallocated header block
//    (the .dmtbin 64-byte header style).
//  * ByteWriter/ByteReader — sequential append/consume over a growable
//    byte buffer (the wire message payload style). ByteReader never
//    aborts: reading past the end latches ok() == false and returns
//    zeroes, so malformed *network* input degrades into a decode failure
//    instead of a crash (DMT_CHECK is for invariants, not peer input).
#ifndef DMT_UTIL_CODEC_H_
#define DMT_UTIL_CODEC_H_

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <vector>

namespace dmt {

/// Writes `value` at `buf + offset` as its little-endian byte image.
template <typename T>
inline void PutLE(char* buf, size_t offset, T value) {
  std::memcpy(buf + offset, &value, sizeof(T));
}

/// Reads a T from `buf + offset` (little-endian byte image).
template <typename T>
inline T GetLE(const char* buf, size_t offset) {
  T value;
  std::memcpy(&value, buf + offset, sizeof(T));
  return value;
}

/// Sequential little-endian appender over a caller-owned byte vector.
class ByteWriter {
 public:
  explicit ByteWriter(std::vector<uint8_t>* out) : out_(out) {}

  template <typename T>
  void Put(T value) {
    const size_t at = out_->size();
    out_->resize(at + sizeof(T));
    std::memcpy(out_->data() + at, &value, sizeof(T));
  }

  void PutBytes(const void* data, size_t n) {
    const size_t at = out_->size();
    out_->resize(at + n);
    if (n != 0) std::memcpy(out_->data() + at, data, n);
  }

  size_t size() const { return out_->size(); }

 private:
  std::vector<uint8_t>* out_;
};

/// Sequential little-endian consumer with latched bounds checking.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Get() {
    T value{};
    if (!TakeInto(&value, sizeof(T))) return T{};
    return value;
  }

  /// Copies `n` raw bytes out; zero-fills (and latches !ok) on overrun.
  bool GetBytes(void* out, size_t n) { return TakeInto(out, n); }

  /// True while every read so far stayed in bounds.
  bool ok() const { return ok_; }
  /// Bytes not yet consumed.
  size_t remaining() const { return size_ - pos_; }
  /// True when the payload was consumed exactly and fully.
  bool exhausted() const { return ok_ && pos_ == size_; }

 private:
  bool TakeInto(void* out, size_t n) {
    if (!ok_ || size_ - pos_ < n) {
      ok_ = false;
      std::memset(out, 0, n);
      return false;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return true;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dmt

#endif  // DMT_UTIL_CODEC_H_
