#include "util/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace dmt {

std::string GetEnvString(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return v;
}

int64_t GetEnvInt(const char* name, int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(v, &end, 10);
  // Reject partial parses ("12abc"), overflow, and all-whitespace values;
  // trailing whitespace alone is tolerated.
  if (end == v || errno == ERANGE) return fallback;
  while (*end != '\0' && std::isspace(static_cast<unsigned char>(*end))) ++end;
  if (*end != '\0') return fallback;
  return static_cast<int64_t>(parsed);
}

Scale GetScale() {
  std::string s = GetEnvString("DMT_SCALE", "default");
  if (s == "small") return Scale::kSmall;
  if (s == "paper" || s == "full") return Scale::kPaper;
  return Scale::kDefault;
}

int64_t ScaledN(int64_t paper_n, int64_t default_div, int64_t small_div) {
  switch (GetScale()) {
    case Scale::kPaper:
      return paper_n;
    case Scale::kSmall:
      return paper_n / small_div;
    case Scale::kDefault:
    default:
      return paper_n / default_div;
  }
}

}  // namespace dmt
