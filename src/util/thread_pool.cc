#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dmt {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DMT_CHECK(!stopping_);
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::RunBatch(size_t fanout,
                          const std::function<void(size_t)>& task) {
  if (fanout == 0) return;
  std::unique_lock<std::mutex> lock(mutex_);
  DMT_CHECK(!stopping_);
  DMT_CHECK(!batch_active_);  // no nested or concurrent batches
  batch_task_ = &task;
  batch_fanout_ = fanout;
  batch_next_ = 0;
  batch_done_ = 0;
  batch_error_ = nullptr;
  batch_active_ = true;
  cv_.notify_all();
  batch_done_cv_.wait(lock, [this] { return batch_done_ == batch_fanout_; });
  batch_active_ = false;
  batch_task_ = nullptr;
  std::exception_ptr error = std::move(batch_error_);
  batch_error_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_.wait(lock, [this] {
      return stopping_ || !queue_.empty() ||
             (batch_active_ && batch_next_ < batch_fanout_);
    });
    if (batch_active_ && batch_next_ < batch_fanout_) {
      const size_t slot = batch_next_++;
      const std::function<void(size_t)>* task = batch_task_;
      lock.unlock();
      std::exception_ptr error;
      try {
        (*task)(slot);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      if (error && !batch_error_) batch_error_ = std::move(error);
      if (++batch_done_ == batch_fanout_) batch_done_cv_.notify_one();
      continue;
    }
    if (!queue_.empty()) {
      std::packaged_task<void()> task = std::move(queue_.front());
      queue_.pop();
      lock.unlock();
      // packaged_task catches the task's exception and stores it in the
      // shared state; the submitter sees it on future.get().
      task();
      lock.lock();
      continue;
    }
    if (stopping_) return;  // queue drained, no batch work left
  }
}

}  // namespace dmt
