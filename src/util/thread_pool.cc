#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace dmt {

ThreadPool::ThreadPool(size_t num_threads) {
  const size_t n = std::max<size_t>(num_threads, 1);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> wrapped(std::move(task));
  std::future<void> future = wrapped.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DMT_CHECK(!stopping_);
    queue_.push(std::move(wrapped));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // packaged_task catches the task's exception and stores it in the
    // shared state; the submitter sees it on future.get().
    task();
  }
}

}  // namespace dmt
