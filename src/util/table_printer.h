// Aligned text tables for benchmark harness output.
//
// The figure/table benches print series in the same shape the paper reports;
// this keeps that output readable and diffable.
#ifndef DMT_UTIL_TABLE_PRINTER_H_
#define DMT_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace dmt {

/// Collects rows of string cells and renders them with aligned columns.
class TablePrinter {
 public:
  /// `title` is printed above the table; pass "" to omit.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  /// Sets the header row.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may have fewer cells than the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the table to a string (trailing newline included).
  std::string ToString() const;

  /// Convenience: renders and writes to stdout.
  void Print() const;

  /// Formats a double compactly (scientific for very small/large values).
  static std::string FormatDouble(double v);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dmt

#endif  // DMT_UTIL_TABLE_PRINTER_H_
