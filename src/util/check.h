// Invariant-checking macros (Google-style: no exceptions; violations abort).
#ifndef DMT_UTIL_CHECK_H_
#define DMT_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dmt {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "DMT_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace dmt

/// Aborts with a diagnostic if `cond` is false. Active in all build types:
/// these guard algorithmic invariants, not debug-only assumptions.
#define DMT_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) ::dmt::internal::CheckFailed(__FILE__, __LINE__, #cond); \
  } while (0)

#define DMT_CHECK_OP(a, op, b) DMT_CHECK((a)op(b))
#define DMT_CHECK_EQ(a, b) DMT_CHECK((a) == (b))
#define DMT_CHECK_NE(a, b) DMT_CHECK((a) != (b))
#define DMT_CHECK_LT(a, b) DMT_CHECK((a) < (b))
#define DMT_CHECK_LE(a, b) DMT_CHECK((a) <= (b))
#define DMT_CHECK_GT(a, b) DMT_CHECK((a) > (b))
#define DMT_CHECK_GE(a, b) DMT_CHECK((a) >= (b))

#endif  // DMT_UTIL_CHECK_H_
