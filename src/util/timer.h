// Minimal wall-clock timer for experiment harnesses.
#ifndef DMT_UTIL_TIMER_H_
#define DMT_UTIL_TIMER_H_

#include <chrono>

namespace dmt {

/// Measures elapsed wall-clock time since construction or the last Reset().
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds as a double.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dmt

#endif  // DMT_UTIL_TIMER_H_
