// Environment-variable helpers used by the benchmark harnesses to scale
// workloads (e.g. DMT_SCALE=small|default|paper) without recompiling.
#ifndef DMT_UTIL_ENV_H_
#define DMT_UTIL_ENV_H_

#include <cstdint>
#include <string>

namespace dmt {

/// Returns the value of env var `name`, or `fallback` if unset/empty.
std::string GetEnvString(const char* name, const std::string& fallback);

/// Returns env var `name` parsed as int64, or `fallback` on absence/parse
/// failure.
int64_t GetEnvInt(const char* name, int64_t fallback);

/// Workload scale selected via DMT_SCALE: "small" (CI-fast), "default",
/// or "paper" (full published sizes).
enum class Scale { kSmall, kDefault, kPaper };

/// Reads DMT_SCALE; unknown values map to kDefault.
Scale GetScale();

/// Multiplies `paper_n` down according to the current scale:
/// paper -> 1x, default -> `default_div`, small -> `small_div`.
int64_t ScaledN(int64_t paper_n, int64_t default_div, int64_t small_div);

}  // namespace dmt

#endif  // DMT_UTIL_ENV_H_
