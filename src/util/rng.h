// Deterministic, fast pseudo-random number generation.
//
// All randomized components in this library take an explicit seed so that
// experiments are reproducible run-to-run; nothing reads global entropy.
#ifndef DMT_UTIL_RNG_H_
#define DMT_UTIL_RNG_H_

#include <cstdint>

namespace dmt {

/// Xoshiro256++ generator seeded via SplitMix64.
///
/// Chosen over std::mt19937_64 for speed (the samplers draw one uniform per
/// stream element) and for a compact, copyable state.
class Rng {
 public:
  /// Constructs a generator whose entire state is derived from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t NextUint64();

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in (0, 1]; never returns exactly 0.
  /// Used for priority sampling where we divide by the result.
  double NextDoublePositive();

  /// Returns an integer uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Returns a standard normal variate (Box-Muller, cached second value).
  double NextGaussian();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace dmt

#endif  // DMT_UTIL_RNG_H_
