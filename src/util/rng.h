// Deterministic, fast pseudo-random number generation.
//
// All randomized components in this library take an explicit seed so that
// experiments are reproducible run-to-run; nothing reads global entropy.
#ifndef DMT_UTIL_RNG_H_
#define DMT_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dmt {

/// Xoshiro256++ generator seeded via SplitMix64.
///
/// Chosen over std::mt19937_64 for speed (the samplers draw one uniform per
/// stream element) and for a compact, copyable state.
class Rng {
 public:
  /// Constructs a generator whose entire state is derived from `seed`.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns the next 64 uniformly distributed bits.
  uint64_t NextUint64();

  /// Returns a double uniform in [0, 1).
  double NextDouble();

  /// Returns a double uniform in (0, 1]; never returns exactly 0.
  /// Used for priority sampling where we divide by the result.
  double NextDoublePositive();

  /// Returns an integer uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  /// Returns a standard normal variate (Box-Muller, cached second value).
  double NextGaussian();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

/// Seed of site `site_id`'s private random stream: whiten(base_seed) ⊕
/// site_id. The base is passed through a SplitMix64 finalizer first so two
/// protocol instances with nearby base seeds (experiment harnesses hand
/// out seed, seed+1, ...) cannot alias site streams: a raw base ⊕ site
/// would make (base=101, site=3) and (base=102, site=0) identical.
///
/// Every randomized protocol derives one generator per site from its base
/// seed with this function, so site streams never share a generator — the
/// precondition for running sites on concurrent threads deterministically
/// (and the fix for the latent cross-site coupling the single shared
/// generator used to cause even serially).
inline uint64_t SiteStreamSeed(uint64_t base_seed, size_t site_id) {
  uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z ^ static_cast<uint64_t>(site_id);
}

/// One generator per site, seeded via SiteStreamSeed — the single place
/// every protocol builds its per-site streams from, so the derivation
/// scheme cannot drift between protocols.
inline std::vector<Rng> MakeSiteRngs(size_t num_sites, uint64_t base_seed) {
  std::vector<Rng> rngs;
  rngs.reserve(num_sites);
  for (size_t i = 0; i < num_sites; ++i) {
    rngs.emplace_back(SiteStreamSeed(base_seed, i));
  }
  return rngs;
}

}  // namespace dmt

#endif  // DMT_UTIL_RNG_H_
