#include "util/table_printer.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace dmt {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::FormatDouble(double v) {
  char buf[64];
  if (v == 0.0) {
    return "0";
  }
  double a = std::fabs(v);
  if (a >= 1e6 || a < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.4e", v);
  } else if (a >= 100.0 && v == std::floor(v)) {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.4f", v);
  }
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  };
  grow(header_);
  for (const auto& r : rows_) grow(r);

  std::ostringstream out;
  if (!title_.empty()) out << "== " << title_ << " ==\n";
  auto emit = [&out, &widths](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t w : widths) total += w + 2;
    out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out.str();
}

void TablePrinter::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dmt
