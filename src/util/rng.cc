#include "util/rng.h"

#include <cmath>

#include "util/check.h"

namespace dmt {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  for (auto& s : state_) s = SplitMix64(&seed);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDoublePositive() {
  // Uniform in (0, 1]: complement of [0, 1).
  return 1.0 - NextDouble();
}

uint64_t Rng::NextBelow(uint64_t n) {
  DMT_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDoublePositive();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

}  // namespace dmt
