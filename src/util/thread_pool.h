// Fixed-size thread pool for the parallel site simulation.
//
// Deliberately minimal: a single FIFO queue guarded by one mutex, no work
// stealing, no priorities. The simulation driver submits one task per site
// per synchronization round and then waits for all of them, so a fancier
// scheduler would buy nothing while making determinism audits harder.
#ifndef DMT_UTIL_THREAD_POOL_H_
#define DMT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dmt {

/// Fixed pool of worker threads consuming a shared FIFO task queue.
///
/// Tasks may be submitted from any thread. Exceptions thrown by a task are
/// captured and rethrown from the matching future's get(). The pool is
/// reusable: once all submitted tasks drain, further Submit calls behave
/// identically (nothing is torn down between batches).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);

  /// Signals shutdown and joins all workers. Queued tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the future resolves when it finishes (or rethrows
  /// what it threw). Must not be called after destruction has begun.
  std::future<void> Submit(std::function<void()> task);

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace dmt

#endif  // DMT_UTIL_THREAD_POOL_H_
