// Fixed-size thread pool for the parallel site simulation.
//
// Two submission paths:
//
//  - Submit(): a single FIFO queue guarded by one mutex — one
//    packaged_task + future per call. Fine for coarse, infrequent tasks
//    (and kept for compatibility), but per-task allocation and queue
//    traffic dominate when the work units are small.
//
//  - RunBatch(): the batch-reservation path the simulation driver uses.
//    One shared callable is broadcast to the workers; each worker claims
//    lane slots from a shared cursor and runs the callable once per slot.
//    No per-task queue nodes, futures, or heap allocations — the per-window
//    scheduling cost is one lock/notify cycle regardless of how many
//    sites the window touches.
#ifndef DMT_UTIL_THREAD_POOL_H_
#define DMT_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/contracts.h"

namespace dmt {

/// Fixed pool of worker threads consuming a shared FIFO task queue plus a
/// broadcast batch channel.
///
/// Tasks may be submitted from any thread. Exceptions thrown by a task are
/// captured and rethrown (from the matching future's get() for Submit, or
/// from RunBatch itself). The pool is reusable: once submitted work
/// drains, further Submit/RunBatch calls behave identically (nothing is
/// torn down between batches).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; 0 is clamped to 1.
  explicit ThreadPool(size_t num_threads);

  /// Signals shutdown and joins all workers. Queued tasks still run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`; the future resolves when it finishes (or rethrows
  /// what it threw). Must not be called after destruction has begun.
  std::future<void> Submit(std::function<void()> task);

  /// Runs `task(slot)` once for every slot in [0, fanout), spread across
  /// the pool's workers, and blocks the caller until every slot has
  /// finished. Slots are claimed by idle workers from a single shared
  /// cursor, so fanout may exceed the worker count (excess slots run as
  /// workers free up). Every slot runs even if an earlier one throws; the
  /// first captured exception is rethrown here after the barrier — the
  /// all-slots-complete guarantee the simulation driver's window schedule
  /// relies on. Must not be called concurrently with itself or from
  /// inside a pool task.
  void RunBatch(size_t fanout, const std::function<void(size_t)>& task);

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  DMT_GUARDED_BY(mutex_) std::queue<std::packaged_task<void()>> queue_;
  DMT_GUARDED_BY(mutex_) bool stopping_ = false;

  // Batch channel (all guarded by mutex_; the callable itself runs
  // unlocked). `batch_task_` points at RunBatch's argument, which outlives
  // the batch because RunBatch blocks until batch_done_ == batch_fanout_.
  DMT_GUARDED_BY(mutex_)
  const std::function<void(size_t)>* batch_task_ = nullptr;
  DMT_GUARDED_BY(mutex_) size_t batch_fanout_ = 0;
  DMT_GUARDED_BY(mutex_) size_t batch_next_ = 0;  // next unclaimed slot
  DMT_GUARDED_BY(mutex_) size_t batch_done_ = 0;  // completed slots
  DMT_GUARDED_BY(mutex_) bool batch_active_ = false;
  DMT_GUARDED_BY(mutex_) std::exception_ptr batch_error_;
  std::condition_variable batch_done_cv_;

  std::vector<std::thread> workers_;
};

}  // namespace dmt

#endif  // DMT_UTIL_THREAD_POOL_H_
