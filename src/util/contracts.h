// Machine-checked contract annotations.
//
// These macros mark the contracts that `tools/lint/dmt_lint` enforces at
// lint time (see tools/lint/README.md and the "Machine-checked contracts"
// section of docs/ARCHITECTURE.md). They are deliberately zero-cost: under
// GCC they expand to nothing (dmt_lint discovers them lexically and maps
// them onto the GENERIC AST), under Clang they additionally emit
// [[clang::annotate]] attributes so future Clang-based tooling can see
// them too.
//
// Placement rules (the lint tool relies on these):
//  * DMT_NO_ALLOC / DMT_ALLOC_OK go on the function *definition*, on the
//    line of (or up to two lines above) the function's signature. Putting
//    them only on a header declaration documents intent but does not bind
//    the checker; annotate the definition.
//  * DMT_NOALIAS goes directly before the parameter name inside the
//    definition's parameter list (it expands to `__restrict__`, so it also
//    tells the optimizer).
#ifndef DMT_UTIL_CONTRACTS_H_
#define DMT_UTIL_CONTRACTS_H_

// DMT_NO_ALLOC: this function (and everything reachable from it, minus
// DMT_ALLOC_OK barriers) must not allocate: no operator new / malloc, no
// growing std::vector / std::string, no Matrix reallocation. Enforced by
// dmt_lint's `noalloc-violation` check via a transitive call-graph walk.
//
// DMT_ALLOC_OK("reason"): explicitly allowlisted cold/setup path. The
// call-graph walk stops here instead of descending; the reason string is
// mandatory and should say why allocation is acceptable (one-time setup,
// shape change, error path). dmt_lint rejects an empty reason.
#if defined(__clang__)
#define DMT_NO_ALLOC [[clang::annotate("dmt::no_alloc")]]
#define DMT_ALLOC_OK(reason) [[clang::annotate("dmt::alloc_ok:" reason)]]
#else
#define DMT_NO_ALLOC
#define DMT_ALLOC_OK(reason)
#endif

// DMT_NOALIAS: parameter annotation for kernel buffers with a documented
// no-alias contract ("`c` must not alias `a` or `b`"). Expands to
// `__restrict__`, so the compiler may assume — and dmt_lint's
// `noalias-duplicate-arg` check verifies at every call site — that two
// DMT_NOALIAS parameters of the same call never receive provably
// identical buffers where at least one side is written.
#if defined(_MSC_VER)
#define DMT_NOALIAS __restrict
#else
#define DMT_NOALIAS __restrict__
#endif

#endif  // DMT_UTIL_CONTRACTS_H_
