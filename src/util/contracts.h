// Machine-checked contract annotations.
//
// These macros mark the contracts that `tools/lint/dmt_lint` enforces at
// lint time (see tools/lint/README.md and the "Machine-checked contracts"
// section of docs/ARCHITECTURE.md). They are deliberately zero-cost: under
// GCC they expand to nothing (dmt_lint discovers them lexically and maps
// them onto the GENERIC AST), under Clang they additionally emit
// [[clang::annotate]] attributes so future Clang-based tooling can see
// them too.
//
// Placement rules (the lint tool relies on these):
//  * DMT_NO_ALLOC / DMT_ALLOC_OK go on the function *definition*, on the
//    line of (or up to two lines above) the function's signature. Putting
//    them only on a header declaration documents intent but does not bind
//    the checker; annotate the definition.
//  * DMT_NOALIAS goes directly before the parameter name inside the
//    definition's parameter list (it expands to `__restrict__`, so it also
//    tells the optimizer).
//  * DMT_ATOMIC_PUBLISH / DMT_ATOMIC_COUNTER / DMT_GUARDED_BY go on the
//    field *declaration*, on the line of (or up to three lines above) the
//    field.
//  * DMT_WRITER_SIDE / DMT_UNTRUSTED_INPUT go on the function
//    *definition*, like DMT_NO_ALLOC.
#ifndef DMT_UTIL_CONTRACTS_H_
#define DMT_UTIL_CONTRACTS_H_

// DMT_NO_ALLOC: this function (and everything reachable from it, minus
// DMT_ALLOC_OK barriers) must not allocate: no operator new / malloc, no
// growing std::vector / std::string, no Matrix reallocation. Enforced by
// dmt_lint's `noalloc-violation` check via a transitive call-graph walk.
//
// DMT_ALLOC_OK("reason"): explicitly allowlisted cold/setup path. The
// call-graph walk stops here instead of descending; the reason string is
// mandatory and should say why allocation is acceptable (one-time setup,
// shape change, error path). dmt_lint rejects an empty reason.
#if defined(__clang__)
#define DMT_NO_ALLOC [[clang::annotate("dmt::no_alloc")]]
#define DMT_ALLOC_OK(reason) [[clang::annotate("dmt::alloc_ok:" reason)]]
#else
#define DMT_NO_ALLOC
#define DMT_ALLOC_OK(reason)
#endif

// DMT_NOALIAS: parameter annotation for kernel buffers with a documented
// no-alias contract ("`c` must not alias `a` or `b`"). Expands to
// `__restrict__`, so the compiler may assume — and dmt_lint's
// `noalias-duplicate-arg` check verifies at every call site — that two
// DMT_NOALIAS parameters of the same call never receive provably
// identical buffers where at least one side is written.
#if defined(_MSC_VER)
#define DMT_NOALIAS __restrict
#else
#define DMT_NOALIAS __restrict__
#endif

// Atomic-field classification (dmt_lint's atomics-discipline family).
//
// DMT_ATOMIC_PUBLISH: this std::atomic field carries synchronization — it
// publishes data another thread will read (RCU current pointer, epoch
// announcements, refcount pins, slot ownership flags). Every operation on
// it must name an explicit non-relaxed std::memory_order; dmt_lint's
// `atomic-publish-relaxed` check rejects relaxed operations, and
// `atomic-implicit-order` rejects defaulted (implicit seq_cst) orders and
// the operator forms (++/--/+=/=) that cannot name an order at all.
//
// DMT_ATOMIC_COUNTER: this std::atomic field is a pure statistic — it
// orders nothing and is only read for reporting after the threads that
// write it have joined (or where approximate values are acceptable).
// Operations must be explicitly memory_order_relaxed; anything stronger is
// an unjustified fence and dmt_lint's `atomic-counter-order` check rejects
// it. Every atomic field in the concurrency-scoped directories must carry
// exactly one of these two classifications (`atomic-unclassified`).
//
// DMT_GUARDED_BY(guard): this field may only be touched by code that holds
// `guard` — either a mutex member name (e.g. DMT_GUARDED_BY(mutex_)), or
// the reserved word `writer` meaning the single-writer role: only
// functions marked DMT_WRITER_SIDE (or reached exclusively from them) may
// touch the field. Enforced lexically by dmt_lint's
// `guard-unlocked-access` check over the per-TU call graph; constructors
// and the destructor of the owning class are exempt (no other thread can
// hold a reference yet / still).
//
// DMT_WRITER_SIDE: this function runs on the single writer thread of its
// data structure and may touch DMT_GUARDED_BY(writer) fields.
#if defined(__clang__)
#define DMT_ATOMIC_PUBLISH [[clang::annotate("dmt::atomic_publish")]]
#define DMT_ATOMIC_COUNTER [[clang::annotate("dmt::atomic_counter")]]
#define DMT_GUARDED_BY(guard) [[clang::annotate("dmt::guarded_by:" #guard)]]
#define DMT_WRITER_SIDE [[clang::annotate("dmt::writer_side")]]
#else
#define DMT_ATOMIC_PUBLISH
#define DMT_ATOMIC_COUNTER
#define DMT_GUARDED_BY(guard)
#define DMT_WRITER_SIDE
#endif

// DMT_UNTRUSTED_INPUT: this function parses bytes an adversary controls
// (wire frames, serialized messages). It must fail by returning an error —
// dmt_lint's `untrusted-input` family verifies that no path reachable from
// it calls an aborting function (`untrusted-abort-path`: the DMT_CHECK
// family, abort/exit/terminate), and that wire-derived sizes inside its
// body are clamped before they reach an allocation
// (`untrusted-unclamped-alloc`: a remaining()/FitsRemaining or kMax*
// bound, or a prior call to another DMT_UNTRUSTED_INPUT decoder that
// already validated the size).
#if defined(__clang__)
#define DMT_UNTRUSTED_INPUT [[clang::annotate("dmt::untrusted_input")]]
#else
#define DMT_UNTRUSTED_INPUT
#endif

#endif  // DMT_UTIL_CONTRACTS_H_
