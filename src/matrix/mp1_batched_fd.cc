#include "matrix/mp1_batched_fd.h"

#include <utility>

#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace matrix {

MP1BatchedFD::MP1BatchedFD(size_t num_sites, double eps)
    : eps_(eps),
      network_(num_sites),
      coordinator_sketch_(sketch::FrequentDirections::WithEpsilon(eps / 2)) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
  site_sketches_.reserve(num_sites);
  for (size_t i = 0; i < num_sites; ++i) {
    site_sketches_.push_back(
        sketch::FrequentDirections::WithEpsilon(eps / 2));
  }
  site_frob_.assign(num_sites, 0.0);
  site_fest_.assign(num_sites, 0.0);
  outbox_.resize(num_sites);
}

void MP1BatchedFD::ProcessRow(size_t site, const std::vector<double>& row) {
  SiteUpdate(site, row);
  DrainSite(site);  // only this site can have queued anything
}

void MP1BatchedFD::SiteUpdate(size_t site, const std::vector<double>& row) {
  DMT_CHECK_LT(site, site_sketches_.size());
  site_sketches_[site].Append(row);
  site_frob_[site] += linalg::SquaredNorm(row);

  const double m = static_cast<double>(network_.num_sites());
  // site_fest_ is the F-hat of the last broadcast the site has seen; it
  // only changes in Synchronize(), so this read is round-stable.
  const double tau = (eps_ / (2.0 * m)) * site_fest_[site];
  if (site_frob_[site] >= tau) EmitFlush(site);
}

void MP1BatchedFD::EmitFlush(size_t site) {
  sketch::FrequentDirections& sk = site_sketches_[site];
  // Each sketch row travels as one vector message; the scalar F_i
  // piggybacks on the batch (the paper's Algorithm 5.1 sends "(B_i, F_i)"
  // as one payload of |B_i| rows). An empty sketch still costs the scalar.
  for (size_t r = 0; r < sk.rows(); ++r) network_.RecordVector(site);
  if (sk.rows() == 0) network_.RecordScalar(site);

  const size_t dim = sk.dim();
  outbox_[site].push_back(PendingFlush{std::move(sk), site_frob_[site]});
  sk = sketch::FrequentDirections::WithEpsilon(eps_ / 2, dim);
  site_frob_[site] = 0.0;
}

void MP1BatchedFD::ApplyFlush(const PendingFlush& flush) {
  coordinator_sketch_.Merge(flush.sketch);
  coordinator_frob_ += flush.frob;

  if (broadcast_frob_ == 0.0 ||
      coordinator_frob_ / broadcast_frob_ > 1.0 + eps_ / 2.0) {
    broadcast_frob_ = coordinator_frob_;
    network_.RecordBroadcast();
    network_.RecordRound();
    for (auto& f : site_fest_) f = broadcast_frob_;
  }
}

void MP1BatchedFD::DrainSite(size_t site) {
  for (const PendingFlush& flush : outbox_[site]) ApplyFlush(flush);
  outbox_[site].clear();
}

void MP1BatchedFD::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void MP1BatchedFD::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

linalg::Matrix MP1BatchedFD::CoordinatorSketch() const {
  return coordinator_sketch_.sketch();
}

const stream::CommStats& MP1BatchedFD::comm_stats() const {
  return network_.stats();
}

}  // namespace matrix
}  // namespace dmt
