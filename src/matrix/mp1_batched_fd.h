// Matrix Protocol 1: batched Frequent Directions (paper Algorithms
// 5.1 / 5.2) — the matrix analogue of heavy-hitter protocol P1.
//
// Each site runs FD with eps' = eps/2 and tracks F_i, the squared
// Frobenius mass received since its last flush. When F_i reaches
// (eps/2m) * F-hat the sketch is shipped (each sketch row is one vector
// message) and the site resets. The coordinator merges received sketches
// into one FD sketch (mergeability keeps the bound) and re-broadcasts
// F-hat on (1 + eps/2)-factor growth.
//
// Guarantee: |‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F with O((m/ε²) log(βN)) rows of
// communication.
#ifndef DMT_MATRIX_MP1_BATCHED_FD_H_
#define DMT_MATRIX_MP1_BATCHED_FD_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "matrix/matrix_protocol.h"
#include "sketch/frequent_directions.h"
#include "stream/network.h"

namespace dmt {
namespace matrix {

/// Deterministic batched-FD protocol (MP1).
class MP1BatchedFD : public MatrixTrackingProtocol {
 public:
  MP1BatchedFD(size_t num_sites, double eps);

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  void SiteUpdate(size_t site, const std::vector<double>& row) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  linalg::Matrix CoordinatorSketch() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P1"; }

  double coordinator_frobenius() const { return coordinator_frob_; }

 private:
  /// A site's shipped batch awaiting coordinator delivery: the FD sketch
  /// snapshot plus the squared Frobenius mass F_i since its last flush.
  struct PendingFlush {
    sketch::FrequentDirections sketch;
    double frob;
  };

  // Site half of a flush (messages + outbox + site reset).
  void EmitFlush(size_t site);
  // Delivers one site's queued flushes in emission order.
  void DrainSite(size_t site);
  // Coordinator half (merge + F_C + possible F-hat broadcast).
  void ApplyFlush(const PendingFlush& flush);

  double eps_;
  stream::Network network_;
  std::vector<sketch::FrequentDirections> site_sketches_;
  std::vector<double> site_frob_;   // F_i since last flush
  std::vector<double> site_fest_;   // F-hat as known by each site
  std::vector<std::vector<PendingFlush>> outbox_;  // per-site, FIFO
  sketch::FrequentDirections coordinator_sketch_;
  double coordinator_frob_ = 0.0;   // F_C
  double broadcast_frob_ = 0.0;     // last broadcast F-hat
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_MP1_BATCHED_FD_H_
