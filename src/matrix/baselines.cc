#include "matrix/baselines.h"

#include <cmath>

#include "linalg/svd.h"

namespace dmt {
namespace matrix {

NaiveFdBaseline::NaiveFdBaseline(size_t num_sites, size_t ell)
    : network_(num_sites), outbox_(num_sites), fd_(ell) {}

void NaiveFdBaseline::ProcessRow(size_t site,
                                 const std::vector<double>& row) {
  network_.RecordVector(site);
  fd_.Append(row);
}

void NaiveFdBaseline::SiteUpdate(size_t site, const std::vector<double>& row) {
  network_.RecordVector(site);
  outbox_[site].push_back(row);
}

void NaiveFdBaseline::Synchronize() {
  // Batch each site's queued rows through the FD bulk path: one shrink
  // per buffer fill instead of one per ell appended rows.
  linalg::Matrix batch;
  for (auto& site_outbox : outbox_) {
    for (const auto& row : site_outbox) batch.AppendRow(row);
    site_outbox.clear();
  }
  fd_.AppendRows(batch);
}

void NaiveFdBaseline::SynchronizeSites(const uint32_t* sites, size_t count) {
  // Sites absent from the list have empty outboxes, so this builds the
  // same ascending-site batch as the full scan.
  linalg::Matrix batch;
  for (size_t i = 0; i < count; ++i) {
    auto& site_outbox = outbox_[sites[i]];
    for (const auto& row : site_outbox) batch.AppendRow(row);
    site_outbox.clear();
  }
  fd_.AppendRows(batch);
}

linalg::Matrix NaiveFdBaseline::CoordinatorSketch() const {
  return fd_.sketch();
}

const stream::CommStats& NaiveFdBaseline::comm_stats() const {
  return network_.stats();
}

NaiveSvdBaseline::NaiveSvdBaseline(size_t num_sites, size_t dim, size_t k)
    : k_(k), network_(num_sites), outbox_(num_sites), cov_(dim) {}

void NaiveSvdBaseline::ProcessRow(size_t site,
                                  const std::vector<double>& row) {
  network_.RecordVector(site);
  cov_.AddRow(row);
}

void NaiveSvdBaseline::SiteUpdate(size_t site,
                                  const std::vector<double>& row) {
  network_.RecordVector(site);
  outbox_[site].push_back(row);
}

void NaiveSvdBaseline::Synchronize() {
  // One blocked Gram accumulation over the round's rows instead of a
  // rank-1 sweep per row.
  linalg::Matrix batch;
  for (auto& site_outbox : outbox_) {
    for (const auto& row : site_outbox) batch.AppendRow(row);
    site_outbox.clear();
  }
  cov_.AddRows(batch);
}

void NaiveSvdBaseline::SynchronizeSites(const uint32_t* sites, size_t count) {
  // Same ascending-site batch as the full scan (unlisted outboxes are
  // empty by the driver's contract).
  linalg::Matrix batch;
  for (size_t i = 0; i < count; ++i) {
    auto& site_outbox = outbox_[sites[i]];
    for (const auto& row : site_outbox) batch.AppendRow(row);
    site_outbox.clear();
  }
  cov_.AddRows(batch);
}

linalg::Matrix NaiveSvdBaseline::CoordinatorSketch() const {
  linalg::RightSingular rs = linalg::RightSingularFromGram(cov_.gram());
  linalg::Matrix b(0, cov_.dim());
  for (size_t i = 0; i < rs.squared_sigma.size() && i < k_; ++i) {
    if (rs.squared_sigma[i] <= 0.0) break;
    const double s = std::sqrt(rs.squared_sigma[i]);
    std::vector<double> row(cov_.dim());
    for (size_t j = 0; j < cov_.dim(); ++j) row[j] = s * rs.v(j, i);
    b.AppendRow(row);
  }
  return b;
}

linalg::Matrix NaiveSvdBaseline::CoordinatorGram() const {
  return CoordinatorSketch().Gram();
}

const stream::CommStats& NaiveSvdBaseline::comm_stats() const {
  return network_.stats();
}

}  // namespace matrix
}  // namespace dmt
