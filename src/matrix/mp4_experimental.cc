#include "matrix/mp4_experimental.h"

#include <cmath>
#include <limits>

#include "linalg/kernels.h"
#include "linalg/svd.h"
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace matrix {

MP4Experimental::MP4Experimental(size_t num_sites, double eps, uint64_t seed,
                                 const MP4Options& options)
    : eps_(eps),
      options_(options),
      network_(num_sites),
      site_rngs_(MakeSiteRngs(num_sites, seed)),
      weight_tracker_(&network_),
      sites_(num_sites),
      site_contribution_(num_sites) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
}

double MP4Experimental::CurrentP() const {
  const double fest = weight_tracker_.EstimateAtSites();
  if (fest <= 0.0) return std::numeric_limits<double>::infinity();
  const double m = static_cast<double>(network_.num_sites());
  return 2.0 * std::sqrt(m) / (eps_ * fest);
}

void MP4Experimental::ProcessRow(size_t site,
                                 const std::vector<double>& row) {
  DMT_CHECK_LT(site, sites_.size());
  if (dim_ == 0) {
    dim_ = row.size();
    coord_gram_ = linalg::Matrix(dim_, dim_);
    for (size_t j = 0; j < sites_.size(); ++j) {
      sites_[j].gram = linalg::Matrix(dim_, dim_);
      // The frozen basis: identity. Any fixed orthonormal basis exhibits
      // the same failure; identity is what svd of an empty matrix yields.
      sites_[j].basis = linalg::Matrix::Identity(dim_);
      sites_[j].z.assign(dim_, 0.0);
      site_contribution_[j] = linalg::Matrix(dim_, dim_);
      if (options_.realign_rounds > 0) {
        sites_[j].local_fd = sketch::FrequentDirections(
            options_.realign_sketch_rows, dim_);
      }
    }
  }
  DMT_CHECK_EQ(row.size(), dim_);

  SiteState& st = sites_[site];
  const double w = linalg::SquaredNorm(row);
  st.gram.AddOuterProduct(1.0, row);
  if (options_.realign_rounds > 0) st.local_fd.Append(row);

  const bool broadcast_happened = weight_tracker_.Observe(site, w);
  if (broadcast_happened) ++broadcast_rounds_;

  if (options_.realign_rounds > 0 &&
      broadcast_rounds_ >=
          st.rounds_at_last_realign + options_.realign_rounds) {
    Realign(site);
  }

  const double p = CurrentP();
  const double send_prob = std::isinf(p) ? 1.0 : 1.0 - std::exp(-p * w);
  if (site_rngs_[site].NextDouble() < send_prob) SendZ(site);
}

void MP4Experimental::SendZ(size_t site) {
  SiteState& st = sites_[site];
  const double p = CurrentP();
  const double correction = std::isinf(p) ? 0.0 : 1.0 / p;

  // z_i = sqrt(‖A_j v_i‖² + 1/p) along every frozen direction. One
  // blocked GEMM gives G V for all directions at once; the quadratic form
  // along direction i is then the column-i dot of V and G V.
  linalg::Matrix gv = st.gram.Multiply(st.basis);
  std::vector<double> z2(dim_);
  for (size_t i = 0; i < dim_; ++i) {
    double along = 0.0;
    for (size_t j = 0; j < dim_; ++j) along += st.basis(j, i) * gv(j, i);
    st.z[i] = std::sqrt(std::max(0.0, along) + correction);
    z2[i] = st.z[i] * st.z[i];
  }
  network_.RecordVector(site);  // the d-vector z is one message

  // Both the site and the coordinator set A-hat_j = Z V^T; the coordinator
  // replaces this site's Gram contribution V diag(z^2) V^T. The rows of
  // V^T are the directions, so this is one batched rank-1 pass.
  linalg::Matrix vt = st.basis.Transposed();
  linalg::Matrix contribution(dim_, dim_);
  linalg::kernels::BatchedRank1(vt.Row(0), z2.data(), dim_, dim_,
                                contribution.Row(0));
  coord_gram_.Subtract(site_contribution_[site]);
  coord_gram_.Add(contribution);
  site_contribution_[site] = std::move(contribution);
}

void MP4Experimental::Realign(size_t site) {
  SiteState& st = sites_[site];
  st.rounds_at_last_realign = broadcast_rounds_;

  // Ship the local FD sketch (one message per sketch row) and adopt its
  // right singular basis as the new V with z = singular values.
  linalg::Matrix sk = st.local_fd.sketch();
  for (size_t r = 0; r < sk.rows(); ++r) network_.RecordVector(site);

  linalg::RightSingular rs = linalg::RightSingularFromGram(sk.Gram());
  st.basis = rs.v;
  for (size_t i = 0; i < dim_; ++i) {
    st.z[i] = std::sqrt(
        i < rs.squared_sigma.size() ? rs.squared_sigma[i] : 0.0);
  }
  linalg::Matrix contribution = sk.Gram();
  coord_gram_.Subtract(site_contribution_[site]);
  coord_gram_.Add(contribution);
  site_contribution_[site] = std::move(contribution);
}

linalg::Matrix MP4Experimental::CoordinatorSketch() const {
  linalg::Matrix b(0, dim_);
  if (dim_ == 0) return b;
  linalg::RightSingular rs = linalg::RightSingularFromGram(coord_gram_);
  for (size_t i = 0; i < rs.squared_sigma.size(); ++i) {
    if (rs.squared_sigma[i] <= 0.0) break;
    const double s = std::sqrt(rs.squared_sigma[i]);
    std::vector<double> row(dim_);
    for (size_t j = 0; j < dim_; ++j) row[j] = s * rs.v(j, i);
    b.AppendRow(row);
  }
  return b;
}

linalg::Matrix MP4Experimental::CoordinatorGram() const {
  if (dim_ == 0) return linalg::Matrix();
  return coord_gram_;
}

const stream::CommStats& MP4Experimental::comm_stats() const {
  return network_.stats();
}

}  // namespace matrix
}  // namespace dmt
