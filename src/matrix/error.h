// The paper's approximation-error metric and the streaming ground-truth
// tracker used to evaluate it.
//
//   err = ||A^T A - B^T B||_2 / ||A||_F^2
//       = max_{unit x} |‖Ax‖² − ‖Bx‖²| / ‖A‖²_F
//
// computed via two top-1 Lanczos solves on the d x d difference (only the
// spectral extremes are needed; the exact Jacobi route remains the
// fallback when a partial solve misses its residual tolerance).
#ifndef DMT_MATRIX_ERROR_H_
#define DMT_MATRIX_ERROR_H_

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"

namespace dmt {
namespace matrix {

/// Streaming exact covariance of the full stream matrix A (the evaluation
/// oracle; protocols never see this).
class CovarianceTracker {
 public:
  explicit CovarianceTracker(size_t dim);

  /// Accounts one row of A.
  void AddRow(const std::vector<double>& row);
  void AddRow(const double* row, size_t n);

  /// Accounts every row of `rows` in one blocked Gram accumulation.
  void AddRows(const linalg::Matrix& rows);

  const linalg::Matrix& gram() const { return gram_; }
  double squared_frobenius() const { return sq_frob_; }
  size_t rows_seen() const { return rows_seen_; }
  size_t dim() const { return dim_; }

 private:
  size_t dim_;
  linalg::Matrix gram_;
  double sq_frob_ = 0.0;
  size_t rows_seen_ = 0;
};

/// err given both Gram matrices and ||A||_F^2.
double CovarianceError(const linalg::Matrix& gram_a,
                       const linalg::Matrix& gram_b, double frob_a_sq);

/// err of a sketch Gram against the tracked ground truth.
double CovarianceError(const CovarianceTracker& truth,
                       const linalg::Matrix& gram_b);

/// Signed directional error extrema: returns {min, max} over unit x of
/// (‖Ax‖² − ‖Bx‖²) / ‖A‖²_F. Used to verify one-sided guarantees (MP2
/// never overestimates: min >= 0 up to roundoff).
struct DirectionalErrorRange {
  double min_error = 0.0;
  double max_error = 0.0;
};
DirectionalErrorRange SignedCovarianceError(const linalg::Matrix& gram_a,
                                            const linalg::Matrix& gram_b,
                                            double frob_a_sq);

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_ERROR_H_
