#include "matrix/mp3_sampling.h"

#include <algorithm>
#include <cmath>

#include "hh/p3_sampling.h"  // SampleSizeForEpsilon
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace matrix {
MP3SamplingWoR::MP3SamplingWoR(size_t num_sites, double eps, uint64_t seed,
                               size_t sample_size)
    : s_(sample_size != 0 ? sample_size : hh::SampleSizeForEpsilon(eps)),
      network_(num_sites),
      site_rngs_(MakeSiteRngs(num_sites, seed)),
      outbox_(num_sites) {}

void MP3SamplingWoR::ProcessRow(size_t site,
                                const std::vector<double>& row) {
  SiteUpdate(site, row);
  DrainSite(site);  // only this site can have queued anything
}

void MP3SamplingWoR::SiteUpdate(size_t site, const std::vector<double>& row) {
  DMT_CHECK_LT(site, site_rngs_.size());
  const double w = linalg::SquaredNorm(row);
  if (w <= 0.0) return;  // zero rows carry no covariance mass
  const double rho = w / site_rngs_[site].NextDoublePositive();
  // tau_ only moves at Synchronize(); within a round every site compares
  // against the threshold of the last broadcast it has seen.
  if (rho < tau_) return;
  network_.RecordVector(site);
  outbox_[site].push_back(SampledRow{row, w, rho});
}

void MP3SamplingWoR::DrainSite(size_t site) {
  for (SampledRow& sr : outbox_[site]) {
    // Rows can arrive after tau doubled past their priority (sent before
    // this round's broadcast reached the site); the coordinator drops
    // them to keep the pool invariant "priority >= current tau".
    if (sr.priority < tau_) continue;
    if (sr.priority >= 2.0 * tau_) {
      q_next_.push_back(std::move(sr));
      EndRoundIfNeeded();
    } else {
      q_cur_.push_back(std::move(sr));
    }
  }
  outbox_[site].clear();
}

void MP3SamplingWoR::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void MP3SamplingWoR::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

void MP3SamplingWoR::EndRoundIfNeeded() {
  while (q_next_.size() >= s_) {
    tau_ *= 2.0;
    tau_ever_doubled_ = true;
    network_.RecordBroadcast();
    network_.RecordRound();
    q_cur_.clear();
    std::vector<SampledRow> promoted;
    for (auto& e : q_next_) {
      if (e.priority >= 2.0 * tau_) {
        promoted.push_back(std::move(e));
      } else {
        q_cur_.push_back(std::move(e));
      }
    }
    q_next_ = std::move(promoted);
  }
}

linalg::Matrix MP3SamplingWoR::CoordinatorSketch() const {
  linalg::Matrix b;
  std::vector<const SampledRow*> pool;
  pool.reserve(q_cur_.size() + q_next_.size());
  for (const auto& e : q_cur_) pool.push_back(&e);
  for (const auto& e : q_next_) pool.push_back(&e);
  if (pool.empty()) return b;

  // While the threshold never doubled, every row was forwarded: B = A.
  if (!tau_ever_doubled_) {
    for (const auto* e : pool) b.AppendRow(e->row);
    return b;
  }

  // Priority-sampling estimate: the smallest priority acts as rho-hat and
  // its row is dropped; every kept row is rescaled to squared norm
  // max(w, rho-hat).
  auto min_it = std::min_element(
      pool.begin(), pool.end(), [](const SampledRow* a, const SampledRow* b) {
        return a->priority < b->priority;
      });
  const double rho_hat = (*min_it)->priority;
  for (const auto* e : pool) {
    if (e == *min_it) continue;
    if (e->weight >= rho_hat) {
      b.AppendRow(e->row);
    } else {
      std::vector<double> scaled = e->row;
      linalg::Scale(std::sqrt(rho_hat / e->weight), scaled.data(),
                    scaled.size());
      b.AppendRow(scaled);
    }
  }
  return b;
}

const stream::CommStats& MP3SamplingWoR::comm_stats() const {
  return network_.stats();
}

MP3SamplingWR::MP3SamplingWR(size_t num_sites, double eps, uint64_t seed,
                             size_t sample_size)
    : s_(sample_size != 0 ? sample_size : hh::SampleSizeForEpsilon(eps)),
      network_(num_sites),
      site_rngs_(MakeSiteRngs(num_sites, seed)),
      slots_(s_),
      slots_below_2tau_(s_),
      outbox_(num_sites) {}

void MP3SamplingWR::ProcessRow(size_t site, const std::vector<double>& row) {
  SiteUpdate(site, row);
  DrainSite(site);  // only this site can have queued anything
}

void MP3SamplingWR::SiteUpdate(size_t site, const std::vector<double>& row) {
  DMT_CHECK_LT(site, site_rngs_.size());
  const double w = linalg::SquaredNorm(row);
  if (w <= 0.0) return;
  Rng& rng = site_rngs_[site];
  const double p = std::min(1.0, w / tau_);
  size_t t;
  if (p >= 1.0) {
    t = 0;
  } else {
    t = static_cast<size_t>(std::log(rng.NextDoublePositive()) /
                            std::log(1.0 - p));
  }
  PendingSends sends{row, w, {}};
  while (t < s_) {
    const double u = rng.NextDoublePositive() * p;
    sends.hits.emplace_back(t, w / u);
    network_.RecordVector(site);
    if (p >= 1.0) {
      ++t;
    } else {
      t += 1 + static_cast<size_t>(std::log(rng.NextDoublePositive()) /
                                   std::log(1.0 - p));
    }
  }
  if (!sends.hits.empty()) outbox_[site].push_back(std::move(sends));
}

void MP3SamplingWR::ApplySlotUpdate(size_t t, const std::vector<double>& row,
                                    double weight, double rho) {
  Slot& slot = slots_[t];
  if (rho > slot.top_priority) {
    const double old_second = slot.second_priority;
    slot.second_priority = slot.top_priority;
    slot.row = row;
    slot.weight = weight;
    slot.top_priority = rho;
    if (old_second <= 2.0 * tau_ && slot.second_priority > 2.0 * tau_) {
      --slots_below_2tau_;
    }
  } else if (rho > slot.second_priority) {
    if (slot.second_priority <= 2.0 * tau_ && rho > 2.0 * tau_) {
      --slots_below_2tau_;
    }
    slot.second_priority = rho;
  }
}

void MP3SamplingWR::DrainSite(size_t site) {
  for (const PendingSends& sends : outbox_[site]) {
    for (const auto& [t, rho] : sends.hits) {
      ApplySlotUpdate(t, sends.row, sends.weight, rho);
    }
    // One round check per row, matching the per-row serial schedule.
    EndRoundIfNeeded();
  }
  outbox_[site].clear();
}

void MP3SamplingWR::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void MP3SamplingWR::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

void MP3SamplingWR::EndRoundIfNeeded() {
  while (slots_below_2tau_ == 0) {
    tau_ *= 2.0;
    network_.RecordBroadcast();
    network_.RecordRound();
    slots_below_2tau_ = 0;
    for (const Slot& slot : slots_) {
      if (slot.second_priority <= 2.0 * tau_) ++slots_below_2tau_;
    }
  }
}

linalg::Matrix MP3SamplingWR::CoordinatorSketch() const {
  // W-hat = mean of the per-sampler second priorities (unbiased for W);
  // each sampled row is rescaled to carry exactly W-hat/s squared norm.
  linalg::Matrix b;
  double sum_second = 0.0;
  size_t live = 0;
  for (const Slot& slot : slots_) {
    if (slot.top_priority > 0.0) {
      sum_second += slot.second_priority;
      ++live;
    }
  }
  if (live == 0) return b;
  const double what = sum_second / static_cast<double>(live);
  const double target = what / static_cast<double>(live);
  for (const Slot& slot : slots_) {
    if (slot.top_priority <= 0.0) continue;
    std::vector<double> scaled = slot.row;
    linalg::Scale(std::sqrt(target / slot.weight), scaled.data(),
                  scaled.size());
    b.AppendRow(scaled);
  }
  return b;
}

const stream::CommStats& MP3SamplingWR::comm_stats() const {
  return network_.stats();
}

}  // namespace matrix
}  // namespace dmt
