// Common interface for distributed matrix tracking protocols
// (paper Section 5 and Appendix C).
#ifndef DMT_MATRIX_MATRIX_PROTOCOL_H_
#define DMT_MATRIX_MATRIX_PROTOCOL_H_

#include <cstddef>

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "stream/comm_stats.h"

namespace dmt {
namespace matrix {

/// A distributed matrix tracking protocol: rows arrive at sites; the
/// coordinator continuously maintains a small approximation B of the
/// stacked stream matrix A such that |‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F.
class MatrixTrackingProtocol {
 public:
  virtual ~MatrixTrackingProtocol() = default;

  /// Processes one row arriving at `site`.
  virtual void ProcessRow(size_t site, const std::vector<double>& row) = 0;

  /// The coordinator's current approximation B (rows stacked).
  virtual linalg::Matrix CoordinatorSketch() const = 0;

  /// B^T B. Default derives it from the sketch; protocols that maintain a
  /// Gram matrix directly override this with the cheaper exact path.
  virtual linalg::Matrix CoordinatorGram() const {
    return CoordinatorSketch().Gram();
  }

  /// Communication counters so far.
  virtual const stream::CommStats& comm_stats() const = 0;

  /// Short display name (e.g. "P2").
  virtual std::string name() const = 0;
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_MATRIX_PROTOCOL_H_
