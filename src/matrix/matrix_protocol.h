// Common interface for distributed matrix tracking protocols
// (paper Section 5 and Appendix C).
#ifndef DMT_MATRIX_MATRIX_PROTOCOL_H_
#define DMT_MATRIX_MATRIX_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "stream/comm_stats.h"

namespace dmt {
namespace matrix {

/// A distributed matrix tracking protocol: rows arrive at sites; the
/// coordinator continuously maintains a small approximation B of the
/// stacked stream matrix A.
///
/// Approximation contract (paper Section 5): at all times and for every
/// unit vector x,
///
///   |‖Ax‖² − ‖Bx‖²| ≤ ε‖A‖²_F,
///
/// equivalently ‖AᵀA − BᵀB‖₂ ≤ ε‖A‖²_F — the metric
/// matrix::CovarianceError reports as `err` (dimensionless, relative to
/// the stream's total squared Frobenius mass). The one-sided protocols
/// (MP1/MP2, built on Frequent Directions) additionally never
/// overestimate: 0 ≤ ‖Ax‖² − ‖Bx‖².
///
/// Row weights are squared Euclidean norms; the analysis assumes
/// ‖row‖² ∈ (0, β] with β known to all sites (datasets are normalized
/// to β = 100 — see docs/DATASETS.md). Communication is counted in
/// *messages* (stream::CommStats), the paper's unit: one site→coordinator
/// report or one coordinator→sites broadcast each count 1 per receiver.
class MatrixTrackingProtocol {
 public:
  virtual ~MatrixTrackingProtocol() = default;

  /// Processes one row arriving at `site`. Serial entry point: any
  /// triggered site->coordinator messages are delivered (and broadcasts
  /// applied) before this returns.
  virtual void ProcessRow(size_t site, const std::vector<double>& row) = 0;

  /// Site-local half of ProcessRow(): updates only state owned by `site`
  /// (including that site's network shard) and queues outgoing messages in
  /// a per-site outbox for the next Synchronize(). When
  /// SupportsConcurrentSiteUpdates() is true, calls for *distinct* sites
  /// may run concurrently between two Synchronize() calls; calls for the
  /// same site must stay on one thread. Default: serial ProcessRow()
  /// (correct, but not concurrency-safe).
  virtual void SiteUpdate(size_t site, const std::vector<double>& row) {
    ProcessRow(site, row);
  }

  /// Coordinator half: drains every site's outbox in ascending site order
  /// (emission order within a site), applying merges and broadcasts. Must
  /// run on a single thread with no concurrent SiteUpdate — the simulation
  /// driver calls it at round boundaries. Default: no-op (matches the
  /// default SiteUpdate, which delivers immediately).
  virtual void Synchronize() {}

  /// Targeted coordinator half: drains exactly the listed sites' outboxes,
  /// in the given order. The driver passes the ascending-sorted set of
  /// sites whose outboxes are non-empty (collected from the workers'
  /// per-lane publication buffers), so this applies the exact total order
  /// of Synchronize() — ascending site, emission order within a site —
  /// without the O(num_sites) scan. Equivalence requires every unlisted
  /// site's outbox to be empty. Same threading contract as Synchronize().
  /// Default: full Synchronize() scan (always correct).
  virtual void SynchronizeSites(const uint32_t* sites, size_t count) {
    (void)sites;
    (void)count;
    Synchronize();
  }

  /// True when SynchronizeSites() implements a real targeted drain. The
  /// driver then skips the full scan; otherwise every window costs one
  /// all-sites Synchronize() (counted as a drain stall in
  /// stream::SchedulerStats).
  virtual bool SupportsTargetedDrain() const { return false; }

  /// Messages queued in `site`'s outbox awaiting the next drain. Workers
  /// call this right after the site's last SiteUpdate of a window to
  /// decide whether to publish the site for draining — same concurrency
  /// contract as SiteUpdate (distinct sites from distinct threads).
  /// Default: SIZE_MAX, "unknown — always publish".
  virtual size_t PendingOutboxSize(size_t site) const {
    (void)site;
    return SIZE_MAX;
  }

  /// True when SiteUpdate() touches only per-site state and may therefore
  /// run concurrently for distinct sites.
  virtual bool SupportsConcurrentSiteUpdates() const { return false; }

  /// The coordinator's current approximation B (rows stacked; at most
  /// O(1/ε) rows of dimension d). Safe to call only between rounds /
  /// after the run, like comm_stats().
  virtual linalg::Matrix CoordinatorSketch() const = 0;

  /// B^T B. Default derives it from the sketch; protocols that maintain a
  /// Gram matrix directly override this with the cheaper exact path.
  virtual linalg::Matrix CoordinatorGram() const {
    return CoordinatorSketch().Gram();
  }

  /// Deep-copied coordinator sketch for the serving layer
  /// (serve::BuildSnapshot). The returned matrix must own every element —
  /// nothing may alias live protocol buffers, so a pinned snapshot stays
  /// bit-identical while ingestion continues. Same threading contract as
  /// CoordinatorSketch(): call only between rounds / after the run.
  /// Default: CoordinatorSketch(), which already returns by value.
  virtual linalg::Matrix ExportSnapshotSketch() const {
    return CoordinatorSketch();
  }

  /// Communication counters so far.
  virtual const stream::CommStats& comm_stats() const = 0;

  /// Per-site upstream message counts (index = site id). Same
  /// synchronization requirement as comm_stats(): call only between
  /// rounds / after the run.
  virtual std::vector<uint64_t> per_site_messages() const = 0;

  /// Short display name (e.g. "P2").
  virtual std::string name() const = 0;
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_MATRIX_PROTOCOL_H_
