#include "matrix/error.h"

#include <algorithm>
#include <cmath>

#include "linalg/kernels.h"
#include "linalg/lanczos.h"
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace matrix {

CovarianceTracker::CovarianceTracker(size_t dim)
    : dim_(dim), gram_(dim, dim) {
  DMT_CHECK_GE(dim, 1u);
}

void CovarianceTracker::AddRow(const std::vector<double>& row) {
  AddRow(row.data(), row.size());
}

void CovarianceTracker::AddRow(const double* row, size_t n) {
  DMT_CHECK_EQ(n, dim_);
  linalg::kernels::Rank1Update(1.0, row, gram_.Row(0), dim_);
  sq_frob_ += linalg::SquaredNorm(row, n);
  ++rows_seen_;
}

void CovarianceTracker::AddRows(const linalg::Matrix& rows) {
  if (rows.rows() == 0) return;
  DMT_CHECK_EQ(rows.cols(), dim_);
  linalg::kernels::GramAccumulate(rows.Row(0), rows.rows(), dim_,
                                  gram_.Row(0));
  sq_frob_ += rows.SquaredFrobeniusNorm();
  rows_seen_ += rows.rows();
}

double CovarianceError(const linalg::Matrix& gram_a,
                       const linalg::Matrix& gram_b, double frob_a_sq) {
  DMT_CHECK_GT(frob_a_sq, 0.0);
  linalg::Matrix diff = gram_a;
  diff.Subtract(gram_b);
  // Only the two spectral extremes of the (indefinite) difference matter,
  // so this goes through the partial Lanczos solver — two top-1 solves
  // instead of a full d x d Jacobi decomposition. Falls back to the exact
  // route internally if a solve misses its residual tolerance.
  return linalg::SpectralNormSymmetricLanczos(diff) / frob_a_sq;
}

double CovarianceError(const CovarianceTracker& truth,
                       const linalg::Matrix& gram_b) {
  return CovarianceError(truth.gram(), gram_b, truth.squared_frobenius());
}

DirectionalErrorRange SignedCovarianceError(const linalg::Matrix& gram_a,
                                            const linalg::Matrix& gram_b,
                                            double frob_a_sq) {
  DMT_CHECK_GT(frob_a_sq, 0.0);
  linalg::Matrix diff = gram_a;
  diff.Subtract(gram_b);
  DirectionalErrorRange out;
  if (diff.rows() == 0) return out;
  // Only the two spectral extremes of the difference are needed; the
  // partial solver (with its built-in exact fallback) provides both.
  double lambda_min = 0.0, lambda_max = 0.0;
  linalg::SymmetricEigenExtremesLanczos(diff, &lambda_min, &lambda_max);
  out.max_error = lambda_max / frob_a_sq;
  out.min_error = lambda_min / frob_a_sq;
  return out;
}

}  // namespace matrix
}  // namespace dmt
