#include "matrix/error.h"

#include <algorithm>
#include <cmath>

#include "linalg/jacobi_eigen.h"
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace matrix {

CovarianceTracker::CovarianceTracker(size_t dim)
    : dim_(dim), gram_(dim, dim) {
  DMT_CHECK_GE(dim, 1u);
}

void CovarianceTracker::AddRow(const std::vector<double>& row) {
  AddRow(row.data(), row.size());
}

void CovarianceTracker::AddRow(const double* row, size_t n) {
  DMT_CHECK_EQ(n, dim_);
  for (size_t i = 0; i < dim_; ++i) {
    const double ri = row[i];
    if (ri == 0.0) continue;
    double* g = gram_.Row(i);
    for (size_t j = 0; j < dim_; ++j) g[j] += ri * row[j];
  }
  sq_frob_ += linalg::SquaredNorm(row, n);
  ++rows_seen_;
}

double CovarianceError(const linalg::Matrix& gram_a,
                       const linalg::Matrix& gram_b, double frob_a_sq) {
  DMT_CHECK_GT(frob_a_sq, 0.0);
  linalg::Matrix diff = gram_a;
  diff.Subtract(gram_b);
  return linalg::SpectralNormSymmetric(diff) / frob_a_sq;
}

double CovarianceError(const CovarianceTracker& truth,
                       const linalg::Matrix& gram_b) {
  return CovarianceError(truth.gram(), gram_b, truth.squared_frobenius());
}

DirectionalErrorRange SignedCovarianceError(const linalg::Matrix& gram_a,
                                            const linalg::Matrix& gram_b,
                                            double frob_a_sq) {
  DMT_CHECK_GT(frob_a_sq, 0.0);
  linalg::Matrix diff = gram_a;
  diff.Subtract(gram_b);
  linalg::EigenDecomposition e = linalg::SymmetricEigen(diff);
  DirectionalErrorRange out;
  if (e.eigenvalues.empty()) return out;
  out.max_error = e.eigenvalues.front() / frob_a_sq;
  out.min_error = e.eigenvalues.back() / frob_a_sq;
  return out;
}

}  // namespace matrix
}  // namespace dmt
