#include "matrix/error.h"

#include <algorithm>
#include <cmath>

#include "linalg/jacobi_eigen.h"
#include "linalg/kernels.h"
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace matrix {

CovarianceTracker::CovarianceTracker(size_t dim)
    : dim_(dim), gram_(dim, dim) {
  DMT_CHECK_GE(dim, 1u);
}

void CovarianceTracker::AddRow(const std::vector<double>& row) {
  AddRow(row.data(), row.size());
}

void CovarianceTracker::AddRow(const double* row, size_t n) {
  DMT_CHECK_EQ(n, dim_);
  linalg::kernels::Rank1Update(1.0, row, gram_.Row(0), dim_);
  sq_frob_ += linalg::SquaredNorm(row, n);
  ++rows_seen_;
}

void CovarianceTracker::AddRows(const linalg::Matrix& rows) {
  if (rows.rows() == 0) return;
  DMT_CHECK_EQ(rows.cols(), dim_);
  linalg::kernels::GramAccumulate(rows.Row(0), rows.rows(), dim_,
                                  gram_.Row(0));
  sq_frob_ += rows.SquaredFrobeniusNorm();
  rows_seen_ += rows.rows();
}

double CovarianceError(const linalg::Matrix& gram_a,
                       const linalg::Matrix& gram_b, double frob_a_sq) {
  DMT_CHECK_GT(frob_a_sq, 0.0);
  linalg::Matrix diff = gram_a;
  diff.Subtract(gram_b);
  return linalg::SpectralNormSymmetric(diff) / frob_a_sq;
}

double CovarianceError(const CovarianceTracker& truth,
                       const linalg::Matrix& gram_b) {
  return CovarianceError(truth.gram(), gram_b, truth.squared_frobenius());
}

DirectionalErrorRange SignedCovarianceError(const linalg::Matrix& gram_a,
                                            const linalg::Matrix& gram_b,
                                            double frob_a_sq) {
  DMT_CHECK_GT(frob_a_sq, 0.0);
  linalg::Matrix diff = gram_a;
  diff.Subtract(gram_b);
  linalg::EigenDecomposition e = linalg::SymmetricEigen(diff);
  DirectionalErrorRange out;
  if (e.eigenvalues.empty()) return out;
  out.max_error = e.eigenvalues.front() / frob_a_sq;
  out.min_error = e.eigenvalues.back() / frob_a_sq;
  return out;
}

}  // namespace matrix
}  // namespace dmt
