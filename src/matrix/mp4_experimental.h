// Matrix Protocol 4 (paper Appendix C): the *negative result*.
//
// This is the attempted matrix analogue of heavy-hitter protocol P4. Each
// site keeps its exact covariance G_j = A_j^T A_j and an approximation
// A-hat_j = Z V^T whose right singular basis V never rotates (updating
// A-hat_j = Z V^T preserves V, as the appendix proves). With probability
// 1 - exp(-p‖a‖²), p = 2 sqrt(m)/(eps F-hat), the site refreshes
// z_i = sqrt(‖A_j v_i‖² + 1/p) along every basis direction and ships the
// d-vector z.
//
// The appendix shows why no analysis can bound the error: the norm of A_j
// along directions *between* the frozen v_i is uncontrolled, and the +1/p
// compensation inflates all d directions at once. Figures 6 and 7
// demonstrate the failure empirically; this implementation reproduces it.
//
// As the extension the appendix sketches ("send an FD sketch of A_j every
// sqrt(m) rounds and use it as the new A-hat_j"), the option
// `realign_rounds > 0` re-aligns each site's basis to an FD sketch of its
// full local matrix every that many F-hat broadcasts. It repairs much of
// the error at extra communication — the ablation bench quantifies this.
#ifndef DMT_MATRIX_MP4_EXPERIMENTAL_H_
#define DMT_MATRIX_MP4_EXPERIMENTAL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hh/total_weight.h"
#include "matrix/matrix_protocol.h"
#include "sketch/frequent_directions.h"
#include "stream/network.h"
#include "util/rng.h"

namespace dmt {
namespace matrix {

/// Configuration of the experimental P4 matrix protocol.
struct MP4Options {
  /// Re-align the site bases to a local FD sketch every this many F-hat
  /// broadcast rounds; 0 disables (the paper's plain P4).
  size_t realign_rounds = 0;
  /// Sketch size used for re-alignment (rows of the local FD sketch).
  size_t realign_sketch_rows = 32;
};

/// Randomized diagonal-update protocol (MP4, known-broken by design).
class MP4Experimental : public MatrixTrackingProtocol {
 public:
  MP4Experimental(size_t num_sites, double eps, uint64_t seed,
                  const MP4Options& options = {});

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  linalg::Matrix CoordinatorSketch() const override;
  linalg::Matrix CoordinatorGram() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "P4"; }

 private:
  struct SiteState {
    linalg::Matrix gram;          // exact G_j = A_j^T A_j
    linalg::Matrix basis;         // V: columns are the frozen directions
    std::vector<double> z;        // current A-hat_j = diag(z) V^T
    sketch::FrequentDirections local_fd{32};  // only used when realigning
    size_t rounds_at_last_realign = 0;
  };

  double CurrentP() const;
  void SendZ(size_t site);
  void Realign(size_t site);

  double eps_;
  MP4Options options_;
  size_t dim_ = 0;
  stream::Network network_;
  // One generator per site (seed = base ⊕ site); MP4 itself only runs on
  // the serial schedule (its coordinator exchange is interleaved with the
  // site update), but site streams never share a generator anywhere.
  std::vector<Rng> site_rngs_;
  hh::TotalWeightTracker weight_tracker_;
  size_t broadcast_rounds_ = 0;
  std::vector<SiteState> sites_;
  // Coordinator: sum over sites of V diag(z^2) V^T, maintained by replacing
  // each site's contribution when a new z arrives.
  linalg::Matrix coord_gram_;
  std::vector<linalg::Matrix> site_contribution_;
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_MP4_EXPERIMENTAL_H_
