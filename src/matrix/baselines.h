// Centralized baselines: ship every row to the coordinator and summarize
// there. These are the "FD" and "SVD" rows of the paper's Table 1.
#ifndef DMT_MATRIX_BASELINES_H_
#define DMT_MATRIX_BASELINES_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "matrix/error.h"
#include "matrix/matrix_protocol.h"
#include "sketch/frequent_directions.h"
#include "stream/network.h"

namespace dmt {
namespace matrix {

/// Sends all rows; the coordinator runs a single Frequent Directions sketch
/// with `ell` rows (the paper uses ell = k, the target rank).
class NaiveFdBaseline : public MatrixTrackingProtocol {
 public:
  NaiveFdBaseline(size_t num_sites, size_t ell);

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  void SiteUpdate(size_t site, const std::vector<double>& row) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  linalg::Matrix CoordinatorSketch() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "FD"; }

 private:
  stream::Network network_;
  std::vector<std::vector<std::vector<double>>> outbox_;  // per-site rows
  sketch::FrequentDirections fd_;
};

/// Sends all rows; the coordinator keeps the exact covariance and answers
/// with the best rank-k approximation (optimal, non-streaming reference).
class NaiveSvdBaseline : public MatrixTrackingProtocol {
 public:
  NaiveSvdBaseline(size_t num_sites, size_t dim, size_t k);

  void ProcessRow(size_t site, const std::vector<double>& row) override;
  void SiteUpdate(size_t site, const std::vector<double>& row) override;
  void Synchronize() override;
  void SynchronizeSites(const uint32_t* sites, size_t count) override;
  bool SupportsTargetedDrain() const override { return true; }
  size_t PendingOutboxSize(size_t site) const override {
    return outbox_[site].size();
  }
  bool SupportsConcurrentSiteUpdates() const override { return true; }
  /// Rows sqrt(lambda_i) v_i^T for the top-k eigenpairs of A^T A: the
  /// unique B with B^T B = (A_k)^T A_k.
  linalg::Matrix CoordinatorSketch() const override;
  linalg::Matrix CoordinatorGram() const override;
  const stream::CommStats& comm_stats() const override;
  std::vector<uint64_t> per_site_messages() const override {
    return network_.per_site_up();
  }
  std::string name() const override { return "SVD"; }

 private:
  size_t k_;
  stream::Network network_;
  std::vector<std::vector<std::vector<double>>> outbox_;  // per-site rows
  CovarianceTracker cov_;
};

}  // namespace matrix
}  // namespace dmt

#endif  // DMT_MATRIX_BASELINES_H_
