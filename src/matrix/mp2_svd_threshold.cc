#include "matrix/mp2_svd_threshold.h"

#include <algorithm>
#include <cmath>

#include "linalg/jacobi_eigen.h"
#include "linalg/kernels.h"
#include "linalg/svd.h"
#include "linalg/vec_ops.h"
#include "util/check.h"

namespace dmt {
namespace matrix {

MP2SvdThreshold::MP2SvdThreshold(size_t num_sites, double eps)
    : eps_(eps), network_(num_sites), sites_(num_sites),
      outbox_(num_sites) {
  DMT_CHECK_GT(eps, 0.0);
  DMT_CHECK_LE(eps, 1.0);
}

void MP2SvdThreshold::EnsureDim(const std::vector<double>& row) {
  // call_once doubles as the memory fence that publishes dim_ and the
  // per-site matrices to every site thread.
  std::call_once(dim_once_, [this, &row] {
    dim_ = row.size();
    coord_gram_ = linalg::Matrix(dim_, dim_);
    for (auto& st : sites_) {
      st.gram = linalg::Matrix(dim_, dim_);
    }
  });
  DMT_CHECK_EQ(row.size(), dim_);
}

double MP2SvdThreshold::SiteScalarPhase(size_t site, double w) {
  SiteState& st = sites_[site];
  const double m = static_cast<double>(network_.num_sites());
  // Scalar total-mass report (Algorithm 5.3, first branch). Bootstrap:
  // F-hat == 0 makes the threshold 0, so the first row reports at once.
  st.scalar_counter += w;
  if (st.scalar_counter >= (eps_ / m) * st.fest) {
    network_.RecordScalar(site);
    const double amount = st.scalar_counter;
    st.scalar_counter = 0.0;
    return amount;
  }
  return 0.0;
}

void MP2SvdThreshold::ApplyScalar(double amount) {
  coord_fest_ += amount;
  if (++scalar_msgs_since_broadcast_ >= network_.num_sites()) {
    scalar_msgs_since_broadcast_ = 0;
    network_.RecordBroadcast();
    network_.RecordRound();
    for (auto& s : sites_) s.fest = coord_fest_;
  }
}

void MP2SvdThreshold::EmitDirection(size_t site, double lam,
                                    const std::vector<double>& v,
                                    std::vector<PendingMsg>* sink) {
  network_.RecordVector(site);
  if (sink != nullptr) {
    sink->push_back(PendingMsg{false, lam, v});
  } else {
    // sigma * v arrives at the coordinator and is appended to B.
    coord_gram_.AddOuterProduct(lam, v);
  }
}

void MP2SvdThreshold::ProcessRow(size_t site,
                                 const std::vector<double>& row) {
  DMT_CHECK_LT(site, sites_.size());
  EnsureDim(row);
  const double w = linalg::SquaredNorm(row);

  // Serial path: the scalar report is delivered immediately, so a
  // broadcast it triggers already raises this site's F-hat for the
  // direction-threshold check below — the paper's per-row schedule.
  const double amount = SiteScalarPhase(site, w);
  if (amount > 0.0) ApplyScalar(amount);

  ElementPhase(site, row, w, /*sink=*/nullptr);
}

void MP2SvdThreshold::SiteUpdate(size_t site,
                                 const std::vector<double>& row) {
  DMT_CHECK_LT(site, sites_.size());
  EnsureDim(row);
  const double w = linalg::SquaredNorm(row);

  // Deferred path: the report is queued, so this round's direction
  // threshold keeps the F-hat of the last Synchronize() — exactly what a
  // real site knows before the next broadcast arrives. A stale (smaller)
  // F-hat only lowers the threshold, which ships directions earlier: more
  // communication, never more error (the bound is one-sided).
  const double amount = SiteScalarPhase(site, w);
  if (amount > 0.0) {
    outbox_[site].push_back(PendingMsg{true, amount, {}});
  }

  ElementPhase(site, row, w, &outbox_[site]);
}

void MP2SvdThreshold::DrainSite(size_t site) {
  for (const PendingMsg& msg : outbox_[site]) {
    if (msg.is_scalar) {
      ApplyScalar(msg.value);
    } else {
      coord_gram_.AddOuterProduct(msg.value, msg.dir);
    }
  }
  outbox_[site].clear();
}

void MP2SvdThreshold::Synchronize() {
  for (size_t s = 0; s < outbox_.size(); ++s) DrainSite(s);
}

void MP2SvdThreshold::SynchronizeSites(const uint32_t* sites, size_t count) {
  for (size_t i = 0; i < count; ++i) DrainSite(sites[i]);
}

std::vector<MP2SvdThreshold::PendingMsg> MP2SvdThreshold::TakePendingMessages(
    size_t site) {
  DMT_CHECK_LT(site, outbox_.size());
  std::vector<PendingMsg> out = std::move(outbox_[site]);
  outbox_[site].clear();
  return out;
}

void MP2SvdThreshold::DeliverMessage(size_t site, const PendingMsg& msg) {
  DMT_CHECK_LT(site, sites_.size());
  if (msg.is_scalar) {
    network_.RecordScalar(site);
    ApplyScalar(msg.value);
  } else {
    // The wire coordinator may never see a raw row, so the first delivered
    // direction sizes the Gram.
    EnsureDim(msg.dir);
    network_.RecordVector(site);
    coord_gram_.AddOuterProduct(msg.value, msg.dir);
  }
}

void MP2SvdThreshold::SetSiteFest(size_t site, double fest) {
  DMT_CHECK_LT(site, sites_.size());
  sites_[site].fest = fest;
}

void MP2SvdThreshold::ElementPhase(size_t site,
                                   const std::vector<double>& row, double w,
                                   std::vector<PendingMsg>* sink) {
  SiteState& st = sites_[site];
  const double m = static_cast<double>(network_.num_sites());
  const double threshold = (eps_ / m) * st.fest;
  if (threshold <= 0.0) {
    // Bootstrap: B_j is flushed every row, so the pending matrix is rank-1
    // and its only singular direction is the row itself. Ship it directly.
    if (w > 0.0) EmitDirection(site, 1.0, row, sink);
    return;
  }

  // Rank-1 fast path: with an empty buffer, B_j = [a] and its only
  // singular direction is the row itself; if it already crosses the
  // threshold the paper's algorithm ships it and leaves B_j empty again.
  // This is the dominant regime at small eps (threshold below typical row
  // norms) and costs O(d) instead of a decomposition.
  if (st.trace == 0.0 && w >= threshold) {
    EmitDirection(site, 1.0, row, sink);
    return;
  }

  // Append the row: one symmetric rank-1 update on the raw Gram.
  st.gram.AddOuterProduct(1.0, row);
  st.trace += w;
  if (st.trace >= threshold && st.trace >= st.next_check) {
    MaybeSendDirections(site, sink);
  }
}

void MP2SvdThreshold::MaybeSendDirections(size_t site,
                                          std::vector<PendingMsg>* sink) {
  SiteState& st = sites_[site];
  const double m = static_cast<double>(network_.num_sites());
  const double threshold = (eps_ / m) * st.fest;
  decompositions_.fetch_add(1, std::memory_order_relaxed);
  const size_t d = dim_;

  // Exact trace from the diagonal (the incrementally-maintained st.trace
  // may carry drift; the certificate below needs the real thing).
  double trace = 0.0;
  for (size_t i = 0; i < d; ++i) trace += st.gram(i, i);

  // Partial Lanczos solve with a trace certificate, k growing
  // geometrically: every eigenvalue >= threshold is provably among the
  // computed pairs once (a) the smallest computed Ritz value is below the
  // threshold and (b) the spectrum mass not captured by the computed
  // pairs — at most trace minus the captured Ritz sum, plus the solver's
  // residual coupling — is below it too.
  bool solved = false;
  size_t count = 0;       // computed pairs in st.vals / st.vecs rows
  double leftover = 0.0;  // bound on the un-computed spectrum mass
  double slack = 0.0;     // Ritz-value accuracy + trace roundoff
  size_t k = std::min(d, size_t{4});
  while (true) {
    linalg::LanczosOptions opts;
    // Tight: the shipped pairs are also the deflation directions, and
    // their residuals accumulate in the site Gram across checks — keep
    // that drift far below any plausible threshold margin.
    opts.tol = 1e-13;
    if (st.seed.size() == d) opts.seed = st.seed.data();
    linalg::LanczosInfo info =
        st.solver.TopKOfGram(st.gram, k, &st.vals, &st.vecs, opts);
    if (!info.converged) break;  // exact fallback below
    double captured = 0.0;
    for (size_t i = 0; i < k; ++i) captured += st.vals[i];
    leftover = std::max(0.0, trace - captured);
    slack = info.residual_bound + 1e-9 * std::fabs(trace);
    if ((st.vals[k - 1] < threshold && leftover + slack < threshold) ||
        k == d) {
      if (k == d) leftover = 0.0;  // full space computed
      count = k;
      solved = true;
      break;
    }
    // Flat spectra would need k ~ d for the certificate; one exact
    // decomposition is cheaper than Rayleigh-Ritz on most of R^d.
    if (k >= (d + 1) / 2) break;
    k = std::min(d, 2 * k);
  }

  if (!solved) {
    linalg::EigenDecomposition e = linalg::SymmetricEigen(st.gram);
    count = d;
    leftover = 0.0;
    slack = 1e-9 * std::fabs(trace);
    st.vals.assign(e.eigenvalues.begin(), e.eigenvalues.end());
    if (st.vecs.rows() != d || st.vecs.cols() != d) {
      st.vecs = linalg::Matrix(d, d);
    }
    for (size_t i = 0; i < d; ++i) {
      for (size_t j = 0; j < d; ++j) st.vecs(i, j) = e.eigenvectors(j, i);
    }
  }

  // Ship every direction at or above the threshold, then remove them from
  // the Gram in one batched rank-1 pass — exactly the paper's
  // "set sigma_l = 0; B_j = U Sigma V^T".
  size_t shipped = 0;
  for (size_t i = 0; i < count; ++i) {
    const double lam = st.vals[i];
    if (lam < threshold || lam <= 0.0) break;  // sorted descending
    EmitDirection(site, lam,
                  std::vector<double>(st.vecs.Row(i), st.vecs.Row(i) + d),
                  sink);
    ++shipped;
  }
  if (shipped > 0) {
    std::vector<double> neg(shipped);
    for (size_t i = 0; i < shipped; ++i) neg[i] = -st.vals[i];
    linalg::kernels::BatchedRank1(st.vecs.Row(0), neg.data(), shipped, d,
                                  st.gram.Row(0));
  }

  // Certified bound on the remaining lambda_max: the leading un-shipped
  // Ritz value within the computed subspace, or the un-computed remainder
  // of the trace, whichever is larger — plus the accuracy slack. No kept
  // direction can reach the threshold before the trace has grown by the
  // remaining gap (a row raises lambda_max by at most its norm).
  double kept_trace = 0.0;
  for (size_t i = 0; i < d; ++i) {
    kept_trace += std::max(st.gram(i, i), 0.0);
  }
  st.trace = kept_trace;
  const double remaining_top =
      shipped < count ? std::max(0.0, st.vals[shipped]) : 0.0;
  const double bound = std::max(remaining_top, leftover) + slack;
  st.next_check = st.trace + (threshold - bound);
  // Warm-start the next check from the leading remaining direction.
  if (shipped < count) {
    st.seed.assign(st.vecs.Row(shipped), st.vecs.Row(shipped) + d);
  }
}

linalg::Matrix MP2SvdThreshold::CoordinatorSketch() const {
  linalg::Matrix b(0, dim_);
  if (dim_ == 0) return b;
  linalg::RightSingular rs = linalg::RightSingularFromGram(coord_gram_);
  for (size_t i = 0; i < rs.squared_sigma.size(); ++i) {
    if (rs.squared_sigma[i] <= 0.0) break;
    const double s = std::sqrt(rs.squared_sigma[i]);
    std::vector<double> row(dim_);
    for (size_t j = 0; j < dim_; ++j) row[j] = s * rs.v(j, i);
    b.AppendRow(row);
  }
  return b;
}

const stream::CommStats& MP2SvdThreshold::comm_stats() const {
  return network_.stats();
}

}  // namespace matrix
}  // namespace dmt
